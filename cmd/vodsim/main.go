// Command vodsim runs one discrete-event simulation of a VOD server and
// prints its measurements: admission counts, initial-latency statistics,
// starvation, estimation quality, and memory usage.
//
// Examples:
//
//	vodsim -scheme dynamic -method rr -arrivals 2500 -theta 0
//	vodsim -scheme static -method sweep -hours 8
//	vodsim -scheme dynamic -disks 10 -memory 4 -arrivals 24000
package main

import (
	"flag"
	"fmt"
	"os"

	vod "repro"
)

func main() {
	var (
		schemeFlag = flag.String("scheme", "dynamic", "allocation scheme: static, dynamic, naive")
		methodFlag = flag.String("method", "rr", "scheduling method: rr, sweep, gss")
		arrivals   = flag.Float64("arrivals", 2500, "expected arrivals over the horizon")
		theta      = flag.Float64("theta", 0.5, "arrival-pattern Zipf parameter (0 skewed .. 1 uniform)")
		hours      = flag.Float64("hours", 24, "simulated horizon in hours")
		disks      = flag.Int("disks", 1, "number of disks")
		memoryGB   = flag.Float64("memory", 0, "total memory budget in GB (0 = unlimited)")
		tlog       = flag.Float64("tlog", 0, "estimation window T_log in minutes (0 = paper default)")
		alpha      = flag.Int("alpha", 1, "inertia slack alpha")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	scheme, err := vod.ParseScheme(*schemeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kind, err := vod.ParseMethod(*methodFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	spec, cr, _ := vod.PaperEnvironment()
	lib, err := vod.NewLibrary(vod.LibraryConfig{
		Titles:          6 * *disks,
		Disks:           *disks,
		Spec:            spec,
		PopularityTheta: 0.271,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	horizon := vod.Hours(*hours)
	peak := vod.Hours(9)
	if peak > horizon {
		peak = horizon / 2
	}
	trace := vod.GenerateWorkload(vod.ZipfDaySchedule(*arrivals, *theta, peak, horizon), lib, *seed)

	cfg := vod.SimConfig{
		Scheme:       scheme,
		Method:       vod.NewMethod(kind),
		Spec:         spec,
		CR:           cr,
		Alpha:        *alpha,
		Library:      lib,
		Trace:        trace,
		Seed:         *seed,
		MemoryBudget: vod.Gigabytes(*memoryGB),
	}
	if *tlog > 0 {
		cfg.TLog = vod.Minutes(*tlog)
	}
	res, err := vod.Simulate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("scheme=%v method=%v disks=%d arrivals=%d horizon=%v\n",
		scheme, cfg.Method, *disks, len(trace.Requests), horizon)
	fmt.Printf("served:               %d\n", res.Served)
	fmt.Printf("rejected (capacity):  %d\n", res.Rejected)
	fmt.Printf("rejected (memory):    %d\n", res.RejectedMemory)
	fmt.Printf("admission deferrals:  %d\n", res.Deferrals)
	fmt.Printf("max concurrent:       %d\n", res.MaxConcurrent)
	if gm, ok := res.LatencyByN.GrandMean(); ok {
		fmt.Printf("avg initial latency:  %.4gs\n", gm)
	}
	fmt.Printf("underruns:            %d (starved %v)\n", res.Underruns, res.Starved)
	fmt.Printf("peak memory (actual): %v\n", res.PeakMemory)
	if res.Estimates > 0 {
		fmt.Printf("estimation:           %.2f%% success, avg k %.2f over %d checks\n",
			100*res.SuccessRate(), res.EstimatedK.Mean(), res.Estimates)
	}
	fmt.Printf("\n%-6s %14s %10s\n", "n", "avg latency", "requests")
	for n := 0; n < res.LatencyByN.Levels(); n++ {
		if mean, ok := res.LatencyByN.Mean(n); ok {
			fmt.Printf("%-6d %13.4gs %10d\n", n, mean, res.LatencyByN.Count(n))
		}
	}
}
