// Command vodsim runs one discrete-event simulation of a VOD server and
// prints its measurements: admission counts, initial-latency statistics,
// starvation, estimation quality, and memory usage. With -reps > 1 it
// replays the scenario across independent replications (in parallel, up
// to -workers simulations at once) and reports each metric's mean, sample
// standard deviation, and 95% confidence interval.
//
// Examples:
//
//	vodsim -scheme dynamic -method rr -arrivals 2500 -theta 0
//	vodsim -scheme static -method sweep -hours 8
//	vodsim -scheme dynamic -disks 10 -memory 4 -arrivals 24000
//	vodsim -scheme dynamic -reps 10 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	vod "repro"
)

func main() {
	var (
		schemeFlag = flag.String("scheme", "dynamic", "allocation scheme: static, dynamic, naive")
		methodFlag = flag.String("method", "rr", "scheduling method: rr, sweep, gss")
		arrivals   = flag.Float64("arrivals", 2500, "expected arrivals over the horizon")
		theta      = flag.Float64("theta", 0.5, "arrival-pattern Zipf parameter (0 skewed .. 1 uniform)")
		hours      = flag.Float64("hours", 24, "simulated horizon in hours")
		disks      = flag.Int("disks", 1, "number of disks")
		memoryGB   = flag.Float64("memory", 0, "total memory budget in GB (0 = unlimited)")
		tlog       = flag.Float64("tlog", 0, "estimation window T_log in minutes (0 = paper default)")
		alpha      = flag.Int("alpha", 1, "inertia slack alpha")
		seed       = flag.Int64("seed", 1, "random seed (base seed when -reps > 1)")
		reps       = flag.Int("reps", 1, "independent replications to run and summarize")
		workers    = flag.Int("workers", runtime.NumCPU(), "max parallel simulation runs (<=0 uses GOMAXPROCS)")
	)
	flag.Parse()

	scheme, err := vod.ParseScheme(*schemeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kind, err := vod.ParseMethod(*methodFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "-reps must be at least 1")
		os.Exit(2)
	}

	spec, cr, _ := vod.PaperEnvironment()
	lib, err := vod.NewLibrary(vod.LibraryConfig{
		Titles:          6 * *disks,
		Disks:           *disks,
		Spec:            spec,
		PopularityTheta: 0.271,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	horizon := vod.Hours(*hours)
	peak := vod.Hours(9)
	if peak > horizon {
		peak = horizon / 2
	}
	schedule := vod.ZipfDaySchedule(*arrivals, *theta, peak, horizon)

	// Each replication gets its own trace and simulation seed derived
	// deterministically from (base seed, replication index), the same
	// scheme the experiment runner uses; rep 0 with -reps 1 reproduces
	// the traditional single-run behavior of -seed alone.
	build := func(rep int) (vod.SimConfig, error) {
		traceSeed, simSeed := *seed, *seed
		if *reps > 1 {
			traceSeed = vod.MixSeed(*seed, int64(rep), 0)
			simSeed = vod.MixSeed(*seed, int64(rep), 1)
		}
		cfg := vod.SimConfig{
			Scheme:       scheme,
			Method:       vod.NewMethod(kind),
			Spec:         spec,
			CR:           cr,
			Alpha:        *alpha,
			Library:      lib,
			Trace:        vod.GenerateWorkload(schedule, lib, traceSeed),
			Seed:         simSeed,
			MemoryBudget: vod.Gigabytes(*memoryGB),
		}
		if *tlog > 0 {
			cfg.TLog = vod.Minutes(*tlog)
		}
		return cfg, nil
	}

	results, err := vod.SimulateReplications(build, *reps, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("scheme=%v method=%v disks=%d horizon=%v reps=%d\n",
		scheme, vod.NewMethod(kind), *disks, horizon, *reps)
	if *reps == 1 {
		printSingle(results[0])
		return
	}
	printSummary(results)
}

func printSingle(res *vod.SimResult) {
	fmt.Printf("served:               %d\n", res.Served)
	fmt.Printf("rejected (capacity):  %d\n", res.Rejected)
	fmt.Printf("rejected (memory):    %d\n", res.RejectedMemory)
	fmt.Printf("admission deferrals:  %d\n", res.Deferrals)
	fmt.Printf("max concurrent:       %d\n", res.MaxConcurrent)
	if gm, ok := res.LatencyByN.GrandMean(); ok {
		fmt.Printf("avg initial latency:  %.4gs\n", gm)
	}
	fmt.Printf("underruns:            %d (starved %v)\n", res.Underruns, res.Starved)
	fmt.Printf("peak memory (actual): %v\n", res.PeakMemory)
	if res.Estimates > 0 {
		fmt.Printf("estimation:           %.2f%% success, avg k %.2f over %d checks\n",
			100*res.SuccessRate(), res.EstimatedK.Mean(), res.Estimates)
	}
	fmt.Printf("\n%-6s %14s %10s\n", "n", "avg latency", "requests")
	for n := 0; n < res.LatencyByN.Levels(); n++ {
		if mean, ok := res.LatencyByN.Mean(n); ok {
			fmt.Printf("%-6d %13.4gs %10d\n", n, mean, res.LatencyByN.Count(n))
		}
	}
}

func printSummary(results []*vod.SimResult) {
	metric := func(name string, get func(*vod.SimResult) float64) {
		samples := make([]float64, len(results))
		for i, r := range results {
			samples[i] = get(r)
		}
		st := vod.SummarizeReplications(samples)
		fmt.Printf("%-22s %12.6g %12.6g %12.6g\n", name, st.Mean, st.Std, st.CI95)
	}
	fmt.Printf("%-22s %12s %12s %12s\n", "metric", "mean", "stddev", "ci95")
	metric("served", func(r *vod.SimResult) float64 { return float64(r.Served) })
	metric("rejected (capacity)", func(r *vod.SimResult) float64 { return float64(r.Rejected) })
	metric("rejected (memory)", func(r *vod.SimResult) float64 { return float64(r.RejectedMemory) })
	metric("admission deferrals", func(r *vod.SimResult) float64 { return float64(r.Deferrals) })
	metric("max concurrent", func(r *vod.SimResult) float64 { return float64(r.MaxConcurrent) })
	metric("avg initial latency s", func(r *vod.SimResult) float64 {
		gm, _ := r.LatencyByN.GrandMean()
		return gm
	})
	metric("underruns", func(r *vod.SimResult) float64 { return float64(r.Underruns) })
	metric("peak memory MB", func(r *vod.SimResult) float64 { return float64(r.PeakMemory) / (1 << 20) })
}
