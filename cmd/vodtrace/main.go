// Command vodtrace generates, inspects, and converts workload traces: the
// Poisson-under-a-Zipf-day arrival process of Section 5.1 serialized as
// CSV for replay, hand editing, or analysis with external tools.
//
// Examples:
//
//	vodtrace -arrivals 2500 -theta 0 -out day.csv      # generate
//	vodtrace -stats day.csv                            # summarize
//	vodtrace -arrivals 500 -disks 10 -hours 8          # print to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	vod "repro"
	"repro/internal/workload"
)

func main() {
	var (
		arrivals = flag.Float64("arrivals", 2500, "expected arrivals over the horizon")
		theta    = flag.Float64("theta", 0.5, "arrival-pattern Zipf parameter (0 skewed .. 1 uniform)")
		hours    = flag.Float64("hours", 24, "horizon in hours")
		disks    = flag.Int("disks", 1, "number of disks in the library")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "write the generated trace to this file (default stdout)")
		statsArg = flag.String("stats", "", "summarize an existing trace CSV instead of generating")
	)
	flag.Parse()

	if *statsArg != "" {
		f, err := os.Open(*statsArg)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := workload.ReadCSV(f)
		if err != nil {
			fatal(err)
		}
		maxDisk := 0
		for _, r := range tr.Requests {
			if r.Disk > maxDisk {
				maxDisk = r.Disk
			}
		}
		st := tr.Summarize(maxDisk + 1)
		fmt.Printf("requests:      %d\n", st.Requests)
		fmt.Printf("horizon:       %v\n", st.Horizon)
		fmt.Printf("peak rate:     %.4f arrivals/s (busiest 30-minute slot)\n", st.PeakRate)
		fmt.Printf("mean viewing:  %v\n", st.MeanViewing)
		for d, share := range st.PerDiskShare {
			fmt.Printf("disk %d share:  %.1f%%\n", d, 100*share)
		}
		return
	}

	spec, _, _ := vod.PaperEnvironment()
	lib, err := vod.NewLibrary(vod.LibraryConfig{
		Titles: 6 * *disks, Disks: *disks, Spec: spec, PopularityTheta: 0.271,
	})
	if err != nil {
		fatal(err)
	}
	horizon := vod.Hours(*hours)
	peak := vod.Hours(9)
	if peak > horizon {
		peak = horizon / 2
	}
	tr := vod.GenerateWorkload(vod.ZipfDaySchedule(*arrivals, *theta, peak, horizon), lib, *seed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "%d requests written to %s\n", len(tr.Requests), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
