// Command bench runs the repository's tracked performance cases
// (internal/bench) with fixed iteration counts and writes the results as
// a BENCH_*.json snapshot — the committed record of each PR's
// performance trajectory.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_PR3.json            # snapshot
//	go run ./cmd/bench -baseline BENCH_PR3.json -check # regression gate
//
// The -check gate compares allocs/op only: with fixed iteration counts it
// is reproducible run to run, unlike ns/op, which drifts with machine
// load. A case regresses when its allocs/op exceeds the baseline's by
// more than 10% plus one allocation of slack.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/bench"
)

// Report is the BENCH_*.json schema.
type Report struct {
	// Schema versions the format.
	Schema string `json:"schema"`
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// Cases holds one result per tracked benchmark, in registry order.
	Cases []CaseResult `json:"cases"`
	// Skipped names the MinProcs-gated cases this run could not execute
	// (not enough CPUs) — recorded so a snapshot is explicit about its
	// coverage gap instead of silently omitting cases.
	Skipped []string `json:"skipped,omitempty"`
}

// CaseResult is one benchmark's snapshot.
type CaseResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SimDaysPerSec is set only for end-to-end day-simulation cases.
	SimDaysPerSec float64 `json:"sim_days_per_sec,omitempty"`
	// Extra carries a case's custom b.ReportMetric values (the loopback
	// cases' sessions/sec, first-byte latency quantiles, underruns).
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var (
		out      = flag.String("out", "", "write the JSON report to this file (default stdout)")
		baseline = flag.String("baseline", "", "compare against this committed BENCH_*.json")
		check    = flag.Bool("check", false, "exit non-zero when allocs/op regresses >10% over -baseline")
		filter   = flag.String("filter", "", "run only cases whose name contains this substring")
		list     = flag.Bool("list", false, "list tracked cases and exit")
	)
	testing.Init()
	flag.Parse()

	cases := bench.Cases()
	if *list {
		for _, c := range cases {
			fmt.Printf("%-32s %dx\n", c.Name, c.Iters)
		}
		return
	}

	rep := Report{Schema: "repro-bench/v1", Go: runtime.Version()}
	for _, c := range cases {
		if *filter != "" && !strings.Contains(c.Name, *filter) {
			continue
		}
		if c.MinProcs > runtime.GOMAXPROCS(0) {
			fmt.Fprintf(os.Stderr, "%-32s skipped: needs GOMAXPROCS >= %d (have %d)\n",
				c.Name, c.MinProcs, runtime.GOMAXPROCS(0))
			rep.Skipped = append(rep.Skipped, c.Name)
			continue
		}
		if err := flag.Set("test.benchtime", fmt.Sprintf("%dx", c.Iters)); err != nil {
			fatalf("setting benchtime: %v", err)
		}
		r := testing.Benchmark(c.Bench)
		cr := CaseResult{
			Name:        c.Name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if c.SimDays && r.T > 0 {
			cr.SimDaysPerSec = float64(r.N) / r.T.Seconds()
		}
		if len(r.Extra) > 0 {
			cr.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				cr.Extra[k] = v
			}
		}
		rep.Cases = append(rep.Cases, cr)
		fmt.Fprintf(os.Stderr, "%-32s %12.1f ns/op %10d B/op %8d allocs/op\n",
			c.Name, cr.NsPerOp, cr.BytesPerOp, cr.AllocsPerOp)
	}
	if len(rep.Skipped) > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d MinProcs-gated case(s) NOT measured on this %d-proc runner: %s\n",
			len(rep.Skipped), runtime.GOMAXPROCS(0), strings.Join(rep.Skipped, ", "))
		fmt.Fprintln(os.Stderr, "bench: see SERVING.md \"Serving-path performance\" for the multicore local protocol")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encoding report: %v", err)
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
	} else {
		os.Stdout.Write(buf)
	}

	if *baseline != "" {
		regressions, err := compare(*baseline, rep)
		if err != nil {
			fatalf("comparing against %s: %v", *baseline, err)
		}
		if r := jitterCompRegression(rep); r != "" {
			regressions = append(regressions, r)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			if *check {
				os.Exit(1)
			}
		} else {
			fmt.Fprintln(os.Stderr, "bench: no allocs/op regressions against", *baseline)
		}
	}
}

// compare reports the cases whose allocs/op exceed the baseline's by more
// than 10% plus one allocation. Cases absent from either side are skipped:
// the set may grow between PRs.
func compare(path string, cur Report) ([]string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return nil, err
	}
	old := make(map[string]CaseResult, len(base.Cases))
	for _, c := range base.Cases {
		old[c.Name] = c
	}
	var regressions []string
	for _, c := range cur.Cases {
		b, ok := old[c.Name]
		if !ok {
			continue
		}
		limit := int64(float64(b.AllocsPerOp)*1.10) + 1
		if c.AllocsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d (limit %d)",
				c.Name, c.AllocsPerOp, b.AllocsPerOp, limit))
		}
	}
	return regressions, nil
}

// jitterCompRegression holds the serving path to its claimed win: in
// the serve/loopback-jittercomp case, compensation must cut underruns
// at least 5x whenever the uncompensated arm saw enough of them for the
// ratio to mean anything (>= 50 — below that the machine was quiet and
// there is nothing to compensate, so the gate stays silent rather than
// flaking on noise).
func jitterCompRegression(rep Report) string {
	for _, c := range rep.Cases {
		if c.Name != "serve/loopback-jittercomp" || c.Extra == nil {
			continue
		}
		off, on := c.Extra["underruns-nocomp"], c.Extra["underruns-comp"]
		if off >= 50 && on*5 > off {
			return fmt.Sprintf(
				"serve/loopback-jittercomp: compensation cut underruns %.0f -> %.0f, less than the required 5x",
				off, on)
		}
	}
	return ""
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
