// Command vodserver is a miniature VOD server over TCP: goroutine per
// viewer, buffers sized from the paper's dynamic table, admission through
// the predict-and-enforce controller, and a simulated single disk pacing
// the fills. Time is compressed (one simulated minute per wall second by
// default) so demos finish quickly.
//
// Protocol: the client sends one line, "WATCH <seconds>\n"; the server
// answers "OK <id>\n" (admitted) or "BUSY\n" (deferred past patience) and
// then streams length-prefixed frames ([4-byte big-endian length][bytes])
// until the requested content has been delivered, closing with a zero
// length frame.
//
//	vodserver -listen :9000            # serve
//	vodserver -selftest 8              # in-process demo: 8 viewers
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	vod "repro"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9000", "address to serve on")
		scale    = flag.Float64("scale", 60, "simulated seconds per wall second")
		selftest = flag.Int("selftest", 0, "run N in-process viewers against the server and exit")
	)
	flag.Parse()

	srv := newServer(*scale)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("vodserver listening on %s (time x%g)", ln.Addr(), *scale)

	if *selftest > 0 {
		go srv.acceptLoop(ln)
		if err := runSelfTest(ln.Addr().String(), *selftest, *scale, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	srv.acceptLoop(ln)
}

// server is the shared state: the controller, the simulated disk, and the
// viewer registry.
type server struct {
	spec  vod.DiskSpec
	cr    vod.BitRate
	ctl   *vod.Controller
	scale float64

	mu      sync.Mutex
	nextID  int
	viewers map[int]*session
	diskAt  float64 // simulated time the disk is busy through
	epoch   time.Time
}

// session is one connected viewer's server-side state.
type session struct {
	id        int
	remaining int64 // bytes still to deliver
}

func newServer(scale float64) *server {
	spec, cr, params := vod.PaperEnvironment()
	return &server{
		spec:    spec,
		cr:      cr,
		ctl:     vod.NewController(params, vod.NewMethod(vod.RoundRobin), spec, vod.Minutes(40)),
		scale:   scale,
		viewers: make(map[int]*session),
		epoch:   time.Now(),
	}
}

// simNow is the current simulated time.
func (s *server) simNow() vod.Seconds {
	return vod.Seconds(time.Since(s.epoch).Seconds() * s.scale)
}

// wall converts a simulated duration to wall time.
func (s *server) wall(d vod.Seconds) time.Duration {
	return (d / vod.Seconds(s.scale)).Duration()
}

func (s *server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

// handle runs one viewer's session: parse, admit, stream.
func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	var seconds float64
	if _, err := fmt.Sscanf(strings.TrimSpace(line), "WATCH %f", &seconds); err != nil || seconds <= 0 {
		fmt.Fprintf(conn, "ERR bad request\n")
		return
	}

	// Admission with bounded patience: Fig. 5 defers violating arrivals;
	// a real frontend gives up eventually.
	s.ctl.ObserveArrival(s.simNow())
	admitted := false
	for tries := 0; tries < 100; tries++ {
		if s.ctl.Admit(s.simNow()) {
			admitted = true
			break
		}
		time.Sleep(s.wall(1))
	}
	if !admitted {
		fmt.Fprintf(conn, "BUSY\n")
		return
	}

	s.mu.Lock()
	s.nextID++
	sess := &session{id: s.nextID, remaining: int64(s.cr.DataIn(vod.Seconds(seconds)).Bytes())}
	s.viewers[sess.id] = sess
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.viewers, sess.id)
		s.mu.Unlock()
		s.ctl.Release(sess.id)
	}()

	if _, err := fmt.Fprintf(conn, "OK %d\n", sess.id); err != nil {
		return
	}

	// Stream: each iteration is one service — allocate via the table,
	// occupy the simulated disk, then ship the bytes. Delivery is paced
	// so the client's buffer never holds more than one allocation.
	var frame [4]byte
	payload := make([]byte, 0, 1<<20)
	for sess.remaining > 0 {
		size, _, err := s.ctl.Allocate(sess.id, s.simNow())
		if err != nil {
			return
		}
		bytes := int64(size.Bytes())
		if bytes < 1 {
			bytes = 1
		}
		if bytes > sess.remaining {
			bytes = sess.remaining
		}
		fill := vod.Bits(bytes * 8)
		s.diskService(fill)
		sess.remaining -= bytes

		if int64(cap(payload)) < bytes {
			payload = make([]byte, bytes)
		}
		payload = payload[:bytes]
		binary.BigEndian.PutUint32(frame[:], uint32(bytes))
		if _, err := conn.Write(frame[:]); err != nil {
			return
		}
		if _, err := conn.Write(payload); err != nil {
			return
		}
		// Pace: do not run ahead of consumption by more than one buffer.
		time.Sleep(s.wall(s.cr.TimeToTransfer(fill)))
	}
	binary.BigEndian.PutUint32(frame[:], 0)
	conn.Write(frame[:])
}

// diskService occupies the shared simulated disk for one fill: a sampled
// seek and rotational delay plus the transfer, paced against the wall
// clock by absolute target so overshoot never accumulates.
func (s *server) diskService(fill vod.Bits) {
	s.mu.Lock()
	dl := s.spec.SeekTime(rand.Intn(s.spec.Cylinders)) +
		vod.Seconds(rand.Float64())*s.spec.MaxRotational
	now := float64(s.simNow())
	if s.diskAt < now {
		s.diskAt = now
	}
	s.diskAt += float64(dl + s.spec.TransferRate.TimeToTransfer(fill))
	target := s.epoch.Add(s.wall(vod.Seconds(s.diskAt)).Truncate(0))
	s.mu.Unlock()
	if d := time.Until(target); d > 0 {
		time.Sleep(d)
	}
}

// runSelfTest connects n viewers watching 20–90 simulated seconds each
// and reports their startup latency and delivery.
func runSelfTest(addr string, n int, scale float64, w io.Writer) error {
	type result struct {
		id      int
		watch   float64
		startup time.Duration
		bytes   int64
		err     error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			watch := 20 + 10*float64(i)
			res := result{id: i, watch: watch}
			defer func() { results[i] = res }()

			conn, err := net.Dial("tcp", addr)
			if err != nil {
				res.err = err
				return
			}
			defer conn.Close()
			start := time.Now()
			fmt.Fprintf(conn, "WATCH %g\n", watch)
			r := bufio.NewReader(conn)
			status, err := r.ReadString('\n')
			if err != nil {
				res.err = err
				return
			}
			if !strings.HasPrefix(status, "OK") {
				res.err = fmt.Errorf("not admitted: %s", strings.TrimSpace(status))
				return
			}
			first := true
			var frame [4]byte
			for {
				if _, err := io.ReadFull(r, frame[:]); err != nil {
					res.err = err
					return
				}
				if first {
					res.startup = time.Since(start)
					first = false
				}
				length := binary.BigEndian.Uint32(frame[:])
				if length == 0 {
					return
				}
				if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
					res.err = err
					return
				}
				res.bytes += int64(length)
			}
		}(i)
		time.Sleep(time.Duration(float64(2*time.Second) / scale * 10)) // stagger
	}
	wg.Wait()

	fmt.Fprintf(w, "%-8s %10s %14s %12s %s\n", "viewer", "watch(s)", "startup(wall)", "delivered", "status")
	for _, res := range results {
		status := "ok"
		if res.err != nil {
			status = res.err.Error()
		}
		fmt.Fprintf(w, "%-8d %10.0f %14s %12d %s\n",
			res.id, res.watch, res.startup.Round(time.Microsecond), res.bytes, status)
	}
	return nil
}
