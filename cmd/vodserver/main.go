// Command vodserver is a miniature VOD server over TCP driven by the
// shared streaming runtime in internal/engine: the same admission,
// allocation, and scheduling code the simulator validates paces real
// deliveries here under a scaled wall clock. The server itself owns no
// buffer-sizing or admission logic — it is a driver: it translates TCP
// connections into engine arrivals and engine fill completions into
// frames on the wire. Time is compressed (one simulated minute per wall
// second by default) so demos finish quickly.
//
// Protocol: the client sends one line, "WATCH <seconds>\n"; the server
// answers "OK <id>\n" (admitted) or "BUSY\n" (rejected, or deferred past
// patience) and then streams length-prefixed frames
// ([4-byte big-endian length][bytes]) until the requested content has
// been delivered, closing with a zero length frame.
//
//	vodserver -listen :9000            # serve
//	vodserver -selftest 8              # in-process demo: 8 viewers
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	vod "repro"
	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/si"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, serves, and returns
// the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vodserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:9000", "address to serve on")
		scale    = fs.Float64("scale", 60, "simulated seconds per wall second")
		selftest = fs.Int("selftest", 0, "run N in-process viewers against the server and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv, err := newServer(*scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer ln.Close()
	log.Printf("vodserver listening on %s (time x%g)", ln.Addr(), *scale)

	if *selftest > 0 {
		go srv.acceptLoop(ln)
		if err := runSelfTest(srv, ln.Addr().String(), *selftest, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	srv.acceptLoop(ln)
	return 0
}

// patience bounds how long an arrival may sit in the deferral queue
// before the frontend gives up, in engine seconds. It matches the old
// hand-rolled server's 100 one-second retries.
const patience = si.Seconds(100)

// server is the live driver: an engine System under a WallClock plus the
// viewer registry. All fields below the clock are engine state — they are
// read and written only under the clock's lock (inside clock.Do or inside
// Observer callbacks, which the clock serializes).
type server struct {
	clock *engine.WallClock
	sys   *engine.System
	disk  *engine.Disk
	lib   *catalog.Library
	cr    vod.BitRate

	engine.NopObserver // the server observes only what it overrides

	nextID   int
	sessions map[int]*session
	tally    struct {
		admitted, deferred, rejected, departed int
	}
}

// session is one connected viewer. The observer side (engine lock) pushes
// completed fills; the connection goroutine pops and ships them. The two
// sides share only the small mu-guarded queue, so observer callbacks
// never block on the network.
type session struct {
	id      int
	decided chan bool // admission outcome, buffered

	mu      sync.Mutex
	pending []int64 // frame sizes (bytes) ready to ship
	done    bool    // all content delivered (or the stream departed)
	notify  chan struct{} // buffered kick for the writer

	sent int64 // cumulative bytes handed to the writer (engine lock side)
}

// push queues n bytes for the writer (engine lock held by the caller).
func (s *session) push(n int64, done bool) {
	s.mu.Lock()
	if n > 0 {
		s.pending = append(s.pending, n)
	}
	if done {
		s.done = true
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func newServer(scale float64) (*server, error) {
	spec, cr, _ := vod.PaperEnvironment()
	lib, err := catalog.New(catalog.Config{
		Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271,
	})
	if err != nil {
		return nil, err
	}
	srv := &server{
		clock:    engine.NewWallClock(scale),
		lib:      lib,
		cr:       cr,
		sessions: make(map[int]*session),
	}
	sys, err := engine.New(engine.Config{
		Clock:     srv.clock,
		Allocator: engine.DynamicAllocator{},
		Method:    vod.NewMethod(vod.RoundRobin),
		Spec:      spec,
		CR:        cr,
		Alpha:     1,
		TLog:      vod.Minutes(40),
		Library:   lib,
		Seed:      1,
		Observer:  srv,
	})
	if err != nil {
		return nil, err
	}
	srv.sys = sys
	srv.disk = sys.Disk(0)
	return srv, nil
}

// OnAdmit resolves the viewer's admission wait. Engine lock held.
func (srv *server) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	srv.tally.admitted++
	if sess := srv.sessions[st.ID()]; sess != nil {
		sess.decided <- true
	}
}

// OnDefer counts enforcement deferrals (Fig. 5). Engine lock held.
func (srv *server) OnDefer(disk int, now si.Seconds) { srv.tally.deferred++ }

// OnReject resolves the viewer's admission wait negatively. Engine lock
// held.
func (srv *server) OnReject(disk int, req workload.Request, reason engine.RejectReason, now si.Seconds) {
	srv.tally.rejected++
	if sess := srv.sessions[req.ID]; sess != nil {
		sess.decided <- false
	}
}

// OnFillComplete ships a landed fill to the viewer: the frame carries the
// integral bytes newly available, by cumulative flooring so the total
// delivered equals the content length exactly. Engine lock held.
func (srv *server) OnFillComplete(disk int, st *engine.Stream, fill si.Bits, now si.Seconds) {
	sess := srv.sessions[st.ID()]
	if sess == nil {
		return
	}
	complete := st.Delivered() >= st.Required()
	total := int64(st.Delivered().Bytes())
	if complete {
		total = int64(st.Required().Bytes())
	}
	n := total - sess.sent
	if n > 0 {
		sess.sent += n
	}
	sess.push(n, complete)
}

// OnDepart finishes the viewer's stream. Under a wall clock, fill timers
// accumulate jitter while the single departure timer does not, so a
// departing stream may still owe a tail of content; flush it here so the
// client always receives exactly the requested length. Engine lock held.
func (srv *server) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	srv.tally.departed++
	sess := srv.sessions[st.ID()]
	if sess == nil {
		return
	}
	n := int64(st.Required().Bytes()) - sess.sent
	if n > 0 {
		sess.sent += n
	}
	sess.push(n, true)
}

func (srv *server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go srv.handle(conn)
	}
}

// handle runs one viewer's session: parse, feed the engine an arrival,
// await its admission decision, then relay completed fills as frames.
func (srv *server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	var seconds float64
	if _, err := fmt.Sscanf(strings.TrimSpace(line), "WATCH %f", &seconds); err != nil || seconds <= 0 {
		fmt.Fprintf(conn, "ERR bad request\n")
		return
	}

	var sess *session
	srv.clock.Do(func() {
		srv.nextID++
		sess = &session{
			id:      srv.nextID,
			decided: make(chan bool, 1),
			notify:  make(chan struct{}, 1),
		}
		srv.sessions[sess.id] = sess
		srv.sys.OnArrival(workload.Request{
			ID:      sess.id,
			Arrival: srv.clock.Now(),
			Video:   sess.id % srv.lib.Len(),
			Disk:    0,
			Viewing: si.Seconds(seconds),
		})
	})
	defer srv.clock.Do(func() {
		srv.disk.Cancel(sess.id) // no-op once the stream has departed
		delete(srv.sessions, sess.id)
	})

	// Await the engine's admission decision with bounded patience:
	// Fig. 5 defers violating arrivals; a real frontend gives up
	// eventually.
	admitted := false
	select {
	case admitted = <-sess.decided:
	case <-time.After(srv.clock.WallDuration(patience)):
		srv.clock.Do(func() {
			select {
			case admitted = <-sess.decided: // the decision raced the timeout
			default:
				srv.disk.Cancel(sess.id) // withdraw from the deferral queue
			}
		})
	}
	if !admitted {
		fmt.Fprintf(conn, "BUSY\n")
		return
	}
	if _, err := fmt.Fprintf(conn, "OK %d\n", sess.id); err != nil {
		return
	}

	// Relay loop: ship each completed fill as one frame. Pacing comes from
	// the engine — fills land when its scheduler runs them on the scaled
	// wall clock — so delivery never runs ahead of the modelled buffer.
	var frame [4]byte
	payload := make([]byte, 0, 1<<20)
	for {
		sess.mu.Lock()
		for len(sess.pending) == 0 && !sess.done {
			sess.mu.Unlock()
			<-sess.notify
			sess.mu.Lock()
		}
		batch := sess.pending
		sess.pending = nil
		done := sess.done
		sess.mu.Unlock()

		for _, n := range batch {
			if int64(cap(payload)) < n {
				payload = make([]byte, n)
			}
			payload = payload[:n]
			binary.BigEndian.PutUint32(frame[:], uint32(n))
			if _, err := conn.Write(frame[:]); err != nil {
				return
			}
			if _, err := conn.Write(payload); err != nil {
				return
			}
		}
		if done {
			binary.BigEndian.PutUint32(frame[:], 0)
			conn.Write(frame[:])
			return
		}
	}
}

// counters snapshots the admission tallies and the engine's live state
// under the clock lock.
func (srv *server) counters() (admitted, deferred, rejected, departed, inService, book int) {
	srv.clock.Do(func() {
		admitted = srv.tally.admitted
		deferred = srv.tally.deferred
		rejected = srv.tally.rejected
		departed = srv.tally.departed
		inService = srv.disk.InService()
		book = srv.disk.BookLen()
	})
	return
}

// runSelfTest connects n viewers watching 20–90 simulated seconds each
// and reports their startup latency and delivery, then a summary of the
// engine's admission accounting.
func runSelfTest(srv *server, addr string, n int, w io.Writer) error {
	type result struct {
		id      int
		watch   float64
		startup time.Duration
		bytes   int64
		err     error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			watch := 20 + 10*float64(i)
			res := result{id: i, watch: watch}
			defer func() { results[i] = res }()

			conn, err := net.Dial("tcp", addr)
			if err != nil {
				res.err = err
				return
			}
			defer conn.Close()
			start := time.Now()
			fmt.Fprintf(conn, "WATCH %g\n", watch)
			r := bufio.NewReader(conn)
			status, err := r.ReadString('\n')
			if err != nil {
				res.err = err
				return
			}
			if !strings.HasPrefix(status, "OK") {
				res.err = fmt.Errorf("not admitted: %s", strings.TrimSpace(status))
				return
			}
			first := true
			var frame [4]byte
			for {
				if _, err := io.ReadFull(r, frame[:]); err != nil {
					res.err = err
					return
				}
				if first {
					res.startup = time.Since(start)
					first = false
				}
				length := binary.BigEndian.Uint32(frame[:])
				if length == 0 {
					return
				}
				if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
					res.err = err
					return
				}
				res.bytes += int64(length)
			}
		}(i)
		time.Sleep(time.Duration(float64(2*time.Second) / srv.clock.Scale() * 10)) // stagger
	}
	wg.Wait()

	fmt.Fprintf(w, "%-8s %10s %14s %12s %s\n", "viewer", "watch(s)", "startup(wall)", "delivered", "status")
	for _, res := range results {
		status := "ok"
		if res.err != nil {
			status = res.err.Error()
		}
		fmt.Fprintf(w, "%-8d %10.0f %14s %12d %s\n",
			res.id, res.watch, res.startup.Round(time.Microsecond), res.bytes, status)
	}

	// Let the handlers' deferred cleanup drain before summarizing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, _, _, inService, _ := srv.counters(); inService == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	admitted, deferred, rejected, departed, inService, book := srv.counters()
	fmt.Fprintf(w, "summary: admitted=%d deferred=%d rejected=%d departed=%d inservice=%d book=%d\n",
		admitted, deferred, rejected, departed, inService, book)
	return nil
}
