// Command vodserver is a miniature VOD server over TCP: a thin flag
// wrapper around internal/serve, which drives the shared streaming
// runtime in internal/engine under a scaled wall clock. Time is
// compressed (one simulated minute per wall second by default) so demos
// finish quickly.
//
// Protocol: the client sends request lines, "WATCH <seconds>
// [<title>]\n"; the server answers "OK <id>\n" (admitted) or "BUSY\n"
// (rejected, or deferred past patience) and then streams
// length-prefixed frames ([4-byte big-endian length][bytes]) until the
// requested content has been delivered, ending with a zero length
// frame — the connection then takes the next request line. "STATS\n"
// instead returns one JSON stats dump and closes. SERVING.md is the
// operator's guide.
//
//	vodserver -listen :9000            # serve
//	vodserver -disks 8                 # shard across 8 disks
//	vodserver -cluster 4 -disks 8      # routed fleet: 4 servers x 8 disks
//	vodserver -stats 5s                # print a JSON stats line every 5s
//	vodserver -selftest 8              # in-process demo: 8 viewers
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"

	"repro/internal/serve"
	"repro/internal/si"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, serves, and returns
// the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vodserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:9000", "address to serve on")
		scale    = fs.Float64("scale", 60, "simulated seconds per wall second")
		disks    = fs.Int("disks", 1, "disk shards to serve from")
		stats    = fs.Duration("stats", 0, "print a JSON stats line this often (0 = off)")
		selftest = fs.Int("selftest", 0, "run N in-process viewers against the server and exit")
		shared   = fs.Bool("share", false, "enable the stream-sharing front end (prefix cache + viewer batching)")
		window   = fs.Float64("share-window", 0, "sharing prefix window in simulated seconds (0 = default 60)")
		cluster  = fs.Int("cluster", 0, "serve a routed fleet of N servers (-disks becomes per-server; 0 = single server)")
		jcomp    = fs.Bool("jitter-comp", false, "aim timers early by each shard's observed wakeup lag (EWMA) so OS jitter stops counting as underruns")
		jcompMax = fs.Duration("jitter-comp-max", 0, "cap on how early jitter compensation may fire a timer (0 = serve.DefaultJitterCompMax)")
		ladder   = fs.Bool("ladder", false, "give each title a bitrate ladder (1.5/1.0/0.5 Mbps rungs) and admit streams at their title's rate")
		downg    = fs.Bool("downgrade", false, "step arrivals down their title's ladder instead of rejecting them (requires -ladder)")
		adapt    = fs.Bool("adapt", false, "switch in-service streams across their title's ladder by buffer occupancy (requires -ladder)")
		adaptRes = fs.Float64("adapt-reservoir", 0, "down-switch threshold in worst-case service times (0 = engine default 0.25; requires -adapt)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv, err := serve.New(serve.Config{
		Scale:          *scale,
		Disks:          *disks,
		Cluster:        *cluster,
		Share:          *shared,
		ShareWindow:    si.Seconds(*window),
		JitterComp:     *jcomp,
		JitterCompMax:  *jcompMax,
		Ladder:         *ladder,
		Downgrade:      *downg,
		Adapt:          *adapt,
		AdaptReservoir: *adaptRes,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer srv.Stop()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer ln.Close()
	if *cluster >= 2 {
		log.Printf("vodserver listening on %s (time x%g, %d servers x %d disks, routed fleet)",
			ln.Addr(), *scale, *cluster, *disks)
	} else {
		log.Printf("vodserver listening on %s (time x%g, %d disk shards)", ln.Addr(), *scale, *disks)
	}

	if *stats > 0 {
		stop := srv.StatsEvery(*stats, stdout)
		defer stop()
	}
	if *selftest > 0 {
		go srv.Serve(ln)
		if err := serve.SelfTest(srv, ln.Addr().String(), *selftest, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	srv.Serve(ln)
	return 0
}
