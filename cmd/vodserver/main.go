// Command vodserver is a miniature VOD server over TCP driven by the
// shared streaming runtime in internal/engine: the same admission,
// allocation, and scheduling code the simulator validates paces real
// deliveries here under a scaled wall clock. The server itself owns no
// buffer-sizing or admission logic — it is a driver: it translates TCP
// connections into engine arrivals and engine fill completions into
// frames on the wire. Time is compressed (one simulated minute per wall
// second by default) so demos finish quickly.
//
// The server is sharded per disk, mirroring the paper's per-disk service
// model: every disk runs on its own WallClock shard (its own lock, timer
// wheel, and driver goroutine), sessions are routed to the shard holding
// their title by the catalog's placement, and admission tallies merge
// across shards through lock-free per-shard counters — no global lock
// anywhere on the serving path.
//
// Protocol: the client sends one line, "WATCH <seconds>\n"; the server
// answers "OK <id>\n" (admitted) or "BUSY\n" (rejected, or deferred past
// patience) and then streams length-prefixed frames
// ([4-byte big-endian length][bytes]) until the requested content has
// been delivered, closing with a zero length frame.
//
//	vodserver -listen :9000            # serve
//	vodserver -disks 8                 # shard across 8 disks
//	vodserver -selftest 8              # in-process demo: 8 viewers
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	vod "repro"
	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/si"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, serves, and returns
// the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vodserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:9000", "address to serve on")
		scale    = fs.Float64("scale", 60, "simulated seconds per wall second")
		disks    = fs.Int("disks", 1, "disk shards to serve from")
		selftest = fs.Int("selftest", 0, "run N in-process viewers against the server and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv, err := newServer(*scale, *disks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer srv.clock.Stop()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer ln.Close()
	log.Printf("vodserver listening on %s (time x%g, %d disk shards)", ln.Addr(), *scale, *disks)

	if *selftest > 0 {
		go srv.acceptLoop(ln)
		if err := runSelfTest(srv, ln.Addr().String(), *selftest, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	srv.acceptLoop(ln)
	return 0
}

// patience bounds how long an arrival may sit in the deferral queue
// before the frontend gives up, in engine seconds. It matches the old
// hand-rolled server's 100 one-second retries.
const patience = si.Seconds(100)

// server is the live driver: an engine System under a sharded WallClock
// plus one serverShard of viewer registry per disk. Nothing here is
// guarded by a global lock — session state lives in the owning shard
// (guarded by that shard's clock lock), IDs come from an atomic counter,
// and tallies merge lock-free.
type server struct {
	clock *engine.WallClock
	sys   *engine.System
	lib   *catalog.Library
	cr    vod.BitRate

	engine.NopObserver // the server observes only what it overrides

	nextID atomic.Int64
	shards []*serverShard
}

// serverShard is one disk's slice of the driver: the engine disk, the
// wall-clock shard that drives it, and the sessions it serves. The
// sessions map is engine state — read and written only under the shard's
// clock lock (inside clock.Do or inside Observer callbacks, which the
// shard serializes). Two shards never touch each other's state, so the
// serving path has no cross-disk contention.
type serverShard struct {
	disk     *engine.Disk
	clock    *engine.WallShard
	sessions map[int]*session
	tally    shardTally
}

// shardTally counts one disk's admission outcomes. The fields are atomic
// so counters() can merge every shard's tally without taking any shard's
// engine lock: each shard's observer callbacks write only their own
// shard's counters, and readers sum across shards lock-free. The pad
// keeps neighbouring shards' counters off one cache line.
type shardTally struct {
	admitted, deferred, rejected, departed atomic.Int64
	_                                      [4]int64
}

// session is one connected viewer. The observer side (engine lock) pushes
// completed fills; the connection goroutine pops and ships them. The two
// sides share only the small mu-guarded queue, so observer callbacks
// never block on the network.
type session struct {
	id      int
	decided chan bool // admission outcome, buffered

	mu      sync.Mutex
	pending []int64 // frame sizes (bytes) ready to ship
	done    bool    // all content delivered (or the stream departed)
	notify  chan struct{} // buffered kick for the writer

	sent int64 // cumulative bytes handed to the writer (engine lock side)
}

// push queues n bytes for the writer (engine lock held by the caller).
func (s *session) push(n int64, done bool) {
	s.mu.Lock()
	if n > 0 {
		s.pending = append(s.pending, n)
	}
	if done {
		s.done = true
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func newServer(scale float64, disks int) (*server, error) {
	if disks < 1 {
		return nil, fmt.Errorf("vodserver: need at least 1 disk, got %d", disks)
	}
	spec, cr, _ := vod.PaperEnvironment()
	lib, err := catalog.New(catalog.Config{
		Titles: 6 * disks, Disks: disks, Spec: spec, PopularityTheta: 0.271,
	})
	if err != nil {
		return nil, err
	}
	srv := &server{
		clock: engine.NewWallClock(scale),
		lib:   lib,
		cr:    cr,
	}
	sys, err := engine.New(engine.Config{
		Clock:     srv.clock,
		Allocator: engine.DynamicAllocator{},
		Method:    vod.NewMethod(vod.RoundRobin),
		Spec:      spec,
		CR:        cr,
		Alpha:     1,
		TLog:      vod.Minutes(40),
		Library:   lib,
		Seed:      1,
		Observer:  srv,
	})
	if err != nil {
		return nil, err
	}
	srv.sys = sys
	for d := 0; d < disks; d++ {
		srv.shards = append(srv.shards, &serverShard{
			disk:     sys.Disk(d),
			clock:    srv.clock.Shard(d),
			sessions: make(map[int]*session),
		})
	}
	return srv, nil
}

// OnAdmit resolves the viewer's admission wait. Shard lock held.
func (srv *server) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	sh := srv.shards[disk]
	sh.tally.admitted.Add(1)
	if sess := sh.sessions[st.ID()]; sess != nil {
		sess.decided <- true
	}
}

// OnDefer counts enforcement deferrals (Fig. 5). Shard lock held.
func (srv *server) OnDefer(disk int, now si.Seconds) {
	srv.shards[disk].tally.deferred.Add(1)
}

// OnReject resolves the viewer's admission wait negatively. Shard lock
// held.
func (srv *server) OnReject(disk int, req workload.Request, reason engine.RejectReason, now si.Seconds) {
	sh := srv.shards[disk]
	sh.tally.rejected.Add(1)
	if sess := sh.sessions[req.ID]; sess != nil {
		sess.decided <- false
	}
}

// OnFillComplete ships a landed fill to the viewer: the frame carries the
// integral bytes newly available, by cumulative flooring so the total
// delivered equals the content length exactly. Shard lock held.
func (srv *server) OnFillComplete(disk int, st *engine.Stream, fill si.Bits, now si.Seconds) {
	sess := srv.shards[disk].sessions[st.ID()]
	if sess == nil {
		return
	}
	complete := st.Delivered() >= st.Required()
	total := int64(st.Delivered().Bytes())
	if complete {
		total = int64(st.Required().Bytes())
	}
	n := total - sess.sent
	if n > 0 {
		sess.sent += n
	}
	sess.push(n, complete)
}

// OnDepart finishes the viewer's stream. Under a wall clock, fill timers
// accumulate jitter while the single departure timer does not, so a
// departing stream may still owe a tail of content; flush it here so the
// client always receives exactly the requested length. Shard lock held.
func (srv *server) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	sh := srv.shards[disk]
	sh.tally.departed.Add(1)
	sess := sh.sessions[st.ID()]
	if sess == nil {
		return
	}
	n := int64(st.Required().Bytes()) - sess.sent
	if n > 0 {
		sess.sent += n
	}
	sess.push(n, true)
}

func (srv *server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go srv.handle(conn)
	}
}

// handle runs one viewer's session: parse, feed the engine an arrival,
// await its admission decision, then relay completed fills as frames.
func (srv *server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	var seconds float64
	if _, err := fmt.Sscanf(strings.TrimSpace(line), "WATCH %f", &seconds); err != nil || seconds <= 0 {
		fmt.Fprintf(conn, "ERR bad request\n")
		return
	}

	// Route the session to the disk shard holding its title: IDs come
	// from the global atomic counter, everything else happens on the
	// owning shard under its own lock.
	id := int(srv.nextID.Add(1))
	video := id % srv.lib.Len()
	sh := srv.shards[srv.lib.Placement(video).Disk]
	sess := &session{
		id:      id,
		decided: make(chan bool, 1),
		notify:  make(chan struct{}, 1),
	}
	sh.clock.Do(func() {
		sh.sessions[id] = sess
		srv.sys.OnArrival(workload.Request{
			ID:      id,
			Arrival: srv.clock.Now(),
			Video:   video,
			Disk:    sh.disk.ID(),
			Viewing: si.Seconds(seconds),
		})
	})
	defer sh.clock.Do(func() {
		sh.disk.Cancel(id) // no-op once the stream has departed
		delete(sh.sessions, id)
	})

	// Await the engine's admission decision with bounded patience:
	// Fig. 5 defers violating arrivals; a real frontend gives up
	// eventually.
	admitted := false
	select {
	case admitted = <-sess.decided:
	case <-time.After(srv.clock.WallDuration(patience)):
		sh.clock.Do(func() {
			select {
			case admitted = <-sess.decided: // the decision raced the timeout
			default:
				sh.disk.Cancel(id) // withdraw from the deferral queue
			}
		})
	}
	if !admitted {
		fmt.Fprintf(conn, "BUSY\n")
		return
	}
	if _, err := fmt.Fprintf(conn, "OK %d\n", sess.id); err != nil {
		return
	}

	// Relay loop: ship each completed fill as one frame. Pacing comes from
	// the engine — fills land when its scheduler runs them on the scaled
	// wall clock — so delivery never runs ahead of the modelled buffer.
	var frame [4]byte
	payload := make([]byte, 0, 1<<20)
	for {
		sess.mu.Lock()
		for len(sess.pending) == 0 && !sess.done {
			sess.mu.Unlock()
			<-sess.notify
			sess.mu.Lock()
		}
		batch := sess.pending
		sess.pending = nil
		done := sess.done
		sess.mu.Unlock()

		for _, n := range batch {
			if int64(cap(payload)) < n {
				payload = make([]byte, n)
			}
			payload = payload[:n]
			binary.BigEndian.PutUint32(frame[:], uint32(n))
			if _, err := conn.Write(frame[:]); err != nil {
				return
			}
			if _, err := conn.Write(payload); err != nil {
				return
			}
		}
		if done {
			binary.BigEndian.PutUint32(frame[:], 0)
			conn.Write(frame[:])
			return
		}
	}
}

// counters snapshots the admission tallies and the engine's live state.
// Tallies merge lock-free across shards; the engine reads take each
// shard's lock in turn, never more than one at a time.
func (srv *server) counters() (admitted, deferred, rejected, departed, inService, book int) {
	for _, sh := range srv.shards {
		admitted += int(sh.tally.admitted.Load())
		deferred += int(sh.tally.deferred.Load())
		rejected += int(sh.tally.rejected.Load())
		departed += int(sh.tally.departed.Load())
		sh.clock.Do(func() {
			inService += sh.disk.InService()
			book += sh.disk.BookLen()
		})
	}
	return
}

// runSelfTest connects n viewers watching 20–90 simulated seconds each
// and reports their startup latency and delivery, then a summary of the
// engine's admission accounting.
func runSelfTest(srv *server, addr string, n int, w io.Writer) error {
	type result struct {
		id      int
		watch   float64
		startup time.Duration
		bytes   int64
		err     error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			watch := 20 + 10*float64(i)
			res := result{id: i, watch: watch}
			defer func() { results[i] = res }()

			conn, err := net.Dial("tcp", addr)
			if err != nil {
				res.err = err
				return
			}
			defer conn.Close()
			start := time.Now()
			fmt.Fprintf(conn, "WATCH %g\n", watch)
			r := bufio.NewReader(conn)
			status, err := r.ReadString('\n')
			if err != nil {
				res.err = err
				return
			}
			if !strings.HasPrefix(status, "OK") {
				res.err = fmt.Errorf("not admitted: %s", strings.TrimSpace(status))
				return
			}
			first := true
			var frame [4]byte
			for {
				if _, err := io.ReadFull(r, frame[:]); err != nil {
					res.err = err
					return
				}
				if first {
					res.startup = time.Since(start)
					first = false
				}
				length := binary.BigEndian.Uint32(frame[:])
				if length == 0 {
					return
				}
				if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
					res.err = err
					return
				}
				res.bytes += int64(length)
			}
		}(i)
		time.Sleep(time.Duration(float64(2*time.Second) / srv.clock.Scale() * 10)) // stagger
	}
	wg.Wait()

	fmt.Fprintf(w, "%-8s %10s %14s %12s %s\n", "viewer", "watch(s)", "startup(wall)", "delivered", "status")
	for _, res := range results {
		status := "ok"
		if res.err != nil {
			status = res.err.Error()
		}
		fmt.Fprintf(w, "%-8d %10.0f %14s %12d %s\n",
			res.id, res.watch, res.startup.Round(time.Microsecond), res.bytes, status)
	}

	// Let the handlers' deferred cleanup drain before summarizing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, _, _, inService, _ := srv.counters(); inService == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	admitted, deferred, rejected, departed, inService, book := srv.counters()
	fmt.Fprintf(w, "summary: admitted=%d deferred=%d rejected=%d departed=%d inservice=%d book=%d\n",
		admitted, deferred, rejected, departed, inService, book)
	return nil
}
