package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// startTestServer spins a server on an ephemeral port with aggressive
// time compression so tests finish quickly.
func startTestServer(t *testing.T) (*server, string) {
	return startTestServerDisks(t, 1)
}

// startTestServerDisks is startTestServer sharded across disks.
func startTestServerDisks(t *testing.T, disks int) (*server, string) {
	t.Helper()
	srv, err := newServer(600, disks)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ln.Close()
		srv.clock.Stop()
	})
	go srv.acceptLoop(ln)
	return srv, ln.Addr().String()
}

// watch runs one client session and returns the delivered byte count.
func watch(t *testing.T, addr string, seconds float64) int64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "WATCH %g\n", seconds)
	r := bufio.NewReader(conn)
	status, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(status, "OK") {
		t.Fatalf("not admitted: %q", status)
	}
	var total int64
	var frame [4]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			t.Fatal(err)
		}
		length := binary.BigEndian.Uint32(frame[:])
		if length == 0 {
			return total
		}
		if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
			t.Fatal(err)
		}
		total += int64(length)
	}
}

// drained waits until the engine holds no in-service streams.
func drained(t *testing.T, srv *server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, _, _, inService, _ := srv.counters(); inService == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, _, _, _, inService, _ := srv.counters()
	t.Errorf("engine still holds %d in-service streams", inService)
}

func TestServerDeliversExactContent(t *testing.T) {
	_, addr := startTestServer(t)
	// 10 simulated seconds at 1.5 Mbps = 15 Mbit = 1,875,000 bytes.
	got := watch(t, addr, 10)
	if got != 1_875_000 {
		t.Errorf("delivered %d bytes, want 1875000", got)
	}
}

func TestServerConcurrentViewers(t *testing.T) {
	srv, addr := startTestServer(t)
	done := make(chan int64, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- watch(t, addr, 5) }()
	}
	for i := 0; i < 4; i++ {
		if got := <-done; got != 937_500 {
			t.Errorf("viewer delivered %d bytes, want 937500", got)
		}
	}
	drained(t, srv)
}

// The server's tallies are fed by engine observer callbacks, so after all
// viewers finish they must agree with the engine's own books: everyone
// admitted has departed, and the inertia admission book is empty again.
func TestServerCountsMatchAdmissionBook(t *testing.T) {
	srv, addr := startTestServer(t)
	const viewers = 3
	done := make(chan int64, viewers)
	for i := 0; i < viewers; i++ {
		go func() { done <- watch(t, addr, 5) }()
	}
	for i := 0; i < viewers; i++ {
		<-done
	}
	drained(t, srv)
	admitted, deferred, rejected, departed, inService, book := srv.counters()
	if admitted != viewers || rejected != 0 {
		t.Errorf("admitted=%d rejected=%d, want %d admitted and 0 rejected", admitted, rejected, viewers)
	}
	if departed != admitted {
		t.Errorf("departed=%d, want every admitted stream (%d) departed", departed, admitted)
	}
	if inService != 0 || book != 0 {
		t.Errorf("engine books not drained: inservice=%d book=%d", inService, book)
	}
	if deferred < 0 {
		t.Errorf("deferred=%d", deferred)
	}
}

// Across disk shards, viewers are routed by the catalog's placement and
// served concurrently by independent shard drivers; every shard's tally
// and book must still reconcile.
func TestServerShardedDisks(t *testing.T) {
	srv, addr := startTestServerDisks(t, 4)
	const viewers = 8
	done := make(chan int64, viewers)
	for i := 0; i < viewers; i++ {
		go func() { done <- watch(t, addr, 5) }()
	}
	for i := 0; i < viewers; i++ {
		if got := <-done; got != 937_500 {
			t.Errorf("viewer delivered %d bytes, want 937500", got)
		}
	}
	drained(t, srv)
	admitted, _, rejected, departed, inService, book := srv.counters()
	if admitted != viewers || rejected != 0 || departed != viewers {
		t.Errorf("admitted=%d rejected=%d departed=%d, want %d/0/%d", admitted, rejected, departed, viewers, viewers)
	}
	if inService != 0 || book != 0 {
		t.Errorf("engine books not drained: inservice=%d book=%d", inService, book)
	}
	// Placement must have spread the 8 sequential viewer IDs over more
	// than one shard (titles stripe across disks).
	used := 0
	for _, sh := range srv.shards {
		if sh.tally.admitted.Load() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d shard(s) served traffic, want routing across disks", used)
	}
}

func TestServerRejectsBadRequest(t *testing.T) {
	_, addr := startTestServer(t)
	for _, bad := range []string{"GIMME\n", "WATCH\n", "WATCH -5\n", "WATCH x\n"} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(conn, bad)
		reply, err := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if err != nil || !strings.HasPrefix(reply, "ERR") {
			t.Errorf("request %q: reply %q, err %v; want ERR", strings.TrimSpace(bad), strings.TrimSpace(reply), err)
		}
	}
}

func TestRunSelfTest(t *testing.T) {
	srv, addr := startTestServer(t)
	var out strings.Builder
	if err := runSelfTest(srv, addr, 3, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), " ok"); got != 3 {
		t.Errorf("self test ok lines = %d, want 3\n%s", got, out.String())
	}
	// The summary line reports the engine's admission accounting.
	var admitted, deferred, rejected, departed, inService, book int
	sum := out.String()[strings.Index(out.String(), "summary:"):]
	if _, err := fmt.Sscanf(sum, "summary: admitted=%d deferred=%d rejected=%d departed=%d inservice=%d book=%d",
		&admitted, &deferred, &rejected, &departed, &inService, &book); err != nil {
		t.Fatalf("unparsable summary %q: %v", strings.TrimSpace(sum), err)
	}
	if admitted != 3 || departed != 3 || inService != 0 || book != 0 {
		t.Errorf("summary admitted=%d departed=%d inservice=%d book=%d, want 3/3/0/0", admitted, departed, inService, book)
	}
}

// run wires flags, the server, and the self test together end to end.
func TestRunSelfTestFlag(t *testing.T) {
	var out, errs strings.Builder
	if code := run([]string{"-listen", "127.0.0.1:0", "-scale", "600", "-selftest", "2"}, &out, &errs); code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, errs.String())
	}
	if got := strings.Count(out.String(), " ok"); got != 2 {
		t.Errorf("ok lines = %d, want 2\n%s", got, out.String())
	}
}
