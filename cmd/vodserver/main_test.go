package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// startTestServer spins a server on an ephemeral port with aggressive
// time compression so tests finish quickly.
func startTestServer(t *testing.T) (*server, string) {
	t.Helper()
	srv := newServer(600)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.acceptLoop(ln)
	return srv, ln.Addr().String()
}

// watch runs one client session and returns the delivered byte count.
func watch(t *testing.T, addr string, seconds float64) int64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "WATCH %g\n", seconds)
	r := bufio.NewReader(conn)
	status, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(status, "OK") {
		t.Fatalf("not admitted: %q", status)
	}
	var total int64
	var frame [4]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			t.Fatal(err)
		}
		length := binary.BigEndian.Uint32(frame[:])
		if length == 0 {
			return total
		}
		if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
			t.Fatal(err)
		}
		total += int64(length)
	}
}

func TestServerDeliversExactContent(t *testing.T) {
	_, addr := startTestServer(t)
	// 10 simulated seconds at 1.5 Mbps = 15 Mbit = 1,875,000 bytes.
	got := watch(t, addr, 10)
	if got != 1_875_000 {
		t.Errorf("delivered %d bytes, want 1875000", got)
	}
}

func TestServerConcurrentViewers(t *testing.T) {
	srv, addr := startTestServer(t)
	done := make(chan int64, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- watch(t, addr, 5) }()
	}
	for i := 0; i < 4; i++ {
		if got := <-done; got != 937_500 {
			t.Errorf("viewer delivered %d bytes, want 937500", got)
		}
	}
	// All sessions released.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.ctl.InService() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("controller still holds %d sessions", srv.ctl.InService())
}

func TestServerRejectsBadRequest(t *testing.T) {
	_, addr := startTestServer(t)
	for _, bad := range []string{"GIMME\n", "WATCH\n", "WATCH -5\n", "WATCH x\n"} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(conn, bad)
		reply, err := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if err != nil || !strings.HasPrefix(reply, "ERR") {
			t.Errorf("request %q: reply %q, err %v; want ERR", strings.TrimSpace(bad), strings.TrimSpace(reply), err)
		}
	}
}

func TestRunSelfTest(t *testing.T) {
	_, addr := startTestServer(t)
	var out strings.Builder
	if err := runSelfTest(addr, 3, 600, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), " ok"); got != 3 {
		t.Errorf("self test ok lines = %d, want 3\n%s", got, out.String())
	}
}
