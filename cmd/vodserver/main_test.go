package main

import (
	"strings"
	"testing"
)

// run wires flags, the server, and the self test together end to end.
func TestRunSelfTestFlag(t *testing.T) {
	var out, errs strings.Builder
	if code := run([]string{"-listen", "127.0.0.1:0", "-scale", "600", "-selftest", "2"}, &out, &errs); code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, errs.String())
	}
	if got := strings.Count(out.String(), " ok"); got != 2 {
		t.Errorf("ok lines = %d, want 2\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "underruns=") {
		t.Errorf("summary lacks the underruns counter\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errs strings.Builder
	if code := run([]string{"-disks", "0", "-selftest", "1"}, &out, &errs); code != 1 {
		t.Fatalf("run with 0 disks exited %d, want 1", code)
	}
	if !strings.Contains(errs.String(), "disk") {
		t.Errorf("stderr %q does not mention the disk count", errs.String())
	}
}
