package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	vod "repro"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestList(t *testing.T) {
	code, out, _ := runCapture(t, "-run", "list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"table3", "fig7", "fig14", "ablation-pages"} {
		if !strings.Contains(out, id+"\n") {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if code, _, _ := runCapture(t, "-nonsense"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, errw := runCapture(t, "-format", "xml", "-run", "table3"); code != 2 || !strings.Contains(errw, "xml") {
		t.Errorf("bad format: exit %d stderr %q", code, errw)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errw := runCapture(t, "-run", "no-such-figure")
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(errw, "no-such-figure") {
		t.Errorf("stderr does not name the failing id: %q", errw)
	}
}

// Table 3 is analytic (no simulation), so its rendering is a stable,
// cheap golden for both output formats.
func TestGoldenTable3(t *testing.T) {
	code, out, _ := runCapture(t, "-run", "table3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "table3.txt", out)

	code, out, _ = runCapture(t, "-run", "table3", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "table3.csv", out)
}

// Determinism regression for the engine refactor: the Table 3 report is
// byte-identical at one worker and at eight, and matches the golden
// committed before internal/sim was split into engine + driver.
func TestTable3DeterministicAcrossWorkers(t *testing.T) {
	code, one, _ := runCapture(t, "-run", "table3", "-format", "csv", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	code, eight, _ := runCapture(t, "-run", "table3", "-format", "csv", "-workers", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if one != eight {
		t.Error("-workers 1 and -workers 8 reports differ")
	}
	checkGolden(t, "table3.csv", one)
}

// A quick simulated figure with 2 seeds exercises the full pipeline:
// deterministic parallel seeding plus the replication-statistics columns.
// The golden is rendered with the default worker count, so a match also
// re-checks that output does not depend on parallelism.
func TestGoldenFig7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	code, out, _ := runCapture(t, "-run", "fig7", "-quick", "-seeds", "2", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "stddev") || !strings.Contains(out, "ci95") {
		t.Error("CSV missing replication-statistics columns")
	}
	checkGolden(t, "fig7_quick.csv", out)

	// Same run pinned to one worker must produce the identical bytes.
	code, seq, _ := runCapture(t, "-run", "fig7", "-quick", "-seeds", "2", "-format", "csv", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if seq != out {
		t.Error("-workers 1 output differs from default worker count")
	}
}

// The sharing scenario's paired-arm report is a golden too: the shared
// path (viewer batching, prefix-cache replay, piggyback extends) must
// stay byte-deterministic across worker counts, exactly like the
// engine-only experiments.
func TestGoldenZipfSharingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	code, out, _ := runCapture(t, "-run", "zipf-sharing", "-quick", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "zipf_sharing_quick.csv", out)

	code, one, _ := runCapture(t, "-run", "zipf-sharing", "-quick", "-format", "csv", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	code, eight, _ := runCapture(t, "-run", "zipf-sharing", "-quick", "-format", "csv", "-workers", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if one != out || eight != out {
		t.Error("zipf-sharing report depends on the worker count")
	}
}

// The fleet scenario's paired-arm report is the PR's acceptance
// artifact: the routed, replicated fleet admits at least twice the
// single-copy fleet at zero underruns, the measured peaks land on the
// analytic max-flow bound curve, and the whole report is
// byte-deterministic across worker counts like every other experiment.
func TestGoldenFleetRoutingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	code, out, _ := runCapture(t, "-run", "fleet-routing", "-quick", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "fleet_routing_quick.csv", out)
	if strings.Contains(out, "VIOLATED") {
		t.Error("fleet-routing reports underruns")
	}

	code, one, _ := runCapture(t, "-run", "fleet-routing", "-quick", "-format", "csv", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	code, eight, _ := runCapture(t, "-run", "fleet-routing", "-quick", "-format", "csv", "-workers", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if one != out || eight != out {
		t.Error("fleet-routing report depends on the worker count")
	}
}

// The QoE experiment's paired-arm report is this PR's acceptance
// artifact: downgrading admission serves strictly more viewers than
// reject-only at no more underruns, at every load point, and the report
// is byte-deterministic across worker counts.
func TestGoldenQoEDowngradeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	code, out, _ := runCapture(t, "-run", "qoe-downgrade", "-quick", "-seeds", "2", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "qoe_downgrade_quick.csv", out)
	for _, col := range []string{"startup delay", "starvation prob", "downgrades"} {
		if !strings.Contains(out, col) {
			t.Errorf("report missing %q column", col)
		}
	}

	// The acceptance-gate note only renders in the text format.
	code, txt, _ := runCapture(t, "-run", "qoe-downgrade", "-quick", "-seeds", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(txt, "gate held") || strings.Contains(txt, "VIOLATED") {
		t.Error("qoe-downgrade acceptance gate failed")
	}

	code, one, _ := runCapture(t, "-run", "qoe-downgrade", "-quick", "-seeds", "2", "-format", "csv", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	code, eight, _ := runCapture(t, "-run", "qoe-downgrade", "-quick", "-seeds", "2", "-format", "csv", "-workers", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if one != out || eight != out {
		t.Error("qoe-downgrade report depends on the worker count")
	}
}

func TestGoldenQoEAdaptationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	code, out, _ := runCapture(t, "-run", "qoe-adaptation", "-quick", "-seeds", "2", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "qoe_adaptation_quick.csv", out)
	for _, col := range []string{"up-switches", "down-switches", "underruns", "tw rung (Mbps)"} {
		if !strings.Contains(out, col) {
			t.Errorf("report missing %q column", col)
		}
	}

	// The acceptance-gate note only renders in the text format.
	code, txt, _ := runCapture(t, "-run", "qoe-adaptation", "-quick", "-seeds", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(txt, "gate held") || strings.Contains(txt, "VIOLATED") {
		t.Error("qoe-adaptation acceptance gate failed")
	}

	code, one, _ := runCapture(t, "-run", "qoe-adaptation", "-quick", "-seeds", "2", "-format", "csv", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	code, eight, _ := runCapture(t, "-run", "qoe-adaptation", "-quick", "-seeds", "2", "-format", "csv", "-workers", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if one != out || eight != out {
		t.Error("qoe-adaptation report depends on the worker count")
	}
}

// renderCSV reproduces the -format csv rendering for a report produced
// by calling the library directly (needed for options the CLI does not
// expose, like the uniform-ladder oracle).
func renderCSV(t *testing.T, id string, opt vod.ExperimentOptions) string {
	t.Helper()
	rep, err := vod.RunExperiment(id, opt)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	fmt.Fprintf(&out, "# %s: %s\n", rep.ID, rep.Title)
	if err := rep.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// The multi-rate oracle: running the single-rate experiments with every
// title carrying a degenerate one-rung ladder — so each request arrives
// stamped with the (uniform) base rate and the engine runs in multi-rate
// mode — must reproduce the committed single-rate goldens byte for byte.
// This pins the tentpole's contract that uniform-rate configurations go
// through code paths equivalent to the legacy single-rate ones.
func TestUniformLadderOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	for _, tc := range []struct {
		id, golden string
		opt        vod.ExperimentOptions
	}{
		{"table3", "table3.csv", vod.ExperimentOptions{UniformLadder: true}},
		{"fig7", "fig7_quick.csv", vod.ExperimentOptions{Quick: true, Seeds: 2, UniformLadder: true}},
	} {
		got := renderCSV(t, tc.id, tc.opt)
		want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("%s with a uniform ladder differs from the single-rate golden %s", tc.id, tc.golden)
		}
	}
}
