// Command experiments regenerates the paper's evaluation artifacts: every
// table and figure of Section 5, plus the ablations DESIGN.md calls out.
//
// Examples:
//
//	experiments -run all
//	experiments -run fig9,fig13,table4 -seeds 5
//	experiments -run fig14 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	vod "repro"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all' / 'list'")
		seeds   = flag.Int("seeds", 3, "simulation seeds averaged per data point")
		quick   = flag.Bool("quick", false, "smaller sweeps and shorter horizons")
		format  = flag.String("format", "text", "output format: text or csv")
		verbose = flag.Bool("v", false, "print per-step progress to stderr")
	)
	flag.Parse()

	if *run == "list" {
		for _, id := range vod.Experiments() {
			fmt.Println(id)
		}
		return
	}
	ids := vod.Experiments()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	opt := vod.ExperimentOptions{Seeds: *seeds, Quick: *quick}
	if *verbose {
		opt.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}

	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		rep, err := vod.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n", rep.ID, rep.Title)
			if err := rep.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				failed = true
			}
		default:
			fmt.Print(rep.String())
		}
		fmt.Fprintf(os.Stderr, "%s completed in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
