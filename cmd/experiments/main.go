// Command experiments regenerates the paper's evaluation artifacts: every
// table and figure of Section 5, plus the ablations DESIGN.md calls out.
//
// Examples:
//
//	experiments -run all
//	experiments -run fig9,fig13,table4 -seeds 5
//	experiments -run fig14 -quick -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	vod "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes the selected
// experiments, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs  = fs.String("run", "all", "comma-separated experiment ids, or 'all' / 'list'")
		seeds   = fs.Int("seeds", 3, "simulation seeds averaged per data point")
		quick   = fs.Bool("quick", false, "smaller sweeps and shorter horizons")
		format  = fs.String("format", "text", "output format: text or csv")
		workers = fs.Int("workers", runtime.NumCPU(), "max parallel simulation runs (<=0 uses GOMAXPROCS)")
		seed    = fs.Int64("seed", 0, "base seed for the deterministic run-seed derivation")
		verbose = fs.Bool("v", false, "print per-step progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(stderr, "unknown -format %q (want text or csv)\n", *format)
		return 2
	}

	if *runIDs == "list" {
		for _, id := range vod.Experiments() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	ids := vod.Experiments()
	if *runIDs != "all" {
		ids = strings.Split(*runIDs, ",")
	}
	opt := vod.ExperimentOptions{Seeds: *seeds, Quick: *quick, Workers: *workers, BaseSeed: *seed}
	if *verbose {
		opt.Progress = func(s string) { fmt.Fprintln(stderr, "  "+s) }
	}

	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		rep, err := vod.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		switch *format {
		case "csv":
			fmt.Fprintf(stdout, "# %s: %s\n", rep.ID, rep.Title)
			if err := rep.WriteCSV(stdout); err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", id, err)
				failed = true
			}
		default:
			fmt.Fprint(stdout, rep.String())
		}
		fmt.Fprintf(stderr, "%s completed in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		return 1
	}
	return 0
}
