// Command vodcalc is the analysis calculator: it evaluates the paper's
// closed-form results — buffer sizes (Eq. 5, Theorem 1), worst initial
// latencies (Eqs. 2–4), and minimum memory requirements (Theorems 2–4) —
// for a chosen scheduling method and load, or prints the full sizing
// table.
//
// Examples:
//
//	vodcalc -method rr -n 10 -k 4
//	vodcalc -method sweep -table
//	vodcalc -method gss -n 79 -k 0
package main

import (
	"flag"
	"fmt"
	"os"

	vod "repro"
)

func main() {
	var (
		methodFlag = flag.String("method", "rr", "scheduling method: rr, sweep, gss")
		n          = flag.Int("n", 10, "number of requests in service")
		k          = flag.Int("k", 4, "estimated additional requests (dynamic scheme)")
		alpha      = flag.Int("alpha", 1, "inertia slack alpha (>= 1)")
		cr         = flag.Float64("cr", 1.5, "consumption rate in Mbps")
		table      = flag.Bool("table", false, "print the dynamic sizing table for all n (at the given k)")
	)
	flag.Parse()

	kind, err := vod.ParseMethod(*methodFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m := vod.NewMethod(kind)
	spec := vod.Barracuda9LP()
	rate := vod.Mbps(*cr)
	p := vod.Params{TR: spec.TransferRate, CR: rate, N: vod.DeriveN(spec.TransferRate, rate), Alpha: *alpha}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("disk: %s  TR=%v  Cyln=%d  N=%d\n", spec.Name, spec.TransferRate, spec.Cylinders, p.N)
	fmt.Printf("method: %v  stream rate: %v  alpha: %d\n\n", m, rate, p.Alpha)

	if *table {
		fmt.Printf("%4s  %14s  %14s  %14s\n", "n", "DL", "static BS(N)", fmt.Sprintf("dynamic BS_%d(n)", *k))
		staticBS := vod.StaticBufferSize(p, vod.WorstDiskLatency(m, spec, p.N), p.N)
		for i := 1; i <= p.N; i++ {
			dl := vod.WorstDiskLatency(m, spec, i)
			fmt.Printf("%4d  %14v  %14v  %14v\n", i, dl, staticBS, vod.DynamicBufferSize(p, dl, i, *k))
		}
		return
	}

	if *n < 1 || *n > p.N {
		fmt.Fprintf(os.Stderr, "n must be in [1, %d]\n", p.N)
		os.Exit(2)
	}
	dl := vod.WorstDiskLatency(m, spec, *n)
	dlN := vod.WorstDiskLatency(m, spec, p.N)
	staticBS := vod.StaticBufferSize(p, dlN, p.N)
	dynBS := vod.DynamicBufferSize(p, dl, *n, *k)
	kk := *k
	if kk > p.N-*n {
		kk = p.N - *n
	}

	fmt.Printf("per-service worst disk latency DL(n=%d): %v\n\n", *n, dl)
	fmt.Printf("%-34s %14s %14s\n", "", "static", "dynamic")
	fmt.Printf("%-34s %14v %14v\n", "buffer size", staticBS, dynBS)
	fmt.Printf("%-34s %14v %14v\n", "usage period (BS/CR)",
		p.UsagePeriod(staticBS), p.UsagePeriod(dynBS))
	fmt.Printf("%-34s %14v %14v\n", "worst initial latency",
		vod.WorstInitialLatency(m, spec, staticBS, *n),
		vod.WorstInitialLatency(m, spec, dynBS, *n))
	fmt.Printf("%-34s %14v %14v\n", "min memory for this load",
		vod.MinMemoryStatic(p, m, spec, *n),
		vod.MinMemoryDynamic(p, m, spec, *n, kk))
}
