// Command docscheck is the repository's documentation gate (`make
// docs-check`). It enforces two invariants CI can hold without network
// access:
//
//   - every relative link in the maintained markdown files resolves to
//     a file or directory in the tree (external http(s) links and pure
//     in-page #fragments are not followed);
//   - README.md's architecture inventory names every package under
//     internal/ and cmd/ — a new package cannot land undocumented.
//
// The retrieved source artifacts (PAPER.md, PAPERS.md, SNIPPETS.md,
// ISSUE.md) are excluded: they are inputs to the project, not
// documentation of it, and carry extraction debris no one maintains.
package main

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// skippedDocs are markdown files the link gate ignores.
var skippedDocs = map[string]bool{
	"PAPER.md":    true,
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
	"ISSUE.md":    true,
}

// linkRE matches inline markdown links and images: [text](target) and
// ![alt](target). Good enough for the prose style these docs use; code
// spans that happen to contain the pattern would have to look exactly
// like a link to false-positive, and none do.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)\)`)

func main() {
	os.Exit(run(".", os.Stdout))
}

// run checks the tree rooted at root and reports problems to w,
// returning 0 when the docs are clean and 1 otherwise.
func run(root string, w io.Writer) int {
	problems := checkLinks(root)
	problems = append(problems, checkInventory(root)...)
	for _, p := range problems {
		fmt.Fprintln(w, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(w, "docscheck: %d problem(s)\n", len(problems))
		return 1
	}
	fmt.Fprintln(w, "docscheck: docs clean")
	return 0
}

// checkLinks resolves every relative link in the maintained markdown
// files against the tree.
func checkLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".md") || skippedDocs[name] {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; CI stays offline
			}
			if strings.HasPrefix(target, "#") {
				continue // in-page fragment
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				rel, rerr := filepath.Rel(root, path)
				if rerr != nil {
					rel = path
				}
				problems = append(problems, fmt.Sprintf("%s: broken link %q", rel, m[1]))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("docscheck: walking %s: %v", root, err))
	}
	return problems
}

// checkInventory verifies README.md mentions every package directory
// under internal/ and cmd/, in either spelled-out ("internal/engine")
// or architecture-tree ("engine/") form.
func checkInventory(root string) []string {
	data, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		return []string{fmt.Sprintf("docscheck: %v", err)}
	}
	readme := string(data)
	var problems []string
	for _, tree := range []string{"internal", "cmd"} {
		entries, err := os.ReadDir(filepath.Join(root, tree))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return append(problems, fmt.Sprintf("docscheck: %v", err))
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			pkg := tree + "/" + e.Name()
			if !strings.Contains(readme, pkg) && !strings.Contains(readme, e.Name()+"/") {
				problems = append(problems, fmt.Sprintf("README.md: package %s missing from the architecture inventory", pkg))
			}
		}
	}
	return problems
}
