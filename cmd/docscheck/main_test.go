package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a file under dir, creating parents.
func write(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// The real repository must pass its own gate: this is the same
// invocation `make docs-check` runs in CI.
func TestRepositoryDocsClean(t *testing.T) {
	var out bytes.Buffer
	if code := run("../..", &out); code != 0 {
		t.Errorf("docs gate failed on the repository:\n%s", out.String())
	}
}

func TestBrokenLinkFails(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", "see [the design](DESIGN.md) and internal/\n")
	write(t, dir, "DESIGN.md", "back to [nowhere](missing/file.md)\n")
	var out bytes.Buffer
	if code := run(dir, &out); code != 1 {
		t.Fatalf("exit %d with a broken link, want 1", code)
	}
	if !strings.Contains(out.String(), `broken link "missing/file.md"`) {
		t.Errorf("problem does not name the broken target:\n%s", out.String())
	}
	// The working link must not be reported.
	if strings.Contains(out.String(), "DESIGN.md: broken link \"DESIGN.md\"") {
		t.Errorf("resolvable link reported broken:\n%s", out.String())
	}
}

func TestMissingPackageFails(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", "only internal/engine is documented\n")
	write(t, dir, "internal/engine/engine.go", "package engine\n")
	write(t, dir, "internal/orphan/orphan.go", "package orphan\n")
	var out bytes.Buffer
	if code := run(dir, &out); code != 1 {
		t.Fatalf("exit %d with an undocumented package, want 1", code)
	}
	if !strings.Contains(out.String(), "internal/orphan") {
		t.Errorf("problem does not name the orphan package:\n%s", out.String())
	}
	if strings.Contains(out.String(), "internal/engine missing") {
		t.Errorf("documented package reported missing:\n%s", out.String())
	}
}

// External links and in-page fragments are out of scope: CI runs
// offline and the gate must not fail on them.
func TestExternalAndFragmentLinksSkipped(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md",
		"[paper](https://example.org/lee01.pdf) [anchor](#section) [mail](mailto:x@y.z)\n")
	var out bytes.Buffer
	if code := run(dir, &out); code != 0 {
		t.Errorf("external/fragment links failed the gate:\n%s", out.String())
	}
}

// Links with a fragment still have their file half resolved.
func TestFragmentOnFileLink(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", "[sect](DESIGN.md#policy) [bad](GONE.md#policy)\n")
	write(t, dir, "DESIGN.md", "## policy\n")
	var out bytes.Buffer
	if code := run(dir, &out); code != 1 {
		t.Fatalf("exit %d, want 1 (GONE.md does not exist)", code)
	}
	if !strings.Contains(out.String(), `"GONE.md#policy"`) {
		t.Errorf("fragment link's missing file not reported:\n%s", out.String())
	}
	if strings.Contains(out.String(), "DESIGN.md#policy") {
		t.Errorf("resolvable fragment link reported broken:\n%s", out.String())
	}
}

// The retrieved source artifacts carry extraction debris and are not
// checked.
func TestRetrievedArtifactsSkipped(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", "clean\n")
	write(t, dir, "PAPERS.md", "![](_page_0_Picture_1.jpeg)\n")
	var out bytes.Buffer
	if code := run(dir, &out); code != 0 {
		t.Errorf("retrieved artifact failed the gate:\n%s", out.String())
	}
}
