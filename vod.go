// Package vod is a library-quality reproduction of "Dynamic Buffer
// Allocation in Video-on-Demand Systems" (Lee, Whang, Moon, Han, Song;
// ACM SIGMOD 2001, extended in IEEE TKDE 15(6) 2003).
//
// A VOD server streams constant-rate video from disk through per-request
// memory buffers refilled once per service period. The buffer must hold
// what its viewer consumes until the next refill, so its minimum size
// depends on how many buffers the server fills per period. The classic
// static scheme sizes every buffer for the fully loaded server; this
// package implements the paper's dynamic scheme, which sizes each buffer
// for the current load plus a bounded prediction of near-future load and
// enforces the prediction at runtime by deferring violating admissions
// (predict-and-enforce). The result is dramatically lower initial latency
// and memory use at partial load, with identical behaviour at full load.
//
// The package exposes four layers:
//
//   - Sizing and admission analysis: StaticBufferSize, DynamicBufferSize
//     (Theorem 1), NewSizeTable, WorstInitialLatency (Eqs. 2–4),
//     MinMemoryDynamic/MinMemoryStatic (Theorems 2–4).
//   - The modelled substrate: DiskSpec (seek curve, Eq. 7), Library
//     (contiguous video layout, Zipf popularity), workload generation
//     (Poisson arrivals under a Zipf time-of-day profile).
//   - A discrete-event simulation of a multi-disk VOD server running any
//     of the three buffer scheduling methods (Round-Robin/BubbleUp,
//     Sweep*, GSS*) under the static, dynamic, or naive allocation
//     scheme: Simulate.
//   - The experiment harness regenerating every table and figure of the
//     paper's evaluation: RunExperiment, Experiments.
//
// The canonical environment — a Seagate Barracuda 9LP disk serving
// 1.5 Mbps MPEG-1 streams, N = 79 — is available via Barracuda9LP and
// PaperEnvironment.
package vod

import (
	"io"
	"time"

	"repro/internal/catalog"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/latency"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Quantity types. All durations are in seconds, data in bits, and rates
// in bits per second; the constructors below build them readably.
type (
	// Seconds is a duration in seconds.
	Seconds = si.Seconds
	// Bits is a data quantity in bits.
	Bits = si.Bits
	// BitRate is a data rate in bits per second.
	BitRate = si.BitRate
)

// Quantity constructors.
var (
	// Mbps returns a rate of v million bits per second.
	Mbps = si.Mbps
	// Megabits returns v million bits.
	Megabits = si.Megabits
	// Megabytes returns v million bytes, as bits.
	Megabytes = si.Megabytes
	// Gigabytes returns v billion bytes, as bits.
	Gigabytes = si.Gigabytes
	// Minutes returns a duration of v minutes.
	Minutes = si.Minutes
	// Hours returns a duration of v hours.
	Hours = si.Hours
)

// DiskSpec describes a disk drive: capacity, transfer rate, and the
// two-piece seek-time curve of Ruemmler & Wilkes (Eq. 7).
type DiskSpec = diskmodel.Spec

// Barracuda9LP returns the paper's evaluation disk (Table 3): a Seagate
// Barracuda 9LP with 120 Mbps minimum transfer rate, 6000 cylinders, and
// N = 79 for MPEG-1 streams.
func Barracuda9LP() DiskSpec { return diskmodel.Barracuda9LP() }

// Synthetic15K returns a faster, later-generation drive for
// generalization experiments: N = 319 for MPEG-1 streams.
func Synthetic15K() DiskSpec { return diskmodel.Synthetic15K() }

// Method is a buffer scheduling method instance.
type Method = sched.Method

// MethodKind identifies one of the three scheduling methods.
type MethodKind = sched.Kind

// The three buffer scheduling methods the paper validates against.
const (
	// RoundRobin services buffers in allocation order with the BubbleUp
	// refinement: newcomers are serviced right after the in-flight
	// service completes.
	RoundRobin = sched.RoundRobin
	// Sweep services buffers in disk-position order (Sweep*).
	Sweep = sched.Sweep
	// GSS groups buffers, sweeping within groups and rotating across
	// them (GSS*), with the paper's group size of 8 by default.
	GSS = sched.GSS
)

// NewMethod returns a Method of the given kind with the paper's
// parameters (g = 8 for GSS*).
func NewMethod(k MethodKind) Method { return sched.NewMethod(k) }

// ParseMethod maps a method name ("rr", "sweep", "gss", or the printed
// forms) to its kind.
func ParseMethod(s string) (MethodKind, error) { return sched.ParseKind(s) }

// Scheme selects the buffer allocation scheme.
type Scheme = sim.Scheme

// The buffer allocation schemes.
const (
	// Static always allocates the full-load buffer size (Section 2.3).
	Static = sim.Static
	// Dynamic allocates by Theorem 1 with runtime enforcement of the
	// inertia assumptions — the paper's contribution (Section 3).
	Dynamic = sim.Dynamic
	// Naive is the flawed strawman of Section 3.1: Eq. 5 at n+k with no
	// recurrence and no enforcement. It underruns under rising load.
	Naive = sim.Naive
)

// ParseScheme maps "static", "dynamic", or "naive" to its Scheme.
func ParseScheme(s string) (Scheme, error) { return sim.ParseScheme(s) }

// Params carries the sizing constants: transfer rate TR, consumption rate
// CR, capacity N, and the inertia slack Alpha.
type Params = core.Params

// DeriveN returns the largest number of concurrent streams a disk with
// transfer rate tr can guarantee at consumption rate cr (Eq. 1).
func DeriveN(tr, cr BitRate) int { return core.DeriveN(tr, cr) }

// PaperEnvironment returns the paper's full evaluation environment:
// the Barracuda spec, the 1.5 Mbps consumption rate, and Params with
// N = 79 and alpha = 1.
func PaperEnvironment() (DiskSpec, BitRate, Params) {
	env := experiments.PaperEnv()
	return env.Spec, env.CR, env.Params
}

// StaticBufferSize evaluates Eq. 5: the minimum buffer size supporting n
// requests under per-service worst disk latency dl. The static scheme
// allocates this at n = N regardless of load.
func StaticBufferSize(p Params, dl Seconds, n int) Bits { return p.StaticSize(dl, n) }

// DynamicBufferSize evaluates Theorem 1: the buffer size the dynamic
// scheme allocates with n requests in service and k predicted additional
// requests, under per-service worst disk latency dl.
func DynamicBufferSize(p Params, dl Seconds, n, k int) Bits { return p.DynamicSize(dl, n, k) }

// SizeTable holds the precomputed O(N²) table of dynamic buffer sizes
// Section 3.3 recommends for runtime allocation.
type SizeTable = core.Table

// NewSizeTable precomputes DynamicBufferSize for every (n, k) under a
// method's latency model against the given disk.
func NewSizeTable(p Params, m Method, spec DiskSpec) *SizeTable {
	return core.NewTable(p, m.DLModel(spec))
}

// WorstDiskLatency returns a method's per-service worst disk latency with
// n requests in service (Section 2.2).
func WorstDiskLatency(m Method, spec DiskSpec, n int) Seconds { return m.WorstDL(spec, n) }

// WorstInitialLatency evaluates the method's worst-case initial latency
// (Eqs. 2–4) for buffers of the given size with n requests in service.
func WorstInitialLatency(m Method, spec DiskSpec, size Bits, n int) Seconds {
	return latency.WorstFor(m, spec, size, n)
}

// MinMemoryDynamic evaluates Theorems 2–4: the minimum memory supporting
// n requests with k predicted additional requests under the dynamic
// scheme and the given method.
func MinMemoryDynamic(p Params, m Method, spec DiskSpec, n, k int) Bits {
	return memmodel.MinDynamic(p, m, spec, n, k)
}

// MinMemoryStatic is the static scheme's counterpart of MinMemoryDynamic.
func MinMemoryStatic(p Params, m Method, spec DiskSpec, n int) Bits {
	return memmodel.MinStatic(p, m, spec, n)
}

// AdmissionBook tracks, per in-service request, the (n_i, k_i) snapshot
// recorded at its last allocation — the state the predict-and-enforce
// strategy checks admissions against.
type AdmissionBook = core.Book

// Allocation is one inertia snapshot: requests in service and predicted
// additional requests at allocation time.
type Allocation = core.Allocation

// NewAdmissionBook returns an empty book.
func NewAdmissionBook() *AdmissionBook { return core.NewBook() }

// Admit reports whether a new request may be admitted under Assumption 1
// (Fig. 5): with it admitted, the request count must stay within every
// in-service buffer's sizing assumption, and within the capacity nmax.
func Admit(b *AdmissionBook, n, nmax int) bool { return core.Admit(b, n, nmax) }

// Estimator produces k_log, the arrival-history ingredient of the dynamic
// scheme's prediction.
type Estimator = core.Estimator

// NewEstimator returns an estimator with history window tlog.
func NewEstimator(tlog Seconds) *Estimator { return core.NewEstimator(tlog) }

// Library is a video catalog placed contiguously across the disks of a
// server, with Zipf popularity.
type Library = catalog.Library

// Video is one title.
type Video = catalog.Video

// LibraryConfig parameterizes NewLibrary.
type LibraryConfig = catalog.Config

// NewLibrary builds a library. See LibraryConfig for the knobs; the zero
// Video function yields the paper's 120-minute 1.5 Mbps MPEG-1 titles.
func NewLibrary(cfg LibraryConfig) (*Library, error) { return catalog.New(cfg) }

// MPEG1Video returns the paper's canonical title: a 120-minute MPEG-1
// video at 1.5 Mbps. The usual starting point for a LibraryConfig.Video
// factory that decorates titles — say, with a bitrate Ladder.
func MPEG1Video(id int) Video { return catalog.MPEG1Video(id) }

// Trace is a generated workload: request arrivals with titles and
// viewing times.
type Trace = workload.Trace

// Request is one user request in a trace.
type Request = workload.Request

// ArrivalSchedule is a piecewise-constant arrival-rate profile.
type ArrivalSchedule = workload.Schedule

// NewArrivalSchedule builds a schedule directly from per-slot arrival
// rates (in requests per second).
func NewArrivalSchedule(slotLen Seconds, rates []float64) ArrivalSchedule {
	return workload.NewSchedule(slotLen, rates)
}

// ZipfDaySchedule builds the paper's arrival profile: total expected
// arrivals over the horizon, spread over 30-minute slots whose shares
// follow Zipf(theta) proximity to the peak time (theta 0 = concentrated,
// 1 = uniform).
func ZipfDaySchedule(total, theta float64, peak, horizon Seconds) ArrivalSchedule {
	return workload.ZipfDay(total, theta, peak, horizon)
}

// GenerateWorkload draws a Poisson trace under the schedule, picking
// titles by library popularity and viewing times uniform in [0, 120 min].
func GenerateWorkload(s ArrivalSchedule, lib *Library, seed int64) Trace {
	return workload.Generate(s, lib, seed)
}

// VCROptions adds VCR activity to generated workloads (Section 1: VCR
// actions are new requests).
type VCROptions = workload.VCROptions

// GenerateVCRWorkload is GenerateWorkload with VCR activity: sessions
// split into request chains at fast-forward/rewind instants.
func GenerateVCRWorkload(s ArrivalSchedule, lib *Library, seed int64, vcr VCROptions) Trace {
	return workload.GenerateVCR(s, lib, seed, vcr)
}

// SimConfig parameterizes one simulation run.
type SimConfig = sim.Config

// AdaptConfig parameterizes mid-stream bitrate adaptation
// (SimConfig.Adapt / EngineConfig.Adapt): the buffer-occupancy rate map
// that steps in-service streams down their title's ladder below the
// reservoir and back up under sustained bandwidth headroom. The zero
// value selects the engine defaults; see the field docs for the knobs.
type AdaptConfig = engine.AdaptConfig

// SimResult carries a run's measurements: latency by load level,
// admission counters, starvation, estimation quality, and the sampled
// concurrency and memory series.
type SimResult = sim.Result

// Simulate executes one discrete-event simulation of the configured VOD
// server replaying the configured trace. Simulate is safe to call
// concurrently; runs with equal configs produce identical results.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// SimulateReplications runs reps independent simulations across at most
// workers goroutines (workers <= 0 means GOMAXPROCS), building each run's
// configuration with build — typically a fresh trace and seed per
// replication derived with MixSeed. Results are returned in replication
// order regardless of goroutine scheduling.
func SimulateReplications(build func(rep int) (SimConfig, error), reps, workers int) ([]*SimResult, error) {
	return experiments.SimulateReplications(build, reps, workers)
}

// ReplicationStats summarizes replications of one measurement: count,
// mean, sample standard deviation, and the half-width of the 95%
// confidence interval of the mean.
type ReplicationStats = experiments.Stats

// SummarizeReplications computes replication statistics over samples.
func SummarizeReplications(samples []float64) ReplicationStats {
	return experiments.Summarize(samples)
}

// MixSeed derives a deterministic 63-bit seed from a base seed and run
// coordinates (a splitmix64 mixing chain): the seeding scheme the parallel
// experiment runner uses so that every run's random streams depend only on
// the run's position in the experiment grid, never on execution order.
func MixSeed(base int64, coords ...int64) int64 { return experiments.MixSeed(base, coords...) }

// ExperimentOptions tunes the experiment harness.
type ExperimentOptions = experiments.Options

// ExperimentReport is one experiment's regenerated series and tables.
type ExperimentReport = experiments.Report

// RunExperiment regenerates one of the paper's tables or figures by id
// ("table3", "fig6".."fig14", "table4", "table5", "ablation-naive",
// "ablation-gss-group").
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentReport, error) {
	return experiments.Run(id, opt)
}

// Experiments lists the available experiment ids in the paper's order.
func Experiments() []string { return experiments.IDs() }

// RateSet supports variable display rates per footnote 2: a family of
// rates with their unit (GCD) rate, and adapters producing sizing
// parameters under the max-rate or unit-rate method.
type RateSet = core.RateSet

// NewRateSet validates a family of display rates.
func NewRateSet(rates []BitRate) (*RateSet, error) { return core.NewRateSet(rates) }

// DybaseBufferSize evaluates the sizing of DYBASE, the paper's cited
// precursor (Information Sciences 137, 2001): the Theorem 1 recurrence
// without the inertia assumptions — k stays constant along the chain.
func DybaseBufferSize(p Params, dl Seconds, n, k int) Bits { return p.DybaseSize(dl, n, k) }

// ChunkLayout plans footnote 3's chunked video storage: fixed-size chunks
// with replication so every read up to MaxRead stays within one chunk.
type ChunkLayout = chunk.Layout

// NewChunkLayout plans the chunking of a video of the given size.
func NewChunkLayout(video, chunkSize, maxRead Bits) (*ChunkLayout, error) {
	return chunk.NewLayout(video, chunkSize, maxRead)
}

// ChunkAllocator places chunk extents on a disk (first fit, coalescing
// free list).
type ChunkAllocator = chunk.Allocator

// NewChunkAllocator returns an allocator over a disk of the given capacity.
func NewChunkAllocator(capacity Bits) *ChunkAllocator { return chunk.NewAllocator(capacity) }

// ReadTraceCSV parses a workload trace written by Trace.WriteCSV.
func ReadTraceCSV(r io.Reader) (Trace, error) { return workload.ReadCSV(r) }

// TraceStats summarizes a trace (Trace.Summarize).
type TraceStats = workload.Stats

// Clock abstracts time for the streaming engine. The paper's mechanism
// is clock-agnostic: the simulator drives it with a VirtualClock
// (discrete-event time) and a live server with a WallClock (scaled real
// time), and the engine behaves identically under both.
type Clock = engine.Clock

// ClockTimer is a cancelable pending callback on a Clock.
type ClockTimer = engine.Timer

// VirtualClock is a discrete-event clock: callbacks run in (time,
// scheduling-order) sequence as the clock jumps between events. It is
// what makes simulation runs deterministic and byte-identical.
type VirtualClock = engine.VirtualClock

// NewVirtualClock returns a virtual clock at time zero.
func NewVirtualClock() *VirtualClock { return engine.NewVirtualClock() }

// ClockDomain hands out the clock driving each disk. The paper's service
// model is per-disk, so the engine only needs each disk's own callbacks
// serialized: a VirtualClock is a single-shard domain (one deterministic
// event loop for all disks), a WallClock shards — one independent timer
// wheel and lock per disk.
type ClockDomain = engine.ClockDomain

// WallClock is a scaled real-time ClockDomain: each disk gets its own
// WallShard, whose lock serializes that disk's engine callbacks, so a
// live multi-goroutine server satisfies per shard the single-threaded
// discipline the simulator gets for free — without cross-disk contention.
type WallClock = engine.WallClock

// WallShard is one disk's clock inside a WallClock: a hierarchical timer
// wheel with pooled, generation-checked timers, plus the engine lock for
// that disk. Drivers wrap every call into a disk in its shard's Do.
type WallShard = engine.WallShard

// NewWallClock returns a wall clock running at the given number of
// engine seconds per wall second.
func NewWallClock(scale float64) *WallClock { return engine.NewWallClock(scale) }

// NewWallClockTick is NewWallClock with an explicit timer-wheel tick,
// trading wheel overhead against callback firing granularity.
func NewWallClockTick(scale float64, tick time.Duration) *WallClock {
	return engine.NewWallClockTick(scale, tick)
}

// Scheduler orders buffer services on one disk: the paper's three
// methods — Round-Robin with BubbleUp, Sweep*, GSS* (Section 2.2) —
// implement it, and NewEngine picks one by Method.
type Scheduler = engine.Scheduler

// Allocator sizes buffers and rules on admissions: the static scheme
// (Eq. 5 at N), the dynamic predict-and-enforce scheme (Theorem 1 +
// Assumption 1), the naive strawman of Section 3.1, or DYBASE.
type Allocator = engine.Allocator

// The engine's buffer allocation policies.
type (
	// StaticAllocator always allocates the full-load size (Section 2.3).
	StaticAllocator = engine.StaticAllocator
	// DynamicAllocator implements predict-and-enforce (Section 3): sizes
	// by Theorem 1, records inertia snapshots, defers violating
	// admissions per Fig. 5.
	DynamicAllocator = engine.DynamicAllocator
	// NaiveAllocator is the flawed strawman of Section 3.1.
	NaiveAllocator = engine.NaiveAllocator
	// DybaseAllocator sizes by the DYBASE recurrence (constant k).
	DybaseAllocator = engine.DybaseAllocator
)

// Observer receives engine instrumentation callbacks — admissions,
// deferrals (Fig. 5 enforcement), fills, k_log estimates and their
// resolutions, underruns, departures. The simulator's metrics and the
// live server's session plumbing are both Observers.
type Observer = engine.Observer

// NopObserver ignores every callback; embed it to observe selectively.
type NopObserver = engine.NopObserver

// ObserverList fans callbacks out to several observers in order.
type ObserverList = engine.Observers

// RejectReason says why the engine turned an arrival away: disk
// capacity (n = N, Eq. 1) or the memory budget.
type RejectReason = engine.RejectReason

// Engine is the shared streaming runtime: per-disk service loops,
// deferral queues, and prediction bookkeeping, driven by any Clock.
type Engine = engine.System

// EngineConfig parameterizes NewEngine.
type EngineConfig = engine.Config

// EngineStream is one in-service request inside the engine.
type EngineStream = engine.Stream

// NewEngine builds the streaming runtime both drivers share: Simulate
// wraps it under a VirtualClock; cmd/vodserver drives it live under a
// WallClock.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// Controller is the thread-safe runtime form of the dynamic scheme for a
// real server: sizing table, arrival estimator, and inertia book behind
// one API (ObserveArrival / Admit / Allocate / Release).
type Controller = core.Controller

// NewController builds a controller for one disk running the given
// scheduling method, with history window tlog.
func NewController(p Params, m Method, spec DiskSpec, tlog Seconds) *Controller {
	return core.NewController(p, m.DLModel(spec), tlog)
}
