// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact, running the experiment harness
// in its quick configuration), plus microbenchmarks of the hot paths.
//
// The experiment benchmarks are dominated by whole simulated days, so a
// single iteration is the regeneration; run with -benchtime 1x for exact
// one-shot timing.
package vod_test

import (
	"testing"

	vod "repro"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	// A fixed seed keeps iterations identical (and lets the fig14/table5
	// pair share its memoized sweep): the benchmark measures the cost of
	// one regeneration, not seed-to-seed variance.
	for i := 0; i < b.N; i++ {
		rep, err := vod.RunExperiment(id, vod.ExperimentOptions{Quick: true, Seeds: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Series) == 0 && len(rep.Tables) == 0 {
			b.Fatalf("%s produced no data", id)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable3Constants(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkFig6Workload(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7TlogSweep(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8AlphaSweep(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9BufferSize(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10WorstLatency(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11SimLatency(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkTable4LatencyRatios(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkFig12MemoryModel(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13CapacityAnalysis(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14CapacitySim(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkTable5CapacityRatios(b *testing.B)  { benchExperiment(b, "table5") }

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationNaiveDynamic(b *testing.B) { benchExperiment(b, "ablation-naive") }
func BenchmarkAblationGSSGroupSize(b *testing.B) { benchExperiment(b, "ablation-gss-group") }

// Microbenchmarks of the runtime-critical paths.

// BenchmarkDynamicSizeRecurrence measures one Theorem 1 evaluation by
// backward recurrence — the cost a server would pay without the table.
func BenchmarkDynamicSizeRecurrence(b *testing.B) {
	spec, _, p := vod.PaperEnvironment()
	dl := vod.WorstDiskLatency(vod.NewMethod(vod.RoundRobin), spec, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = vod.DynamicBufferSize(p, dl, 1+i%p.N, i%4)
	}
}

// BenchmarkSizeTableLookup measures the precomputed-table path used at
// every allocation (Section 3.3's O(N^2) precomputation).
func BenchmarkSizeTableLookup(b *testing.B) {
	spec, _, p := vod.PaperEnvironment()
	tab := vod.NewSizeTable(p, vod.NewMethod(vod.RoundRobin), spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Size(1+i%p.N, i%8)
	}
}

// BenchmarkSizeTableBuild measures system-initialization cost: the whole
// N x N table.
func BenchmarkSizeTableBuild(b *testing.B) {
	spec, _, p := vod.PaperEnvironment()
	m := vod.NewMethod(vod.Sweep)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = vod.NewSizeTable(p, m, spec)
	}
}

// BenchmarkMinMemoryDynamic measures one Theorem 2-4 evaluation, the
// admission governor's building block.
func BenchmarkMinMemoryDynamic(b *testing.B) {
	spec, _, p := vod.PaperEnvironment()
	m := vod.NewMethod(vod.GSS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 1 + i%p.N
		k := i % (p.N - n + 1)
		_ = vod.MinMemoryDynamic(p, m, spec, n, k)
	}
}

// BenchmarkSimulationDay measures a full simulated day of the dynamic
// scheme on one disk at moderate load — the unit of all Section 5
// simulation experiments.
func BenchmarkSimulationDay(b *testing.B) {
	spec, cr, _ := vod.PaperEnvironment()
	lib, err := vod.NewLibrary(vod.LibraryConfig{Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271})
	if err != nil {
		b.Fatal(err)
	}
	tr := vod.GenerateWorkload(vod.ZipfDaySchedule(350, 1, vod.Hours(9), vod.Hours(24)), lib, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := vod.Simulate(vod.SimConfig{
			Scheme: vod.Dynamic, Method: vod.NewMethod(vod.RoundRobin),
			Spec: spec, CR: cr, Library: lib, Trace: tr, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Served == 0 {
			b.Fatal("nothing served")
		}
	}
}

// BenchmarkDaySimulation runs the full allocator x method matrix, one
// simulated day per iteration — the end-to-end measure of the engine hot
// path under every scheduling method the paper evaluates. The custom
// sim-days/sec metric is the throughput the experiment harness sees.
func BenchmarkDaySimulation(b *testing.B) {
	spec, cr, _ := vod.PaperEnvironment()
	lib, err := vod.NewLibrary(vod.LibraryConfig{Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271})
	if err != nil {
		b.Fatal(err)
	}
	tr := vod.GenerateWorkload(vod.ZipfDaySchedule(350, 1, vod.Hours(9), vod.Hours(24)), lib, 1)
	for _, scheme := range []vod.Scheme{vod.Static, vod.Dynamic} {
		for _, kind := range []vod.MethodKind{vod.RoundRobin, vod.Sweep, vod.GSS} {
			b.Run(scheme.String()+"/"+kind.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := vod.Simulate(vod.SimConfig{
						Scheme: scheme, Method: vod.NewMethod(kind),
						Spec: spec, CR: cr, Library: lib, Trace: tr, Seed: int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Served == 0 {
						b.Fatal("nothing served")
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sim-days/sec")
			})
		}
	}
}

// BenchmarkWorkloadGeneration measures drawing one day's Poisson trace.
func BenchmarkWorkloadGeneration(b *testing.B) {
	spec, _, _ := vod.PaperEnvironment()
	lib, err := vod.NewLibrary(vod.LibraryConfig{Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271})
	if err != nil {
		b.Fatal(err)
	}
	sched := vod.ZipfDaySchedule(2500, 0, vod.Hours(9), vod.Hours(24))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vod.GenerateWorkload(sched, lib, int64(i))
	}
}

// Extension and substrate ablation benchmarks.

func BenchmarkAblationDybase(b *testing.B) { benchExperiment(b, "ablation-dybase") }
func BenchmarkAblationChunks(b *testing.B) { benchExperiment(b, "ablation-chunks") }
func BenchmarkAblationPages(b *testing.B)  { benchExperiment(b, "ablation-pages") }
func BenchmarkExtVCRResponse(b *testing.B) { benchExperiment(b, "ext-vcr") }

func BenchmarkAblationBubbleUp(b *testing.B) { benchExperiment(b, "ablation-bubbleup") }

func BenchmarkExtModernDisk(b *testing.B) { benchExperiment(b, "ext-modern-disk") }
