# Developer entry points; CI (.github/workflows/ci.yml) runs `make ci`'s
# steps verbatim.

GO ?= go

.PHONY: build vet test race bench bench-smoke bench-snapshot test-fuzz cover docs-check ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The packages with shared-state concurrency: the parallel experiment
# runner, the simulator, the large-N scale scenario (shared sizing
# tables), the stream-sharing layer, the fleet cluster (its router is
# CAS-booked from concurrent connection goroutines), and the
# live-serving side of the engine — the sharded wall clock's per-shard
# lock discipline, the buffer pool under serialized concurrent callers,
# the serve driver with its lock-free metrics collector, and the
# vodserver binary. Keep them race-clean; -shuffle=on randomizes test
# order so accidental inter-test state dependence surfaces too.
race:
	$(GO) test -race -shuffle=on ./internal/experiments ./internal/sim ./internal/buffer ./internal/engine ./internal/scale ./internal/share ./internal/cluster ./internal/livemetrics ./internal/serve ./cmd/vodserver

# Native fuzzing smoke: each target gets a short budget (go's -fuzz must
# match exactly one target per invocation). The seed corpora alone run
# in the plain `make test`; this target actually mutates.
test-fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCommandParse -fuzztime=10s ./internal/serve
	$(GO) test -run=^$$ -fuzz=FuzzPrefixJoin -fuzztime=10s ./internal/share
	$(GO) test -run=^$$ -fuzz=FuzzRouterAdmit -fuzztime=10s ./internal/cluster
	$(GO) test -run=^$$ -fuzz=FuzzLadderAdmit -fuzztime=10s ./internal/engine

# Per-package coverage summary, gating the sharing layer — the oracle
# test's subject — the fleet cluster, and the simulation driver (the QoE
# accounting's home) at 85%.
cover:
	$(GO) test -cover ./...
	$(GO) test -coverprofile=/tmp/share.cover ./internal/share
	$(GO) tool cover -func=/tmp/share.cover | awk '/^total:/ { gsub(/%/, "", $$3); if ($$3 + 0 < 85) { printf "internal/share coverage %s%% below the 85%% gate\n", $$3; exit 1 } else printf "internal/share coverage %s%% (gate: 85%%)\n", $$3 }'
	$(GO) test -coverprofile=/tmp/cluster.cover ./internal/cluster
	$(GO) tool cover -func=/tmp/cluster.cover | awk '/^total:/ { gsub(/%/, "", $$3); if ($$3 + 0 < 85) { printf "internal/cluster coverage %s%% below the 85%% gate\n", $$3; exit 1 } else printf "internal/cluster coverage %s%% (gate: 85%%)\n", $$3 }'
	$(GO) test -coverprofile=/tmp/sim.cover ./internal/sim
	$(GO) tool cover -func=/tmp/sim.cover | awk '/^total:/ { gsub(/%/, "", $$3); if ($$3 + 0 < 85) { printf "internal/sim coverage %s%% below the 85%% gate\n", $$3; exit 1 } else printf "internal/sim coverage %s%% (gate: 85%%)\n", $$3 }'

bench:
	$(GO) test -bench=RunExperimentParallel -run=^$$ -benchtime=1x ./internal/experiments

# The tracked performance cases, gated on allocs/op against the committed
# baseline (see EXPERIMENTS.md "Benchmark trajectory"). Race-free: the
# gate measures allocations, which -race instrumentation would distort.
bench-smoke:
	$(GO) run ./cmd/bench -baseline BENCH_PR10.json -check -out /dev/null

# Regenerate the committed baseline after an intentional perf change.
bench-snapshot:
	$(GO) run ./cmd/bench -out BENCH_PR10.json

# Documentation gate: every relative link in the maintained docs must
# resolve, and README.md's architecture inventory must name every
# package under internal/ and cmd/ (see cmd/docscheck).
docs-check:
	$(GO) run ./cmd/docscheck

ci: vet build test race bench-smoke cover docs-check
