# Developer entry points; CI (.github/workflows/ci.yml) runs `make ci`'s
# steps verbatim.

GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The packages with shared-state concurrency: the parallel experiment
# runner, the simulator, and the live-serving side of the engine — the
# wall clock's lock discipline, the buffer pool under serialized
# concurrent callers, and the vodserver driver. Keep them race-clean.
race:
	$(GO) test -race ./internal/experiments ./internal/sim ./internal/buffer ./internal/engine ./cmd/vodserver

bench:
	$(GO) test -bench=RunExperimentParallel -run=^$$ -benchtime=1x ./internal/experiments

ci: vet build test race
