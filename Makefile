# Developer entry points; CI (.github/workflows/ci.yml) runs `make ci`'s
# steps verbatim.

GO ?= go

.PHONY: build vet test race bench bench-smoke bench-snapshot ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The packages with shared-state concurrency: the parallel experiment
# runner, the simulator, the large-N scale scenario (shared sizing
# tables), and the live-serving side of the engine — the sharded wall
# clock's per-shard lock discipline, the buffer pool under serialized
# concurrent callers, the serve driver with its lock-free metrics
# collector, and the vodserver binary. Keep them race-clean.
race:
	$(GO) test -race ./internal/experiments ./internal/sim ./internal/buffer ./internal/engine ./internal/scale ./internal/livemetrics ./internal/serve ./cmd/vodserver

bench:
	$(GO) test -bench=RunExperimentParallel -run=^$$ -benchtime=1x ./internal/experiments

# The tracked performance cases, gated on allocs/op against the committed
# baseline (see EXPERIMENTS.md "Benchmark trajectory"). Race-free: the
# gate measures allocations, which -race instrumentation would distort.
bench-smoke:
	$(GO) run ./cmd/bench -baseline BENCH_PR5.json -check -out /dev/null

# Regenerate the committed baseline after an intentional perf change.
bench-snapshot:
	$(GO) run ./cmd/bench -out BENCH_PR5.json

ci: vet build test race bench-smoke
