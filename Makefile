# Developer entry points; CI (.github/workflows/ci.yml) runs `make ci`'s
# steps verbatim.

GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel experiment runner and the simulator are the packages with
# shared-state concurrency; keep them race-clean.
race:
	$(GO) test -race ./internal/experiments ./internal/sim

bench:
	$(GO) test -bench=RunExperimentParallel -run=^$$ -benchtime=1x ./internal/experiments

ci: vet build test race
