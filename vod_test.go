package vod_test

import (
	"math"
	"strings"
	"testing"

	vod "repro"
)

func TestPaperEnvironment(t *testing.T) {
	spec, cr, p := vod.PaperEnvironment()
	if p.N != 79 {
		t.Errorf("N = %d, want 79", p.N)
	}
	if cr != vod.Mbps(1.5) {
		t.Errorf("CR = %v", cr)
	}
	if got := vod.DeriveN(spec.TransferRate, cr); got != 79 {
		t.Errorf("DeriveN = %d", got)
	}
}

func TestFacadeSizing(t *testing.T) {
	spec, _, p := vod.PaperEnvironment()
	m := vod.NewMethod(vod.RoundRobin)
	dl := vod.WorstDiskLatency(m, spec, p.N)
	static := vod.StaticBufferSize(p, dl, p.N)
	dyn := vod.DynamicBufferSize(p, dl, 10, 4)
	if dyn >= static {
		t.Errorf("dynamic %v should be below static %v at n=10", dyn, static)
	}
	tab := vod.NewSizeTable(p, m, spec)
	if got := tab.Size(10, 4); got != dyn {
		t.Errorf("table %v != direct %v", got, dyn)
	}
	il := vod.WorstInitialLatency(m, spec, dyn, 10)
	if il <= 0 || il > 1 {
		t.Errorf("worst IL = %v, want small positive", il)
	}
	if vod.MinMemoryDynamic(p, m, spec, 10, 4) >= vod.MinMemoryStatic(p, m, spec, 10) {
		t.Error("dynamic memory should be below static at n=10")
	}
}

func TestFacadeSimulation(t *testing.T) {
	spec, cr, _ := vod.PaperEnvironment()
	lib, err := vod.NewLibrary(vod.LibraryConfig{Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271})
	if err != nil {
		t.Fatal(err)
	}
	tr := vod.GenerateWorkload(vod.ZipfDaySchedule(40, 1, vod.Hours(1), vod.Hours(2)), lib, 1)
	res, err := vod.Simulate(vod.SimConfig{
		Scheme:  vod.Dynamic,
		Method:  vod.NewMethod(vod.Sweep),
		Spec:    spec,
		CR:      cr,
		Library: lib,
		Trace:   tr,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 || res.Underruns != 0 {
		t.Errorf("served %d, underruns %d", res.Served, res.Underruns)
	}
	if gm, ok := res.LatencyByN.GrandMean(); !ok || gm <= 0 || math.IsNaN(gm) {
		t.Errorf("latency grand mean = %v, %v", gm, ok)
	}
}

func TestFacadeParsers(t *testing.T) {
	if k, err := vod.ParseMethod("gss"); err != nil || k != vod.GSS {
		t.Errorf("ParseMethod = %v, %v", k, err)
	}
	if s, err := vod.ParseScheme("dynamic"); err != nil || s != vod.Dynamic {
		t.Errorf("ParseScheme = %v, %v", s, err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := vod.Experiments()
	if len(ids) < 12 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	rep, err := vod.RunExperiment("table3", vod.ExperimentOptions{Quick: true, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table3" || len(rep.Tables) == 0 {
		t.Errorf("unexpected report %+v", rep)
	}
	if _, err := vod.RunExperiment("nope", vod.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestFacadeController(t *testing.T) {
	spec, _, p := vod.PaperEnvironment()
	ctl := vod.NewController(p, vod.NewMethod(vod.RoundRobin), spec, vod.Minutes(40))
	ctl.ObserveArrival(0)
	if !ctl.Admit(0) {
		t.Fatal("admit failed")
	}
	size, kc, err := ctl.Allocate(1, 1)
	if err != nil || size <= 0 || kc < 1 {
		t.Fatalf("Allocate = %v, %d, %v", size, kc, err)
	}
	ctl.Release(1)
	if got := ctl.InService(); got != 0 {
		t.Errorf("InService = %d", got)
	}
}

func TestFacadeRateSet(t *testing.T) {
	s, err := vod.NewRateSet([]vod.BitRate{vod.Mbps(1.5), vod.Mbps(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Unit(); got != vod.Mbps(0.5) {
		t.Errorf("Unit = %v", got)
	}
	p, err := s.UnitRateParams(vod.Mbps(120), 1)
	if err != nil || p.N != 239 {
		t.Fatalf("UnitRateParams N = %d, %v", p.N, err)
	}
}

func TestFacadeDybase(t *testing.T) {
	spec, _, p := vod.PaperEnvironment()
	dl := vod.WorstDiskLatency(vod.NewMethod(vod.RoundRobin), spec, 10)
	dy := vod.DybaseBufferSize(p, dl, 10, 4)
	dyn := vod.DynamicBufferSize(p, dl, 10, 4)
	if dy <= 0 || dy > dyn {
		t.Errorf("dybase %v should sit in (0, dynamic %v]", dy, dyn)
	}
}

func TestFacadeChunks(t *testing.T) {
	layout, err := vod.NewChunkLayout(vod.Megabytes(100), vod.Megabytes(20), vod.Megabytes(10))
	if err != nil {
		t.Fatal(err)
	}
	if layout.Chunks() < 9 {
		t.Errorf("chunks = %d", layout.Chunks())
	}
	alloc := vod.NewChunkAllocator(vod.Megabytes(500))
	if _, err := alloc.Alloc(vod.Megabytes(20)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeVCRWorkloadAndTraceIO(t *testing.T) {
	spec, _, _ := vod.PaperEnvironment()
	lib, err := vod.NewLibrary(vod.LibraryConfig{Titles: 3, Disks: 1, Spec: spec, PopularityTheta: 0})
	if err != nil {
		t.Fatal(err)
	}
	tr := vod.GenerateVCRWorkload(vod.ZipfDaySchedule(60, 1, vod.Hours(1), vod.Hours(2)), lib, 1,
		vod.VCROptions{ActionsPerHour: 10})
	vcr := 0
	for _, r := range tr.Requests {
		if r.VCR {
			vcr++
		}
	}
	if vcr == 0 {
		t.Fatal("no VCR continuations")
	}
	var buf strings.Builder
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := vod.ReadTraceCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Errorf("round trip lost requests")
	}
	st := back.Summarize(1)
	if st.Requests != len(tr.Requests) {
		t.Errorf("stats requests = %d", st.Requests)
	}
}
