package vod_test

import (
	"fmt"

	vod "repro"
)

// The headline comparison: the buffer a lone viewer needs under each
// scheme on the paper's reference hardware.
func ExampleDynamicBufferSize() {
	spec, _, params := vod.PaperEnvironment()
	m := vod.NewMethod(vod.RoundRobin)

	static := vod.StaticBufferSize(params, vod.WorstDiskLatency(m, spec, params.N), params.N)
	dynamic := vod.DynamicBufferSize(params, vod.WorstDiskLatency(m, spec, 1), 1, 1)

	fmt.Printf("static:  %v\n", static)
	fmt.Printf("dynamic: %v\n", dynamic)
	// Output:
	// static:  25.75MB
	// dynamic: 8.599KB
}

// Worst-case initial latency under the three scheduling methods at a
// partial load of ten viewers (Eqs. 2-4 over Theorem 1 sizes).
func ExampleWorstInitialLatency() {
	spec, _, params := vod.PaperEnvironment()
	for _, kind := range []vod.MethodKind{vod.RoundRobin, vod.Sweep, vod.GSS} {
		m := vod.NewMethod(kind)
		dl := vod.WorstDiskLatency(m, spec, 10)
		bs := vod.DynamicBufferSize(params, dl, 10, 4)
		fmt.Printf("%-12v %v\n", m, vod.WorstInitialLatency(m, spec, bs, 10))
	}
	// Output:
	// Round-Robin  50.46ms
	// Sweep*       393.5ms
	// GSS*(g=8)    304.2ms
}

// The runtime sizing table of Section 3.3: precompute once, index at
// every allocation.
func ExampleNewSizeTable() {
	spec, _, params := vod.PaperEnvironment()
	table := vod.NewSizeTable(params, vod.NewMethod(vod.RoundRobin), spec)
	fmt.Printf("BS_4(10) = %v\n", table.Size(10, 4))
	fmt.Printf("BS_0(79) = %v\n", table.Size(79, 0))
	// Output:
	// BS_4(10) = 105KB
	// BS_0(79) = 25.75MB
}

// Admission control under predict-and-enforce: a buffer sized for
// n_i + k_i = 12 concurrent requests blocks the 13th admission.
func ExampleAdmit() {
	book := vod.NewAdmissionBook()
	book.Set(1, vod.Allocation{N: 10, K: 2})

	fmt.Println(vod.Admit(book, 11, 79)) // 12th request: within the assumption
	fmt.Println(vod.Admit(book, 12, 79)) // 13th request: deferred
	// Output:
	// true
	// false
}

// Minimum memory to support 40 viewers under each scheme (Theorem 2 vs
// the static baseline) — the Fig. 12 comparison at one point.
func ExampleMinMemoryDynamic() {
	spec, _, params := vod.PaperEnvironment()
	m := vod.NewMethod(vod.RoundRobin)
	fmt.Printf("static:  %v\n", vod.MinMemoryStatic(params, m, spec, 40))
	fmt.Printf("dynamic: %v\n", vod.MinMemoryDynamic(params, m, spec, 40, 4))
	// Output:
	// static:  775.9MB
	// dynamic: 100.8MB
}

// Chunked video layout (footnote 3): any read up to MaxRead is satisfied
// by exactly one chunk, at a bounded replication cost.
func ExampleNewChunkLayout() {
	video := vod.Megabytes(1350) // one 120-minute MPEG-1 title
	layout, err := vod.NewChunkLayout(video, vod.Megabytes(104), vod.Megabytes(26))
	if err != nil {
		panic(err)
	}
	fmt.Printf("chunks:   %d\n", layout.Chunks())
	fmt.Printf("overhead: %.2fx\n", layout.Overhead())
	// Output:
	// chunks:   17
	// overhead: 1.31x
}

// Mid-stream bitrate adaptation: a congested day over a three-rung
// ladder, with streams shedding a rung when their buffer nears the
// reservoir and climbing back under sustained headroom.
func ExampleSimulate_adaptation() {
	spec, _, _ := vod.PaperEnvironment()
	ladder := []vod.BitRate{vod.Mbps(1.5), vod.Mbps(1.0), vod.Mbps(0.5)}
	lib, err := vod.NewLibrary(vod.LibraryConfig{
		Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0,
		Video: func(id int) vod.Video {
			v := vod.MPEG1Video(id)
			v.Ladder = ladder
			return v
		},
	})
	if err != nil {
		panic(err)
	}
	// Twice the disk's base day, compressed into an 8-hour horizon, so
	// the peak genuinely overloads the schedule. Viewers ask for their
	// title's top rung.
	trace := vod.GenerateWorkload(vod.ZipfDaySchedule(5000, 0, vod.Hours(3), vod.Hours(8)), lib, 11)
	for i, r := range trace.Requests {
		trace.Requests[i].Rate = lib.Video(r.Video).Rate
	}
	res, err := vod.Simulate(vod.SimConfig{
		Scheme: vod.Dynamic, Method: vod.NewMethod(vod.RoundRobin),
		Spec: spec, CR: ladder[0], Library: lib, Trace: trace, Seed: 7,
		Rates: ladder, Downgrade: true,
		Adapt: &vod.AdaptConfig{}, // zero value = engine defaults
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("served:    %d (downgraded at admission: %d)\n", res.Served, res.Downgrades)
	fmt.Printf("switches:  %d down, %d up\n", res.SwitchesDown, res.SwitchesUp)
	fmt.Printf("tw rung:   %.4f Mbps\n", float64(res.TimeWeightedRate())/1e6)
	// Output:
	// served:    690 (downgraded at admission: 6)
	// switches:  2 down, 2 up
	// tw rung:   1.4935 Mbps
}
