// Capacity planning with the paper's analysis: how much memory does a
// multi-disk VOD server need for a target concurrency, and how many
// viewers does a given amount of memory buy?
//
// This is the operator-facing use of Theorems 2–4: the same formulas the
// simulation's admission governor uses (Figs. 13–14) answer provisioning
// questions directly, without simulating anything.
//
//	go run ./examples/capacity-planning
package main

import (
	"fmt"
	"math"

	vod "repro"
)

func main() {
	spec, _, params := vod.PaperEnvironment()
	method := vod.NewMethod(vod.RoundRobin)
	const disks = 10
	const k = 4 // the paper's measured worst-average prediction for RR

	fmt.Printf("server: %d x %s, %v streams, Round-Robin/BubbleUp\n", disks, spec.Name, vod.Mbps(1.5))
	fmt.Printf("aggregate disk capacity: %d concurrent viewers\n\n", disks*params.N)

	// Question 1: memory needed for a target of evenly loaded viewers.
	fmt.Println("memory needed to guarantee a target concurrency (even disk load):")
	fmt.Printf("  %8s %14s %14s %9s\n", "viewers", "static", "dynamic", "saving")
	for _, target := range []int{100, 200, 400, 600, 790} {
		perDisk := (target + disks - 1) / disks
		kk := k
		if kk > params.N-perDisk {
			kk = params.N - perDisk
		}
		static := float64(vod.MinMemoryStatic(params, method, spec, perDisk)) * disks
		dynamic := float64(vod.MinMemoryDynamic(params, method, spec, perDisk, kk)) * disks
		fmt.Printf("  %8d %13.2fGB %13.2fGB %8.1fx\n",
			target, vod.Bits(static).GigabytesVal(), vod.Bits(dynamic).GigabytesVal(), static/dynamic)
	}

	// Question 2: viewers supported by a given memory budget, assuming
	// the popularity-driven load imbalance of Wolf et al. (Zipf 0.271
	// across disks) and spending memory greedily where it is cheapest.
	fmt.Println("\nviewers supported by a memory budget (Zipf(0.271) disk load):")
	fmt.Printf("  %8s %10s %10s\n", "memory", "static", "dynamic")
	for _, gb := range []float64{1, 2, 4, 8, 11} {
		budget := vod.Gigabytes(gb)
		fmt.Printf("  %7.1fG %10d %10d\n", gb,
			plan(params, method, spec, false, budget),
			plan(params, method, spec, true, budget))
	}
	fmt.Println("\nthe dynamic scheme moves saved memory to the hot disks, which is")
	fmt.Println("exactly the load-imbalance argument of Section 5.3.")
}

// plan greedily admits viewers across the disks until the budget is
// exhausted, always placing the next viewer where the added reservation
// is smallest (the memory curves are convex, so this maximizes count).
func plan(p vod.Params, m vod.Method, spec vod.DiskSpec, dynamic bool, budget vod.Bits) int {
	const disks = 10
	const k = 4
	weights := zipfWeights(disks, 0.271)
	memFor := func(n int) vod.Bits {
		if n == 0 {
			return 0
		}
		if dynamic {
			kk := k
			if kk > p.N-n {
				kk = p.N - n
			}
			return vod.MinMemoryDynamic(p, m, spec, n, kk)
		}
		return vod.MinMemoryStatic(p, m, spec, n)
	}
	// Demand caps per disk: a popularity-skewed offered load of 1000.
	caps := make([]int, disks)
	for d := range caps {
		caps[d] = int(weights[d] * 1000)
		if caps[d] > p.N {
			caps[d] = p.N
		}
	}
	n := make([]int, disks)
	var used vod.Bits
	total := 0
	for {
		best, bestCost := -1, vod.Bits(0)
		for d := range n {
			if n[d] >= caps[d] {
				continue
			}
			cost := memFor(n[d]+1) - memFor(n[d])
			if best < 0 || cost < bestCost {
				best, bestCost = d, cost
			}
		}
		if best < 0 || used+bestCost > budget {
			return total
		}
		used += bestCost
		n[best]++
		total++
	}
}

// zipfWeights reproduces the paper's Zipf convention locally: weight_i
// proportional to (1/i)^(1−theta), normalized.
func zipfWeights(n int, theta float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(1/float64(i+1), 1-theta)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
