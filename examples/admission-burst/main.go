// Admission under a flash crowd: what predict-and-enforce buys.
//
// A quiet VOD server is hit by a burst of arrivals. The dynamic scheme
// predicted only a small number of additional requests, so its in-service
// buffers were sized for a bounded near future; admission control defers
// the excess arrivals rather than letting them starve the admitted
// viewers. The naive scheme (Eq. 5 at n+k, no enforcement) admits eagerly
// and underruns — the exact failure Fig. 3 of the paper illustrates.
//
//	go run ./examples/admission-burst
package main

import (
	"fmt"
	"log"

	vod "repro"
)

func main() {
	spec, cr, _ := vod.PaperEnvironment()
	lib, err := vod.NewLibrary(vod.LibraryConfig{
		Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A hand-built burst schedule: 30 minutes of calm (a few arrivals),
	// then a flash crowd for 30 minutes, then calm again. Rates are in
	// arrivals per second over 30-minute slots.
	calm := 4.0 / 1800   // ~4 arrivals per half hour
	crowd := 45.0 / 1800 // ~45 arrivals per half hour — below capacity
	schedule := burstSchedule([]float64{calm, calm, crowd, crowd, calm})
	trace := vod.GenerateWorkload(schedule, lib, 7)
	fmt.Printf("workload: %d arrivals over %v, flash crowd in minutes 60-90\n\n",
		len(trace.Requests), schedule.Horizon())

	fmt.Printf("%-8s %8s %8s %8s %8s %10s %12s\n",
		"scheme", "served", "maxConc", "deferred", "rejected", "underruns", "starved")
	for _, scheme := range []vod.Scheme{vod.Dynamic, vod.Naive, vod.Static} {
		res, err := vod.Simulate(vod.SimConfig{
			Scheme: scheme, Method: vod.NewMethod(vod.RoundRobin),
			Spec: spec, CR: cr, Library: lib, Trace: trace, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %8d %8d %8d %8d %10d %12v\n",
			scheme, res.Served, res.MaxConcurrent, res.Deferrals, res.Rejected, res.Underruns, res.Starved)
	}
	fmt.Println("\nthe dynamic scheme's buffers were sized for a bounded near future")
	fmt.Println("and its admission control enforces that bound, so the admitted")
	fmt.Println("viewers never starve; the naive scheme sizes for the present only")
	fmt.Println("and starves the buffers it already promised to keep full.")
}

// burstSchedule builds a piecewise-constant schedule from per-slot rates
// (30-minute slots).
func burstSchedule(rates []float64) vod.ArrivalSchedule {
	return vod.NewArrivalSchedule(vod.Minutes(30), rates)
}
