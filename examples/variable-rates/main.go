// Variable display rates (footnote 2): the paper's model assumes equal
// consumption rates, and offers two adaptations for mixed-rate libraries —
// budget every stream at the maximal rate, or use the greatest common
// divisor as a unit rate and treat each stream as a bundle of unit
// streams. This example quantifies what the unit-rate method buys for a
// library mixing audiobook-, SD- and HD-class streams.
//
//	go run ./examples/variable-rates
package main

import (
	"fmt"
	"log"

	vod "repro"
)

func main() {
	spec := vod.Barracuda9LP()
	rates := []vod.BitRate{vod.Mbps(0.5), vod.Mbps(1.5), vod.Mbps(3)}
	set, err := vod.NewRateSet(rates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rates: %v   unit: %v   max: %v\n\n", rates, set.Unit(), set.Max())

	maxP, err := set.MaxRateParams(spec.TransferRate, 1)
	if err != nil {
		log.Fatal(err)
	}
	unitP, err := set.UnitRateParams(spec.TransferRate, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Capacity: the max-rate method charges every stream 3 Mbps; the
	// unit-rate method charges exactly what each consumes.
	fmt.Printf("capacity, max-rate method:  %d streams (any mix)\n", maxP.N)
	fmt.Printf("capacity, unit-rate method: %d unit slots =\n", unitP.N)
	for _, r := range rates {
		m, err := set.Multiple(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %8v -> %d slots each: up to %d such streams alone\n", r, m, unitP.N/m)
	}

	// Buffers: a mixed load of 30 physical streams, 10 of each rate.
	// Under the unit-rate method that is 10*(1+3+6) = 100 unit streams.
	m := vod.NewMethod(vod.RoundRobin)
	nUnits := 10*1 + 10*3 + 10*6
	dl := vod.WorstDiskLatency(m, spec, nUnits)
	fmt.Printf("\nbuffers for 30 mixed streams (= %d unit streams), k = 4:\n", nUnits)
	fmt.Printf("  %8s %14s %14s\n", "rate", "unit-rate BS", "max-rate BS")
	for _, r := range rates {
		unitBS, err := set.StreamBuffer(unitP, dl, nUnits, 4, r)
		if err != nil {
			log.Fatal(err)
		}
		// Max-rate method: every stream is a 3 Mbps stream; 30 of them.
		maxBS := vod.DynamicBufferSize(maxP, vod.WorstDiskLatency(m, spec, 30), 30, 4)
		fmt.Printf("  %8v %14v %14v\n", r, unitBS, maxBS)
	}
	fmt.Println("\nthe unit-rate method sizes each stream for what it actually")
	fmt.Println("consumes; the max-rate method charges everyone for HD.")
}
