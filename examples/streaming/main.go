// A live miniature VOD server: goroutine-per-viewer streaming in scaled
// wall-clock time, allocating buffers from the paper's dynamic sizing
// table and admitting viewers with the predict-and-enforce book.
//
// Simulated seconds are compressed 20x (beyond that, the sub-millisecond
// sleeps fall under the OS timer resolution and the pacing collapses);
// the demo streams six short clips in a few wall seconds and prints each
// viewer's startup latency, fill sizes, and total stall time.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	vod "repro"
)

// compression of simulated time into wall time.
const timeScale = 20

// wall converts a simulated duration to a wall-clock duration.
func wall(s vod.Seconds) time.Duration { return (s / timeScale).Duration() }

// viewer is one connected client.
type viewer struct {
	id        int
	watchFor  vod.Seconds // how much content the viewer will consume
	admitted  time.Time
	started   time.Time
	rebuffers int

	mu        sync.Mutex
	level     vod.Bits // data buffered and not yet consumed
	delivered vod.Bits // data fetched from disk so far
	firstFill vod.Bits // size of the first allocation
	lastFill  vod.Bits // size of the latest allocation
	fills     int
	gotAll    bool
	done      chan struct{}
}

// server is a tiny single-disk VOD server driven by the library's
// Controller: the thread-safe sizing + admission machinery a real server
// embeds.
type server struct {
	spec vod.DiskSpec
	cr   vod.BitRate
	ctl  *vod.Controller

	epoch   time.Time   // wall anchor for simulated time
	diskAt  vod.Seconds // simulated time the disk is busy through
	mu      sync.Mutex
	viewers []*viewer
	wake    chan struct{}
}

func newServer() *server {
	spec, cr, params := vod.PaperEnvironment()
	return &server{
		spec:  spec,
		cr:    cr,
		ctl:   vod.NewController(params, vod.NewMethod(vod.RoundRobin), spec, vod.Minutes(40)),
		epoch: time.Now(),
		wake:  make(chan struct{}, 1),
	}
}

// simNow reports the current simulated time.
func (s *server) simNow() vod.Seconds {
	return vod.Seconds(time.Since(s.epoch).Seconds()) * timeScale
}

// connect admits a viewer per the predict-and-enforce rule, retrying
// while admission is deferred (Fig. 5 resolves violations by deferring
// the new request until the assumptions hold again).
func (s *server) connect(v *viewer) bool {
	v.admitted = time.Now()
	s.ctl.ObserveArrival(s.simNow())
	for tries := 0; ; tries++ {
		if s.ctl.Admit(s.simNow()) {
			s.mu.Lock()
			v.done = make(chan struct{})
			s.viewers = append(s.viewers, v)
			select {
			case s.wake <- struct{}{}:
			default:
			}
			s.mu.Unlock()
			if tries > 0 {
				log.Printf("viewer %d admitted after %d deferrals", v.id, tries)
			}
			return true
		}
		if tries > 200 {
			return false
		}
		time.Sleep(wall(1)) // retry after a simulated second
	}
}

// serve is the disk loop: one service at a time, lowest-buffer-first,
// sizing each fill through the Controller and topping up rather than
// over-filling (use-it-and-toss-it).
func (s *server) serve(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		v, size := s.pickNext()
		if v == nil {
			// Nothing due: nap briefly — well under the due-to-empty
			// window of a quarter-drained minimum buffer.
			select {
			case <-s.wake:
			case <-stop:
				return
			case <-time.After(wall(0.01)):
			}
			continue
		}
		// One service: an actual sampled disk latency (random seek plus
		// rotational delay — the sizing guarantees worst case, the real
		// disk usually does better) plus the transfer. The disk's
		// simulated busy-time is paced against the wall clock by
		// absolute target, so sleep overshoot never accumulates.
		dl := s.spec.SeekTime(rand.Intn(s.spec.Cylinders)) +
			vod.Seconds(rand.Float64())*s.spec.MaxRotational
		now := vod.Seconds(time.Since(s.epoch).Seconds()) * timeScale
		if s.diskAt < now {
			s.diskAt = now
		}
		s.diskAt += dl + s.spec.TransferRate.TimeToTransfer(size)
		if d := time.Until(s.epoch.Add(wall(s.diskAt).Truncate(0))); d > 0 {
			time.Sleep(d)
		}

		v.mu.Lock()
		v.level += size
		v.delivered += size
		if v.started.IsZero() {
			v.started = time.Now()
		}
		if v.fills == 0 {
			v.firstFill = size
		}
		v.lastFill = size
		v.fills++
		if v.delivered >= s.cr.DataIn(v.watchFor) {
			v.gotAll = true
		}
		v.mu.Unlock()
	}
}

// pickNext chooses the most drained viewer still needing data and the
// fill size for it, and records the inertia snapshot in the book. A
// viewer whose buffer is still mostly full is not due yet.
func (s *server) pickNext() (*viewer, vod.Bits) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.viewers)
	if n == 0 {
		return nil, 0
	}
	var best *viewer
	bestLevel := vod.Bits(math.Inf(1))
	for _, v := range s.viewers {
		v.mu.Lock()
		level := v.level
		need := !v.gotAll
		v.mu.Unlock()
		if need && level < bestLevel {
			best, bestLevel = v, level
		}
	}
	if best == nil {
		return nil, 0
	}
	alloc, _, err := s.ctl.Allocate(best.id, s.simNow())
	if err != nil {
		return nil, 0
	}
	if bestLevel > alloc/4 {
		return nil, 0 // the most drained buffer is still mostly full
	}
	size := alloc - bestLevel // top up
	best.mu.Lock()
	if rem := s.cr.DataIn(best.watchFor) - best.delivered; size > rem {
		size = rem
	}
	best.mu.Unlock()
	return best, size
}

func (s *server) viewerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.viewers)
	if n < 1 {
		n = 1
	}
	return n
}

// disconnect removes a finished viewer.
func (s *server) disconnect(v *viewer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctl.Release(v.id)
	for i, o := range s.viewers {
		if o == v {
			s.viewers = append(s.viewers[:i], s.viewers[i+1:]...)
			break
		}
	}
}

// watch consumes the stream in 100 ms (simulated) ticks, counting
// rebuffer events when the buffer is empty at a tick.
func (v *viewer) watch(cr vod.BitRate) {
	tick := vod.Seconds(0.05)
	consumed := vod.Bits(0)
	target := cr.DataIn(v.watchFor)
	// Wait for startup.
	for {
		v.mu.Lock()
		started := !v.started.IsZero()
		v.mu.Unlock()
		if started {
			break
		}
		time.Sleep(wall(tick))
	}
	// Pace consumption against absolute wall targets anchored at startup
	// so sleep overshoot never accumulates into false stalls.
	playStart := time.Now()
	elapsed := vod.Seconds(0)
	for consumed < target {
		elapsed += tick
		if d := time.Until(playStart.Add(wall(elapsed))); d > 0 {
			time.Sleep(d)
		}
		v.mu.Lock()
		// Consume up to one tick's worth; partial draining is normal
		// when a buffer is smaller than a tick's bite.
		bite := cr.DataIn(tick)
		if bite > target-consumed {
			bite = target - consumed
		}
		if bite > v.level {
			bite = v.level
		}
		v.level -= bite
		consumed += bite
		if bite == 0 {
			if v.gotAll {
				// Everything delivered has been consumed; any residual
				// difference from target is float dust.
				v.mu.Unlock()
				break
			}
			v.rebuffers++
		}
		v.mu.Unlock()
	}
	close(v.done)
}

func main() {
	srv := newServer()
	stop := make(chan struct{})
	go srv.serve(stop)

	cr := srv.cr
	var wg sync.WaitGroup
	results := make([]*viewer, 0, 6)
	var resultsMu sync.Mutex

	// Six viewers connect over ~1.5 wall seconds, each watching 10 to
	// 60 simulated seconds.
	for i := 0; i < 6; i++ {
		v := &viewer{id: i, watchFor: vod.Seconds(10 + 10*float64(i))}
		if !srv.connect(v) {
			log.Printf("viewer %d rejected", i)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.watch(cr)
			srv.disconnect(v)
			resultsMu.Lock()
			results = append(results, v)
			resultsMu.Unlock()
		}()
		time.Sleep(wall(vod.Seconds(5)))
	}
	wg.Wait()
	close(stop)

	sort.Slice(results, func(i, j int) bool { return results[i].id < results[j].id })
	fmt.Printf("%-8s %12s %14s %12s %12s %8s %12s\n",
		"viewer", "watched", "startup(wall)", "first fill", "last fill", "fills", "stalled(sim)")
	for _, v := range results {
		fmt.Printf("%-8d %11.0fs %14s %12v %12v %8d %11.2fs\n",
			v.id, float64(v.watchFor), v.started.Sub(v.admitted).Round(time.Microsecond),
			v.firstFill, v.lastFill, v.fills, 0.05*float64(v.rebuffers))
	}
	fmt.Println("\nfills grow as concurrent viewers accumulate (the dynamic sizing")
	fmt.Println("table at work) and shrink again as viewers finish; startup stays")
	fmt.Println("in the low simulated tens of milliseconds throughout. the small")
	fmt.Println("stalls are the price of streaming from deliberately minimum")
	fmt.Println("buffers through a wall clock with scheduling jitter.")
}
