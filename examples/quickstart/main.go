// Quickstart: size buffers with the static and dynamic schemes, compare
// their latency and memory implications, and run a small simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	vod "repro"
)

func main() {
	// The paper's environment: a Seagate Barracuda 9LP serving 1.5 Mbps
	// MPEG-1 streams. N = 79 concurrent streams fit on one disk.
	spec, cr, params := vod.PaperEnvironment()
	method := vod.NewMethod(vod.RoundRobin)

	fmt.Printf("disk %q: TR=%v, max %d concurrent %v streams\n\n",
		spec.Name, spec.TransferRate, params.N, cr)

	// Static allocation sizes every buffer for the fully loaded server.
	dlFull := vod.WorstDiskLatency(method, spec, params.N)
	staticBS := vod.StaticBufferSize(params, dlFull, params.N)
	fmt.Printf("static scheme allocates %v to every request, always\n\n", staticBS)

	// Dynamic allocation sizes for the current load n plus a prediction k
	// of near-future arrivals (Theorem 1).
	fmt.Printf("%4s %6s  %12s  %18s\n", "n", "k", "dynamic BS", "worst init latency")
	for _, load := range []struct{ n, k int }{{1, 1}, {10, 4}, {40, 4}, {70, 4}, {79, 0}} {
		dl := vod.WorstDiskLatency(method, spec, load.n)
		bs := vod.DynamicBufferSize(params, dl, load.n, load.k)
		il := vod.WorstInitialLatency(method, spec, bs, load.n)
		fmt.Printf("%4d %6d  %12v  %18v\n", load.n, load.k, bs, il)
	}

	// Simulate two hours of a lightly loaded server under both schemes.
	lib, err := vod.NewLibrary(vod.LibraryConfig{
		Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271,
	})
	if err != nil {
		log.Fatal(err)
	}
	trace := vod.GenerateWorkload(vod.ZipfDaySchedule(60, 1, vod.Hours(1), vod.Hours(2)), lib, 42)

	fmt.Printf("\nsimulating %d requests over 2 hours:\n", len(trace.Requests))
	for _, scheme := range []vod.Scheme{vod.Static, vod.Dynamic} {
		res, err := vod.Simulate(vod.SimConfig{
			Scheme: scheme, Method: method, Spec: spec, CR: cr,
			Library: lib, Trace: trace, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		mean, _ := res.LatencyByN.GrandMean()
		fmt.Printf("  %-8v avg latency %8.4gs   peak memory %9v   underruns %d\n",
			scheme, mean, res.PeakMemory, res.Underruns)
	}
}
