package share

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// layerEnv is a deliberately tiny engine: CR = 40 Mbps against the
// Barracuda's 120 Mbps transfer rate gives N = 2 streams per disk, so a
// couple of viewers exhaust capacity and the rejection path is easy to
// reach.
func layerEnv(t *testing.T, titles, disks int) (*engine.System, *engine.VirtualClock, *catalog.Library, si.BitRate) {
	t.Helper()
	cr := si.Mbps(40)
	lib, err := catalog.New(catalog.Config{
		Titles: titles, Disks: disks, Spec: diskmodel.Barracuda9LP(), PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			return catalog.Video{ID: id, Title: fmt.Sprintf("t%d", id), Rate: cr, Length: si.Minutes(1)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := engine.NewVirtualClock()
	sys, err := engine.New(engine.Config{
		Clock:     clock,
		Allocator: engine.DynamicAllocator{},
		Method:    sched.NewMethod(sched.RoundRobin),
		Spec:      diskmodel.Barracuda9LP(),
		CR:        cr,
		Alpha:     1,
		TLog:      si.Minutes(40),
		Library:   lib,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, clock, lib, cr
}

// recEvents records the layer's per-viewer callbacks.
type recEvents struct {
	admitted []int
	rejected []int
	done     []int
	data     map[int]si.Bits
}

func newRecEvents() *recEvents { return &recEvents{data: make(map[int]si.Bits)} }

func (r *recEvents) ViewerAdmitted(v *Viewer, now si.Seconds) {
	r.admitted = append(r.admitted, v.ID())
}
func (r *recEvents) ViewerRejected(v *Viewer, now si.Seconds) {
	r.rejected = append(r.rejected, v.ID())
}
func (r *recEvents) ViewerData(v *Viewer, total si.Bits, now si.Seconds) { r.data[v.ID()] = total }
func (r *recEvents) ViewerDone(v *Viewer, now si.Seconds)                { r.done = append(r.done, v.ID()) }

func req(id, video, disk int, arrival, viewing si.Seconds) workload.Request {
	return workload.Request{ID: id, Arrival: arrival, Video: video, Disk: disk, Viewing: viewing}
}

func TestNewValidatesConfig(t *testing.T) {
	sys, _, lib, cr := layerEnv(t, 2, 1)
	bad := []Config{
		{System: nil, Library: lib, CR: cr},
		{System: sys, Library: nil, CR: cr},
		{System: sys, Library: lib, CR: 0},
		{System: sys, Library: lib, CR: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: New accepted an invalid config", i)
		}
	}
	// Disk-count mismatch between system and library.
	other := cacheLib(t, 4, 2, si.Minutes(1))
	if _, err := New(Config{System: sys, Library: other, CR: cr}); err == nil {
		t.Error("New accepted a library with a different disk count")
	}
}

func TestLayerRejectsAtCapacity(t *testing.T) {
	sys, clock, lib, cr := layerEnv(t, 3, 1)
	rec := newRecEvents()
	l, err := New(Config{System: sys, Library: lib, CR: cr,
		Options: Options{Window: si.Seconds(1), CacheBudget: -1, Events: rec}})
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct titles: no merging possible, so the third viewer
	// hits the capacity wall (N = 2).
	for i := 0; i < 3; i++ {
		r := req(i+1, i, 0, 0, si.Seconds(10))
		clock.Schedule(0, func() { l.Submit(r) })
	}
	clock.Run(si.Minutes(2))
	if len(rec.admitted) != 2 || len(rec.rejected) != 1 || rec.rejected[0] != 3 {
		t.Fatalf("admitted %v rejected %v, want two admitted and viewer 3 rejected", rec.admitted, rec.rejected)
	}
	st := l.Stats()
	if st.Totals.Leaders != 3 || st.Totals.Rejected != 1 || st.Totals.Admitted != 2 {
		t.Errorf("stats = %+v, want 3 leaders, 1 rejected, 2 admitted", st.Totals)
	}
	if len(rec.done) != 2 {
		t.Errorf("%d viewers completed, want 2", len(rec.done))
	}
	for _, id := range rec.done {
		if want := maxBits(cr.DataIn(si.Seconds(10)), 1); rec.data[id] != want {
			t.Errorf("viewer %d delivered %v, want %v", id, rec.data[id], want)
		}
	}
}

func TestLayerMergesAndExtends(t *testing.T) {
	sys, clock, lib, cr := layerEnv(t, 2, 1)
	rec := newRecEvents()
	l, err := New(Config{System: sys, Library: lib, CR: cr,
		Options: Options{Window: si.Seconds(30), Events: rec}})
	if err != nil {
		t.Fatal(err)
	}
	if l.Cache() == nil || l.Cache().Titles() != 2 {
		t.Fatalf("cache pinned %d titles, want 2", l.Cache().Titles())
	}
	// The leader watches 40 s (past the 30 s prefix, so it needs the
	// disk); a joiner arrives 5 s in wanting 45 s, which both piggybacks
	// and extends the stream's horizon.
	lead := req(1, 0, 0, 0, si.Seconds(40))
	join := req(2, 0, 0, si.Seconds(5), si.Seconds(45))
	clock.Schedule(0, func() { l.Submit(lead) })
	clock.Schedule(si.Seconds(5), func() { l.Submit(join) })
	clock.Run(si.Minutes(3))

	st := l.Stats()
	if st.Totals.Leaders != 1 || st.Totals.Merged != 1 {
		t.Fatalf("stats = %+v, want 1 leader and 1 merged viewer", st.Totals)
	}
	if st.Totals.Extends == 0 {
		t.Error("the longer joiner should have extended the stream")
	}
	if st.Totals.PeakFanout != 2 {
		t.Errorf("peak fanout %d, want 2", st.Totals.PeakFanout)
	}
	if len(rec.done) != 2 {
		t.Fatalf("%d viewers completed, want 2", len(rec.done))
	}
	for id, viewing := range map[int]si.Seconds{1: si.Seconds(40), 2: si.Seconds(45)} {
		if want := maxBits(cr.DataIn(viewing), 1); rec.data[id] != want {
			t.Errorf("viewer %d delivered %v, want %v", id, rec.data[id], want)
		}
	}
	// Only one engine stream ever existed, and it is gone.
	if n := sys.Disk(0).InService(); n != 0 {
		t.Errorf("%d engine streams still in service", n)
	}
}

func TestLayerCacheOnlyViewer(t *testing.T) {
	sys, clock, lib, cr := layerEnv(t, 2, 1)
	rec := newRecEvents()
	l, err := New(Config{System: sys, Library: lib, CR: cr,
		Options: Options{Window: si.Seconds(30), Events: rec}})
	if err != nil {
		t.Fatal(err)
	}
	r := req(1, 0, 0, 0, si.Seconds(10)) // 10 s fits inside the 30 s prefix
	var probed bool
	clock.Schedule(0, func() { l.Submit(r) })
	clock.Schedule(si.Seconds(1), func() {
		probed = true
		if n := sys.Disk(0).InService(); n != 0 {
			t.Errorf("cache-only viewer reached the disk: %d streams", n)
		}
	})
	clock.Run(si.Minutes(1))
	if !probed {
		t.Fatal("probe never ran")
	}
	st := l.Stats()
	if st.Totals.CacheOnly != 1 || st.Totals.Leaders != 0 {
		t.Fatalf("stats = %+v, want one cache-only viewer and no leaders", st.Totals)
	}
	if want := maxBits(cr.DataIn(si.Seconds(10)), 1); st.Totals.CacheHitBits != want {
		t.Errorf("cache hit bits %v, want %v", st.Totals.CacheHitBits, want)
	}
	if len(rec.done) != 1 || rec.data[1] != maxBits(cr.DataIn(si.Seconds(10)), 1) {
		t.Errorf("cache-only viewer delivery wrong: done=%v data=%v", rec.done, rec.data)
	}
	// Pinned prefixes are charged to the pool.
	if pinned := sys.Disk(0).Pool().Pinned(); pinned != l.Cache().PinnedOn(0) {
		t.Errorf("pool pinned %v, cache says %v", pinned, l.Cache().PinnedOn(0))
	}
}

func TestLayerCancel(t *testing.T) {
	sys, clock, lib, cr := layerEnv(t, 2, 1)
	rec := newRecEvents()
	l, err := New(Config{System: sys, Library: lib, CR: cr,
		Options: Options{Window: si.Seconds(30), Events: rec}})
	if err != nil {
		t.Fatal(err)
	}
	lead := req(1, 0, 0, 0, si.Minutes(1))
	join := req(2, 0, 0, si.Seconds(2), si.Minutes(1))
	clock.Schedule(0, func() { l.Submit(lead) })
	clock.Schedule(si.Seconds(2), func() { l.Submit(join) })
	clock.Schedule(si.Seconds(4), func() {
		if got := l.Watching(0); got != 2 {
			t.Errorf("watching gauge %d at 4s, want 2", got)
		}
		l.Cancel(2, 0)
		l.Cancel(99, 0) // unknown viewer: no-op
	})
	clock.Schedule(si.Seconds(6), func() {
		if got := l.Watching(0); got != 1 {
			t.Errorf("watching gauge %d after one cancel, want 1", got)
		}
		l.Cancel(1, 0) // the stream's last viewer: retires the stream
	})
	var drained bool
	clock.Schedule(si.Seconds(8), func() {
		drained = true
		if n := sys.Disk(0).InService(); n != 0 {
			t.Errorf("engine still serves %d streams after the last viewer canceled", n)
		}
		if got := l.Watching(0); got != 0 {
			t.Errorf("watching gauge %d after both cancels, want 0", got)
		}
	})
	clock.Run(si.Minutes(3))
	if !drained {
		t.Fatal("probe never ran")
	}
	if len(rec.done) != 0 {
		t.Errorf("canceled viewers reported done: %v", rec.done)
	}
	st := l.Stats()
	if st.Totals.Admitted != 2 || st.Totals.Merged != 1 {
		t.Errorf("stats = %+v, want 2 admitted with 1 merged", st.Totals)
	}
}

func TestViewerAccessors(t *testing.T) {
	sys, clock, lib, cr := layerEnv(t, 2, 1)
	var seen *Viewer
	rec := &captureEvents{}
	l, err := New(Config{System: sys, Library: lib, CR: cr,
		Options: Options{Window: si.Seconds(30), Events: rec}})
	if err != nil {
		t.Fatal(err)
	}
	r := req(7, 1, 0, 0, si.Seconds(10))
	clock.Schedule(0, func() { l.Submit(r) })
	clock.Run(si.Minutes(1))
	seen = rec.last
	if seen == nil {
		t.Fatal("no viewer observed")
	}
	if seen.ID() != 7 || seen.Disk() != 0 || seen.Req() != r {
		t.Errorf("viewer identity wrong: id=%d disk=%d req=%+v", seen.ID(), seen.Disk(), seen.Req())
	}
	if !seen.CacheOnly() || seen.Merged() {
		t.Errorf("10 s viewing inside a 30 s prefix should be cache-only, got cacheOnly=%v merged=%v",
			seen.CacheOnly(), seen.Merged())
	}
	if seen.Delivered() != seen.Required() {
		t.Errorf("delivered %v != required %v", seen.Delivered(), seen.Required())
	}
}

type captureEvents struct {
	NopEvents
	last *Viewer
}

func (c *captureEvents) ViewerDone(v *Viewer, now si.Seconds) { c.last = v }
