package share

import (
	"testing"

	"repro/internal/si"
)

func bits(n int64) si.Bits { return si.Bits(n) }

func TestPlanJoin(t *testing.T) {
	cases := []struct {
		name                     string
		prefix, landed, required int64
		wantFrom                 int64
		wantOK                   bool
	}{
		{"batch before any data", 0, 0, 100, 0, true},
		{"batch with cache present", 50, 0, 100, 0, true},
		{"gap inside prefix", 50, 30, 100, 30, true},
		{"gap at prefix boundary", 50, 50, 100, 50, true},
		{"gap past prefix", 50, 51, 100, 0, false},
		{"no cache no join", 0, 1, 100, 0, false},
		{"replay clamped to requirement", 100, 80, 60, 60, true},
		{"nothing required", 50, 10, 0, 0, false},
		{"negative required", 50, 10, -1, 0, false},
		{"negative prefix", -1, 0, 100, 0, false},
		{"negative landed", 50, -1, 100, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			from, ok := PlanJoin(bits(c.prefix), bits(c.landed), bits(c.required))
			if ok != c.wantOK || from != bits(c.wantFrom) {
				t.Errorf("PlanJoin(%d, %d, %d) = (%v, %v), want (%v, %v)",
					c.prefix, c.landed, c.required, from, ok, c.wantFrom, c.wantOK)
			}
		})
	}
}

func TestAdvanceViewer(t *testing.T) {
	cases := []struct {
		name                        string
		delivered, landed, required int64
		want                        int64
	}{
		{"advance to landed", 10, 40, 100, 40},
		{"clamp to required", 10, 120, 100, 100},
		{"never backward", 50, 40, 100, 50},
		{"no change", 40, 40, 100, 40},
		{"from zero", 0, 5, 100, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := AdvanceViewer(bits(c.delivered), bits(c.landed), bits(c.required))
			if got != bits(c.want) {
				t.Errorf("AdvanceViewer(%d, %d, %d) = %v, want %v",
					c.delivered, c.landed, c.required, got, c.want)
			}
		})
	}
}
