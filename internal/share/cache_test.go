package share

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/si"
)

func cacheLib(t *testing.T, titles, disks int, length si.Seconds) *catalog.Library {
	t.Helper()
	lib, err := catalog.New(catalog.Config{
		Titles: titles, Disks: disks, Spec: diskmodel.Barracuda9LP(), PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			return catalog.Video{ID: id, Title: fmt.Sprintf("t%d", id), Rate: si.Mbps(1.5), Length: length}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestPrefixCacheUnbudgeted(t *testing.T) {
	lib := cacheLib(t, 6, 2, si.Minutes(10))
	window := si.Minutes(2)
	c := NewPrefixCache(lib, window, 0)
	if c.Window() != window {
		t.Errorf("Window = %v, want %v", c.Window(), window)
	}
	if c.Titles() != 6 {
		t.Errorf("cached %d titles, want all 6", c.Titles())
	}
	per := si.Mbps(1.5).DataIn(window)
	if got := c.PrefixBits(0); got != per {
		t.Errorf("PrefixBits(0) = %v, want %v", got, per)
	}
	if got := c.PinnedBits(); got != 6*per {
		t.Errorf("PinnedBits = %v, want %v", got, 6*per)
	}
	// Round-robin placement: 3 titles per disk.
	if got := c.PinnedOn(0); got != 3*per {
		t.Errorf("PinnedOn(0) = %v, want %v", got, 3*per)
	}
	// Out-of-range probes are zero, not panics.
	if c.PrefixBits(-1) != 0 || c.PrefixBits(6) != 0 || c.PinnedOn(-1) != 0 || c.PinnedOn(2) != 0 {
		t.Error("out-of-range probes must report zero")
	}
}

func TestPrefixCacheBudgetPinsHottestFirst(t *testing.T) {
	lib := cacheLib(t, 6, 2, si.Minutes(10))
	window := si.Minutes(2)
	per := si.Mbps(1.5).DataIn(window)
	c := NewPrefixCache(lib, window, 2*per)
	if c.Titles() != 2 {
		t.Fatalf("cached %d titles under a 2-prefix budget, want 2", c.Titles())
	}
	// Ascending id is descending popularity: the two hottest get the
	// pins, the rest none.
	for id := 0; id < 6; id++ {
		want := si.Bits(0)
		if id < 2 {
			want = per
		}
		if got := c.PrefixBits(id); got != want {
			t.Errorf("PrefixBits(%d) = %v, want %v", id, got, want)
		}
	}
	if got := c.PinnedBits(); got != 2*per {
		t.Errorf("PinnedBits = %v, want %v", got, 2*per)
	}
}

func TestPrefixCacheShortTitlePinsInFull(t *testing.T) {
	length := si.Seconds(30)
	lib := cacheLib(t, 2, 1, length)
	c := NewPrefixCache(lib, si.Minutes(2), 0)
	want := si.Mbps(1.5).DataIn(length)
	if got := c.PrefixBits(0); got != want {
		t.Errorf("PrefixBits(0) = %v, want full title %v", got, want)
	}
}

func TestPrefixCacheDisabled(t *testing.T) {
	lib := cacheLib(t, 4, 1, si.Minutes(10))
	if c := NewPrefixCache(lib, 0, 0); c.Titles() != 0 || c.PinnedBits() != 0 {
		t.Error("zero window must pin nothing")
	}
	if c := NewPrefixCache(lib, si.Minutes(2), -1); c.Titles() != 0 || c.PinnedBits() != 0 {
		t.Error("negative budget must pin nothing")
	}
}
