package share

import (
	"testing"

	"repro/internal/si"
)

// FuzzPrefixJoin holds the cache-handoff math to its invariants for
// arbitrary (prefix, landed, required) and an arbitrary sequence of
// landed totals after the join: the replay never exceeds the gap or the
// requirement, joins outside the prefix are refused, and advancing the
// viewer along the stream's landed totals keeps delivery monotone,
// within the requirement, and exactly complete once the stream has
// landed enough.
func FuzzPrefixJoin(f *testing.F) {
	f.Add(int64(100), int64(0), int64(500), int64(250))
	f.Add(int64(100), int64(60), int64(500), int64(600))
	f.Add(int64(0), int64(0), int64(1), int64(1))
	f.Add(int64(-5), int64(3), int64(10), int64(4))
	f.Fuzz(func(t *testing.T, prefix, landed, required, step int64) {
		p, l, r := si.Bits(prefix), si.Bits(landed), si.Bits(required)
		fromCache, ok := PlanJoin(p, l, r)
		if fromCache < 0 {
			t.Fatalf("PlanJoin(%v, %v, %v) returned negative replay %v", p, l, r, fromCache)
		}
		if !ok {
			if fromCache != 0 {
				t.Fatalf("refused join returned replay %v", fromCache)
			}
			// A refusal must have a reason: degenerate input or a gap
			// the cache cannot replay.
			if p >= 0 && l >= 0 && r > 0 && (l == 0 || l <= p) {
				t.Fatalf("PlanJoin(%v, %v, %v) refused a joinable viewer", p, l, r)
			}
			return
		}
		if fromCache > l {
			t.Fatalf("replay %v exceeds gap %v", fromCache, l)
		}
		if fromCache > r {
			t.Fatalf("replay %v exceeds requirement %v", fromCache, r)
		}
		if l > p && l != 0 {
			t.Fatalf("PlanJoin(%v, %v, %v) joined past the prefix", p, l, r)
		}

		// Ride the stream: landed grows by arbitrary (possibly zero)
		// steps; delivery must stay monotone, contiguous from the join
		// point, and finish exactly at the requirement.
		if step < 0 {
			step = -step
		}
		delivered := fromCache
		for i := 0; i < 16; i++ {
			l += si.Bits(step%97) + si.Bits(i)
			next := AdvanceViewer(delivered, l, r)
			if next < delivered {
				t.Fatalf("delivery moved backward: %v -> %v", delivered, next)
			}
			if next > r {
				t.Fatalf("delivery %v exceeds requirement %v", next, r)
			}
			if next > l {
				t.Fatalf("delivery %v ahead of landed %v", next, l)
			}
			delivered = next
		}
		if l >= r && delivered != r {
			t.Fatalf("stream landed %v >= required %v but delivery stopped at %v", l, r, delivered)
		}
	})
}
