package share

import (
	"repro/internal/catalog"
	"repro/internal/si"
)

// PrefixCache records which titles have their first Window seconds pinned
// in memory and how much that pins per disk. Selection is
// popularity-aware: titles are considered in popularity order (the
// catalog's Zipf weights fall with the id, ties to the lower id) and each
// title's prefix is pinned until the budget runs out, so under a tight
// budget only the hot titles get the instant-join window. The cache is
// immutable after construction; the layer charges each disk's pinned
// footprint to that disk's buffer pool, so cache residency and stream
// buffers compete for the same accounted memory.
type PrefixCache struct {
	window  si.Seconds
	bits    []si.Bits // pinned prefix per title; 0 = not cached
	perDisk []si.Bits
	titles  int
	total   si.Bits
}

// NewPrefixCache pins prefixes of up to window seconds per title, hottest
// titles first, within budget total bits (budget 0 pins every title; a
// negative budget pins nothing, leaving batching as the only merge path).
// A title shorter than the window pins in full.
func NewPrefixCache(lib *catalog.Library, window si.Seconds, budget si.Bits) *PrefixCache {
	c := &PrefixCache{
		window:  window,
		bits:    make([]si.Bits, lib.Len()),
		perDisk: make([]si.Bits, lib.Disks()),
	}
	if window <= 0 || budget < 0 {
		return c
	}
	// catalog.New assigns Zipf popularity falling with the id, so
	// ascending id order IS descending popularity order.
	for id := 0; id < lib.Len(); id++ {
		v := lib.Video(id)
		span := window
		if v.Length < span {
			span = v.Length
		}
		p := v.Rate.DataIn(span)
		if p <= 0 {
			continue
		}
		if budget > 0 && c.total+p > budget {
			continue
		}
		c.bits[id] = p
		c.perDisk[lib.Placement(id).Disk] += p
		c.total += p
		c.titles++
	}
	return c
}

// Window reports the configured prefix length in playback seconds.
func (c *PrefixCache) Window() si.Seconds { return c.window }

// PrefixBits reports the pinned prefix of a title, 0 when not cached.
func (c *PrefixCache) PrefixBits(title int) si.Bits {
	if title < 0 || title >= len(c.bits) {
		return 0
	}
	return c.bits[title]
}

// Titles reports how many titles have a pinned prefix.
func (c *PrefixCache) Titles() int { return c.titles }

// PinnedBits reports the total pinned memory across all disks.
func (c *PrefixCache) PinnedBits() si.Bits { return c.total }

// PinnedOn reports the pinned memory residing on one disk.
func (c *PrefixCache) PinnedOn(disk int) si.Bits {
	if disk < 0 || disk >= len(c.perDisk) {
		return 0
	}
	return c.perDisk[disk]
}
