// Package share is the stream-sharing layer between admission and the
// engine: a popularity-aware prefix cache that pins the first seconds of
// hot titles in pool memory, and viewer batching/piggybacking that merges
// concurrent viewers of one title onto a single shared disk stream. The
// layer sits strictly above the engine — it submits ordinary arrivals,
// extends their viewing horizons, and fans completed fills out to the
// attached viewers — so every admission, sizing, and scheduling decision
// below it is exactly the paper's, unchanged.
//
// The correctness contract is that sharing is invisible to the viewer:
// every admitted viewer receives exactly the contiguous prefix [0, R_v)
// of its title, R_v = CR·viewing, byte for byte what a private stream
// would have delivered (internal/share's oracle test replays one trace
// both ways and compares). Three merge paths exist:
//
//   - cache-only: the whole requirement fits in the pinned prefix; the
//     viewer is served instantly from memory and no disk stream exists.
//   - batching: the viewer arrives while the title's shared stream has
//     not yet landed any data; it has missed nothing and simply attaches.
//   - prefix piggyback: the shared stream's landed data still fits inside
//     the pinned prefix; the missed gap is replayed from the cache and
//     the viewer rides the live fills from there.
//
// A shared stream whose landed data has passed the prefix is closed to
// joins — a newcomer then leads a fresh stream of its own. Because a
// viewer whose whole requirement fits in the prefix never reaches the
// disk, a stream's own requirement always exceeds its title's prefix;
// a live stream inside its join window is therefore necessarily still
// fetching, so piggybacking (which widens the stream's horizon) never
// resurrects a drained buffer and never perturbs the sizing guarantee.
package share

import "repro/internal/si"

// PlanJoin decides whether a viewer needing required bits can attach to a
// live shared stream whose completed fills total landed bits, given
// prefix pinned bits for the title. The viewer misses [0, landed) — an
// in-flight fill still reaches it — so the join is possible only when the
// cache can replay that gap: landed == 0 (pure batching, no cache needed)
// or landed <= prefix. fromCache is the replayed amount, clamped to the
// viewer's own requirement; the viewer then follows the shared fills from
// position landed onward. Degenerate inputs (negative sizes, nothing
// required) report no join.
func PlanJoin(prefix, landed, required si.Bits) (fromCache si.Bits, ok bool) {
	if prefix < 0 || landed < 0 || required <= 0 {
		return 0, false
	}
	if landed == 0 {
		return 0, true
	}
	if landed > prefix {
		return 0, false
	}
	fromCache = landed
	if fromCache > required {
		fromCache = required
	}
	return fromCache, true
}

// AdvanceViewer computes a viewer's cumulative delivery once the shared
// stream's landed total reaches landed: the viewer holds the stream's
// contiguous prefix, clamped to its own requirement, and delivery never
// moves backward. Starting from PlanJoin's fromCache and applying
// AdvanceViewer at every landed fill keeps the viewer's holdings a
// contiguous [0, delivered) at all times — the invariant FuzzPrefixJoin
// checks.
func AdvanceViewer(delivered, landed, required si.Bits) si.Bits {
	if landed > required {
		landed = required
	}
	if landed < delivered {
		return delivered
	}
	return landed
}
