package share

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/si"
	"repro/internal/workload"
)

// Events is the layer's delivery interface toward the driver: what a
// per-viewer session sees. The oracle test records these to prove
// per-viewer delivery matches an unshared run byte for byte; the live
// server routes them to TCP sessions. Callbacks fire synchronously under
// the owning disk's clock serialization and must not re-enter the layer
// or the engine.
type Events interface {
	// ViewerAdmitted fires once the viewer is guaranteed service —
	// immediately for cache-only and piggyback joins, at the shared
	// stream's admission for leaders and batched joiners.
	ViewerAdmitted(v *Viewer, now si.Seconds)
	// ViewerRejected fires when the viewer's shared stream was turned
	// away at arrival; the viewer receives nothing.
	ViewerRejected(v *Viewer, now si.Seconds)
	// ViewerData fires when the viewer's cumulative delivered data grows
	// to total bits: the viewer now holds the contiguous [0, total) of
	// its title.
	ViewerData(v *Viewer, total si.Bits, now si.Seconds)
	// ViewerDone fires when the viewer has received everything it will
	// consume (total == Required), after the final ViewerData.
	ViewerDone(v *Viewer, now si.Seconds)
}

// NopEvents discards every delivery callback.
type NopEvents struct{}

func (NopEvents) ViewerAdmitted(*Viewer, si.Seconds)      {}
func (NopEvents) ViewerRejected(*Viewer, si.Seconds)      {}
func (NopEvents) ViewerData(*Viewer, si.Bits, si.Seconds) {}
func (NopEvents) ViewerDone(*Viewer, si.Seconds)          {}

// Observer receives the layer's instrumentation callbacks (the sharing
// analogue of engine.Observer): internal/livemetrics counts leads,
// merges, and cache traffic through it. Same contract as Events:
// synchronous, no re-entry.
type Observer interface {
	// OnLead fires when a viewer could not merge and leads a fresh disk
	// stream of its own.
	OnLead(disk int, now si.Seconds)
	// OnMerge fires when a viewer joins an existing shared stream.
	// cacheBits is the prefix replayed from the cache (0 for a pure
	// batch) and fanout the stream's viewer count after the join.
	OnMerge(disk int, cacheBits si.Bits, fanout int, now si.Seconds)
	// OnCacheServe fires when a viewer is served entirely from the
	// pinned prefix and never reaches the disk.
	OnCacheServe(disk int, bits si.Bits, now si.Seconds)
}

// NopObserver discards every instrumentation callback.
type NopObserver struct{}

func (NopObserver) OnLead(int, si.Seconds)                {}
func (NopObserver) OnMerge(int, si.Bits, int, si.Seconds) {}
func (NopObserver) OnCacheServe(int, si.Bits, si.Seconds) {}

// Options are the sharing layer's tunables.
type Options struct {
	// Window is the prefix length pinned per cached title, in playback
	// seconds; it is also the join window of a live stream. 0 means the
	// default of one minute.
	Window si.Seconds

	// CacheBudget caps the total pinned prefix memory in bits; the
	// hottest titles are pinned first. 0 pins every title's prefix; a
	// negative budget pins nothing (batching stays available).
	CacheBudget si.Bits

	// Events receives per-viewer delivery callbacks; nil discards them.
	Events Events

	// Observer receives sharing instrumentation; nil discards it.
	Observer Observer
}

// DefaultWindow is the prefix window used when Options.Window is zero.
const DefaultWindow = si.Seconds(60)

// Config wires a Layer to a built engine System.
type Config struct {
	// System is the engine the layer submits to and observes. Required,
	// and must not have processed any arrivals yet.
	System *engine.System

	// Library resolves titles to lengths, rates, and placements. It must
	// be the same library the System was built with. Required.
	Library *catalog.Library

	// CR is the viewers' consumption rate, the same CR the System runs;
	// the layer computes each viewer's requirement as CR·viewing exactly
	// as engine admission does.
	CR si.BitRate

	Options
}

// Viewer is one watcher admitted through the sharing layer. A viewer is
// what a private engine stream used to be one-to-one with; under sharing
// many viewers ride one stream, or none (cache-only).
type Viewer struct {
	id        int
	req       workload.Request
	rate      si.BitRate // consumption rate; the stream's rate after a merge
	required  si.Bits
	delivered si.Bits
	disk      int
	stream    *SharedStream // nil for cache-only viewers and after detach
	merged    bool          // joined an existing stream (batch or piggyback)
	cacheOnly bool
	done      bool
	watching  bool // counted in the disk's concurrent-watcher gauge
}

// ID returns the viewer's request ID.
func (v *Viewer) ID() int { return v.id }

// Disk returns the disk holding the viewer's title.
func (v *Viewer) Disk() int { return v.disk }

// Req returns the viewer's request.
func (v *Viewer) Req() workload.Request { return v.req }

// Required is the total data the viewer consumes: rate · viewing.
func (v *Viewer) Required() si.Bits { return v.required }

// Rate is the viewer's consumption rate — its request's rate (or the
// layer's CR when the request carries none), replaced by the leader's
// rate when the viewer merges onto a shared stream.
func (v *Viewer) Rate() si.BitRate { return v.rate }

// Delivered is the viewer's cumulative delivered data.
func (v *Viewer) Delivered() si.Bits { return v.delivered }

// Merged reports whether the viewer joined an existing stream.
func (v *Viewer) Merged() bool { return v.merged }

// CacheOnly reports whether the viewer was served entirely from the
// pinned prefix.
func (v *Viewer) CacheOnly() bool { return v.cacheOnly }

// SharedStream is one disk stream carrying one or more viewers of a
// title. Its engine stream ID is its leader's viewer ID. landed tracks
// the data whose fills have completed — the contiguous prefix every
// attached viewer holds. An in-flight fill is excluded: a joiner
// arriving during it still receives it when it lands, so the join gap is
// landed, not the engine's Delivered.
type SharedStream struct {
	id       int
	title    int
	disk     int
	live     bool       // admitted into service (false while queued)
	canceled bool       // closed: no joins, no further deliveries expected
	rate     si.BitRate // the leader's consumption rate; joiners adopt it
	landed   si.Bits
	viewing  si.Seconds // widest horizon requested so far (monotone)
	viewers  []*Viewer  // attach order; leader first
}

// DiskStats counts one disk's sharing activity.
type DiskStats struct {
	Viewers      int     // viewers submitted
	Admitted     int     // viewers guaranteed service
	Rejected     int     // viewers turned away with their leader
	Leaders      int     // viewers that led a fresh disk stream
	Merged       int     // viewers that joined an existing stream
	Batched      int     // merged viewers that attached before any data landed
	CacheOnly    int     // viewers served entirely from the pinned prefix
	Extends      int     // engine Extend calls (horizon widenings)
	CacheHitBits si.Bits // data served from the cache (replays + cache-only)
	PeakFanout   int     // most viewers ever riding one stream
	PeakWatching int     // most concurrent admitted viewers on the disk
}

// add accumulates o's counters into s, combining peaks as maxima.
func (s *DiskStats) add(o DiskStats) {
	s.Viewers += o.Viewers
	s.Admitted += o.Admitted
	s.Rejected += o.Rejected
	s.Leaders += o.Leaders
	s.Merged += o.Merged
	s.Batched += o.Batched
	s.CacheOnly += o.CacheOnly
	s.Extends += o.Extends
	s.CacheHitBits += o.CacheHitBits
	if o.PeakFanout > s.PeakFanout {
		s.PeakFanout = o.PeakFanout
	}
	s.PeakWatching += o.PeakWatching
}

// Stats summarizes a layer's sharing activity.
type Stats struct {
	// Totals aggregates the per-disk counters: counts sum; PeakFanout is
	// the maximum over disks; PeakWatching sums the per-disk peaks (an
	// upper bound on the true simultaneous total — exact only when the
	// per-disk peaks coincide).
	Totals DiskStats
	// PerDisk holds each disk's counters.
	PerDisk []DiskStats
	// CachedTitles is how many titles have a pinned prefix.
	CachedTitles int
	// PinnedBits is the total prefix memory pinned across all disks.
	PinnedBits si.Bits
}

// diskShard is the layer's per-disk state. Each shard is touched only
// under its disk's clock serialization (the engine's own concurrency
// rule), so the layer needs no locks of its own.
type diskShard struct {
	titles   map[int]*SharedStream // title -> youngest (join-open) stream
	byID     map[int]*SharedStream // engine stream id -> stream
	viewers  map[int]*Viewer       // viewer id -> active viewer
	watching int
	stats    DiskStats
}

// Layer is the stream-sharing front end of one engine System. Drivers
// submit arrivals through Submit instead of System.OnArrival and cancel
// through Cancel instead of Disk.Cancel; everything else — scheduling,
// sizing, admission — happens in the engine below, which the layer
// observes to fan completed fills out to viewers.
type Layer struct {
	engine.NopObserver
	sys    *engine.System
	lib    *catalog.Library
	cr     si.BitRate
	window si.Seconds
	cache  *PrefixCache
	events Events
	obs    Observer
	disks  []diskShard
}

// New builds the sharing layer over a freshly built System: selects and
// pins the prefix cache out of each disk's buffer pool, and attaches
// itself to the System's observer fan-out. Must run before the System
// processes arrivals.
func New(cfg Config) (*Layer, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("share: config needs a system")
	}
	if cfg.Library == nil {
		return nil, fmt.Errorf("share: config needs a library")
	}
	if cfg.System.Disks() != cfg.Library.Disks() {
		return nil, fmt.Errorf("share: system has %d disks, library %d", cfg.System.Disks(), cfg.Library.Disks())
	}
	if cfg.CR <= 0 {
		return nil, fmt.Errorf("share: non-positive consumption rate %v", cfg.CR)
	}
	window := cfg.Window
	if window == 0 {
		window = DefaultWindow
	}
	l := &Layer{
		sys:    cfg.System,
		lib:    cfg.Library,
		cr:     cfg.CR,
		window: window,
		cache:  NewPrefixCache(cfg.Library, window, cfg.CacheBudget),
		events: cfg.Events,
		obs:    cfg.Observer,
		disks:  make([]diskShard, cfg.System.Disks()),
	}
	if l.events == nil {
		l.events = NopEvents{}
	}
	if l.obs == nil {
		l.obs = NopObserver{}
	}
	for d := range l.disks {
		l.disks[d] = diskShard{
			titles:  make(map[int]*SharedStream),
			byID:    make(map[int]*SharedStream),
			viewers: make(map[int]*Viewer),
		}
		// Charge the disk's pinned prefixes to its buffer pool: cache
		// residency and stream buffers compete for the same memory.
		if p := l.cache.PinnedOn(d); p > 0 {
			l.sys.Disk(d).Pool().Pin(p, l.clock(d).Now())
		}
	}
	cfg.System.AttachObserver(l)
	return l, nil
}

// Cache returns the layer's prefix cache.
func (l *Layer) Cache() *PrefixCache { return l.cache }

func (l *Layer) clock(disk int) engine.Clock { return l.sys.Clock().DiskClock(disk) }

// Submit runs one viewer through the sharing front end: serve it from
// the pinned prefix if that covers everything, merge it onto the title's
// open shared stream if one exists (batching before any data lands,
// prefix piggyback inside the join window), else lead a fresh engine
// stream. Like System.OnArrival, it must run under the owning disk's
// clock serialization (the simulator's event loop or clock.Do).
func (l *Layer) Submit(req workload.Request) {
	disk := req.Disk
	d := &l.disks[disk]
	now := l.clock(disk).Now()
	rate := req.Rate
	if rate <= 0 {
		rate = l.cr
	}
	v := &Viewer{
		id:       req.ID,
		req:      req,
		rate:     rate,
		required: maxBits(rate.DataIn(req.Viewing), 1),
		disk:     disk,
	}
	d.stats.Viewers++

	// Cache-only: the whole requirement fits in the pinned prefix; the
	// viewer never reaches the disk. This is also what keeps every
	// shared stream's requirement above its title's prefix — the
	// invariant that makes piggyback joins safe (see the package doc).
	if prefix := l.cache.PrefixBits(req.Video); v.required <= prefix {
		v.cacheOnly = true
		v.delivered = v.required
		d.stats.CacheOnly++
		d.stats.CacheHitBits += v.required
		d.viewers[v.id] = v
		l.obs.OnCacheServe(disk, v.required, now)
		l.admitViewer(d, v, now)
		l.events.ViewerData(v, v.delivered, now)
		l.finishViewer(d, v, now)
		return
	}

	if ss := d.titles[req.Video]; ss != nil && !ss.canceled {
		if !ss.live {
			// Batching: the stream is still queued for admission; the
			// newcomer has missed nothing and simply widens the batch.
			l.attach(d, ss, v, 0, now)
			d.stats.Batched++
			if v.req.Viewing > ss.viewing {
				ss.viewing = v.req.Viewing
				d.stats.Extends++
				l.sys.Disk(disk).Extend(ss.id, ss.viewing)
			}
			// Admission or rejection arrives with the stream's.
			return
		}
		// A joiner rides the leader's stream, so its requirement is
		// measured at the leader's rate (attach adopts it for good).
		need := v.required
		if ss.rate != v.rate {
			need = maxBits(ss.rate.DataIn(req.Viewing), 1)
		}
		if fromCache, ok := PlanJoin(l.cache.PrefixBits(req.Video), ss.landed, need); ok {
			// Piggyback: replay the missed gap from the cache and ride
			// the live fills from there.
			l.attach(d, ss, v, fromCache, now)
			if v.req.Viewing > ss.viewing {
				ss.viewing = v.req.Viewing
				d.stats.Extends++
				l.sys.Disk(disk).Extend(ss.id, ss.viewing)
			}
			l.admitViewer(d, v, now)
			if fromCache > 0 {
				d.stats.CacheHitBits += fromCache
				v.delivered = fromCache
				l.events.ViewerData(v, v.delivered, now)
			}
			return
		}
		// The stream has outrun the join window; it stays live for its
		// own viewers but is closed to joins — the newcomer leads a
		// fresh stream that replaces it in the title map.
	}

	// Lead: a fresh engine stream under this viewer's ID. OnArrival may
	// admit or reject synchronously, so the bookkeeping must be in place
	// before the call.
	ss := &SharedStream{
		id:      v.id,
		title:   req.Video,
		disk:    disk,
		rate:    v.rate,
		viewing: req.Viewing,
		viewers: []*Viewer{v},
	}
	v.stream = ss
	d.viewers[v.id] = v
	d.titles[req.Video] = ss
	d.byID[ss.id] = ss
	d.stats.Leaders++
	if 1 > d.stats.PeakFanout {
		d.stats.PeakFanout = 1
	}
	l.obs.OnLead(disk, now)
	l.sys.OnArrival(req)
}

// attach joins v to ss and records the merge.
func (l *Layer) attach(d *diskShard, ss *SharedStream, v *Viewer, fromCache si.Bits, now si.Seconds) {
	v.stream = ss
	v.merged = true
	if v.rate != ss.rate {
		// The viewer consumes the leader's stream at the leader's rung.
		v.rate = ss.rate
		v.required = maxBits(ss.rate.DataIn(v.req.Viewing), 1)
	}
	ss.viewers = append(ss.viewers, v)
	d.viewers[v.id] = v
	d.stats.Merged++
	if n := len(ss.viewers); n > d.stats.PeakFanout {
		d.stats.PeakFanout = n
	}
	l.obs.OnMerge(ss.disk, fromCache, len(ss.viewers), now)
}

// admitViewer marks v guaranteed and starts its watching window.
func (l *Layer) admitViewer(d *diskShard, v *Viewer, now si.Seconds) {
	d.stats.Admitted++
	v.watching = true
	d.watching++
	if d.watching > d.stats.PeakWatching {
		d.stats.PeakWatching = d.watching
	}
	disk := v.disk
	l.clock(disk).Schedule(now+v.req.Viewing, func() { l.endWatching(disk, v) })
	l.events.ViewerAdmitted(v, now)
}

func (l *Layer) endWatching(disk int, v *Viewer) {
	if v.watching {
		v.watching = false
		l.disks[disk].watching--
	}
}

// finishViewer completes v's delivery and forgets it. The caller is
// responsible for removing v from its stream's viewer list.
func (l *Layer) finishViewer(d *diskShard, v *Viewer, now si.Seconds) {
	if v.done {
		return
	}
	v.done = true
	v.stream = nil
	delete(d.viewers, v.id)
	l.events.ViewerDone(v, now)
}

// OnAdmit is the engine callback for a shared stream entering service:
// every attached viewer — the leader and any batched joiners — is now
// guaranteed.
func (l *Layer) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	d := &l.disks[disk]
	ss := d.byID[st.ID()]
	if ss == nil {
		return
	}
	ss.live = true
	for _, v := range ss.viewers {
		l.admitViewer(d, v, now)
	}
}

// OnReject is the engine callback for a shared stream turned away at
// arrival: every attached viewer is rejected with it.
func (l *Layer) OnReject(disk int, req workload.Request, _ engine.RejectReason, now si.Seconds) {
	d := &l.disks[disk]
	ss := d.byID[req.ID]
	if ss == nil {
		return
	}
	ss.canceled = true
	delete(d.byID, ss.id)
	if d.titles[ss.title] == ss {
		delete(d.titles, ss.title)
	}
	for _, v := range ss.viewers {
		d.stats.Rejected++
		delete(d.viewers, v.id)
		v.stream = nil
		v.done = true
		l.events.ViewerRejected(v, now)
	}
	ss.viewers = nil
}

// OnFillComplete is the engine callback for a landed fill: the shared
// stream's contiguous prefix grows and every attached viewer advances.
func (l *Layer) OnFillComplete(disk int, st *engine.Stream, _ si.Bits, now si.Seconds) {
	d := &l.disks[disk]
	ss := d.byID[st.ID()]
	if ss == nil {
		return
	}
	// At a completion instant nothing is in flight, so the engine's
	// cumulative Delivered is exactly the landed total.
	ss.landed = st.Delivered()
	l.deliver(d, ss, now)
}

// deliver fans ss's landed prefix out to its viewers, retiring the ones
// that have everything they will consume, and — when the stream runs out
// of viewers — cancels the underlying engine stream to release its
// capacity early.
func (l *Layer) deliver(d *diskShard, ss *SharedStream, now si.Seconds) {
	kept := ss.viewers[:0]
	for _, v := range ss.viewers {
		if nt := AdvanceViewer(v.delivered, ss.landed, v.required); nt > v.delivered {
			v.delivered = nt
			l.events.ViewerData(v, nt, now)
		}
		if v.delivered >= v.required {
			l.finishViewer(d, v, now)
		} else {
			kept = append(kept, v)
		}
	}
	for i := len(kept); i < len(ss.viewers); i++ {
		ss.viewers[i] = nil
	}
	ss.viewers = kept
	if len(ss.viewers) == 0 && !ss.canceled {
		l.retire(d, ss, now)
	}
}

// retire closes an empty shared stream and cancels its engine stream. A
// stream is only ever empty once landed covers every viewer it had, and
// landed has then outrun the prefix (stream required > prefix), so it
// was already closed to joins — no future viewer loses a merge target.
// The engine Cancel must not run inside an observer callback (no
// re-entry), so a zero-delay event performs it.
func (l *Layer) retire(d *diskShard, ss *SharedStream, now si.Seconds) {
	ss.canceled = true
	if d.titles[ss.title] == ss {
		delete(d.titles, ss.title)
	}
	disk := ss.disk
	l.clock(disk).Schedule(now, func() {
		l.sys.Disk(disk).Cancel(ss.id)
		// A still-queued stream cancels silently (no OnDepart), so the
		// id cleanup cannot ride on the depart callback. Deleting after
		// a depart-driven cleanup is a no-op.
		delete(l.disks[disk].byID, ss.id)
	})
}

// OnDepart is the engine callback for a shared stream leaving service.
// On a natural departure (viewing time over) the engine has delivered
// the full requirement; any viewer still attached — possible when
// wall-clock jitter lands the departure before the last fill's events
// settle — is flushed to its requirement, mirroring what its private
// stream would have delivered.
func (l *Layer) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	d := &l.disks[disk]
	ss := d.byID[st.ID()]
	if ss == nil {
		return
	}
	delete(d.byID, ss.id)
	if d.titles[ss.title] == ss {
		delete(d.titles, ss.title)
	}
	ss.canceled = true
	for _, v := range ss.viewers {
		if v.delivered < v.required {
			v.delivered = v.required
			l.events.ViewerData(v, v.delivered, now)
		}
		l.finishViewer(d, v, now)
	}
	ss.viewers = nil
}

// Cancel withdraws a viewer that hangs up mid-delivery. Like Submit it
// must run under the owning disk's clock serialization, but never from
// inside an engine or layer callback. When the viewer was its stream's
// last, the stream is retired with it.
func (l *Layer) Cancel(id, disk int) {
	d := &l.disks[disk]
	v := d.viewers[id]
	if v == nil {
		return
	}
	l.endWatching(disk, v)
	ss := v.stream
	v.stream = nil
	v.done = true
	delete(d.viewers, id)
	if ss == nil {
		return
	}
	for i, w := range ss.viewers {
		if w == v {
			copy(ss.viewers[i:], ss.viewers[i+1:])
			ss.viewers[len(ss.viewers)-1] = nil
			ss.viewers = ss.viewers[:len(ss.viewers)-1]
			break
		}
	}
	if len(ss.viewers) == 0 && !ss.canceled {
		// Not inside an engine callback here, but retire's deferred
		// cancel is harmless and keeps one code path.
		l.retire(d, ss, l.clock(disk).Now())
	}
}

// Watching reports a disk's current admitted-viewer gauge.
func (l *Layer) Watching(disk int) int { return l.disks[disk].watching }

// Stats snapshots the layer's counters. Only meaningful when the system
// is quiescent or the caller holds every shard's serialization (e.g.
// after a simulation run).
func (l *Layer) Stats() Stats {
	s := Stats{
		PerDisk:      make([]DiskStats, len(l.disks)),
		CachedTitles: l.cache.Titles(),
		PinnedBits:   l.cache.PinnedBits(),
	}
	for i := range l.disks {
		s.PerDisk[i] = l.disks[i].stats
		s.Totals.add(l.disks[i].stats)
	}
	return s
}

func maxBits(a, b si.Bits) si.Bits {
	if a > b {
		return a
	}
	return b
}
