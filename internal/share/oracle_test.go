package share_test

// The oracle test: replay one trace through the simulator twice — once
// with every viewer on a private engine stream (the paper's model,
// sharing off) and once through the sharing layer — and require that
// sharing is invisible to every viewer: the same viewers are admitted,
// each receives exactly the contiguous [0, required) bytes of its title
// a private stream would have delivered, delivery grows monotonically
// and contiguously, and sharing never starves a buffer the baseline
// kept fed. The grid covers every scheduling method crossed with the
// static and dynamic allocation schemes.

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/share"
	"repro/internal/si"
	"repro/internal/sim"
	"repro/internal/workload"
)

// paperSpecCR is the paper's environment: the Barracuda 9LP against
// 1.5 Mbps streams (N = 79 per disk).
func paperSpecCR() (diskmodel.Spec, si.BitRate) {
	return diskmodel.Barracuda9LP(), si.Mbps(1.5)
}

// oracleEnv builds the shared trace and library of one oracle run:
// 10-minute titles (so many viewings fully overlap), Zipf popularity
// over 8 titles on 2 disks, and a uniform arrival rate sized to keep
// every private-stream run rejection-free (mean per-disk concurrency
// ~30 against N = 79).
func oracleEnv(t *testing.T) (*catalog.Library, workload.Trace) {
	t.Helper()
	spec, cr := paperSpecCR()
	lib, err := catalog.New(catalog.Config{
		Titles:          8,
		Disks:           2,
		Spec:            spec,
		PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			return catalog.Video{
				ID:     id,
				Title:  fmt.Sprintf("short-%d", id),
				Rate:   cr,
				Length: si.Minutes(10),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.NewSchedule(si.Minutes(40), []float64{0.17})
	return lib, workload.Generate(arrivals, lib, 7)
}

// baseRecorder captures per-stream delivery of a sharing-off run keyed
// by request ID.
type baseRecorder struct {
	engine.NopObserver
	final map[int]si.Bits
}

func (r *baseRecorder) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	if _, dup := r.final[st.ID()]; dup {
		panic(fmt.Sprintf("stream %d departed twice", st.ID()))
	}
	r.final[st.ID()] = st.Delivered()
}

// viewerRecorder captures per-viewer delivery of a sharing-on run
// through share.Events, checking monotone contiguous growth as it goes.
type viewerRecorder struct {
	t        *testing.T
	admitted map[int]bool
	rejected map[int]bool
	running  map[int]si.Bits // last ViewerData total per live viewer
	final    map[int]si.Bits
	merged   int
}

func newViewerRecorder(t *testing.T) *viewerRecorder {
	return &viewerRecorder{
		t:        t,
		admitted: make(map[int]bool),
		rejected: make(map[int]bool),
		running:  make(map[int]si.Bits),
		final:    make(map[int]si.Bits),
	}
}

func (r *viewerRecorder) ViewerAdmitted(v *share.Viewer, now si.Seconds) {
	if r.admitted[v.ID()] {
		r.t.Errorf("viewer %d admitted twice", v.ID())
	}
	r.admitted[v.ID()] = true
	if v.Merged() {
		r.merged++
	}
}

func (r *viewerRecorder) ViewerRejected(v *share.Viewer, now si.Seconds) {
	r.rejected[v.ID()] = true
}

func (r *viewerRecorder) ViewerData(v *share.Viewer, total si.Bits, now si.Seconds) {
	if !r.admitted[v.ID()] {
		r.t.Errorf("viewer %d got data before admission", v.ID())
	}
	if prev := r.running[v.ID()]; total <= prev {
		r.t.Errorf("viewer %d delivery went %v -> %v (not monotone)", v.ID(), prev, total)
	}
	if total > v.Required() {
		r.t.Errorf("viewer %d delivered %v beyond required %v", v.ID(), total, v.Required())
	}
	r.running[v.ID()] = total
}

func (r *viewerRecorder) ViewerDone(v *share.Viewer, now si.Seconds) {
	if _, dup := r.final[v.ID()]; dup {
		r.t.Errorf("viewer %d done twice", v.ID())
	}
	if got := r.running[v.ID()]; got != v.Required() {
		r.t.Errorf("viewer %d done at %v, required %v", v.ID(), got, v.Required())
	}
	r.final[v.ID()] = r.running[v.ID()]
	delete(r.running, v.ID())
}

func TestOracleSharingMatchesPrivateStreams(t *testing.T) {
	lib, trace := oracleEnv(t)
	spec, cr := paperSpecCR()
	schemes := []struct {
		name   string
		scheme sim.Scheme
	}{
		{"static", sim.Static},
		{"dynamic", sim.Dynamic},
	}
	for _, kind := range sched.Kinds {
		for _, sc := range schemes {
			t.Run(fmt.Sprintf("%s/%s", kind, sc.name), func(t *testing.T) {
				base := sim.Config{
					Scheme:  sc.scheme,
					Method:  sched.NewMethod(kind),
					Spec:    spec,
					CR:      cr,
					Library: lib,
					Trace:   trace,
					Seed:    11,
				}
				rec := &baseRecorder{final: make(map[int]si.Bits)}
				base.Observer = rec
				baseRes, err := sim.Run(base)
				if err != nil {
					t.Fatal(err)
				}
				if baseRes.Rejected+baseRes.RejectedMemory > 0 {
					t.Fatalf("baseline rejected %d+%d viewers; the oracle needs a rejection-free trace",
						baseRes.Rejected, baseRes.RejectedMemory)
				}

				shared := base
				shared.Observer = nil
				vrec := newViewerRecorder(t)
				shared.Share = &share.Options{
					Window: si.Minutes(2),
					Events: vrec,
				}
				sharedRes, err := sim.Run(shared)
				if err != nil {
					t.Fatal(err)
				}

				if len(vrec.rejected) > 0 {
					t.Fatalf("sharing rejected %d viewers the baseline admitted", len(vrec.rejected))
				}
				if len(vrec.final) != len(trace.Requests) {
					t.Fatalf("sharing completed %d of %d viewers", len(vrec.final), len(trace.Requests))
				}
				if len(vrec.running) != 0 {
					t.Errorf("%d viewers still mid-delivery at end of run", len(vrec.running))
				}

				// Byte-identical per-viewer delivery: every request got
				// from the shared run exactly what its private stream
				// delivered.
				if len(rec.final) != len(trace.Requests) {
					t.Fatalf("baseline completed %d of %d streams", len(rec.final), len(trace.Requests))
				}
				for _, req := range trace.Requests {
					basef, ok := rec.final[req.ID]
					if !ok {
						t.Fatalf("request %d missing from baseline", req.ID)
					}
					sharef, ok := vrec.final[req.ID]
					if !ok {
						t.Fatalf("request %d missing from shared run", req.ID)
					}
					if basef != sharef {
						t.Errorf("request %d: baseline delivered %v, shared %v", req.ID, basef, sharef)
					}
				}

				// Sharing must never starve a buffer the baseline kept fed.
				if sharedRes.Underruns > baseRes.Underruns {
					t.Errorf("underruns: shared %d > baseline %d", sharedRes.Underruns, baseRes.Underruns)
				}

				// Non-vacuity: the trace must actually exercise the merge
				// paths, or the equality above proves nothing.
				st := sharedRes.Sharing
				if st == nil {
					t.Fatal("shared run reported no sharing stats")
				}
				if st.Totals.Merged == 0 {
					t.Error("no viewer merged; the oracle trace is too sparse")
				}
				if st.Totals.CacheOnly == 0 {
					t.Error("no viewer was served cache-only")
				}
				if st.Totals.Leaders == 0 {
					t.Error("no viewer led a stream")
				}
				if vrec.merged != st.Totals.Merged {
					t.Errorf("recorder merged %d, stats %d", vrec.merged, st.Totals.Merged)
				}
				if st.Totals.Admitted != len(trace.Requests) {
					t.Errorf("stats admitted %d of %d", st.Totals.Admitted, len(trace.Requests))
				}
			})
		}
	}
}
