// Package memmodel implements the minimum-memory-requirement analysis of
// Section 4: Theorems 2 (Round-Robin/BubbleUp), 3 (Sweep*), and 4 (GSS*)
// for the dynamic buffer allocation scheme, and their static-scheme
// counterparts.
//
// All three theorems share a structure: buffers are filled at regular
// offsets within a service period and drain linearly at CR, so the
// system-wide requirement is the peak of a periodic sawtooth sum. The
// period is divided into k+n service slots under the dynamic scheme
// (the sizing predicts k additional requests) and into N slots under the
// static scheme (sizing always assumes full load); the static formulas are
// the dynamic ones with that substitution, which reduces to the paper's
// cited Chang & Garcia-Molina results at full load.
package memmodel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
)

// MinDynamic returns the minimum memory required to support n requests in
// service with k predicted additional requests under the dynamic buffer
// allocation scheme and the given scheduling method (Theorems 2–4).
func MinDynamic(p core.Params, m sched.Method, spec diskmodel.Spec, n, k int) si.Bits {
	checkInputs(p, m, n, k)
	dl := m.WorstDL(spec, n)
	bs := p.DynamicSize(dl, n, k)
	return minMemory(p, m, n, bs, dl, n+k)
}

// MinStatic returns the minimum memory required to support n requests in
// service under the static scheme: every buffer has the full-load size
// BS(N) and services are spaced for N slots per period.
func MinStatic(p core.Params, m sched.Method, spec diskmodel.Spec, n int) si.Bits {
	checkInputs(p, m, n, 0)
	dl := m.WorstDL(spec, p.N) // static sizing assumes the fully loaded state
	bs := p.StaticSize(dl, p.N)
	return minMemory(p, m, n, bs, dl, p.N)
}

func checkInputs(p core.Params, m sched.Method, n, k int) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if n < 1 || n > p.N {
		panic(fmt.Sprintf("memmodel: n = %d outside [1, %d]", n, p.N))
	}
	if k < 0 || n+k > p.N {
		panic(fmt.Sprintf("memmodel: k = %d outside [0, N−n]", k))
	}
}

// minMemory dispatches on the method. div is the number of service slots
// per period: k+n for the dynamic scheme, N for the static one. bs is the
// per-buffer size and dl the per-service worst disk latency that sized it;
// the usage period T = bs/CR in both schemes.
func minMemory(p core.Params, m sched.Method, n int, bs si.Bits, dl si.Seconds, div int) si.Bits {
	switch m.Kind {
	case sched.RoundRobin:
		return minRR(p, n, bs, dl, div)
	case sched.Sweep:
		return minSweep(p, n, bs, dl, div)
	default: // GSS
		g := m.Group
		switch {
		case g >= n:
			// One partial group: GSS* services it exactly like Sweep*.
			return minSweep(p, n, bs, dl, div)
		case g == 1:
			// Singleton groups: GSS* is Round-Robin.
			return minRR(p, n, bs, dl, div)
		default:
			return minGSS(p, n, g, bs, dl, div)
		}
	}
}

// minRR is Theorem 2:
//
//	Mem = n·BS − BS·n·(n−1)/(2·div) + n·CR·DL
//
// The peak occurs right after a fill: the freshest buffer is full, the
// others have drained by one slot spacing each, and every buffer carries
// CR·DL of extra data to survive its own service's disk latency.
func minRR(p core.Params, n int, bs si.Bits, dl si.Seconds, div int) si.Bits {
	nf := float64(n)
	mem := nf*float64(bs) -
		float64(bs)*nf*(nf-1)/(2*float64(div)) +
		nf*float64(p.CR)*float64(dl)
	return si.Bits(mem)
}

// minSweep is Theorem 3. For n > 1 the peak occurs when the (n−1)th buffer
// of the period has just been allocated:
//
//	Mem = (n−1)·BS + (n·T/div − (n−2)·BS/TR)·CR·n
//
// and for n = 1 the requirement is the lone buffer plus what its owner
// consumes while it is being serviced.
func minSweep(p core.Params, n int, bs si.Bits, dl si.Seconds, div int) si.Bits {
	if n == 1 {
		extra := (float64(bs)/float64(p.TR) + float64(dl)) * float64(p.CR)
		return bs + si.Bits(extra)
	}
	t := float64(p.UsagePeriod(bs)) // T = BS/CR
	nf := float64(n)
	window := nf*t/float64(div) - (nf-2)*float64(bs)/float64(p.TR)
	return si.Bits((nf-1)*float64(bs) + window*float64(p.CR)*nf)
}

// minGSS is Theorem 4, the 1 < g < n case. G = ⌈n/g⌉ groups; the first
// ⌊n/g⌋ hold g buffers and the last holds g' = n − ⌊n/g⌋·g (zero when
// groups divide evenly). The peak occurs when a full group has just
// reached its Sweep* maximum while the other groups have drained by their
// round-robin offsets.
func minGSS(p core.Params, n, g int, bs si.Bits, dl si.Seconds, div int) si.Bits {
	G := (n + g - 1) / g
	gPrime := n - (n/g)*g
	t := float64(p.UsagePeriod(bs))
	bsf, trf, crf := float64(bs), float64(p.TR), float64(p.CR)
	gf, Gf, nf, divf := float64(g), float64(G), float64(n), float64(div)

	// Sweep*-style peak of the group being serviced.
	head := (gf-1)*bsf + (t*gf/divf-(gf-2)*bsf/trf)*crf*gf

	if gPrime == 0 {
		// Every group holds exactly g buffers.
		drained := gf*bsf - (nf*t/divf+(gf-2)*bsf/trf-gf*t*(Gf+2)/(2*divf))*crf*gf
		return si.Bits((Gf-1)*drained + head)
	}
	// A partial trailing group of g' buffers.
	gpf := float64(gPrime)
	drained := gf*bsf - (nf*t/divf+(gf-2)*bsf/trf-gf*t*(Gf+1)/(2*divf))*crf*gf
	tail := bsf*(gf+gpf-1) +
		crf*((t*gf/divf-(gf-2)*bsf/trf)*gf-(gf-2)*gpf*bsf/trf)
	return si.Bits((Gf-2)*drained + tail)
}
