package memmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
)

func paperParams() core.Params {
	return core.Params{TR: si.Mbps(120), CR: si.Mbps(1.5), N: 79, Alpha: 1}
}

func spec() diskmodel.Spec { return diskmodel.Barracuda9LP() }

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// At full load with no predicted additional requests, dynamic and static
// schemes are identical for every method.
func TestDynamicEqualsStaticAtFullLoad(t *testing.T) {
	p := paperParams()
	for _, k := range sched.Kinds {
		m := sched.NewMethod(k)
		dyn := float64(MinDynamic(p, m, spec(), p.N, 0))
		sta := float64(MinStatic(p, m, spec(), p.N))
		if !relClose(dyn, sta, 1e-9) {
			t.Errorf("%v: dynamic %v != static %v at full load", m, dyn, sta)
		}
	}
}

// The design-notes calibration: the static Round-Robin requirement at full
// load is about 1.03 GB per disk (40·BS(79) + N·CR·DL), which is what makes
// the 10-disk system of Fig. 13 flatten out near 11 GB.
func TestStaticRRFullLoadCalibration(t *testing.T) {
	p := paperParams()
	got := MinStatic(p, sched.NewMethod(sched.RoundRobin), spec(), p.N).GigabytesVal()
	if got < 0.95 || got < 0 || got > 1.15 {
		t.Errorf("static RR full-load memory = %.3f GB, want about 1.03", got)
	}
}

// Theorem 2 hand check: n·BS − BS·n(n−1)/(2(k+n)) + n·CR·DL.
func TestTheorem2HandComputed(t *testing.T) {
	p := paperParams()
	m := sched.NewMethod(sched.RoundRobin)
	n, k := 10, 3
	dl := m.WorstDL(spec(), n)
	bs := float64(p.DynamicSize(dl, n, k))
	want := 10*bs - bs*10*9/(2*13.0) + 10*1.5e6*float64(dl)
	got := float64(MinDynamic(p, m, spec(), n, k))
	if !relClose(got, want, 1e-12) {
		t.Errorf("Theorem 2: got %v, want %v", got, want)
	}
}

// Theorem 3 hand checks for both branches.
func TestTheorem3HandComputed(t *testing.T) {
	p := paperParams()
	m := sched.NewMethod(sched.Sweep)

	// n = 1: BS + (BS/TR + DL)·CR.
	dl1 := m.WorstDL(spec(), 1)
	bs1 := float64(p.DynamicSize(dl1, 1, 2))
	want1 := bs1 + (bs1/120e6+float64(dl1))*1.5e6
	got1 := float64(MinDynamic(p, m, spec(), 1, 2))
	if !relClose(got1, want1, 1e-12) {
		t.Errorf("Theorem 3 (n=1): got %v, want %v", got1, want1)
	}

	// n = 5, k = 2: (n−1)·BS + (n·T/(k+n) − (n−2)·BS/TR)·CR·n, T = BS/CR.
	dl5 := m.WorstDL(spec(), 5)
	bs5 := float64(p.DynamicSize(dl5, 5, 2))
	tt := bs5 / 1.5e6
	want5 := 4*bs5 + (5*tt/7-3*bs5/120e6)*1.5e6*5
	got5 := float64(MinDynamic(p, m, spec(), 5, 2))
	if !relClose(got5, want5, 1e-12) {
		t.Errorf("Theorem 3 (n=5): got %v, want %v", got5, want5)
	}
}

// Theorem 4 hand check for the evenly divided case: n = 16, g = 8, G = 2.
func TestTheorem4EvenGroups(t *testing.T) {
	p := paperParams()
	m := sched.NewMethod(sched.GSS) // g = 8
	n, k := 16, 2
	dl := m.WorstDL(spec(), n)
	bs := float64(p.DynamicSize(dl, n, k))
	tt := bs / 1.5e6
	div := 18.0
	G := 2.0
	g := 8.0
	head := (g-1)*bs + (tt*g/div-(g-2)*bs/120e6)*1.5e6*g
	drained := g*bs - (16*tt/div+(g-2)*bs/120e6-g*tt*(G+2)/(2*div))*1.5e6*g
	want := (G-1)*drained + head
	got := float64(MinDynamic(p, m, spec(), n, k))
	if !relClose(got, want, 1e-12) {
		t.Errorf("Theorem 4 even: got %v, want %v", got, want)
	}
}

// Theorem 4 hand check for a partial trailing group: n = 20, g = 8,
// G = 3, g' = 4.
func TestTheorem4PartialGroup(t *testing.T) {
	p := paperParams()
	m := sched.NewMethod(sched.GSS)
	n, k := 20, 0
	dl := m.WorstDL(spec(), n)
	bs := float64(p.DynamicSize(dl, n, k))
	tt := bs / 1.5e6
	div, G, g, gp := 20.0, 3.0, 8.0, 4.0
	drained := g*bs - (20*tt/div+(g-2)*bs/120e6-g*tt*(G+1)/(2*div))*1.5e6*g
	tail := bs*(g+gp-1) + 1.5e6*((tt*g/div-(g-2)*bs/120e6)*g-(g-2)*gp*bs/120e6)
	want := (G-2)*drained + tail
	got := float64(MinDynamic(p, m, spec(), n, k))
	if !relClose(got, want, 1e-12) {
		t.Errorf("Theorem 4 partial: got %v, want %v", got, want)
	}
}

// GSS* degenerates to Sweep* when one group holds everyone and to
// Round-Robin when groups are singletons.
func TestGSSDegenerateCases(t *testing.T) {
	p := paperParams()
	n, k := 5, 1
	gssBig := sched.Method{Kind: sched.GSS, Group: 10}
	swp := sched.NewMethod(sched.Sweep)
	// Compare with identical DL: g >= n makes WorstDL equal to Sweep's.
	if got, want := MinDynamic(p, gssBig, spec(), n, k), MinDynamic(p, swp, spec(), n, k); got != want {
		t.Errorf("g >= n: GSS %v, Sweep %v", got, want)
	}
	gss1 := sched.Method{Kind: sched.GSS, Group: 1}
	dl := gss1.WorstDL(spec(), n) // = gamma(Cyln)+theta = RR's
	rr := sched.NewMethod(sched.RoundRobin)
	if got, want := MinDynamic(p, gss1, spec(), n, k), MinDynamic(p, rr, spec(), n, k); got != want {
		t.Errorf("g = 1 (dl %v): GSS %v, RR %v", dl, got, want)
	}
}

// Property: for every method and load, the requirement is positive, at
// least one buffer, and no more than n full buffers plus the latency
// reserve.
func TestMemoryBounds(t *testing.T) {
	p := paperParams()
	f := func(kindRaw, nRaw, kRaw uint8) bool {
		m := sched.NewMethod(sched.Kinds[int(kindRaw)%3])
		n := 1 + int(nRaw)%p.N
		k := int(kRaw) % (p.N - n + 1)
		dl := m.WorstDL(spec(), n)
		bs := p.DynamicSize(dl, n, k)
		mem := MinDynamic(p, m, spec(), n, k)
		if mem < bs {
			return false
		}
		// Under GSS with many predicted additional requests, groups are
		// refilled before they fully drain, so a buffer can briefly hold
		// close to two allocations; 2·n·BS plus the latency reserve bounds
		// every method.
		upper := si.Bits(2*float64(n)*float64(bs)) +
			si.Bits(float64(n)*float64(p.CR)*float64(dl)) +
			si.Bits(float64(n)*float64(bs)/float64(p.TR)*float64(p.CR))
		return mem <= upper+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the dynamic requirement stays below the static one (the
// paper's Fig. 12), for matching n and the measured worst-case k. Near
// full load a small excess is possible for Sweep*/GSS*: their per-buffer
// worst DL γ(Cyln/n)+θ is evaluated at the *current* n, which is slightly
// larger than the static scheme's γ(Cyln/N)+θ; allow that DL ratio.
func TestDynamicBelowStatic(t *testing.T) {
	p := paperParams()
	f := func(kindRaw, nRaw uint8) bool {
		m := sched.NewMethod(sched.Kinds[int(kindRaw)%3])
		n := 1 + int(nRaw)%p.N
		k := 4
		if k > p.N-n {
			k = p.N - n
		}
		slack := float64(m.WorstDL(spec(), n)) / float64(m.WorstDL(spec(), p.N))
		dyn := float64(MinDynamic(p, m, spec(), n, k))
		sta := float64(MinStatic(p, m, spec(), n))
		if dyn > sta*slack+1 {
			return false
		}
		// Away from full load the gap must be strict and substantial.
		if n <= p.N/2 && dyn > 0.8*sta {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: static memory grows monotonically in n (more streams, more
// full-size buffers).
func TestStaticMonotone(t *testing.T) {
	p := paperParams()
	for _, kind := range sched.Kinds {
		m := sched.NewMethod(kind)
		prev := si.Bits(0)
		for n := 1; n <= p.N; n++ {
			mem := MinStatic(p, m, spec(), n)
			if mem < prev-1 {
				t.Errorf("%v: static memory shrank at n = %d (%v -> %v)", m, n, prev, mem)
			}
			prev = mem
		}
	}
}

func TestInputValidation(t *testing.T) {
	p := paperParams()
	m := sched.NewMethod(sched.RoundRobin)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("n = 0", func() { MinDynamic(p, m, spec(), 0, 0) })
	mustPanic("n > N", func() { MinDynamic(p, m, spec(), p.N+1, 0) })
	mustPanic("k < 0", func() { MinDynamic(p, m, spec(), 1, -1) })
	mustPanic("n+k > N", func() { MinDynamic(p, m, spec(), 70, 20) })
	mustPanic("bad params", func() { MinStatic(core.Params{}, m, spec(), 1) })
	mustPanic("bad method", func() { MinStatic(p, sched.Method{Kind: sched.GSS}, spec(), 1) })
}

// The headline Fig. 12 shape: at n = 1 the dynamic requirement is a small
// fraction of the static one.
func TestDynamicMuchSmallerAtLowLoad(t *testing.T) {
	p := paperParams()
	for _, kind := range sched.Kinds {
		m := sched.NewMethod(kind)
		dyn := float64(MinDynamic(p, m, spec(), 1, 4))
		sta := float64(MinStatic(p, m, spec(), 1))
		if ratio := sta / dyn; ratio < 5 {
			t.Errorf("%v: static/dynamic at n=1 = %.2f, want a clear gap", m, ratio)
		}
	}
}
