package serve

import (
	"strings"
	"testing"
)

func TestParseCommand(t *testing.T) {
	good := []struct {
		line string
		want Command
	}{
		{"STATS", Command{Kind: CmdStats, Title: -1}},
		{"  STATS \r\n", Command{Kind: CmdStats, Title: -1}},
		{"WATCH 5", Command{Kind: CmdWatch, Seconds: 5, Title: -1}},
		{"WATCH 5\n", Command{Kind: CmdWatch, Seconds: 5, Title: -1}},
		{"WATCH 2.5", Command{Kind: CmdWatch, Seconds: 2.5, Title: -1}},
		{"WATCH 1e2", Command{Kind: CmdWatch, Seconds: 100, Title: -1}},
		{"WATCH 5 0", Command{Kind: CmdWatch, Seconds: 5, Title: 0}},
		{"WATCH 5 17", Command{Kind: CmdWatch, Seconds: 5, Title: 17}},
		{"\tWATCH  5   3 ", Command{Kind: CmdWatch, Seconds: 5, Title: 3}},
	}
	for _, c := range good {
		got, err := ParseCommand(c.line)
		if err != nil || got != c.want {
			t.Errorf("ParseCommand(%q) = (%+v, %v), want (%+v, nil)", c.line, got, err, c.want)
		}
	}

	bad := []string{
		"", "   ", "WATCH", "watch 5", "STATS 1", "WATCH x", "WATCH 0",
		"WATCH -5", "WATCH NaN", "WATCH Inf", "WATCH -Inf", "WATCH 5 -1",
		"WATCH 5 +1", "WATCH 5 1.5", "WATCH 5 x", "WATCH 5 1 2", "PLAY 5",
	}
	for _, line := range bad {
		if got, err := ParseCommand(line); err == nil {
			t.Errorf("ParseCommand(%q) = %+v, want error", line, got)
		}
	}
}

func TestCommandString(t *testing.T) {
	for _, c := range []struct {
		cmd  Command
		want string
	}{
		{Command{Kind: CmdStats, Title: -1}, "STATS"},
		{Command{Kind: CmdWatch, Seconds: 5, Title: -1}, "WATCH 5"},
		{Command{Kind: CmdWatch, Seconds: 2.5, Title: 3}, "WATCH 2.5 3"},
	} {
		if got := c.cmd.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// FuzzCommandParse holds the wire parser to its contract for arbitrary
// request lines: it never panics, anything it accepts has a positive
// finite viewing time and a title of -1 or a valid id, and an accepted
// command survives a canonical-form round trip unchanged.
func FuzzCommandParse(f *testing.F) {
	f.Add("STATS")
	f.Add("WATCH 5")
	f.Add("WATCH 2.5 3")
	f.Add("WATCH 1e309")
	f.Add("WATCH 5 +3")
	f.Add("WATCH\x005")
	f.Add(strings.Repeat("WATCH 5 ", 100))
	f.Fuzz(func(t *testing.T, line string) {
		cmd, err := ParseCommand(line)
		if err != nil {
			return
		}
		switch cmd.Kind {
		case CmdStats:
			if cmd.Seconds != 0 || cmd.Title != -1 {
				t.Fatalf("STATS parsed with payload: %+v", cmd)
			}
		case CmdWatch:
			if !(cmd.Seconds > 0) {
				t.Fatalf("accepted non-positive seconds %v from %q", cmd.Seconds, line)
			}
			if cmd.Seconds > 1e308 {
				t.Fatalf("accepted infinite-ish seconds %v from %q", cmd.Seconds, line)
			}
			if cmd.Title < -1 {
				t.Fatalf("accepted negative title %d from %q", cmd.Title, line)
			}
		default:
			t.Fatalf("unknown kind %d from %q", cmd.Kind, line)
		}
		// Canonical round trip: rendering and re-parsing is lossless.
		again, err := ParseCommand(cmd.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", cmd.String(), line, err)
		}
		if again != cmd {
			t.Fatalf("round trip changed %+v to %+v", cmd, again)
		}
	})
}
