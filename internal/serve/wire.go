package serve

import (
	"bufio"
	"encoding/binary"
	"net"
	"strconv"
	"sync"
	"time"
)

// Preformatted control replies. The control path writes fixed byte
// slices (or appends into the connection's scratch buffer) instead of
// going through fmt.Fprintf; TestControlRepliesAllocFree pins the whole
// reply set to zero allocations.
var (
	replyBusy = []byte("BUSY\n")
	replyErr  = []byte("ERR bad request\n")
)

// payloadChunk is the shared frame-payload staging buffer. Frame bodies
// are all-zero filler (the engine models delivery, not content), so
// every session can stage from one read-only chunk instead of owning a
// megabyte of its own: a frame larger than the chunk just repeats it in
// the writev chain. Never written.
const payloadChunkSize = 256 << 10

var payloadChunk [payloadChunkSize]byte

// wire is a connection's reusable frame/reply encoder. One frame goes
// out as a single vectored write — the 4-byte length header and the
// payload chunks chained in a net.Buffers flushed by one writev — where
// the old path paid one syscall for the header and another for the
// payload. All state is reused across frames and, via the connState
// pool, across connections.
type wire struct {
	conn    net.Conn
	scratch []byte      // control replies built in place ("OK <id>\n")
	iov     [][]byte    // the chain's backing array, reused frame to frame
	vec     net.Buffers // the in-flight view; WriteTo consumes it
	hdr     [4]byte
}

// reply ships a preformatted control line.
func (w *wire) reply(b []byte) error {
	_, err := w.conn.Write(b)
	return err
}

// ok ships the admission reply for id, built in the scratch buffer.
func (w *wire) ok(id int) error {
	w.scratch = append(w.scratch[:0], "OK "...)
	w.scratch = strconv.AppendInt(w.scratch, int64(id), 10)
	w.scratch = append(w.scratch, '\n')
	_, err := w.conn.Write(w.scratch)
	return err
}

// frame ships one length-prefixed frame of n payload bytes (n == 0 is
// the end-of-stream marker) as one vectored write. The chain is rebuilt
// from w.iov each call: WriteTo advances — and on short writes edits —
// the slice it is handed, so w.vec is a throwaway view over the
// persistent backing array, which keeps its capacity across frames.
func (w *wire) frame(n int64) error {
	binary.BigEndian.PutUint32(w.hdr[:], uint32(n))
	w.iov = append(w.iov[:0], w.hdr[:])
	for rem := n; rem > 0; {
		c := int64(payloadChunkSize)
		if c > rem {
			c = rem
		}
		w.iov = append(w.iov, payloadChunk[:c])
		rem -= c
	}
	w.vec = net.Buffers(w.iov)
	_, err := w.vec.WriteTo(w.conn)
	return err
}

// connState is one TCP connection's pooled machinery: the buffered
// line reader, the wire encoder, and the patience timer. Recycled
// through connPool so an accepted connection allocates nothing warm.
//
// The patience timer's contract: it is always parked — stopped with its
// channel drained — except inside watch()'s admission wait, which
// restores that state on every path.
type connState struct {
	r        *bufio.Reader
	w        wire
	patience *time.Timer
}

// connPool recycles connStates across connections.
type connPool struct {
	mu   sync.Mutex
	free []*connState
}

func (p *connPool) acquire(conn net.Conn) *connState {
	p.mu.Lock()
	var c *connState
	if n := len(p.free); n > 0 {
		c = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if c == nil {
		c = &connState{r: bufio.NewReader(conn)}
		c.patience = time.NewTimer(time.Hour)
		if !c.patience.Stop() {
			<-c.patience.C
		}
	} else {
		c.r.Reset(conn)
	}
	c.w.conn = conn
	return c
}

func (p *connPool) release(c *connState) {
	c.w.conn = nil
	c.r.Reset(nil) // drop the conn reference while pooled
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}
