package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// discardConn is a net.Conn that swallows writes without allocating, so
// alloc tests measure the wire encoder rather than a socket.
type discardConn struct{ net.Conn }

func (discardConn) Write(b []byte) (int, error)      { return len(b), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// Every control reply — and the vectored frame writes — runs
// allocation-free on a warm wire encoder (the TestCollectorHotPathAllocFree
// of the serving path's write side).
func TestControlRepliesAllocFree(t *testing.T) {
	w := &wire{conn: discardConn{}}
	// Warm the scratch buffer and iov chain once.
	w.ok(1 << 30)
	w.frame(3 * payloadChunkSize / 2)
	if allocs := testing.AllocsPerRun(1000, func() {
		w.reply(replyBusy)
		w.reply(replyErr)
		w.ok(123456789)
		w.frame(300_000) // spans two payload chunks
		w.frame(0)       // end-of-stream marker
	}); allocs != 0 {
		t.Errorf("control/frame path allocates %v per round, want 0", allocs)
	}
}

// Request lines parse in place: the warm path of every command shape is
// allocation-free.
func TestParseCommandBytesAllocFree(t *testing.T) {
	lines := [][]byte{
		[]byte("WATCH 5\n"),
		[]byte("WATCH 2.5 17\n"),
		[]byte("STATS\n"),
		[]byte("WATCH 0.25\r\n"),
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		for _, l := range lines {
			if _, err := ParseCommandBytes(l); err != nil {
				t.Fatal(err)
			}
		}
	}); allocs != 0 {
		t.Errorf("ParseCommandBytes allocates %v per round, want 0", allocs)
	}
}

// A sessionRef that outlives its viewer is inert: after the pool
// recycles the session, stale handles must neither queue frames nor
// resolve the next viewer's admission wait.
func TestStaleSessionRefNoOp(t *testing.T) {
	var pool sessionPool
	s := pool.acquire()
	stale := sessionRef{s: s, gen: s.gen}
	pool.release(s)

	stale.decide(true)
	stale.deliver(1_000_000, true)

	select {
	case ok := <-s.decided:
		t.Errorf("stale decide leaked a decision (%v) into the recycled session", ok)
	default:
	}
	s.mu.Lock()
	pending, done, sent := len(s.pending), s.done, s.sent
	s.mu.Unlock()
	if pending != 0 || done || sent != 0 {
		t.Errorf("stale deliver mutated the recycled session: pending=%d done=%v sent=%d",
			pending, done, sent)
	}
	// The zero ref (a missed map lookup) is valid and inert too.
	sessionRef{}.decide(false)
	sessionRef{}.deliver(1, true)

	// Reuse under a fresh generation works: the recycled session's new
	// handle delivers normally.
	s2 := pool.acquire()
	if s2 != s {
		t.Fatalf("pool did not recycle the released session")
	}
	fresh := sessionRef{s: s2, gen: s2.gen}
	fresh.deliver(4096, false)
	s2.mu.Lock()
	got := append([]int64(nil), s2.pending...)
	s2.mu.Unlock()
	if len(got) != 1 || got[0] != 4096 {
		t.Errorf("fresh handle after recycle queued %v, want [4096]", got)
	}
}

// watchOn runs one viewing over an existing connection (the keep-alive
// protocol: many WATCH requests per dial) and returns the delivered
// byte count and every frame length in order.
func watchOn(t *testing.T, conn net.Conn, r *bufio.Reader, seconds float64) (int64, []int64) {
	t.Helper()
	fmt.Fprintf(conn, "WATCH %g\n", seconds)
	status, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(status, "OK") {
		t.Fatalf("not admitted: %q", status)
	}
	var total int64
	var frames []int64
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			t.Fatal(err)
		}
		length := int64(binary.BigEndian.Uint32(hdr[:]))
		if length == 0 {
			return total, frames
		}
		buf := make([]byte, length)
		if _, err := io.ReadFull(r, buf); err != nil {
			t.Fatal(err)
		}
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("frame %d byte %d: payload %#x, want zero filler", len(frames), i, b)
			}
		}
		total += length
		frames = append(frames, length)
	}
}

// Consecutive viewings over one connection reuse the same pooled session
// and conn state; each must deliver byte-exact content with no frames or
// payload bled in from the previous viewing.
func TestSessionsNoPayloadBleedAcrossReuse(t *testing.T) {
	srv, addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	// 1.5 Mbps: 1 simulated second = 187,500 bytes.
	for i, want := range []int64{937_500, 187_500, 1_312_500} {
		got, _ := watchOn(t, conn, r, float64(want)/187_500)
		if got != want {
			t.Fatalf("viewing %d delivered %d bytes, want %d", i, got, want)
		}
		// The next read must block on a fresh request, not find leftover
		// frames: peek with a deadline and expect a timeout.
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		if _, err := r.Peek(1); err == nil {
			t.Fatalf("viewing %d: server sent data beyond the end-of-stream frame", i)
		} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Time{})
	}
	drained(t, srv)
	if got := srv.sessions.size(); got < 1 {
		t.Errorf("session pool empty after viewings; want the finished session recycled")
	}
}

// Freelist churn under concurrent connect/disconnect: a mix of completed
// viewings and peers that vanish mid-stream, all racing over the pooled
// sessions, conn states, and timers. Run with -race this is the
// concurrency oracle for the pooling layer; afterwards the engine must
// drain (dead peers' sessions torn down, nothing leaked).
func TestSessionPoolChurnConcurrent(t *testing.T) {
	srv, addr := startTestServerDisks(t, 2)
	const workers, rounds = 8, 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					t.Error(err)
					return
				}
				if (w+i)%3 == 0 {
					// Dead peer: request a viewing, read the status line,
					// then hang up mid-stream. The server's next frame
					// write fails and must tear the session down.
					fmt.Fprintf(conn, "WATCH 30\n")
					r := bufio.NewReader(conn)
					if _, err := r.ReadString('\n'); err != nil {
						t.Error(err)
					}
					conn.Close()
					continue
				}
				r := bufio.NewReader(conn)
				if got, _ := watchOn(t, conn, r, 2); got != 375_000 {
					t.Errorf("churn viewing delivered %d bytes, want 375000", got)
				}
				conn.Close()
			}
		}()
	}
	wg.Wait()
	// Dead peers' streams persist until the engine next touches them
	// (the write error is only observable at a fill); allow the longer
	// teardown before asserting nothing leaked.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && srv.Counters().InService > 0 {
		time.Sleep(25 * time.Millisecond)
	}
	if n := srv.Counters().InService; n != 0 {
		t.Errorf("%d in-service streams leaked after churn", n)
	}
}
