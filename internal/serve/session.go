package serve

import (
	"sync"

	"repro/internal/si"
	"repro/internal/workload"
)

// session is one connected viewer. The observer side (shard lock)
// delivers completed fills through a sessionRef; the connection
// goroutine pops and ships them. The two sides share only the small
// mu-guarded queue, so observer callbacks never block on the network.
//
// Sessions are pooled (sessionPool): the channels, the queue slices,
// and the pre-bound shard-lock closures all survive reuse, so a WATCH
// allocates neither the session nor the funcs it hands clock.Do. The
// generation counter is the engine timer-pool pattern — bumped on
// release, it turns every handle issued to the previous viewer into a
// no-op.
type session struct {
	// Allocated once per pooled session, reused for every viewer.
	decided chan bool     // admission outcome, buffered
	notify  chan struct{} // buffered kick for the writer

	submitFn  func() // sess.submit, pre-bound for clock.Do
	timeoutFn func() // sess.timeout
	detachFn  func() // sess.detach

	// Per-WATCH routing, set by the owning connection before submitFn
	// runs and read only by the shard-lock closures afterwards.
	srv     *Server
	sh      *shard
	id      int
	video   int
	viewing si.Seconds
	rate    si.BitRate // requested rung; 0 = the engine's CR (no ladder)

	// lateDecision carries timeout()'s verdict back across clock.Do.
	lateDecision bool

	// mu guards the observer/writer handoff and the generation.
	mu      sync.Mutex
	gen     uint64  // bumped on release; stale sessionRefs no-op
	pending []int64 // frame sizes (bytes) ready to ship
	batch   []int64 // the writer's half of the double buffer
	done    bool    // all content delivered (or the stream departed)
	sent    int64   // cumulative bytes queued for the writer
}

func newSession() *session {
	s := &session{
		decided: make(chan bool, 1),
		notify:  make(chan struct{}, 1),
	}
	s.submitFn = func() { s.submit() }
	s.timeoutFn = func() { s.timeout() }
	s.detachFn = func() { s.detach() }
	return s
}

// sessionRef is a generation-checked handle to a pooled session — the
// value the shard's session map holds and observer callbacks act
// through. A ref that outlives its viewer (the session was released
// and maybe reused) fails the generation check and every method
// no-ops, exactly like the engine's stale Timer handles. The zero ref
// (a missed map lookup) is valid and inert.
type sessionRef struct {
	s   *session
	gen uint64
}

// decide resolves the viewer's admission wait.
func (r sessionRef) decide(ok bool) {
	s := r.s
	if s == nil {
		return
	}
	s.mu.Lock()
	live := s.gen == r.gen
	s.mu.Unlock()
	if !live {
		return
	}
	select {
	case s.decided <- ok:
	default:
	}
}

// deliver advances the viewer's cumulative delivery to total bytes,
// queuing the growth — if any — for the writer, and closes the stream
// when done. Cumulative flooring happens here: callers pass the
// integral byte total, so the sum of shipped frames equals the content
// length exactly no matter how fills fragment.
func (r sessionRef) deliver(total int64, done bool) {
	s := r.s
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.gen != r.gen {
		s.mu.Unlock()
		return
	}
	if n := total - s.sent; n > 0 {
		s.sent = total
		s.pending = append(s.pending, n)
	}
	if done {
		s.done = true
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// submit registers the session with its shard and feeds the engine the
// arrival. Runs under the shard's clock lock.
func (s *session) submit() {
	s.sh.sessions[s.id] = sessionRef{s: s, gen: s.gen}
	req := workload.Request{
		ID:      s.id,
		Arrival: s.srv.clock.Now(),
		Video:   s.video,
		Disk:    s.sh.disk.ID(),
		Viewing: s.viewing,
		Rate:    s.rate,
	}
	if s.srv.share != nil {
		s.srv.share.Submit(req)
	} else {
		s.sh.sys.OnArrival(req)
	}
}

// withdraw cancels a still-queued arrival. Withdrawing fires no engine
// callback, so in cluster mode the router's booking is returned here
// (departures and rejections release through the cluster's own
// observer). Runs under the shard's clock lock.
func (s *session) withdraw() {
	if s.srv.share != nil {
		s.srv.share.Cancel(s.id, s.sh.disk.ID())
	} else if s.sh.disk.Cancel(s.id) && s.srv.rt != nil {
		s.srv.rt.Release(s.sh.global)
	}
}

// timeout resolves the admission wait at the patience deadline: take a
// decision that raced the timer, else withdraw from the deferral
// queue. The verdict lands in lateDecision. Runs under the shard's
// clock lock, which serializes it against the decision callbacks.
func (s *session) timeout() {
	select {
	case ok := <-s.decided:
		s.lateDecision = ok
	default:
		s.lateDecision = false
		s.withdraw()
	}
}

// detach is the end-of-WATCH cleanup: withdraw whatever is still
// queued (a no-op once delivery completed) and unregister, after which
// no observer callback can reach the session. Runs under the shard's
// clock lock.
func (s *session) detach() {
	s.withdraw()
	delete(s.sh.sessions, s.id)
}

// sessionPool recycles sessions the way the engine pools wall timers:
// a freelist of fully-reset structs whose generation counter
// invalidates every handle issued for the previous viewer.
type sessionPool struct {
	mu   sync.Mutex
	free []*session
}

func (p *sessionPool) acquire() *session {
	p.mu.Lock()
	var s *session
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if s == nil {
		s = newSession()
	}
	return s
}

// release resets and recycles a detached session. The caller must have
// run detachFn on the owning shard first, so no new observer callback
// can find the session through the shard map; the generation bump
// inertly retires any sessionRef still held beyond that point.
func (p *sessionPool) release(s *session) {
	s.mu.Lock()
	s.gen++
	s.pending = s.pending[:0]
	s.batch = s.batch[:0]
	s.done = false
	s.sent = 0
	s.mu.Unlock()
	// Drain stale wakeups so the next viewer starts clean.
	select {
	case <-s.decided:
	default:
	}
	select {
	case <-s.notify:
	default:
	}
	s.srv, s.sh = nil, nil
	s.lateDecision = false
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// size reports the freelist population (tests).
func (p *sessionPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
