package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// startTestServer spins a server on an ephemeral port with aggressive
// time compression so tests finish quickly.
func startTestServer(t *testing.T) (*Server, string) {
	return startTestServerDisks(t, 1)
}

// startTestServerDisks is startTestServer sharded across disks.
func startTestServerDisks(t *testing.T, disks int) (*Server, string) {
	t.Helper()
	srv, err := New(Config{Scale: 600, Disks: disks})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ln.Close()
		srv.Stop()
	})
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// watch runs one client session and returns the delivered byte count.
func watch(t *testing.T, addr string, seconds float64) int64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "WATCH %g\n", seconds)
	r := bufio.NewReader(conn)
	status, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(status, "OK") {
		t.Fatalf("not admitted: %q", status)
	}
	var total int64
	var frame [4]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			t.Fatal(err)
		}
		length := binary.BigEndian.Uint32(frame[:])
		if length == 0 {
			return total
		}
		if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
			t.Fatal(err)
		}
		total += int64(length)
	}
}

// drained waits until the engine holds no in-service streams.
func drained(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Counters().InService == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("engine still holds %d in-service streams", srv.Counters().InService)
}

func TestServerDeliversExactContent(t *testing.T) {
	_, addr := startTestServer(t)
	// 10 simulated seconds at 1.5 Mbps = 15 Mbit = 1,875,000 bytes.
	got := watch(t, addr, 10)
	if got != 1_875_000 {
		t.Errorf("delivered %d bytes, want 1875000", got)
	}
}

func TestServerConcurrentViewers(t *testing.T) {
	srv, addr := startTestServer(t)
	done := make(chan int64, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- watch(t, addr, 5) }()
	}
	for i := 0; i < 4; i++ {
		if got := <-done; got != 937_500 {
			t.Errorf("viewer delivered %d bytes, want 937500", got)
		}
	}
	drained(t, srv)
}

// The server's tallies are fed by engine observer callbacks through the
// live collector, so after all viewers finish they must agree with the
// engine's own books: everyone admitted has departed, and the inertia
// admission book is empty again.
func TestServerCountsMatchAdmissionBook(t *testing.T) {
	srv, addr := startTestServer(t)
	const viewers = 3
	done := make(chan int64, viewers)
	for i := 0; i < viewers; i++ {
		go func() { done <- watch(t, addr, 5) }()
	}
	for i := 0; i < viewers; i++ {
		<-done
	}
	drained(t, srv)
	c := srv.Counters()
	if c.Admitted != viewers || c.Rejected != 0 {
		t.Errorf("admitted=%d rejected=%d, want %d admitted and 0 rejected", c.Admitted, c.Rejected, viewers)
	}
	if c.Departed != c.Admitted {
		t.Errorf("departed=%d, want every admitted stream (%d) departed", c.Departed, c.Admitted)
	}
	if c.InService != 0 || c.Book != 0 {
		t.Errorf("engine books not drained: inservice=%d book=%d", c.InService, c.Book)
	}
}

// Across disk shards, viewers are routed by the catalog's placement and
// served concurrently by independent shard drivers; every shard's tally
// and book must still reconcile.
func TestServerShardedDisks(t *testing.T) {
	srv, addr := startTestServerDisks(t, 4)
	const viewers = 8
	done := make(chan int64, viewers)
	for i := 0; i < viewers; i++ {
		go func() { done <- watch(t, addr, 5) }()
	}
	for i := 0; i < viewers; i++ {
		if got := <-done; got != 937_500 {
			t.Errorf("viewer delivered %d bytes, want 937500", got)
		}
	}
	drained(t, srv)
	c := srv.Counters()
	if c.Admitted != viewers || c.Rejected != 0 || c.Departed != viewers {
		t.Errorf("admitted=%d rejected=%d departed=%d, want %d/0/%d", c.Admitted, c.Rejected, c.Departed, viewers, viewers)
	}
	if c.InService != 0 || c.Book != 0 {
		t.Errorf("engine books not drained: inservice=%d book=%d", c.InService, c.Book)
	}
	// Placement must have spread the 8 sequential viewer IDs over more
	// than one shard (titles stripe across disks).
	used := 0
	for i := 0; i < srv.Metrics().Disks(); i++ {
		if srv.Metrics().Disk(i).Admitted.Load() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d shard(s) served traffic, want routing across disks", used)
	}
}

func TestServerRejectsBadRequest(t *testing.T) {
	_, addr := startTestServer(t)
	for _, bad := range []string{"GIMME\n", "WATCH\n", "WATCH -5\n", "WATCH x\n"} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(conn, bad)
		reply, err := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if err != nil || !strings.HasPrefix(reply, "ERR") {
			t.Errorf("request %q: reply %q, err %v; want ERR", strings.TrimSpace(bad), strings.TrimSpace(reply), err)
		}
	}
}

// The STATS control command returns one JSON dump whose counters agree
// with the engine's accounting after traffic has drained.
func TestServerStatsCommand(t *testing.T) {
	srv, addr := startTestServer(t)
	if got := watch(t, addr, 5); got != 937_500 {
		t.Fatalf("delivered %d bytes, want 937500", got)
	}
	drained(t, srv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "STATS\n")
	var s Stats
	if err := json.NewDecoder(conn).Decode(&s); err != nil {
		t.Fatalf("undecodable STATS reply: %v", err)
	}
	if s.Totals.Admitted != 1 || s.Totals.Departed != 1 || s.InService != 0 {
		t.Errorf("STATS totals %+v inservice=%d, want 1 admitted, 1 departed, 0 in service",
			s.Totals, s.InService)
	}
	// Fills are clamped to the stream's remaining content, so the disk
	// never reads more than the request consumes. (At aggressive time
	// compression it may read less: late fills starve the modelled
	// buffer and the departure flush covers the tail.)
	if s.Totals.FillBytes <= 0 || s.Totals.FillBytes > 937_500 {
		t.Errorf("STATS fill_bytes=%d, want in (0, 937500]", s.Totals.FillBytes)
	}
	if s.Totals.Starts != 1 || s.StartupMaxMS <= 0 {
		t.Errorf("STATS starts=%d p99=%vms max=%vms, want one measured startup",
			s.Totals.Starts, s.StartupP99MS, s.StartupMaxMS)
	}
	if s.EngineNowS <= 0 {
		t.Errorf("STATS engine_now_s=%v, want the engine clock running", s.EngineNowS)
	}
}

// StatsEvery emits decodable JSON lines at the requested cadence.
func TestStatsEvery(t *testing.T) {
	srv, addr := startTestServer(t)
	pr, pw := io.Pipe()
	defer pr.Close()
	stop := srv.StatsEvery(20*time.Millisecond, pw)
	defer stop()
	watch(t, addr, 5)
	dec := json.NewDecoder(pr)
	var s Stats
	if err := dec.Decode(&s); err != nil {
		t.Fatalf("undecodable stats line: %v", err)
	}
	stop()
	if s.EngineNowS < 0 {
		t.Errorf("stats line engine_now_s=%v", s.EngineNowS)
	}
}

func TestSelfTest(t *testing.T) {
	srv, addr := startTestServer(t)
	var out strings.Builder
	if err := SelfTest(srv, addr, 3, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), " ok"); got != 3 {
		t.Errorf("self test ok lines = %d, want 3\n%s", got, out.String())
	}
	// The summary line reports the engine's admission accounting.
	var admitted, deferred, rejected, departed, inService, book, underruns int
	var p99 float64
	sum := out.String()[strings.Index(out.String(), "summary:"):]
	if _, err := fmt.Sscanf(sum, "summary: admitted=%d deferred=%d rejected=%d departed=%d inservice=%d book=%d underruns=%d p99start=%fms",
		&admitted, &deferred, &rejected, &departed, &inService, &book, &underruns, &p99); err != nil {
		t.Fatalf("unparsable summary %q: %v", strings.TrimSpace(sum), err)
	}
	if admitted != 3 || departed != 3 || inService != 0 || book != 0 {
		t.Errorf("summary admitted=%d departed=%d inservice=%d book=%d, want 3/3/0/0", admitted, departed, inService, book)
	}
	// Underruns at 600x compression measure wall-timer jitter against
	// the engine's 1ms (simulated) tolerance, so any count is
	// plausible; the summary must agree with the collector exactly.
	if want := srv.Counters().Underruns; underruns != want {
		t.Errorf("summary underruns=%d, collector says %d", underruns, want)
	}
}
