package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// SelfTest connects n viewers watching 20–90 simulated seconds each and
// reports their startup latency and delivery, then a summary of the
// engine's admission accounting. The summary's counters come from the
// live metrics collector, so a selftest doubles as an accounting check
// of the instrumented serving path.
func SelfTest(srv *Server, addr string, n int, w io.Writer) error {
	type result struct {
		id      int
		watch   float64
		startup time.Duration
		bytes   int64
		err     error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			watch := 20 + 10*float64(i)
			res := result{id: i, watch: watch}
			defer func() { results[i] = res }()

			conn, err := net.Dial("tcp", addr)
			if err != nil {
				res.err = err
				return
			}
			defer conn.Close()
			start := time.Now()
			fmt.Fprintf(conn, "WATCH %g\n", watch)
			r := bufio.NewReader(conn)
			status, err := r.ReadString('\n')
			if err != nil {
				res.err = err
				return
			}
			if !strings.HasPrefix(status, "OK") {
				res.err = fmt.Errorf("not admitted: %s", strings.TrimSpace(status))
				return
			}
			first := true
			var frame [4]byte
			for {
				if _, err := io.ReadFull(r, frame[:]); err != nil {
					res.err = err
					return
				}
				if first {
					res.startup = time.Since(start)
					first = false
				}
				length := binary.BigEndian.Uint32(frame[:])
				if length == 0 {
					return
				}
				if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
					res.err = err
					return
				}
				res.bytes += int64(length)
			}
		}(i)
		time.Sleep(time.Duration(float64(2*time.Second) / srv.clock.Scale() * 10)) // stagger
	}
	wg.Wait()

	fmt.Fprintf(w, "%-8s %10s %14s %12s %s\n", "viewer", "watch(s)", "startup(wall)", "delivered", "status")
	for _, res := range results {
		status := "ok"
		if res.err != nil {
			status = res.err.Error()
		}
		fmt.Fprintf(w, "%-8d %10.0f %14s %12d %s\n",
			res.id, res.watch, res.startup.Round(time.Microsecond), res.bytes, status)
	}

	// Let the handlers' deferred cleanup drain before summarizing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if c := srv.Counters(); c.InService == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	c := srv.Counters()
	snap := srv.live.Snapshot()
	fmt.Fprintf(w, "summary: admitted=%d deferred=%d rejected=%d departed=%d inservice=%d book=%d underruns=%d p99start=%.1fms\n",
		c.Admitted, c.Deferred, c.Rejected, c.Departed, c.InService, c.Book, c.Underruns, snap.StartupP99MS)
	return nil
}
