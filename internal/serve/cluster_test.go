package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"
)

// startFleetServer spins a cluster-mode server: servers × disks engines
// behind the admission router, on an ephemeral port.
func startFleetServer(t *testing.T, servers, disks int) (*Server, string) {
	t.Helper()
	srv, err := New(Config{Scale: 600, Disks: disks, Cluster: servers})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ln.Close()
		srv.Stop()
	})
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// Cluster mode is a different serving topology, not a different
// protocol: routed viewers still receive exactly the content they asked
// for, and after the traffic drains every book — the engines' admission
// books and the router's committed counts — must be empty again.
func TestClusterServesExactContent(t *testing.T) {
	srv, addr := startFleetServer(t, 2, 2)
	const viewers = 6
	done := make(chan int64, viewers)
	for i := 0; i < viewers; i++ {
		go func() { done <- watch(t, addr, 5) }()
	}
	for i := 0; i < viewers; i++ {
		if got := <-done; got != 937_500 {
			t.Errorf("viewer delivered %d bytes, want 937500", got)
		}
	}
	drained(t, srv)
	c := srv.Counters()
	if c.Admitted != viewers || c.Rejected != 0 || c.Departed != viewers {
		t.Errorf("admitted=%d rejected=%d departed=%d, want %d/0/%d",
			c.Admitted, c.Rejected, c.Departed, viewers, viewers)
	}
	if c.InService != 0 || c.Book != 0 {
		t.Errorf("engine books not drained: inservice=%d book=%d", c.InService, c.Book)
	}
	// Departures release the router's bookings through the cluster's
	// observer; a leak here would eventually wedge admission at the cap.
	rs := srv.rt.Stats()
	if rs.Routed != viewers {
		t.Errorf("router routed %d, want %d", rs.Routed, viewers)
	}
	for g, n := range rs.Committed {
		if n != 0 {
			t.Errorf("router still holds %d committed on disk %d after drain", n, g)
		}
	}
}

// The STATS dump grows a router block in cluster mode, reporting the
// knee cap and per-disk committed counts sized to the global fleet.
func TestClusterStatsReportRouter(t *testing.T) {
	srv, addr := startFleetServer(t, 2, 2)
	if got := watch(t, addr, 5); got != 937_500 {
		t.Fatalf("delivered %d bytes, want 937500", got)
	}
	drained(t, srv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "STATS\n")
	var s Stats
	if err := json.NewDecoder(conn).Decode(&s); err != nil {
		t.Fatalf("undecodable STATS reply: %v", err)
	}
	if s.Router == nil {
		t.Fatal("STATS missing router block in cluster mode")
	}
	if s.Router.Routed != 1 || s.Router.Rejected != 0 {
		t.Errorf("router stats %+v, want 1 routed, 0 rejected", *s.Router)
	}
	if s.Router.CapPerDisk <= 0 {
		t.Errorf("router cap_per_disk=%d, want positive", s.Router.CapPerDisk)
	}
	if got, want := len(s.Router.Committed), 4; got != want {
		t.Errorf("router committed has %d disks, want the global %d", got, want)
	}
}

// committedTotal sums the router's live bookings across all disks.
func committedTotal(srv *Server) int64 {
	var total int64
	for _, n := range srv.rt.Stats().Committed {
		total += n
	}
	return total
}

// The router's bookings must track the streams exactly: saturate one
// hot title's two single-disk replicas past their knee caps with long
// viewings, check the surplus is refused with both replicas fully
// booked, then hang up everyone and check every booking comes back —
// a leak in either direction eventually wedges admission at the cap.
func TestClusterBookingLifecycle(t *testing.T) {
	srv, addr := startFleetServer(t, 2, 1)
	cap := srv.rt.Stats().CapPerDisk
	// The fleet replicates the hot quarter on both servers, so title 0
	// has a single-disk replica on each: 2×cap viewings fill both.
	const surplus = 3
	total := 2*cap + surplus
	admitted := make(chan bool, total)
	release := make(chan struct{})
	for i := 0; i < total; i++ {
		go func() {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				admitted <- false
				return
			}
			defer conn.Close()
			// Viewing far longer than the test: admitted streams hold
			// their slots until the hangup below.
			fmt.Fprintf(conn, "WATCH 100000 0\n")
			buf := make([]byte, 3)
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, _ := conn.Read(buf)
			ok := n >= 2 && string(buf[:2]) == "OK"
			admitted <- ok
			if ok {
				<-release // hold the stream open for the booked check
			}
		}()
	}
	got := 0
	for i := 0; i < total; i++ {
		if <-admitted {
			got++
		}
	}
	// The cap is a hard ceiling; the floor is soft (a routed viewer can
	// still time out of the engine's deferral queue under wall-clock
	// jitter, correctly releasing its booking on the way out).
	if got > 2*cap {
		t.Fatalf("admitted %d viewers, above both replicas' caps (%d)", got, 2*cap)
	}
	if got < cap {
		t.Fatalf("admitted %d viewers, want at least one replica's cap (%d)", got, cap)
	}
	if committed := committedTotal(srv); committed != int64(got) {
		t.Errorf("router holds %d committed slots with %d streams open", committed, got)
	}
	// Hang up: cancelled streams depart and the cluster's observer must
	// return every booking.
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if committedTotal(srv) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("router still holds %d committed slots after all viewers hung up (booking leak)",
				committedTotal(srv))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Cluster mode and the sharing front end are mutually exclusive, and a
// negative fleet size is rejected.
func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Scale: 600, Disks: 1, Cluster: 2, Share: true}); err == nil {
		t.Error("cluster+share config accepted, want an error")
	}
	if _, err := New(Config{Scale: 600, Disks: 1, Cluster: -1}); err == nil {
		t.Error("negative cluster size accepted, want an error")
	}
}
