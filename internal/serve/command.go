package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// CommandKind enumerates the wire protocol's request lines.
type CommandKind int

const (
	// CmdStats requests one JSON stats line.
	CmdStats CommandKind = iota
	// CmdWatch requests a viewing.
	CmdWatch
)

// Command is one parsed request line.
type Command struct {
	Kind CommandKind
	// Seconds is the requested viewing time (CmdWatch).
	Seconds float64
	// Title is the requested title id, or -1 when the client left the
	// choice to the server (CmdWatch).
	Title int
}

// String renders the command back in canonical wire form (without the
// trailing newline).
func (c Command) String() string {
	switch c.Kind {
	case CmdStats:
		return "STATS"
	case CmdWatch:
		if c.Title >= 0 {
			return fmt.Sprintf("WATCH %g %d", c.Seconds, c.Title)
		}
		return fmt.Sprintf("WATCH %g", c.Seconds)
	}
	return fmt.Sprintf("?%d", int(c.Kind))
}

// ParseCommand parses one request line of the wire protocol:
//
//	STATS
//	WATCH <seconds>
//	WATCH <seconds> <title>
//
// Seconds must be a positive finite float; title, when present, a
// non-negative integer (the server reduces it modulo the catalog).
// Leading/trailing whitespace is ignored. The parser is strict — extra
// fields, signs on the title, or non-numeric input are errors — so a
// malformed line can never half-match (FuzzCommandParse holds it to
// that).
func ParseCommand(line string) (Command, error) {
	return ParseCommandBytes([]byte(line))
}

// ParseCommandBytes is ParseCommand on the raw request line, the form
// the serving path uses: a well-formed line parses without allocating
// (TestParseCommandAllocFree pins it), so command handling costs the
// connection nothing in steady state. Only malformed input — which ends
// the connection anyway — may allocate, for the error.
func ParseCommandBytes(line []byte) (Command, error) {
	// Split on Unicode whitespace exactly as strings.Fields does, into a
	// fixed-size field array: the grammar's longest form has 3 fields, so
	// a 4th means the line is malformed no matter what it holds.
	var fields [4][]byte
	nf := 0
	for i := 0; i < len(line); {
		if c := line[i]; c < utf8.RuneSelf {
			if asciiSpace(c) {
				i++
				continue
			}
		} else if r, w := utf8.DecodeRune(line[i:]); unicode.IsSpace(r) {
			i += w
			continue
		}
		j := i
		for j < len(line) {
			if c := line[j]; c < utf8.RuneSelf {
				if asciiSpace(c) {
					break
				}
				j++
				continue
			}
			r, w := utf8.DecodeRune(line[j:])
			if unicode.IsSpace(r) {
				break
			}
			j += w
		}
		if nf == len(fields) {
			return Command{}, fmt.Errorf("serve: too many request fields")
		}
		fields[nf] = line[i:j]
		nf++
		i = j
	}
	if nf == 0 {
		return Command{}, fmt.Errorf("serve: empty request")
	}
	switch {
	case string(fields[0]) == "STATS":
		if nf != 1 {
			return Command{}, fmt.Errorf("serve: STATS takes no arguments")
		}
		return Command{Kind: CmdStats, Title: -1}, nil
	case string(fields[0]) == "WATCH":
		if nf < 2 || nf > 3 {
			return Command{}, fmt.Errorf("serve: WATCH needs <seconds> [<title>]")
		}
		seconds, err := parseSeconds(fields[1])
		if err != nil {
			return Command{}, fmt.Errorf("serve: bad WATCH seconds %q", fields[1])
		}
		// The negated comparison also rejects NaN.
		if !(seconds > 0) || math.IsInf(seconds, 0) {
			return Command{}, fmt.Errorf("serve: WATCH seconds %q not a positive finite number", fields[1])
		}
		cmd := Command{Kind: CmdWatch, Seconds: seconds, Title: -1}
		if nf == 3 {
			title, err := parseTitle(fields[2])
			if err != nil {
				return Command{}, fmt.Errorf("serve: bad WATCH title %q", fields[2])
			}
			cmd.Title = title
		}
		return cmd, nil
	}
	return Command{}, fmt.Errorf("serve: unknown request %q", fields[0])
}

// asciiSpace mirrors strings.Fields' ASCII fast path.
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// pow10 holds the exactly-representable powers of ten the fast decimal
// path divides by.
var pow10 = [...]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15}

// parseSeconds parses a WATCH duration. The fast path covers plain
// decimal forms — digits with at most one dot, few enough of them that
// the mantissa is exact and the power-of-ten division correctly rounded,
// the same condition strconv's own fast path requires — and allocates
// nothing. Everything else (exponents, hex floats, signs, underscores)
// falls through to strconv.ParseFloat so accepted values are always
// byte-for-byte identical to the historical parser's.
func parseSeconds(b []byte) (float64, error) {
	var mant uint64
	digits, frac := 0, 0
	dot := false
	for _, c := range b {
		switch {
		case c >= '0' && c <= '9':
			mant = mant*10 + uint64(c-'0')
			digits++
			if dot {
				frac++
			}
		case c == '.' && !dot:
			dot = true
		default:
			return strconv.ParseFloat(string(b), 64)
		}
	}
	if digits == 0 || digits > 15 {
		return strconv.ParseFloat(string(b), 64)
	}
	return float64(mant) / pow10[frac], nil
}

// parseTitle parses a WATCH title: decimal digits only — no sign, which
// also enforces the historical explicit '+' rejection — accumulated with
// an overflow guard (strconv.Atoi would error there too).
func parseTitle(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, strconv.ErrSyntax
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, strconv.ErrSyntax
		}
		if n > (math.MaxInt-9)/10 {
			return 0, strconv.ErrRange
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

var _ = strings.Fields // keep the historical import anchor out of godoc
