package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// CommandKind enumerates the wire protocol's request lines.
type CommandKind int

const (
	// CmdStats requests one JSON stats line.
	CmdStats CommandKind = iota
	// CmdWatch requests a viewing.
	CmdWatch
)

// Command is one parsed request line.
type Command struct {
	Kind CommandKind
	// Seconds is the requested viewing time (CmdWatch).
	Seconds float64
	// Title is the requested title id, or -1 when the client left the
	// choice to the server (CmdWatch).
	Title int
}

// String renders the command back in canonical wire form (without the
// trailing newline).
func (c Command) String() string {
	switch c.Kind {
	case CmdStats:
		return "STATS"
	case CmdWatch:
		if c.Title >= 0 {
			return fmt.Sprintf("WATCH %g %d", c.Seconds, c.Title)
		}
		return fmt.Sprintf("WATCH %g", c.Seconds)
	}
	return fmt.Sprintf("?%d", int(c.Kind))
}

// ParseCommand parses one request line of the wire protocol:
//
//	STATS
//	WATCH <seconds>
//	WATCH <seconds> <title>
//
// Seconds must be a positive finite float; title, when present, a
// non-negative integer (the server reduces it modulo the catalog).
// Leading/trailing whitespace is ignored. The parser is strict — extra
// fields, signs on the title, or non-numeric input are errors — so a
// malformed line can never half-match (FuzzCommandParse holds it to
// that).
func ParseCommand(line string) (Command, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Command{}, fmt.Errorf("serve: empty request")
	}
	switch fields[0] {
	case "STATS":
		if len(fields) != 1 {
			return Command{}, fmt.Errorf("serve: STATS takes no arguments")
		}
		return Command{Kind: CmdStats, Title: -1}, nil
	case "WATCH":
		if len(fields) < 2 || len(fields) > 3 {
			return Command{}, fmt.Errorf("serve: WATCH needs <seconds> [<title>]")
		}
		seconds, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return Command{}, fmt.Errorf("serve: bad WATCH seconds %q", fields[1])
		}
		// The negated comparison also rejects NaN.
		if !(seconds > 0) || math.IsInf(seconds, 0) {
			return Command{}, fmt.Errorf("serve: WATCH seconds %q not a positive finite number", fields[1])
		}
		cmd := Command{Kind: CmdWatch, Seconds: seconds, Title: -1}
		if len(fields) == 3 {
			title, err := strconv.Atoi(fields[2])
			if err != nil || title < 0 || fields[2][0] == '+' {
				return Command{}, fmt.Errorf("serve: bad WATCH title %q", fields[2])
			}
			cmd.Title = title
		}
		return cmd, nil
	}
	return Command{}, fmt.Errorf("serve: unknown request %q", fields[0])
}
