package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// stallWatch runs one viewer that, besides counting delivered bytes,
// detects playback stalls from its own consumption schedule: once the
// first byte arrives, a viewer consuming at CR (scaled to wall time)
// observes a stall whenever new data lands after its buffered bytes ran
// out. The slack absorbs network and scheduling noise, so a viewer only
// counts stalls it could genuinely notice — a strict subset of the
// engine's 1ms-simulated-tolerance underruns.
func stallWatch(t *testing.T, srv *Server, addr string, seconds float64) (bytes int64, stalls int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "WATCH %g\n", seconds)
	r := bufio.NewReader(conn)
	status, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	parseID(t, status) // fails the test unless admitted

	// Wall-clock consumption rate in bytes per wall second, and a
	// generous slack of one simulated second of content: the viewer
	// only counts a stall the engine's 1ms tolerance would dwarf, and
	// in-process scheduling noise (which delays the engine's own fill
	// timers just the same) stays below it.
	rate := float64(srv.CR()) / 8 * srv.Clock().Scale()
	slack := float64(srv.CR()) / 8 // bytes per simulated second
	var start time.Time
	var behind bool
	var frame [4]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			t.Fatal(err)
		}
		now := time.Now()
		if start.IsZero() {
			start = now
		}
		length := binary.BigEndian.Uint32(frame[:])
		if length == 0 {
			return bytes, stalls
		}
		// Before accepting the new frame: had consumption outrun what
		// was delivered so far? Count starvation episodes, not frames —
		// several late frames can land during one engine underrun gap.
		consumed := rate * now.Sub(start).Seconds()
		if consumed > float64(bytes)+slack {
			if !behind {
				stalls++
			}
			behind = true
		} else {
			behind = false
		}
		if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
			t.Fatal(err)
		}
		bytes += int64(length)
	}
}

func parseID(t *testing.T, status string) int {
	t.Helper()
	var id int
	if _, err := fmt.Sscanf(status, "OK %d", &id); err != nil {
		t.Fatalf("bad admission reply %q: %v", status, err)
	}
	return id
}

// The accounting for underruns must reconcile three ways: the buffer
// pools' ground truth (the engine's own books), the live collector fed
// by observer callbacks, and the STATS dump served over the wire. And a
// viewer can never observe more stalls than the engine recorded
// underruns for its disk — the engine's tolerance is finer than
// anything visible over TCP.
func TestUnderrunAccountingReconciles(t *testing.T) {
	srv, err := New(Config{Scale: 600, Disks: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ln.Close()
		srv.Stop()
	})
	go srv.Serve(ln)

	const viewers = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	var totalBytes int64
	var viewerStalls int
	for i := 0; i < viewers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, s := stallWatch(t, srv, ln.Addr().String(), 5)
			mu.Lock()
			totalBytes += b
			viewerStalls += s
			mu.Unlock()
		}()
	}
	wg.Wait()
	drained(t, srv)

	// Byte accounting is exact: every viewer gets CR x viewing, to the
	// byte, regardless of jitter.
	if want := int64(viewers * 937_500); totalBytes != want {
		t.Errorf("viewers received %d bytes total, want exactly %d", totalBytes, want)
	}

	// Way 1: the pools' ground truth, per disk, read under shard locks.
	poolUnderruns := 0
	perDiskPool := make([]int, len(srv.shards))
	for i, sh := range srv.shards {
		i, sh := i, sh
		sh.clock.Do(func() {
			perDiskPool[i] = sh.disk.Pool().Stats().Underruns
		})
		poolUnderruns += perDiskPool[i]
	}

	// Way 2: the live collector's per-disk cells.
	for i := 0; i < srv.Metrics().Disks(); i++ {
		if got := int(srv.Metrics().Disk(i).Underruns.Load()); got != perDiskPool[i] {
			t.Errorf("disk %d: collector counted %d underruns, pool recorded %d", i, got, perDiskPool[i])
		}
	}

	// Way 3: the STATS dump over the wire.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "STATS\n")
	var s Stats
	if err := json.NewDecoder(conn).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if int(s.Totals.Underruns) != poolUnderruns {
		t.Errorf("STATS reports %d underruns, pools recorded %d", s.Totals.Underruns, poolUnderruns)
	}
	if len(s.PerDisk) != len(perDiskPool) {
		t.Fatalf("STATS carries %d disks, want %d", len(s.PerDisk), len(perDiskPool))
	}
	for i := range perDiskPool {
		if int(s.PerDisk[i].Underruns) != perDiskPool[i] {
			t.Errorf("STATS disk %d reports %d underruns, pool recorded %d", i, s.PerDisk[i].Underruns, perDiskPool[i])
		}
	}

	// The viewer-side bound.
	if viewerStalls > poolUnderruns {
		t.Errorf("viewers observed %d stalls, engine recorded only %d underruns", viewerStalls, poolUnderruns)
	}
	t.Logf("reconciled: %d underruns (pool == collector == STATS), viewers observed %d stalls, %d bytes exact",
		poolUnderruns, viewerStalls, totalBytes)
}
