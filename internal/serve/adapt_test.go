package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"testing"

	"repro/internal/livemetrics"
)

func TestAdaptRequiresLadderAndExcludesShare(t *testing.T) {
	if _, err := New(Config{Scale: 600, Disks: 1, Adapt: true}); err == nil {
		t.Error("adaptation without the ladder catalog accepted")
	}
	if _, err := New(Config{Scale: 600, Disks: 1, Ladder: true, Adapt: true, Share: true}); err == nil {
		t.Error("adaptation with the sharing front end accepted")
	}
}

// TestAdaptStatsCarryRungWatchTime serves a few ladder viewers with
// adaptation on and checks the stats dump grows the adaptation fields:
// switch counters present and the delivered-rung watch tally accrued at
// the top rung once the viewers departed.
func TestAdaptStatsCarryRungWatchTime(t *testing.T) {
	// JitterComp keeps the adaptation reservoir (like the underrun
	// grace) judged in wall time: without it, OS timer wobble at this
	// compression reads as buffer distress and sheds rate spuriously.
	// The modest compression leaves the wobble small next to the
	// reservoir even on a loaded test machine.
	srv, err := New(Config{Scale: 60, Disks: 1, Ladder: true, Downgrade: true, Adapt: true, JitterComp: true})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ln.Close()
		srv.Stop()
	})
	go srv.Serve(ln)
	addr := ln.Addr().String()
	for i := 0; i < 3; i++ {
		watch(t, addr, 5)
	}
	drained(t, srv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, "STATS")
	raw, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var snap livemetrics.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Totals.Departed != 3 {
		t.Fatalf("departed = %d, want 3", snap.Totals.Departed)
	}
	// The adaptation fields must be on the wire by name, not just as Go
	// zero values the decoder never saw.
	var dump map[string]json.RawMessage
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	var totals map[string]json.RawMessage
	if err := json.Unmarshal(dump["totals"], &totals); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"switches_up", "switches_down", "rung_ms"} {
		if _, ok := totals[field]; !ok {
			t.Errorf("stats dump missing %q", field)
		}
	}
	// Every viewer started at the top rung, so its first rate epoch must
	// land there when it closes (at departure or at a switch).
	if len(snap.Totals.RungMS) == 0 || snap.Totals.RungMS[0] <= 0 {
		t.Errorf("no top-rung watch time accrued: rung_ms=%v", snap.Totals.RungMS)
	}
	// This load never crosses the reservoir in model time, but the test
	// shares a wall clock with the OS scheduler: a hiccup past the
	// jitter-comp grace reads as distress and sheds a rung, so only the
	// quiet runs may pin the stronger shape. The accounting invariant
	// holds either way: watch time appears below the top rung only if a
	// down-switch was counted, and never off the three-rung ladder.
	var below float64
	for _, r := range snap.Totals.RungMS[1:] {
		below += r
	}
	if snap.Totals.SwitchesUp == 0 && snap.Totals.SwitchesDown == 0 && below != 0 {
		t.Errorf("watch time on a rung nobody was switched to: rung_ms=%v", snap.Totals.RungMS)
	}
	if below != 0 && snap.Totals.SwitchesDown == 0 {
		t.Errorf("low-rung watch time without a down-switch: rung_ms=%v", snap.Totals.RungMS)
	}
	if len(snap.Totals.RungMS) > 3 && snap.Totals.RungMS[3] != 0 {
		t.Errorf("watch time off the ladder: rung_ms=%v", snap.Totals.RungMS)
	}
}
