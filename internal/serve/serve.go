// Package serve is the live serving path: a miniature VOD server over
// TCP driven by the shared streaming runtime in internal/engine. The
// same admission, allocation, and scheduling code the simulator
// validates paces real deliveries here under a scaled wall clock. The
// server itself owns no buffer-sizing or admission logic — it is a
// driver: it translates TCP connections into engine arrivals and engine
// fill completions into frames on the wire.
//
// The server is sharded per disk, mirroring the paper's per-disk
// service model: every disk runs on its own WallClock shard (its own
// lock, timer wheel, and driver goroutine), sessions are routed to the
// shard holding their title by the catalog's placement, and live
// tallies merge across shards through internal/livemetrics' lock-free
// per-disk counters — no global lock anywhere on the serving path.
//
// Protocol: the client sends request lines. "WATCH <seconds>\n"
// requests a viewing; the server answers "OK <id>\n" (admitted) or
// "BUSY\n" (rejected, or deferred past patience) and then streams
// length-prefixed frames ([4-byte big-endian length][bytes]) until the
// requested content has been delivered, ending with a zero-length
// frame — after which the connection is ready for the next request
// line, so a client can run many viewings over one dialed connection.
// "STATS\n" instead dumps one JSON stats line (see Stats) and closes.
// A malformed line draws "ERR bad request\n" and closes. SERVING.md
// documents the protocol and every stats field.
//
// The steady-state serving path allocates nothing: sessions,
// connection state (reader, wire encoder, patience timer), and the
// shard-lock closures they hand the clock are all pooled with
// generation-checked handles (session.go), frames go out as one
// vectored write over a shared read-only payload chunk (wire.go), and
// request lines parse in place (ParseCommandBytes). With
// Config.JitterComp the server additionally runs on a fine-tick wall
// clock that aims its timers early by each shard's observed lag, and
// judges underruns with the model's millisecond grace measured in wall
// time — so at high time compression underruns measure the paper's
// model instead of OS timer latency (see SERVING.md, "Serving-path
// performance").
//
// cmd/vodserver is the thin binary over this package; internal/bench's
// loopback cases drive it in-process.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	vod "repro"
	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/livemetrics"
	"repro/internal/share"
	"repro/internal/si"
	"repro/internal/workload"
)

// Patience bounds how long an arrival may sit in the deferral queue
// before the frontend gives up, in engine seconds. It matches the old
// hand-rolled server's 100 one-second retries.
const Patience = si.Seconds(100)

// DefaultJitterCompMax bounds the jitter compensation when
// Config.JitterComp is on and no explicit cap is given: timers may fire
// at most this much wall time early. Ten milliseconds covers the
// scheduler wakeup latency a loaded CFS runner actually exhibits (the
// lag estimate under the loopback bench sits at 2–5 ms and the aim
// doubles it); on a quiet machine the estimate stays tens of
// microseconds and the clamp never binds, so timers hold near their
// nominal deadlines.
const DefaultJitterCompMax = 10 * time.Millisecond

// JitterCompTick is the wall-clock wheel tick a jitter-compensated
// server runs on. The default millisecond wheel quantizes every timer
// hop to >= 1 ms — at -scale 1200 that is 1.2 engine seconds per hop,
// which alone swamps the model's 1 ms underrun tolerance no matter how
// well lag is predicted. A 100 µs wheel puts the tick well under
// typical OS wakeup lag, so the EWMA compensation (which aims in whole
// wall time, then floors to the tick) has the resolution to actually
// land timers at their requested instants.
const JitterCompTick = 100 * time.Microsecond

// Config parameterizes a Server. The zero value is not valid; use the
// documented defaults.
type Config struct {
	// Scale is the time compression: simulated seconds per wall second.
	Scale float64

	// Disks is the number of disk shards to serve from (>= 1). The
	// catalog holds 6 titles per disk, as the demo library always has.
	Disks int

	// Seed feeds the disks' rotational-delay streams; loopback tests
	// pin it for reproducible runs. 0 means seed 1.
	Seed int64

	// Cluster, when >= 2, serves from a routed fleet of that many
	// single-server engines (internal/cluster) instead of one: Disks
	// becomes the per-server disk count, the catalog is laid out by the
	// replicated placement policy (the hot quarter gets one copy per
	// server), and each connection is steered by the admission router
	// to a server+disk with a replica and headroom. Mutually exclusive
	// with Share (the sharing layer fronts a single engine).
	Cluster int

	// Share enables the stream-sharing front end (internal/share): hot
	// titles' prefixes are pinned in pool memory and concurrent viewers
	// of one title merge onto one disk stream.
	Share bool

	// ShareWindow is the sharing layer's prefix/join window in engine
	// seconds (0 = the layer's default of one minute).
	ShareWindow si.Seconds

	// ShareCacheBudget caps the pinned prefix memory in bits (0 = pin
	// every title's prefix; negative = pin nothing, batching only).
	ShareCacheBudget si.Bits

	// JitterComp enables the jitter-compensating deadline scheduler:
	// the server runs on a fine-tick (JitterCompTick) wall clock whose
	// shards each track an EWMA of their observed timer lag and aim
	// subsequent timers early by a guard band of twice that (see
	// engine.WallClock.SetJitterComp), and the engines judge underruns
	// with the model's millisecond grace measured in wall time (see
	// serveTolerance). Together these stop OS scheduling latency from
	// masquerading as model underruns at high Scale.
	JitterComp bool

	// JitterCompMax caps how early compensation may fire a timer
	// (0 = DefaultJitterCompMax). Only meaningful with JitterComp.
	JitterCompMax time.Duration

	// Ladder gives every demo title a bitrate ladder (1.5/1.0/0.5 Mbps)
	// and builds the engines' per-rate sizing tables; WATCH sessions
	// request the top rung. The stats line grows the QoE fields
	// (downgrades, starved_streams, starvation_prob, rung_served).
	Ladder bool

	// Downgrade enables downgrading admission: a saturated disk steps an
	// arrival down its title's ladder instead of replying BUSY. Requires
	// Ladder.
	Downgrade bool

	// Adapt enables mid-stream bitrate adaptation (the buffer-occupancy
	// rate map, engine.AdaptConfig): in-service streams shed a rung when
	// their buffer slack falls inside the reservoir and climb back on
	// sustained headroom. The stats line grows the switches_up /
	// switches_down / rung_ms fields. Requires Ladder; mutually
	// exclusive with Share (the sharing layer batches viewers onto one
	// stream, which a per-viewer rate switch would split). Pair with
	// JitterComp at high Scale: the reservoir is judged with the same
	// wall-scaled grace as underruns, and without it OS timer wobble
	// reads as buffer distress and sheds rate spuriously (SERVING.md,
	// tuning notes).
	Adapt bool

	// AdaptReservoir overrides the rate map's down-switch threshold in
	// worst-case service times (0 = the engine default of 0.25). Only
	// meaningful with Adapt.
	AdaptReservoir float64
}

// ServeLadder is the demo catalog's bitrate ladder in ladder mode: the
// paper's MPEG-1 rate on top, with 1.0 and 0.5 Mbps downgrade rungs.
func ServeLadder() []si.BitRate {
	return []si.BitRate{si.Mbps(1.5), si.Mbps(1.0), si.Mbps(0.5)}
}

// Server is the live driver: an engine System under a sharded WallClock
// plus one shard of viewer registry per disk. Nothing here is guarded
// by a global lock — session state lives in the owning shard (guarded
// by that shard's clock lock), IDs come from an atomic counter, and
// tallies live in the metrics collector's per-disk atomic cells.
type Server struct {
	clock *engine.WallClock
	sys   *engine.System
	lib   *catalog.Library
	cr    vod.BitRate
	live  *livemetrics.Collector
	share *share.Layer     // nil unless Config.Share
	fleet *cluster.Cluster // nil unless Config.Cluster >= 2
	rt    *cluster.Router  // the fleet's admission router

	engine.NopObserver // the server observes only what it overrides

	ladder   bool // demo titles carry the ServeLadder bitrate ladder
	nextID   atomic.Int64
	shards   []*shard
	sessions sessionPool // recycled viewer sessions (session.go)
	conns    connPool    // recycled per-connection state (wire.go)
}

// shard is one disk's slice of the driver: the engine disk, the
// wall-clock shard that drives it, and the sessions it serves. The
// sessions map is engine state — read and written only under the
// shard's clock lock (inside clock.Do or inside Observer callbacks,
// which the shard serializes) — and holds generation-checked handles
// into the session pool, so an entry can never outlive its viewer. Two
// shards never touch each other's state, so the serving path has no
// cross-disk contention.
type shard struct {
	disk     *engine.Disk
	sys      *engine.System
	global   int // fleet-global disk index (== disk.ID() single-server)
	clock    *engine.WallShard
	sessions map[int]sessionRef
}

// New builds a server: the paper's disk and rate environment, a demo
// catalog of 6 titles per disk, and the dynamic scheme under a
// Round-Robin scheduler on a sharded wall clock.
func New(cfg Config) (*Server, error) {
	if cfg.Disks < 1 {
		return nil, fmt.Errorf("serve: need at least 1 disk, got %d", cfg.Disks)
	}
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("serve: need a positive time scale, got %g", cfg.Scale)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Cluster >= 2 {
		if cfg.Share {
			return nil, fmt.Errorf("serve: cluster mode and the sharing front end are mutually exclusive")
		}
		return newFleet(cfg)
	}
	if cfg.Cluster < 0 {
		return nil, fmt.Errorf("serve: negative cluster size %d", cfg.Cluster)
	}
	if cfg.Downgrade && !cfg.Ladder {
		return nil, fmt.Errorf("serve: downgrading admission requires the ladder catalog")
	}
	if cfg.Adapt && !cfg.Ladder {
		return nil, fmt.Errorf("serve: mid-stream adaptation requires the ladder catalog")
	}
	if cfg.Adapt && cfg.Share {
		return nil, fmt.Errorf("serve: mid-stream adaptation and the sharing front end are mutually exclusive")
	}
	spec, cr, _ := vod.PaperEnvironment()
	lib, err := catalog.New(catalog.Config{
		Titles: 6 * cfg.Disks, Disks: cfg.Disks, Spec: spec, PopularityTheta: 0.271,
		Video: ladderVideo(cfg),
	})
	if err != nil {
		return nil, err
	}
	srv := &Server{
		clock: newServeClock(cfg),
		lib:   lib,
		cr:    cr,
		live:  livemetrics.NewCollector(cfg.Disks),
	}
	if cfg.Ladder {
		srv.ladder = true
		srv.live.SetRungOf(lib.RungOf)
	}
	sys, err := engine.New(engine.Config{
		Clock:             srv.clock,
		Allocator:         engine.DynamicAllocator{},
		Method:            vod.NewMethod(vod.RoundRobin),
		Spec:              spec,
		CR:                cr,
		Rates:             ladderRates(cfg, lib),
		Downgrade:         cfg.Downgrade,
		Adapt:             adaptConfig(cfg),
		Alpha:             1,
		TLog:              vod.Minutes(40),
		Library:           lib,
		Seed:              cfg.Seed,
		UnderrunTolerance: serveTolerance(cfg),
		// The collector runs first so its counters are stamped before
		// the relay reacts to the same event.
		Observer: engine.Observers{srv.live, srv},
	})
	if err != nil {
		return nil, err
	}
	srv.sys = sys
	if cfg.Share {
		// The layer fronts arrivals and fans fills out per viewer; the
		// server handles viewers through share.Events instead of the
		// engine callbacks (which it then leaves to the layer), and the
		// collector picks up the sharing tallies as share.Observer.
		srv.share, err = share.New(share.Config{
			System:  sys,
			Library: lib,
			CR:      cr,
			Options: share.Options{
				Window:      cfg.ShareWindow,
				CacheBudget: cfg.ShareCacheBudget,
				Events:      srv,
				Observer:    srv.live,
			},
		})
		if err != nil {
			return nil, err
		}
	}
	for d := 0; d < cfg.Disks; d++ {
		srv.shards = append(srv.shards, &shard{
			disk:     sys.Disk(d),
			sys:      sys,
			global:   d,
			clock:    srv.clock.Shard(d),
			sessions: make(map[int]sessionRef),
		})
	}
	return srv, nil
}

// adaptConfig maps the server knobs to the engine's adaptation config:
// nil (adaptation off) unless Config.Adapt.
func adaptConfig(cfg Config) *engine.AdaptConfig {
	if !cfg.Adapt {
		return nil
	}
	return &engine.AdaptConfig{Reservoir: cfg.AdaptReservoir}
}

// ladderVideo returns the demo catalog's title factory: nil (the plain
// MPEG-1 default) unless ladder mode decorates every title with the
// ServeLadder rungs.
func ladderVideo(cfg Config) func(id int) catalog.Video {
	if !cfg.Ladder {
		return nil
	}
	return func(id int) catalog.Video {
		v := catalog.MPEG1Video(id)
		v.Ladder = ServeLadder()
		return v
	}
}

// ladderRates returns the per-stream rate set the engines must size for:
// nil (uniform mode) unless ladder mode, where it is the library's rung
// union.
func ladderRates(cfg Config, lib *catalog.Library) []si.BitRate {
	if !cfg.Ladder {
		return nil
	}
	return lib.Rates()
}

// newServeClock builds the server's wall clock per Config: the default
// millisecond wheel, or — with JitterComp on — the fine JitterCompTick
// wheel with lag compensation armed. The two come as a pair: without
// compensation a fine wheel still fires late (OS wakeup lag spans many
// ticks), and without a fine wheel compensation has nothing to aim with
// (every hop rounds up to a full coarse tick anyway).
func newServeClock(cfg Config) *engine.WallClock {
	if !cfg.JitterComp {
		return engine.NewWallClock(cfg.Scale)
	}
	clock := engine.NewWallClockTick(cfg.Scale, JitterCompTick)
	max := cfg.JitterCompMax
	if max <= 0 {
		max = DefaultJitterCompMax
	}
	clock.SetJitterComp(max)
	return clock
}

// serveTolerance is the engines' underrun grace per Config. The model
// judges a refill "hand-to-mouth, not starvation" when it lands within
// a millisecond of the buffer's zero crossing — a viewer-imperceptible
// slip. With JitterComp on, the serving path keeps that judgment in the
// viewer's (wall) time frame under compression: the grace is the model
// millisecond times Scale, i.e. still one wall millisecond. Without the
// flag the engine default stands — one *engine* millisecond, which at
// -scale 1200 demands sub-microsecond wall precision and so charges
// every OS scheduling wobble to the paper's model (the PR 7 behavior,
// kept as the uncompensated baseline).
func serveTolerance(cfg Config) si.Seconds {
	if !cfg.JitterComp {
		return 0
	}
	return buffer.UnderrunTolerance * si.Seconds(cfg.Scale)
}

// newFleet builds the cluster-mode server: Config.Cluster single-server
// engines of Config.Disks disks each, composed by internal/cluster over
// one globally-sharded wall clock. The catalog is laid out by the
// replicated policy — the hottest quarter gets one copy per server, the
// tail a failover twin, spread across servers so the router's steering
// has somewhere to go — and is sized for that replication: a demo disk
// holds 6 copies of the 1.35 GB title, so the title count targets ~4.5
// copies per disk, leaving the placement policy packing slack.
func newFleet(cfg Config) (*Server, error) {
	spec, cr, _ := vod.PaperEnvironment()
	servers, disksPer := cfg.Cluster, cfg.Disks
	disks := servers * disksPer
	cold := min(2, servers)
	copiesPerTitle := float64(servers+3*cold) / 4 // hot quarter × servers, rest × cold
	titles := int(4.5 * float64(disks) / copiesPerTitle)
	srv := &Server{
		clock:  newServeClock(cfg),
		cr:     cr,
		live:   livemetrics.NewCollector(disks),
		ladder: cfg.Ladder,
	}
	var rates []si.BitRate
	if cfg.Ladder {
		rates = ServeLadder()
	}
	fleet, err := cluster.New(cluster.Config{
		Servers:         servers,
		DisksPerServer:  disksPer,
		Titles:          titles,
		Video:           ladderVideo(cfg),
		PopularityTheta: 0.271,
		Policy: catalog.Replicated{
			Base:       catalog.LeastLoaded{},
			HotTitles:  titles / 4,
			Copies:     servers,
			ColdCopies: cold,
			GroupSize:  disksPer,
		},
		Engine: engine.Config{
			Clock:             srv.clock,
			Allocator:         engine.DynamicAllocator{},
			Method:            vod.NewMethod(vod.RoundRobin),
			Spec:              spec,
			CR:                cr,
			Rates:             rates,
			Downgrade:         cfg.Downgrade,
			Adapt:             adaptConfig(cfg),
			Alpha:             1,
			TLog:              vod.Minutes(40),
			Seed:              cfg.Seed,
			UnderrunTolerance: serveTolerance(cfg),
			// Live connections arrive as fast as clients dial: the
			// ramp-hardened enforcement variants keep the sizing
			// guarantee honest under that churn (see internal/scale).
			ChurnSafeAdmission:    true,
			DeadlineAwareBubbleUp: true,
			RampAwarePlanning:     true,
		},
		// The collector runs first so its counters are stamped before
		// the relay reacts to the same event; both see fleet-global
		// disk indices.
		Observer: func(s int) engine.Observer {
			return offsetObserver{o: engine.Observers{srv.live, srv}, off: s * disksPer}
		},
	})
	if err != nil {
		return nil, err
	}
	srv.fleet = fleet
	srv.rt = fleet.Router()
	srv.lib = fleet.Library()
	if cfg.Ladder {
		srv.live.SetRungOf(srv.lib.RungOf)
	}
	for g := 0; g < disks; g++ {
		srv.shards = append(srv.shards, &shard{
			disk:     fleet.System(g / disksPer).Disk(g % disksPer),
			sys:      fleet.System(g / disksPer),
			global:   g,
			clock:    srv.clock.Shard(g),
			sessions: make(map[int]sessionRef),
		})
	}
	return srv, nil
}

// offsetObserver maps one fleet server's engine callbacks (server-local
// disk indices) onto the fleet-global disk numbering the serving path
// and the metrics collector are indexed by.
type offsetObserver struct {
	o   engine.Observer
	off int
}

func (r offsetObserver) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	r.o.OnAdmit(r.off+disk, st, now)
}
func (r offsetObserver) OnDefer(disk int, now si.Seconds) { r.o.OnDefer(r.off+disk, now) }
func (r offsetObserver) OnReject(disk int, req workload.Request, reason engine.RejectReason, now si.Seconds) {
	r.o.OnReject(r.off+disk, req, reason, now)
}
func (r offsetObserver) OnFill(disk int, st *engine.Stream, start, dur si.Seconds, fill si.Bits, deadline si.Seconds) {
	r.o.OnFill(r.off+disk, st, start, dur, fill, deadline)
}
func (r offsetObserver) OnFillComplete(disk int, st *engine.Stream, fill si.Bits, now si.Seconds) {
	r.o.OnFillComplete(r.off+disk, st, fill, now)
}
func (r offsetObserver) OnStart(disk int, st *engine.Stream, now si.Seconds) {
	r.o.OnStart(r.off+disk, st, now)
}
func (r offsetObserver) OnStall(disk int, now si.Seconds) { r.o.OnStall(r.off+disk, now) }
func (r offsetObserver) OnEstimate(disk int, kc int, size si.Bits, now si.Seconds) {
	r.o.OnEstimate(r.off+disk, kc, size, now)
}
func (r offsetObserver) OnEstimateResolved(disk int, hit bool, now si.Seconds) {
	r.o.OnEstimateResolved(r.off+disk, hit, now)
}
func (r offsetObserver) OnUnderrun(disk int, id int, now, gap si.Seconds) {
	r.o.OnUnderrun(r.off+disk, id, now, gap)
}
func (r offsetObserver) OnDowngrade(disk int, req workload.Request, from, to si.BitRate, now si.Seconds) {
	r.o.OnDowngrade(r.off+disk, req, from, to, now)
}
func (r offsetObserver) OnRateSwitch(disk int, st *engine.Stream, from, to si.BitRate, now si.Seconds) {
	r.o.OnRateSwitch(r.off+disk, st, from, to, now)
}
func (r offsetObserver) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	r.o.OnDepart(r.off+disk, st, now)
}

// Clock exposes the server's wall clock (for time-scale math in
// drivers and tests).
func (srv *Server) Clock() *engine.WallClock { return srv.clock }

// CR reports the streams' consumption rate.
func (srv *Server) CR() vod.BitRate { return srv.cr }

// Metrics exposes the live collector; its Snapshot is the stats dump.
func (srv *Server) Metrics() *livemetrics.Collector { return srv.live }

// Stop halts the wall clock's shard drivers. The server must not be
// serving connections when stopped.
func (srv *Server) Stop() { srv.clock.Stop() }

// OnAdmit resolves the viewer's admission wait. Shard lock held. Under
// sharing, engine streams are shared and the layer's ViewerAdmitted is
// the per-viewer event instead. (A missed map lookup yields the zero
// sessionRef, whose methods no-op — likewise below.)
func (srv *Server) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	if srv.share != nil {
		return
	}
	srv.shards[disk].sessions[st.ID()].decide(true)
}

// OnReject resolves the viewer's admission wait negatively. Shard lock
// held.
func (srv *Server) OnReject(disk int, req workload.Request, reason engine.RejectReason, now si.Seconds) {
	if srv.share != nil {
		return
	}
	srv.shards[disk].sessions[req.ID].decide(false)
}

// OnFillComplete ships a landed fill to the viewer: the frame carries
// the integral bytes newly available, by cumulative flooring so the
// total delivered equals the content length exactly. Shard lock held.
func (srv *Server) OnFillComplete(disk int, st *engine.Stream, fill si.Bits, now si.Seconds) {
	if srv.share != nil {
		return
	}
	complete := st.Delivered() >= st.Required()
	total := int64(st.Delivered().Bytes())
	if complete {
		total = int64(st.Required().Bytes())
	}
	srv.shards[disk].sessions[st.ID()].deliver(total, complete)
}

// OnDepart finishes the viewer's stream. Under a wall clock, fill
// timers accumulate jitter while the single departure timer does not,
// so a departing stream may still owe a tail of content; flush it here
// so the client always receives exactly the requested length. Shard
// lock held.
func (srv *Server) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	if srv.share != nil {
		return
	}
	srv.shards[disk].sessions[st.ID()].deliver(int64(st.Required().Bytes()), true)
}

// ViewerAdmitted resolves a sharing viewer's admission wait
// (share.Events). Shard lock held.
func (srv *Server) ViewerAdmitted(v *share.Viewer, now si.Seconds) {
	srv.shards[v.Disk()].sessions[v.ID()].decide(true)
}

// ViewerRejected resolves a sharing viewer's admission wait negatively
// (share.Events). Shard lock held.
func (srv *Server) ViewerRejected(v *share.Viewer, now si.Seconds) {
	srv.shards[v.Disk()].sessions[v.ID()].decide(false)
}

// ViewerData ships a sharing viewer's delivery growth, with the same
// cumulative flooring as the unshared fill path (share.Events). Shard
// lock held.
func (srv *Server) ViewerData(v *share.Viewer, total si.Bits, now si.Seconds) {
	t := int64(total.Bytes())
	if total >= v.Required() {
		t = int64(v.Required().Bytes())
	}
	srv.shards[v.Disk()].sessions[v.ID()].deliver(t, false)
}

// ViewerDone closes a sharing viewer's delivery, flushing any tail so
// the client always receives exactly the requested length
// (share.Events). Shard lock held.
func (srv *Server) ViewerDone(v *share.Viewer, now si.Seconds) {
	srv.shards[v.Disk()].sessions[v.ID()].deliver(int64(v.Required().Bytes()), true)
}

// Serve accepts and handles connections until the listener closes.
func (srv *Server) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go srv.handle(conn)
	}
}

// handle runs one connection's command loop: each WATCH is one viewing
// relayed to completion, after which the next request line is read —
// clients amortize the dial (and the server its pooled state) over as
// many viewings as they like. STATS and malformed lines end the
// connection; so does any write error, since a peer that stopped
// reading has no more use for the session.
func (srv *Server) handle(conn net.Conn) {
	defer conn.Close()
	c := srv.conns.acquire(conn)
	defer srv.conns.release(c)
	for {
		line, err := c.r.ReadSlice('\n')
		if err != nil {
			return // EOF (client done), dead peer, or an absurdly long line
		}
		cmd, err := ParseCommandBytes(line)
		if err != nil {
			c.w.reply(replyErr)
			return
		}
		if cmd.Kind == CmdStats {
			json.NewEncoder(conn).Encode(srv.Stats())
			return
		}
		if !srv.watch(c, cmd) {
			return
		}
	}
}

// watch runs one viewing on the connection: route to a shard, feed the
// engine an arrival, await its admission decision, then relay completed
// fills as frames. It reports whether the connection is healthy for
// another command. The whole path reuses pooled state — the session,
// its clock.Do closures, the wire encoder, the patience timer — so a
// steady-state viewing allocates nothing.
func (srv *Server) watch(c *connState, cmd Command) bool {
	// Route the session to the disk shard holding its title: IDs come
	// from the global atomic counter, everything else happens on the
	// owning shard under its own lock. A client that names a title gets
	// it (modulo the catalog — that is what lets loopback drivers herd
	// viewers onto hot titles); one that does not is spread round-robin.
	id := int(srv.nextID.Add(1))
	video := id % srv.lib.Len()
	if cmd.Title >= 0 {
		video = cmd.Title % srv.lib.Len()
	}
	// In cluster mode the admission router picks the server+disk (a
	// replica with committed headroom, primary first); single-server,
	// the catalog's placement names the one shard holding the title.
	var sh *shard
	if srv.fleet != nil {
		t, ok := srv.rt.Route(video)
		if !ok {
			return c.w.reply(replyBusy) == nil // every replica at the knee cap
		}
		sh = srv.shards[t.Global]
	} else {
		sh = srv.shards[srv.lib.Placement(video).Disk]
	}
	sess := srv.sessions.acquire()
	sess.srv, sess.sh = srv, sh
	sess.id, sess.video, sess.viewing = id, video, si.Seconds(cmd.Seconds)
	sess.rate = 0
	if srv.ladder {
		// Viewers ask for full quality; downgrading admission may step
		// the delivered rung below it.
		sess.rate = srv.lib.Video(video).Rate
	}
	sh.clock.Do(sess.submitFn)
	defer func() {
		// Withdraw/unregister (no-ops once delivery completed), then
		// recycle: after detachFn no observer can reach the session, and
		// release's generation bump retires any handle still out there.
		sh.clock.Do(sess.detachFn)
		srv.sessions.release(sess)
	}()

	// Await the engine's admission decision with bounded patience:
	// Fig. 5 defers violating arrivals; a real frontend gives up
	// eventually. The pooled timer is parked (stopped and drained)
	// outside this window.
	admitted := false
	c.patience.Reset(srv.clock.WallDuration(Patience))
	select {
	case admitted = <-sess.decided:
		if !c.patience.Stop() {
			<-c.patience.C
		}
	case <-c.patience.C:
		// Under the shard lock, take a decision that raced the timer or
		// withdraw from the deferral queue.
		sh.clock.Do(sess.timeoutFn)
		admitted = sess.lateDecision
	}
	if !admitted {
		return c.w.reply(replyBusy) == nil
	}
	if c.w.ok(id) != nil {
		return false
	}

	// Relay loop: ship each completed fill as one vectored frame. Pacing
	// comes from the engine — fills land when its scheduler runs them on
	// the scaled wall clock — so delivery never runs ahead of the
	// modelled buffer.
	for {
		sess.mu.Lock()
		for len(sess.pending) == 0 && !sess.done {
			sess.mu.Unlock()
			<-sess.notify
			sess.mu.Lock()
		}
		// Swap the double buffer: the observer side keeps appending into
		// pending (reusing the other slice's capacity next swap) while
		// the writer drains batch outside the lock.
		sess.pending, sess.batch = sess.batch[:0], sess.pending
		done := sess.done
		sess.mu.Unlock()

		for _, n := range sess.batch {
			if c.w.frame(n) != nil {
				return false
			}
		}
		if done {
			// The zero-length end-of-stream frame. A failed write means a
			// dead peer: report it so the session tears down instead of
			// the connection lingering.
			return c.w.frame(0) == nil
		}
	}
}

// Counters is the engine-side accounting a stats line or selftest
// summary reports alongside the collector's tallies.
type Counters struct {
	Admitted, Deferred, Rejected, Departed int
	InService, Book                        int
	Underruns                              int
}

// Counters snapshots the admission tallies and the engine's live state.
// Tallies merge lock-free from the collector's per-disk cells; the
// engine reads take each shard's lock in turn, never more than one at
// a time.
func (srv *Server) Counters() Counters {
	var c Counters
	for i, sh := range srv.shards {
		d := srv.live.Disk(i)
		c.Admitted += int(d.Admitted.Load())
		c.Deferred += int(d.Deferred.Load())
		c.Rejected += int(d.Rejected.Load())
		c.Departed += int(d.Departed.Load())
		c.Underruns += int(d.Underruns.Load())
		sh.clock.Do(func() {
			c.InService += sh.disk.InService()
			c.Book += sh.disk.BookLen()
		})
	}
	return c
}

// Stats is one JSON stats line: engine time and live occupancy wrapped
// around the collector's snapshot. SERVING.md documents every field.
type Stats struct {
	// EngineNowS is the engine clock in simulated seconds.
	EngineNowS float64 `json:"engine_now_s"`
	// InService counts streams currently holding a buffer.
	InService int `json:"in_service"`
	// Book counts admission-book entries (in service + committed).
	Book int `json:"book"`
	// Router, in cluster mode, snapshots the fleet's admission router:
	// routed/failover/rejected tallies, the per-disk knee cap, and the
	// live committed count per global disk.
	Router *cluster.RouterStats `json:"router,omitempty"`
	livemetrics.Snapshot
}

// Stats snapshots the server for one stats line. Reporting path: it
// takes each shard's lock briefly and allocates.
func (srv *Server) Stats() Stats {
	s := Stats{EngineNowS: float64(srv.clock.Now())}
	if srv.rt != nil {
		rs := srv.rt.Stats()
		s.Router = &rs
	}
	for i, sh := range srv.shards {
		sh.clock.Do(func() {
			s.InService += sh.disk.InService()
			s.Book += sh.disk.BookLen()
		})
		// Sample the shard's live jitter compensation into its gauge so
		// the snapshot's jitter_comp_ms reflects this instant.
		srv.live.Disk(i).JitterCompMicros.Store(int64(sh.clock.Compensation() / time.Microsecond))
	}
	s.Snapshot = srv.live.Snapshot()
	return s
}

// StatsEvery writes one JSON stats line to w every interval until the
// returned stop function is called.
func (srv *Server) StatsEvery(interval time.Duration, w io.Writer) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		enc := json.NewEncoder(w)
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				enc.Encode(srv.Stats())
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
