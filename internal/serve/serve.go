// Package serve is the live serving path: a miniature VOD server over
// TCP driven by the shared streaming runtime in internal/engine. The
// same admission, allocation, and scheduling code the simulator
// validates paces real deliveries here under a scaled wall clock. The
// server itself owns no buffer-sizing or admission logic — it is a
// driver: it translates TCP connections into engine arrivals and engine
// fill completions into frames on the wire.
//
// The server is sharded per disk, mirroring the paper's per-disk
// service model: every disk runs on its own WallClock shard (its own
// lock, timer wheel, and driver goroutine), sessions are routed to the
// shard holding their title by the catalog's placement, and live
// tallies merge across shards through internal/livemetrics' lock-free
// per-disk counters — no global lock anywhere on the serving path.
//
// Protocol: the client sends one line. "WATCH <seconds>\n" requests a
// viewing; the server answers "OK <id>\n" (admitted) or "BUSY\n"
// (rejected, or deferred past patience) and then streams
// length-prefixed frames ([4-byte big-endian length][bytes]) until the
// requested content has been delivered, closing with a zero-length
// frame. "STATS\n" instead dumps one JSON stats line (see Stats) and
// closes. SERVING.md documents the protocol and every stats field.
//
// cmd/vodserver is the thin binary over this package; internal/bench's
// loopback cases drive it in-process.
package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	vod "repro"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/livemetrics"
	"repro/internal/share"
	"repro/internal/si"
	"repro/internal/workload"
)

// Patience bounds how long an arrival may sit in the deferral queue
// before the frontend gives up, in engine seconds. It matches the old
// hand-rolled server's 100 one-second retries.
const Patience = si.Seconds(100)

// Config parameterizes a Server. The zero value is not valid; use the
// documented defaults.
type Config struct {
	// Scale is the time compression: simulated seconds per wall second.
	Scale float64

	// Disks is the number of disk shards to serve from (>= 1). The
	// catalog holds 6 titles per disk, as the demo library always has.
	Disks int

	// Seed feeds the disks' rotational-delay streams; loopback tests
	// pin it for reproducible runs. 0 means seed 1.
	Seed int64

	// Cluster, when >= 2, serves from a routed fleet of that many
	// single-server engines (internal/cluster) instead of one: Disks
	// becomes the per-server disk count, the catalog is laid out by the
	// replicated placement policy (the hot quarter gets one copy per
	// server), and each connection is steered by the admission router
	// to a server+disk with a replica and headroom. Mutually exclusive
	// with Share (the sharing layer fronts a single engine).
	Cluster int

	// Share enables the stream-sharing front end (internal/share): hot
	// titles' prefixes are pinned in pool memory and concurrent viewers
	// of one title merge onto one disk stream.
	Share bool

	// ShareWindow is the sharing layer's prefix/join window in engine
	// seconds (0 = the layer's default of one minute).
	ShareWindow si.Seconds

	// ShareCacheBudget caps the pinned prefix memory in bits (0 = pin
	// every title's prefix; negative = pin nothing, batching only).
	ShareCacheBudget si.Bits
}

// Server is the live driver: an engine System under a sharded WallClock
// plus one shard of viewer registry per disk. Nothing here is guarded
// by a global lock — session state lives in the owning shard (guarded
// by that shard's clock lock), IDs come from an atomic counter, and
// tallies live in the metrics collector's per-disk atomic cells.
type Server struct {
	clock *engine.WallClock
	sys   *engine.System
	lib   *catalog.Library
	cr    vod.BitRate
	live  *livemetrics.Collector
	share *share.Layer     // nil unless Config.Share
	fleet *cluster.Cluster // nil unless Config.Cluster >= 2
	rt    *cluster.Router  // the fleet's admission router

	engine.NopObserver // the server observes only what it overrides

	nextID atomic.Int64
	shards []*shard
}

// shard is one disk's slice of the driver: the engine disk, the
// wall-clock shard that drives it, and the sessions it serves. The
// sessions map is engine state — read and written only under the
// shard's clock lock (inside clock.Do or inside Observer callbacks,
// which the shard serializes). Two shards never touch each other's
// state, so the serving path has no cross-disk contention.
type shard struct {
	disk     *engine.Disk
	sys      *engine.System
	global   int // fleet-global disk index (== disk.ID() single-server)
	clock    *engine.WallShard
	sessions map[int]*session
}

// session is one connected viewer. The observer side (engine lock)
// pushes completed fills; the connection goroutine pops and ships them.
// The two sides share only the small mu-guarded queue, so observer
// callbacks never block on the network.
type session struct {
	id      int
	decided chan bool // admission outcome, buffered

	mu      sync.Mutex
	pending []int64       // frame sizes (bytes) ready to ship
	done    bool          // all content delivered (or the stream departed)
	notify  chan struct{} // buffered kick for the writer

	sent int64 // cumulative bytes handed to the writer (engine lock side)
}

// push queues n bytes for the writer (engine lock held by the caller).
func (s *session) push(n int64, done bool) {
	s.mu.Lock()
	if n > 0 {
		s.pending = append(s.pending, n)
	}
	if done {
		s.done = true
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// New builds a server: the paper's disk and rate environment, a demo
// catalog of 6 titles per disk, and the dynamic scheme under a
// Round-Robin scheduler on a sharded wall clock.
func New(cfg Config) (*Server, error) {
	if cfg.Disks < 1 {
		return nil, fmt.Errorf("serve: need at least 1 disk, got %d", cfg.Disks)
	}
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("serve: need a positive time scale, got %g", cfg.Scale)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Cluster >= 2 {
		if cfg.Share {
			return nil, fmt.Errorf("serve: cluster mode and the sharing front end are mutually exclusive")
		}
		return newFleet(cfg)
	}
	if cfg.Cluster < 0 {
		return nil, fmt.Errorf("serve: negative cluster size %d", cfg.Cluster)
	}
	spec, cr, _ := vod.PaperEnvironment()
	lib, err := catalog.New(catalog.Config{
		Titles: 6 * cfg.Disks, Disks: cfg.Disks, Spec: spec, PopularityTheta: 0.271,
	})
	if err != nil {
		return nil, err
	}
	srv := &Server{
		clock: engine.NewWallClock(cfg.Scale),
		lib:   lib,
		cr:    cr,
		live:  livemetrics.NewCollector(cfg.Disks),
	}
	sys, err := engine.New(engine.Config{
		Clock:     srv.clock,
		Allocator: engine.DynamicAllocator{},
		Method:    vod.NewMethod(vod.RoundRobin),
		Spec:      spec,
		CR:        cr,
		Alpha:     1,
		TLog:      vod.Minutes(40),
		Library:   lib,
		Seed:      cfg.Seed,
		// The collector runs first so its counters are stamped before
		// the relay reacts to the same event.
		Observer: engine.Observers{srv.live, srv},
	})
	if err != nil {
		return nil, err
	}
	srv.sys = sys
	if cfg.Share {
		// The layer fronts arrivals and fans fills out per viewer; the
		// server handles viewers through share.Events instead of the
		// engine callbacks (which it then leaves to the layer), and the
		// collector picks up the sharing tallies as share.Observer.
		srv.share, err = share.New(share.Config{
			System:  sys,
			Library: lib,
			CR:      cr,
			Options: share.Options{
				Window:      cfg.ShareWindow,
				CacheBudget: cfg.ShareCacheBudget,
				Events:      srv,
				Observer:    srv.live,
			},
		})
		if err != nil {
			return nil, err
		}
	}
	for d := 0; d < cfg.Disks; d++ {
		srv.shards = append(srv.shards, &shard{
			disk:     sys.Disk(d),
			sys:      sys,
			global:   d,
			clock:    srv.clock.Shard(d),
			sessions: make(map[int]*session),
		})
	}
	return srv, nil
}

// newFleet builds the cluster-mode server: Config.Cluster single-server
// engines of Config.Disks disks each, composed by internal/cluster over
// one globally-sharded wall clock. The catalog is laid out by the
// replicated policy — the hottest quarter gets one copy per server, the
// tail a failover twin, spread across servers so the router's steering
// has somewhere to go — and is sized for that replication: a demo disk
// holds 6 copies of the 1.35 GB title, so the title count targets ~4.5
// copies per disk, leaving the placement policy packing slack.
func newFleet(cfg Config) (*Server, error) {
	spec, cr, _ := vod.PaperEnvironment()
	servers, disksPer := cfg.Cluster, cfg.Disks
	disks := servers * disksPer
	cold := min(2, servers)
	copiesPerTitle := float64(servers+3*cold) / 4 // hot quarter × servers, rest × cold
	titles := int(4.5 * float64(disks) / copiesPerTitle)
	srv := &Server{
		clock: engine.NewWallClock(cfg.Scale),
		cr:    cr,
		live:  livemetrics.NewCollector(disks),
	}
	fleet, err := cluster.New(cluster.Config{
		Servers:         servers,
		DisksPerServer:  disksPer,
		Titles:          titles,
		PopularityTheta: 0.271,
		Policy: catalog.Replicated{
			Base:       catalog.LeastLoaded{},
			HotTitles:  titles / 4,
			Copies:     servers,
			ColdCopies: cold,
			GroupSize:  disksPer,
		},
		Engine: engine.Config{
			Clock:     srv.clock,
			Allocator: engine.DynamicAllocator{},
			Method:    vod.NewMethod(vod.RoundRobin),
			Spec:      spec,
			CR:        cr,
			Alpha:     1,
			TLog:      vod.Minutes(40),
			Seed:      cfg.Seed,
			// Live connections arrive as fast as clients dial: the
			// ramp-hardened enforcement variants keep the sizing
			// guarantee honest under that churn (see internal/scale).
			ChurnSafeAdmission:    true,
			DeadlineAwareBubbleUp: true,
			RampAwarePlanning:     true,
		},
		// The collector runs first so its counters are stamped before
		// the relay reacts to the same event; both see fleet-global
		// disk indices.
		Observer: func(s int) engine.Observer {
			return offsetObserver{o: engine.Observers{srv.live, srv}, off: s * disksPer}
		},
	})
	if err != nil {
		return nil, err
	}
	srv.fleet = fleet
	srv.rt = fleet.Router()
	srv.lib = fleet.Library()
	for g := 0; g < disks; g++ {
		srv.shards = append(srv.shards, &shard{
			disk:     fleet.System(g / disksPer).Disk(g % disksPer),
			sys:      fleet.System(g / disksPer),
			global:   g,
			clock:    srv.clock.Shard(g),
			sessions: make(map[int]*session),
		})
	}
	return srv, nil
}

// offsetObserver maps one fleet server's engine callbacks (server-local
// disk indices) onto the fleet-global disk numbering the serving path
// and the metrics collector are indexed by.
type offsetObserver struct {
	o   engine.Observer
	off int
}

func (r offsetObserver) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	r.o.OnAdmit(r.off+disk, st, now)
}
func (r offsetObserver) OnDefer(disk int, now si.Seconds) { r.o.OnDefer(r.off+disk, now) }
func (r offsetObserver) OnReject(disk int, req workload.Request, reason engine.RejectReason, now si.Seconds) {
	r.o.OnReject(r.off+disk, req, reason, now)
}
func (r offsetObserver) OnFill(disk int, st *engine.Stream, start, dur si.Seconds, fill si.Bits, deadline si.Seconds) {
	r.o.OnFill(r.off+disk, st, start, dur, fill, deadline)
}
func (r offsetObserver) OnFillComplete(disk int, st *engine.Stream, fill si.Bits, now si.Seconds) {
	r.o.OnFillComplete(r.off+disk, st, fill, now)
}
func (r offsetObserver) OnStart(disk int, st *engine.Stream, now si.Seconds) {
	r.o.OnStart(r.off+disk, st, now)
}
func (r offsetObserver) OnStall(disk int, now si.Seconds) { r.o.OnStall(r.off+disk, now) }
func (r offsetObserver) OnEstimate(disk int, kc int, size si.Bits, now si.Seconds) {
	r.o.OnEstimate(r.off+disk, kc, size, now)
}
func (r offsetObserver) OnEstimateResolved(disk int, hit bool, now si.Seconds) {
	r.o.OnEstimateResolved(r.off+disk, hit, now)
}
func (r offsetObserver) OnUnderrun(disk int, now, gap si.Seconds) {
	r.o.OnUnderrun(r.off+disk, now, gap)
}
func (r offsetObserver) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	r.o.OnDepart(r.off+disk, st, now)
}

// Clock exposes the server's wall clock (for time-scale math in
// drivers and tests).
func (srv *Server) Clock() *engine.WallClock { return srv.clock }

// CR reports the streams' consumption rate.
func (srv *Server) CR() vod.BitRate { return srv.cr }

// Metrics exposes the live collector; its Snapshot is the stats dump.
func (srv *Server) Metrics() *livemetrics.Collector { return srv.live }

// Stop halts the wall clock's shard drivers. The server must not be
// serving connections when stopped.
func (srv *Server) Stop() { srv.clock.Stop() }

// OnAdmit resolves the viewer's admission wait. Shard lock held. Under
// sharing, engine streams are shared and the layer's ViewerAdmitted is
// the per-viewer event instead.
func (srv *Server) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	if srv.share != nil {
		return
	}
	if sess := srv.shards[disk].sessions[st.ID()]; sess != nil {
		sess.decided <- true
	}
}

// OnReject resolves the viewer's admission wait negatively. Shard lock
// held.
func (srv *Server) OnReject(disk int, req workload.Request, reason engine.RejectReason, now si.Seconds) {
	if srv.share != nil {
		return
	}
	if sess := srv.shards[disk].sessions[req.ID]; sess != nil {
		sess.decided <- false
	}
}

// OnFillComplete ships a landed fill to the viewer: the frame carries
// the integral bytes newly available, by cumulative flooring so the
// total delivered equals the content length exactly. Shard lock held.
func (srv *Server) OnFillComplete(disk int, st *engine.Stream, fill si.Bits, now si.Seconds) {
	if srv.share != nil {
		return
	}
	sess := srv.shards[disk].sessions[st.ID()]
	if sess == nil {
		return
	}
	complete := st.Delivered() >= st.Required()
	total := int64(st.Delivered().Bytes())
	if complete {
		total = int64(st.Required().Bytes())
	}
	n := total - sess.sent
	if n > 0 {
		sess.sent += n
	}
	sess.push(n, complete)
}

// OnDepart finishes the viewer's stream. Under a wall clock, fill
// timers accumulate jitter while the single departure timer does not,
// so a departing stream may still owe a tail of content; flush it here
// so the client always receives exactly the requested length. Shard
// lock held.
func (srv *Server) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	if srv.share != nil {
		return
	}
	sh := srv.shards[disk]
	sess := sh.sessions[st.ID()]
	if sess == nil {
		return
	}
	n := int64(st.Required().Bytes()) - sess.sent
	if n > 0 {
		sess.sent += n
	}
	sess.push(n, true)
}

// ViewerAdmitted resolves a sharing viewer's admission wait
// (share.Events). Shard lock held.
func (srv *Server) ViewerAdmitted(v *share.Viewer, now si.Seconds) {
	if sess := srv.shards[v.Disk()].sessions[v.ID()]; sess != nil {
		sess.decided <- true
	}
}

// ViewerRejected resolves a sharing viewer's admission wait negatively
// (share.Events). Shard lock held.
func (srv *Server) ViewerRejected(v *share.Viewer, now si.Seconds) {
	if sess := srv.shards[v.Disk()].sessions[v.ID()]; sess != nil {
		sess.decided <- false
	}
}

// ViewerData ships a sharing viewer's delivery growth, with the same
// cumulative flooring as the unshared fill path (share.Events). Shard
// lock held.
func (srv *Server) ViewerData(v *share.Viewer, total si.Bits, now si.Seconds) {
	sess := srv.shards[v.Disk()].sessions[v.ID()]
	if sess == nil {
		return
	}
	t := int64(total.Bytes())
	if total >= v.Required() {
		t = int64(v.Required().Bytes())
	}
	n := t - sess.sent
	if n > 0 {
		sess.sent += n
	}
	sess.push(n, false)
}

// ViewerDone closes a sharing viewer's delivery, flushing any tail so
// the client always receives exactly the requested length
// (share.Events). Shard lock held.
func (srv *Server) ViewerDone(v *share.Viewer, now si.Seconds) {
	sess := srv.shards[v.Disk()].sessions[v.ID()]
	if sess == nil {
		return
	}
	n := int64(v.Required().Bytes()) - sess.sent
	if n > 0 {
		sess.sent += n
	}
	sess.push(n, true)
}

// Serve accepts and handles connections until the listener closes.
func (srv *Server) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go srv.handle(conn)
	}
}

// handle runs one viewer's session: parse, feed the engine an arrival,
// await its admission decision, then relay completed fills as frames.
func (srv *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	cmd, err := ParseCommand(line)
	if err != nil {
		fmt.Fprintf(conn, "ERR bad request\n")
		return
	}
	if cmd.Kind == CmdStats {
		enc := json.NewEncoder(conn)
		enc.Encode(srv.Stats())
		return
	}

	// Route the session to the disk shard holding its title: IDs come
	// from the global atomic counter, everything else happens on the
	// owning shard under its own lock. A client that names a title gets
	// it (modulo the catalog — that is what lets loopback drivers herd
	// viewers onto hot titles); one that does not is spread round-robin.
	id := int(srv.nextID.Add(1))
	video := id % srv.lib.Len()
	if cmd.Title >= 0 {
		video = cmd.Title % srv.lib.Len()
	}
	// In cluster mode the admission router picks the server+disk (a
	// replica with committed headroom, primary first); single-server,
	// the catalog's placement names the one shard holding the title.
	var sh *shard
	if srv.fleet != nil {
		t, ok := srv.rt.Route(video)
		if !ok {
			fmt.Fprintf(conn, "BUSY\n") // every replica at the knee cap
			return
		}
		sh = srv.shards[t.Global]
	} else {
		sh = srv.shards[srv.lib.Placement(video).Disk]
	}
	sess := &session{
		id:      id,
		decided: make(chan bool, 1),
		notify:  make(chan struct{}, 1),
	}
	sh.clock.Do(func() {
		sh.sessions[id] = sess
		req := workload.Request{
			ID:      id,
			Arrival: srv.clock.Now(),
			Video:   video,
			Disk:    sh.disk.ID(),
			Viewing: si.Seconds(cmd.Seconds),
		}
		if srv.share != nil {
			srv.share.Submit(req)
		} else {
			sh.sys.OnArrival(req)
		}
	})
	defer sh.clock.Do(func() {
		// No-ops once the viewer's delivery has completed. Withdrawing
		// a still-queued arrival fires no engine callback, so the
		// router's booking is returned here (departures and rejections
		// release through the cluster's own observer).
		if srv.share != nil {
			srv.share.Cancel(id, sh.disk.ID())
		} else if sh.disk.Cancel(id) && srv.rt != nil {
			srv.rt.Release(sh.global)
		}
		delete(sh.sessions, id)
	})

	// Await the engine's admission decision with bounded patience:
	// Fig. 5 defers violating arrivals; a real frontend gives up
	// eventually.
	admitted := false
	select {
	case admitted = <-sess.decided:
	case <-time.After(srv.clock.WallDuration(Patience)):
		sh.clock.Do(func() {
			select {
			case admitted = <-sess.decided: // the decision raced the timeout
			default:
				// Withdraw from the deferral queue (and return the
				// router's booking — no callback fires for a queued
				// withdrawal).
				if srv.share != nil {
					srv.share.Cancel(id, sh.disk.ID())
				} else if sh.disk.Cancel(id) && srv.rt != nil {
					srv.rt.Release(sh.global)
				}
			}
		})
	}
	if !admitted {
		fmt.Fprintf(conn, "BUSY\n")
		return
	}
	if _, err := fmt.Fprintf(conn, "OK %d\n", sess.id); err != nil {
		return
	}

	// Relay loop: ship each completed fill as one frame. Pacing comes
	// from the engine — fills land when its scheduler runs them on the
	// scaled wall clock — so delivery never runs ahead of the modelled
	// buffer.
	var frame [4]byte
	payload := make([]byte, 0, 1<<20)
	for {
		sess.mu.Lock()
		for len(sess.pending) == 0 && !sess.done {
			sess.mu.Unlock()
			<-sess.notify
			sess.mu.Lock()
		}
		batch := sess.pending
		sess.pending = nil
		done := sess.done
		sess.mu.Unlock()

		for _, n := range batch {
			if int64(cap(payload)) < n {
				payload = make([]byte, n)
			}
			payload = payload[:n]
			binary.BigEndian.PutUint32(frame[:], uint32(n))
			if _, err := conn.Write(frame[:]); err != nil {
				return
			}
			if _, err := conn.Write(payload); err != nil {
				return
			}
		}
		if done {
			binary.BigEndian.PutUint32(frame[:], 0)
			conn.Write(frame[:])
			return
		}
	}
}

// Counters is the engine-side accounting a stats line or selftest
// summary reports alongside the collector's tallies.
type Counters struct {
	Admitted, Deferred, Rejected, Departed int
	InService, Book                        int
	Underruns                              int
}

// Counters snapshots the admission tallies and the engine's live state.
// Tallies merge lock-free from the collector's per-disk cells; the
// engine reads take each shard's lock in turn, never more than one at
// a time.
func (srv *Server) Counters() Counters {
	var c Counters
	for i, sh := range srv.shards {
		d := srv.live.Disk(i)
		c.Admitted += int(d.Admitted.Load())
		c.Deferred += int(d.Deferred.Load())
		c.Rejected += int(d.Rejected.Load())
		c.Departed += int(d.Departed.Load())
		c.Underruns += int(d.Underruns.Load())
		sh.clock.Do(func() {
			c.InService += sh.disk.InService()
			c.Book += sh.disk.BookLen()
		})
	}
	return c
}

// Stats is one JSON stats line: engine time and live occupancy wrapped
// around the collector's snapshot. SERVING.md documents every field.
type Stats struct {
	// EngineNowS is the engine clock in simulated seconds.
	EngineNowS float64 `json:"engine_now_s"`
	// InService counts streams currently holding a buffer.
	InService int `json:"in_service"`
	// Book counts admission-book entries (in service + committed).
	Book int `json:"book"`
	// Router, in cluster mode, snapshots the fleet's admission router:
	// routed/failover/rejected tallies, the per-disk knee cap, and the
	// live committed count per global disk.
	Router *cluster.RouterStats `json:"router,omitempty"`
	livemetrics.Snapshot
}

// Stats snapshots the server for one stats line. Reporting path: it
// takes each shard's lock briefly and allocates.
func (srv *Server) Stats() Stats {
	s := Stats{EngineNowS: float64(srv.clock.Now())}
	if srv.rt != nil {
		rs := srv.rt.Stats()
		s.Router = &rs
	}
	for _, sh := range srv.shards {
		sh.clock.Do(func() {
			s.InService += sh.disk.InService()
			s.Book += sh.disk.BookLen()
		})
	}
	s.Snapshot = srv.live.Snapshot()
	return s
}

// StatsEvery writes one JSON stats line to w every interval until the
// returned stop function is called.
func (srv *Server) StatsEvery(interval time.Duration, w io.Writer) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		enc := json.NewEncoder(w)
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				enc.Encode(srv.Stats())
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
