// Package buffer implements the shared memory pool of the VOD server
// model (Section 2.1): every request owns one buffer, buffers share the
// server's memory, and memory is released continuously as the stream
// consumes data (the use-it-and-toss-it policy). Allocation is by
// variable-length units, as the paper assumes; page rounding is a
// negligible refinement it explicitly sets aside.
//
// Buffer levels drain linearly at the stream's consumption rate, so the
// pool stores each buffer as (level at last touch, touch time) and
// evaluates lazily. An underrun — the level hitting zero before the next
// fill lands — is the failure the paper's sizing theorems exist to
// prevent; the pool records every underrun and how long the stream
// starved, and the simulation's correctness tests assert the count stays
// zero whenever the inertia assumptions are enforced.
package buffer

import (
	"fmt"

	"repro/internal/si"
)

// Pool is the shared memory of one server. It is not safe for concurrent
// use; in the simulator each pool belongs to one server process.
type Pool struct {
	budget   si.Bits // 0 means unlimited
	page     si.Bits // allocation granularity; 0 means exact (variable length)
	inflight si.Bits // reserved for fills in progress
	pinned   si.Bits // resident outside any stream (prefix cache)
	streams  map[int]*state
	// order lists states in a deterministic order (attach order with
	// swap-removal) so Usage sums floats identically across runs; map
	// iteration order would make high-water marks seed-dependent.
	order      []*state
	underruns  int
	starved    si.Seconds
	highWater  si.Bits
	highAt     si.Seconds
	tol        si.Seconds // underrun grace; 0 means UnderrunTolerance
	onUnderrun func(id int, now, gap si.Seconds)
	// free interns detached state records for reuse: attach/detach is
	// per-request churn (hundreds of streams per simulated hour), and
	// recycling the records keeps a long-running pool's bookkeeping
	// allocation-free in steady state. Bounded by the pool's concurrent
	// high-water stream count.
	free []*state
}

type state struct {
	idx      int // position in Pool.order
	id       int // stream id, for the underrun callback
	rate     si.BitRate
	level    si.Bits
	touched  si.Seconds
	emptyAt  si.Seconds // level's zero crossing if never refilled
	reserved si.Bits    // in-flight fill reservation
	pending  bool       // a fill (possibly zero-sized) is in flight
	started  bool       // first fill has landed; consumption is running
	starving bool       // started but the buffer ran dry
}

// UnderrunTolerance is the grace within which a buffer's zero crossing is
// treated as an exact hand-to-mouth refill rather than starvation. One
// millisecond is far below anything a viewer (or the paper's analysis,
// whose latencies are tens of milliseconds and up) can observe, and far
// above float64 time jitter.
const UnderrunTolerance si.Seconds = 1e-3

// DebugUnderruns, when set, is called on every underrun with the time and
// the starvation gap. Tests and debugging hooks use it; production paths
// leave it nil.
var DebugUnderruns func(now, gap si.Seconds)

// NewPool returns a pool with the given memory budget; budget 0 means
// unlimited (the latency experiments run without a memory constraint).
// Memory is accounted by the exact variable-length unit, the paper's
// simplifying assumption (Section 2.1).
func NewPool(budget si.Bits) *Pool {
	return NewPagedPool(budget, 0)
}

// NewPagedPool returns a pool that accounts memory by whole pages of the
// given size, the way a real server allocates (Section 2.1): each
// buffer's footprint is its content rounded up to pages. The paper argues
// the difference from exact accounting is negligible because pages are
// much smaller than buffers; the ablation experiment measures it.
// A page size of 0 means exact accounting.
func NewPagedPool(budget, page si.Bits) *Pool {
	if budget < 0 {
		panic(fmt.Sprintf("buffer: negative budget %v", budget))
	}
	if page < 0 {
		panic(fmt.Sprintf("buffer: negative page size %v", page))
	}
	return &Pool{budget: budget, page: page, streams: make(map[int]*state)}
}

// footprint rounds a content amount up to the pool's allocation unit.
func (p *Pool) footprint(bits si.Bits) si.Bits {
	if p.page <= 0 || bits <= 0 {
		return bits
	}
	pages := si.Bits(int64((bits + p.page - 1) / p.page))
	return pages * p.page
}

// SetUnderrunFunc installs a per-pool underrun callback, invoked with the
// detection time and the starvation gap on every underrun. Unlike the
// global DebugUnderruns hook, it is owner-scoped: the engine routes it to
// its Observer so live instrumentation never crosses pools.
func (p *Pool) SetUnderrunFunc(fn func(id int, now, gap si.Seconds)) { p.onUnderrun = fn }

// SetUnderrunTolerance overrides the pool's underrun grace (<= 0 restores
// the UnderrunTolerance default). The default is the model's own
// viewer-imperceptible millisecond; a pool paced by a compressed wall
// clock runs with that grace rescaled so it stays a wall millisecond —
// at scale 1200 the default maps to 0.83 wall microseconds, a precision
// no OS timer delivers, and every scheduler wakeup would be charged to
// the paper's model as starvation.
func (p *Pool) SetUnderrunTolerance(tol si.Seconds) {
	if tol <= 0 {
		tol = 0
	}
	p.tol = tol
}

// tolerance reports the pool's effective underrun grace.
func (p *Pool) tolerance() si.Seconds {
	if p.tol > 0 {
		return p.tol
	}
	return UnderrunTolerance
}

// Pin reserves bits of pool memory outside any stream's buffer for the
// pool's lifetime — the sharing layer pins hot titles' prefixes this way,
// so cache residency is charged against the same pool the allocator's
// buffers live in. Pinned memory is rounded up to the pool's allocation
// unit per call and counts toward Usage (and therefore the budget check
// and the high-water mark).
func (p *Pool) Pin(bits si.Bits, now si.Seconds) {
	if bits < 0 {
		panic(fmt.Sprintf("buffer: negative pin %v", bits))
	}
	p.pinned += p.footprint(bits)
	p.note(now)
}

// Pinned reports the pool's pinned memory.
func (p *Pool) Pinned() si.Bits { return p.pinned }

// PageSize reports the allocation granularity (0 = exact).
func (p *Pool) PageSize() si.Bits { return p.page }

// Budget reports the pool's configured budget (0 = unlimited).
func (p *Pool) Budget() si.Bits { return p.budget }

// Attach registers a stream consuming at the given rate. Its buffer starts
// empty and consumption starts at the first fill. Attaching an existing
// id panics: stream ids are unique for a request's lifetime.
func (p *Pool) Attach(id int, rate si.BitRate, now si.Seconds) {
	if rate <= 0 {
		panic(fmt.Sprintf("buffer: stream %d with non-positive rate %v", id, rate))
	}
	if _, ok := p.streams[id]; ok {
		panic(fmt.Sprintf("buffer: stream %d already attached", id))
	}
	var s *state
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*s = state{}
	} else {
		s = &state{}
	}
	s.idx, s.id, s.rate, s.touched, s.emptyAt = len(p.order), id, rate, now, now
	p.streams[id] = s
	p.order = append(p.order, s)
}

// Detach releases everything the stream holds and forgets it.
func (p *Pool) Detach(id int, now si.Seconds) {
	s := p.must(id)
	p.drain(s, now)
	p.inflight -= s.reserved
	delete(p.streams, id)
	last := len(p.order) - 1
	p.order[s.idx] = p.order[last]
	p.order[s.idx].idx = s.idx
	p.order[last] = nil
	p.order = p.order[:last]
	p.free = append(p.free, s)
}

// drain advances a stream's level to now, recording any underrun once per
// starvation episode.
func (p *Pool) drain(s *state, now si.Seconds) {
	if now < s.touched {
		panic(fmt.Sprintf("buffer: clock moved backward (%v < %v)", now, s.touched))
	}
	if !s.started {
		// Consumption has not begun; waiting for the first fill is
		// initial latency, not starvation.
		s.touched = now
		return
	}
	if s.starving {
		// Ran dry earlier and is still waiting for a fill.
		p.starved += now - s.touched
		s.touched = now
		return
	}
	consumed := s.rate.DataIn(now - s.touched)
	if consumed >= s.level {
		// Ran dry at emptyAt. A zero crossing within the tolerance is a
		// clean hand-to-mouth refill (or a departure landing exactly as
		// the buffer empties), not starvation.
		if gap := now - s.emptyAt; gap > p.tolerance() {
			p.underruns++
			p.starved += gap
			if p.onUnderrun != nil {
				p.onUnderrun(s.id, now, gap)
			}
			if DebugUnderruns != nil {
				DebugUnderruns(now, gap)
			}
		}
		s.level = 0
		s.starving = true
	} else {
		s.level -= consumed
	}
	s.touched = now
}

// BeginFill reserves memory for a fill of the given size. It reports
// false, reserving nothing, when the budget cannot cover it. A stream can
// have at most one fill in flight.
func (p *Pool) BeginFill(id int, size si.Bits, now si.Seconds) bool {
	s := p.must(id)
	if size < 0 {
		panic(fmt.Sprintf("buffer: negative fill %v", size))
	}
	if s.pending {
		panic(fmt.Sprintf("buffer: stream %d already has a fill in flight", id))
	}
	p.drain(s, now)
	if p.budget > 0 && p.Usage(now)+p.footprint(size) > p.budget {
		return false
	}
	s.reserved = size
	s.pending = true
	p.inflight += size
	p.note(now)
	return true
}

// CompleteFill lands the in-flight fill: the reserved data becomes buffer
// level and consumption (re)starts if the stream was starving.
func (p *Pool) CompleteFill(id int, now si.Seconds) {
	s := p.must(id)
	if !s.pending {
		panic(fmt.Sprintf("buffer: stream %d has no fill in flight", id))
	}
	p.drain(s, now)
	s.level += s.reserved
	p.inflight -= s.reserved
	s.reserved = 0
	s.pending = false
	s.started = true
	s.starving = false
	s.emptyAt = now + s.rate.TimeToTransfer(s.level)
	p.note(now)
}

// SetRate changes a stream's consumption rate mid-viewing — the engine's
// mid-stream bitrate switch. The buffer is drained at the old rate up to
// now first, so consumption history stays charged to the rate that
// actually consumed it; the remaining level drains at the new rate from
// now on, and the buffer's zero crossing moves accordingly (later after a
// down-switch, earlier after an up-switch). An in-flight fill is
// unaffected: its reservation was sized by the caller, and it lands into
// the level as usual at CompleteFill.
func (p *Pool) SetRate(id int, rate si.BitRate, now si.Seconds) {
	if rate <= 0 {
		panic(fmt.Sprintf("buffer: stream %d switched to non-positive rate %v", id, rate))
	}
	s := p.must(id)
	p.drain(s, now)
	s.rate = rate
	if s.started && !s.starving {
		s.emptyAt = now + rate.TimeToTransfer(s.level)
	}
}

// Level reports a stream's buffer level at time now (without recording
// underruns — it is a read-only probe).
func (p *Pool) Level(id int, now si.Seconds) si.Bits {
	s := p.must(id)
	if !s.started || s.starving {
		return 0
	}
	level := s.level - s.rate.DataIn(now-s.touched)
	if level < 0 {
		level = 0
	}
	return level
}

// EmptyAt reports when the stream's buffer runs dry if never refilled.
// Streams with no live data — fresh or starving — report the moment they
// last had any, i.e. they are already due.
func (p *Pool) EmptyAt(id int) si.Seconds { return p.must(id).emptyAt }

// Usage reports total memory in use at now: live buffer levels plus
// in-flight reservations, each stream's holdings rounded up to the
// pool's allocation unit, plus any pinned memory.
func (p *Pool) Usage(now si.Seconds) si.Bits {
	total := p.pinned
	for _, s := range p.order {
		held := s.reserved
		if s.started && !s.starving {
			if level := s.level - s.rate.DataIn(now-s.touched); level > 0 {
				held += level
			}
		}
		total += p.footprint(held)
	}
	return total
}

// note samples usage for the high-water mark. Fills are the only events
// that increase usage, so sampling at BeginFill/CompleteFill captures the
// true peak.
func (p *Pool) note(now si.Seconds) {
	if u := p.Usage(now); u > p.highWater {
		p.highWater, p.highAt = u, now
	}
}

// Stats summarizes a pool's history.
type Stats struct {
	Underruns   int
	Starved     si.Seconds
	HighWater   si.Bits
	HighWaterAt si.Seconds
	Streams     int
}

// Stats returns the pool's accumulated statistics.
func (p *Pool) Stats() Stats {
	return Stats{
		Underruns:   p.underruns,
		Starved:     p.starved,
		HighWater:   p.highWater,
		HighWaterAt: p.highAt,
		Streams:     len(p.streams),
	}
}

// Len reports the number of attached streams.
func (p *Pool) Len() int { return len(p.streams) }

func (p *Pool) must(id int) *state {
	s, ok := p.streams[id]
	if !ok {
		panic(fmt.Sprintf("buffer: unknown stream %d", id))
	}
	return s
}
