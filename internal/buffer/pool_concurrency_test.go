package buffer

import (
	"sync"
	"testing"

	"repro/internal/si"
)

// The pool is single-owner: in the engine every caller holds the clock
// lock (engine.WallClock.Do or an Observer callback) before touching it.
// This test reproduces that discipline — many goroutines, one mutex, a
// monotone shared clock — and lets the race detector prove the contract
// is sufficient: no torn state, no backward-time panics, books balanced.
func TestPoolSerializedConcurrentCallers(t *testing.T) {
	const (
		workers = 8
		ops     = 200
	)
	p := NewPagedPool(0, 0)
	var (
		mu  sync.Mutex // stands in for the engine clock lock
		now si.Seconds
	)
	tick := func() si.Seconds {
		now += 0.001
		return now
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mu.Lock()
			p.Attach(id, si.Mbps(1.5), tick())
			mu.Unlock()
			for i := 0; i < ops; i++ {
				mu.Lock()
				t := tick()
				if p.BeginFill(id, si.Megabits(1), t) {
					p.CompleteFill(id, tick())
				}
				p.Level(id, now)
				p.Usage(now)
				mu.Unlock()
			}
			mu.Lock()
			p.Detach(id, tick())
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	if p.Len() != 0 {
		t.Errorf("Len = %d after all streams detached, want 0", p.Len())
	}
	if got := p.Usage(now); got != 0 {
		t.Errorf("Usage = %v after all streams detached, want 0", got)
	}
	st := p.Stats()
	if st.Streams != 0 {
		t.Errorf("Stats.Streams = %d, want 0", st.Streams)
	}
	// Each fill lands ~1 ms after the last at 1 Mbit per fill versus
	// 1.5 Mbps consumption: buffers never drain between refills.
	if st.Underruns != 0 {
		t.Errorf("Underruns = %d, want 0 under keep-ahead fills", st.Underruns)
	}
	if st.HighWater <= 0 {
		t.Errorf("HighWater = %v, want positive", st.HighWater)
	}
}

// A budgeted pool under the same serialized concurrency must never let
// usage exceed the budget, and rejected fills must reserve nothing.
func TestPoolBudgetHoldsUnderConcurrentFills(t *testing.T) {
	const workers = 6
	budget := si.Megabits(4)
	p := NewPool(budget)
	var (
		mu  sync.Mutex
		now si.Seconds
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mu.Lock()
			now += 0.001
			p.Attach(id, si.Mbps(1.5), now)
			mu.Unlock()
			for i := 0; i < 100; i++ {
				mu.Lock()
				now += 0.001
				if p.BeginFill(id, si.Megabits(1), now) {
					now += 0.001
					p.CompleteFill(id, now)
				}
				if u := p.Usage(now); u > budget {
					t.Errorf("Usage %v exceeds budget %v", u, budget)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if st := p.Stats(); st.HighWater > budget {
		t.Errorf("HighWater %v exceeds budget %v", st.HighWater, budget)
	}
}
