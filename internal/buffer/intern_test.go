package buffer

import (
	"testing"

	"repro/internal/si"
)

// A warmed-up pool recycles its per-stream bookkeeping records: an
// attach/fill/detach cycle over ids the pool has seen the likes of
// before must not allocate. (The map bucket for a fresh id can, so the
// cycle reuses a fixed id set.)
func TestPoolAttachDetachAllocFree(t *testing.T) {
	p := NewPool(0)
	const ids = 32
	rate := si.BitRate(1.5 * si.Mega)
	now := si.Seconds(0)
	warm := func() {
		for id := 0; id < ids; id++ {
			p.Attach(id, rate, now)
			p.BeginFill(id, 1e6, now)
			p.CompleteFill(id, now)
			now += 1
		}
		for id := 0; id < ids; id++ {
			p.Detach(id, now)
		}
	}
	warm()
	allocs := testing.AllocsPerRun(200, warm)
	if allocs != 0 {
		t.Errorf("warm attach/fill/detach cycle allocates %v objects/op, want 0", allocs)
	}
}

// Detached records land on the freelist and are handed back out, capped
// by the concurrent high-water mark.
func TestPoolInternsStateRecords(t *testing.T) {
	p := NewPool(0)
	rate := si.BitRate(si.Mega)
	for id := 0; id < 10; id++ {
		p.Attach(id, rate, 0)
	}
	for id := 0; id < 10; id++ {
		p.Detach(id, 1)
	}
	if got := len(p.free); got != 10 {
		t.Fatalf("freelist holds %d records after 10 detaches, want 10", got)
	}
	p.Attach(99, rate, 2)
	if got := len(p.free); got != 9 {
		t.Errorf("freelist holds %d records after a reuse, want 9", got)
	}
	if st := p.must(99); st.level != 0 || st.started || st.starving || st.pending || st.reserved != 0 {
		t.Errorf("recycled record not reset: %+v", st)
	}
}
