package buffer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/si"
)

const cr = si.BitRate(1.5e6) // MPEG-1 consumption rate

func TestAttachDetach(t *testing.T) {
	p := NewPool(0)
	p.Attach(1, cr, 0)
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.Detach(1, 5)
	if p.Len() != 0 {
		t.Fatalf("Len after detach = %d", p.Len())
	}
	// No underruns from a stream that never started consuming.
	if st := p.Stats(); st.Underruns != 0 || st.Starved != 0 {
		t.Errorf("idle stream accrued failures: %+v", st)
	}
}

func TestAttachValidation(t *testing.T) {
	p := NewPool(0)
	p.Attach(1, cr, 0)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate id", func() { p.Attach(1, cr, 0) })
	mustPanic("zero rate", func() { p.Attach(2, 0, 0) })
	mustPanic("unknown detach", func() { p.Detach(9, 0) })
	mustPanic("negative budget", func() { NewPool(-1) })
	mustPanic("unknown level", func() { p.Level(9, 0) })
}

func TestFillAndDrainCycle(t *testing.T) {
	p := NewPool(0)
	p.Attach(1, cr, 0)
	// Fill 1.5 Mbit: lasts exactly 1 s.
	if !p.BeginFill(1, si.Megabits(1.5), 0) {
		t.Fatal("unconstrained fill refused")
	}
	p.CompleteFill(1, 0.1)
	if got := p.EmptyAt(1); math.Abs(float64(got)-1.1) > 1e-12 {
		t.Errorf("EmptyAt = %v, want 1.1s", got)
	}
	// Half consumed after 0.5 s.
	if got := p.Level(1, 0.6); math.Abs(float64(got)-0.75e6) > 1e-6 {
		t.Errorf("Level = %v, want 0.75 Mbit", got)
	}
	// Refill before empty: no underrun, levels stack.
	if !p.BeginFill(1, si.Megabits(1.5), 0.6) {
		t.Fatal("second fill refused")
	}
	p.CompleteFill(1, 0.7)
	want := 0.75e6 - 1.5e6*0.1 + 1.5e6
	if got := p.Level(1, 0.7); math.Abs(float64(got)-want) > 1e-6 {
		t.Errorf("stacked level = %v, want %v", got, want)
	}
	if st := p.Stats(); st.Underruns != 0 {
		t.Errorf("underruns = %d, want 0", st.Underruns)
	}
}

func TestUnderrunAccounting(t *testing.T) {
	p := NewPool(0)
	p.Attach(1, cr, 0)
	p.BeginFill(1, si.Megabits(1.5), 0) // lasts 1 s from completion
	p.CompleteFill(1, 0)
	// Next fill lands 0.4 s late: starved in [1.0, 1.4].
	p.BeginFill(1, si.Megabits(1.5), 1.4)
	st := p.Stats()
	if st.Underruns != 1 {
		t.Errorf("underruns = %d, want 1", st.Underruns)
	}
	if math.Abs(float64(st.Starved)-0.4) > 1e-9 {
		t.Errorf("starved = %v, want 0.4s", st.Starved)
	}
	// Completing the late fill restarts consumption.
	p.CompleteFill(1, 1.5)
	if math.Abs(float64(p.Stats().Starved)-0.5) > 1e-9 {
		t.Errorf("starved = %v, want 0.5s", p.Stats().Starved)
	}
	if got := p.EmptyAt(1); math.Abs(float64(got)-2.5) > 1e-9 {
		t.Errorf("EmptyAt after recovery = %v, want 2.5", got)
	}
	// One episode, counted once.
	if st := p.Stats(); st.Underruns != 1 {
		t.Errorf("underruns after recovery = %d, want 1", st.Underruns)
	}
}

func TestBudgetEnforcement(t *testing.T) {
	p := NewPool(si.Megabits(2))
	p.Attach(1, cr, 0)
	p.Attach(2, cr, 0)
	if !p.BeginFill(1, si.Megabits(1.5), 0) {
		t.Fatal("first fill should fit")
	}
	if p.BeginFill(2, si.Megabits(1), 0) {
		t.Error("second fill should exceed the 2 Mbit budget")
	}
	p.CompleteFill(1, 0.1)
	// After 1 Mbit drains (2/3 s), a 1 Mbit fill fits again.
	if !p.BeginFill(2, si.Megabits(1), 0.8) {
		t.Error("fill after drain should fit")
	}
}

func TestUsageAndHighWater(t *testing.T) {
	p := NewPool(0)
	p.Attach(1, cr, 0)
	p.Attach(2, cr, 0)
	p.BeginFill(1, si.Megabits(3), 0)
	// In-flight reservations count as usage.
	if got := p.Usage(0); got != si.Megabits(3) {
		t.Errorf("usage with reservation = %v", got)
	}
	p.CompleteFill(1, 0)
	p.BeginFill(2, si.Megabits(3), 1)
	p.CompleteFill(2, 1)
	// At t = 1: stream 1 holds 1.5 Mbit, stream 2 holds 3.
	if got := p.Usage(1); math.Abs(float64(got)-4.5e6) > 1e-6 {
		t.Errorf("usage = %v, want 4.5 Mbit", got)
	}
	st := p.Stats()
	if math.Abs(float64(st.HighWater)-4.5e6) > 1e-6 {
		t.Errorf("high water = %v, want 4.5 Mbit", st.HighWater)
	}
	if st.HighWaterAt != 1 {
		t.Errorf("high water at %v, want 1s", st.HighWaterAt)
	}
	// Detaching frees everything.
	p.Detach(1, 1)
	p.Detach(2, 1)
	if got := p.Usage(1); got != 0 {
		t.Errorf("usage after detach = %v", got)
	}
}

func TestFillStateMachinePanics(t *testing.T) {
	p := NewPool(0)
	p.Attach(1, cr, 0)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("complete without begin", func() { p.CompleteFill(1, 0) })
	p.BeginFill(1, 100, 0)
	mustPanic("double begin", func() { p.BeginFill(1, 100, 0) })
	mustPanic("negative fill", func() {
		p2 := NewPool(0)
		p2.Attach(1, cr, 0)
		p2.BeginFill(1, -1, 0)
	})
	mustPanic("backward clock", func() { p.CompleteFill(1, -5) })
}

// Property: with fills always landing before the deadline, no underrun is
// ever recorded and level stays within [0, total filled].
func TestNoUnderrunWhenOnTime(t *testing.T) {
	f := func(gaps []uint8) bool {
		p := NewPool(0)
		p.Attach(1, cr, 0)
		now := si.Seconds(0)
		p.BeginFill(1, si.Megabits(1.5), now)
		p.CompleteFill(1, now)
		for _, g := range gaps {
			// Refill strictly before the one-second deadline.
			now += si.Seconds(float64(g%100) / 101.0)
			p.BeginFill(1, si.Megabits(1.5), now)
			p.CompleteFill(1, now)
			if p.Level(1, now) <= 0 {
				return false
			}
		}
		return p.Stats().Underruns == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: usage equals the sum of individual levels plus reservations.
func TestUsageIsSumOfLevels(t *testing.T) {
	f := func(fills []uint16, probe uint8) bool {
		p := NewPool(0)
		n := 1 + len(fills)%5
		for i := 0; i < n; i++ {
			p.Attach(i, cr, 0)
		}
		now := si.Seconds(0)
		for i, raw := range fills {
			id := i % n
			now += si.Seconds(float64(raw%50) / 1000)
			p.BeginFill(id, si.Bits(raw)*1000, now)
			p.CompleteFill(id, now)
		}
		at := now + si.Seconds(probe)/10
		var sum si.Bits
		for i := 0; i < n; i++ {
			sum += p.Level(i, at)
		}
		return math.Abs(float64(sum-p.Usage(at))) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBudgetAccessor(t *testing.T) {
	if got := NewPool(si.Megabits(7)).Budget(); got != si.Megabits(7) {
		t.Errorf("Budget = %v", got)
	}
}

func TestPagedFootprint(t *testing.T) {
	p := NewPagedPool(0, 1000)
	if got := p.PageSize(); got != 1000 {
		t.Errorf("PageSize = %v", got)
	}
	p.Attach(1, cr, 0)
	p.BeginFill(1, 1500, 0) // 1.5 pages -> 2 pages reserved
	if got := p.Usage(0); got != 2000 {
		t.Errorf("paged usage = %v, want 2000", got)
	}
	p.CompleteFill(1, 0)
	if got := p.Usage(0); got != 2000 {
		t.Errorf("paged usage after fill = %v, want 2000", got)
	}
	// After draining below one page's worth, footprint drops to 1 page.
	at := si.Seconds(float64(600) / float64(cr)) // drain 600 bits
	if got := p.Usage(at); got != 1000 {
		t.Errorf("paged usage after drain = %v, want 1000", got)
	}
}

func TestPagedBudget(t *testing.T) {
	p := NewPagedPool(2000, 1000)
	p.Attach(1, cr, 0)
	p.Attach(2, cr, 0)
	if !p.BeginFill(1, 900, 0) { // 1 page
		t.Fatal("first fill should fit")
	}
	// 1100 bits of content costs 2 pages: 3 pages total exceeds 2 pages.
	if p.BeginFill(2, 1100, 0) {
		t.Error("page rounding should push the second fill over budget")
	}
	if !p.BeginFill(2, 900, 0) { // exactly 1 more page
		t.Error("page-sized second fill should fit")
	}
}

func TestPagedVsExactNegligibleForLargeBuffers(t *testing.T) {
	// The paper's claim: with pages much smaller than buffers, paged and
	// exact accounting differ by at most one page per stream.
	exact, paged := NewPool(0), NewPagedPool(0, 8*4096) // 4 KB pages
	for i := 0; i < 10; i++ {
		exact.Attach(i, cr, 0)
		paged.Attach(i, cr, 0)
		size := si.Megabytes(2)
		exact.BeginFill(i, size, 0)
		exact.CompleteFill(i, 0)
		paged.BeginFill(i, size, 0)
		paged.CompleteFill(i, 0)
	}
	diff := float64(paged.Usage(0) - exact.Usage(0))
	if diff < 0 || diff > 10*8*4096 {
		t.Errorf("paged-exact difference = %v bits, want within one page per stream", diff)
	}
	if rel := diff / float64(exact.Usage(0)); rel > 0.01 {
		t.Errorf("relative difference = %.4f, want under 1%%", rel)
	}
}

func TestNewPagedPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative page should panic")
		}
	}()
	NewPagedPool(0, -1)
}

// SetUnderrunTolerance widens (or restores) the underrun grace: the same
// late refill is starvation under the model's default millisecond but a
// clean hand-to-mouth refill under a rescaled grace, and the override is
// reversible.
func TestSetUnderrunTolerance(t *testing.T) {
	// One engine-second of content, refilled 0.5s after the buffer runs
	// dry — far beyond the default grace, within a 1.2s one.
	lateRefill := func(p *Pool) {
		p.Attach(1, cr, 0)
		p.BeginFill(1, cr.DataIn(1), 0)
		p.CompleteFill(1, 0) // empties at t=1
		p.BeginFill(1, cr.DataIn(1), 1.5)
		p.CompleteFill(1, 1.5)
		p.Detach(1, 1.5)
	}

	p := NewPool(0)
	lateRefill(p)
	if st := p.Stats(); st.Underruns != 1 {
		t.Fatalf("default tolerance: %d underruns, want 1", st.Underruns)
	}

	p = NewPool(0)
	p.SetUnderrunTolerance(1.2)
	lateRefill(p)
	if st := p.Stats(); st.Underruns != 0 {
		t.Fatalf("1.2s tolerance: %d underruns, want 0", st.Underruns)
	}

	p = NewPool(0)
	p.SetUnderrunTolerance(1.2)
	p.SetUnderrunTolerance(0) // restore the default
	lateRefill(p)
	if st := p.Stats(); st.Underruns != 1 {
		t.Fatalf("restored default: %d underruns, want 1", st.Underruns)
	}
}

func TestSetRateMidStream(t *testing.T) {
	p := NewPool(0)
	p.Attach(1, cr, 0)
	p.BeginFill(1, si.Megabits(1.5), 0)
	p.CompleteFill(1, 0) // 1.5 Mbit: lasts 1 s at cr
	// At 0.4 s, 0.9 Mbit remains; halving the rate moves the zero
	// crossing from 1.0 s to 0.4 + 0.9/0.75 = 1.6 s.
	p.SetRate(1, cr/2, 0.4)
	if got := p.EmptyAt(1); math.Abs(float64(got)-1.6) > 1e-9 {
		t.Errorf("EmptyAt after down-switch = %v, want 1.6", got)
	}
	// History stays charged to the old rate: the level at 0.8 s is
	// 0.9 Mbit minus 0.4 s at the NEW rate only.
	if got := p.Level(1, 0.8); math.Abs(float64(got)-0.6e6) > 1e-6 {
		t.Errorf("Level after down-switch = %v, want 0.6 Mbit", got)
	}
	// Switching back up pulls the crossing earlier: 0.6 Mbit at cr.
	p.SetRate(1, cr, 0.8)
	if got := p.EmptyAt(1); math.Abs(float64(got)-1.2) > 1e-9 {
		t.Errorf("EmptyAt after up-switch = %v, want 1.2", got)
	}
	if st := p.Stats(); st.Underruns != 0 {
		t.Errorf("rate switches recorded %d underruns", st.Underruns)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive rate accepted")
		}
	}()
	p.SetRate(1, 0, 1)
}
