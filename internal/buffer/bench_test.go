package buffer

import (
	"testing"

	"repro/internal/si"
)

// BenchmarkFillCycle measures the begin/complete fill pair, the hot path
// of every simulated service.
func BenchmarkFillCycle(b *testing.B) {
	p := NewPool(0)
	for i := 0; i < 40; i++ {
		p.Attach(i, cr, 0)
		p.BeginFill(i, si.Megabits(1.5), 0)
		p.CompleteFill(i, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := si.Seconds(0)
	for i := 0; i < b.N; i++ {
		id := i % 40
		now += 0.001
		p.BeginFill(id, si.Megabits(0.01), now)
		p.CompleteFill(id, now)
	}
}

// BenchmarkUsage measures the pool scan done at every high-water note.
func BenchmarkUsage(b *testing.B) {
	p := NewPool(0)
	for i := 0; i < 79; i++ {
		p.Attach(i, cr, 0)
		p.BeginFill(i, si.Megabits(1.5), 0)
		p.CompleteFill(i, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Usage(si.Seconds(i % 1000))
	}
}
