package buffer

import (
	"testing"

	"repro/internal/si"
)

// Pinned memory is charged against the same pool the buffers live in:
// it counts as usage from the moment of the pin, squeezes the budget
// available to fills, and registers on the high-water mark.
func TestPinChargesThePool(t *testing.T) {
	p := NewPool(si.Megabits(2))
	p.Pin(si.Megabits(1), 0)
	if got := p.Pinned(); got != si.Megabits(1) {
		t.Fatalf("Pinned = %v, want 1 Mbit", got)
	}
	if got := p.Usage(0); got != si.Megabits(1) {
		t.Errorf("Usage = %v, want the pin's 1 Mbit", got)
	}
	p.Attach(1, cr, 0)
	if p.BeginFill(1, si.Megabits(1.5), 0) {
		t.Error("1.5 Mbit fill fit beside a 1 Mbit pin in a 2 Mbit budget")
	}
	if !p.BeginFill(1, si.Megabits(1), 0) {
		t.Error("1 Mbit fill must fit beside the pin")
	}
	p.CompleteFill(1, 0)
	if st := p.Stats(); st.HighWater < si.Megabits(2) {
		t.Errorf("high water %v excludes the pin", st.HighWater)
	}
	// Pins accumulate.
	p.Pin(si.Megabits(0.5), 1)
	if got := p.Pinned(); got != si.Megabits(1.5) {
		t.Errorf("Pinned after second pin = %v, want 1.5 Mbit", got)
	}
}

func TestPinRoundsToPages(t *testing.T) {
	p := NewPagedPool(0, si.Bits(64_000))
	p.Pin(si.Bits(65_000), 0)
	if got := p.Pinned(); got != si.Bits(128_000) {
		t.Errorf("Pinned = %v, want 65 kbit rounded to two 64 kbit pages", got)
	}
}

func TestPinRejectsNegative(t *testing.T) {
	p := NewPool(0)
	defer func() {
		if recover() == nil {
			t.Error("negative pin must panic")
		}
	}()
	p.Pin(-1, 0)
}
