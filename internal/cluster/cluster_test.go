package cluster

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// testConfig is a small paper-environment fleet: 2 servers × 2 disks.
func testConfig(clock engine.ClockDomain, policy catalog.PlacementPolicy) Config {
	spec := diskmodel.Barracuda9LP()
	return Config{
		Servers:         2,
		DisksPerServer:  2,
		Titles:          4,
		PopularityTheta: 0,
		Policy:          policy,
		Engine: engine.Config{
			Clock:     clock,
			Allocator: engine.DynamicAllocator{},
			Method:    sched.NewMethod(sched.RoundRobin),
			Spec:      spec,
			CR:        si.Mbps(1.5),
			Alpha:     1,
			TLog:      si.Minutes(40),
			Seed:      1,
		},
	}
}

// The fleet carves per-server library views out of the globally placed
// catalog: each server sees exactly the replicas living on its disks,
// re-indexed to local disk numbers, under the same titles and
// popularity.
func TestPerServerLibraryViews(t *testing.T) {
	cl, err := New(testConfig(engine.NewVirtualClock(), catalog.Replicated{
		Base:       catalog.LeastLoaded{},
		HotTitles:  2,
		Copies:     2,
		ColdCopies: 1,
		GroupSize:  2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	global := cl.Library()
	for id := 0; id < global.Len(); id++ {
		seen := 0
		for s := 0; s < cl.Servers(); s++ {
			for _, rep := range cl.ServerLibrary(s).Replicas(id) {
				seen++
				for _, seg := range rep.Segments {
					if seg.Disk < 0 || seg.Disk >= cl.DisksPerServer() {
						t.Errorf("server %d title %d segment on local disk %d, want [0, %d)",
							s, id, seg.Disk, cl.DisksPerServer())
					}
				}
			}
		}
		if want := len(global.Replicas(id)); seen != want {
			t.Errorf("title %d: server views hold %d replicas, global catalog %d", id, seen, want)
		}
	}
	// Hot titles must be reachable on both servers (Copies = Servers).
	for id := 0; id < 2; id++ {
		for s := 0; s < cl.Servers(); s++ {
			if len(cl.ServerLibrary(s).Replicas(id)) == 0 {
				t.Errorf("hot title %d has no replica on server %d", id, s)
			}
		}
	}
}

// A stripe that crosses a server boundary cannot be served by any one
// engine; composition must refuse the layout instead of quietly
// mis-serving it.
func TestStraddlingStripeRejected(t *testing.T) {
	_, err := New(testConfig(engine.NewVirtualClock(), catalog.Striped{Width: 3}))
	if err == nil || !strings.Contains(err.Error(), "straddles") {
		t.Fatalf("3-wide stripe over 2-disk servers: err = %v, want a straddling error", err)
	}
}

// The router prefers the primary replica, fails over to the
// least-committed copy when the primary's disk is at the cap, and
// rejects only with every replica saturated; Release restores headroom.
func TestRouterFailoverAndRelease(t *testing.T) {
	cl, err := New(testConfig(engine.NewVirtualClock(), catalog.Replicated{
		Base:      catalog.LeastLoaded{},
		HotTitles: 4, Copies: 2, ColdCopies: 2, GroupSize: 2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	rt := cl.Router()
	cap := rt.Cap()
	primary := cl.Library().Replicas(0)[0].Segments[0].Disk
	secondary := cl.Library().Replicas(0)[1].Segments[0].Disk

	for i := 0; i < cap; i++ {
		target, ok := rt.Route(0)
		if !ok || target.Global != primary {
			t.Fatalf("route %d: target %+v ok=%v, want the primary disk %d", i, target, ok, primary)
		}
	}
	target, ok := rt.Route(0)
	if !ok || target.Global != secondary {
		t.Fatalf("primary full: target %+v ok=%v, want failover to disk %d", target, ok, secondary)
	}
	if got := rt.Stats().Failovers; got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	for i := 1; i < cap; i++ {
		if _, ok := rt.Route(0); !ok {
			t.Fatalf("failover route %d rejected below the cap", i)
		}
	}
	if _, ok := rt.Route(0); ok {
		t.Error("route admitted with both replicas at the cap")
	}
	if got := rt.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	rt.Release(primary)
	if target, ok := rt.Route(0); !ok || target.Global != primary {
		t.Errorf("after release: target %+v ok=%v, want the primary disk %d again", target, ok, primary)
	}
}

// Striped serving end to end: one viewer's 90-minute viewing of a
// 2-wide striped title must be served as two chained streams — the
// second segment's stream starting on its own disk when playback
// reaches it — with the sizing guarantee holding and every router
// booking returned by the end.
func TestStripedServingChains(t *testing.T) {
	clock := engine.NewVirtualClock()
	cfg := testConfig(clock, catalog.Striped{Width: 2})
	starts := make(map[int]int) // global disk -> streams started
	cfg.Observer = func(s int) engine.Observer {
		return startCounter{starts: starts, off: s * 2}
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Title 1 lives on server 1 (disks 2 and 3 globally): the stripe
	// rotation must not confuse global and local indices.
	req := workload.Request{ID: 1, Arrival: 0, Video: 1, Viewing: si.Minutes(90)}
	var target Target
	var ok bool
	clock.Schedule(0, func() { target, ok = cl.Submit(req) })
	clock.Run(si.Hours(2))
	if !ok {
		t.Fatal("striped viewer rejected by an idle fleet")
	}
	if target.Server != 1 {
		t.Fatalf("title 1 routed to server %d, want 1", target.Server)
	}
	if starts[2] != 1 || starts[3] != 1 {
		t.Errorf("started %d streams on disk 2 and %d on disk 3, want one each (chained segments)",
			starts[2], starts[3])
	}
	for s := 0; s < cl.Servers(); s++ {
		sys := cl.System(s)
		for d := 0; d < sys.Disks(); d++ {
			if u := sys.Disk(d).Pool().Stats().Underruns; u != 0 {
				t.Errorf("server %d disk %d: %d underruns", s, d, u)
			}
		}
	}
	for g := 0; g < 4; g++ {
		if n := cl.Router().Committed(g); n != 0 {
			t.Errorf("disk %d still holds %d committed after all segments departed", g, n)
		}
	}
	st := cl.Router().Stats()
	if st.Routed != 1 {
		t.Errorf("routed = %d, want 1 (continuations are charges, not routes)", st.Routed)
	}
}

type startCounter struct {
	engine.NopObserver
	starts map[int]int
	off    int
}

func (c startCounter) OnStart(disk int, st *engine.Stream, now si.Seconds) {
	c.starts[c.off+disk]++
}

// Composition validation: impossible fleets fail at construction.
func TestNewValidation(t *testing.T) {
	cfg := testConfig(engine.NewVirtualClock(), nil)
	cfg.Servers = 0
	if _, err := New(cfg); err == nil {
		t.Error("0 servers accepted")
	}
	cfg = testConfig(engine.NewVirtualClock(), nil)
	cfg.DisksPerServer = 0
	if _, err := New(cfg); err == nil {
		t.Error("0 disks per server accepted")
	}
}

// FuzzRouterAdmit model-checks the router's booking arithmetic under
// arbitrary Route/Release/chargeContinuation interleavings: the
// committed count per disk always matches a plain reference model,
// Route never books past the cap, and a rejection really means every
// replica of the title was saturated.
func FuzzRouterAdmit(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 4, 1, 9, 2, 14, 0, 4, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			servers  = 3
			disksPer = 2
			titles   = 6
			cap      = 3
		)
		disks := servers * disksPer
		lib, err := catalog.New(catalog.Config{
			Titles: titles, Disks: disks, Spec: diskmodel.Barracuda9LP(),
			PopularityTheta: 0,
			Policy: catalog.Replicated{
				Base:      catalog.LeastLoaded{},
				HotTitles: 2, Copies: 3, ColdCopies: 1, GroupSize: disksPer,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := newRouter(lib, servers, disksPer, cap)
		model := make([]int, disks)
		routed, rejected := 0, 0
		for _, b := range data {
			arg := int(b >> 2)
			switch b % 3 {
			case 0: // Route a title
				video := arg % titles
				target, ok := r.Route(video)
				if ok {
					routed++
					reps := lib.Replicas(video)
					if target.Replica < 0 || target.Replica >= len(reps) {
						t.Fatalf("route(%d): replica index %d of %d", video, target.Replica, len(reps))
					}
					if g := reps[target.Replica].Segments[0].Disk; g != target.Global {
						t.Fatalf("route(%d): global %d but replica %d lives on %d", video, target.Global, target.Replica, g)
					}
					if model[target.Global] >= cap {
						t.Fatalf("route(%d) booked disk %d past the cap (%d committed)", video, target.Global, model[target.Global])
					}
					model[target.Global]++
				} else {
					rejected++
					for ri, rep := range lib.Replicas(video) {
						if g := rep.Segments[0].Disk; model[g] < cap {
							t.Fatalf("route(%d) rejected but replica %d's disk %d has %d/%d committed",
								video, ri, g, model[g], cap)
						}
					}
				}
			case 1: // Release a disk's booking (no-op when none held)
				g := arg % disks
				r.Release(g)
				if model[g] > 0 {
					model[g]--
				}
			case 2: // charge a striped continuation (may exceed the cap)
				g := arg % disks
				r.chargeContinuation(g)
				model[g]++
			}
			for g := 0; g < disks; g++ {
				if got := r.Committed(g); got != model[g] {
					t.Fatalf("disk %d: committed %d, model %d", g, got, model[g])
				}
			}
		}
		st := r.Stats()
		if int(st.Routed) != routed || int(st.Rejected) != rejected {
			t.Fatalf("stats routed/rejected = %d/%d, model %d/%d", st.Routed, st.Rejected, routed, rejected)
		}
	})
}
