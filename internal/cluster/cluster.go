package cluster

import (
	"fmt"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/si"
	"repro/internal/workload"
)

// Config parameterizes a fleet.
type Config struct {
	// Servers is the number of single-server engines to compose.
	Servers int

	// DisksPerServer is each server's disk count.
	DisksPerServer int

	// Titles is the global catalog size.
	Titles int

	// Video overrides the default MPEG-1 title parameters when non-nil.
	Video func(id int) catalog.Video

	// PopularityTheta is the catalog's Zipf popularity parameter.
	PopularityTheta float64

	// Policy lays the global catalog out over the fleet's
	// Servers×DisksPerServer disks. Every replica must stay within one
	// server (striping across servers would need cross-server fill
	// scheduling). nil defaults to LeastLoaded — one balanced copy per
	// title, no replication.
	Policy catalog.PlacementPolicy

	// Engine is the per-server engine template: Allocator, Method, Spec,
	// CR, Alpha, TLog, admission flags, PageSize, Seed, and SizeTable
	// are taken from it. Clock is the fleet-global domain — server s's
	// disk d runs on Clock.DiskClock(s·DisksPerServer + d), so a
	// VirtualClock keeps the whole fleet on one deterministic event loop
	// while a WallClock gives every disk in the fleet its own shard.
	// Library and Observer are overridden per server (the template's
	// Observer, if any, still receives each server's callbacks with
	// server-local disk indices).
	Engine engine.Config

	// KneeFraction positions the router's per-disk admission cap at
	// floor(KneeFraction·N): the Theorem 1 memory knee. 0 defaults to
	// 0.5 (cap n near N/2); values >= 1 leave bandwidth (N) as the only
	// ceiling.
	KneeFraction float64

	// Observer, when non-nil, supplies an extra per-server observer
	// (e.g. the serve driver's session relay). Callbacks carry
	// server-local disk indices.
	Observer func(server int) engine.Observer
}

// Cluster is a routed fleet: one engine.System per server over a
// policy-placed global catalog, fronted by the admission Router.
type Cluster struct {
	cfg      Config
	global   *catalog.Library
	libs     []*catalog.Library
	systems  []*engine.System
	router   *Router
	disksPer int
	nextID   atomic.Int64
}

// shardOffset maps one server's disk indices into the fleet-global clock
// domain.
type shardOffset struct {
	dom engine.ClockDomain
	off int
}

func (s shardOffset) DiskClock(i int) engine.Clock { return s.dom.DiskClock(s.off + i) }

// releaseObserver returns router bookings as streams leave one server's
// engines — departures and outright rejections both free the slot the
// router charged at Route (or chargeContinuation) time.
type releaseObserver struct {
	engine.NopObserver
	r   *Router
	off int // the server's first global disk
}

func (o releaseObserver) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	o.r.Release(o.off + disk)
}

func (o releaseObserver) OnReject(disk int, req workload.Request, reason engine.RejectReason, now si.Seconds) {
	o.r.Release(o.off + disk)
}

// New builds the fleet: the global catalog is laid out by the policy
// over all Servers×DisksPerServer disks, each server gets a library view
// of exactly the replicas living on its disks (same titles, same
// popularity, local disk indices), and the router indexes every replica
// fleet-wide.
func New(cfg Config) (*Cluster, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 server, got %d", cfg.Servers)
	}
	if cfg.DisksPerServer < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 disk per server, got %d", cfg.DisksPerServer)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = catalog.LeastLoaded{}
	}
	D := cfg.DisksPerServer
	global, err := catalog.New(catalog.Config{
		Titles:          cfg.Titles,
		Disks:           cfg.Servers * D,
		Spec:            cfg.Engine.Spec,
		PopularityTheta: cfg.PopularityTheta,
		Video:           cfg.Video,
		Policy:          policy,
	})
	if err != nil {
		return nil, err
	}

	// Carve per-server layouts: a replica belongs to the server holding
	// all its segments; one straddling servers is a policy bug.
	views := make([]catalog.Explicit, cfg.Servers)
	for s := range views {
		views[s] = make(catalog.Explicit, cfg.Titles)
	}
	for id := 0; id < cfg.Titles; id++ {
		for ri, rep := range global.Replicas(id) {
			srv := rep.Segments[0].Disk / D
			local := make([]int, len(rep.Segments))
			for i, seg := range rep.Segments {
				if seg.Disk/D != srv {
					return nil, fmt.Errorf("cluster: policy %s: title %d replica %d straddles servers %d and %d",
						global.PolicyName(), id, ri, srv, seg.Disk/D)
				}
				local[i] = seg.Disk - srv*D
			}
			views[srv][id] = append(views[srv][id], catalog.ReplicaSpec{Disks: local})
		}
	}

	c := &Cluster{cfg: cfg, global: global, disksPer: D}
	knee := cfg.KneeFraction
	if knee == 0 {
		knee = 0.5
	}
	n := core.DeriveN(cfg.Engine.Spec.TransferRate, cfg.Engine.CR)
	cap := int(knee * float64(n))
	if cap > n {
		cap = n
	}
	if cap < 1 {
		cap = 1
	}
	c.router = newRouter(global, cfg.Servers, D, cap)

	for s := 0; s < cfg.Servers; s++ {
		lib, err := catalog.New(catalog.Config{
			Titles:          cfg.Titles,
			Disks:           D,
			Spec:            cfg.Engine.Spec,
			PopularityTheta: cfg.PopularityTheta,
			Video:           cfg.Video,
			Policy:          views[s],
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: server %d library: %w", s, err)
		}
		obs := engine.Observers{releaseObserver{r: c.router, off: s * D}}
		if cfg.Engine.Observer != nil {
			obs = append(obs, cfg.Engine.Observer)
		}
		if cfg.Observer != nil {
			if o := cfg.Observer(s); o != nil {
				obs = append(obs, o)
			}
		}
		eng := cfg.Engine
		eng.Clock = shardOffset{dom: cfg.Engine.Clock, off: s * D}
		eng.Library = lib
		eng.Observer = obs
		// Decorrelate the servers' rotational-delay streams.
		eng.Seed = cfg.Engine.Seed + int64(s)*0x9e3779b9
		sys, err := engine.New(eng)
		if err != nil {
			return nil, fmt.Errorf("cluster: server %d: %w", s, err)
		}
		c.libs = append(c.libs, lib)
		c.systems = append(c.systems, sys)
	}
	return c, nil
}

// Library exposes the global catalog (all replicas, fleet-wide disk
// indices) — what traces are generated against.
func (c *Cluster) Library() *catalog.Library { return c.global }

// ServerLibrary exposes server s's local view of the catalog.
func (c *Cluster) ServerLibrary(s int) *catalog.Library { return c.libs[s] }

// Servers reports the number of servers.
func (c *Cluster) Servers() int { return len(c.systems) }

// DisksPerServer reports each server's disk count.
func (c *Cluster) DisksPerServer() int { return c.disksPer }

// System exposes server s's engine.
func (c *Cluster) System(s int) *engine.System { return c.systems[s] }

// Router exposes the admission router.
func (c *Cluster) Router() *Router { return c.router }

// GlobalDisk maps a (server, local disk) pair to the fleet-wide index.
func (c *Cluster) GlobalDisk(server, disk int) int { return server*c.disksPer + disk }

// SetNextID seeds the ID allocator used for striped continuation
// requests; drivers set it past their trace's largest request ID.
func (c *Cluster) SetNextID(n int64) { c.nextID.Store(n) }

// Submit routes one arrival and feeds it to the chosen server's engine.
// The request's Disk field is overwritten with the routing decision.
// ok == false means the router rejected it (no replica had headroom).
//
// For a striped replica the viewing is split across the segments in
// playback order: the first segment's stream arrives now, and each later
// segment's stream is scheduled on its own disk's clock at the moment
// playback reaches it (charged to that disk as a continuation). Submit
// must be called in clock order — from the driver's arrival events on a
// VirtualClock, or under the target shard's lock on a WallClock (the
// serve driver routes explicitly instead and handles its own locking).
func (c *Cluster) Submit(req workload.Request) (Target, bool) {
	t, ok := c.router.Route(req.Video)
	if !ok {
		return Target{}, false
	}
	rep := c.global.Replicas(req.Video)[t.Replica]
	req.Disk = t.Disk
	if len(rep.Segments) == 1 {
		c.systems[t.Server].OnArrival(req)
		return t, true
	}
	// Striped: segment j plays for Span_j/rate seconds at the stream's
	// own consumption rate; the viewer's request chains across segments
	// until the viewing is exhausted.
	cr := req.Rate
	if cr <= 0 {
		cr = c.cfg.Engine.CR
	}
	offset := si.Seconds(0)
	for j, seg := range rep.Segments {
		if req.Viewing <= offset {
			break
		}
		dur := si.Seconds(float64(seg.ContentSize()) / float64(cr))
		v := req.Viewing - offset
		if v > dur {
			v = dur
		}
		g := seg.Disk
		part := workload.Request{
			ID:      req.ID,
			Arrival: req.Arrival + offset,
			Video:   req.Video,
			Disk:    g % c.disksPer,
			Viewing: v,
			Rate:    req.Rate,
		}
		if j == 0 {
			c.systems[g/c.disksPer].OnArrival(part)
		} else {
			part.ID = int(c.nextID.Add(1))
			sys := c.systems[g/c.disksPer]
			c.cfg.Engine.Clock.DiskClock(g).Schedule(part.Arrival, func() {
				c.router.chargeContinuation(g)
				sys.OnArrival(part)
			})
		}
		offset += dur
	}
	return t, true
}
