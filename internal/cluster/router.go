// Package cluster lifts the single-server streaming engine to a routed
// multi-server fleet: one engine.System per server, a shared catalog laid
// out by a placement policy (replication and striping included), and an
// admission Router that steers each arriving viewer to a server+disk
// holding a copy of its title and having headroom for one more stream.
//
// The router's headroom rule combines the two per-disk limits the
// reproduction has measured separately:
//
//   - Disk bandwidth: Eq. 1's N = DeriveN(TR, CR) streams is the hard
//     concurrency ceiling one spindle sustains.
//   - The Theorem 1 memory knee: total buffer memory for n concurrent
//     streams grows like n·BS(n), and BS(n) blows up as n approaches N —
//     the scale scenarios put the knee near n ≈ N/2. Admitting past the
//     knee buys few streams for a lot of memory.
//
// So a disk accepts new streams only while its committed count stays
// under cap = min(floor(KneeFraction·N), N). A title's preferred replica
// is its primary; when the primary's disk is saturated the router fails
// over to the least-loaded other replica, and only when every replica's
// disk is at the cap is the viewer rejected. Per-replica committed
// counts are tracked here (atomically — the serve driver routes from
// concurrent connection goroutines) and released through the engines'
// OnDepart/OnReject callbacks.
package cluster

import (
	"sync/atomic"

	"repro/internal/catalog"
)

// Target is the routing decision for one admitted arrival.
type Target struct {
	// Server is the index of the chosen server.
	Server int
	// Disk is the chosen disk, local to the server (what the engine's
	// workload.Request.Disk wants).
	Disk int
	// Global is the fleet-wide disk index: Server·DisksPerServer + Disk.
	Global int
	// Replica is the index of the chosen replica of the title.
	Replica int
}

// Router is the fleet's admission steering. It holds the global catalog
// (replica locations) and a committed-stream count per global disk.
type Router struct {
	lib      *catalog.Library
	disksPer int
	cap      int // per-disk committed ceiling: min(floor(knee·N), N)

	committed []atomic.Int64 // per global disk

	routed    atomic.Int64
	failovers atomic.Int64
	rejected  atomic.Int64
	perServer []atomic.Int64 // routed, per server
}

// newRouter builds the router for a fleet of servers×disksPer disks
// described by the global library. cap is the per-disk committed
// ceiling.
func newRouter(lib *catalog.Library, servers, disksPer, cap int) *Router {
	return &Router{
		lib:       lib,
		disksPer:  disksPer,
		cap:       cap,
		committed: make([]atomic.Int64, servers*disksPer),
		perServer: make([]atomic.Int64, servers),
	}
}

// Cap reports the per-disk committed ceiling the router admits under.
func (r *Router) Cap() int { return r.cap }

// Committed reports the current committed-stream count of a global disk.
func (r *Router) Committed(global int) int { return int(r.committed[global].Load()) }

// tryAcquire books one stream on a global disk if headroom remains.
func (r *Router) tryAcquire(global int) bool {
	c := &r.committed[global]
	for {
		n := c.Load()
		if int(n) >= r.cap {
			return false
		}
		if c.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release frees one booked stream on a global disk. The cluster's
// per-server observers call it on OnDepart and OnReject; drivers that
// withdraw a still-queued request (Disk.Cancel returning true fires no
// callback) must call it themselves.
func (r *Router) Release(global int) {
	c := &r.committed[global]
	for {
		n := c.Load()
		if n <= 0 {
			return // over-release indicates a driver bug; never go negative
		}
		if c.CompareAndSwap(n, n-1) {
			return
		}
	}
}

// chargeContinuation books a striped viewer's next segment onto its
// disk. Continuations are already-admitted load — rejecting a viewer
// mid-title is worse than briefly exceeding the knee cap — so the charge
// is unconditional; new admissions on that disk stay blocked until the
// count falls back under the cap.
func (r *Router) chargeContinuation(global int) {
	r.committed[global].Add(1)
}

// Route picks the server+disk to admit a viewer of the given title, and
// books one stream there. The primary replica is preferred; when its
// disk lacks headroom the router fails over to the remaining replicas,
// least-committed first. ok == false means every replica's disk is at
// the cap (or the title has no replica) and the viewer is rejected.
// Multi-segment (striped) replicas are booked on their first segment's
// disk — the later segments are charged as the viewing reaches them.
func (r *Router) Route(video int) (t Target, ok bool) {
	reps := r.lib.Replicas(video)
	if len(reps) == 0 {
		r.rejected.Add(1)
		return Target{}, false
	}
	if g := reps[0].Segments[0].Disk; r.tryAcquire(g) {
		r.routed.Add(1)
		r.perServer[g/r.disksPer].Add(1)
		return Target{Server: g / r.disksPer, Disk: g % r.disksPer, Global: g, Replica: 0}, true
	}
	for {
		// Least-committed remaining replica first; on ties the lowest
		// replica index, so the order is deterministic under one thread.
		best, bestLoad := -1, int64(0)
		for i := 1; i < len(reps); i++ {
			g := reps[i].Segments[0].Disk
			n := r.committed[g].Load()
			if int(n) >= r.cap {
				continue
			}
			if best < 0 || n < bestLoad {
				best, bestLoad = i, n
			}
		}
		if best < 0 {
			r.rejected.Add(1)
			return Target{}, false
		}
		g := reps[best].Segments[0].Disk
		if !r.tryAcquire(g) {
			continue // lost a race; rescan
		}
		r.routed.Add(1)
		r.failovers.Add(1)
		r.perServer[g/r.disksPer].Add(1)
		return Target{Server: g / r.disksPer, Disk: g % r.disksPer, Global: g, Replica: best}, true
	}
}

// RouterStats is a point-in-time snapshot of the router's tallies,
// embedded in the serve driver's STATS dump.
type RouterStats struct {
	// Routed counts arrivals the router accepted and steered.
	Routed int64 `json:"routed"`
	// Failovers counts routed arrivals that did not get their primary
	// replica.
	Failovers int64 `json:"failovers"`
	// Rejected counts arrivals turned away with every replica saturated.
	Rejected int64 `json:"rejected"`
	// CapPerDisk is the committed ceiling per disk.
	CapPerDisk int `json:"cap_per_disk"`
	// Committed is the live booked-stream count per global disk.
	Committed []int64 `json:"committed"`
	// RoutedPerServer splits Routed by chosen server.
	RoutedPerServer []int64 `json:"routed_per_server"`
}

// Stats snapshots the router.
func (r *Router) Stats() RouterStats {
	s := RouterStats{
		Routed:          r.routed.Load(),
		Failovers:       r.failovers.Load(),
		Rejected:        r.rejected.Load(),
		CapPerDisk:      r.cap,
		Committed:       make([]int64, len(r.committed)),
		RoutedPerServer: make([]int64, len(r.perServer)),
	}
	for i := range r.committed {
		s.Committed[i] = r.committed[i].Load()
	}
	for i := range r.perServer {
		s.RoutedPerServer[i] = r.perServer[i].Load()
	}
	return s
}
