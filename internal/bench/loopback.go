package bench

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livemetrics"
	"repro/internal/serve"
)

// loopbackCases measure the live serving path end to end: an in-process
// vodserver (internal/serve) on a loopback listener, driven by
// concurrent TCP viewers. Each benchmark iteration is one complete
// session — WATCH, admission, paced frame delivery, zero-frame end —
// so allocs/op is the per-session allocation budget of the whole path
// (client included) and the extra metrics report what an operator sees:
// sessions/sec, wall-clock admission-to-first-byte latency quantiles,
// and the engine's underrun count.
//
// Viewers are persistent clients: each worker dials once (outside the
// timer) and runs its share of b.N viewings over that connection, the
// way a real frontend would amortize its server connections — which,
// with the pooled serving path, makes a steady-state session allocate
// almost nothing on either side. Compensation is on (the serving
// default an operator wants at high -scale), so the underruns extra
// reflects the paper's model; serve/loopback-jittercomp measures the
// off-vs-on difference explicitly.
//
// The 1-shard and 8-shard cases run everywhere, including the 1-CPU
// reference runner, pinning the serving path's allocation budget in the
// bench-smoke gate. The parallel case needs real cores to say anything
// (it exists to show shard scaling) and self-skips below 8 procs, like
// the wall-clock scaling test.
func loopbackCases() []Case {
	return []Case{
		loopbackCase("serve/loopback-1shard", 1, 8, 0, false),
		loopbackCase("serve/loopback-8shards", 8, 8, 0, false),
		loopbackCase("serve/loopback-8shards-parallel", 8, 32, 8, false),
		// The shared case turns the sharing front end on and concentrates
		// the viewers on four titles with a prefix window shorter than
		// the sessions, so admissions exercise the whole merge mix —
		// cache-only service, batching, mid-stream piggybacks, and fresh
		// leads — while each viewer still receives its exact bytes.
		loopbackCase("serve/loopback-shared", 8, 8, 0, true),
		jitterCompCase(),
	}
}

// loopbackCase builds one loopback benchmark: disks shards serving
// b.N sessions from workers concurrent persistent viewers, optionally
// through the sharing layer.
func loopbackCase(name string, disks, workers, minProcs int, shared bool) Case {
	return Case{
		Name:     name,
		Iters:    160,
		MinProcs: minProcs,
		Bench: func(b *testing.B) {
			cfg := serve.Config{Scale: 1200, Disks: disks, Seed: 1, JitterComp: true}
			if shared {
				cfg.Share = true
				cfg.ShareWindow = 2 // engine seconds; sessions run 5, so joins split cache/disk
			}
			// Client-measured first-byte latency: WATCH write to first
			// frame header, in wall seconds at microsecond resolution.
			firstByte := livemetrics.NewHistogram(1e-6)
			b.ReportAllocs()
			b.ResetTimer()
			sps, underruns := runLoopback(b, cfg, workers,
				func(n int) int { return sessionTitle(shared, n) }, firstByte)
			b.ReportMetric(sps, "sessions/sec")
			b.ReportMetric(firstByte.Quantile(0.50)*1e3, "p50-first-byte-ms")
			b.ReportMetric(firstByte.Quantile(0.99)*1e3, "p99-first-byte-ms")
			b.ReportMetric(float64(underruns), "underruns")
		},
	}
}

// jitterCompCase runs the 8-shard loopback workload twice — timer
// jitter compensation off, then on — and reports both arms' underrun
// counts, so the snapshot records what the compensating clock buys at
// the reference scale (and cmd/bench's gate can hold the win). Note
// allocs/op for this case covers both arms, i.e. two sessions per op.
func jitterCompCase() Case {
	return Case{
		Name:  "serve/loopback-jittercomp",
		Iters: 160,
		Bench: func(b *testing.B) {
			firstByte := livemetrics.NewHistogram(1e-6)
			title := func(int) int { return -1 }
			b.ReportAllocs()
			b.ResetTimer()
			cfg := serve.Config{Scale: 1200, Disks: 8, Seed: 1}
			_, off := runLoopback(b, cfg, 8, title, firstByte)
			cfg.JitterComp = true
			sps, on := runLoopback(b, cfg, 8, title, firstByte)
			b.ReportMetric(sps, "sessions/sec")
			b.ReportMetric(float64(off), "underruns-nocomp")
			b.ReportMetric(float64(on), "underruns-comp")
		},
	}
}

// runLoopback stands up a server and drives b.N sessions through it
// from persistent concurrent clients, timing only the sessions: setup,
// dialing, warmup, and teardown all happen with the timer stopped. It
// reports the timed sessions/sec and the engine's total underrun count.
func runLoopback(b *testing.B, cfg serve.Config, workers int, title func(n int) int, firstByte *livemetrics.Histogram) (float64, int64) {
	b.StopTimer()
	srv, err := serve.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)
	addr := ln.Addr().String()

	clients := make([]*loopbackClient, workers)
	for i := range clients {
		if clients[i], err = dialLoopback(addr); err != nil {
			b.Fatal(err)
		}
		defer clients[i].close()
	}

	// Warm every connection in parallel so both sides' pools (server
	// sessions and conn state, engine streams and timers, client
	// buffers) hold their steady-state population before timing starts.
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *loopbackClient) {
			defer wg.Done()
			if err := cl.session(title(i), firstByte); err != nil {
				errs <- err
			}
		}(i, cl)
	}
	wg.Wait()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}

	var next atomic.Int64
	b.StartTimer()
	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *loopbackClient) {
			defer wg.Done()
			for {
				n := int(next.Add(1))
				if n > b.N {
					return
				}
				if err := cl.session(title(n), firstByte); err != nil {
					errs <- err
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	return float64(b.N) / elapsed.Seconds(), srv.Metrics().Snapshot().Totals.Underruns
}

// sessionTitle picks the title for session n: the shared case cycles
// four titles so concurrent viewers pile onto the same content; the
// private cases take the server's default assignment (title -1).
func sessionTitle(shared bool, n int) int {
	if !shared {
		return -1
	}
	return n % 4
}

// loopbackClient is one persistent viewer connection. Its session
// method is written to be allocation-free warm — the command builds in
// a reused buffer, the status line reads in place, payload discards
// through the buffered reader — so the benchmark's allocs/op measures
// the serving path, not the harness.
type loopbackClient struct {
	conn  net.Conn
	r     *bufio.Reader
	cmd   []byte
	frame [4]byte
}

func dialLoopback(addr string) (*loopbackClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &loopbackClient{conn: conn, r: bufio.NewReader(conn)}, nil
}

func (c *loopbackClient) close() { c.conn.Close() }

// session runs one complete viewing over the persistent connection:
// 5 simulated seconds of content (937,500 bytes), verified to the byte.
// A title >= 0 is requested explicitly; -1 lets the server assign one.
func (c *loopbackClient) session(title int, firstByte *livemetrics.Histogram) error {
	c.cmd = append(c.cmd[:0], "WATCH 5"...)
	if title >= 0 {
		c.cmd = append(c.cmd, ' ')
		c.cmd = strconv.AppendInt(c.cmd, int64(title), 10)
	}
	c.cmd = append(c.cmd, '\n')
	start := time.Now()
	if _, err := c.conn.Write(c.cmd); err != nil {
		return err
	}
	status, err := c.r.ReadSlice('\n')
	if err != nil {
		return err
	}
	if !bytes.HasPrefix(status, []byte("OK")) {
		return fmt.Errorf("loopback session not admitted: %q", bytes.TrimSpace(status))
	}
	var total int64
	first := true
	for {
		if _, err := io.ReadFull(c.r, c.frame[:]); err != nil {
			return err
		}
		if first {
			firstByte.Record(time.Since(start).Seconds())
			first = false
		}
		length := int64(binary.BigEndian.Uint32(c.frame[:]))
		if length == 0 {
			break
		}
		if _, err := c.r.Discard(int(length)); err != nil {
			return err
		}
		total += length
	}
	if total != 937_500 {
		return fmt.Errorf("loopback session delivered %d bytes, want 937500", total)
	}
	return nil
}
