package bench

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livemetrics"
	"repro/internal/serve"
)

// loopbackCases measure the live serving path end to end: an in-process
// vodserver (internal/serve) on a loopback listener, driven by
// concurrent TCP viewers. Each benchmark iteration is one complete
// session — dial, WATCH, admission, paced frame delivery, zero-frame
// close — so allocs/op is the per-session allocation budget of the
// whole path (client included) and the extra metrics report what an
// operator sees: sessions/sec, wall-clock admission-to-first-byte
// latency quantiles, and the engine's underrun count.
//
// The 1-shard and 8-shard cases run everywhere, including the 1-CPU
// reference runner, pinning the serving path's allocation budget in the
// bench-smoke gate. The parallel case needs real cores to say anything
// (it exists to show shard scaling) and self-skips below 8 procs, like
// the wall-clock scaling test.
func loopbackCases() []Case {
	return []Case{
		loopbackCase("serve/loopback-1shard", 1, 8, 0, false),
		loopbackCase("serve/loopback-8shards", 8, 8, 0, false),
		loopbackCase("serve/loopback-8shards-parallel", 8, 32, 8, false),
		// The shared case turns the sharing front end on and concentrates
		// the viewers on four titles with a prefix window shorter than
		// the sessions, so admissions exercise the whole merge mix —
		// cache-only service, batching, mid-stream piggybacks, and fresh
		// leads — while each viewer still receives its exact bytes.
		loopbackCase("serve/loopback-shared", 8, 8, 0, true),
	}
}

// loopbackCase builds one loopback benchmark: disks shards serving
// b.N sessions from workers concurrent viewers, optionally through the
// sharing layer.
func loopbackCase(name string, disks, workers, minProcs int, shared bool) Case {
	return Case{
		Name:     name,
		Iters:    160,
		MinProcs: minProcs,
		Bench: func(b *testing.B) {
			cfg := serve.Config{Scale: 1200, Disks: disks, Seed: 1}
			if shared {
				cfg.Share = true
				cfg.ShareWindow = 2 // engine seconds; sessions run 5, so joins split cache/disk
			}
			srv, err := serve.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Stop()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer ln.Close()
			go srv.Serve(ln)
			addr := ln.Addr().String()

			// Client-measured first-byte latency: WATCH write to first
			// frame header, in wall seconds at microsecond resolution.
			firstByte := livemetrics.NewHistogram(1e-6)

			// Warm the path (and the engine's pools) outside the timing.
			if err := loopbackSession(addr, sessionTitle(shared, 0), firstByte); err != nil {
				b.Fatal(err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var next atomic.Int64
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						n := int(next.Add(1))
						if n > b.N {
							break
						}
						if err := loopbackSession(addr, sessionTitle(shared, n), firstByte); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}

			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "sessions/sec")
			b.ReportMetric(firstByte.Quantile(0.50)*1e3, "p50-first-byte-ms")
			b.ReportMetric(firstByte.Quantile(0.99)*1e3, "p99-first-byte-ms")
			b.ReportMetric(float64(srv.Metrics().Snapshot().Totals.Underruns), "underruns")
		},
	}
}

// sessionTitle picks the title for session n: the shared case cycles
// four titles so concurrent viewers pile onto the same content; the
// private cases take the server's default assignment (title -1).
func sessionTitle(shared bool, n int) int {
	if !shared {
		return -1
	}
	return n % 4
}

// loopbackSession runs one complete viewer session: 5 simulated seconds
// of content (937,500 bytes), verified to the byte. A title >= 0 is
// requested explicitly; -1 lets the server assign one.
func loopbackSession(addr string, title int, firstByte *livemetrics.Histogram) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	start := time.Now()
	cmd := "WATCH 5\n"
	if title >= 0 {
		cmd = fmt.Sprintf("WATCH 5 %d\n", title)
	}
	if _, err := io.WriteString(conn, cmd); err != nil {
		return err
	}
	r := bufio.NewReader(conn)
	status, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.HasPrefix(status, "OK") {
		return fmt.Errorf("loopback session not admitted: %q", strings.TrimSpace(status))
	}
	var total int64
	var frame [4]byte
	first := true
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return err
		}
		if first {
			firstByte.Record(time.Since(start).Seconds())
			first = false
		}
		length := binary.BigEndian.Uint32(frame[:])
		if length == 0 {
			break
		}
		if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
			return err
		}
		total += int64(length)
	}
	if total != 937_500 {
		return fmt.Errorf("loopback session delivered %d bytes, want 937500", total)
	}
	return nil
}
