package bench

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livemetrics"
	"repro/internal/serve"
)

// loopbackCases measure the live serving path end to end: an in-process
// vodserver (internal/serve) on a loopback listener, driven by
// concurrent TCP viewers. Each benchmark iteration is one complete
// session — dial, WATCH, admission, paced frame delivery, zero-frame
// close — so allocs/op is the per-session allocation budget of the
// whole path (client included) and the extra metrics report what an
// operator sees: sessions/sec, wall-clock admission-to-first-byte
// latency quantiles, and the engine's underrun count.
//
// The 1-shard and 8-shard cases run everywhere, including the 1-CPU
// reference runner, pinning the serving path's allocation budget in the
// bench-smoke gate. The parallel case needs real cores to say anything
// (it exists to show shard scaling) and self-skips below 8 procs, like
// the wall-clock scaling test.
func loopbackCases() []Case {
	return []Case{
		loopbackCase("serve/loopback-1shard", 1, 8, 0),
		loopbackCase("serve/loopback-8shards", 8, 8, 0),
		loopbackCase("serve/loopback-8shards-parallel", 8, 32, 8),
	}
}

// loopbackCase builds one loopback benchmark: disks shards serving
// b.N sessions from workers concurrent viewers.
func loopbackCase(name string, disks, workers, minProcs int) Case {
	return Case{
		Name:     name,
		Iters:    160,
		MinProcs: minProcs,
		Bench: func(b *testing.B) {
			srv, err := serve.New(serve.Config{Scale: 1200, Disks: disks, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Stop()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer ln.Close()
			go srv.Serve(ln)
			addr := ln.Addr().String()

			// Client-measured first-byte latency: WATCH write to first
			// frame header, in wall seconds at microsecond resolution.
			firstByte := livemetrics.NewHistogram(1e-6)

			// Warm the path (and the engine's pools) outside the timing.
			if err := loopbackSession(addr, firstByte); err != nil {
				b.Fatal(err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var next atomic.Int64
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for int(next.Add(1)) <= b.N {
						if err := loopbackSession(addr, firstByte); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}

			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "sessions/sec")
			b.ReportMetric(firstByte.Quantile(0.50)*1e3, "p50-first-byte-ms")
			b.ReportMetric(firstByte.Quantile(0.99)*1e3, "p99-first-byte-ms")
			b.ReportMetric(float64(srv.Metrics().Snapshot().Totals.Underruns), "underruns")
		},
	}
}

// loopbackSession runs one complete viewer session: 5 simulated seconds
// of content (937,500 bytes), verified to the byte.
func loopbackSession(addr string, firstByte *livemetrics.Histogram) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	start := time.Now()
	if _, err := fmt.Fprintf(conn, "WATCH 5\n"); err != nil {
		return err
	}
	r := bufio.NewReader(conn)
	status, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.HasPrefix(status, "OK") {
		return fmt.Errorf("loopback session not admitted: %q", strings.TrimSpace(status))
	}
	var total int64
	var frame [4]byte
	first := true
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return err
		}
		if first {
			firstByte.Record(time.Since(start).Seconds())
			first = false
		}
		length := binary.BigEndian.Uint32(frame[:])
		if length == 0 {
			break
		}
		if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
			return err
		}
		total += int64(length)
	}
	if total != 937_500 {
		return fmt.Errorf("loopback session delivered %d bytes, want 937500", total)
	}
	return nil
}
