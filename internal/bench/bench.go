// Package bench defines the repository's performance-trajectory cases:
// the named micro and end-to-end benchmarks whose numbers cmd/bench
// snapshots into the committed BENCH_*.json files, one per tracked PR.
//
// Every case fixes its iteration count (a "benchtime Nx" run) so the
// allocs/op it reports is reproducible run to run — that is the metric
// CI's bench-smoke gate compares against the committed baseline, because
// unlike ns/op it does not drift with machine load.
package bench

import (
	"sync"
	"testing"
	"time"

	vod "repro"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/sched"
)

// Case is one tracked benchmark.
type Case struct {
	// Name identifies the case in BENCH_*.json; stable across PRs so
	// baselines stay comparable.
	Name string
	// Iters is the fixed iteration count the harness runs (benchtime Nx).
	Iters int
	// SimDays marks end-to-end cases whose iterations are whole simulated
	// days; the harness derives sim-days/sec for them.
	SimDays bool
	// MinProcs is the GOMAXPROCS floor below which the harness skips the
	// case (0 = run everywhere). Scaling cases that only say something on
	// real cores set it, mirroring the wall-clock scaling test's gate, so
	// the 1-CPU reference runner degrades gracefully.
	MinProcs int
	// Bench is the benchmark body. It must call b.ReportAllocs.
	Bench func(b *testing.B)
}

// Cases returns the tracked benchmark set in a stable order.
func Cases() []Case {
	cases := []Case{
		{
			// The engine steady state: every fired event schedules its
			// successor, exercising the virtual clock's event freelist.
			Name:  "clock/nested-events",
			Iters: 2_000_000,
			Bench: func(b *testing.B) {
				e := vod.NewVirtualClock()
				count := 0
				var tick func()
				tick = func() {
					count++
					if count < b.N {
						e.After(1, tick)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				e.After(1, tick)
				e.Run(vod.Seconds(b.N + 2))
			},
		},
		{
			// Cold-clock churn: a fresh clock absorbing a burst of 1000
			// one-shot closures per op. Pays the pool's warm-up cost every
			// iteration — the worst case for the freelist design.
			Name:  "clock/schedule-run-1000",
			Iters: 2_000,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e := vod.NewVirtualClock()
					for j := 0; j < 1000; j++ {
						at := vod.Seconds((j * 7919) % 1000)
						e.Schedule(at, func() {})
					}
					e.Run(1000)
				}
			},
		},
		{
			// The per-fill sizing path: one memoized table lookup.
			Name:  "core/size-table-lookup",
			Iters: 2_000_000,
			Bench: func(b *testing.B) {
				spec, _, p := vod.PaperEnvironment()
				tab := vod.NewSizeTable(p, vod.NewMethod(vod.RoundRobin), spec)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = tab.Size(1+i%p.N, i%8)
				}
			},
		},
		{
			// The unmemoized Theorem 1 recurrence — what each fill would
			// cost without the table.
			Name:  "core/dynamic-size-recurrence",
			Iters: 100_000,
			Bench: func(b *testing.B) {
				spec, _, p := vod.PaperEnvironment()
				dl := vod.WorstDiskLatency(vod.NewMethod(vod.RoundRobin), spec, 1)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_ = vod.DynamicBufferSize(p, dl, 1+i%p.N, i%4)
				}
			},
		},
		{
			// The deadline index's per-service operation pair at scale-
			// scenario depth: remove the earliest of 1024 started streams,
			// re-file it at its next deadline. O(log n) sifts on a reused
			// backing array — steady state must stay at zero allocs/op.
			Name:  "engine/deadline-index-1024",
			Iters: 500_000,
			Bench: func(b *testing.B) {
				engine.DeadlineIndexChurn(1024, 1024) // warm code paths
				b.ReportAllocs()
				b.ResetTimer()
				engine.DeadlineIndexChurn(1024, b.N)
			},
		},
	}
	cases = append(cases, clusterCases()...)
	cases = append(cases, wallContentionCases()...)
	for _, day := range dayCases() {
		cases = append(cases, day)
	}
	cases = append(cases, multiRateCases()...)
	cases = append(cases, loopbackCases()...)
	return cases
}

// clusterCases track the fleet router's admission hot path: the serve
// driver calls Route from every connection goroutine, so the book/release
// pair (replica lookup, CAS booking, tallies) must stay allocation-free.
func clusterCases() []Case {
	return []Case{
		{
			Name:  "cluster/router-admit",
			Iters: 2_000_000,
			Bench: func(b *testing.B) {
				spec, cr, _ := vod.PaperEnvironment()
				const titles = 8
				cl, err := cluster.New(cluster.Config{
					Servers:         4,
					DisksPerServer:  2,
					Titles:          titles,
					PopularityTheta: 0,
					Policy: catalog.Replicated{
						Base:       catalog.LeastLoaded{},
						HotTitles:  titles / 2,
						Copies:     4,
						ColdCopies: 2,
						GroupSize:  2,
					},
					Engine: engine.Config{
						Clock:     vod.NewVirtualClock(),
						Allocator: engine.DynamicAllocator{},
						Method:    sched.NewMethod(sched.RoundRobin),
						Spec:      spec,
						CR:        cr,
						Alpha:     1,
						TLog:      vod.Minutes(40),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				rt := cl.Router()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t, ok := rt.Route(i % titles)
					if !ok {
						b.Fatal("router rejected with an idle fleet")
					}
					rt.Release(t.Global)
				}
			},
		},
	}
}

// multiRateCases track the rate-aware serving path end to end: a day of
// arrivals over a three-rung bitrate ladder with downgrading admission,
// so the per-rate sizing contexts, the live-rate planning bound, and the
// ladder walk all sit on the measured path. Its allocs/op rides the same
// baseline gate as the single-rate day cases.
func multiRateCases() []Case {
	return []Case{
		{
			Name:    "sim/day/multirate-downgrade-rr",
			Iters:   1,
			SimDays: true,
			Bench: func(b *testing.B) {
				spec, _, _ := vod.PaperEnvironment()
				ladder := []vod.BitRate{vod.Mbps(1.5), vod.Mbps(1.0), vod.Mbps(0.5)}
				lib, err := vod.NewLibrary(vod.LibraryConfig{
					Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271,
					Video: func(id int) catalog.Video {
						v := catalog.MPEG1Video(id)
						v.Ladder = ladder
						return v
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				tr := vod.GenerateWorkload(vod.ZipfDaySchedule(350, 1, vod.Hours(9), vod.Hours(24)), lib, 1)
				for i, r := range tr.Requests {
					tr.Requests[i].Rate = lib.Video(r.Video).Rate
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := vod.Simulate(vod.SimConfig{
						Scheme: vod.Dynamic, Method: vod.NewMethod(vod.RoundRobin),
						Spec: spec, CR: ladder[0], Library: lib, Trace: tr, Seed: int64(i),
						Rates: ladder, Downgrade: true,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Served == 0 {
						b.Fatal("nothing served")
					}
				}
			},
		},
		{
			// The same day with mid-stream adaptation on: the reservoir
			// check rides every service start and the up-switch gates ride
			// every completion, so the whole rate-map overhead — ladder
			// walks, switch re-planning, rung re-booking — lands on the
			// measured path even when few switches fire.
			Name:    "sim/day/multirate-adapt-rr",
			Iters:   1,
			SimDays: true,
			Bench: func(b *testing.B) {
				spec, _, _ := vod.PaperEnvironment()
				ladder := []vod.BitRate{vod.Mbps(1.5), vod.Mbps(1.0), vod.Mbps(0.5)}
				lib, err := vod.NewLibrary(vod.LibraryConfig{
					Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271,
					Video: func(id int) catalog.Video {
						v := catalog.MPEG1Video(id)
						v.Ladder = ladder
						return v
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				tr := vod.GenerateWorkload(vod.ZipfDaySchedule(350, 1, vod.Hours(9), vod.Hours(24)), lib, 1)
				for i, r := range tr.Requests {
					tr.Requests[i].Rate = lib.Video(r.Video).Rate
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := vod.Simulate(vod.SimConfig{
						Scheme: vod.Dynamic, Method: vod.NewMethod(vod.RoundRobin),
						Spec: spec, CR: ladder[0], Library: lib, Trace: tr, Seed: int64(i),
						Rates: ladder, Downgrade: true, Adapt: &engine.AdaptConfig{},
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Served == 0 {
						b.Fatal("nothing served")
					}
				}
			},
		},
	}
}

// wallContentionCases measure WallClock scheduling throughput under
// eight concurrent clients: all on one shard (the old global-mutex
// arrangement) versus one shard per client (the per-disk sharding).
// On multicore hardware the sharded case shows the refactor's point —
// throughput scaling with shard count, >= 2x at 8 shards — while the
// tracked allocs/op metric pins both hot paths to the pooled-timer
// freelist (amortized zero) on any machine.
func wallContentionCases() []Case {
	const clients = 8
	churn := func(b *testing.B, shardOf func(*vod.WallClock, int) *vod.WallShard) {
		c := vod.NewWallClockTick(1, time.Millisecond)
		defer c.Stop()
		for g := 0; g < clients; g++ { // warm every shard's pool
			shardOf(c, g).Schedule(vod.Seconds(7200), func() {}).Cancel()
		}
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s := shardOf(c, g)
				for i := 0; i < b.N/clients; i++ {
					// Far-future expiries: pure scheduling throughput, the
					// driver goroutines never wake to fire.
					s.Schedule(vod.Seconds(7200+i%64), func() {}).Cancel()
				}
			}(g)
		}
		wg.Wait()
	}
	return []Case{
		{
			Name:  "clock/wall-contended-1shard",
			Iters: 400_000,
			Bench: func(b *testing.B) {
				churn(b, func(c *vod.WallClock, _ int) *vod.WallShard { return c.Shard(0) })
			},
		},
		{
			Name:  "clock/wall-sharded-8shards",
			Iters: 400_000,
			Bench: func(b *testing.B) {
				churn(b, func(c *vod.WallClock, g int) *vod.WallShard { return c.Shard(g) })
			},
		},
	}
}

// dayCases builds the end-to-end allocator x method day-simulation matrix
// (the same grid BenchmarkDaySimulation runs under go test).
func dayCases() []Case {
	type cell struct {
		name   string
		scheme vod.Scheme
		kind   vod.MethodKind
	}
	grid := []cell{
		{"sim/day/static-rr", vod.Static, vod.RoundRobin},
		{"sim/day/static-sweep", vod.Static, vod.Sweep},
		{"sim/day/static-gss", vod.Static, vod.GSS},
		{"sim/day/dynamic-rr", vod.Dynamic, vod.RoundRobin},
		{"sim/day/dynamic-sweep", vod.Dynamic, vod.Sweep},
		{"sim/day/dynamic-gss", vod.Dynamic, vod.GSS},
	}
	out := make([]Case, 0, len(grid))
	for _, c := range grid {
		c := c
		out = append(out, Case{
			Name:    c.name,
			Iters:   1,
			SimDays: true,
			Bench: func(b *testing.B) {
				spec, cr, _ := vod.PaperEnvironment()
				lib, err := vod.NewLibrary(vod.LibraryConfig{
					Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271,
				})
				if err != nil {
					b.Fatal(err)
				}
				tr := vod.GenerateWorkload(vod.ZipfDaySchedule(350, 1, vod.Hours(9), vod.Hours(24)), lib, 1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := vod.Simulate(vod.SimConfig{
						Scheme: c.scheme, Method: vod.NewMethod(c.kind),
						Spec: spec, CR: cr, Library: lib, Trace: tr, Seed: int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Served == 0 {
						b.Fatal("nothing served")
					}
				}
			},
		})
	}
	return out
}
