// Package bench defines the repository's performance-trajectory cases:
// the named micro and end-to-end benchmarks whose numbers cmd/bench
// snapshots into the committed BENCH_*.json files, one per tracked PR.
//
// Every case fixes its iteration count (a "benchtime Nx" run) so the
// allocs/op it reports is reproducible run to run — that is the metric
// CI's bench-smoke gate compares against the committed baseline, because
// unlike ns/op it does not drift with machine load.
package bench

import (
	"testing"

	vod "repro"
)

// Case is one tracked benchmark.
type Case struct {
	// Name identifies the case in BENCH_*.json; stable across PRs so
	// baselines stay comparable.
	Name string
	// Iters is the fixed iteration count the harness runs (benchtime Nx).
	Iters int
	// SimDays marks end-to-end cases whose iterations are whole simulated
	// days; the harness derives sim-days/sec for them.
	SimDays bool
	// Bench is the benchmark body. It must call b.ReportAllocs.
	Bench func(b *testing.B)
}

// Cases returns the tracked benchmark set in a stable order.
func Cases() []Case {
	cases := []Case{
		{
			// The engine steady state: every fired event schedules its
			// successor, exercising the virtual clock's event freelist.
			Name:  "clock/nested-events",
			Iters: 2_000_000,
			Bench: func(b *testing.B) {
				e := vod.NewVirtualClock()
				count := 0
				var tick func()
				tick = func() {
					count++
					if count < b.N {
						e.After(1, tick)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				e.After(1, tick)
				e.Run(vod.Seconds(b.N + 2))
			},
		},
		{
			// Cold-clock churn: a fresh clock absorbing a burst of 1000
			// one-shot closures per op. Pays the pool's warm-up cost every
			// iteration — the worst case for the freelist design.
			Name:  "clock/schedule-run-1000",
			Iters: 2_000,
			Bench: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e := vod.NewVirtualClock()
					for j := 0; j < 1000; j++ {
						at := vod.Seconds((j * 7919) % 1000)
						e.Schedule(at, func() {})
					}
					e.Run(1000)
				}
			},
		},
		{
			// The per-fill sizing path: one memoized table lookup.
			Name:  "core/size-table-lookup",
			Iters: 2_000_000,
			Bench: func(b *testing.B) {
				spec, _, p := vod.PaperEnvironment()
				tab := vod.NewSizeTable(p, vod.NewMethod(vod.RoundRobin), spec)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = tab.Size(1+i%p.N, i%8)
				}
			},
		},
		{
			// The unmemoized Theorem 1 recurrence — what each fill would
			// cost without the table.
			Name:  "core/dynamic-size-recurrence",
			Iters: 100_000,
			Bench: func(b *testing.B) {
				spec, _, p := vod.PaperEnvironment()
				dl := vod.WorstDiskLatency(vod.NewMethod(vod.RoundRobin), spec, 1)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_ = vod.DynamicBufferSize(p, dl, 1+i%p.N, i%4)
				}
			},
		},
	}
	for _, day := range dayCases() {
		cases = append(cases, day)
	}
	return cases
}

// dayCases builds the end-to-end allocator x method day-simulation matrix
// (the same grid BenchmarkDaySimulation runs under go test).
func dayCases() []Case {
	type cell struct {
		name   string
		scheme vod.Scheme
		kind   vod.MethodKind
	}
	grid := []cell{
		{"sim/day/static-rr", vod.Static, vod.RoundRobin},
		{"sim/day/static-sweep", vod.Static, vod.Sweep},
		{"sim/day/static-gss", vod.Static, vod.GSS},
		{"sim/day/dynamic-rr", vod.Dynamic, vod.RoundRobin},
		{"sim/day/dynamic-sweep", vod.Dynamic, vod.Sweep},
		{"sim/day/dynamic-gss", vod.Dynamic, vod.GSS},
	}
	out := make([]Case, 0, len(grid))
	for _, c := range grid {
		c := c
		out = append(out, Case{
			Name:    c.name,
			Iters:   1,
			SimDays: true,
			Bench: func(b *testing.B) {
				spec, cr, _ := vod.PaperEnvironment()
				lib, err := vod.NewLibrary(vod.LibraryConfig{
					Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271,
				})
				if err != nil {
					b.Fatal(err)
				}
				tr := vod.GenerateWorkload(vod.ZipfDaySchedule(350, 1, vod.Hours(9), vod.Hours(24)), lib, 1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := vod.Simulate(vod.SimConfig{
						Scheme: c.scheme, Method: vod.NewMethod(c.kind),
						Spec: spec, CR: cr, Library: lib, Trace: tr, Seed: int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Served == 0 {
						b.Fatal("nothing served")
					}
				}
			},
		})
	}
	return out
}
