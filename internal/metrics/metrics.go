// Package metrics provides the small accumulators the simulation uses to
// report what the paper's figures plot: per-load-level latency averages
// (Fig. 11), time series of concurrency and memory (Figs. 6 and 14), and
// counting statistics with online means.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/si"
)

// ByN accumulates a quantity bucketed by an integer load level n, as
// Fig. 11 buckets initial latency by the number of requests in service at
// arrival time.
type ByN struct {
	sum   []float64
	count []int64
}

// NewByN returns an accumulator for levels 0..max.
func NewByN(max int) *ByN {
	if max < 0 {
		panic(fmt.Sprintf("metrics: negative max level %d", max))
	}
	return &ByN{sum: make([]float64, max+1), count: make([]int64, max+1)}
}

// Add records one observation at level n. Levels outside the range clamp
// to the edges: observations at unexpectedly high n still count toward the
// last bucket rather than vanishing.
func (b *ByN) Add(n int, v float64) {
	if n < 0 {
		n = 0
	}
	if n >= len(b.sum) {
		n = len(b.sum) - 1
	}
	b.sum[n] += v
	b.count[n]++
}

// Mean reports the average at level n and whether any observation exists.
func (b *ByN) Mean(n int) (float64, bool) {
	if n < 0 || n >= len(b.sum) || b.count[n] == 0 {
		return 0, false
	}
	return b.sum[n] / float64(b.count[n]), true
}

// Count reports the number of observations at level n.
func (b *ByN) Count(n int) int64 {
	if n < 0 || n >= len(b.count) {
		return 0
	}
	return b.count[n]
}

// Levels reports the number of levels (max+1).
func (b *ByN) Levels() int { return len(b.sum) }

// GrandMean reports the mean over all observations, and whether any exist.
func (b *ByN) GrandMean() (float64, bool) {
	var s float64
	var c int64
	for i := range b.sum {
		s += b.sum[i]
		c += b.count[i]
	}
	if c == 0 {
		return 0, false
	}
	return s / float64(c), true
}

// MeanOfMeans reports the unweighted average of the per-level means over
// levels that have observations — the paper's "averaged over the number of
// user requests in service" aggregation for Table 4.
func (b *ByN) MeanOfMeans() (float64, bool) {
	var s float64
	levels := 0
	for i := range b.sum {
		if b.count[i] > 0 {
			s += b.sum[i] / float64(b.count[i])
			levels++
		}
	}
	if levels == 0 {
		return 0, false
	}
	return s / float64(levels), true
}

// Merge adds another accumulator's observations into b. The level ranges
// must match.
func (b *ByN) Merge(o *ByN) {
	if len(b.sum) != len(o.sum) {
		panic(fmt.Sprintf("metrics: merging ByN with %d levels into %d", len(o.sum), len(b.sum)))
	}
	for i := range b.sum {
		b.sum[i] += o.sum[i]
		b.count[i] += o.count[i]
	}
}

// Sample is one point of a time series.
type Sample struct {
	At si.Seconds
	V  float64
}

// Series is an append-only time series.
type Series struct {
	samples []Sample
}

// Add appends a sample; times must be non-decreasing.
func (s *Series) Add(at si.Seconds, v float64) {
	if n := len(s.samples); n > 0 && at < s.samples[n-1].At {
		panic(fmt.Sprintf("metrics: series time moved backward (%v < %v)", at, s.samples[n-1].At))
	}
	s.samples = append(s.samples, Sample{At: at, V: v})
}

// Samples returns the recorded samples.
func (s *Series) Samples() []Sample { return s.samples }

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// Max reports the largest sample value, or 0 for an empty series.
func (s *Series) Max() float64 {
	best := math.Inf(-1)
	for _, p := range s.samples {
		if p.V > best {
			best = p.V
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// Mean reports the arithmetic mean of sample values, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.samples {
		sum += p.V
	}
	return sum / float64(len(s.samples))
}

// Counter tracks a running count with an online mean of attached values.
type Counter struct {
	n   int64
	sum float64
}

// Add records one event with an associated value.
func (c *Counter) Add(v float64) { c.n++; c.sum += v }

// Inc records one event with no value.
func (c *Counter) Inc() { c.n++ }

// N reports the number of events.
func (c *Counter) N() int64 { return c.n }

// Sum reports the total of attached values.
func (c *Counter) Sum() float64 { return c.sum }

// Mean reports the average attached value, or 0 with no events.
func (c *Counter) Mean() float64 {
	if c.n == 0 {
		return 0
	}
	return c.sum / float64(c.n)
}
