package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByNBasics(t *testing.T) {
	b := NewByN(3)
	b.Add(1, 10)
	b.Add(1, 20)
	b.Add(3, 5)
	if m, ok := b.Mean(1); !ok || m != 15 {
		t.Errorf("Mean(1) = %v, %v", m, ok)
	}
	if _, ok := b.Mean(2); ok {
		t.Error("Mean(2) should report no data")
	}
	if got := b.Count(1); got != 2 {
		t.Errorf("Count(1) = %d", got)
	}
	if got := b.Levels(); got != 4 {
		t.Errorf("Levels = %d", got)
	}
	if m, ok := b.GrandMean(); !ok || math.Abs(m-35.0/3) > 1e-12 {
		t.Errorf("GrandMean = %v, %v", m, ok)
	}
	// MeanOfMeans: (15 + 5) / 2 levels.
	if m, ok := b.MeanOfMeans(); !ok || m != 10 {
		t.Errorf("MeanOfMeans = %v, %v", m, ok)
	}
}

func TestByNClamping(t *testing.T) {
	b := NewByN(2)
	b.Add(-5, 1)
	b.Add(99, 2)
	if got := b.Count(0); got != 1 {
		t.Errorf("low clamp: Count(0) = %d", got)
	}
	if got := b.Count(2); got != 1 {
		t.Errorf("high clamp: Count(2) = %d", got)
	}
	if got := b.Count(-1); got != 0 {
		t.Errorf("Count(-1) = %d", got)
	}
	if _, ok := b.Mean(99); ok {
		t.Error("Mean out of range should report no data")
	}
}

func TestByNEmpty(t *testing.T) {
	b := NewByN(5)
	if _, ok := b.GrandMean(); ok {
		t.Error("empty GrandMean should report no data")
	}
	if _, ok := b.MeanOfMeans(); ok {
		t.Error("empty MeanOfMeans should report no data")
	}
}

func TestByNMerge(t *testing.T) {
	a, b := NewByN(2), NewByN(2)
	a.Add(0, 1)
	b.Add(0, 3)
	b.Add(2, 10)
	a.Merge(b)
	if m, _ := a.Mean(0); m != 2 {
		t.Errorf("merged Mean(0) = %v", m)
	}
	if c := a.Count(2); c != 1 {
		t.Errorf("merged Count(2) = %d", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched merge should panic")
		}
	}()
	a.Merge(NewByN(5))
}

func TestByNNegativeMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative max should panic")
		}
	}()
	NewByN(-1)
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Error("empty series should report zeros")
	}
	s.Add(0, 5)
	s.Add(1, -2)
	s.Add(1, 9) // equal times allowed
	if got := s.Len(); got != 3 {
		t.Errorf("Len = %d", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v", got)
	}
	if got := s.Mean(); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("backward time should panic")
		}
	}()
	s.Add(0.5, 1)
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Mean() != 0 {
		t.Error("empty counter mean should be 0")
	}
	c.Add(4)
	c.Add(8)
	c.Inc()
	if c.N() != 3 {
		t.Errorf("N = %d", c.N())
	}
	if c.Sum() != 12 {
		t.Errorf("Sum = %v", c.Sum())
	}
	if c.Mean() != 4 {
		t.Errorf("Mean = %v", c.Mean())
	}
}

// Property: GrandMean equals total/count for arbitrary observations.
func TestByNGrandMeanDefinition(t *testing.T) {
	f := func(levels []uint8, values []int8) bool {
		b := NewByN(10)
		var sum float64
		var cnt int
		for i := range levels {
			if i >= len(values) {
				break
			}
			v := float64(values[i])
			b.Add(int(levels[i])%11, v)
			sum += v
			cnt++
		}
		m, ok := b.GrandMean()
		if cnt == 0 {
			return !ok
		}
		return ok && math.Abs(m-sum/float64(cnt)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
