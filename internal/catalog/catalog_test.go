package catalog

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/diskmodel"
	"repro/internal/si"
)

func testConfig(titles, disks int, theta float64) Config {
	return Config{
		Titles:          titles,
		Disks:           disks,
		Spec:            diskmodel.Barracuda9LP(),
		PopularityTheta: theta,
	}
}

func TestMPEG1Video(t *testing.T) {
	v := MPEG1Video(3)
	if v.Rate != si.Mbps(1.5) {
		t.Errorf("rate = %v, want 1.5 Mbps", v.Rate)
	}
	if v.Length != si.Minutes(120) {
		t.Errorf("length = %v, want 120 min", v.Length)
	}
	// 1.5 Mbps * 7200s = 10.8 Gbit = 1.35 GB.
	if got := v.Size().GigabytesVal(); math.Abs(got-1.35) > 1e-9 {
		t.Errorf("size = %v GB, want 1.35", got)
	}
}

func TestNewPlacesContiguously(t *testing.T) {
	lib, err := New(testConfig(6, 1, 0.271))
	if err != nil {
		t.Fatal(err)
	}
	// Extents must be adjacent and non-overlapping on the single disk.
	var prevEnd si.Bits
	for id := 0; id < lib.Len(); id++ {
		p := lib.Placement(id)
		if p.Start != prevEnd {
			t.Errorf("video %d starts at %v, want %v", id, p.Start, prevEnd)
		}
		prevEnd = p.Start + p.Video.Size()
	}
}

func TestNewRoundRobinAcrossDisks(t *testing.T) {
	lib, err := New(testConfig(10, 4, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < lib.Len(); id++ {
		if got, want := lib.Placement(id).Disk, id%4; got != want {
			t.Errorf("video %d on disk %d, want %d", id, got, want)
		}
	}
}

func TestNewRejectsOverflow(t *testing.T) {
	// 9.19 GB disk holds 6 full MPEG-1 titles (6*1.35 = 8.1 GB); 7 do not fit.
	if _, err := New(testConfig(7, 1, 0)); err == nil {
		t.Error("placing 7 titles on one disk should overflow")
	}
	if _, err := New(testConfig(6, 1, 0)); err != nil {
		t.Errorf("placing 6 titles should fit: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testConfig(0, 1, 0)); err == nil {
		t.Error("zero titles should fail")
	}
	if _, err := New(testConfig(1, 0, 0)); err == nil {
		t.Error("zero disks should fail")
	}
	bad := testConfig(1, 1, 0)
	bad.Spec.TransferRate = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid spec should fail")
	}
	badVideo := testConfig(1, 1, 0)
	badVideo.Video = func(id int) Video { return Video{ID: id, Rate: 0, Length: 1} }
	if _, err := New(badVideo); err == nil {
		t.Error("zero-rate video should fail")
	}
}

func TestCylinderAt(t *testing.T) {
	spec := diskmodel.Barracuda9LP()
	lib, err := New(testConfig(6, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	p := lib.Placement(0)
	start := p.CylinderAt(spec, 0)
	end := p.CylinderAt(spec, p.Video.Length)
	if start != 0 {
		t.Errorf("start cylinder = %d, want 0", start)
	}
	// The video spans 1.35/9.19 of the disk: about 881 of 6000 cylinders.
	if end < 850 || end > 900 {
		t.Errorf("end cylinder = %d, want about 881", end)
	}
	// Clamping.
	if got := p.CylinderAt(spec, -5); got != start {
		t.Errorf("negative position cylinder = %d, want %d", got, start)
	}
	if got := p.CylinderAt(spec, p.Video.Length*2); got != end {
		t.Errorf("past-end cylinder = %d, want %d", got, end)
	}
	// Monotone in position.
	prev := -1
	for m := 0.0; m <= 120; m += 7 {
		c := p.CylinderAt(spec, si.Minutes(m))
		if c < prev {
			t.Errorf("cylinder decreased at %v min: %d < %d", m, c, prev)
		}
		prev = c
	}
}

func TestZipfWeights(t *testing.T) {
	// theta = 1 is uniform.
	u := ZipfWeights(5, 1)
	for i, w := range u {
		if math.Abs(w-0.2) > 1e-12 {
			t.Errorf("uniform weight[%d] = %v, want 0.2", i, w)
		}
	}
	// theta = 0 is the 1/i law.
	z := ZipfWeights(3, 0)
	h := 1 + 0.5 + 1.0/3
	want := []float64{1 / h, 0.5 / h, (1.0 / 3) / h}
	for i := range z {
		if math.Abs(z[i]-want[i]) > 1e-12 {
			t.Errorf("zipf weight[%d] = %v, want %v", i, z[i], want[i])
		}
	}
	// Out-of-range theta clamps rather than exploding.
	if got := ZipfWeights(4, 2); math.Abs(got[0]-0.25) > 1e-12 {
		t.Errorf("theta=2 should clamp to uniform, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("ZipfWeights(0, ...) should panic")
		}
	}()
	ZipfWeights(0, 0)
}

// Property: Zipf weights always sum to 1, are positive, and are
// non-increasing in rank.
func TestZipfWeightsInvariants(t *testing.T) {
	f := func(nRaw uint8, theta float64) bool {
		n := 1 + int(nRaw)%200
		w := ZipfWeights(n, theta)
		sum := 0.0
		for i, v := range w {
			if v <= 0 {
				return false
			}
			if i > 0 && v > w[i-1]+1e-15 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more skew (smaller theta) never decreases the top rank's share.
func TestZipfSkewOrdering(t *testing.T) {
	f := func(nRaw uint8, a, b float64) bool {
		n := 2 + int(nRaw)%100
		ta := math.Min(1, math.Max(0, a))
		tb := math.Min(1, math.Max(0, b))
		if ta > tb {
			ta, tb = tb, ta
		}
		return ZipfWeights(n, ta)[0] >= ZipfWeights(n, tb)[0]-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPick(t *testing.T) {
	lib, err := New(testConfig(6, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.Pick(0); got != 0 {
		t.Errorf("Pick(0) = %d, want most popular title 0", got)
	}
	if got := lib.Pick(0.999999); got != lib.Len()-1 {
		t.Errorf("Pick(~1) = %d, want last title", got)
	}
	if got := lib.Pick(2); got != lib.Len()-1 { // out-of-range guard
		t.Errorf("Pick(2) = %d, want last title", got)
	}
	// Pick must respect cumulative boundaries: u just below w0 -> 0,
	// just above -> 1.
	w0 := lib.Popularity(0)
	if got := lib.Pick(w0 - 1e-9); got != 0 {
		t.Errorf("Pick(w0-eps) = %d, want 0", got)
	}
	if got := lib.Pick(w0 + 1e-9); got != 1 {
		t.Errorf("Pick(w0+eps) = %d, want 1", got)
	}
}

func TestDiskLoad(t *testing.T) {
	lib, err := New(testConfig(6, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	load := lib.DiskLoad()
	if len(load) != 3 {
		t.Fatalf("load length = %d, want 3", len(load))
	}
	sum := 0.0
	for _, v := range load {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("disk loads sum to %v, want 1", sum)
	}
	// Round-robin placement with Zipf(0): disk 0 holds ranks 1 and 4, the
	// most popular set, so it must carry the highest load.
	if !(load[0] > load[1] && load[1] > load[2]) {
		t.Errorf("want strictly decreasing loads for zipf(0) round-robin, got %v", load)
	}
}

func TestChunkedPlacement(t *testing.T) {
	spec := diskmodel.Barracuda9LP()
	maxRead := si.Megabytes(26) // above the largest static buffer
	cfg := Config{
		Titles:          4,
		Disks:           1,
		Spec:            spec,
		PopularityTheta: 0.271,
		ChunkSize:       si.Megabytes(128),
		MaxRead:         maxRead,
	}
	lib, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.MaxRead(); got != maxRead {
		t.Errorf("library MaxRead = %v, want %v", got, maxRead)
	}
	p := lib.Placement(0)
	if p.Chunks == nil {
		t.Fatal("placement should be chunked")
	}
	// The storage overhead matches the layout's accounting.
	if ov := p.Chunks.Layout.Overhead(); ov <= 1 || ov > 1.35 {
		t.Errorf("overhead = %v, want a modest replication factor", ov)
	}
	// Reads map into valid disk space, and positions advance with offset
	// inside a chunk.
	a := p.DiskOffset(0, si.Megabits(1))
	b := p.DiskOffset(si.Megabits(1), si.Megabits(1))
	if a < 0 || si.Bits(a) >= spec.Capacity || b != a+si.Megabits(1) {
		t.Errorf("chunk-local reads should be contiguous: %v then %v", a, b)
	}
	// CylinderAt still works through the chunked mapping.
	if c := p.CylinderAt(spec, si.Minutes(60)); c < 0 || c >= spec.Cylinders {
		t.Errorf("cylinder out of range: %d", c)
	}
}

func TestChunkedPlacementValidation(t *testing.T) {
	base := Config{Titles: 1, Disks: 1, Spec: diskmodel.Barracuda9LP(), ChunkSize: si.Megabytes(64)}
	if _, err := New(base); err == nil {
		t.Error("chunked layout without MaxRead should fail")
	}
	small := base
	small.MaxRead = si.Megabytes(60) // chunk < 2x read
	if _, err := New(small); err == nil {
		t.Error("chunk below twice MaxRead should fail")
	}
	// Overhead can push a full disk over capacity.
	over := Config{
		Titles: 6, Disks: 1, Spec: diskmodel.Barracuda9LP(),
		ChunkSize: si.Megabytes(52), MaxRead: si.Megabytes(26),
	}
	if _, err := New(over); err == nil {
		t.Error("2x replication of six titles should overflow the disk")
	}
}

func TestUnchunkedMaxReadUnbounded(t *testing.T) {
	lib, err := New(testConfig(2, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.MaxRead(); got != lib.Video(0).Size() {
		t.Errorf("contiguous MaxRead = %v, want the video size", got)
	}
}
