// Package catalog models the video library of a VOD server: titles with a
// constant consumption rate and length, their contiguous (chunked) layout on
// a disk, their popularity (a Zipf law over titles, following Wolf, Yu &
// Shachnai), and the placement of titles across the disks of a multi-disk
// server.
//
// The paper assumes video data is stored contiguously so one service incurs
// exactly one disk latency; Chang & Garcia-Molina's chunk mechanism makes
// that assumption implementable, and Layout mirrors it: each video occupies
// one contiguous extent, and the cylinder a stream reads from is a pure
// function of its playback position.
package catalog

import (
	"fmt"
	"math"

	"repro/internal/chunk"
	"repro/internal/diskmodel"
	"repro/internal/si"
)

// Video is one title in the library.
type Video struct {
	// ID is the index of the video in its library (0-based).
	ID int

	// Title is a human-readable name used in output.
	Title string

	// Rate is the consumption rate CR of the encoded stream.
	Rate si.BitRate

	// Length is the playback duration.
	Length si.Seconds
}

// Size reports the total encoded size of the video.
func (v Video) Size() si.Bits { return v.Rate.DataIn(v.Length) }

// Placement records where a video lives on a disk: either one contiguous
// extent starting at Start, or — when the library is chunked — a set of
// fixed-size chunks with replication (footnote 3's mechanism), each at its
// own physical address.
type Placement struct {
	Video  Video
	Disk   int              // disk index within the server
	Start  si.Bits          // contiguous extent offset (unchunked layouts)
	Chunks *chunk.Placement // non-nil for chunked layouts
}

// DiskOffset maps a read [offset, offset+length) of the video to the
// physical disk address holding it. For chunked placements the read is
// guaranteed to sit inside one chunk; out-of-range reads are clamped to
// the video (simulation positions can overshoot by float dust).
func (p Placement) DiskOffset(offset, length si.Bits) si.Bits {
	size := p.Video.Size()
	if offset < 0 {
		offset = 0
	}
	if offset+length > size {
		if length > size {
			length = size
		}
		offset = size - length
	}
	if p.Chunks == nil {
		return p.Start + offset
	}
	at, err := p.Chunks.DiskOffset(offset, length)
	if err != nil {
		// Unreachable after clamping unless length exceeds the layout's
		// guarantee, which the simulator's configuration check prevents.
		panic(err)
	}
	return at
}

// MaxRead reports the largest single read the placement guarantees to
// serve with one disk latency: unlimited (the video size) for contiguous
// extents, the chunk layout's bound for chunked ones.
func (p Placement) MaxRead() si.Bits {
	if p.Chunks == nil {
		return p.Video.Size()
	}
	return p.Chunks.Layout.MaxRead()
}

// CylinderAt maps a playback position within the video to the cylinder the
// data for that position occupies, using the disk's uniform-density
// geometry. Positions outside [0, Length] are clamped.
func (p Placement) CylinderAt(spec diskmodel.Spec, pos si.Seconds) int {
	if pos < 0 {
		pos = 0
	}
	if pos > p.Video.Length {
		pos = p.Video.Length
	}
	return spec.CylinderOf(p.DiskOffset(p.Video.Rate.DataIn(pos), 0))
}

// Library is a set of videos with a popularity distribution and a placement
// across the disks of a server.
type Library struct {
	videos     []Video
	placements []Placement
	popularity []float64 // normalized access probability per video
	disks      int
}

// MPEG1Video returns the paper's canonical title: a 120-minute MPEG-1
// stream at 1.5 Mbps.
func MPEG1Video(id int) Video {
	return Video{
		ID:     id,
		Title:  fmt.Sprintf("title-%03d", id),
		Rate:   si.Mbps(1.5),
		Length: si.Minutes(120),
	}
}

// Config parameterizes library construction.
type Config struct {
	// Titles is the number of videos in the library.
	Titles int

	// Disks is the number of disks the library is spread over.
	Disks int

	// Spec is the disk model; every disk is identical, as in the paper.
	Spec diskmodel.Spec

	// PopularityTheta is the Zipf parameter for title popularity.
	// Wolf et al. measured 0.271 for video rental data; 0 is most skewed,
	// 1 is uniform (the paper's convention).
	PopularityTheta float64

	// Video overrides the default MPEG-1 title parameters when non-nil.
	Video func(id int) Video

	// Place overrides the round-robin title-to-disk assignment when
	// non-nil: Place(id) returns the disk for title id, in [0, Disks).
	// Popularity-skewed catalogs use it to balance expected load across
	// disks (e.g. a serpentine deal of titles in popularity order).
	Place func(id int) int

	// ChunkSize, when positive, stores videos as replicated chunks of
	// this size instead of one contiguous extent (footnote 3's layout).
	// It must be at least twice MaxRead.
	ChunkSize si.Bits

	// MaxRead is the largest single read the chunked layout must satisfy
	// within one chunk — at least the largest buffer the server will
	// ever allocate. Required when ChunkSize is set.
	MaxRead si.Bits
}

// New builds a library: Titles videos placed round-robin across Disks disks,
// each video in one contiguous extent, with Zipf(theta) popularity.
// Placement is deterministic so simulations are reproducible.
func New(cfg Config) (*Library, error) {
	if cfg.Titles <= 0 {
		return nil, fmt.Errorf("catalog: need at least one title, got %d", cfg.Titles)
	}
	if cfg.Disks <= 0 {
		return nil, fmt.Errorf("catalog: need at least one disk, got %d", cfg.Disks)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	mk := cfg.Video
	if mk == nil {
		mk = MPEG1Video
	}

	if cfg.ChunkSize > 0 && cfg.MaxRead <= 0 {
		return nil, fmt.Errorf("catalog: chunked layout needs MaxRead")
	}

	lib := &Library{disks: cfg.Disks}
	nextStart := make([]si.Bits, cfg.Disks)
	var allocs []*chunk.Allocator
	if cfg.ChunkSize > 0 {
		allocs = make([]*chunk.Allocator, cfg.Disks)
		for d := range allocs {
			allocs[d] = chunk.NewAllocator(cfg.Spec.Capacity)
		}
	}
	for id := 0; id < cfg.Titles; id++ {
		v := mk(id)
		if v.Rate <= 0 || v.Length <= 0 {
			return nil, fmt.Errorf("catalog: video %d has non-positive rate or length", id)
		}
		disk := id % cfg.Disks
		if cfg.Place != nil {
			if disk = cfg.Place(id); disk < 0 || disk >= cfg.Disks {
				return nil, fmt.Errorf("catalog: Place(%d) = %d outside [0, %d)", id, disk, cfg.Disks)
			}
		}
		if cfg.ChunkSize > 0 {
			layout, err := chunk.NewLayout(v.Size(), cfg.ChunkSize, cfg.MaxRead)
			if err != nil {
				return nil, fmt.Errorf("catalog: video %d: %w", id, err)
			}
			placed, err := allocs[disk].Place(layout)
			if err != nil {
				return nil, fmt.Errorf("catalog: disk %d, video %d: %w", disk, id, err)
			}
			lib.videos = append(lib.videos, v)
			lib.placements = append(lib.placements, Placement{Video: v, Disk: disk, Chunks: placed})
			continue
		}
		start := nextStart[disk]
		if start+v.Size() > cfg.Spec.Capacity {
			return nil, fmt.Errorf("catalog: disk %d overflows placing video %d (%v needed, %v free)",
				disk, id, v.Size(), cfg.Spec.Capacity-start)
		}
		lib.videos = append(lib.videos, v)
		lib.placements = append(lib.placements, Placement{Video: v, Disk: disk, Start: start})
		nextStart[disk] = start + v.Size()
	}
	lib.popularity = ZipfWeights(cfg.Titles, cfg.PopularityTheta)
	return lib, nil
}

// Len reports the number of titles.
func (l *Library) Len() int { return len(l.videos) }

// Disks reports the number of disks the library spans.
func (l *Library) Disks() int { return l.disks }

// Video returns title id.
func (l *Library) Video(id int) Video { return l.videos[id] }

// Placement returns the placement of title id.
func (l *Library) Placement(id int) Placement { return l.placements[id] }

// Popularity returns the access probability of title id.
func (l *Library) Popularity(id int) float64 { return l.popularity[id] }

// Pick maps a uniform random variate u in [0,1) to a title id drawn from
// the popularity distribution.
func (l *Library) Pick(u float64) int {
	acc := 0.0
	for id, p := range l.popularity {
		acc += p
		if u < acc {
			return id
		}
	}
	return len(l.popularity) - 1 // float round-off at the top end
}

// MaxRead reports the largest single read every placement in the library
// guarantees to serve with one disk latency — the binding constraint a
// server's buffer sizes must respect under a chunked layout.
func (l *Library) MaxRead() si.Bits {
	min := si.Bits(math.Inf(1))
	for _, p := range l.placements {
		if m := p.MaxRead(); m < min {
			min = m
		}
	}
	return min
}

// ChunkedMaxRead reports the binding single-read bound of the library's
// chunked placements: the largest read they all guarantee to serve with
// one disk latency. Contiguous placements impose no bound — a server's
// fills are clamped inside the video, and any read inside one extent
// costs one latency — so a library with no chunked placement reports
// +Inf. This, not MaxRead, is the constraint a server's buffer sizes
// must respect: MaxRead also folds in contiguous videos' sizes, which
// bound nothing when buffers may exceed a short title's length.
func (l *Library) ChunkedMaxRead() si.Bits {
	min := si.Bits(math.Inf(1))
	for _, p := range l.placements {
		if p.Chunks == nil {
			continue
		}
		if m := p.MaxRead(); m < min {
			min = m
		}
	}
	return min
}

// DiskLoad reports, for each disk, the total access probability of the
// titles placed on it — the expected fraction of requests that disk serves.
func (l *Library) DiskLoad() []float64 {
	load := make([]float64, l.disks)
	for id, p := range l.placements {
		load[p.Disk] += l.popularity[id]
	}
	return load
}

// ZipfWeights returns n weights following the paper's Zipf convention:
// weight_i ∝ (1/i)^(1-theta) for rank i = 1..n. theta = 0 is the classic,
// highly skewed 1/i law; theta = 1 is uniform. The weights sum to 1.
// It panics if n <= 0; theta is clamped to [0, 1].
func ZipfWeights(n int, theta float64) []float64 {
	if n <= 0 {
		panic("catalog: ZipfWeights with n <= 0")
	}
	theta = math.Min(1, math.Max(0, theta))
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(1/float64(i+1), 1-theta)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
