// Package catalog models the video library of a VOD server: titles with a
// constant consumption rate and length, their contiguous (chunked) layout on
// a disk, their popularity (a Zipf law over titles, following Wolf, Yu &
// Shachnai), and the placement of titles across the disks of a multi-disk
// server.
//
// The paper assumes video data is stored contiguously so one service incurs
// exactly one disk latency; Chang & Garcia-Molina's chunk mechanism makes
// that assumption implementable, and Layout mirrors it: each video occupies
// one contiguous extent, and the cylinder a stream reads from is a pure
// function of its playback position.
package catalog

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chunk"
	"repro/internal/diskmodel"
	"repro/internal/si"
)

// Video is one title in the library.
type Video struct {
	// ID is the index of the video in its library (0-based).
	ID int

	// Title is a human-readable name used in output.
	Title string

	// Rate is the consumption rate CR of the encoded stream.
	Rate si.BitRate

	// Length is the playback duration.
	Length si.Seconds

	// Ladder is the title's bitrate ladder: the encodings available for
	// downgrading admission, strictly descending, with Ladder[0] == Rate
	// (the full-quality rung a viewer requests by default). Empty means
	// the title has a single encoding at Rate — the paper's regime.
	Ladder []si.BitRate
}

// Rungs returns the title's available consumption rates, best first. A
// title without a ladder has exactly one rung, its Rate. The returned
// slice is owned by the Video; callers must not mutate it.
func (v Video) Rungs() []si.BitRate {
	if len(v.Ladder) > 0 {
		return v.Ladder
	}
	return []si.BitRate{v.Rate}
}

// Size reports the total encoded size of the video.
func (v Video) Size() si.Bits { return v.Rate.DataIn(v.Length) }

// Placement records where one extent of video data lives on a disk:
// either one contiguous extent starting at Start, or — when the library
// is chunked — a set of fixed-size chunks with replication (footnote 3's
// mechanism), each at its own physical address. A placement normally
// holds the whole video; a striped replica's segment holds the Span bits
// starting From bits into the title (Span == 0 means the whole video).
type Placement struct {
	Video  Video
	Disk   int              // disk index within the server
	Start  si.Bits          // contiguous extent offset (unchunked layouts)
	Chunks *chunk.Placement // non-nil for chunked layouts
	From   si.Bits          // offset of this extent within the video
	Span   si.Bits          // extent length; 0 = the whole video
}

// ContentSize reports how much of the video this placement holds: the
// segment span for striped layouts, the full size otherwise.
func (p Placement) ContentSize() si.Bits {
	if p.Span > 0 {
		return p.Span
	}
	return p.Video.Size()
}

// DiskOffset maps a read [offset, offset+length) of this placement's
// content to the physical disk address holding it. Offsets are relative
// to the placement (for a whole-title placement that is the video start;
// for a striped segment, the segment start). For chunked placements the
// read is guaranteed to sit inside one chunk; out-of-range reads are
// clamped to the content (simulation positions can overshoot by float
// dust).
func (p Placement) DiskOffset(offset, length si.Bits) si.Bits {
	size := p.ContentSize()
	if offset < 0 {
		offset = 0
	}
	if offset+length > size {
		if length > size {
			length = size
		}
		offset = size - length
	}
	if p.Chunks == nil {
		return p.Start + offset
	}
	at, err := p.Chunks.DiskOffset(offset, length)
	if err != nil {
		// Unreachable after clamping unless length exceeds the layout's
		// guarantee, which the simulator's configuration check prevents.
		panic(err)
	}
	return at
}

// MaxRead reports the largest single read the placement guarantees to
// serve with one disk latency: unlimited (the content size) for
// contiguous extents, the chunk layout's bound for chunked ones.
func (p Placement) MaxRead() si.Bits {
	if p.Chunks == nil {
		return p.ContentSize()
	}
	return p.Chunks.Layout.MaxRead()
}

// CylinderAt maps a playback position within this placement's content to
// the cylinder the data for that position occupies, using the disk's
// uniform-density geometry. Out-of-range positions are clamped.
func (p Placement) CylinderAt(spec diskmodel.Spec, pos si.Seconds) int {
	if pos < 0 {
		pos = 0
	}
	if max := si.Seconds(float64(p.ContentSize()) / float64(p.Video.Rate)); pos > max {
		pos = max
	}
	return spec.CylinderOf(p.DiskOffset(p.Video.Rate.DataIn(pos), 0))
}

// Replica is one materialized copy of a title: a single whole-title
// placement, or — for striped layouts — the title's segments in playback
// order.
type Replica struct {
	Segments []Placement
}

// Library is a set of videos with a popularity distribution and a placement
// across the disks of a server.
type Library struct {
	videos     []Video
	replicas   [][]Replica // per title, every materialized copy
	placements []Placement // primary placement per title (first replica's first segment)
	popularity []float64   // normalized access probability per video
	disks      int
	policy     string
}

// MPEG1Video returns the paper's canonical title: a 120-minute MPEG-1
// stream at 1.5 Mbps.
func MPEG1Video(id int) Video {
	return Video{
		ID:     id,
		Title:  fmt.Sprintf("title-%03d", id),
		Rate:   si.Mbps(1.5),
		Length: si.Minutes(120),
	}
}

// Config parameterizes library construction.
type Config struct {
	// Titles is the number of videos in the library.
	Titles int

	// Disks is the number of disks the library is spread over.
	Disks int

	// Spec is the disk model; every disk is identical, as in the paper.
	Spec diskmodel.Spec

	// PopularityTheta is the Zipf parameter for title popularity.
	// Wolf et al. measured 0.271 for video rental data; 0 is most skewed,
	// 1 is uniform (the paper's convention).
	PopularityTheta float64

	// Video overrides the default MPEG-1 title parameters when non-nil.
	Video func(id int) Video

	// Place overrides the round-robin title-to-disk assignment when
	// non-nil: Place(id) returns the disk for title id, in [0, Disks).
	// Popularity-skewed catalogs use it to balance expected load across
	// disks (e.g. a serpentine deal of titles in popularity order).
	// Ignored when Policy is set.
	Place func(id int) int

	// Policy decides the full layout — replication and striping included
	// — when non-nil, superseding Place. The default (nil Policy, nil
	// Place) is RoundRobin.
	Policy PlacementPolicy

	// ChunkSize, when positive, stores videos as replicated chunks of
	// this size instead of one contiguous extent (footnote 3's layout).
	// It must be at least twice MaxRead.
	ChunkSize si.Bits

	// MaxRead is the largest single read the chunked layout must satisfy
	// within one chunk — at least the largest buffer the server will
	// ever allocate. Required when ChunkSize is set.
	MaxRead si.Bits
}

// New builds a library: Titles videos laid out by the configured
// placement policy (round-robin by default), each extent contiguous, with
// Zipf(theta) popularity. The policy decides the title→disk map (and any
// replication or striping); New owns the physical side — extent offsets
// accumulate per disk in (title, replica, segment) order and capacity is
// checked here — so every policy shares one deterministic, reproducible
// materialization.
func New(cfg Config) (*Library, error) {
	if cfg.Titles <= 0 {
		return nil, fmt.Errorf("catalog: need at least one title, got %d", cfg.Titles)
	}
	if cfg.Disks <= 0 {
		return nil, fmt.Errorf("catalog: need at least one disk, got %d", cfg.Disks)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	mk := cfg.Video
	if mk == nil {
		mk = MPEG1Video
	}

	if cfg.ChunkSize > 0 && cfg.MaxRead <= 0 {
		return nil, fmt.Errorf("catalog: chunked layout needs MaxRead")
	}

	videos := make([]Video, cfg.Titles)
	for id := range videos {
		v := mk(id)
		if v.Rate <= 0 || v.Length <= 0 {
			return nil, fmt.Errorf("catalog: video %d has non-positive rate or length", id)
		}
		if len(v.Ladder) > 0 {
			if v.Ladder[0] != v.Rate {
				return nil, fmt.Errorf("catalog: video %d ladder top rung %v != rate %v", id, v.Ladder[0], v.Rate)
			}
			for r := 1; r < len(v.Ladder); r++ {
				if v.Ladder[r] <= 0 || v.Ladder[r] >= v.Ladder[r-1] {
					return nil, fmt.Errorf("catalog: video %d ladder not strictly descending and positive at rung %d (%v)", id, r, v.Ladder[r])
				}
			}
		}
		videos[id] = v
	}
	popularity := ZipfWeights(cfg.Titles, cfg.PopularityTheta)

	policy := cfg.Policy
	if policy == nil {
		if cfg.Place != nil {
			policy = placeFunc(cfg.Place)
		} else {
			policy = RoundRobin{}
		}
	}
	specs, err := policy.Place(PolicyContext{
		Videos:     videos,
		Disks:      cfg.Disks,
		Spec:       cfg.Spec,
		Popularity: popularity,
	})
	if err != nil {
		return nil, err
	}
	if len(specs) != cfg.Titles {
		return nil, fmt.Errorf("catalog: policy %s placed %d of %d titles", policy.Name(), len(specs), cfg.Titles)
	}

	lib := &Library{
		videos:     videos,
		replicas:   make([][]Replica, cfg.Titles),
		placements: make([]Placement, cfg.Titles),
		popularity: popularity,
		disks:      cfg.Disks,
		policy:     policy.Name(),
	}
	nextStart := make([]si.Bits, cfg.Disks)
	var allocs []*chunk.Allocator
	if cfg.ChunkSize > 0 {
		allocs = make([]*chunk.Allocator, cfg.Disks)
		for d := range allocs {
			allocs[d] = chunk.NewAllocator(cfg.Spec.Capacity)
		}
	}
	for id, v := range videos {
		lib.placements[id] = Placement{Video: v, Disk: -1} // absent until a replica lands
		for ri, spec := range specs[id] {
			if len(spec.Disks) == 0 {
				return nil, fmt.Errorf("catalog: policy %s: video %d replica %d spans no disks", policy.Name(), id, ri)
			}
			if len(spec.Disks) > 1 && cfg.ChunkSize > 0 {
				return nil, fmt.Errorf("catalog: video %d: striped replicas cannot use a chunked layout", id)
			}
			rep := Replica{Segments: make([]Placement, len(spec.Disks))}
			width := len(spec.Disks)
			for seg, disk := range spec.Disks {
				if disk < 0 || disk >= cfg.Disks {
					return nil, fmt.Errorf("catalog: policy %s: video %d on disk %d outside [0, %d)", policy.Name(), id, disk, cfg.Disks)
				}
				// Equal-duration segments in playback order; boundaries
				// telescope so the spans sum to the video size exactly.
				from := v.Size() * si.Bits(float64(seg)/float64(width))
				to := v.Size() * si.Bits(float64(seg+1)/float64(width))
				span := to - from
				if cfg.ChunkSize > 0 {
					layout, err := chunk.NewLayout(v.Size(), cfg.ChunkSize, cfg.MaxRead)
					if err != nil {
						return nil, fmt.Errorf("catalog: video %d: %w", id, err)
					}
					placed, err := allocs[disk].Place(layout)
					if err != nil {
						return nil, fmt.Errorf("catalog: disk %d, video %d: %w", disk, id, err)
					}
					rep.Segments[seg] = Placement{Video: v, Disk: disk, Chunks: placed}
					continue
				}
				start := nextStart[disk]
				if start+span > cfg.Spec.Capacity {
					return nil, fmt.Errorf("catalog: disk %d overflows placing video %d (%v needed, %v free)",
						disk, id, span, cfg.Spec.Capacity-start)
				}
				p := Placement{Video: v, Disk: disk, Start: start}
				if width > 1 {
					p.From, p.Span = from, span
				}
				rep.Segments[seg] = p
				nextStart[disk] = start + span
			}
			lib.replicas[id] = append(lib.replicas[id], rep)
			if ri == 0 {
				lib.placements[id] = rep.Segments[0]
			}
		}
	}
	return lib, nil
}

// Len reports the number of titles.
func (l *Library) Len() int { return len(l.videos) }

// Disks reports the number of disks the library spans.
func (l *Library) Disks() int { return l.disks }

// Video returns title id.
func (l *Library) Video(id int) Video { return l.videos[id] }

// Placement returns the primary placement of title id: its first
// replica's first segment. Titles the policy left out of this library
// (possible in per-server views of a fleet catalog) report Disk == -1.
func (l *Library) Placement(id int) Placement { return l.placements[id] }

// Replicas returns every materialized copy of title id, in the order the
// policy produced them (the first is the primary).
func (l *Library) Replicas(id int) []Replica { return l.replicas[id] }

// PlacementFor returns the placement of title id's data on the given
// disk — the first replica segment living there — and whether one
// exists. Disks serve streams from their local copy, so a replicated
// title reads from whichever disk the router picked.
func (l *Library) PlacementFor(id, disk int) (Placement, bool) {
	for _, rep := range l.replicas[id] {
		for _, seg := range rep.Segments {
			if seg.Disk == disk {
				return seg, true
			}
		}
	}
	return Placement{}, false
}

// Rates returns the union of every title's ladder rungs, descending —
// the complete set of consumption rates a server hosting this library
// must be able to size buffers for.
func (l *Library) Rates() []si.BitRate {
	seen := map[si.BitRate]bool{}
	var rates []si.BitRate
	for _, v := range l.videos {
		for _, r := range v.Rungs() {
			if !seen[r] {
				seen[r] = true
				rates = append(rates, r)
			}
		}
	}
	sort.Slice(rates, func(i, j int) bool { return rates[i] > rates[j] })
	return rates
}

// RungOf maps a delivered rate back to its index in title id's ladder
// (0 is full quality), or -1 if the title has no such rung.
func (l *Library) RungOf(id int, rate si.BitRate) int {
	for i, r := range l.videos[id].Rungs() {
		if r == rate {
			return i
		}
	}
	return -1
}

// PolicyName reports which placement policy laid the library out.
func (l *Library) PolicyName() string { return l.policy }

// Popularity returns the access probability of title id.
func (l *Library) Popularity(id int) float64 { return l.popularity[id] }

// Pick maps a uniform random variate u in [0,1) to a title id drawn from
// the popularity distribution.
func (l *Library) Pick(u float64) int {
	acc := 0.0
	for id, p := range l.popularity {
		acc += p
		if u < acc {
			return id
		}
	}
	return len(l.popularity) - 1 // float round-off at the top end
}

// MaxRead reports the largest single read every placement in the library
// guarantees to serve with one disk latency — the binding constraint a
// server's buffer sizes must respect under a chunked layout.
func (l *Library) MaxRead() si.Bits {
	min := si.Bits(math.Inf(1))
	l.eachPlacement(func(_ int, p Placement) {
		if m := p.MaxRead(); m < min {
			min = m
		}
	})
	return min
}

// eachPlacement visits every materialized placement — all segments of
// all replicas of all titles. The derived layout measures (MaxRead,
// ChunkedMaxRead, DiskLoad) all walk the layout through here, so they
// cannot drift from what the policy actually placed.
func (l *Library) eachPlacement(fn func(id int, p Placement)) {
	for id, reps := range l.replicas {
		for _, rep := range reps {
			for _, seg := range rep.Segments {
				fn(id, seg)
			}
		}
	}
}

// ChunkedMaxRead reports the binding single-read bound of the library's
// chunked placements: the largest read they all guarantee to serve with
// one disk latency. Contiguous placements impose no bound — a server's
// fills are clamped inside the video, and any read inside one extent
// costs one latency — so a library with no chunked placement reports
// +Inf. This, not MaxRead, is the constraint a server's buffer sizes
// must respect: MaxRead also folds in contiguous videos' sizes, which
// bound nothing when buffers may exceed a short title's length.
func (l *Library) ChunkedMaxRead() si.Bits {
	min := si.Bits(math.Inf(1))
	l.eachPlacement(func(_ int, p Placement) {
		if p.Chunks == nil {
			return
		}
		if m := p.MaxRead(); m < min {
			min = m
		}
	})
	return min
}

// DiskLoad reports, for each disk, the total access probability of the
// data placed on it — the expected fraction of requests that disk serves
// when demand splits evenly across a title's replicas and, within a
// striped replica, in proportion to each segment's share of the title.
// The admission router and the scale scenarios both read headroom off
// this, so the accounting lives here, next to the layout it measures.
func (l *Library) DiskLoad() []float64 {
	load := make([]float64, l.disks)
	for id, reps := range l.replicas {
		if len(reps) == 0 {
			continue
		}
		share := l.popularity[id] / float64(len(reps))
		for _, rep := range reps {
			size := float64(l.videos[id].Size())
			for _, seg := range rep.Segments {
				load[seg.Disk] += share * float64(seg.ContentSize()) / size
			}
		}
	}
	return load
}

// ZipfWeights returns n weights following the paper's Zipf convention:
// weight_i ∝ (1/i)^(1-theta) for rank i = 1..n. theta = 0 is the classic,
// highly skewed 1/i law; theta = 1 is uniform. The weights sum to 1.
// It panics if n <= 0; theta is clamped to [0, 1].
func ZipfWeights(n int, theta float64) []float64 {
	if n <= 0 {
		panic("catalog: ZipfWeights with n <= 0")
	}
	theta = math.Min(1, math.Max(0, theta))
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(1/float64(i+1), 1-theta)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
