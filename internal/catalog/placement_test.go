package catalog

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/diskmodel"
	"repro/internal/si"
)

func testConfigPolicy(titles, disks int, pol PlacementPolicy) Config {
	cfg := testConfig(titles, disks, 0.271)
	cfg.Video = shortVideo
	cfg.Policy = pol
	return cfg
}

// shortVideo keeps property-test catalogs dense: 30-minute titles, so a
// demo disk holds ~27 copies and replication sweeps have room to play.
func shortVideo(id int) Video {
	v := MPEG1Video(id)
	v.Length = si.Minutes(30)
	return v
}

// checkLayoutInvariants asserts the physical guarantees every placement
// policy must deliver through the shared materialization in New:
//
//   - every replica covers the title exactly once: segment spans
//     telescope in playback order and sum to the video size;
//   - no two extents on one disk overlap;
//   - no disk exceeds its formatted capacity.
func checkLayoutInvariants(t *testing.T, lib *Library) {
	t.Helper()
	capacity := diskmodel.Barracuda9LP().Capacity
	type extent struct {
		start, end si.Bits
		what       string
	}
	perDisk := make([][]extent, lib.Disks())
	for id := 0; id < lib.Len(); id++ {
		size := lib.Video(id).Size()
		for ri, rep := range lib.Replicas(id) {
			if len(rep.Segments) == 0 {
				t.Errorf("title %d replica %d has no segments", id, ri)
				continue
			}
			var covered si.Bits
			for si_, seg := range rep.Segments {
				if seg.From != covered {
					t.Errorf("title %d replica %d segment %d starts at %v into the title, want %v (gap or overlap)",
						id, ri, si_, seg.From, covered)
				}
				span := seg.ContentSize()
				if span <= 0 {
					t.Errorf("title %d replica %d segment %d has non-positive span %v", id, ri, si_, span)
				}
				covered += span
				d := seg.Disk
				perDisk[d] = append(perDisk[d], extent{
					start: seg.Start,
					end:   seg.Start + span,
					what:  fmt.Sprintf("title %d replica %d segment %d", id, ri, si_),
				})
			}
			if covered != size {
				t.Errorf("title %d replica %d covers %v of the %v title", id, ri, covered, size)
			}
		}
	}
	for d, extents := range perDisk {
		for i, a := range extents {
			if a.end > capacity {
				t.Errorf("disk %d: %s ends at %v, beyond the %v capacity", d, a.what, a.end, capacity)
			}
			for _, b := range extents[i+1:] {
				if a.start < b.end && b.start < a.end {
					t.Errorf("disk %d: %s [%v, %v) overlaps %s [%v, %v)",
						d, a.what, a.start, a.end, b.what, b.start, b.end)
				}
			}
		}
	}
}

func TestPlacementPolicyInvariants(t *testing.T) {
	policies := []PlacementPolicy{
		RoundRobin{},
		LeastLoaded{},
		Striped{Width: 2},
		Striped{Width: 4},
		Replicated{Base: LeastLoaded{}, HotTitles: 4, Copies: 4, ColdCopies: 2, GroupSize: 2},
		Replicated{Base: RoundRobin{}, HotTitles: 2, Copies: 3},
		Replicated{HotTitles: 16, Copies: 8, ColdCopies: 1, GroupSize: 4},
	}
	for _, pol := range policies {
		for _, shape := range []struct{ titles, disks int }{
			{titles: 16, disks: 4},
			{titles: 9, disks: 8},
			{titles: 40, disks: 8},
		} {
			name := fmt.Sprintf("%s/%dx%d", pol.Name(), shape.titles, shape.disks)
			t.Run(name, func(t *testing.T) {
				lib, err := New(testConfigPolicy(shape.titles, shape.disks, pol))
				if err != nil {
					t.Fatal(err)
				}
				checkLayoutInvariants(t, lib)
			})
		}
	}
}

// The RoundRobin policy must reproduce the constructor's historical
// default layout byte-for-byte: title id whole on disk id mod Disks,
// extents accumulating in title order — simulations and goldens from
// before the policy layer depend on it.
func TestRoundRobinMatchesLegacyLayout(t *testing.T) {
	const titles, disks = 13, 4
	legacy, err := New(testConfigPolicy(titles, disks, nil)) // nil = the historical default
	if err != nil {
		t.Fatal(err)
	}
	policy, err := New(testConfigPolicy(titles, disks, RoundRobin{}))
	if err != nil {
		t.Fatal(err)
	}
	next := make([]si.Bits, disks)
	for id := 0; id < titles; id++ {
		if !reflect.DeepEqual(legacy.Replicas(id), policy.Replicas(id)) {
			t.Errorf("title %d: RoundRobin layout diverges from the legacy default:\nlegacy %+v\npolicy %+v",
				id, legacy.Replicas(id), policy.Replicas(id))
		}
		// And both must match the layout computed from first principles.
		p := policy.Placement(id)
		d := id % disks
		if p.Disk != d || p.Start != next[d] {
			t.Errorf("title %d placed at disk %d offset %v, want disk %d offset %v",
				id, p.Disk, p.Start, d, next[d])
		}
		next[d] += p.Video.Size()
	}
}

// Replicated must put a hot title's copies on distinct disks and, with
// GroupSize set, across distinct server groups while any group lacks
// one — a whole-group failure may not take out every copy.
func TestReplicatedSpreadsCopies(t *testing.T) {
	const titles, disks, group = 8, 8, 2
	lib, err := New(testConfigPolicy(titles, disks, Replicated{
		Base:       LeastLoaded{},
		HotTitles:  4,
		Copies:     4,
		ColdCopies: 2,
		GroupSize:  group,
	}))
	if err != nil {
		t.Fatal(err)
	}
	checkLayoutInvariants(t, lib)
	for id := 0; id < titles; id++ {
		reps := lib.Replicas(id)
		want := 4
		if id >= 4 {
			want = 2
		}
		if len(reps) != want {
			t.Errorf("title %d has %d replicas, want %d", id, len(reps), want)
		}
		seen := map[int]bool{}
		groups := map[int]bool{}
		for _, rep := range reps {
			d := rep.Segments[0].Disk
			if seen[d] {
				t.Errorf("title %d has two copies on disk %d", id, d)
			}
			seen[d] = true
			groups[d/group] = true
		}
		// 4 groups exist; with copies <= groups every copy gets its own.
		if len(groups) != len(reps) {
			t.Errorf("title %d spreads %d copies over %d groups, want one group each",
				id, len(reps), len(groups))
		}
	}
}

// The policy layer's validation: bad parameters fail loudly instead of
// producing a silently wrong layout.
func TestPolicyValidation(t *testing.T) {
	cases := []struct {
		name string
		pol  PlacementPolicy
	}{
		{"replicated zero copies", Replicated{HotTitles: 2, Copies: 0}},
		{"stripe width zero", Striped{Width: 0}},
		{"stripe width beyond disks", Striped{Width: 9}},
		{"explicit wrong length", Explicit{{{Disks: []int{0}}}}},
		{"explicit disk out of range", wrongDiskExplicit(4)},
		{"explicit empty replica", emptyReplicaExplicit(4)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(testConfigPolicy(4, 2, c.pol)); err == nil {
				t.Errorf("policy %s accepted, want an error", c.pol.Name())
			}
		})
	}
}

func wrongDiskExplicit(titles int) Explicit {
	e := make(Explicit, titles)
	for i := range e {
		e[i] = []ReplicaSpec{{Disks: []int{99}}}
	}
	return e
}

func emptyReplicaExplicit(titles int) Explicit {
	e := make(Explicit, titles)
	for i := range e {
		e[i] = []ReplicaSpec{{}}
	}
	return e
}
