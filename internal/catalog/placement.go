package catalog

import (
	"fmt"
	"sort"

	"repro/internal/diskmodel"
)

// PolicyContext is the input a PlacementPolicy decides from: the titles,
// the disk budget, the disk geometry, and the normalized popularity of
// each title (already computed, so policies that weight by popularity and
// the Library's own load accounting share one distribution).
type PolicyContext struct {
	Videos     []Video
	Disks      int
	Spec       diskmodel.Spec
	Popularity []float64
}

// ReplicaSpec names the disks one complete copy of a title occupies. A
// single disk holds the whole title contiguously; k > 1 disks stripe the
// copy into k equal-duration segments in playback order, one per listed
// disk. Physical extents are assigned by the Library constructor, not the
// policy, so capacity accounting lives in one place.
type ReplicaSpec struct {
	Disks []int
}

// PlacementPolicy decides where titles live. Place returns, for each
// title (outer index = video ID), the list of replicas to materialize.
// An empty replica list is legal and means the title is absent from this
// library — multi-server fleets use that to build per-server views of a
// global catalog. The decision must be deterministic: simulations and
// goldens depend on byte-identical layouts.
type PlacementPolicy interface {
	// Name identifies the policy in reports and errors.
	Name() string
	// Place maps every title to its replicas.
	Place(ctx PolicyContext) ([][]ReplicaSpec, error)
}

// RoundRobin is the classic one-copy layout: title id lives whole on disk
// id mod Disks. It reproduces the constructor's historical default
// byte-for-byte (the policy-oracle test pins this).
type RoundRobin struct{}

// Name implements PlacementPolicy.
func (RoundRobin) Name() string { return "round-robin" }

// Place implements PlacementPolicy.
func (RoundRobin) Place(ctx PolicyContext) ([][]ReplicaSpec, error) {
	out := make([][]ReplicaSpec, len(ctx.Videos))
	for id := range ctx.Videos {
		out[id] = []ReplicaSpec{{Disks: []int{id % ctx.Disks}}}
	}
	return out, nil
}

// LeastLoaded places one copy of each title, in title order, on the disk
// with the least accumulated popularity (lowest disk first on ties).
// Because Zipf popularity falls with the id, this is the greedy
// longest-processing-time deal the scale scenarios used to hand-roll: a
// near-uniform expected load when no single title outweighs a fair share.
type LeastLoaded struct{}

// Name implements PlacementPolicy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Place implements PlacementPolicy.
func (LeastLoaded) Place(ctx PolicyContext) ([][]ReplicaSpec, error) {
	out := make([][]ReplicaSpec, len(ctx.Videos))
	load := make([]float64, ctx.Disks)
	for id := range ctx.Videos {
		best := 0
		for d := 1; d < ctx.Disks; d++ {
			if load[d] < load[best] {
				best = d
			}
		}
		out[id] = []ReplicaSpec{{Disks: []int{best}}}
		load[best] += ctx.Popularity[id]
	}
	return out, nil
}

// Replicated wraps a base policy with popularity-weighted replication:
// the hottest HotTitles titles get extra whole-title copies on the disks
// with the least expected load, so a router can spread their demand.
type Replicated struct {
	// Base decides the primary copy of every title; nil means LeastLoaded.
	Base PlacementPolicy

	// HotTitles is how many of the most popular titles to replicate.
	HotTitles int

	// Copies is the total number of copies a hot title ends with
	// (including the primary). Must be >= 1; values above Disks are
	// capped by the distinct-disk rule.
	Copies int

	// ColdCopies, when > 1, also replicates the non-hot tail to this many
	// copies — e.g. 2 gives every cold title a failover twin.
	ColdCopies int

	// GroupSize, when > 0, partitions the disks into consecutive groups
	// of this size (a fleet's servers) and spreads a title's copies
	// across distinct groups while any group lacks one, so a whole-server
	// failure leaves every hot title reachable.
	GroupSize int
}

// Name implements PlacementPolicy.
func (r Replicated) Name() string { return "replicated(" + r.base().Name() + ")" }

func (r Replicated) base() PlacementPolicy {
	if r.Base == nil {
		return LeastLoaded{}
	}
	return r.Base
}

// Place implements PlacementPolicy.
func (r Replicated) Place(ctx PolicyContext) ([][]ReplicaSpec, error) {
	if r.Copies < 1 {
		return nil, fmt.Errorf("catalog: Replicated.Copies = %d, need >= 1", r.Copies)
	}
	out, err := r.base().Place(ctx)
	if err != nil {
		return nil, err
	}
	// Expected load per disk, counting each title's primary layout.
	load := make([]float64, ctx.Disks)
	for id, reps := range out {
		for _, rep := range reps {
			for _, d := range rep.Disks {
				load[d] += ctx.Popularity[id] / float64(len(reps)*len(rep.Disks))
			}
		}
	}
	// Hottest titles first: popularity descending, id ascending on ties.
	rank := make([]int, len(ctx.Videos))
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(a, b int) bool {
		return ctx.Popularity[rank[a]] > ctx.Popularity[rank[b]]
	})
	for pos, id := range rank {
		copies := r.Copies
		if pos >= r.HotTitles {
			copies = r.ColdCopies
		}
		if copies <= len(out[id]) {
			continue
		}
		// The title's demand now splits across `copies` replicas; re-weight
		// the primary's contribution before placing the extras.
		w := ctx.Popularity[id]
		for _, rep := range out[id] {
			for _, d := range rep.Disks {
				load[d] -= (w - w/float64(copies)) / float64(len(out[id])*len(rep.Disks))
			}
		}
		for len(out[id]) < copies {
			d := r.pickDisk(ctx, load, out[id])
			if d < 0 {
				break // every disk (or group) already holds a copy
			}
			out[id] = append(out[id], ReplicaSpec{Disks: []int{d}})
			load[d] += w / float64(copies)
		}
	}
	return out, nil
}

// pickDisk returns the least-loaded disk eligible for the next copy of a
// title: one not already holding a copy and, while some group lacks the
// title, in such a group. -1 means no disk qualifies.
func (r Replicated) pickDisk(ctx PolicyContext, load []float64, have []ReplicaSpec) int {
	used := make(map[int]bool)
	usedGroup := make(map[int]bool)
	for _, rep := range have {
		for _, d := range rep.Disks {
			used[d] = true
			if r.GroupSize > 0 {
				usedGroup[d/r.GroupSize] = true
			}
		}
	}
	groups := 0
	if r.GroupSize > 0 {
		groups = (ctx.Disks + r.GroupSize - 1) / r.GroupSize
	}
	freshGroups := r.GroupSize > 0 && len(usedGroup) < groups
	best := -1
	for d := 0; d < ctx.Disks; d++ {
		if used[d] {
			continue
		}
		if freshGroups && usedGroup[d/r.GroupSize] {
			continue
		}
		if best < 0 || load[d] < load[best] {
			best = d
		}
	}
	return best
}

// Striped stripes every title into Width equal-duration segments on
// consecutive disks, rotating the starting disk so segment load spreads:
// title id occupies disks (id*Width + j) mod Disks for j in [0, Width).
// A striped library cannot use a chunked layout (segments are already the
// contiguity unit).
type Striped struct {
	// Width is the number of disks (= segments) per title. Must be in
	// [1, Disks].
	Width int
}

// Name implements PlacementPolicy.
func (Striped) Name() string { return "striped" }

// Place implements PlacementPolicy.
func (s Striped) Place(ctx PolicyContext) ([][]ReplicaSpec, error) {
	if s.Width < 1 || s.Width > ctx.Disks {
		return nil, fmt.Errorf("catalog: stripe width %d outside [1, %d]", s.Width, ctx.Disks)
	}
	out := make([][]ReplicaSpec, len(ctx.Videos))
	for id := range ctx.Videos {
		disks := make([]int, s.Width)
		for j := range disks {
			disks[j] = (id*s.Width + j) % ctx.Disks
		}
		out[id] = []ReplicaSpec{{Disks: disks}}
	}
	return out, nil
}

// Explicit is a literal layout: the replica table itself, indexed by
// title. Fleet composition uses it to carve per-server libraries out of a
// globally decided placement.
type Explicit [][]ReplicaSpec

// Name implements PlacementPolicy.
func (Explicit) Name() string { return "explicit" }

// Place implements PlacementPolicy.
func (e Explicit) Place(ctx PolicyContext) ([][]ReplicaSpec, error) {
	if len(e) != len(ctx.Videos) {
		return nil, fmt.Errorf("catalog: explicit layout covers %d titles, library has %d", len(e), len(ctx.Videos))
	}
	return e, nil
}

// placeFunc adapts the legacy Config.Place hook (one disk per title) to
// the policy interface.
type placeFunc func(id int) int

func (placeFunc) Name() string { return "place-func" }

func (f placeFunc) Place(ctx PolicyContext) ([][]ReplicaSpec, error) {
	out := make([][]ReplicaSpec, len(ctx.Videos))
	for id := range ctx.Videos {
		d := f(id)
		if d < 0 || d >= ctx.Disks {
			return nil, fmt.Errorf("catalog: Place(%d) = %d outside [0, %d)", id, d, ctx.Disks)
		}
		out[id] = []ReplicaSpec{{Disks: []int{d}}}
	}
	return out, nil
}
