package chunk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/si"
)

func mustLayout(t *testing.T, video, size, maxRead si.Bits) *Layout {
	t.Helper()
	l, err := NewLayout(video, size, maxRead)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLayoutValidation(t *testing.T) {
	cases := []struct {
		name                 string
		video, size, maxRead si.Bits
	}{
		{"zero video", 0, 100, 10},
		{"zero read", 100, 100, 0},
		{"chunk below 2x read", 100, 19, 10},
	}
	for _, c := range cases {
		if _, err := NewLayout(c.video, c.size, c.maxRead); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	if _, err := NewLayout(100, 20, 10); err != nil {
		t.Errorf("minimum chunk size rejected: %v", err)
	}
}

func TestLayoutGeometry(t *testing.T) {
	// Video 100, chunk 30, maxRead 10: stride 20; chunks cover
	// [0,30) [20,50) [40,70) [60,90) [80,110): 1 + ceil(70/20) = 5.
	l := mustLayout(t, 100, 30, 10)
	if got := l.Chunks(); got != 5 {
		t.Errorf("chunks = %d, want 5", got)
	}
	if got := l.StoredSize(); got != 150 {
		t.Errorf("stored = %v, want 150", got)
	}
	if got := l.Overhead(); got != 1.5 {
		t.Errorf("overhead = %v, want 1.5", got)
	}
	// A video that fits one chunk needs exactly one.
	if got := mustLayout(t, 25, 30, 10).Chunks(); got != 1 {
		t.Errorf("small video chunks = %d, want 1", got)
	}
	// The paper's minimum chunk (2x maxRead) doubles storage.
	if got := mustLayout(t, 1000, 20, 10).Overhead(); math.Abs(got-2.0) > 0.05 {
		t.Errorf("minimum-chunk overhead = %v, want about 2", got)
	}
}

func TestLocateKnownValues(t *testing.T) {
	l := mustLayout(t, 100, 30, 10)
	tests := []struct {
		offset, length si.Bits
		wantChunk      int
		wantWithin     si.Bits
	}{
		{0, 10, 0, 0},
		{19, 10, 0, 19}, // would cross into [20,50) territory but fits chunk 0
		{20, 10, 1, 0},  // exactly at a stride boundary
		{39, 10, 1, 19}, // tail of chunk 1
		{90, 10, 4, 10}, // last read of the video
		{95, 5, 4, 15},  // partial tail read
	}
	for _, tt := range tests {
		c, w, err := l.Locate(tt.offset, tt.length)
		if err != nil {
			t.Errorf("Locate(%v, %v): %v", tt.offset, tt.length, err)
			continue
		}
		if c != tt.wantChunk || w != tt.wantWithin {
			t.Errorf("Locate(%v, %v) = chunk %d at %v, want chunk %d at %v",
				tt.offset, tt.length, c, w, tt.wantChunk, tt.wantWithin)
		}
	}
}

func TestLocateErrors(t *testing.T) {
	l := mustLayout(t, 100, 30, 10)
	cases := []struct {
		name           string
		offset, length si.Bits
	}{
		{"negative offset", -1, 5},
		{"negative length", 0, -1},
		{"read too large", 0, 11},
		{"past end", 95, 10},
	}
	for _, c := range cases {
		if _, _, err := l.Locate(c.offset, c.length); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// Property: the single-chunk guarantee — every read of at most maxRead
// within the video lands entirely inside the returned chunk.
func TestLocateSingleChunkGuarantee(t *testing.T) {
	f := func(videoRaw, sizeRaw, readRaw uint32, offRaw, lenRaw uint32) bool {
		maxRead := si.Bits(1 + readRaw%1000)
		size := 2*maxRead + si.Bits(sizeRaw%5000)
		video := size + si.Bits(videoRaw%100000)
		l, err := NewLayout(video, size, maxRead)
		if err != nil {
			return false
		}
		length := si.Bits(lenRaw) * maxRead / si.Bits(math.MaxUint32)
		maxOff := video - length
		offset := si.Bits(offRaw) * maxOff / si.Bits(math.MaxUint32)
		c, within, err := l.Locate(offset, length)
		if err != nil {
			return false
		}
		if c < 0 || c >= l.Chunks() {
			return false
		}
		// The read [within, within+length) must sit inside [0, size).
		if within < 0 || within+length > size {
			return false
		}
		// And the chunk's content at that position must be the video's
		// content at the requested offset: start(c) + within == offset.
		return l.start(c)+within == offset
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the last chunk always covers the end of the video.
func TestLayoutCoversVideo(t *testing.T) {
	f := func(videoRaw, sizeRaw, readRaw uint16) bool {
		maxRead := si.Bits(1 + readRaw%500)
		size := 2*maxRead + si.Bits(sizeRaw%2000)
		video := si.Bits(1 + videoRaw)
		l, err := NewLayout(video, size, maxRead)
		if err != nil {
			return false
		}
		lastEnd := l.start(l.Chunks()-1) + size
		return lastEnd >= video
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocatorFirstFit(t *testing.T) {
	a := NewAllocator(100)
	at1, err := a.Alloc(30)
	if err != nil || at1 != 0 {
		t.Fatalf("first alloc at %v, %v", at1, err)
	}
	at2, _ := a.Alloc(30)
	if at2 != 30 {
		t.Fatalf("second alloc at %v, want 30", at2)
	}
	if got := a.Free(); got != 40 {
		t.Errorf("free = %v, want 40", got)
	}
	// Release the first, allocate something small: first fit reuses the hole.
	if err := a.Release(at1, 30); err != nil {
		t.Fatal(err)
	}
	at3, _ := a.Alloc(10)
	if at3 != 0 {
		t.Errorf("first-fit alloc at %v, want 0", at3)
	}
	if _, err := a.Alloc(1000); err == nil {
		t.Error("oversized alloc should fail")
	}
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero alloc should fail")
	}
}

func TestAllocatorReleaseCoalesces(t *testing.T) {
	a := NewAllocator(100)
	x, _ := a.Alloc(20)
	y, _ := a.Alloc(20)
	z, _ := a.Alloc(20)
	_ = x
	if err := a.Release(x, 20); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(z, 20); err != nil {
		t.Fatal(err)
	}
	if got := a.Fragments(); got != 2 {
		t.Fatalf("fragments = %d, want 2 (hole + tail)", got)
	}
	if err := a.Release(y, 20); err != nil {
		t.Fatal(err)
	}
	if got := a.Fragments(); got != 1 {
		t.Errorf("fragments after middle release = %d, want fully coalesced 1", got)
	}
	if got := a.Free(); got != 100 {
		t.Errorf("free = %v, want 100", got)
	}
}

func TestAllocatorReleaseErrors(t *testing.T) {
	a := NewAllocator(100)
	at, _ := a.Alloc(50)
	cases := []struct {
		name     string
		at, size si.Bits
	}{
		{"negative", -1, 10},
		{"zero size", 0, 0},
		{"past capacity", 90, 20},
		{"overlaps free", 40, 20}, // [50,100) is free
	}
	_ = at
	for _, c := range cases {
		if err := a.Release(c.at, c.size); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero-capacity allocator should panic")
		}
	}()
	NewAllocator(0)
}

// Property: random alloc/release sequences conserve space and never
// produce overlapping free extents.
func TestAllocatorConservation(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocator(10000)
		type held struct{ at, size si.Bits }
		var live []held
		var used si.Bits
		for op := 0; op < int(opsRaw); op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				size := si.Bits(1 + rng.Intn(500))
				at, err := a.Alloc(size)
				if err != nil {
					continue
				}
				live = append(live, held{at, size})
				used += size
			} else {
				i := rng.Intn(len(live))
				h := live[i]
				if err := a.Release(h.at, h.size); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				used -= h.size
			}
			if a.Free() != 10000-used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlaceAndDiskOffset(t *testing.T) {
	a := NewAllocator(1000)
	l := mustLayout(t, 100, 30, 10)
	// Fragment the disk first so chunks land non-contiguously.
	hole, _ := a.Alloc(25)
	pin, _ := a.Alloc(10)
	_ = a.Release(hole, 25)
	_ = pin
	p, err := a.Place(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Addresses) != 5 {
		t.Fatalf("placed %d chunks, want 5", len(p.Addresses))
	}
	// Physical addresses must not overlap.
	for i := range p.Addresses {
		for j := i + 1; j < len(p.Addresses); j++ {
			lo, hi := p.Addresses[i], p.Addresses[j]
			if lo > hi {
				lo, hi = hi, lo
			}
			if hi < lo+30 {
				t.Fatalf("chunks %d and %d overlap", i, j)
			}
		}
	}
	// A read maps into its chunk's physical extent.
	addr, err := p.DiskOffset(45, 10)
	if err != nil {
		t.Fatal(err)
	}
	c, within, _ := l.Locate(45, 10)
	if addr != p.Addresses[c]+within {
		t.Errorf("DiskOffset = %v, want %v", addr, p.Addresses[c]+within)
	}
	if _, err := p.DiskOffset(95, 10); err == nil {
		t.Error("read past end should fail")
	}
}

func TestPlaceRollsBackOnFailure(t *testing.T) {
	a := NewAllocator(100) // room for 3 chunks of 30, but the layout needs 5
	l := mustLayout(t, 100, 30, 10)
	if _, err := a.Place(l); err == nil {
		t.Fatal("placement should fail")
	}
	if got := a.Free(); got != 100 {
		t.Errorf("failed placement leaked space: free = %v", got)
	}
}
