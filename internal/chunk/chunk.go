// Package chunk implements the chunked video layout of Chang &
// Garcia-Molina that the paper's contiguity assumption rests on
// (footnote 3). Whole videos rarely fit contiguously on a disk, so they
// are stored as fixed-size chunks placed wherever space exists. With
// variable buffer sizes, a read could span two chunks — and chunks are
// not adjacent, so that would cost a second seek. The chunk mechanism
// prevents this by replication: consecutive chunks overlap by the
// maximum read size, so every read of at most that size fits entirely
// inside one chunk, and one service still incurs exactly one disk
// latency.
//
// The geometry: a chunk holds Size bits of video; consecutive chunks
// advance by Size − MaxRead bits of fresh content, the trailing MaxRead
// bits being replicated at the head of the next chunk. The paper requires
// Size >= 2·MaxRead; the space overhead is Size/(Size − MaxRead).
package chunk

import (
	"fmt"

	"repro/internal/si"
)

// Layout describes one video's chunking.
type Layout struct {
	video   si.Bits // total video size
	size    si.Bits // chunk size
	maxRead si.Bits // largest single read the layout must satisfy
	stride  si.Bits // fresh content per chunk: size − maxRead
	chunks  int
}

// NewLayout plans the chunking of a video so that any read of up to
// maxRead bits is satisfied by a single chunk. The paper requires the
// chunk to be at least twice the maximum buffer size.
func NewLayout(video, size, maxRead si.Bits) (*Layout, error) {
	switch {
	case video <= 0:
		return nil, fmt.Errorf("chunk: non-positive video size %v", video)
	case maxRead <= 0:
		return nil, fmt.Errorf("chunk: non-positive max read %v", maxRead)
	case size < 2*maxRead:
		return nil, fmt.Errorf("chunk: chunk size %v below twice the max read %v", size, maxRead)
	}
	stride := size - maxRead
	chunks := 1
	if video > size {
		// After the first chunk, each adds stride of fresh content.
		rest := video - size
		chunks += int((rest + stride - 1) / stride)
	}
	return &Layout{video: video, size: size, maxRead: maxRead, stride: stride, chunks: chunks}, nil
}

// Chunks reports how many chunks the layout uses.
func (l *Layout) Chunks() int { return l.chunks }

// ChunkSize reports the chunk size.
func (l *Layout) ChunkSize() si.Bits { return l.size }

// MaxRead reports the largest read the layout guarantees to keep within
// one chunk.
func (l *Layout) MaxRead() si.Bits { return l.maxRead }

// StoredSize reports the total on-disk footprint including replication.
func (l *Layout) StoredSize() si.Bits { return si.Bits(l.chunks) * l.size }

// Overhead reports the replication overhead factor: stored bits divided
// by video bits. It approaches 1 as chunks grow and 2 at the paper's
// minimum chunk size.
func (l *Layout) Overhead() float64 { return float64(l.StoredSize()) / float64(l.video) }

// start reports the video offset where chunk i begins.
func (l *Layout) start(i int) si.Bits { return si.Bits(i) * l.stride }

// Locate maps a read [offset, offset+length) of the video to the single
// chunk that holds it entirely, returning the chunk index and the
// position of the read within that chunk. Reads past the video's end or
// longer than MaxRead are errors: the layout cannot guarantee them.
func (l *Layout) Locate(offset, length si.Bits) (chunkIdx int, within si.Bits, err error) {
	switch {
	case offset < 0 || length < 0:
		return 0, 0, fmt.Errorf("chunk: negative read [%v, +%v)", offset, length)
	case length > l.maxRead:
		return 0, 0, fmt.Errorf("chunk: read of %v exceeds the guaranteed %v", length, l.maxRead)
	case offset+length > l.video:
		return 0, 0, fmt.Errorf("chunk: read [%v, +%v) past video end %v", offset, length, l.video)
	}
	// Chunk i covers [i·stride, i·stride + size); picking i = ⌊offset/stride⌋
	// leaves at least maxRead of room past the offset, so the read fits.
	// Offsets in the tail region land past the last chunk's stride start
	// but inside its extent.
	i := int(offset / l.stride)
	if i >= l.chunks {
		i = l.chunks - 1
	}
	return i, offset - l.start(i), nil
}

// Placement is a chunked video placed on a disk: each chunk has an
// arbitrary physical address, assigned by an Allocator.
type Placement struct {
	Layout    *Layout
	Addresses []si.Bits // physical start of each chunk, in bits from disk start
}

// DiskOffset maps a logical read to the physical address of its data:
// the single chunk holding it plus the read's position within the chunk.
func (p *Placement) DiskOffset(offset, length si.Bits) (si.Bits, error) {
	i, within, err := p.Layout.Locate(offset, length)
	if err != nil {
		return 0, err
	}
	return p.Addresses[i] + within, nil
}

// Allocator hands out chunk-sized extents on a disk using first fit over
// a free list, modelling the fragmented placement that motivates chunking
// in the first place.
type Allocator struct {
	capacity si.Bits
	free     []extent // sorted by position
}

type extent struct {
	at, size si.Bits
}

// NewAllocator returns an allocator over a disk of the given capacity.
func NewAllocator(capacity si.Bits) *Allocator {
	if capacity <= 0 {
		panic(fmt.Sprintf("chunk: non-positive capacity %v", capacity))
	}
	return &Allocator{capacity: capacity, free: []extent{{0, capacity}}}
}

// Free reports the total unallocated space.
func (a *Allocator) Free() si.Bits {
	var total si.Bits
	for _, e := range a.free {
		total += e.size
	}
	return total
}

// Fragments reports the number of free extents (1 on a fresh disk).
func (a *Allocator) Fragments() int { return len(a.free) }

// Alloc reserves size bits at the first position that fits and returns
// its address.
func (a *Allocator) Alloc(size si.Bits) (si.Bits, error) {
	if size <= 0 {
		return 0, fmt.Errorf("chunk: non-positive allocation %v", size)
	}
	for i, e := range a.free {
		if e.size < size {
			continue
		}
		at := e.at
		if e.size == size {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = extent{at: e.at + size, size: e.size - size}
		}
		return at, nil
	}
	return 0, fmt.Errorf("chunk: no extent of %v free (total free %v in %d fragments)",
		size, a.Free(), len(a.free))
}

// Release returns an extent to the free list, coalescing neighbours.
func (a *Allocator) Release(at, size si.Bits) error {
	if size <= 0 || at < 0 || at+size > a.capacity {
		return fmt.Errorf("chunk: bad release [%v, +%v)", at, size)
	}
	// Insert sorted.
	i := 0
	for i < len(a.free) && a.free[i].at < at {
		i++
	}
	if i > 0 && a.free[i-1].at+a.free[i-1].size > at {
		return fmt.Errorf("chunk: release overlaps free extent at %v", a.free[i-1].at)
	}
	if i < len(a.free) && at+size > a.free[i].at {
		return fmt.Errorf("chunk: release overlaps free extent at %v", a.free[i].at)
	}
	a.free = append(a.free, extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = extent{at: at, size: size}
	// Coalesce with the right neighbour, then the left.
	if i+1 < len(a.free) && a.free[i].at+a.free[i].size == a.free[i+1].at {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].at+a.free[i-1].size == a.free[i].at {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// Place lays a whole video out in chunks on the allocator's disk and
// returns the placement. On failure, everything allocated is released.
func (a *Allocator) Place(l *Layout) (*Placement, error) {
	p := &Placement{Layout: l}
	for i := 0; i < l.Chunks(); i++ {
		at, err := a.Alloc(l.ChunkSize())
		if err != nil {
			for j, addr := range p.Addresses {
				_ = j
				_ = a.Release(addr, l.ChunkSize())
			}
			return nil, fmt.Errorf("chunk: placing chunk %d of %d: %w", i+1, l.Chunks(), err)
		}
		p.Addresses = append(p.Addresses, at)
	}
	return p, nil
}
