package chunk

import (
	"testing"

	"repro/internal/si"
)

// FuzzLocate drives the single-chunk read guarantee with fuzzer-chosen
// geometry and reads: every accepted read must land entirely inside its
// chunk and at the right content offset.
func FuzzLocate(f *testing.F) {
	f.Add(int64(1000), int64(100), int64(40), int64(500), int64(30))
	f.Add(int64(10_800_000_000), int64(412_800_000), int64(206_000_000), int64(0), int64(206_000_000))
	f.Add(int64(100), int64(30), int64(10), int64(95), int64(5))
	f.Fuzz(func(t *testing.T, video, size, maxRead, offset, length int64) {
		l, err := NewLayout(si.Bits(video), si.Bits(size), si.Bits(maxRead))
		if err != nil {
			t.Skip()
		}
		c, within, err := l.Locate(si.Bits(offset), si.Bits(length))
		if err != nil {
			// The layout must reject exactly the reads it cannot
			// guarantee; everything in range must succeed.
			if offset >= 0 && length >= 0 && length <= maxRead && offset+length <= video {
				t.Fatalf("in-range read rejected: %v", err)
			}
			return
		}
		if c < 0 || c >= l.Chunks() {
			t.Fatalf("chunk %d out of range [0,%d)", c, l.Chunks())
		}
		if within < 0 || within+si.Bits(length) > si.Bits(size) {
			t.Fatalf("read [%v,+%v) spills out of the chunk", within, length)
		}
		if l.start(c)+within != si.Bits(offset) {
			t.Fatalf("content mismatch: chunk %d at %v is offset %v, want %v",
				c, within, l.start(c)+within, offset)
		}
	})
}

// FuzzAllocator drives random alloc/release interleavings: space must be
// conserved and the free list must stay consistent.
func FuzzAllocator(f *testing.F) {
	f.Add([]byte{10, 200, 20, 128, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		a := NewAllocator(1 << 16)
		type held struct{ at, size si.Bits }
		var live []held
		var used si.Bits
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				size := si.Bits(1 + int(op)*13%4096)
				at, err := a.Alloc(size)
				if err != nil {
					continue
				}
				live = append(live, held{at, size})
				used += size
			} else {
				i := int(op) % len(live)
				h := live[i]
				if err := a.Release(h.at, h.size); err != nil {
					t.Fatalf("release of held extent failed: %v", err)
				}
				live = append(live[:i], live[i+1:]...)
				used -= h.size
			}
			if got := a.Free(); got != 1<<16-used {
				t.Fatalf("space leak: free %v, want %v", got, si.Bits(1<<16)-used)
			}
		}
	})
}
