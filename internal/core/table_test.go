package core

import (
	"testing"

	"repro/internal/si"
)

func TestTableMatchesDirectEvaluation(t *testing.T) {
	p := paperParams()
	tab := NewTable(p, ConstDL(dlRR()))
	for n := 1; n <= p.N; n++ {
		for k := 0; k <= p.N-n; k++ {
			if got, want := tab.Size(n, k), p.DynamicSize(dlRR(), n, k); got != want {
				t.Fatalf("table[%d][%d] = %v, want %v", n, k, got, want)
			}
		}
	}
}

func TestTableWithNDependentDL(t *testing.T) {
	p := paperParams()
	// A Sweep-like model: latency shrinks as n grows.
	dl := func(n int) si.Seconds { return si.Seconds(0.020 / float64(n)) }
	tab := NewTable(p, dl)
	for _, n := range []int{1, 7, 40, 79} {
		if got, want := tab.Size(n, 0), p.DynamicSize(dl(n), n, 0); got != want {
			t.Errorf("table[%d][0] = %v, want %v", n, got, want)
		}
	}
}

func TestTableClampsK(t *testing.T) {
	p := paperParams()
	tab := NewTable(p, ConstDL(dlRR()))
	if got, want := tab.Size(70, 50), tab.Size(70, p.N-70); got != want {
		t.Errorf("k clamp: got %v, want %v", got, want)
	}
}

func TestTablePanics(t *testing.T) {
	tab := NewTable(paperParams(), ConstDL(dlRR()))
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("n = 0", func() { tab.Size(0, 0) })
	mustPanic("n > N", func() { tab.Size(80, 0) })
	mustPanic("k < 0", func() { tab.Size(1, -1) })
	mustPanic("bad params", func() { NewTable(Params{}, ConstDL(dlRR())) })
}

// Section 3.3 claims O(N²) space; the table stores exactly N(N+1)/2
// entries (one per reachable (n,k) pair).
func TestTableFootprint(t *testing.T) {
	p := paperParams()
	tab := NewTable(p, ConstDL(dlRR()))
	if got, want := tab.MemoryFootprint(), p.N*(p.N+1)/2; got != want {
		t.Errorf("footprint = %d entries, want %d", got, want)
	}
	if got := tab.Params(); got != p {
		t.Errorf("Params() = %+v, want %+v", got, p)
	}
}
