package core

import (
	"fmt"
	"sync"

	"repro/internal/si"
)

// Controller packages the dynamic scheme's runtime machinery — the sizing
// table, the arrival estimator, and the inertia book — behind one
// mutex-protected API, in the shape a real server embeds it:
//
//	ctl := core.NewController(params, dlModel, tlog)
//	ctl.ObserveArrival(now)                  // every arrival, admitted or not
//	if !ctl.Admit(now) { defer the request } // Assumption 1 enforcement
//	size, _ := ctl.Allocate(id, now, period) // at each service
//	ctl.Release(id)                          // at departure
//
// The discrete-event simulator keeps its own internally specialized copy
// of this logic for speed and instrumentation; Controller is the public,
// concurrency-safe form.
type Controller struct {
	mu     sync.Mutex
	params Params
	table  *Table
	est    *Estimator
	book   *Book
	n      int // requests currently admitted
	lastT  si.Seconds
}

// NewController builds a controller for one disk. dl is the scheduling
// method's latency model and tlog the estimation window.
func NewController(p Params, dl DLModel, tlog si.Seconds) *Controller {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{
		params: p,
		table:  NewTable(p, dl),
		est:    NewEstimator(tlog),
		book:   NewBook(),
	}
	// A sane starting period for the k_log window before any allocation.
	c.lastT = p.UsagePeriod(c.table.Size(1, p.Alpha))
	return c
}

// Params returns the controller's sizing parameters.
func (c *Controller) Params() Params { return c.params }

// InService reports the number of admitted requests.
func (c *Controller) InService() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// ObserveArrival records an arrival (admitted or not) for prediction.
func (c *Controller) ObserveArrival(now si.Seconds) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.est.RecordArrival(now)
}

// Admit attempts to admit one request under capacity and Assumption 1.
// On success the request counts as in service and must eventually be
// Released; on failure the caller defers and retries later.
func (c *Controller) Admit(now si.Seconds) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !Admit(c.book, c.n, c.params.N) {
		return false
	}
	c.n++
	return true
}

// Allocate sizes the next buffer for the admitted request id per the
// allocation algorithm (Fig. 5): n is the current in-service count, k the
// estimate from the trailing window, and the inertia snapshot is recorded
// for enforcement. It returns the buffer size and the prediction used.
func (c *Controller) Allocate(id int, now si.Seconds) (si.Bits, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < 1 {
		return 0, 0, fmt.Errorf("core: Allocate with no admitted requests")
	}
	kc := c.est.Estimate(c.params, now, c.lastT, c.book.MinK(), c.n)
	size := c.table.Size(c.n, kc)
	c.lastT = c.params.UsagePeriod(size)
	c.book.Set(id, Allocation{N: c.n, K: kc})
	return size, kc, nil
}

// Release returns an admitted request's capacity at departure.
func (c *Controller) Release(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.book.Remove(id)
	if c.n > 0 {
		c.n--
	}
}
