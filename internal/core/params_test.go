package core

import (
	"math"
	"testing"

	"repro/internal/diskmodel"
	"repro/internal/si"
)

// paperParams returns the evaluation parameters of Section 5.1:
// Barracuda 9LP transfer rate, MPEG-1 consumption rate, N = 79, alpha = 1.
func paperParams() Params {
	return Params{TR: si.Mbps(120), CR: si.Mbps(1.5), N: 79, Alpha: 1}
}

// dlRR is the Round-Robin worst per-service latency for the Barracuda:
// gamma(Cyln) + theta = 13.4 + 8.33 ms.
func dlRR() si.Seconds {
	return diskmodel.Barracuda9LP().WorstLatency()
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestParamsValidate(t *testing.T) {
	if err := paperParams().Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero TR", func(p *Params) { p.TR = 0 }},
		{"zero CR", func(p *Params) { p.CR = 0 }},
		{"CR >= TR", func(p *Params) { p.CR = p.TR }},
		{"zero N", func(p *Params) { p.N = 0 }},
		{"N too large", func(p *Params) { p.N = 80 }}, // 80 violates N < 120/1.5
		{"zero alpha", func(p *Params) { p.Alpha = 0 }},
	}
	for _, c := range cases {
		p := paperParams()
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
}

func TestDeriveN(t *testing.T) {
	if got := DeriveN(si.Mbps(120), si.Mbps(1.5)); got != 79 {
		t.Errorf("DeriveN = %d, want 79", got)
	}
	if got := DeriveN(si.Mbps(120), si.Mbps(1.7)); got != 70 {
		t.Errorf("DeriveN = %d, want 70", got)
	}
	if got := DeriveN(si.Mbps(1), si.Mbps(2)); got != 0 {
		t.Errorf("DeriveN = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("DeriveN(0, 0) should panic")
		}
	}()
	DeriveN(0, 0)
}

func TestStaticSizeFullLoad(t *testing.T) {
	p := paperParams()
	// BS(79) = 79 · 1.5 Mbps · 21.73 ms · 120 Mbps / (120 − 79·1.5 Mbps)
	//        = 0.02173 · 79 · 120e6 bits  (denominator is exactly 1.5 Mbps)
	got := float64(p.StaticSize(dlRR(), p.N))
	want := 0.02173 * 79 * 120e6
	if !relClose(got, want, 1e-9) {
		t.Errorf("BS(79) = %v bits, want %v", got, want)
	}
	// About 25.75 MB, the scale Fig. 9a shows for the static scheme.
	if mb := si.Bits(got).MegabytesVal(); mb < 25 || mb > 26.5 {
		t.Errorf("BS(79) = %v MB, want about 25.75", mb)
	}
}

// Eq. 11 identity: the fully loaded buffer exactly covers one service of
// all N buffers: BS(N) = N · (BS(N)/TR + DL) · CR.
func TestStaticSizeFixpoint(t *testing.T) {
	p := paperParams()
	bs := float64(p.StaticSize(dlRR(), p.N))
	rhs := float64(p.N) * (bs/float64(p.TR) + float64(dlRR())) * float64(p.CR)
	if !relClose(bs, rhs, 1e-12) {
		t.Errorf("fixpoint violated: BS = %v, N(BS/TR+DL)CR = %v", bs, rhs)
	}
}

// Eq. 5 grows rapidly as n approaches TR/CR, as the paper observes.
func TestStaticSizeBlowsUpNearCapacity(t *testing.T) {
	p := paperParams()
	prev := 0.0
	for n := 1; n <= p.N; n++ {
		bs := float64(p.StaticSize(dlRR(), n))
		if bs <= prev {
			t.Fatalf("BS(n) not strictly increasing at n = %d", n)
		}
		prev = bs
	}
	// The last step should dwarf the first: convexity near the pole.
	first := float64(p.StaticSize(dlRR(), 2) - p.StaticSize(dlRR(), 1))
	last := float64(p.StaticSize(dlRR(), p.N) - p.StaticSize(dlRR(), p.N-1))
	if last < 50*first {
		t.Errorf("expected blow-up near capacity: first step %v, last step %v", first, last)
	}
}

func TestNaiveSize(t *testing.T) {
	p := paperParams()
	// Naive(n, k) is exactly Eq. 5 at n+k.
	if got, want := p.NaiveSize(dlRR(), 10, 5), p.StaticSize(dlRR(), 15); got != want {
		t.Errorf("NaiveSize(10,5) = %v, want BS(15) = %v", got, want)
	}
	// Clamped at N.
	if got, want := p.NaiveSize(dlRR(), 70, 50), p.StaticSize(dlRR(), p.N); got != want {
		t.Errorf("NaiveSize(70,50) = %v, want BS(N) = %v", got, want)
	}
}

func TestCheckPanics(t *testing.T) {
	p := paperParams()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("n = 0", func() { p.StaticSize(dlRR(), 0) })
	mustPanic("n > N", func() { p.StaticSize(dlRR(), p.N+1) })
	mustPanic("zero dl", func() { p.StaticSize(0, 1) })
	mustPanic("negative k", func() { p.DynamicSize(dlRR(), 1, -1) })
	mustPanic("invalid params", func() { Params{}.StaticSize(dlRR(), 1) })
}
