// Package core implements the paper's primary contribution: the dynamic
// buffer allocation scheme of Section 3, alongside the static baseline of
// Section 2.3 and the flawed "naive" dynamic variant of Section 3.1 that
// the paper uses as a motivating counterexample.
//
// The three pieces of the dynamic scheme are:
//
//   - Buffer sizing (Theorem 1): the size BS_k(n) of a buffer allocated
//     when n requests are in service and k additional requests are
//     predicted. Because the current size depends on the sizes of buffers
//     allocated in the future, BS_k(n) is a recurrence; this package
//     provides both the paper's closed form and a direct backward
//     evaluation of the recurrence, plus the precomputed table §3.3
//     recommends for runtime use.
//
//   - Prediction (the Estimator): k is estimated from the recent arrival
//     history as k_log + α, where k_log is the maximum number of arrivals
//     observed in any service-period-length window within the trailing
//     T_log, and α is the inertia slack of Assumption 2.
//
//   - Enforcement (Admission + Book): Assumption 1 is enforced at runtime
//     by deferring any new request whose admission would push the number
//     in service beyond what some in-service buffer was sized for.
package core

import (
	"fmt"
	"math"

	"repro/internal/si"
)

// Params carries the constants the sizing equations need. DL is not here:
// it depends on the scheduling method (and, for Sweep*, on n), so every
// sizing function takes it as an argument.
type Params struct {
	// TR is the disk's minimum transfer rate.
	TR si.BitRate

	// CR is the streams' consumption rate.
	CR si.BitRate

	// N is the maximum number of concurrent requests (Eq. 1): the largest
	// integer strictly below TR/CR.
	N int

	// Alpha is the inertia slack of Assumption 2: the number of estimated
	// additional requests may grow by at most Alpha within a usage period.
	// Must be >= 1 (with alpha = 0 a freshly started system could never
	// admit anyone; see footnote 5 of the paper).
	Alpha int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.TR <= 0:
		return fmt.Errorf("core: non-positive transfer rate %v", p.TR)
	case p.CR <= 0:
		return fmt.Errorf("core: non-positive consumption rate %v", p.CR)
	case p.CR >= p.TR:
		return fmt.Errorf("core: consumption rate %v not below transfer rate %v", p.CR, p.TR)
	case p.N < 1:
		return fmt.Errorf("core: N = %d, need at least 1", p.N)
	case float64(p.N) >= float64(p.TR)/float64(p.CR):
		return fmt.Errorf("core: N = %d violates N < TR/CR = %g", p.N, float64(p.TR)/float64(p.CR))
	case p.Alpha < 1:
		return fmt.Errorf("core: alpha = %d, must be >= 1", p.Alpha)
	}
	return nil
}

// DeriveN returns the largest admissible N for the given rates (Eq. 1).
func DeriveN(tr, cr si.BitRate) int {
	if cr <= 0 || tr <= 0 {
		panic("core: DeriveN with non-positive rate")
	}
	n := int(math.Ceil(float64(tr)/float64(cr))) - 1
	if n < 0 {
		n = 0
	}
	return n
}

// StaticSize evaluates Eq. 5: the minimum buffer size that lets the server
// fill n buffers within one service period while each stream consumes at
// CR, under per-service worst disk latency dl.
//
//	BS(n) = n · CR · dl · TR / (TR − n·CR)
//
// The static scheme of Section 2.3 always allocates StaticSize at n = N.
// n must be in [1, N]; dl must be positive.
func (p Params) StaticSize(dl si.Seconds, n int) si.Bits {
	p.check(dl, n, 0)
	num := float64(n) * float64(p.CR) * float64(dl) * float64(p.TR)
	den := float64(p.TR) - float64(n)*float64(p.CR)
	return si.Bits(num / den)
}

// NaiveSize evaluates the simple extension of the static scheme described
// in Section 3.1 (Fig. 3): plug n+k into Eq. 5. The paper shows this
// scheme is flawed — it ignores that future buffers are larger, so buffers
// it allocates can empty early. It is implemented here as an ablation.
func (p Params) NaiveSize(dl si.Seconds, n, k int) si.Bits {
	p.check(dl, n, k)
	m := n + k
	if m > p.N {
		m = p.N
	}
	return p.StaticSize(dl, m)
}

func (p Params) check(dl si.Seconds, n, k int) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if dl <= 0 {
		panic(fmt.Sprintf("core: non-positive disk latency %v", dl))
	}
	if n < 1 || n > p.N {
		panic(fmt.Sprintf("core: n = %d outside [1, N=%d]", n, p.N))
	}
	if k < 0 {
		panic(fmt.Sprintf("core: negative k = %d", k))
	}
}
