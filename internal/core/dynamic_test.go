package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/si"
)

// drawNK maps arbitrary fuzz bytes to a valid (n, k) pair for params p.
func drawNK(p Params, a, b uint8) (n, k int) {
	n = 1 + int(a)%p.N
	k = int(b) % (p.N - n + 1)
	return n, k
}

func TestChainLengthKnownValues(t *testing.T) {
	p := paperParams()
	tests := []struct {
		n, k, want int
	}{
		{79, 0, 0}, // fully loaded: empty chain
		{78, 0, 2}, // m(1)=78, m(2)=79 — two steps
		{78, 1, 1}, // m(1)=79 — one step
		{1, 0, 13}, // 1,1,2,4,7,11,16,22,29,37,46,56,67,79: 13 steps
		{1, 78, 1},
	}
	for _, tt := range tests {
		if got := p.ChainLength(tt.n, tt.k); got != tt.want {
			t.Errorf("ChainLength(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

// Property: closed-form e equals the iterative count everywhere, for
// several alpha values.
func TestChainLengthClosedFormAgrees(t *testing.T) {
	for alpha := 1; alpha <= 4; alpha++ {
		p := paperParams()
		p.Alpha = alpha
		f := func(a, b uint8) bool {
			n, k := drawNK(p, a, b)
			return p.ChainLength(n, k) == p.ChainLengthClosedForm(n, k)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("alpha = %d: %v", alpha, err)
		}
	}
}

// Property: e is minimal — the predicted load reaches N at step e but not
// at step e−1.
func TestChainLengthMinimal(t *testing.T) {
	p := paperParams()
	f := func(a, b uint8) bool {
		n, k := drawNK(p, a, b)
		if n >= p.N {
			return p.ChainLength(n, k) == 0
		}
		e := p.ChainLength(n, k)
		load := func(i int) int { return n + i*k + (i-1)*i*p.Alpha/2 }
		return load(e) >= p.N && (e == 1 || load(e-1) < p.N)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDynamicSizeBoundary(t *testing.T) {
	p := paperParams()
	// At full load the dynamic scheme allocates exactly the static size.
	if got, want := p.DynamicSize(dlRR(), p.N, 0), p.StaticSize(dlRR(), p.N); got != want {
		t.Errorf("BS_0(N) = %v, want static %v", got, want)
	}
}

// Analytic spot check derived in the design notes: with k = 0 and n = N−1
// the chain is N−1 → N (clamped), and because BS(N) is the Eq. 11
// fixpoint, BS_0(N−1) = (N−1)/N · BS(N).
func TestDynamicSizeNMinusOne(t *testing.T) {
	p := paperParams()
	got := float64(p.DynamicSize(dlRR(), p.N-1, 0))
	want := float64(p.N-1) / float64(p.N) * float64(p.StaticSize(dlRR(), p.N))
	if !relClose(got, want, 1e-12) {
		t.Errorf("BS_0(N-1) = %v, want %v", got, want)
	}
}

// Property: the printed closed form (Eq. 6) agrees with the backward
// recurrence for every reachable (n, k) and several alpha.
func TestClosedFormMatchesRecurrence(t *testing.T) {
	for alpha := 1; alpha <= 3; alpha++ {
		p := paperParams()
		p.Alpha = alpha
		f := func(a, b uint8) bool {
			n, k := drawNK(p, a, b)
			x := float64(p.DynamicSize(dlRR(), n, k))
			y := float64(p.DynamicSizeClosedForm(dlRR(), n, k))
			return relClose(x, y, 1e-9)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("alpha = %d: %v", alpha, err)
		}
	}
}

// Property: the recurrence guarantee holds with equality — a buffer's
// usage period exactly covers servicing the n+k predicted buffers of the
// next inertia state (Eq. 10 at its minimum):
//
//	BS_k(n)/CR = (n+k) · (BS_{k+α}(n+k)/TR + DL)
func TestRecurrenceGuarantee(t *testing.T) {
	p := paperParams()
	f := func(a, b uint8) bool {
		n, k := drawNK(p, a, b)
		if n >= p.N {
			return true
		}
		nn, nk := p.inertiaStep(n, k)
		if nn > p.N {
			nn = p.N
		}
		if nk > p.N-nn {
			nk = p.N - nn // table-style clamp; size is BS(N) regardless at nn = N
		}
		next := float64(p.DynamicSize(dlRR(), nn, nk))
		lhs := float64(p.UsagePeriod(p.DynamicSize(dlRR(), n, k)))
		rhs := float64(nn) * (next/float64(p.TR) + float64(dlRR()))
		return relClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: dynamic sizes are monotone in n and in k, never exceed the
// static full-load size, and are at least the naive Eq. 5 size at n+k.
func TestDynamicSizeOrdering(t *testing.T) {
	p := paperParams()
	static := p.StaticSize(dlRR(), p.N)
	f := func(a, b uint8) bool {
		n, k := drawNK(p, a, b)
		bs := p.DynamicSize(dlRR(), n, k)
		if bs <= 0 || bs > static+1 {
			return false
		}
		if bs < p.NaiveSize(dlRR(), n, k)-1 {
			return false // dynamic must cover future growth the naive scheme ignores
		}
		if n+1 <= p.N && p.DynamicSize(dlRR(), n+1, min(k, p.N-n-1)) < bs-1e-3 {
			// Growing n with same-or-clamped k must not shrink the buffer.
			return false
		}
		if k+1 <= p.N-n && p.DynamicSize(dlRR(), n, k+1) < bs {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Larger alpha means faster adaptation but larger buffers (Section 3.1's
// stated trade-off).
func TestAlphaGrowsBuffers(t *testing.T) {
	for _, n := range []int{1, 10, 40, 70} {
		prev := si.Bits(0)
		for alpha := 1; alpha <= 4; alpha++ {
			p := paperParams()
			p.Alpha = alpha
			bs := p.DynamicSize(dlRR(), n, 2)
			if bs < prev {
				t.Errorf("n = %d: BS shrank when alpha grew to %d", n, alpha)
			}
			prev = bs
		}
	}
}

func TestUsagePeriod(t *testing.T) {
	p := paperParams()
	bs := si.Megabits(15)
	if got := p.UsagePeriod(bs); !relClose(float64(got), 10, 1e-12) {
		t.Errorf("UsagePeriod(15 Mbit at 1.5 Mbps) = %v, want 10s", got)
	}
}

// The paper's headline shape: at low load the dynamic buffer is a tiny
// fraction of the static one (Fig. 9 shows roughly two orders of
// magnitude at n = 1).
func TestDynamicMuchSmallerAtLowLoad(t *testing.T) {
	p := paperParams()
	dyn := float64(p.DynamicSize(dlRR(), 1, 4))
	static := float64(p.StaticSize(dlRR(), p.N))
	if ratio := static / dyn; ratio < 20 {
		t.Errorf("static/dynamic at n=1 = %.1f, want a large factor", ratio)
	}
}

func TestDynamicSizeFloatSafety(t *testing.T) {
	p := paperParams()
	for n := 1; n <= p.N; n++ {
		for k := 0; k <= p.N-n; k++ {
			got := float64(p.DynamicSize(dlRR(), n, k))
			if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
				t.Fatalf("BS_%d(%d) = %v", k, n, got)
			}
			cf := float64(p.DynamicSizeClosedForm(dlRR(), n, k))
			if math.IsNaN(cf) || math.IsInf(cf, 0) || cf <= 0 {
				t.Fatalf("closed form BS_%d(%d) = %v", k, n, cf)
			}
		}
	}
}
