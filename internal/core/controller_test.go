package core

import (
	"sync"
	"testing"

	"repro/internal/si"
)

func testController() *Controller {
	p := paperParams()
	return NewController(p, ConstDL(dlRR()), si.Minutes(40))
}

func TestControllerLifecycle(t *testing.T) {
	c := testController()
	if got := c.InService(); got != 0 {
		t.Fatalf("fresh controller in service = %d", got)
	}
	if c.Params().N != 79 {
		t.Fatalf("params not carried")
	}

	c.ObserveArrival(0)
	if !c.Admit(0) {
		t.Fatal("empty system should admit")
	}
	if got := c.InService(); got != 1 {
		t.Fatalf("in service = %d, want 1", got)
	}
	size, kc, err := c.Allocate(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Errorf("allocated size = %v", size)
	}
	if kc < 1 {
		t.Errorf("kc = %d, want at least alpha", kc)
	}
	c.Release(1)
	if got := c.InService(); got != 0 {
		t.Errorf("in service after release = %d", got)
	}
	// Releasing again is harmless and never goes negative.
	c.Release(1)
	if got := c.InService(); got != 0 {
		t.Errorf("double release broke the count: %d", got)
	}
}

func TestControllerAllocateWithoutAdmit(t *testing.T) {
	c := testController()
	if _, _, err := c.Allocate(1, 0); err == nil {
		t.Error("Allocate with nothing admitted should fail")
	}
}

func TestControllerEnforcesAssumption1(t *testing.T) {
	c := testController()
	now := si.Seconds(0)
	// Admit and allocate one request; its snapshot is (1, kc) with kc
	// small (no arrival history beyond alpha).
	if !c.Admit(now) {
		t.Fatal("first admit")
	}
	if _, kc, err := c.Allocate(1, now); err != nil || kc != 1 {
		t.Fatalf("first allocation kc = %d, err %v; want alpha = 1", kc, err)
	}
	// The buffer was sized for n+k = 2: the second admission fits, the
	// third defers until the first request's snapshot is refreshed.
	if !c.Admit(now) {
		t.Fatal("second admit should pass (2 <= 1+1)")
	}
	if c.Admit(now) {
		t.Fatal("third admit should defer (3 > 2)")
	}
	// Re-allocating request 1 at n = 2 refreshes its snapshot and the
	// estimator's cap (min k_i grows with fresh arrivals).
	c.ObserveArrival(now + 1)
	c.ObserveArrival(now + 2)
	if _, _, err := c.Allocate(1, now+3); err != nil {
		t.Fatal(err)
	}
	if !c.Admit(now + 3) {
		t.Error("admission should pass after the snapshot refresh")
	}
}

func TestControllerCapacity(t *testing.T) {
	p := Params{TR: si.Mbps(120), CR: si.Mbps(1.5), N: 3, Alpha: 1}
	c := NewController(p, ConstDL(dlRR()), si.Minutes(40))
	admitted := 0
	now := si.Seconds(0)
	// Each round models one service pass: try to admit, then re-allocate
	// every in-service request so its inertia snapshot reflects the new
	// load (exactly what the Fig. 5 loop does each period).
	for round := 0; round < 10; round++ {
		now += 1
		c.ObserveArrival(now)
		if c.Admit(now) {
			admitted++
		}
		for id := 1; id <= admitted; id++ {
			if _, _, err := c.Allocate(id, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	if admitted != 3 {
		t.Errorf("admitted %d, want capacity N = 3", admitted)
	}
}

func TestControllerConcurrentUse(t *testing.T) {
	c := testController()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				now := si.Seconds(g*1000 + i)
				_ = now
				c.ObserveArrival(si.Seconds(1e6)) // fixed time: always monotone
				if c.Admit(si.Seconds(1e6)) {
					id := g*1000 + i
					if _, _, err := c.Allocate(id, si.Seconds(1e6)); err != nil {
						t.Error(err)
						return
					}
					c.Release(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.InService(); got != 0 {
		t.Errorf("in service after all released = %d", got)
	}
}

func TestControllerPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid params should panic")
		}
	}()
	NewController(Params{}, ConstDL(1), si.Minutes(1))
}
