package core

import (
	"testing"

	"repro/internal/si"
)

func BenchmarkDynamicSize(b *testing.B) {
	p := paperParams()
	dl := dlRR()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.DynamicSize(dl, 1+i%p.N, i%5)
	}
}

func BenchmarkDynamicSizeClosedForm(b *testing.B) {
	p := paperParams()
	dl := dlRR()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.DynamicSizeClosedForm(dl, 1+i%p.N, i%5)
	}
}

func BenchmarkTableSize(b *testing.B) {
	p := paperParams()
	tab := NewTable(p, ConstDL(dlRR()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Size(1+i%p.N, i%5)
	}
}

func BenchmarkEstimatorKLog(b *testing.B) {
	e := NewEstimator(si.Minutes(40))
	// A realistic trailing window: a few hundred arrivals.
	t := si.Seconds(0)
	for i := 0; i < 400; i++ {
		t += 5
		e.RecordArrival(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.KLog(t, 120)
	}
}

func BenchmarkBookSetAndMins(b *testing.B) {
	book := NewBook()
	for i := 0; i < 79; i++ {
		book.Set(i, Allocation{N: 1 + i%79, K: i % 5})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		book.Set(i%79, Allocation{N: 1 + i%79, K: i % 5})
		_ = book.MinNK()
		_ = book.MinK()
	}
}

func BenchmarkControllerAllocate(b *testing.B) {
	c := NewController(paperParams(), ConstDL(dlRR()), si.Minutes(40))
	if !c.Admit(0) {
		b.Fatal("admit failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Allocate(1, si.Seconds(i)); err != nil {
			b.Fatal(err)
		}
	}
}
