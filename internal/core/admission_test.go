package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBookMins(t *testing.T) {
	b := NewBook()
	if b.MinNK() != math.MaxInt || b.MinK() != math.MaxInt {
		t.Error("empty book should report MaxInt minimums")
	}
	b.Set(1, Allocation{N: 5, K: 2})
	b.Set(2, Allocation{N: 6, K: 1})
	b.Set(3, Allocation{N: 6, K: 3})
	if got := b.MinNK(); got != 7 {
		t.Errorf("MinNK = %d, want 7", got)
	}
	if got := b.MinK(); got != 1 {
		t.Errorf("MinK = %d, want 1", got)
	}
	b.Remove(2)
	if got := b.MinNK(); got != 7 { // {5+2, 6+3}
		t.Errorf("MinNK after remove = %d, want 7", got)
	}
	if got := b.MinK(); got != 2 {
		t.Errorf("MinK after remove = %d, want 2", got)
	}
	b.Remove(99) // unknown id is a no-op
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
}

func TestBookSetOverwrites(t *testing.T) {
	b := NewBook()
	b.Set(1, Allocation{N: 5, K: 0})
	b.Set(1, Allocation{N: 8, K: 4})
	if got := b.MinNK(); got != 12 {
		t.Errorf("MinNK = %d, want 12 after overwrite", got)
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}

func TestBookSetValidates(t *testing.T) {
	b := NewBook()
	defer func() {
		if recover() == nil {
			t.Error("invalid snapshot should panic")
		}
	}()
	b.Set(1, Allocation{N: 0, K: 0})
}

func TestAdmit(t *testing.T) {
	b := NewBook()
	// Empty system: admission passes while capacity remains.
	if !Admit(b, 0, 79) {
		t.Error("empty system should admit")
	}
	if Admit(b, 79, 79) {
		t.Error("full system should reject")
	}
	// One stream sized for n_i + k_i = 6: the 7th concurrent request fits,
	// the 8th does not.
	b.Set(1, Allocation{N: 5, K: 1})
	if !Admit(b, 5, 79) {
		t.Error("n+1 = 6 <= 6 should admit")
	}
	if Admit(b, 6, 79) {
		t.Error("n+1 = 7 > 6 should defer")
	}
}

// Property: Admit is exactly the conjunction of the capacity check and
// Assumption 1 for arbitrary books.
func TestAdmitDefinition(t *testing.T) {
	f := func(ids []uint8, n, nmax uint8) bool {
		b := NewBook()
		for i, raw := range ids {
			b.Set(i, Allocation{N: 1 + int(raw)%70, K: int(raw) % 9})
		}
		got := Admit(b, int(n), int(nmax))
		want := int(n)+1 <= int(nmax) && int(n)+1 <= b.MinNK()
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the incrementally maintained minimums always match a brute
// force over arbitrary Set/Remove sequences.
func TestBookIncrementalMinsMatchBruteForce(t *testing.T) {
	brute := func(m map[int]Allocation) (int, int) {
		nk, k := math.MaxInt, math.MaxInt
		for _, a := range m {
			if s := a.N + a.K; s < nk {
				nk = s
			}
			if a.K < k {
				k = a.K
			}
		}
		return nk, k
	}
	f := func(ops []uint16) bool {
		b := NewBook()
		shadow := make(map[int]Allocation)
		for _, op := range ops {
			id := int(op % 8)
			if op%5 == 0 {
				b.Remove(id)
				delete(shadow, id)
			} else {
				a := Allocation{N: 1 + int(op>>8)%20, K: int(op>>4) % 6}
				b.Set(id, a)
				shadow[id] = a
			}
			wantNK, wantK := brute(shadow)
			if b.MinNK() != wantNK || b.MinK() != wantK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
