package core

import (
	"fmt"

	"repro/internal/si"
)

// Estimator tracks recent request arrivals and produces k_log, the
// ingredient of the dynamic scheme's prediction: the maximum number of
// additional requests that arrived within any service-period-length window
// inside the trailing T_log (Table 1, Fig. 5 Step 4).
//
// Arrival times must be recorded in non-decreasing order, which a
// discrete-event simulation and a real server both provide naturally.
type Estimator struct {
	tlog     si.Seconds
	arrivals []si.Seconds // sorted, pruned to the trailing window
	latest   si.Seconds
}

// NewEstimator returns an estimator with the given history window T_log.
func NewEstimator(tlog si.Seconds) *Estimator {
	if tlog <= 0 {
		panic(fmt.Sprintf("core: non-positive T_log %v", tlog))
	}
	return &Estimator{tlog: tlog}
}

// TLog returns the history window.
func (e *Estimator) TLog() si.Seconds { return e.tlog }

// RecordArrival notes a request arrival at time t. Out-of-order arrivals
// (clock going backward) panic: they indicate a simulation bug.
func (e *Estimator) RecordArrival(t si.Seconds) {
	if t < e.latest {
		fmtPanic("core: arrival at %v before %v", t, e.latest)
	}
	e.latest = t
	e.arrivals = append(e.arrivals, t)
}

// KLog reports the maximum number of arrivals within any window of length
// period that lies inside [now−T_log, now]. It also prunes history older
// than the T_log window.
func (e *Estimator) KLog(now, period si.Seconds) int {
	if period <= 0 {
		fmtPanic("core: non-positive period %v", period)
	}
	lo := now - e.tlog
	// Prune arrivals that fell out of the window.
	cut := 0
	for cut < len(e.arrivals) && e.arrivals[cut] < lo {
		cut++
	}
	if cut > 0 {
		e.arrivals = append(e.arrivals[:0], e.arrivals[cut:]...)
	}
	// Two-pointer max-count over subwindows [a_i, a_i + period].
	best, left := 0, 0
	for right := range e.arrivals {
		if e.arrivals[right] > now {
			break // future arrivals are never in the trailing window
		}
		for e.arrivals[right]-e.arrivals[left] > period {
			left++
		}
		if c := right - left + 1; c > best {
			best = c
		}
	}
	return best
}

// Estimate computes k_c per Step 4 of the allocation algorithm (Fig. 5),
// exactly as the paper states it:
//
//	k_c = min( k_log + α,  min_i(k_i + α) )
//
// minKi is min over in-service requests of their recorded k_i (use
// MaxInt when no requests are in service). The estimate is deliberately
// NOT clamped to the spare capacity N−n: the sizing table saturates at
// the full-load size for any k beyond N−n (the recurrence chain clamps
// at N), and an unclamped k keeps the inertia book's snapshots realistic
// under heavy load. n is accepted for interface stability and future
// policies but does not bound the estimate.
func (e *Estimator) Estimate(p Params, now, period si.Seconds, minKi, n int) int {
	kc := e.KLog(now, period) + p.Alpha
	// Guard the min_i(k_i)+α cap against the MaxInt sentinel used when no
	// requests are in service (adding α would overflow).
	if minKi <= 2*p.N {
		if ceil := minKi + p.Alpha; ceil < kc {
			kc = ceil
		}
	}
	if kc < 0 {
		kc = 0
	}
	return kc
}

func fmtPanic(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}
