package core

import (
	"fmt"

	"repro/internal/si"
)

// DLModel maps the number of requests in service to the per-service worst
// disk latency of a scheduling method. Round-Robin and GSS* latencies are
// constant in n; Sweep*'s is γ(Cyln/n) + θ.
type DLModel func(n int) si.Seconds

// ConstDL adapts a constant latency to a DLModel.
func ConstDL(dl si.Seconds) DLModel { return func(int) si.Seconds { return dl } }

// Table holds the precomputed buffer sizes §3.3 recommends: Theorem 1 needs
// a product chain per evaluation, so a server computes all (n, k) pairs at
// initialization and indexes at allocation time. The space is O(N²), which
// for N = 79 is a few tens of kilobytes.
type Table struct {
	p     Params
	sizes [][]si.Bits // sizes[n][k], n in [1,N], k in [0,N−n]
}

// NewTable precomputes DynamicSize for every reachable (n, k) pair under
// the given per-method latency model.
func NewTable(p Params, dl DLModel) *Table {
	return NewTableWith(p, dl, Params.DynamicSize)
}

// NewTableWith precomputes an arbitrary sizing function for every
// reachable (n, k) pair under the given per-method latency model. It is
// how the naive and DYBASE comparison schemes get the same compute-once,
// index-per-fill treatment §3.3 prescribes for the dynamic scheme: pass
// Params.NaiveSize or Params.DybaseSize (any function whose result
// saturates at the full-load size for k ≥ N−n, matching Size's clamp).
func NewTableWith(p Params, dl DLModel, size func(Params, si.Seconds, int, int) si.Bits) *Table {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	t := &Table{p: p, sizes: make([][]si.Bits, p.N+1)}
	for n := 1; n <= p.N; n++ {
		t.sizes[n] = make([]si.Bits, p.N-n+1)
		for k := 0; k <= p.N-n; k++ {
			t.sizes[n][k] = size(p, dl(n), n, k)
		}
	}
	return t
}

// Params returns the parameters the table was built with.
func (t *Table) Params() Params { return t.p }

// Size returns the precomputed BS_k(n). k beyond N−n is clamped (a
// prediction exceeding capacity sizes for full load). It panics on n
// outside [1, N]: the caller's admission control owns that bound.
func (t *Table) Size(n, k int) si.Bits {
	if n < 1 || n > t.p.N {
		panic(fmt.Sprintf("core: table lookup with n = %d outside [1, %d]", n, t.p.N))
	}
	if k < 0 {
		panic(fmt.Sprintf("core: table lookup with negative k = %d", k))
	}
	if k > t.p.N-n {
		k = t.p.N - n
	}
	return t.sizes[n][k]
}

// MemoryFootprint reports the number of entries the table stores, for
// documentation of the O(N²) claim.
func (t *Table) MemoryFootprint() int {
	total := 0
	for _, row := range t.sizes {
		total += len(row)
	}
	return total
}
