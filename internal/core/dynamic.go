package core

import (
	"math"

	"repro/internal/si"
)

// inertiaStep advances the predicted load one usage period into the future
// under Assumptions 1 and 2: n requests in service with k predicted
// additional requests become n+k in service with k+alpha predicted.
// This is the chain the recurrence of Theorem 1 walks:
//
//	step i:  n_i = n + i·k + (i−1)·i·α/2,  k_i = k + i·α
func (p Params) inertiaStep(n, k int) (int, int) { return n + k, k + p.Alpha }

// ChainLength returns e of Theorem 1: the number of inertia steps needed
// for the predicted load to reach full capacity N, i.e. the smallest
// positive integer e with n + e·k + (e−1)·e·α/2 >= N. It returns 0 when
// n >= N (the chain is empty; the static boundary applies directly).
func (p Params) ChainLength(n, k int) int {
	p.check(si.Seconds(1), n, k)
	if n >= p.N {
		return 0
	}
	e := 0
	for n < p.N {
		n, k = p.inertiaStep(n, k)
		e++
	}
	return e
}

// ChainLengthClosedForm evaluates the paper's closed form for e:
//
//	e = ⌈ (α/2 − k + √(k² + α·(2·(N−n) − k) + α²/4)) / α ⌉
//
// ChainLength and ChainLengthClosedForm are verified against each other by
// property tests; the iterative form is authoritative.
func (p Params) ChainLengthClosedForm(n, k int) int {
	p.check(si.Seconds(1), n, k)
	if n >= p.N {
		return 0
	}
	a := float64(p.Alpha)
	kf := float64(k)
	disc := kf*kf + a*(2*float64(p.N-n)-kf) + a*a/4
	e := (a/2 - kf + math.Sqrt(disc)) / a
	ce := int(math.Ceil(e))
	// The ceiling can land one short when e is an exact integer hit by
	// float round-off from below; the definition wants the smallest e
	// whose predicted load reaches N, so nudge if needed.
	if ce < 1 {
		ce = 1
	}
	for n+ce*k+(ce-1)*ce*p.Alpha/2 < p.N {
		ce++
	}
	return ce
}

// DynamicSize evaluates Theorem 1 by walking the recurrence backward:
//
//	BS_k(n) = (n+k) · (BS_{k+α}(n+k)/TR + dl) · CR      (n < N)
//	BS_k(N) = dl · N·CR·TR / (TR − N·CR)                (boundary, Eq. 11)
//
// with every predicted load along the chain clamped at N. This is the
// buffer size the dynamic scheme allocates when n requests are in service
// and k additional requests are predicted, under per-service worst disk
// latency dl.
func (p Params) DynamicSize(dl si.Seconds, n, k int) si.Bits {
	p.check(dl, n, k)
	if n >= p.N {
		return p.StaticSize(dl, p.N)
	}
	// Walk the chain once to find its length e, then substitute backward
	// from the fully loaded boundary using the closed-form step loads
	// m(i) = n + i·k + (i−1)·i·α/2 (clamped at N) — the same integers the
	// forward walk produces, without materializing the chain.
	e := 0
	for cn, ck := n, k; cn < p.N; e++ {
		cn, ck = p.inertiaStep(cn, ck)
	}
	bs := float64(p.StaticSize(dl, p.N))
	tr, cr, dlf := float64(p.TR), float64(p.CR), float64(dl)
	for i := e; i >= 1; i-- {
		m := n + i*k + (i-1)*i*p.Alpha/2
		if m > p.N {
			m = p.N
		}
		bs = float64(m) * (bs/tr + dlf) * cr
	}
	return si.Bits(bs)
}

// DynamicSizeClosedForm evaluates the closed form of Theorem 1 (Eq. 6)
// exactly as printed:
//
//	BS_k(n) = dl·CR·[ (CR/TR)^e · Π_{i=1}^{e−1} m(i) · N²·TR/(TR−N·CR)
//	                + Σ_{i=0}^{e−2} (CR/TR)^i · Π_{j=1}^{i+1} m(j)
//	                + (CR/TR)^{e−1} · N · Π_{j=1}^{e−1} m(j) ]
//
// where m(i) = n + i·k + (i−1)·i·α/2. Property tests check it against
// DynamicSize; the recurrence form is authoritative.
func (p Params) DynamicSizeClosedForm(dl si.Seconds, n, k int) si.Bits {
	p.check(dl, n, k)
	if n >= p.N {
		return p.StaticSize(dl, p.N)
	}
	e := p.ChainLength(n, k)
	r := float64(p.CR) / float64(p.TR)
	m := func(i int) float64 {
		return float64(n + i*k + (i-1)*i*p.Alpha/2)
	}
	// prod(j) = Π_{i=1}^{j} m(i), prod(0) = 1.
	prod := func(j int) float64 {
		out := 1.0
		for i := 1; i <= j; i++ {
			out *= m(i)
		}
		return out
	}
	full := float64(p.N) * float64(p.N) * float64(p.TR) /
		(float64(p.TR) - float64(p.N)*float64(p.CR))
	sum := 0.0
	for i := 0; i <= e-2; i++ {
		sum += math.Pow(r, float64(i)) * prod(i+1)
	}
	bracket := math.Pow(r, float64(e))*prod(e-1)*full +
		sum +
		math.Pow(r, float64(e-1))*float64(p.N)*prod(e-1)
	return si.Bits(float64(dl) * float64(p.CR) * bracket)
}

// UsagePeriod reports the usage period T of a buffer of the given size:
// the time the stream takes to consume it (BS / CR). In the dynamic scheme
// this equals the worst-case time to service the n+k predicted buffers.
func (p Params) UsagePeriod(size si.Bits) si.Seconds {
	return p.CR.TimeToTransfer(size)
}
