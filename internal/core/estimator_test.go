package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/si"
)

func TestEstimatorKLogBasics(t *testing.T) {
	e := NewEstimator(si.Minutes(40))
	if got := e.KLog(si.Minutes(100), 30); got != 0 {
		t.Errorf("empty history: KLog = %d, want 0", got)
	}
	// Three arrivals within 30s of each other, one far away.
	for _, m := range []float64{60, 60.1, 60.3, 75} {
		e.RecordArrival(si.Minutes(m))
	}
	if got := e.KLog(si.Minutes(80), si.Seconds(30)); got != 3 {
		t.Errorf("KLog = %d, want 3 (burst of three)", got)
	}
	// With a period long enough to span everything, all four count.
	if got := e.KLog(si.Minutes(80), si.Minutes(20)); got != 4 {
		t.Errorf("KLog = %d, want 4", got)
	}
}

func TestEstimatorPrunesOldArrivals(t *testing.T) {
	e := NewEstimator(si.Minutes(40))
	e.RecordArrival(si.Minutes(1))
	e.RecordArrival(si.Minutes(2))
	e.RecordArrival(si.Minutes(3))
	// At t = 50 min the window is [10, 50]: everything is stale.
	if got := e.KLog(si.Minutes(50), si.Minutes(5)); got != 0 {
		t.Errorf("stale arrivals counted: KLog = %d", got)
	}
	if len(e.arrivals) != 0 {
		t.Errorf("stale arrivals not pruned: %d left", len(e.arrivals))
	}
}

func TestEstimatorRejectsBackwardClock(t *testing.T) {
	e := NewEstimator(si.Minutes(40))
	e.RecordArrival(10)
	defer func() {
		if recover() == nil {
			t.Error("backward arrival should panic")
		}
	}()
	e.RecordArrival(5)
}

func TestEstimatorPanicsOnBadInputs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("zero tlog", func() { NewEstimator(0) })
	mustPanic("zero period", func() { NewEstimator(1).KLog(0, 0) })
}

// Property: the two-pointer KLog matches a brute-force count of the
// densest period-length window over random arrival sets.
func TestKLogMatchesBruteForce(t *testing.T) {
	brute := func(arrivals []si.Seconds, lo, hi, period si.Seconds) int {
		best := 0
		for _, start := range arrivals {
			if start < lo || start > hi {
				continue
			}
			c := 0
			for _, a := range arrivals {
				if a >= start && a <= start+period && a >= lo && a <= hi {
					c++
				}
			}
			if c > best {
				best = c
			}
		}
		return best
	}
	f := func(seed int64, nRaw uint8, periodRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 60
		tlog := si.Minutes(40)
		now := si.Minutes(100)
		period := si.Seconds(1+int(periodRaw)) * 10
		var arrivals []si.Seconds
		for i := 0; i < n; i++ {
			arrivals = append(arrivals, si.Minutes(50+50*rng.Float64()))
		}
		sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })
		e := NewEstimator(tlog)
		for _, a := range arrivals {
			e.RecordArrival(a)
		}
		want := brute(arrivals, now-tlog, now, period)
		return e.KLog(now, period) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEstimate(t *testing.T) {
	p := paperParams()
	e := NewEstimator(si.Minutes(40))
	now := si.Minutes(60)
	for i := 2; i >= 0; i-- {
		e.RecordArrival(now - si.Seconds(i)) // burst of 3 within any sane period
	}
	period := si.Seconds(30)

	// Uncapped: k_log + alpha = 3 + 1.
	if got := e.Estimate(p, now, period, math.MaxInt, 10); got != 4 {
		t.Errorf("Estimate = %d, want 4", got)
	}
	// Capped by min_i(k_i) + alpha (Assumption 2).
	if got := e.Estimate(p, now, period, 2, 10); got != 3 {
		t.Errorf("Estimate capped = %d, want 3", got)
	}
	// Not clamped by capacity: the sizing table saturates instead.
	if got := e.Estimate(p, now, period, math.MaxInt, p.N); got != 4 {
		t.Errorf("Estimate at capacity = %d, want unclamped 4", got)
	}
	// Empty history: alpha alone.
	e2 := NewEstimator(si.Minutes(40))
	if got := e2.Estimate(p, now, period, math.MaxInt, 1); got != p.Alpha {
		t.Errorf("empty-history Estimate = %d, want alpha = %d", got, p.Alpha)
	}
}

// Property: Estimate never violates Assumption 2 (k_c <= min_i(k_i) + α)
// and never goes negative.
func TestEstimateRespectsAssumption2(t *testing.T) {
	p := paperParams()
	f := func(seed int64, minKiRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEstimator(si.Minutes(40))
		tt := si.Seconds(0)
		for i := 0; i < 20; i++ {
			tt += si.Seconds(rng.Float64() * 100)
			e.RecordArrival(tt)
		}
		minKi := int(minKiRaw) % p.N
		n := 1 + int(nRaw)%p.N
		kc := e.Estimate(p, tt, 30, minKi, n)
		return kc <= minKi+p.Alpha && kc >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLogAccessor(t *testing.T) {
	if got := NewEstimator(si.Minutes(20)).TLog(); got != si.Minutes(20) {
		t.Errorf("TLog = %v", got)
	}
}
