package core

import (
	"fmt"
	"math"

	"repro/internal/si"
)

// This file implements footnote 2: adapting the equal-consumption-rate
// model to variable display rates, by the two methods of Chang &
// Garcia-Molina. The first treats every stream as consuming at the
// maximal rate — simple and wasteful. The second uses the greatest common
// divisor of the display rates as a unit rate and treats a stream of rate
// m·unit as m unit streams — tight, at the cost of bookkeeping.

// RateSet describes a fixed family of display rates a server supports.
type RateSet struct {
	rates []si.BitRate
	unit  si.BitRate
	max   si.BitRate
}

// NewRateSet validates a family of display rates and computes their unit
// rate (greatest common divisor, computed over whole bits per second).
func NewRateSet(rates []si.BitRate) (*RateSet, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("core: empty rate set")
	}
	g := int64(0)
	max := si.BitRate(0)
	for _, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("core: non-positive rate %v", r)
		}
		bps := int64(math.Round(float64(r)))
		if math.Abs(float64(r)-float64(bps)) > 1e-6 {
			return nil, fmt.Errorf("core: rate %v is not a whole number of bits per second", r)
		}
		g = gcd(g, bps)
		if r > max {
			max = r
		}
	}
	return &RateSet{rates: append([]si.BitRate(nil), rates...), unit: si.BitRate(g), max: max}, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Unit reports the unit display rate: the GCD of the set.
func (s *RateSet) Unit() si.BitRate { return s.unit }

// Max reports the largest rate in the set.
func (s *RateSet) Max() si.BitRate { return s.max }

// Rates returns the rates in the set.
func (s *RateSet) Rates() []si.BitRate { return append([]si.BitRate(nil), s.rates...) }

// Multiple reports how many unit streams a display rate amounts to.
// The rate must be a whole multiple of the unit (members of the set
// always are).
func (s *RateSet) Multiple(rate si.BitRate) (int, error) {
	if rate <= 0 {
		return 0, fmt.Errorf("core: non-positive rate %v", rate)
	}
	m := float64(rate) / float64(s.unit)
	rounded := math.Round(m)
	if math.Abs(m-rounded) > 1e-9 {
		return 0, fmt.Errorf("core: rate %v is not a multiple of the unit %v", rate, s.unit)
	}
	return int(rounded), nil
}

// MaxRateParams builds sizing parameters under the first adaptation
// method: every stream is budgeted at the set's maximal rate. n then
// counts streams directly.
func (s *RateSet) MaxRateParams(tr si.BitRate, alpha int) (Params, error) {
	p := Params{TR: tr, CR: s.max, N: DeriveN(tr, s.max), Alpha: alpha}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// UnitRateParams builds sizing parameters under the second adaptation
// method: the consumption rate is the unit rate and capacity is counted
// in unit streams. A physical stream of rate m·unit occupies m unit
// slots (use Multiple) and receives m unit-sized buffers' worth of data
// per period.
func (s *RateSet) UnitRateParams(tr si.BitRate, alpha int) (Params, error) {
	p := Params{TR: tr, CR: s.unit, N: DeriveN(tr, s.unit), Alpha: alpha}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// StreamBuffer sizes the buffer for one physical stream under the
// unit-rate method: m unit buffers, where nUnits and k are counted in
// unit streams.
func (s *RateSet) StreamBuffer(p Params, dl si.Seconds, nUnits, k int, rate si.BitRate) (si.Bits, error) {
	m, err := s.Multiple(rate)
	if err != nil {
		return 0, err
	}
	return si.Bits(m) * p.DynamicSize(dl, nUnits, k), nil
}

// CapacityAdvantage reports how many physical streams of each rate the
// unit-rate method admits versus the max-rate method, assuming a uniform
// mix of the set's rates. It quantifies the footnote's motivation: the
// max-rate method wastes the budget difference between each stream's
// actual rate and the maximum.
func (s *RateSet) CapacityAdvantage(tr si.BitRate) float64 {
	var mean float64
	for _, r := range s.rates {
		mean += float64(r)
	}
	mean /= float64(len(s.rates))
	return float64(s.max) / mean
}
