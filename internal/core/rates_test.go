package core

import (
	"testing"
	"testing/quick"

	"repro/internal/si"
)

func TestNewRateSet(t *testing.T) {
	// MPEG-1 at 1.5 Mbps and a low-rate 0.5 Mbps stream: unit 0.5 Mbps.
	s, err := NewRateSet([]si.BitRate{si.Mbps(1.5), si.Mbps(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Unit(); got != si.Mbps(0.5) {
		t.Errorf("unit = %v, want 0.5 Mbps", got)
	}
	if got := s.Max(); got != si.Mbps(1.5) {
		t.Errorf("max = %v, want 1.5 Mbps", got)
	}
	if got := len(s.Rates()); got != 2 {
		t.Errorf("rates = %d", got)
	}
}

func TestNewRateSetErrors(t *testing.T) {
	if _, err := NewRateSet(nil); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := NewRateSet([]si.BitRate{0}); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewRateSet([]si.BitRate{1.5}); err == nil {
		t.Error("fractional bps should fail")
	}
}

func TestMultiple(t *testing.T) {
	s, err := NewRateSet([]si.BitRate{si.Mbps(1.5), si.Mbps(1), si.Mbps(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Unit(); got != si.Mbps(0.5) {
		t.Fatalf("unit = %v", got)
	}
	for rate, want := range map[si.BitRate]int{si.Mbps(1.5): 3, si.Mbps(1): 2, si.Mbps(2): 4} {
		m, err := s.Multiple(rate)
		if err != nil || m != want {
			t.Errorf("Multiple(%v) = %d, %v; want %d", rate, m, err, want)
		}
	}
	if _, err := s.Multiple(si.Mbps(0.75)); err == nil {
		t.Error("non-multiple should fail")
	}
	if _, err := s.Multiple(0); err == nil {
		t.Error("zero rate should fail")
	}
}

// Property: the unit divides every member rate exactly.
func TestUnitDividesAll(t *testing.T) {
	f := func(raws []uint16) bool {
		if len(raws) == 0 {
			return true
		}
		rates := make([]si.BitRate, 0, len(raws))
		for _, r := range raws {
			rates = append(rates, si.BitRate(1000*(1+int(r)%500)))
		}
		s, err := NewRateSet(rates)
		if err != nil {
			return false
		}
		for _, r := range rates {
			if _, err := s.Multiple(r); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The footnote's motivation: the unit-rate method admits more capacity
// than the max-rate method when rates differ.
func TestRateMethodsCapacity(t *testing.T) {
	s, err := NewRateSet([]si.BitRate{si.Mbps(1.5), si.Mbps(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	tr := si.Mbps(120)
	maxP, err := s.MaxRateParams(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	unitP, err := s.UnitRateParams(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if maxP.N != 79 {
		t.Errorf("max-rate N = %d, want 79", maxP.N)
	}
	if unitP.N != 239 {
		t.Errorf("unit-rate N = %d, want 239 unit streams", unitP.N)
	}
	// A 0.5 Mbps stream costs 3 slots under max-rate accounting but only
	// 1 unit slot: 79 low-rate streams vs 239.
	m, err := s.Multiple(si.Mbps(0.5))
	if err != nil || m != 1 {
		t.Fatalf("Multiple = %d, %v", m, err)
	}
	if adv := s.CapacityAdvantage(tr); adv <= 1 {
		t.Errorf("capacity advantage = %v, want > 1", adv)
	}
}

func TestStreamBuffer(t *testing.T) {
	s, err := NewRateSet([]si.BitRate{si.Mbps(1.5), si.Mbps(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.UnitRateParams(si.Mbps(120), 1)
	if err != nil {
		t.Fatal(err)
	}
	dl := dlRR()
	// A 1.5 Mbps stream gets exactly three unit buffers.
	got, err := s.StreamBuffer(p, dl, 30, 4, si.Mbps(1.5))
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * p.DynamicSize(dl, 30, 4)
	if got != want {
		t.Errorf("StreamBuffer = %v, want %v", got, want)
	}
	if _, err := s.StreamBuffer(p, dl, 30, 4, si.Mbps(0.7)); err == nil {
		t.Error("non-multiple rate should fail")
	}
}

func TestDybaseSize(t *testing.T) {
	p := paperParams()
	dl := dlRR()

	// k = 0 is the Eq. 5 fixpoint at n.
	if got, want := p.DybaseSize(dl, 10, 0), p.StaticSize(dl, 10); got != want {
		t.Errorf("Dybase k=0: %v, want Eq.5 %v", got, want)
	}
	// Full load matches the boundary.
	if got, want := p.DybaseSize(dl, p.N, 0), p.StaticSize(dl, p.N); got != want {
		t.Errorf("Dybase at N: %v, want %v", got, want)
	}
}

// Property: the scheme ordering the designs imply — naive (present only)
// <= DYBASE (constant-k future) <= Theorem 1 (growing-k future) <= static
// full-load, with room for the Sweep DL artifact excluded by using RR.
func TestSchemeSizeOrdering(t *testing.T) {
	p := paperParams()
	dl := dlRR()
	full := p.StaticSize(dl, p.N)
	f := func(a, b uint8) bool {
		n := 1 + int(a)%p.N
		k := int(b) % (p.N - n + 1)
		naive := p.NaiveSize(dl, n, k)
		dybase := p.DybaseSize(dl, n, k)
		dynamic := p.DynamicSize(dl, n, k)
		return naive <= dybase+1 && dybase <= dynamic+1 && dynamic <= full+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DYBASE sizes are monotone in k and equal Theorem 1 when the
// first chain step already reaches N.
func TestDybaseProperties(t *testing.T) {
	p := paperParams()
	dl := dlRR()
	f := func(a, b uint8) bool {
		n := 1 + int(a)%p.N
		k := int(b) % (p.N - n + 1)
		if k+1 <= p.N-n && p.DybaseSize(dl, n, k) > p.DybaseSize(dl, n, k+1)+1 {
			return false
		}
		if n+k >= p.N && k > 0 {
			// One step to N: both recurrences collapse to the same value.
			d1 := float64(p.DybaseSize(dl, n, k))
			d2 := float64(p.DynamicSize(dl, n, k))
			return relClose(d1, d2, 1e-12)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
