package core

import (
	"fmt"
	"math"
)

// Allocation is the inertia snapshot recorded when a buffer is allocated to
// a request: the number of requests then in service (N) and the number of
// additional requests then predicted (K). Enforcement of Assumptions 1 and
// 2 compares the current state against these snapshots.
type Allocation struct {
	N int // n_i: requests in service at allocation time
	K int // k_i: estimated additional requests at allocation time
}

// Book tracks, for every request in service, the Allocation recorded at its
// most recent buffer allocation. It answers the two aggregate questions the
// allocation algorithm (Fig. 5) asks: min_i(n_i + k_i) for admission
// control and min_i(k_i) for prediction capping.
//
// A disk serves at most N ≈ 79 requests, so linear scans are cheaper and
// simpler than incremental min-maintenance under arbitrary removal.
type Book struct {
	allocs map[int]Allocation
	// The mins are read on every scheduling decision and mutated on every
	// allocation, so they are maintained incrementally: the cached min
	// plus a count of entries holding it. A full rescan happens only when
	// the last holder of a min leaves or grows — rare in steady state.
	minNK, minK int
	cntNK, cntK int
	dirty       bool
}

// NewBook returns an empty book.
func NewBook() *Book {
	return &Book{
		allocs: make(map[int]Allocation),
		minNK:  math.MaxInt,
		minK:   math.MaxInt,
	}
}

// Set records the allocation snapshot for the request with the given id.
func (b *Book) Set(id int, a Allocation) {
	if a.N < 1 || a.K < 0 {
		panic(fmt.Sprintf("core: invalid allocation snapshot %+v", a))
	}
	if old, ok := b.allocs[id]; ok {
		b.forget(old)
	}
	b.allocs[id] = a
	if !b.dirty {
		b.admitMin(a)
	}
}

// Remove forgets a departed request. Removing an unknown id is a no-op:
// a request that was admitted but never serviced has no snapshot.
func (b *Book) Remove(id int) {
	if old, ok := b.allocs[id]; ok {
		delete(b.allocs, id)
		b.forget(old)
	}
}

// forget retires an entry's contribution to the cached mins.
func (b *Book) forget(old Allocation) {
	if b.dirty {
		return
	}
	if old.N+old.K == b.minNK {
		if b.cntNK--; b.cntNK == 0 {
			b.dirty = true
		}
	}
	if old.K == b.minK {
		if b.cntK--; b.cntK == 0 {
			b.dirty = true
		}
	}
}

// admitMin folds a new entry into the cached mins.
func (b *Book) admitMin(a Allocation) {
	switch s := a.N + a.K; {
	case s < b.minNK:
		b.minNK, b.cntNK = s, 1
	case s == b.minNK:
		b.cntNK++
	}
	switch {
	case a.K < b.minK:
		b.minK, b.cntK = a.K, 1
	case a.K == b.minK:
		b.cntK++
	}
}

// Len reports the number of requests with a recorded snapshot.
func (b *Book) Len() int { return len(b.allocs) }

func (b *Book) refresh() {
	b.minNK, b.minK = math.MaxInt, math.MaxInt
	b.cntNK, b.cntK = 0, 0
	for _, a := range b.allocs {
		switch s := a.N + a.K; {
		case s < b.minNK:
			b.minNK, b.cntNK = s, 1
		case s == b.minNK:
			b.cntNK++
		}
		switch {
		case a.K < b.minK:
			b.minK, b.cntK = a.K, 1
		case a.K == b.minK:
			b.cntK++
		}
	}
	b.dirty = false
}

// MinNK returns min_i(n_i + k_i), or math.MaxInt when the book is empty.
func (b *Book) MinNK() int {
	if b.dirty || len(b.allocs) == 0 {
		b.refresh()
	}
	return b.minNK
}

// MinK returns min_i(k_i), or math.MaxInt when the book is empty.
func (b *Book) MinK() int {
	if b.dirty || len(b.allocs) == 0 {
		b.refresh()
	}
	return b.minK
}

// Admit implements Procedure Admission_Control of Fig. 5: a newly arriving
// request may be admitted only if, with it admitted, the number of requests
// in service stays within every in-service buffer's sizing assumption:
//
//	(n+1) <= min_i(n_i + k_i)
//
// and within the disk's capacity N. n is the number of requests currently
// in service (which may exceed b.Len() when some admitted requests have not
// yet received their first buffer).
func Admit(b *Book, n, nmax int) bool {
	if n+1 > nmax {
		return false
	}
	return n+1 <= b.MinNK()
}

// AdmitBudget implements the churn-safe form of the same enforcement.
// Here b records, for every in-service buffer, Allocation{N: the
// cumulative admission count stamped at its most recent fill, K: k_i},
// so MinNK() is min_i(stamp_i + k_i) and one more admission is safe iff
// every buffer still has budget — admitted − stamp_i < k_i for all i:
//
//	admitted + 1 <= min_i(stamp_i + k_i)
//
// where admitted is the cumulative admission count so far.
//
// While no stream departs inside an open usage period, admissions are
// pure growth (admitted − stamp_i = n − n_i) and this is exactly Admit's
// concurrency rule — the paper's regime, where viewing times dwarf usage
// periods. Under heavy churn the concurrency rule lets a replacement
// (departure + new admission, net zero load) through unchecked even
// though its first fill consumes a service slot the open windows were
// sized for; charging every admission against the k_i budgets is what
// Theorem 2's service counting actually requires.
func AdmitBudget(b *Book, admitted int) bool {
	return admitted+1 <= b.MinNK()
}
