package core

import "repro/internal/si"

// DybaseSize evaluates the sizing of DYBASE (Lee, Whang, Moon & Song,
// Information Sciences 137, 2001), the paper's cited precursor: the same
// future-dependent recurrence as Theorem 1 but under a simpler model
// without the inertia assumptions — the predicted number of additional
// requests stays constant at k along the whole chain instead of growing
// by alpha per step:
//
//	BS'_k(n) = (n+k) · (BS'_k(n+k)/TR + dl) · CR      (n < N)
//	BS'_k(N) = the Eq. 11 boundary
//
// With k = 0 the chain never advances and the recurrence becomes the
// fixpoint BS = n·(BS/TR + dl)·CR, whose solution is exactly Eq. 5 at n —
// sizing for a frozen system. DYBASE sizes sit between the naive Eq. 5
// value at n+k and Theorem 1's (which reserves additional headroom for a
// growing arrival rate); without Assumption 2's runtime cap, DYBASE has
// no enforcement story when the rate outgrows k, which is precisely what
// the paper's inertia machinery adds.
func (p Params) DybaseSize(dl si.Seconds, n, k int) si.Bits {
	p.check(dl, n, k)
	if n >= p.N {
		return p.StaticSize(dl, p.N)
	}
	if k == 0 {
		// Fixpoint of the stationary recurrence: Eq. 5 at n.
		return p.StaticSize(dl, n)
	}
	// The chain loads are n + i·k for i = 1..⌈(N−n)/k⌉, clamped at N;
	// substitute backward without materializing them.
	steps := (p.N - n + k - 1) / k
	bs := float64(p.StaticSize(dl, p.N))
	tr, cr, dlf := float64(p.TR), float64(p.CR), float64(dl)
	for i := steps; i >= 1; i-- {
		m := n + i*k
		if m > p.N {
			m = p.N
		}
		bs = float64(m) * (bs/tr + dlf) * cr
	}
	return si.Bits(bs)
}
