//go:build !race

package scale

const raceEnabled = false
