// sharing.go runs the scale scenario the stream-sharing layer exists
// for: a modern 8-disk server offered a Zipf-skewed catalog load far
// beyond Eq. 1's per-disk capacity. Without sharing every viewer is an
// engine stream, so admissions clip at N per disk and the overload is
// turned away. With the sharing layer the same trace merges concurrent
// viewers of a title onto one disk stream — late joiners replay the
// missed prefix from the pinned cache — so the engine carries a few
// dozen streams while the server admits several times its nominal
// capacity in viewers. The scenario runs both arms over the identical
// library and trace so the comparison is paired, and stays on the
// VirtualClock so either arm is deterministic.
package scale

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/share"
	"repro/internal/si"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SharingConfig parameterizes a sharing-scenario run. The zero value
// (after normalization, and with Sharing false) is the baseline arm of
// the full scenario: 8 disks, four two-hour titles per disk, a half-hour
// ramp aimed at four times each disk's Eq. 1 capacity.
type SharingConfig struct {
	// Disks is the number of disks; at least 2 so placement still
	// matters, default 8 (the full scenario). Tests under the race
	// detector may shrink the server; the per-disk overload — the
	// quantity the scenario is about — is independent of disk count.
	Disks int

	// TitlesPerDisk is the catalog size per disk. Default 4: small
	// enough that concurrent interest per title is deep, the regime
	// sharing exploits.
	TitlesPerDisk int

	// TitleLength is every title's playback length. Default two hours
	// (the paper's movie length).
	TitleLength si.Seconds

	// OverloadFactor is the offered load as a multiple of the server's
	// aggregate Eq. 1 stream capacity: the workload is sized so the
	// concurrent-viewer level reaches OverloadFactor × N × Disks by the
	// end of the horizon. Default 4.
	OverloadFactor float64

	// Horizon is the arrival window. Default 30 minutes — a climbing
	// ramp, not a steady day; the overload assertion concerns the ramp's
	// top.
	Horizon si.Seconds

	// Window is the cached-prefix length per hot title. Default
	// 5 minutes.
	Window si.Seconds

	// CacheBudget bounds the total pinned prefix footprint. Zero means
	// the scenario default — three quarters of the catalog's full prefix
	// footprint, so the coldest titles go unpinned and the
	// popularity-aware pinning order is load-bearing. Negative disables
	// the cache entirely (sharing then degenerates to batching).
	CacheBudget si.Bits

	// Sharing selects the arm: false runs every viewer as a private
	// engine stream, true fronts arrivals with the sharing layer.
	Sharing bool

	// Method is the buffer scheduling method. Default Round-Robin.
	Method sched.Kind

	// Seed derives the workload and simulation random streams. Both
	// arms of a comparison must use the same seed: the trace is drawn
	// before the arms diverge.
	Seed int64

	// SizeTable, when non-nil, is the shared precomputed sizing table
	// (see NewSizeTable); both arms and any replications can share one.
	SizeTable *core.Table
}

func (c *SharingConfig) normalize() error {
	if c.Disks == 0 {
		c.Disks = 8
	}
	if c.Disks < 2 {
		return fmt.Errorf("scale: sharing scenario needs at least 2 disks, got %d", c.Disks)
	}
	if c.TitlesPerDisk <= 0 {
		c.TitlesPerDisk = 4
	}
	if c.TitleLength == 0 {
		c.TitleLength = si.Hours(2)
	}
	if c.TitleLength < 0 {
		return fmt.Errorf("scale: negative title length %v", c.TitleLength)
	}
	if c.OverloadFactor == 0 {
		c.OverloadFactor = 4
	}
	if c.OverloadFactor <= 0 {
		return fmt.Errorf("scale: non-positive overload factor %v", c.OverloadFactor)
	}
	if c.Horizon == 0 {
		c.Horizon = si.Minutes(30)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("scale: non-positive horizon %v", c.Horizon)
	}
	if c.Window == 0 {
		c.Window = si.Minutes(5)
	}
	if c.Window < 0 {
		return fmt.Errorf("scale: negative prefix window %v", c.Window)
	}
	return nil
}

// SharingResult is one sharing-scenario arm's outcome.
type SharingResult struct {
	// Sim is the underlying simulation result. Its stream-level counts
	// (Served, Rejected) concern engine streams: viewers in the sharing
	// arm, shared disk streams' leaders otherwise.
	Sim *sim.Result

	// Share holds the sharing layer's viewer-level statistics; nil in
	// the baseline arm.
	Share *share.Stats

	// Env is the derived environment the run used.
	Env Env

	// Requests is the number of viewers the generated trace offered.
	Requests int

	// Admitted and Rejected count viewers: in the sharing arm by the
	// layer's accounting (merged and cache-only viewers included), in
	// the baseline by the engine's (every viewer is a stream).
	Admitted, Rejected int

	// EngineStreamsPeak is the largest number of engine streams in
	// service across the server at once — the disk-level cost that
	// stays flat while sharing multiplies Admitted.
	EngineStreamsPeak int
}

// RunSharing executes one arm of the sharing scenario. Given equal
// configs it returns identical results regardless of goroutine
// scheduling; run it twice with Sharing toggled for the paired
// comparison.
func RunSharing(cfg SharingConfig) (*SharingResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	env := Environment()
	length := cfg.TitleLength
	titles := cfg.TitlesPerDisk * cfg.Disks
	lib, err := catalog.New(catalog.Config{
		Titles:          titles,
		Disks:           cfg.Disks,
		Spec:            env.Spec,
		PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			v := catalog.MPEG1Video(id)
			v.Length = length
			return v
		},
		Policy: catalog.LeastLoaded{},
	})
	if err != nil {
		return nil, err
	}

	// Size a flat arrival rate so the concurrent-viewer level reaches
	// the overload target by the end of the horizon. Viewing is uniform
	// on [0, V]; with a constant rate λ the concurrency after time T is
	// λ·(T − T²/2V) while T < V (the ramp never reaches the steady
	// λ·V/2), so solve for λ at T = Horizon.
	maxViewing := workload.MaxViewing
	if length < maxViewing {
		maxViewing = length
	}
	target := cfg.OverloadFactor * float64(env.N*cfg.Disks)
	T, V := float64(cfg.Horizon), float64(maxViewing)
	var rate float64
	if T < V {
		rate = target / (T - T*T/(2*V))
	} else {
		rate = target / (V / 2)
	}
	day := workload.NewSchedule(cfg.Horizon, []float64{rate})
	trace := workload.Generate(day, lib, cfg.Seed)

	var shareOpts *share.Options
	if cfg.Sharing {
		budget := cfg.CacheBudget
		if budget == 0 {
			// Default: three quarters of the full prefix footprint, so
			// the budget is a real constraint.
			var footprint si.Bits
			for id := 0; id < lib.Len(); id++ {
				v := lib.Video(id)
				span := cfg.Window
				if v.Length < span {
					span = v.Length
				}
				footprint += v.Rate.DataIn(span)
			}
			budget = footprint * 3 / 4
		}
		shareOpts = &share.Options{Window: cfg.Window, CacheBudget: budget}
	}

	obs := &diskObserver{
		loads:   make([]DiskLoad, cfg.Disks),
		current: make([]int, cfg.Disks),
	}
	res, err := sim.Run(sim.Config{
		Scheme:                sim.Dynamic,
		Method:                sched.NewMethod(cfg.Method),
		Spec:                  env.Spec,
		CR:                    env.CR,
		Alpha:                 alpha,
		ChurnSafeAdmission:    true,
		DeadlineAwareBubbleUp: true,
		Library:               lib,
		Trace:                 trace,
		Seed:                  cfg.Seed ^ 0x5ca1ab1e,
		Grace:                 si.Minutes(5),
		SampleEvery:           si.Minutes(2),
		SizeTable:             cfg.SizeTable,
		Observer:              engine.Observer(obs),
		Share:                 shareOpts,
	})
	if err != nil {
		return nil, err
	}
	out := &SharingResult{
		Sim:               res,
		Share:             res.Sharing,
		Env:               env,
		Requests:          len(trace.Requests),
		EngineStreamsPeak: obs.peak,
	}
	if res.Sharing != nil {
		out.Admitted = res.Sharing.Totals.Admitted
		out.Rejected = res.Sharing.Totals.Rejected
	} else {
		out.Admitted = len(trace.Requests) - res.Rejected - res.RejectedMemory
		out.Rejected = res.Rejected + res.RejectedMemory
	}
	return out, nil
}
