//go:build race

package scale

const raceEnabled = true
