package scale

import (
	"testing"

	"repro/internal/sched"
)

func TestFleetConfigValidation(t *testing.T) {
	bad := []FleetConfig{
		{Servers: 1},
		{DisksPerServer: -1},
		{Titles: 1},
		{TitleLength: -1},
		{OverloadFactor: -1},
		{Horizon: -1},
	}
	for i, cfg := range bad {
		if _, err := RunFleet(cfg); err == nil {
			t.Errorf("config %d (%+v): RunFleet accepted an invalid config", i, cfg)
		}
	}
}

// The scenario's headline claim on a pocket fleet: over the identical
// knee-capacity trace, replicating the hot set lets the router admit a
// solid multiple of the single-copy arm — which is title-bound, not
// bandwidth-bound — and the Theorem 1 sizing guarantee holds in both
// arms (zero underruns), ramp admissions included. The full-size fleet
// (4×8) with the analytic max-flow bound is the fleet-routing
// experiment's golden; this test keeps the invariants cheap enough for
// every `go test` run.
func TestFleetReplicationMultipliesAdmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet scenario in -short mode")
	}
	// 2 titles over 4 disks: the single-copy arm can hold data on only
	// half its spindles, the starvation regime the scenario is about.
	cfg := FleetConfig{
		Servers:        2,
		DisksPerServer: 2,
		Titles:         2,
		Seed:           7,
		SizeTable:      NewFleetSizeTable(sched.RoundRobin),
		Quick:          true,
	}
	base, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replicate = true
	rep, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Paired arms: the trace is drawn before the arms diverge.
	if base.Requests != rep.Requests {
		t.Fatalf("arms saw different traces: %d vs %d requests", base.Requests, rep.Requests)
	}
	// The baseline must actually starve on placement: a narrow Zipf
	// catalog leaves most spindles without data to serve.
	if base.Rejected == 0 {
		t.Fatal("single-copy arm rejected nothing; the scenario must saturate the data-holding disks")
	}
	if base.Underruns != 0 || rep.Underruns != 0 {
		t.Fatalf("sizing guarantee violated: %d underruns single-copy, %d replicated",
			base.Underruns, rep.Underruns)
	}
	ratio := float64(rep.Routed) / float64(base.Routed)
	if ratio < 1.5 {
		t.Errorf("replicated arm admitted only %.2fx the single-copy arm (%d vs %d)",
			ratio, rep.Routed, base.Routed)
	}
	// The replicated arm's gain must come from the router reaching the
	// copies: failover is the mechanism, so it has to fire.
	if rep.Failovers == 0 {
		t.Error("replicated arm admitted more without a single failover")
	}
	// Both runs must be deterministic for equal configs.
	again, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Routed != rep.Routed || again.Failovers != rep.Failovers ||
		again.Rejected != rep.Rejected || again.PeakTotal != rep.PeakTotal ||
		again.Underruns != rep.Underruns {
		t.Errorf("replicated arm not deterministic: %+v vs %+v", again, rep)
	}
}
