// Package scale runs the runtime far beyond the paper's 1997 environment:
// a server of modern nearline disks (2.4 Gbps sustained, N = 1599
// concurrent 1.5 Mbps streams per spindle — Eq. 1 at twenty times the
// Barracuda's transfer rate) spread over at least eight disks, driving
// each disk to many hundreds of concurrent streams — the stress case the
// engine's data structures were rebuilt for. At this depth the deadline
// index holds ~700 started streams per disk, so the O(n) sorted-slice
// maintenance the seed repo shipped would dominate the event loop; the
// 4-ary heap keeps every insert/remove at O(log n). The run stays on the
// deterministic VirtualClock — same seed, same trace, same Result, on
// any machine and under any worker count — so the scenario doubles as a
// reproducibility fixture an order of magnitude above the paper's N = 79.
//
// Scaling the paper's math up surfaces three regime effects the 1997
// environment never exposed, and the scenario exercises the engine
// mechanisms built for each:
//
// First, the memory knee. Theorem 1's recurrence anchors every size to
// the full-load boundary BS(N) through a product of load ratios m_i/N
// along the inertia chain. At N = 79 the product decays fast and the
// whole load range is usable; at N = 1599 the boundary size is ~8 GB per
// buffer and the product stops decaying once n passes roughly half of N
// — BS(800, 32) is already 55× BS(640, 16). The bandwidth limit of Eq. 1
// is therefore unreachable: memory economics cap a modern disk near 50%
// stream utilization. The scenario's default peak (700 per disk) sits
// just under that knee. Large alpha compounds the product (the chain's k
// grows by alpha−1 per step), which is why the scenario keeps the
// paper's alpha = 1.
//
// Second, replacement churn. At hundreds of streams a buffer's usage
// period spans many session endings, so departures are replaced *within*
// open windows. Fig. 5's concurrency-form admission rule
// (n+1 ≤ min_i(n_i+k_i)) never defers a replacement, yet every
// replacement's first fill consumes a service slot the in-service
// buffers were sized for — enough churn and the sizing guarantee
// underruns. The scenario therefore runs the engine's churn-safe
// enforcement (per-buffer admission budgets, core.AdmitBudget), which
// degenerates to the paper's rule when windows see no departures.
//
// Third, deadline clusters. Buffer sizes grow with load, so a refill
// generation's deadlines are spaced by the *previous* generation's
// service time; under a climbing ramp that spacing compresses below the
// current service time and the earliest-deadline slack check BubbleUp
// relies on stops protecting the backlog's tail. The scenario runs the
// engine's deadline-aware BubbleUp, which admits a newcomer's immediate
// fill only when the whole backlog schedule affords it.
package scale

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/sim"
	"repro/internal/workload"
)

// crMbps is the scenario's stream consumption rate in Mbps: the paper's
// 1.5 Mbps MPEG-1 rate, kept so N scales purely with the disk.
const crMbps = 1.5

// alpha is the scenario's inertia slack — the paper's own alpha = 1,
// which at this scale is not just adequate but necessary. Theorem 1's
// recurrence walks a chain whose k grows by alpha−1 per step, and every
// size along the chain is anchored to the full-load boundary through a
// product of load ratios m_i/N; any alpha > 1 compounds that product
// toward the boundary's enormous BS(N) and moves the memory knee (see
// the package comment) to lower n. alpha = 1 keeps the chain's k flat,
// exactly as the paper ran it.
const alpha = 1

// Config parameterizes a large-N scenario run. The zero value (after
// normalization) is the full scenario: 8 disks, two-hour titles, a
// 24-hour Zipf day aimed at 700 concurrent streams per disk at peak.
type Config struct {
	// Disks is the number of disks; at least 8 (the scenario exists to
	// exercise multi-disk scale). Default 8.
	Disks int

	// TitlesPerDisk is the catalog size per disk. Default 16.
	TitlesPerDisk int

	// TitleLength is every title's playback length (workload.Generate
	// draws viewing uniform in [0, min(MaxViewing, length)]). Default
	// two hours — the paper's movie length, giving a one-hour mean
	// viewing time: long enough that the arrival rate sustaining the
	// peak stays inside the sizing recurrence's stable basin (arrivals
	// per usage period feed back into buffer sizes; see the package
	// comment), short enough that peak windows still see replacement
	// churn.
	TitleLength si.Seconds

	// PeakPerDisk is the concurrent-stream level per disk the workload
	// aims at during the peak slot, sized by the M/G/∞ heuristic
	// (concurrency ≈ arrival rate × mean viewing time). Default 700 —
	// just under the modern disk's memory knee, the economical limit the
	// sizing recurrence imposes well before Eq. 1's bandwidth limit
	// N = 1599 (see the package comment).
	PeakPerDisk int

	// Horizon is the arrival day's length. Default 24 h.
	Horizon si.Seconds

	// Theta is the Zipf time-of-day skew (0 peaked, 1 uniform).
	// Default 0.5.
	Theta float64

	// Method is the buffer scheduling method. Default Round-Robin.
	Method sched.Kind

	// Seed derives the workload and simulation random streams.
	Seed int64

	// SizeTable, when non-nil, is the shared precomputed sizing table
	// for this scenario's (spec, method, CR, alpha). At N = 1599 the
	// table build is the dominant per-run setup cost, so replications
	// share one (see Env to build it).
	SizeTable *core.Table

	// Observer, when set, receives every engine instrumentation callback
	// alongside the scenario's own per-disk tallies. Results are
	// independent of observers.
	Observer engine.Observer

	// Quick shrinks the scenario for tests: one peak half-hour slot
	// instead of a day, and a short grace. The load still reaches the
	// full PeakPerDisk level — high load is cheap here, because buffers
	// grow with n and refills are what cost events — so Quick exercises
	// the same large-n regime.
	Quick bool
}

func (c *Config) normalize() error {
	if c.Disks == 0 {
		c.Disks = 8
	}
	if c.Disks < 8 {
		return fmt.Errorf("scale: scenario needs at least 8 disks, got %d", c.Disks)
	}
	if c.TitlesPerDisk <= 0 {
		c.TitlesPerDisk = 16
	}
	if c.TitleLength == 0 {
		c.TitleLength = si.Hours(2)
	}
	if c.TitleLength < 0 {
		return fmt.Errorf("scale: negative title length %v", c.TitleLength)
	}
	if c.PeakPerDisk == 0 {
		c.PeakPerDisk = 700
	}
	if c.Horizon == 0 {
		c.Horizon = si.Hours(24)
		if c.Quick {
			c.Horizon = si.Minutes(30)
		}
	}
	if c.Theta == 0 {
		c.Theta = 0.5
	}
	spec := Spec()
	if n := spec.MaxConcurrent(si.Mbps(crMbps)); c.PeakPerDisk >= n {
		return fmt.Errorf("scale: peak %d per disk at or above capacity N = %d", c.PeakPerDisk, n)
	}
	return nil
}

// Spec returns the scenario's disk model.
func Spec() diskmodel.Spec { return diskmodel.ModernNearline() }

// Env describes the derived scenario environment.
type Env struct {
	Spec diskmodel.Spec
	CR   si.BitRate
	N    int // per-disk concurrent-stream capacity
}

// Environment derives the scenario's fixed environment: the modern
// nearline spec and its Eq. 1 capacity for 1.5 Mbps streams.
func Environment() Env {
	spec := Spec()
	cr := si.Mbps(crMbps)
	return Env{Spec: spec, CR: cr, N: spec.MaxConcurrent(cr)}
}

// NewSizeTable builds the scenario's dynamic sizing table for sharing
// across replications via Config.SizeTable.
func NewSizeTable(method sched.Kind) *core.Table {
	env := Environment()
	p := core.Params{TR: env.Spec.TransferRate, CR: env.CR, N: env.N, Alpha: alpha}
	m := sched.NewMethod(method)
	return core.NewTable(p, m.DLModel(env.Spec))
}

// DiskLoad is one disk's deterministic tally over a run.
type DiskLoad struct {
	// Served counts streams that received their first data.
	Served int

	// Rejected counts arrivals turned away (capacity; the scenario
	// runs no memory gate).
	Rejected int

	// Peak is the largest number of streams simultaneously in service.
	Peak int
}

// Result is one scenario run's outcome.
type Result struct {
	// Sim is the underlying simulation result (global latency,
	// concurrency and memory series, disk statistics).
	Sim *sim.Result

	// Env is the derived environment the run used.
	Env Env

	// Requests is the number of requests the generated day contained.
	Requests int

	// PerDisk tallies each disk, indexed by disk id.
	PerDisk []DiskLoad

	// PeakTotal is the largest number of streams in service across the
	// whole server at once.
	PeakTotal int
}

// diskObserver tallies per-disk loads through the engine's callbacks.
// The scenario runs under a VirtualClock — a single-shard domain whose
// callbacks all execute on one event loop — so plain counters suffice
// and the tallies are deterministic.
type diskObserver struct {
	engine.NopObserver
	loads   []DiskLoad
	current []int
	total   int
	peak    int
}

func (o *diskObserver) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	o.current[disk]++
	if o.current[disk] > o.loads[disk].Peak {
		o.loads[disk].Peak = o.current[disk]
	}
	o.total++
	if o.total > o.peak {
		o.peak = o.total
	}
}

func (o *diskObserver) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	o.current[disk]--
	o.total--
}

func (o *diskObserver) OnStart(disk int, st *engine.Stream, now si.Seconds) {
	o.loads[disk].Served++
}

func (o *diskObserver) OnReject(disk int, req workload.Request, reason engine.RejectReason, now si.Seconds) {
	o.loads[disk].Rejected++
}

// Run executes one large-N scenario run. It is safe to call concurrently
// from multiple goroutines — all mutable state is per-call, and a shared
// Config.SizeTable is immutable — and, given equal configs, returns
// identical Results regardless of scheduling.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	env := Environment()
	length := cfg.TitleLength
	lib, err := catalog.New(catalog.Config{
		Titles:          cfg.TitlesPerDisk * cfg.Disks,
		Disks:           cfg.Disks,
		Spec:            env.Spec,
		PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			v := catalog.MPEG1Video(id)
			v.Length = length
			return v
		},
		// Zipf popularity falls with the title id, so a plain round-robin
		// deal would stack every rank-1-of-its-row title on disk 0 and
		// skew per-disk load ~2x. Deal titles in popularity order onto
		// the least-loaded disk instead (greedy LPT) — the
		// popularity-aware placement a multi-disk VoD server needs, and
		// deterministic so runs stay reproducible.
		Policy: catalog.LeastLoaded{},
	})
	if err != nil {
		return nil, err
	}

	// Size the day so the peak slot's M/G/∞ concurrency hits the target:
	// peak rate = total·w_max/slot and concurrency ≈ rate × mean viewing,
	// so total = target · slot / (w_max · mean viewing).
	const slot = si.Seconds(30 * 60)
	nSlots := int(float64(cfg.Horizon) / float64(slot))
	wMax := catalog.ZipfWeights(nSlots, cfg.Theta)[0]
	maxViewing := workload.MaxViewing
	if length < maxViewing {
		maxViewing = length
	}
	meanViewing := float64(maxViewing) / 2
	target := float64(cfg.PeakPerDisk * cfg.Disks)
	total := target * float64(slot) / (wMax * meanViewing)
	// A horizon shorter than the viewing bound never reaches the M/G/∞
	// steady state: with viewing uniform on [0, V] and a constant rate,
	// concurrency after time T is λ·(T − T²/2V), not the steady λ·V/2.
	// Scale the day up so the ramp still reaches the target (Quick's
	// single peak slot is the case that needs it).
	if T, V := float64(cfg.Horizon), float64(maxViewing); T < V {
		total *= (V / 2) / (T - T*T/(2*V))
	}
	peak := si.Hours(9)
	if peak > cfg.Horizon {
		peak = cfg.Horizon * 3 / 8
	}
	day := workload.ZipfDay(total, cfg.Theta, peak, cfg.Horizon)
	trace := workload.Generate(day, lib, cfg.Seed)

	obs := &diskObserver{
		loads:   make([]DiskLoad, cfg.Disks),
		current: make([]int, cfg.Disks),
	}
	var simObs engine.Observer = obs
	if cfg.Observer != nil {
		simObs = engine.Observers{obs, cfg.Observer}
	}
	simCfg := sim.Config{
		Scheme:                sim.Dynamic,
		Method:                sched.NewMethod(cfg.Method),
		Spec:                  env.Spec,
		CR:                    env.CR,
		Alpha:                 alpha,
		ChurnSafeAdmission:    true,
		DeadlineAwareBubbleUp: true,
		Library:               lib,
		Trace:                 trace,
		Seed:                  cfg.Seed ^ 0x5ca1ab1e,
		SampleEvery:           si.Minutes(10),
		SizeTable:             cfg.SizeTable,
		Observer:              simObs,
	}
	if cfg.Quick {
		simCfg.Grace = si.Minutes(5)
		simCfg.SampleEvery = si.Minutes(2)
	}
	res, err := sim.Run(simCfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Sim:       res,
		Env:       env,
		Requests:  len(trace.Requests),
		PerDisk:   obs.loads,
		PeakTotal: obs.peak,
	}, nil
}
