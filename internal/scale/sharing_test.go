package scale

import (
	"testing"

	"repro/internal/sched"
)

func TestSharingConfigValidation(t *testing.T) {
	bad := []SharingConfig{
		{Disks: 1},
		{TitleLength: -1},
		{OverloadFactor: -2},
		{Horizon: -1},
		{Window: -1},
	}
	for i, cfg := range bad {
		if _, err := RunSharing(cfg); err == nil {
			t.Errorf("config %d (%+v): RunSharing accepted an invalid config", i, cfg)
		}
	}
}

// The scenario's headline claim: over the identical trace, the sharing
// layer admits several times the viewers the private-stream baseline
// can, with no underruns and a flat engine-stream load. Under -race the
// server shrinks to 2 disks — the per-disk overload, which is what the
// ratio measures, is unchanged — to keep the arrival count inside the
// race detector's ~10x slowdown budget.
func TestSharingScenarioMultipliesAdmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("overload scenario in -short mode")
	}
	cfg := SharingConfig{Seed: 21, SizeTable: NewSizeTable(sched.RoundRobin)}
	if raceEnabled {
		cfg.Disks = 2
	}
	base, err := RunSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shared := cfg
	shared.Sharing = true
	sh, err := RunSharing(shared)
	if err != nil {
		t.Fatal(err)
	}

	// Paired arms: the trace is drawn before the arms diverge.
	if base.Requests != sh.Requests {
		t.Fatalf("arms saw different traces: %d vs %d requests", base.Requests, sh.Requests)
	}
	if base.Requests < 4*base.Env.N {
		t.Fatalf("offered load %d too small to overload N = %d per disk", base.Requests, base.Env.N)
	}

	// The baseline must actually be capacity-bound — otherwise the
	// ratio below is vacuous.
	if base.Rejected == 0 {
		t.Fatal("baseline arm rejected nothing; the scenario must overload the server")
	}
	if base.Share != nil {
		t.Error("baseline arm reported sharing statistics")
	}

	// The acceptance criterion: sharing admits at least 3x the baseline,
	// rejecting no one, with the sizing guarantee intact.
	ratio := float64(sh.Admitted) / float64(base.Admitted)
	if ratio < 3 {
		t.Errorf("sharing admitted %d vs baseline %d (%.2fx), want >= 3x", sh.Admitted, base.Admitted, ratio)
	}
	if sh.Rejected != 0 {
		t.Errorf("sharing arm rejected %d viewers, want 0", sh.Rejected)
	}
	if sh.Sim.Underruns != 0 {
		t.Errorf("sharing arm underran %d times, want 0", sh.Sim.Underruns)
	}
	if sh.Share == nil {
		t.Fatal("sharing arm reported no sharing statistics")
	}

	// Viewers per disk far exceed Eq. 1's N — the point of the layer —
	// while the engine's own stream load stays a small fraction of
	// capacity.
	for d, ds := range sh.Share.PerDisk {
		if ds.PeakWatching <= sh.Env.N {
			t.Errorf("disk %d peak watching %d never exceeded N = %d", d, ds.PeakWatching, sh.Env.N)
		}
	}
	if limit := sh.Env.N * len(sh.Share.PerDisk); sh.EngineStreamsPeak >= limit {
		t.Errorf("engine stream peak %d at or above aggregate capacity %d", sh.EngineStreamsPeak, limit)
	}
	if sh.EngineStreamsPeak >= base.EngineStreamsPeak {
		t.Errorf("sharing engine peak %d not below baseline %d", sh.EngineStreamsPeak, base.EngineStreamsPeak)
	}

	// The mechanisms are all live, not vacuously zero: merges, budget
	// pinning, cache-only service.
	tot := sh.Share.Totals
	if tot.Merged == 0 || tot.CacheOnly == 0 || tot.Leaders == 0 {
		t.Errorf("sharing mechanisms idle: %+v", tot)
	}
	if sh.Share.CachedTitles == 0 {
		t.Error("cache pinned no titles")
	}

	// Determinism: a replay of the sharing arm lands on identical
	// viewer accounting.
	again, err := RunSharing(shared)
	if err != nil {
		t.Fatal(err)
	}
	if again.Admitted != sh.Admitted || again.Rejected != sh.Rejected ||
		again.EngineStreamsPeak != sh.EngineStreamsPeak ||
		again.Share.Totals != sh.Share.Totals {
		t.Errorf("sharing arm replay diverged:\n  first:  %+v\n  replay: %+v", sh.Share.Totals, again.Share.Totals)
	}
}

// The budget must bind: the default budget pins only the hottest titles,
// and cutting it further cuts the pinned set, popularity order intact.
func TestSharingBudgetBindsPopularityOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("overload scenario in -short mode")
	}
	cfg := SharingConfig{Seed: 5, Sharing: true, SizeTable: NewSizeTable(sched.RoundRobin), Disks: 2}
	res, err := RunSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	titles := 4 * 2
	if res.Share.CachedTitles >= titles {
		t.Errorf("default budget pinned all %d titles; it must bind", titles)
	}
	if res.Share.CachedTitles == 0 {
		t.Error("default budget pinned nothing")
	}
	// The coldest titles are the unpinned ones, so a cold-title viewer
	// arriving mid-stream leads a fresh stream instead of merging; the
	// scenario still admits everyone.
	if res.Rejected != 0 {
		t.Errorf("budgeted sharing arm rejected %d viewers", res.Rejected)
	}
}
