// fleet.go runs the scale scenario the cluster router exists for: a
// four-server fleet of modern nearline disks offered a hot, narrow
// catalog at exactly the fleet's knee capacity. Streams are UHD-grade
// (15 Mbps), so one spindle's Eq. 1 ceiling is N = 159 and the router's
// Theorem 1 memory-knee cap sits at 79 committed streams per disk.
//
// The scenario's point is the catalog-size/bandwidth bound of "Scalable
// Distributed Video-on-Demand" (arXiv:0804.0743): with a single copy of
// each title, a popular title's admissible audience is capped by the
// bandwidth of the one disk holding it — under a classic 1/rank Zipf
// law over 8 titles, the whole fleet can commit only the 8 disks that
// hold data, ~25% of its knee capacity, no matter how idle the other 24
// disks are. Replicating the hot set (popularity-weighted copies spread
// across servers) multiplies each hot title's admissible audience by
// its copy count, and the router's failover actually reaches those
// copies. The scenario runs both arms over the identical trace, so the
// admitted-stream ratio is a paired measurement; the fleet-routing
// experiment gates it at >= 2x with zero underruns.
package scale

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// fleetCRMbps is the fleet streams' consumption rate in Mbps: a
// UHD-grade 15 Mbps, ten times the paper's MPEG-1 rate, putting a
// modern spindle at N = 159 — a regime where a fleet's admission
// decisions are about spindle bandwidth again, as the paper's N = 79
// was.
const fleetCRMbps = 15

// FleetConfig parameterizes a fleet-scenario run. The zero value (after
// normalization, with Replicate false) is the baseline arm: 4 servers ×
// 8 disks, 8 two-hour titles placed one copy each, offered the fleet's
// full knee capacity over a half-hour ramp.
type FleetConfig struct {
	// Servers is the number of single-server engines. Default 4.
	Servers int

	// DisksPerServer is each server's disk count. Default 8.
	DisksPerServer int

	// Titles is the global catalog size. Default 8 — narrow on purpose:
	// the classic Zipf law then concentrates ~37% of all demand on the
	// top title, the regime where single-copy placement starves.
	Titles int

	// TitleLength is every title's playback length. Default two hours.
	TitleLength si.Seconds

	// Replicate switches the replicated arm on: the hot half of the
	// catalog gets one copy per server and the cold half a failover
	// twin, placed least-loaded-first across server groups. Off, every
	// title has the single copy LeastLoaded gives it.
	Replicate bool

	// OverloadFactor is the offered concurrent-viewer level as a
	// multiple of the fleet's knee capacity (cap × disks). Default 1.
	OverloadFactor float64

	// Horizon is the arrival window. Default 30 minutes — a climbing
	// ramp, as in the sharing scenario.
	Horizon si.Seconds

	// Method is the buffer scheduling method. Default Round-Robin.
	Method sched.Kind

	// Seed derives the workload and simulation random streams.
	Seed int64

	// SizeTable, when non-nil, is the shared precomputed sizing table
	// for the fleet environment (see NewFleetSizeTable).
	SizeTable *core.Table

	// Quick shortens the post-ramp grace for tests. The load shape is
	// already the quick shape — the ramp is the scenario.
	Quick bool
}

func (c *FleetConfig) normalize() error {
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.DisksPerServer == 0 {
		c.DisksPerServer = 8
	}
	if c.Servers < 2 {
		return fmt.Errorf("scale: fleet needs at least 2 servers, got %d", c.Servers)
	}
	if c.DisksPerServer < 1 {
		return fmt.Errorf("scale: fleet needs at least 1 disk per server, got %d", c.DisksPerServer)
	}
	if c.Titles == 0 {
		c.Titles = 8
	}
	if c.Titles < 2 {
		return fmt.Errorf("scale: fleet needs at least 2 titles, got %d", c.Titles)
	}
	if c.TitleLength == 0 {
		c.TitleLength = si.Hours(2)
	}
	if c.TitleLength < 0 {
		return fmt.Errorf("scale: negative title length %v", c.TitleLength)
	}
	if c.OverloadFactor == 0 {
		c.OverloadFactor = 1
	}
	if c.OverloadFactor < 0 {
		return fmt.Errorf("scale: negative overload factor %g", c.OverloadFactor)
	}
	if c.Horizon == 0 {
		c.Horizon = si.Minutes(30)
	}
	if c.Horizon < 0 {
		return fmt.Errorf("scale: negative horizon %v", c.Horizon)
	}
	return nil
}

// FleetEnvironment derives the fleet's fixed environment: the modern
// nearline spec and its Eq. 1 capacity for 15 Mbps streams.
func FleetEnvironment() Env {
	spec := Spec()
	cr := si.Mbps(fleetCRMbps)
	return Env{Spec: spec, CR: cr, N: spec.MaxConcurrent(cr)}
}

// NewFleetSizeTable builds the fleet's dynamic sizing table for sharing
// across replications via FleetConfig.SizeTable.
func NewFleetSizeTable(method sched.Kind) *core.Table {
	env := FleetEnvironment()
	p := core.Params{TR: env.Spec.TransferRate, CR: env.CR, N: env.N, Alpha: alpha}
	m := sched.NewMethod(method)
	return core.NewTable(p, m.DLModel(env.Spec))
}

// FleetPolicy returns the placement policy a fleet arm uses: one
// balanced copy per title, or — replicated — one copy per server for
// the hot half of the catalog and a failover twin for the cold half,
// spread across server groups.
func FleetPolicy(replicate bool, servers, disksPerServer, titles int) catalog.PlacementPolicy {
	if !replicate {
		return catalog.LeastLoaded{}
	}
	copies := servers
	return catalog.Replicated{
		Base:       catalog.LeastLoaded{},
		HotTitles:  titles / 2,
		Copies:     copies,
		ColdCopies: 2,
		GroupSize:  disksPerServer,
	}
}

// ServerLoad is one server's deterministic tally over a fleet run.
type ServerLoad struct {
	// Routed counts arrivals the router steered to this server.
	Routed int

	// Served counts streams that received their first data here.
	Served int

	// Peak is the largest number of streams simultaneously in service
	// on this server.
	Peak int
}

// FleetResult is one fleet-scenario run's outcome.
type FleetResult struct {
	// Env is the derived environment the run used (15 Mbps streams).
	Env Env

	// CapPerDisk is the router's knee cap: the committed ceiling per
	// disk (min(floor(N/2), N)).
	CapPerDisk int

	// Requests is the number of requests the generated ramp contained.
	Requests int

	// Routed counts arrivals the router accepted; Failovers of those
	// did not get their primary replica; Rejected found every replica
	// saturated.
	Routed, Failovers, Rejected int

	// PerServer tallies each server, indexed by server id.
	PerServer []ServerLoad

	// PeakTotal is the largest number of streams in service across the
	// fleet at once.
	PeakTotal int

	// Underruns counts buffer starvations across every disk of every
	// server — zero is the sizing guarantee holding fleet-wide.
	Underruns int
}

// fleetObserver tallies per-server loads. One instance is shared by all
// servers (the scenario runs on a single VirtualClock event loop, so
// plain counters are safe and deterministic); each server's callbacks
// arrive through a serverView bound to its index.
type fleetObserver struct {
	loads   []ServerLoad
	current []int
	total   int
	peak    int
}

// serverView adapts one server's engine callbacks onto the shared
// fleet observer.
type serverView struct {
	engine.NopObserver
	o *fleetObserver
	s int
}

func (v serverView) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	o := v.o
	o.current[v.s]++
	if o.current[v.s] > o.loads[v.s].Peak {
		o.loads[v.s].Peak = o.current[v.s]
	}
	o.total++
	if o.total > o.peak {
		o.peak = o.total
	}
}

func (v serverView) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	v.o.current[v.s]--
	v.o.total--
}

func (v serverView) OnStart(disk int, st *engine.Stream, now si.Seconds) {
	v.o.loads[v.s].Served++
}

// RunFleet executes one fleet-scenario run. Like Run, it is safe to call
// concurrently and returns identical results for equal configs.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	env := FleetEnvironment()
	length := cfg.TitleLength
	clock := engine.NewVirtualClock()
	obs := &fleetObserver{
		loads:   make([]ServerLoad, cfg.Servers),
		current: make([]int, cfg.Servers),
	}
	cl, err := cluster.New(cluster.Config{
		Servers:        cfg.Servers,
		DisksPerServer: cfg.DisksPerServer,
		Titles:         cfg.Titles,
		// Classic 1/rank Zipf (theta = 0): the concentration that makes
		// single-copy placement the bottleneck.
		PopularityTheta: 0,
		Video: func(id int) catalog.Video {
			v := catalog.MPEG1Video(id)
			v.Rate = env.CR
			v.Length = length
			return v
		},
		Policy: FleetPolicy(cfg.Replicate, cfg.Servers, cfg.DisksPerServer, cfg.Titles),
		Engine: engine.Config{
			Clock:                 clock,
			Allocator:             engine.DynamicAllocator{},
			Method:                sched.NewMethod(cfg.Method),
			Spec:                  env.Spec,
			CR:                    env.CR,
			Alpha:                 alpha,
			TLog:                  si.Minutes(40),
			ChurnSafeAdmission:    true,
			DeadlineAwareBubbleUp: true,
			RampAwarePlanning:     true,
			Seed:                  cfg.Seed ^ 0xf1ee7,
			SizeTable:             cfg.SizeTable,
		},
		Observer: func(s int) engine.Observer { return serverView{o: obs, s: s} },
	})
	if err != nil {
		return nil, err
	}
	router := cl.Router()

	// Size a flat arrival rate so the concurrent-viewer level reaches
	// OverloadFactor × the fleet's knee capacity by the end of the ramp
	// (same M/G/∞ ramp math as the sharing scenario).
	maxViewing := workload.MaxViewing
	if length < maxViewing {
		maxViewing = length
	}
	target := cfg.OverloadFactor * float64(router.Cap()*cfg.Servers*cfg.DisksPerServer)
	T, V := float64(cfg.Horizon), float64(maxViewing)
	var rate float64
	if T < V {
		rate = target / (T - T*T/(2*V))
	} else {
		rate = target / (V / 2)
	}
	day := workload.NewSchedule(cfg.Horizon, []float64{rate})
	trace := workload.Generate(day, cl.Library(), cfg.Seed)

	res := &FleetResult{
		Env:        env,
		CapPerDisk: router.Cap(),
		Requests:   len(trace.Requests),
		PerServer:  obs.loads,
	}
	for _, req := range trace.Requests {
		req := req
		clock.Schedule(req.Arrival, func() {
			if t, ok := cl.Submit(req); ok {
				obs.loads[t.Server].Routed++
			}
		})
	}

	grace := si.Minutes(30)
	if cfg.Quick {
		grace = si.Minutes(5)
	}
	clock.Run(cfg.Horizon + grace)

	stats := router.Stats()
	res.Routed = int(stats.Routed)
	res.Failovers = int(stats.Failovers)
	res.Rejected = int(stats.Rejected)
	res.PeakTotal = obs.peak
	for s := 0; s < cl.Servers(); s++ {
		sys := cl.System(s)
		for d := 0; d < sys.Disks(); d++ {
			res.Underruns += sys.Disk(d).Pool().Stats().Underruns
		}
	}
	return res, nil
}
