package scale

import (
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/si"
)

// The scenario's whole point is the derived capacity: a 2.4 Gbps disk
// carries N = ceil(2400/1.5) − 1 = 1599 concurrent streams.
func TestEnvironmentCapacity(t *testing.T) {
	env := Environment()
	if err := env.Spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if env.N != 1599 {
		t.Errorf("modern nearline N = %d, want 1599", env.N)
	}
	// The published MaxSeek must agree with the seek curve's full sweep.
	if got := env.Spec.WorstSeek(); got != env.Spec.MaxSeek {
		t.Errorf("seek curve full sweep %v != quoted MaxSeek %v", got, env.Spec.MaxSeek)
	}
}

func TestConfigRejectsUnderscaledServer(t *testing.T) {
	if _, err := Run(Config{Disks: 4, Quick: true}); err == nil {
		t.Error("4-disk config accepted; the scenario requires >= 8")
	}
	if _, err := Run(Config{PeakPerDisk: 1599, Quick: true}); err == nil {
		t.Error("peak at capacity accepted; must stay below N")
	}
}

// quickCfg is the test scenario: the full 8-disk server and the full
// per-disk load level, over a single peak half-hour instead of a day.
func quickCfg(seed int64) Config {
	return Config{Seed: seed, Quick: true}
}

// fingerprint reduces a Result to the comparable values determinism is
// judged on.
type fingerprint struct {
	Requests  int
	Served    int
	Rejected  int
	Deferrals int
	Underruns int
	PeakTotal int
	PerDisk   []DiskLoad
	PeakMem   si.Bits
}

func fp(r *Result) fingerprint {
	return fingerprint{
		Requests:  r.Requests,
		Served:    r.Sim.Served,
		Rejected:  r.Sim.Rejected,
		Deferrals: r.Sim.Deferrals,
		Underruns: r.Sim.Underruns,
		PeakTotal: r.PeakTotal,
		PerDisk:   r.PerDisk,
		PeakMem:   r.Sim.PeakMemory,
	}
}

// Two concurrent runs of the same seeded scenario must land on identical
// results: the scenario runs on the VirtualClock's deterministic event
// loop, and nothing mutable is shared between runs — including the
// sizing table, which both runs deliberately do share to exercise the
// immutable-table fast path under the race detector. Under -race the
// runs use a lighter peak (the ~10x instrumentation slowdown would blow
// the package timeout on a small machine); the shared-table concurrency
// the gate exists for is identical at either load, and the full-load
// large-n assertions run in the plain `go test` pass.
func TestRunDeterministicAndConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N scenario in -short mode")
	}
	table := NewSizeTable(sched.RoundRobin)
	results := make([]*Result, 2)
	errs := make([]error, 2)
	done := make(chan int, 2)
	for i := range results {
		go func(i int) {
			cfg := quickCfg(42)
			if raceEnabled {
				cfg.PeakPerDisk = 150
			}
			cfg.SizeTable = table
			results[i], errs[i] = Run(cfg)
			done <- i
		}(i)
	}
	for range results {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	a, b := fp(results[0]), fp(results[1])
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n  run 0: %+v\n  run 1: %+v", a, b)
	}

	r := results[0]
	if r.Sim.Underruns != 0 {
		t.Errorf("dynamic scheme underran %d times; the sizing guarantee must hold at N = %d", r.Sim.Underruns, r.Env.N)
	}
	if len(r.PerDisk) != 8 {
		t.Fatalf("got %d disks, want 8", len(r.PerDisk))
	}
	for d, load := range r.PerDisk {
		if load.Served == 0 {
			t.Errorf("disk %d served nothing; placement must spread the catalog", d)
		}
		if load.Peak >= r.Env.N {
			t.Errorf("disk %d peak %d at or above capacity %d", d, load.Peak, r.Env.N)
		}
	}
	// The workload is sized for 700 concurrent streams per disk at peak
	// — just under the recurrence's memory knee (see the package
	// comment); demand a comfortable fraction so the test tolerates
	// stochastic shortfall but still certifies the large-n regime.
	// (Skipped under -race, which runs the lighter peak.)
	if !raceEnabled {
		for d, load := range r.PerDisk {
			if load.Peak < 600 {
				t.Errorf("disk %d peak concurrency %d; want the large-n regime (>= 600 of target 700)", d, load.Peak)
			}
		}
		if r.PeakTotal < 5000 {
			t.Errorf("server peak concurrency %d; want thousands across 8 disks (>= 5000)", r.PeakTotal)
		}
	}
}

// A shared sizing table must not change results: the table is a pure
// memoization of the sizing recurrence the engine would otherwise
// compute itself.
func TestSharedSizeTableIsPureMemoization(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N scenario in -short mode")
	}
	if raceEnabled {
		t.Skip("value regression; shared-table concurrency covered by TestRunDeterministicAndConcurrent under race")
	}
	cfg := quickCfg(7)
	cfg.PeakPerDisk = 300 // lighter: this test is about equality, not scale
	without, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SizeTable = NewSizeTable(sched.RoundRobin)
	with, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fp(without), fp(with)) {
		t.Errorf("shared sizing table changed results:\n  fresh:  %+v\n  shared: %+v", fp(without), fp(with))
	}

	// A different seed must actually change the outcome (the determinism
	// checks would pass vacuously if seeds were ignored).
	cfg.Seed = 8
	other, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(fp(with), fp(other)) {
		t.Error("seeds 7 and 8 produced identical results; seeding is broken")
	}
}
