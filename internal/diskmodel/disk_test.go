package diskmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/si"
)

func TestDiskReadTiming(t *testing.T) {
	d := NewDisk(Barracuda9LP(), 1)
	spec := d.Spec()

	// A read at the head's cylinder costs no seek: time is rotation + xfer
	// and rotation is bounded by theta.
	amount := si.Megabits(12) // 0.1 s of transfer
	took := d.Read(0, amount)
	xfer := spec.TransferRate.TimeToTransfer(amount)
	if took < xfer || took > xfer+spec.MaxRotational {
		t.Errorf("same-cylinder read took %v, want within [%v, %v]", took, xfer, xfer+spec.MaxRotational)
	}
}

func TestDiskHeadAdvances(t *testing.T) {
	d := NewDisk(Barracuda9LP(), 1)
	per := d.Spec().BitsPerCylinder()
	d.Read(100, per*5) // extent spans 5 cylinders from 100
	if got := d.Head(); got != 105 {
		t.Errorf("head = %d, want 105", got)
	}
	// Head clamps at the last cylinder.
	d.Read(d.Spec().Cylinders-2, per*10)
	if got := d.Head(); got != d.Spec().Cylinders-1 {
		t.Errorf("head = %d, want clamp at %d", got, d.Spec().Cylinders-1)
	}
}

func TestDiskReadPanics(t *testing.T) {
	d := NewDisk(Barracuda9LP(), 1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("negative cylinder", func() { d.Read(-1, 10) })
	mustPanic("cylinder beyond disk", func() { d.Read(d.Spec().Cylinders, 10) })
	mustPanic("negative amount", func() { d.Read(0, -1) })
}

func TestDiskStats(t *testing.T) {
	d := NewDisk(Barracuda9LP(), 42)
	d.Read(500, si.Megabits(1))
	d.Read(4000, si.Megabits(2))
	st := d.Stats()
	if st.Reads != 2 {
		t.Errorf("reads = %d, want 2", st.Reads)
	}
	if st.BitsMoved != si.Megabits(3) {
		t.Errorf("bits moved = %v, want 3 Mbit", st.BitsMoved)
	}
	if st.LongestSeek < 3400 { // at least 4000-600ish
		t.Errorf("longest seek = %d, suspiciously small", st.LongestSeek)
	}
	if st.TotalSeek <= 0 || st.TotalXfer <= 0 {
		t.Errorf("stats not accumulating: %+v", st)
	}
}

func TestDiskDeterminism(t *testing.T) {
	run := func() []si.Seconds {
		d := NewDisk(Barracuda9LP(), 7)
		var out []si.Seconds
		for i := 0; i < 50; i++ {
			out = append(out, d.Read((i*997)%d.Spec().Cylinders, si.Megabits(1)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: every read's duration is bounded below by the pure transfer
// time and above by transfer + worst seek + worst rotation.
func TestReadTimeBounds(t *testing.T) {
	d := NewDisk(Barracuda9LP(), 99)
	spec := d.Spec()
	f := func(cylRaw uint16, amountRaw uint32) bool {
		cyl := int(cylRaw) % spec.Cylinders
		amount := si.Bits(amountRaw % 1e8)
		took := d.Read(cyl, amount)
		lo := spec.TransferRate.TimeToTransfer(amount)
		hi := lo + spec.WorstSeek() + spec.MaxRotational
		return took >= lo-1e-12 && took <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean sampled rotational delay converges to theta/2.
func TestRotationalDelayMean(t *testing.T) {
	d := NewDisk(Barracuda9LP(), 3)
	spec := d.Spec()
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		took := d.Read(d.Head(), 0) // zero-length read at head: pure rotation
		sum += float64(took)
	}
	mean := sum / n
	want := float64(spec.MaxRotational) / 2
	if math.Abs(mean-want) > 0.03*want {
		t.Errorf("mean rotational delay = %v, want about %v", mean, want)
	}
}
