package diskmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/si"
)

func TestBarracudaTable3(t *testing.T) {
	s := Barracuda9LP()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 3 constants.
	if got := float64(s.TransferRate); got != 120e6 {
		t.Errorf("TR = %v, want 120 Mbps", got)
	}
	if got := s.MaxRotational.Milliseconds(); math.Abs(got-8.33) > 1e-9 {
		t.Errorf("theta = %vms, want 8.33ms", got)
	}
	// Derived geometry: gamma(Cyln) must equal the quoted max seek.
	if got := s.WorstSeek().Milliseconds(); math.Abs(got-13.4) > 1e-6 {
		t.Errorf("gamma(Cyln) = %vms, want 13.4ms", got)
	}
	// Derived N for MPEG-1 streams must match Table 3.
	if got := s.MaxConcurrent(si.Mbps(1.5)); got != 79 {
		t.Errorf("N = %d, want 79", got)
	}
	// Worst RR latency: 13.4 + 8.33 = 21.73 ms.
	if got := s.WorstLatency().Milliseconds(); math.Abs(got-21.73) > 1e-6 {
		t.Errorf("worst latency = %vms, want 21.73ms", got)
	}
}

func TestSeekCurveShape(t *testing.T) {
	s := Barracuda9LP()
	if got := s.SeekTime(0); got != 0 {
		t.Errorf("gamma(0) = %v, want 0", got)
	}
	// Single-cylinder seek is mu1 + nu1.
	if got := s.SeekTime(1).Milliseconds(); math.Abs(got-0.80) > 1e-9 {
		t.Errorf("gamma(1) = %vms, want 0.80ms", got)
	}
	// Square-root regime just below the break.
	want := 0.54 + 0.26*math.Sqrt(399)
	if got := s.SeekTime(399).Milliseconds(); math.Abs(got-want) > 1e-9 {
		t.Errorf("gamma(399) = %vms, want %vms", got, want)
	}
	// Linear regime at the break.
	if got := s.SeekTime(400).Milliseconds(); math.Abs(got-(5+0.0014*400)) > 1e-9 {
		t.Errorf("gamma(400) = %vms, want 5.56ms", got)
	}
	// Clamped above the cylinder count.
	if got, want := s.SeekTime(s.Cylinders*2), s.WorstSeek(); got != want {
		t.Errorf("gamma(2*Cyln) = %v, want clamp to %v", got, want)
	}
	// Negative distance clamps to zero.
	if got := s.SeekTime(-5); got != 0 {
		t.Errorf("gamma(-5) = %v, want 0", got)
	}
}

// Property: the seek curve is non-decreasing in distance.
func TestSeekMonotone(t *testing.T) {
	s := Barracuda9LP()
	f := func(a, b uint16) bool {
		x, y := int(a)%s.Cylinders, int(b)%s.Cylinders
		if x > y {
			x, y = y, x
		}
		return s.SeekTime(x) <= s.SeekTime(y)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the seek curve is concave on [1, Cyln] (the paper relies on
// concavity for the Sweep worst case): midpoint value >= chord midpoint.
func TestSeekConcave(t *testing.T) {
	s := Barracuda9LP()
	f := func(a, b uint16) bool {
		x, y := 1+int(a)%(s.Cylinders-1), 1+int(b)%(s.Cylinders-1)
		mid := (x + y) / 2
		chord := (float64(s.SeekTime(x)) + float64(s.SeekTime(y))) / 2
		return float64(s.SeekTime(mid)) >= chord-1e-6*chord-float64(s.Nu2) // integer-midpoint slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxConcurrent(t *testing.T) {
	s := Barracuda9LP()
	tests := []struct {
		cr   si.BitRate
		want int
	}{
		{si.Mbps(1.5), 79}, // 120/1.5 = 80 exactly -> 79 (strict inequality)
		{si.Mbps(1.6), 74}, // 120/1.6 = 75 exactly -> 74
		{si.Mbps(1.7), 70}, // 120/1.7 = 70.58 -> 70
		{si.Mbps(120), 0},  // equal rates -> no guaranteed stream
		{si.Mbps(240), 0},  // consumer faster than disk
		{si.Mbps(0.001), 119999},
	}
	for _, tt := range tests {
		if got := s.MaxConcurrent(tt.cr); got != tt.want {
			t.Errorf("MaxConcurrent(%v) = %d, want %d", tt.cr, got, tt.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MaxConcurrent(0) should panic")
		}
	}()
	s.MaxConcurrent(0)
}

func TestCylinderOf(t *testing.T) {
	s := Barracuda9LP()
	if got := s.CylinderOf(0); got != 0 {
		t.Errorf("CylinderOf(0) = %d", got)
	}
	if got := s.CylinderOf(-1); got != 0 {
		t.Errorf("CylinderOf(-1) = %d, want clamp to 0", got)
	}
	if got := s.CylinderOf(s.Capacity * 2); got != s.Cylinders-1 {
		t.Errorf("CylinderOf(2*capacity) = %d, want %d", got, s.Cylinders-1)
	}
	// One cylinder holds capacity/cylinders bits.
	per := s.BitsPerCylinder()
	if got := s.CylinderOf(per * 10); got != 10 {
		t.Errorf("CylinderOf(10 cylinders worth) = %d, want 10", got)
	}
}

func TestValidate(t *testing.T) {
	base := Barracuda9LP()
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero transfer rate", func(s *Spec) { s.TransferRate = 0 }},
		{"zero capacity", func(s *Spec) { s.Capacity = 0 }},
		{"zero cylinders", func(s *Spec) { s.Cylinders = 0 }},
		{"seek break beyond disk", func(s *Spec) { s.SeekBreak = s.Cylinders + 1 }},
		{"zero seek break", func(s *Spec) { s.SeekBreak = 0 }},
		{"zero rotational", func(s *Spec) { s.MaxRotational = 0 }},
		{"negative coefficient", func(s *Spec) { s.Nu2 = -1 }},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestServiceTime(t *testing.T) {
	s := Barracuda9LP()
	// 120 Mbit at 120 Mbps is 1s of transfer plus the latency budget.
	got := s.ServiceTime(si.Megabits(120), 10*si.Millisecond)
	if math.Abs(float64(got)-1.010) > 1e-9 {
		t.Errorf("ServiceTime = %v, want 1.010s", got)
	}
}

func TestSynthetic15K(t *testing.T) {
	s := Synthetic15K()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.WorstSeek().Milliseconds(); math.Abs(got-7.5) > 1e-6 {
		t.Errorf("worst seek = %vms, want 7.5", got)
	}
	// Four times the Barracuda's capacity for MPEG-1 streams.
	if got := s.MaxConcurrent(si.Mbps(1.5)); got != 319 {
		t.Errorf("N = %d, want 319", got)
	}
	// Strictly faster than the Barracuda everywhere.
	b := Barracuda9LP()
	if s.WorstLatency() >= b.WorstLatency() {
		t.Error("15K drive should have lower worst latency")
	}
}
