package diskmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/si"
)

func TestBarracudaTable3(t *testing.T) {
	s := Barracuda9LP()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 3 constants.
	if got := float64(s.TransferRate); got != 120e6 {
		t.Errorf("TR = %v, want 120 Mbps", got)
	}
	if got := s.MaxRotational.Milliseconds(); math.Abs(got-8.33) > 1e-9 {
		t.Errorf("theta = %vms, want 8.33ms", got)
	}
	// Derived geometry: gamma(Cyln) must equal the quoted max seek.
	if got := s.WorstSeek().Milliseconds(); math.Abs(got-13.4) > 1e-6 {
		t.Errorf("gamma(Cyln) = %vms, want 13.4ms", got)
	}
	// Derived N for MPEG-1 streams must match Table 3.
	if got := s.MaxConcurrent(si.Mbps(1.5)); got != 79 {
		t.Errorf("N = %d, want 79", got)
	}
	// Worst RR latency: 13.4 + 8.33 = 21.73 ms.
	if got := s.WorstLatency().Milliseconds(); math.Abs(got-21.73) > 1e-6 {
		t.Errorf("worst latency = %vms, want 21.73ms", got)
	}
}

func TestSeekCurveShape(t *testing.T) {
	s := Barracuda9LP()
	if got := s.SeekTime(0); got != 0 {
		t.Errorf("gamma(0) = %v, want 0", got)
	}
	// Single-cylinder seek is mu1 + nu1.
	if got := s.SeekTime(1).Milliseconds(); math.Abs(got-0.80) > 1e-9 {
		t.Errorf("gamma(1) = %vms, want 0.80ms", got)
	}
	// Square-root regime just below the branch crossover (~365.7 for the
	// Barracuda coefficients, below the published break of 400).
	want := 0.54 + 0.26*math.Sqrt(365)
	if got := s.SeekTime(365).Milliseconds(); math.Abs(got-want) > 1e-9 {
		t.Errorf("gamma(365) = %vms, want %vms", got, want)
	}
	// Past the crossover the linear branch is lower and must win even
	// though the published break is 400: the raw square-root branch at 399
	// (5.733 ms) exceeds gamma(400) (5.56 ms), and a monotone concave
	// curve cannot do that.
	if got := s.SeekTime(399).Milliseconds(); math.Abs(got-(5+0.0014*399)) > 1e-9 {
		t.Errorf("gamma(399) = %vms, want linear-envelope %vms", got, 5+0.0014*399)
	}
	// Linear regime at the break.
	if got := s.SeekTime(400).Milliseconds(); math.Abs(got-(5+0.0014*400)) > 1e-9 {
		t.Errorf("gamma(400) = %vms, want 5.56ms", got)
	}
	// Clamped above the cylinder count.
	if got, want := s.SeekTime(s.Cylinders*2), s.WorstSeek(); got != want {
		t.Errorf("gamma(2*Cyln) = %v, want clamp to %v", got, want)
	}
	// Negative distance clamps to zero.
	if got := s.SeekTime(-5); got != 0 {
		t.Errorf("gamma(-5) = %v, want 0", got)
	}
}

// quickConfig pins testing/quick to a fixed seed so the property tests
// are reproducible run to run (the default source is time-seeded), with
// enough iterations to cover the branch crossover and both regimes.
func quickConfig() *quick.Config {
	return &quick.Config{
		MaxCount: 2000,
		Rand:     rand.New(rand.NewSource(0x5eed)),
	}
}

// Property: the seek curve is non-decreasing in distance.
func TestSeekMonotone(t *testing.T) {
	s := Barracuda9LP()
	f := func(a, b uint16) bool {
		x, y := int(a)%s.Cylinders, int(b)%s.Cylinders
		if x > y {
			x, y = y, x
		}
		return s.SeekTime(x) <= s.SeekTime(y)+1e-15
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Error(err)
	}
}

// seekConcaveAt checks discrete concavity of γ between cylinders x and y:
// for a concave curve the value at the midpoint dominates the chord. When
// x+y is odd the true midpoint falls between integers, and concavity
// instead guarantees γ(m)+γ(m+1) >= γ(x)+γ(y) for m = (x+y-1)/2 (the
// inner pair sums to the outer pair), so no slack fudge term is needed.
func seekConcaveAt(s Spec, x, y int) bool {
	chord := float64(s.SeekTime(x)) + float64(s.SeekTime(y))
	mid := (x + y) / 2
	var inner float64
	if (x+y)%2 == 0 {
		inner = 2 * float64(s.SeekTime(mid))
	} else {
		inner = float64(s.SeekTime(mid)) + float64(s.SeekTime(mid+1))
	}
	return inner >= chord-1e-12
}

// Property: the seek curve is concave on [1, Cyln] (the paper relies on
// concavity for the Sweep worst case).
func TestSeekConcave(t *testing.T) {
	s := Barracuda9LP()
	f := func(a, b uint16) bool {
		x, y := 1+int(a)%(s.Cylinders-1), 1+int(b)%(s.Cylinders-1)
		return seekConcaveAt(s, x, y)
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Error(err)
	}
}

// Regression: the inputs that exposed the non-concave seek break. With the
// published break at 400 the raw square-root branch was evaluated up to
// 399 even though the branches cross near 366, so γ(393) = 5.694 ms sat
// above the chord through γ(1165) — the lower envelope fixes it. Also
// pins the small-distance case where the old Nu2 slack bound was too
// tight for integer midpoints even on a truly concave curve.
func TestSeekConcaveRegression(t *testing.T) {
	s := Barracuda9LP()
	cases := [][2]uint16{
		{0xd773, 0x18f7}, // the seed failure: x=1165, y=393, mid=779
		{0, 1},           // x=1, y=2: fractional midpoint at steepest slope
		{364, 436},       // straddles the branch crossover
		{398, 400},       // straddles the published break
	}
	for _, c := range cases {
		x, y := 1+int(c[0])%(s.Cylinders-1), 1+int(c[1])%(s.Cylinders-1)
		if !seekConcaveAt(s, x, y) {
			t.Errorf("concavity fails between cylinders %d and %d", x, y)
		}
	}
	for _, spec := range []Spec{Barracuda9LP(), Synthetic15K()} {
		for x := 1; x < spec.Cylinders; x++ {
			if spec.SeekTime(x) > spec.SeekTime(x+1) {
				t.Fatalf("%s: gamma decreasing at %d", spec.Name, x)
			}
		}
	}
}

func TestMaxConcurrent(t *testing.T) {
	s := Barracuda9LP()
	tests := []struct {
		cr   si.BitRate
		want int
	}{
		{si.Mbps(1.5), 79}, // 120/1.5 = 80 exactly -> 79 (strict inequality)
		{si.Mbps(1.6), 74}, // 120/1.6 = 75 exactly -> 74
		{si.Mbps(1.7), 70}, // 120/1.7 = 70.58 -> 70
		{si.Mbps(120), 0},  // equal rates -> no guaranteed stream
		{si.Mbps(240), 0},  // consumer faster than disk
		{si.Mbps(0.001), 119999},
	}
	for _, tt := range tests {
		if got := s.MaxConcurrent(tt.cr); got != tt.want {
			t.Errorf("MaxConcurrent(%v) = %d, want %d", tt.cr, got, tt.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MaxConcurrent(0) should panic")
		}
	}()
	s.MaxConcurrent(0)
}

func TestCylinderOf(t *testing.T) {
	s := Barracuda9LP()
	if got := s.CylinderOf(0); got != 0 {
		t.Errorf("CylinderOf(0) = %d", got)
	}
	if got := s.CylinderOf(-1); got != 0 {
		t.Errorf("CylinderOf(-1) = %d, want clamp to 0", got)
	}
	if got := s.CylinderOf(s.Capacity * 2); got != s.Cylinders-1 {
		t.Errorf("CylinderOf(2*capacity) = %d, want %d", got, s.Cylinders-1)
	}
	// One cylinder holds capacity/cylinders bits.
	per := s.BitsPerCylinder()
	if got := s.CylinderOf(per * 10); got != 10 {
		t.Errorf("CylinderOf(10 cylinders worth) = %d, want 10", got)
	}
}

func TestValidate(t *testing.T) {
	base := Barracuda9LP()
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero transfer rate", func(s *Spec) { s.TransferRate = 0 }},
		{"zero capacity", func(s *Spec) { s.Capacity = 0 }},
		{"zero cylinders", func(s *Spec) { s.Cylinders = 0 }},
		{"seek break beyond disk", func(s *Spec) { s.SeekBreak = s.Cylinders + 1 }},
		{"zero seek break", func(s *Spec) { s.SeekBreak = 0 }},
		{"zero rotational", func(s *Spec) { s.MaxRotational = 0 }},
		{"negative coefficient", func(s *Spec) { s.Nu2 = -1 }},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestServiceTime(t *testing.T) {
	s := Barracuda9LP()
	// 120 Mbit at 120 Mbps is 1s of transfer plus the latency budget.
	got := s.ServiceTime(si.Megabits(120), 10*si.Millisecond)
	if math.Abs(float64(got)-1.010) > 1e-9 {
		t.Errorf("ServiceTime = %v, want 1.010s", got)
	}
}

func TestSynthetic15K(t *testing.T) {
	s := Synthetic15K()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.WorstSeek().Milliseconds(); math.Abs(got-7.5) > 1e-6 {
		t.Errorf("worst seek = %vms, want 7.5", got)
	}
	// Four times the Barracuda's capacity for MPEG-1 streams.
	if got := s.MaxConcurrent(si.Mbps(1.5)); got != 319 {
		t.Errorf("N = %d, want 319", got)
	}
	// Strictly faster than the Barracuda everywhere.
	b := Barracuda9LP()
	if s.WorstLatency() >= b.WorstLatency() {
		t.Error("15K drive should have lower worst latency")
	}
}
