package diskmodel

import (
	"fmt"
	"math/rand"

	"repro/internal/si"
)

// Disk is a simulated drive: a Spec plus mutable head state and a private
// random stream for rotational delays. It is the "actual" view the
// discrete-event simulation reads from; the analysis never touches it.
//
// Disk is not safe for concurrent use. In the simulator each disk is owned
// by exactly one scheduler process, which is also the physical reality the
// model captures: one arm, one command at a time.
type Disk struct {
	spec Spec
	head int // current cylinder under the head
	rng  *rand.Rand

	// Accumulated operation statistics.
	reads      int64
	seekTime   si.Seconds
	rotTime    si.Seconds
	xferTime   si.Seconds
	bitsMoved  si.Bits
	farthest   int
	totalSeeks int64
}

// NewDisk returns a disk with the head parked at cylinder 0 and a
// deterministic rotational-delay stream derived from seed.
func NewDisk(spec Spec, seed int64) *Disk {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Disk{spec: spec, rng: rand.New(rand.NewSource(seed))}
}

// Spec returns the disk's parameter set.
func (d *Disk) Spec() Spec { return d.spec }

// Head reports the cylinder currently under the head.
func (d *Disk) Head() int { return d.head }

// ReadStats summarizes the operations a disk has performed.
type ReadStats struct {
	Reads        int64
	TotalSeek    si.Seconds
	TotalRotate  si.Seconds
	TotalXfer    si.Seconds
	BitsMoved    si.Bits
	LongestSeek  int // cylinders
	SeeksCounted int64
}

// Stats returns a snapshot of the accumulated operation statistics.
func (d *Disk) Stats() ReadStats {
	return ReadStats{
		Reads:        d.reads,
		TotalSeek:    d.seekTime,
		TotalRotate:  d.rotTime,
		TotalXfer:    d.xferTime,
		BitsMoved:    d.bitsMoved,
		LongestSeek:  d.farthest,
		SeeksCounted: d.totalSeeks,
	}
}

// Read simulates reading amount bits starting at cylinder cyl and returns
// how long the operation takes: an actual seek from the current head
// position, a sampled rotational delay, and the transfer itself. The head
// is left at the cylinder holding the end of the extent.
func (d *Disk) Read(cyl int, amount si.Bits) si.Seconds {
	if cyl < 0 || cyl >= d.spec.Cylinders {
		panic(fmt.Sprintf("diskmodel: read at cylinder %d outside [0,%d)", cyl, d.spec.Cylinders))
	}
	if amount < 0 {
		panic("diskmodel: negative read amount")
	}
	dist := cyl - d.head
	if dist < 0 {
		dist = -dist
	}
	seek := d.spec.SeekTime(dist)
	rot := si.Seconds(d.rng.Float64()) * d.spec.MaxRotational
	xfer := d.spec.TransferRate.TimeToTransfer(amount)

	// Advance the head across the cylinders the extent spans.
	span := int(float64(amount) / float64(d.spec.BitsPerCylinder()))
	end := cyl + span
	if end >= d.spec.Cylinders {
		end = d.spec.Cylinders - 1
	}
	d.head = end

	d.reads++
	d.totalSeeks++
	d.seekTime += seek
	d.rotTime += rot
	d.xferTime += xfer
	d.bitsMoved += amount
	if dist > d.farthest {
		d.farthest = dist
	}
	return seek + rot + xfer
}

// ServiceTime reports the worst-case time to fill one buffer of the given
// size when the per-service disk latency budget is dl: dl + size/TR.
// It is the analysis-side counterpart of Read.
func (s Spec) ServiceTime(size si.Bits, dl si.Seconds) si.Seconds {
	return dl + s.TransferRate.TimeToTransfer(size)
}
