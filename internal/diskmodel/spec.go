// Package diskmodel implements the storage substrate of the reproduction:
// a parametric magnetic-disk model with the two-piece seek-time curve of
// Ruemmler & Wilkes used by the paper (Eq. 7), the Seagate Barracuda 9LP
// parameter set of Table 3, and a simulated disk with head state that
// reports the actual time every read takes.
//
// Two views of the disk coexist, mirroring the paper:
//
//   - The worst-case view (Spec methods) feeds the analysis: worst seek,
//     worst rotational delay, and the derived per-method disk latencies.
//   - The actual view (Disk methods) feeds the simulation: seeks cost
//     γ(distance actually travelled) and rotational delay is sampled
//     uniformly from [0, MaxRotational].
package diskmodel

import (
	"fmt"
	"math"

	"repro/internal/si"
)

// Spec describes a disk by the parameters the paper's model needs.
// The zero value is not usable; start from Barracuda9LP or fill every field.
type Spec struct {
	// Name identifies the drive in output.
	Name string

	// Capacity is the formatted capacity of the drive.
	Capacity si.Bits

	// TransferRate is the minimum sustained transfer rate TR. The paper
	// uses the minimum so that guarantees hold on inner tracks.
	TransferRate si.BitRate

	// RPM is the spindle speed in revolutions per minute.
	RPM float64

	// MaxRotational is the worst rotational delay θ (one full revolution).
	MaxRotational si.Seconds

	// MaxSeek is the worst seek time (a full sweep across every cylinder).
	MaxSeek si.Seconds

	// Mu1, Nu1, Mu2, Nu2 parameterize the seek curve γ of Eq. 7:
	//
	//	γ(x) = Mu1 + Nu1·√x   for 0 < x < SeekBreak
	//	γ(x) = Mu2 + Nu2·x    for x ≥ SeekBreak
	//
	// Mu1 is the arm's fixed overhead (speedup, slowdown, settle);
	// Mu1+Nu1 is the single-cylinder seek time.
	Mu1, Nu1, Mu2, Nu2 si.Seconds

	// SeekBreak is the cylinder distance at which γ switches from the
	// square-root regime to the linear regime (400 in the paper).
	SeekBreak int

	// Cylinders is the total cylinder count Cyln. The paper leaves it
	// implicit; Barracuda9LP derives it from γ(Cyln) = MaxSeek.
	Cylinders int
}

// Barracuda9LP returns the Seagate Barracuda 9LP parameter set of Table 3.
//
// The cylinder count is derived from the linear seek regime:
// γ(Cyln) = 5 ms + 0.0014 ms·Cyln = 13.4 ms (the quoted maximum read seek)
// gives Cyln = 6000. With that geometry the derived maximum number of
// concurrent requests for 1.5 Mbps streams is N = 79, matching Table 3.
func Barracuda9LP() Spec {
	return Spec{
		Name:          "Seagate Barracuda 9LP",
		Capacity:      si.Gigabytes(9.19),
		TransferRate:  si.Mbps(120),
		RPM:           7200,
		MaxRotational: 8.33 * si.Millisecond,
		MaxSeek:       13.4 * si.Millisecond,
		Mu1:           0.54 * si.Millisecond,
		Nu1:           0.26 * si.Millisecond,
		Mu2:           5 * si.Millisecond,
		Nu2:           0.0014 * si.Millisecond,
		SeekBreak:     400,
		Cylinders:     6000,
	}
}

// Validate reports whether the spec is internally consistent enough to
// drive the model: positive rates, geometry, and a seek curve defined on
// the whole cylinder range.
func (s Spec) Validate() error {
	switch {
	case s.TransferRate <= 0:
		return fmt.Errorf("diskmodel: %s: non-positive transfer rate %v", s.Name, s.TransferRate)
	case s.Capacity <= 0:
		return fmt.Errorf("diskmodel: %s: non-positive capacity %v", s.Name, s.Capacity)
	case s.Cylinders <= 0:
		return fmt.Errorf("diskmodel: %s: non-positive cylinder count %d", s.Name, s.Cylinders)
	case s.SeekBreak <= 0 || s.SeekBreak > s.Cylinders:
		return fmt.Errorf("diskmodel: %s: seek break %d outside (0, %d]", s.Name, s.SeekBreak, s.Cylinders)
	case s.MaxRotational <= 0:
		return fmt.Errorf("diskmodel: %s: non-positive rotational delay %v", s.Name, s.MaxRotational)
	case s.Mu1 < 0 || s.Nu1 < 0 || s.Mu2 < 0 || s.Nu2 < 0:
		return fmt.Errorf("diskmodel: %s: negative seek coefficient", s.Name)
	}
	return nil
}

// SeekTime evaluates the seek curve γ for a head movement of x cylinders.
// γ(0) is 0: servicing the same cylinder needs no arm movement.
// x outside [0, Cylinders] is clamped; callers derive x from geometry, so a
// clamp only papers over float jitter at the edges.
//
// Below the published break the curve is the lower envelope of the two
// branches: published coefficient sets (the Barracuda's included) place the
// break above the distance where the branches cross, and evaluating the
// square-root branch all the way to the break would make γ jump downward
// there — violating the monotonicity and concavity the Sweep worst-case
// analysis relies on. A real arm follows whichever regime is faster.
func (s Spec) SeekTime(x int) si.Seconds {
	if x <= 0 {
		return 0
	}
	if x > s.Cylinders {
		x = s.Cylinders
	}
	lin := s.Mu2 + s.Nu2*si.Seconds(x)
	if x >= s.SeekBreak {
		return lin
	}
	if sq := s.Mu1 + s.Nu1*si.Seconds(math.Sqrt(float64(x))); sq < lin {
		return sq
	}
	return lin
}

// WorstSeek is γ(Cylinders): the time for the arm to cross the whole disk.
func (s Spec) WorstSeek() si.Seconds { return s.SeekTime(s.Cylinders) }

// WorstLatency is the worst single-service disk latency γ(Cyln) + θ used
// by the Round-Robin analysis.
func (s Spec) WorstLatency() si.Seconds { return s.WorstSeek() + s.MaxRotational }

// MaxConcurrent derives N, the maximum number of concurrent requests the
// disk supports for streams consuming at cr: the largest integer strictly
// below TR/CR (Eq. 1). It panics on a non-positive consumption rate.
func (s Spec) MaxConcurrent(cr si.BitRate) int {
	if cr <= 0 {
		panic("diskmodel: MaxConcurrent with non-positive consumption rate")
	}
	ratio := float64(s.TransferRate) / float64(cr)
	n := int(math.Ceil(ratio)) - 1 // largest integer strictly below ratio
	if n < 0 {
		n = 0
	}
	return n
}

// BitsPerCylinder reports how much data one cylinder holds under the
// model's uniform-density assumption. Real zoned drives vary by track; the
// uniform value is what the paper's contiguous-layout reasoning needs.
func (s Spec) BitsPerCylinder() si.Bits {
	return s.Capacity / si.Bits(s.Cylinders)
}

// CylinderOf maps a byte offset (expressed in bits) from the start of the
// disk to its cylinder number, clamped to the disk.
func (s Spec) CylinderOf(offset si.Bits) int {
	if offset < 0 {
		return 0
	}
	c := int(float64(offset) / float64(s.BitsPerCylinder()))
	if c >= s.Cylinders {
		c = s.Cylinders - 1
	}
	return c
}

// ModernNearline returns a present-day nearline drive for the large-N
// scale scenario: a 2.4 Gbps sustained transfer rate — twenty times the
// Barracuda's — so one spindle supports N = ceil(2400/1.5) − 1 = 1599
// concurrent 1.5 Mbps streams (Eq. 1), three orders of magnitude beyond
// the paper's N = 79. Mechanics improved far less than bandwidth over
// the same generations: the spindle still turns at 7200 RPM (8.33 ms
// worst rotational delay) and the arm's full sweep costs 8.5 ms, which
// is exactly the regime where buffer sizing matters — per-service
// latency is mechanical, so large n means large rounds and large
// buffers. The seek curve keeps Eq. 7's shape with the linear segment
// meeting gamma(Cyln) = 2.5 ms + 0.0003 ms · 20000 = 8.5 ms.
func ModernNearline() Spec {
	return Spec{
		Name:          "Modern Nearline 2.4G",
		Capacity:      si.Gigabytes(4000),
		TransferRate:  si.Mbps(2400),
		RPM:           7200,
		MaxRotational: 8.33 * si.Millisecond,
		MaxSeek:       8.5 * si.Millisecond,
		Mu1:           0.3 * si.Millisecond,
		Nu1:           0.12 * si.Millisecond,
		Mu2:           2.5 * si.Millisecond,
		Nu2:           0.0003 * si.Millisecond,
		SeekBreak:     400,
		Cylinders:     20000,
	}
}

// Synthetic15K returns a faster, later-generation drive (in the spirit of
// the 15k-RPM SCSI disks that followed the Barracuda): four times the
// Barracuda's transfer rate, half its rotational delay, and a quicker arm.
// It exists to show the paper's machinery is parametric in the disk — the
// dynamic scheme's advantage is a property of the sizing model, not of
// one drive. The seek curve keeps Eq. 7's shape with the linear segment
// meeting gamma(Cyln) = 7.5 ms.
func Synthetic15K() Spec {
	return Spec{
		Name:          "Synthetic 15K",
		Capacity:      si.Gigabytes(36),
		TransferRate:  si.Mbps(480),
		RPM:           15000,
		MaxRotational: 4 * si.Millisecond,
		MaxSeek:       7.5 * si.Millisecond,
		Mu1:           0.4 * si.Millisecond,
		Nu1:           0.145 * si.Millisecond,
		Mu2:           3 * si.Millisecond,
		Nu2:           0.00075 * si.Millisecond,
		SeekBreak:     400,
		Cylinders:     6000,
	}
}
