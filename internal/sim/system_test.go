package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/engine"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// testLibrary builds a small, deterministic library.
func testLibrary(t *testing.T, disks int) *catalog.Library {
	t.Helper()
	lib, err := catalog.New(catalog.Config{
		Titles:          6 * disks,
		Disks:           disks,
		Spec:            diskmodel.Barracuda9LP(),
		PopularityTheta: 0.271,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// lightTrace is a short, moderate-load workload: four hours, uniform
// arrivals, steady-state around 12 concurrent requests.
func lightTrace(t *testing.T, lib *catalog.Library, perDay float64, theta float64, seed int64) workload.Trace {
	t.Helper()
	return workload.Generate(workload.ZipfDay(perDay, theta, si.Hours(2), si.Hours(4)), lib, seed)
}

func testConfig(t *testing.T, scheme Scheme, kind sched.Kind, lib *catalog.Library, tr workload.Trace) Config {
	t.Helper()
	return Config{
		Scheme:  scheme,
		Method:  sched.NewMethod(kind),
		Spec:    diskmodel.Barracuda9LP(),
		CR:      si.Mbps(1.5),
		Library: lib,
		Trace:   tr,
		Seed:    7,
	}
}

func TestConfigValidation(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 40, 1, 1)
	base := testConfig(t, Dynamic, sched.RoundRobin, lib, tr)

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil library", func(c *Config) { c.Library = nil }},
		{"bad spec", func(c *Config) { c.Spec.TransferRate = 0 }},
		{"bad method", func(c *Config) { c.Method = sched.Method{Kind: sched.GSS} }},
		{"bad CR", func(c *Config) { c.CR = c.Spec.TransferRate }},
		{"bad scheme", func(c *Config) { c.Scheme = Scheme(9) }},
		{"negative alpha", func(c *Config) { c.Alpha = -1 }},
		{"negative tlog", func(c *Config) { c.TLog = -1 }},
		{"negative sample", func(c *Config) { c.SampleEvery = -1 }},
		{"negative grace", func(c *Config) { c.Grace = -1 }},
		{"trace disk out of range", func(c *Config) {
			c.Trace.Requests = append([]workload.Request(nil), c.Trace.Requests...)
			c.Trace.Requests[0].Disk = 5
		}},
	}
	for _, cse := range cases {
		cfg := base
		cse.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run should fail", cse.name)
		}
	}
}

// The core correctness claim: with the enforced schemes (static and
// dynamic), no admitted stream ever starves at moderate load, for every
// scheduling method.
func TestNoUnderrunsModerateLoad(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 80, 1, 3)
	for _, scheme := range []Scheme{Static, Dynamic} {
		for _, kind := range sched.Kinds {
			res, err := Run(testConfig(t, scheme, kind, lib, tr))
			if err != nil {
				t.Fatal(err)
			}
			if res.Underruns != 0 {
				t.Errorf("%v/%v: %d underruns (%v starved)", scheme, kind, res.Underruns, res.Starved)
			}
			if res.Served == 0 {
				t.Errorf("%v/%v: nothing served", scheme, kind)
			}
		}
	}
}

// The headline result: the dynamic scheme's average initial latency is far
// below the static one's at partial load, for every method.
func TestDynamicLatencyFarBelowStatic(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 80, 1, 4)
	for _, kind := range sched.Kinds {
		stat, err := Run(testConfig(t, Static, kind, lib, tr))
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := Run(testConfig(t, Dynamic, kind, lib, tr))
		if err != nil {
			t.Fatal(err)
		}
		sm, ok1 := stat.LatencyByN.GrandMean()
		dm, ok2 := dyn.LatencyByN.GrandMean()
		if !ok1 || !ok2 {
			t.Fatalf("%v: missing latency data", kind)
		}
		if dm >= sm/5 {
			t.Errorf("%v: dynamic latency %.3fs not well below static %.3fs", kind, dm, sm)
		}
	}
}

// Dynamic buffers shrink memory dramatically at partial load.
func TestDynamicMemoryFarBelowStatic(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 80, 1, 5)
	for _, kind := range sched.Kinds {
		stat, err := Run(testConfig(t, Static, kind, lib, tr))
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := Run(testConfig(t, Dynamic, kind, lib, tr))
		if err != nil {
			t.Fatal(err)
		}
		if float64(dyn.PeakMemory) >= float64(stat.PeakMemory)/5 {
			t.Errorf("%v: dynamic peak %v not well below static %v", kind, dyn.PeakMemory, stat.PeakMemory)
		}
	}
}

// The naive scheme of Section 3.1 underruns under a rising arrival rate —
// the flaw (Fig. 3) that motivates the predict-and-enforce design. The
// enforced dynamic scheme survives the same workload cleanly.
func TestNaiveSchemeStarvesUnderRamp(t *testing.T) {
	lib := testLibrary(t, 1)
	// Strong ramp into saturation: skewed arrivals peaking mid-trace.
	tr := workload.Generate(workload.ZipfDay(900, 0, si.Hours(3), si.Hours(6)), lib, 6)
	naive, err := Run(testConfig(t, Naive, sched.RoundRobin, lib, tr))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(testConfig(t, Dynamic, sched.RoundRobin, lib, tr))
	if err != nil {
		t.Fatal(err)
	}
	if naive.Underruns == 0 {
		t.Error("naive scheme should underrun under a rising load")
	}
	if float64(dyn.Starved) > float64(naive.Starved)/10 {
		t.Errorf("dynamic starved %v vs naive %v: enforcement should dominate", dyn.Starved, naive.Starved)
	}
}

func TestDeterminism(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 60, 0.5, 8)
	run := func() *Result {
		res, err := Run(testConfig(t, Dynamic, sched.GSS, lib, tr))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	am, _ := a.LatencyByN.GrandMean()
	bm, _ := b.LatencyByN.GrandMean()
	if am != bm || a.Served != b.Served || a.PeakMemory != b.PeakMemory ||
		a.Estimates != b.Estimates || a.EstimateHits != b.EstimateHits {
		t.Error("identical configs produced different results")
	}
}

// Capacity admission: the system never exceeds N concurrent requests per
// disk, and at overload it rejects rather than over-admitting.
func TestCapacityRejection(t *testing.T) {
	lib := testLibrary(t, 1)
	// Far beyond one disk's capacity.
	tr := workload.Generate(workload.ZipfDay(2200, 0, si.Hours(2), si.Hours(4)), lib, 9)
	for _, scheme := range []Scheme{Static, Dynamic} {
		res, err := Run(testConfig(t, scheme, sched.RoundRobin, lib, tr))
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxConcurrent > 79 {
			t.Errorf("%v: max concurrent %d exceeds N", scheme, res.MaxConcurrent)
		}
		if res.Rejected == 0 {
			t.Errorf("%v: overload should reject requests", scheme)
		}
		if res.MaxConcurrent < 75 {
			t.Errorf("%v: overload should fill the disk, got max %d", scheme, res.MaxConcurrent)
		}
	}
}

// Estimation quality at the paper's operating point: with T_log = 40 min
// and alpha = 1, the successful-estimation probability exceeds 90 percent.
func TestEstimationSuccess(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 120, 0.5, 10)
	cfg := testConfig(t, Dynamic, sched.RoundRobin, lib, tr)
	cfg.TLog = si.Minutes(40)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates == 0 {
		t.Fatal("no estimation checks resolved")
	}
	if got := res.SuccessRate(); got < 0.9 {
		t.Errorf("success rate = %.3f, want > 0.9", got)
	}
	if res.EstimatedK.Mean() <= 0 {
		t.Errorf("mean estimated k = %v, want positive", res.EstimatedK.Mean())
	}
}

// Memory-constrained admission (Fig. 14's mechanism): a tight budget caps
// concurrency below the unconstrained run, a generous one does not, and
// the reservation never exceeds the budget.
func TestMemoryGovernor(t *testing.T) {
	lib := testLibrary(t, 2)
	tr := workload.Generate(workload.ZipfDay(400, 0.5, si.Hours(2), si.Hours(4)), lib, 11)

	unconstrained, err := Run(testConfig(t, Static, sched.RoundRobin, lib, tr))
	if err != nil {
		t.Fatal(err)
	}

	tight := testConfig(t, Static, sched.RoundRobin, lib, tr)
	tight.MemoryBudget = si.Gigabytes(0.3)
	tightRes, err := Run(tight)
	if err != nil {
		t.Fatal(err)
	}
	if tightRes.MaxConcurrent >= unconstrained.MaxConcurrent {
		t.Errorf("tight budget: %d concurrent, unconstrained %d", tightRes.MaxConcurrent, unconstrained.MaxConcurrent)
	}
	if tightRes.RejectedMemory == 0 {
		t.Error("tight budget should reject on memory")
	}
	for _, s := range tightRes.Reserved.Samples() {
		if s.V > float64(si.Gigabytes(0.3))+1 {
			t.Fatalf("reservation %v exceeds budget at t=%v", si.Bits(s.V), s.At)
		}
	}

	// The dynamic scheme squeezes more concurrent requests out of the
	// same tight budget — Table 5's effect.
	tightDyn := testConfig(t, Dynamic, sched.RoundRobin, lib, tr)
	tightDyn.MemoryBudget = si.Gigabytes(0.3)
	dynRes, err := Run(tightDyn)
	if err != nil {
		t.Fatal(err)
	}
	if dynRes.MaxConcurrent <= tightRes.MaxConcurrent {
		t.Errorf("dynamic under tight budget: %d concurrent, static %d", dynRes.MaxConcurrent, tightRes.MaxConcurrent)
	}
}

// Multi-disk runs respect per-disk capacity and route requests by
// placement.
func TestMultiDisk(t *testing.T) {
	lib := testLibrary(t, 3)
	tr := workload.Generate(workload.ZipfDay(300, 0.5, si.Hours(2), si.Hours(4)), lib, 12)
	res, err := Run(testConfig(t, Dynamic, sched.RoundRobin, lib, tr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DiskStats) != 3 {
		t.Fatalf("disk stats for %d disks, want 3", len(res.DiskStats))
	}
	for d, st := range res.DiskStats {
		if st.Reads == 0 {
			t.Errorf("disk %d performed no reads", d)
		}
	}
	if res.Underruns != 0 {
		t.Errorf("underruns = %d", res.Underruns)
	}
}

// The Until cutoff stops admitting new arrivals but lets the grace period
// drain, and the sampler covers the requested span.
func TestUntilCutoff(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 80, 1, 13)
	cfg := testConfig(t, Dynamic, sched.RoundRobin, lib, tr)
	cfg.Until = si.Hours(1)
	cfg.Grace = si.Minutes(10)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(testConfig(t, Dynamic, sched.RoundRobin, lib, tr))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served >= full.Served {
		t.Errorf("cutoff served %d, full %d", res.Served, full.Served)
	}
	samples := res.Concurrency.Samples()
	lastAt := samples[len(samples)-1].At
	if lastAt > si.Hours(1)+si.Minutes(10) {
		t.Errorf("sampling ran past the cutoff: %v", lastAt)
	}
}

// Latency by load level: dynamic latency grows with n (larger buffers),
// and the n used for bucketing stays within range.
func TestLatencyByNShape(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := workload.Generate(workload.ZipfDay(600, 0, si.Hours(2), si.Hours(4)), lib, 14)
	res, err := Run(testConfig(t, Dynamic, sched.RoundRobin, lib, tr))
	if err != nil {
		t.Fatal(err)
	}
	lo, hiOK := 0.0, false
	if m, ok := res.LatencyByN.Mean(3); ok {
		lo = m
	}
	for n := 40; n < 79; n++ {
		if m, ok := res.LatencyByN.Mean(n); ok && m > lo {
			hiOK = true
			break
		}
	}
	if lo <= 0 || !hiOK {
		t.Errorf("latency-by-n shape unexpected: lo=%v hiOK=%v", lo, hiOK)
	}
}

func TestSchemeParseRoundTrip(t *testing.T) {
	for _, s := range Schemes {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("bogus scheme should fail")
	}
	if got := Scheme(9).String(); got != "sim.Scheme(9)" {
		t.Errorf("unknown scheme String = %q", got)
	}
}

// Global invariant sweep: run one dynamic GSS simulation and check
// internal consistency via the server invariants.
func TestServerInvariants(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 100, 0, 15)
	cfg := testConfig(t, Dynamic, sched.GSS, lib, tr)
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxConcurrent > 79 {
		t.Errorf("capacity breached: %d", res.MaxConcurrent)
	}
	if math.IsNaN(res.EstimatedK.Mean()) {
		t.Error("NaN in estimated k")
	}
}

// A chunked library (footnote 3's layout) behaves like a contiguous one:
// no underruns, one latency per service, similar latency scale.
func TestChunkedLayoutEndToEnd(t *testing.T) {
	spec := diskmodel.Barracuda9LP()
	chunked, err := catalog.New(catalog.Config{
		Titles: 4, Disks: 1, Spec: spec, PopularityTheta: 0.271,
		ChunkSize: si.Megabytes(128), MaxRead: si.Megabytes(26),
	})
	if err != nil {
		t.Fatal(err)
	}
	contiguous, err := catalog.New(catalog.Config{
		Titles: 4, Disks: 1, Spec: spec, PopularityTheta: 0.271,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(lib *catalog.Library) *Result {
		tr := workload.Generate(workload.ZipfDay(80, 1, si.Hours(2), si.Hours(4)), lib, 3)
		res, err := Run(testConfig(t, Dynamic, sched.Sweep, lib, tr))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(chunked), run(contiguous)
	if a.Underruns != 0 {
		t.Errorf("chunked run underran %d times", a.Underruns)
	}
	am, _ := a.LatencyByN.GrandMean()
	bm, _ := b.LatencyByN.GrandMean()
	if am > 3*bm+0.1 {
		t.Errorf("chunked latency %v far above contiguous %v", am, bm)
	}
}

// A chunked library whose MaxRead is below the largest buffer must be
// rejected at configuration time, not discovered as a runtime panic.
func TestChunkedLayoutTooSmallMaxRead(t *testing.T) {
	spec := diskmodel.Barracuda9LP()
	lib, err := catalog.New(catalog.Config{
		Titles: 2, Disks: 1, Spec: spec, PopularityTheta: 0.271,
		ChunkSize: si.Megabytes(24), MaxRead: si.Megabytes(12), // < BS(N) = 25.75 MB
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(workload.ZipfDay(10, 1, si.Hours(1), si.Hours(2)), lib, 1)
	if _, err := Run(testConfig(t, Static, sched.RoundRobin, lib, tr)); err == nil {
		t.Error("undersized MaxRead should be rejected")
	}
}

// Disk utilization: the dynamic scheme pays more disk time (smaller, more
// frequent fills with per-fill latency) than the static one at equal load,
// and utilization stays within [0, 1].
func TestDiskUtilization(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 80, 1, 21)
	stat, err := Run(testConfig(t, Static, sched.RoundRobin, lib, tr))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(testConfig(t, Dynamic, sched.RoundRobin, lib, tr))
	if err != nil {
		t.Fatal(err)
	}
	su, du := stat.DiskUtilization(0), dyn.DiskUtilization(0)
	for _, u := range []float64{su, du} {
		if u <= 0 || u >= 1 {
			t.Fatalf("utilization out of range: %v", u)
		}
	}
	if du <= su {
		t.Errorf("dynamic utilization %v should exceed static %v (latency amortized over smaller fills)", du, su)
	}
	if stat.DiskUtilization(5) != 0 || stat.DiskUtilization(-1) != 0 {
		t.Error("out-of-range disk should report zero")
	}
}

// VCR workloads run end-to-end: continuations are admitted and measured
// separately, with no starvation.
func TestVCRWorkloadSimulation(t *testing.T) {
	lib := testLibrary(t, 1)
	s := workload.ZipfDay(60, 1, si.Hours(1), si.Hours(2))
	tr := workload.GenerateVCR(s, lib, 22, workload.VCROptions{ActionsPerHour: 6})
	res, err := Run(testConfig(t, Dynamic, sched.RoundRobin, lib, tr))
	if err != nil {
		t.Fatal(err)
	}
	if res.VCRLatency.N() == 0 {
		t.Fatal("no VCR responses measured")
	}
	if res.ColdLatency.N() == 0 {
		t.Fatal("no cold startups measured")
	}
	if res.Underruns != 0 {
		t.Errorf("underruns = %d", res.Underruns)
	}
	if int64(res.Served) != res.VCRLatency.N()+res.ColdLatency.N() {
		t.Errorf("latency counters (%d + %d) do not add up to served (%d)",
			res.VCRLatency.N(), res.ColdLatency.N(), res.Served)
	}
}

// Fixed-Stretch (BubbleUp disabled) still serves everyone without
// starvation — newcomers just wait for the rotation.
func TestDisableBubbleUp(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 60, 1, 23)
	cfg := testConfig(t, Static, sched.RoundRobin, lib, tr)
	cfg.DisableBubbleUp = true
	fixed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bubble, err := Run(testConfig(t, Static, sched.RoundRobin, lib, tr))
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Underruns != 0 {
		t.Errorf("fixed-stretch underruns = %d", fixed.Underruns)
	}
	if fixed.Served != bubble.Served {
		t.Errorf("served differ: %d vs %d", fixed.Served, bubble.Served)
	}
	fm, _ := fixed.LatencyByN.GrandMean()
	bm, _ := bubble.LatencyByN.GrandMean()
	if fm <= bm {
		t.Errorf("fixed-stretch latency %v should exceed BubbleUp's %v", fm, bm)
	}
}

// Grounding Theorems 2-4 against the simulator: hold the load at a fixed
// n (a burst of long-viewing arrivals), and the observed peak memory must
// sit in the same ballpark as the analytical minimum — above a fraction
// of it (the formulas are worst-case peaks, the simulation drains between
// fills) and below it plus scheduling cushions.
func TestMemoryFormulaGroundsSimulation(t *testing.T) {
	lib := testLibrary(t, 1)
	const n = 20
	var reqs []workload.Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, workload.Request{
			ID:      i,
			Arrival: si.Seconds(i), // a quick burst, then steady state
			Video:   i % lib.Len(),
			Disk:    0,
			Viewing: si.Hours(3),
		})
	}
	tr := workload.Trace{Requests: reqs, Schedule: workload.NewSchedule(si.Hours(4), []float64{0})}

	for _, kind := range sched.Kinds {
		m := sched.NewMethod(kind)
		res, err := Run(testConfig(t, Dynamic, kind, lib, tr))
		if err != nil {
			t.Fatal(err)
		}
		if res.Underruns != 0 {
			t.Fatalf("%v: underruns %d", m, res.Underruns)
		}
		// The steady state runs at n with a small k (no further arrivals,
		// so k settles at alpha-ish); compare against k in {1, ..., 4}.
		env := core.Params{TR: si.Mbps(120), CR: si.Mbps(1.5), N: 79, Alpha: 1}
		lo := float64(memmodel.MinDynamic(env, m, diskmodel.Barracuda9LP(), n, 1))
		hi := float64(memmodel.MinDynamic(env, m, diskmodel.Barracuda9LP(), n, 4))
		peak := float64(res.PeakMemory)
		if peak < 0.25*lo {
			t.Errorf("%v: sim peak %v far below the analytical floor %v", m, res.PeakMemory, si.Bits(lo))
		}
		if peak > 3*hi {
			t.Errorf("%v: sim peak %v far above the analytical ceiling %v", m, res.PeakMemory, si.Bits(hi))
		}
	}
}

// fillObserver counts service starts through the engine's Observer
// interface — the replacement for the old DebugServices hook.
type fillObserver struct {
	engine.NopObserver
	fills int
}

func (f *fillObserver) OnFill(disk int, st *engine.Stream, start, dur si.Seconds, fill si.Bits, deadline si.Seconds) {
	f.fills++
}

// The observability hooks: the engine's Observer fan-out and the
// simulator's debug hooks fire on the events they observe.
func TestDebugHooks(t *testing.T) {
	var forms, samples int
	engine.DebugForm = func(now si.Seconds, ids []int) { forms++ }
	DebugSample = func(dump func() [][2]si.Bits, now si.Seconds, usage si.Bits) {
		samples++
		if samples == 3 {
			if d := dump(); d == nil && usage > 0 {
				t.Error("dump returned nil while memory in use")
			}
		}
	}
	defer func() { engine.DebugForm, DebugSample = nil, nil }()

	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 30, 1, 31)
	fo := &fillObserver{}
	cfg := testConfig(t, Dynamic, sched.Sweep, lib, tr)
	cfg.Observer = fo
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if forms == 0 || fo.fills == 0 || samples == 0 {
		t.Errorf("hooks did not fire: forms=%d fills=%d samples=%d", forms, fo.fills, samples)
	}
}

// Randomized robustness: arbitrary light-to-moderate configurations must
// run without panics, respect capacity, and (for the enforced schemes)
// never starve an admitted viewer.
func TestRandomizedConfigurations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		scheme := []Scheme{Static, Dynamic}[rng.Intn(2)]
		kind := sched.Kinds[rng.Intn(3)]
		disks := 1 + rng.Intn(2)
		lib := testLibrary(t, disks)
		total := float64(40 + rng.Intn(120))
		theta := []float64{0, 0.5, 1}[rng.Intn(3)]
		tr := workload.Generate(workload.ZipfDay(total, theta, si.Hours(1), si.Hours(3)), lib, rng.Int63())
		cfg := testConfig(t, scheme, kind, lib, tr)
		cfg.Seed = rng.Int63()
		cfg.Alpha = 1 + rng.Intn(3)
		cfg.TLog = si.Minutes(float64(10 + rng.Intn(50)))
		if rng.Intn(2) == 0 {
			cfg.PageSize = si.Bits(8 * 4096)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d (%v/%v): %v", trial, scheme, kind, err)
		}
		if res.MaxConcurrent > disks*79 {
			t.Errorf("trial %d: capacity breached (%d)", trial, res.MaxConcurrent)
		}
		// Light loads must never starve; tolerate nothing here.
		if res.Underruns != 0 {
			t.Errorf("trial %d (%v/%v, theta=%v, total=%v): %d underruns, %v starved",
				trial, scheme, kind, theta, total, res.Underruns, res.Starved)
		}
		if res.Served == 0 {
			t.Errorf("trial %d: nothing served", trial)
		}
	}
}
