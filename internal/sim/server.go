package sim

import (
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/si"
	"repro/internal/workload"
)

// stream is one admitted request being serviced by a disk server.
type stream struct {
	id         int
	req        workload.Request
	place      catalog.Placement
	nAtArrival int        // requests in service at its arrival (Fig. 11's x-axis)
	required   si.Bits    // total data the user will consume: CR · viewing
	delivered  si.Bits    // data read from disk so far
	size       si.Bits    // most recent allocated buffer size
	deadline   si.Seconds // cached pool EmptyAt, refreshed at each fill
	lastFillAt si.Seconds // completion time of the most recent fill
	firstFill  si.Seconds
	started    bool // first fill has landed
	active     bool // still owned by the server
	doomed     bool // departed mid-service; remove at completion
	group      int  // GSS group index
}

// needService reports whether the stream still has data to fetch.
func (st *stream) needService() bool {
	return st.active && st.delivered < st.required
}

// queued is an accepted request waiting for admission (deferral under the
// dynamic scheme's enforcement, or simply for the next service slot).
type queued struct {
	req        workload.Request
	nAtArrival int
}

// estEntry is a pending prediction check: at start a buffer was allocated
// with kc estimated additional requests over its usage period; once the
// period closes, the estimate is compared with actual arrivals.
type estEntry struct {
	start, end si.Seconds
	kc         int
}

// server simulates one disk: its scheduler, allocator, admission control,
// and buffer pool.
type server struct {
	sys  *system
	id   int
	eng  *Engine
	disk *diskmodel.Disk
	pool *buffer.Pool

	streams []*stream
	queue   []queued
	book    *core.Book
	est     *core.Estimator

	policy policy

	busy    bool
	current *stream
	wake    *Event

	// k_log caching: the two-pointer window scan is recomputed only when
	// new arrivals landed or the cache is older than klogRefresh.
	kcDirty   bool
	klogCache int
	klogAt    si.Seconds

	lastPeriod si.Seconds // usage period of the last allocated buffer

	// arrival histories: arrivals feeds k_log (every arrival, as the
	// estimator sees the raw stream); estArrivals feeds estimation-success
	// accounting and holds only arrivals the system accepts — a request
	// rejected outright at capacity is never serviced, so it is not an
	// "additional request" the prediction needs to cover.
	arrivals    []si.Seconds
	estArrivals []si.Seconds
	pending     []estEntry

	// scratch buffers reused across dispatches.
	deadlineScratch []float64
}

// DebugServices, when set, observes every service start:
// (disk, stream, start, duration, fill, deadline). Debug-only.
var DebugServices func(disk, stream int, start, dur si.Seconds, fill si.Bits, deadline si.Seconds)

// klogRefresh bounds how stale the cached k_log may get between arrivals:
// the window only slides, so k_log can only decrease while no arrivals
// come, and a short staleness is harmless.
const klogRefresh = si.Seconds(10)

func newServer(sys *system, id int) *server {
	s := &server{
		sys:  sys,
		id:   id,
		eng:  sys.eng,
		disk: diskmodel.NewDisk(sys.cfg.Spec, sys.cfg.Seed*1000003+int64(id)),
		pool: buffer.NewPagedPool(0, sys.cfg.PageSize),
		book: core.NewBook(),
		est:  core.NewEstimator(sys.cfg.TLog),
	}
	// A sane initial period guess: the usage period of the smallest
	// dynamic buffer. Updated at every allocation.
	s.lastPeriod = sys.params.UsagePeriod(sys.sizeFor(s, 1, sys.params.Alpha))
	s.policy = newPolicy(s)
	return s
}

func (s *server) now() si.Seconds { return s.eng.Now() }

// n reports the number of requests in service on this disk.
func (s *server) n() int { return len(s.streams) }

// committed reports requests in service plus accepted-but-deferred ones,
// the count capacity rejection uses.
func (s *server) committed() int { return len(s.streams) + len(s.queue) }

// onArrival handles a request arriving at this disk: record it for the
// estimator, reject it when the disk or the memory budget is full, else
// accept it into the deferral queue and try to dispatch.
func (s *server) onArrival(req workload.Request) {
	now := s.now()
	s.arrivals = append(s.arrivals, now)
	s.est.RecordArrival(now)
	s.kcDirty = true
	s.resolveEstimates(now)

	if s.committed() >= s.sys.params.N {
		s.sys.res.Rejected++
		return
	}
	if g := s.sys.gov; g != nil && !g.tryGrow(s) {
		s.sys.res.RejectedMemory++
		return
	}
	s.estArrivals = append(s.estArrivals, now)
	s.queue = append(s.queue, queued{req: req, nAtArrival: s.n()})
	s.dispatch()
}

// admitFromQueue moves accepted requests into service while the scheme's
// admission control allows it.
func (s *server) admitFromQueue() {
	for len(s.queue) > 0 {
		n := s.n()
		if n >= s.sys.params.N {
			return
		}
		if s.sys.cfg.Scheme == Dynamic && !core.Admit(s.book, n, s.sys.params.N) {
			s.sys.res.Deferrals++
			return
		}
		q := s.queue[0]
		s.queue = s.queue[:copy(s.queue, s.queue[1:])]
		st := &stream{
			id:         q.req.ID,
			req:        q.req,
			place:      s.sys.cfg.Library.Placement(q.req.Video),
			nAtArrival: q.nAtArrival,
			required:   maxBits(s.sys.cfg.CR.DataIn(q.req.Viewing), 1),
			deadline:   s.now(), // fresh: due immediately
			firstFill:  -1,
			active:     true,
		}
		s.streams = append(s.streams, st)
		s.pool.Attach(st.id, s.sys.cfg.CR, s.now())
		s.policy.admit(st)
		s.sys.noteAdmit()
	}
}

// removeStream detaches a departed stream from every structure and frees
// its capacity.
func (s *server) removeStream(st *stream) {
	if !st.active {
		return
	}
	st.active = false
	s.pool.Detach(st.id, s.now())
	s.book.Remove(st.id)
	for i, o := range s.streams {
		if o == st {
			s.streams = append(s.streams[:i], s.streams[i+1:]...)
			break
		}
	}
	s.policy.remove(st)
	s.sys.noteDepart()
	if g := s.sys.gov; g != nil {
		g.shrink(s)
	}
	s.dispatch()
}

// dispatch is the server's main decision point: admit what the policy's
// timing allows, pick the next service, and either start it, sleep until
// its lazy start time, or go idle.
func (s *server) dispatch() {
	if s.busy {
		return
	}
	if s.wake != nil {
		s.wake.Cancel()
		s.wake = nil
	}
	if s.policy.canAdmit() {
		s.admitFromQueue()
	}
	st, startAt := s.policy.next(s.now())
	if st == nil {
		return // idle: the next arrival or departure re-dispatches
	}
	if startAt > s.now() {
		s.wake = s.eng.Schedule(startAt, s.dispatch)
		return
	}
	s.beginService(st)
}

// beginService allocates the buffer for st per the configured scheme and
// starts the disk read.
func (s *server) beginService(st *stream) {
	now := s.now()
	n := s.n()
	size := s.allocate(st, n)
	st.size = size
	fill := size
	if rem := st.required - st.delivered; fill > rem {
		fill = rem
	}
	// Use-it-and-toss-it: the buffer never holds more than one allocation;
	// a refill only replenishes what the stream has consumed. A member
	// swept early may need nothing at all — skip the disk entirely.
	if room := size - s.pool.Level(st.id, now); fill > room {
		fill = room
	}
	if fill <= 0 {
		s.policy.onServiced(st)
		s.dispatch()
		return
	}
	cyl := s.sys.cfg.Spec.CylinderOf(st.place.DiskOffset(st.delivered, fill))
	if !s.pool.BeginFill(st.id, fill, now) {
		// Only possible with a hard pool budget (not used by System runs,
		// which admit by formula); retry shortly and count the stall.
		s.sys.res.MemoryStalls++
		s.wake = s.eng.After(s.sys.cfg.Spec.MaxRotational, s.dispatch)
		return
	}
	st.delivered += fill
	dur := s.disk.Read(cyl, fill)
	s.busy = true
	s.current = st
	if DebugServices != nil {
		DebugServices(s.id, st.id, now, dur, fill, s.pool.EmptyAt(st.id))
	}
	s.eng.After(dur, func() { s.completeService(st) })
}

// completeService lands the fill, records first-fill latency, schedules
// the departure, and moves on.
func (s *server) completeService(st *stream) {
	now := s.now()
	s.pool.CompleteFill(st.id, now)
	st.deadline = s.pool.EmptyAt(st.id)
	st.lastFillAt = now
	s.busy = false
	s.current = nil
	if !st.started {
		st.started = true
		st.firstFill = now
		s.sys.res.Served++
		lat := float64(now - st.req.Arrival)
		s.sys.res.LatencyByN.Add(st.nAtArrival, lat)
		if st.req.VCR {
			s.sys.res.VCRLatency.Add(lat)
		} else {
			s.sys.res.ColdLatency.Add(lat)
		}
		s.eng.Schedule(now+st.req.Viewing, func() { s.depart(st) })
	}
	s.policy.onServiced(st)
	if st.doomed {
		st.doomed = false
		s.removeStream(st)
		return // removeStream dispatched already
	}
	s.dispatch()
}

// depart handles the end of a request's viewing time.
func (s *server) depart(st *stream) {
	if !st.active {
		return
	}
	if s.current == st {
		st.doomed = true // finish the in-flight service first
		return
	}
	s.removeStream(st)
}

// allocate computes the buffer size for a service per the configured
// scheme, recording the inertia snapshot for the dynamic scheme.
func (s *server) allocate(st *stream, n int) si.Bits {
	switch s.sys.cfg.Scheme {
	case Static:
		return s.sys.staticSize
	case Dynamic:
		kc := s.estimate(n)
		size := s.sys.sizeFor(s, n, kc)
		s.book.Set(st.id, core.Allocation{N: n, K: kc})
		s.recordEstimate(size, kc)
		return size
	default: // Naive
		kc := s.estimate(n)
		size := s.sys.naiveSizeFor(n, kc)
		s.recordEstimate(size, kc)
		return size
	}
}

// recordEstimate logs a (kc, usage period) pair for later success checking
// and refreshes the rolling period estimate.
func (s *server) recordEstimate(size si.Bits, kc int) {
	now := s.now()
	t := s.sys.params.UsagePeriod(size)
	s.lastPeriod = t
	s.pending = append(s.pending, estEntry{start: now, end: now + t, kc: kc})
	s.sys.res.EstimatedK.Add(float64(kc))
}

// estimate computes kc per Fig. 5 Step 4, exactly as the paper states it:
// min(k_log + alpha, min_i(k_i) + alpha), with the k_log window scan
// cached between arrivals. kc is not clamped to the spare capacity — the
// sizing table saturates at full load for any k >= N−n (the recurrence
// chain clamps at N), and clamping the prediction itself would starve the
// inertia book of realistic snapshots under heavy load.
func (s *server) estimate(n int) int {
	now := s.now()
	if s.kcDirty || now-s.klogAt > klogRefresh {
		s.klogCache = s.est.KLog(now, s.lastPeriod)
		s.klogAt = now
		s.kcDirty = false
	}
	p := s.sys.params
	kc := s.klogCache + p.Alpha
	if minK := s.book.MinK(); minK <= 2*p.N {
		if ceil := minK + p.Alpha; ceil < kc {
			kc = ceil
		}
	}
	if kc < 0 {
		kc = 0
	}
	return kc
}

// resolveEstimates settles prediction checks whose window has closed:
// an estimate succeeds when kc is at least the number of actual arrivals
// within the usage period (Section 5.1's "successful estimation").
func (s *server) resolveEstimates(now si.Seconds) {
	i := 0
	for ; i < len(s.pending); i++ {
		e := s.pending[i]
		if e.end > now {
			break
		}
		actual := s.countArrivals(e.start, e.end)
		s.sys.res.Estimates++
		if e.kc >= actual {
			s.sys.res.EstimateHits++
		}
	}
	if i > 0 {
		s.pending = append(s.pending[:0], s.pending[i:]...)
	}
}

// countArrivals counts accepted arrivals in (lo, hi] by binary search
// over the in-order log.
func (s *server) countArrivals(lo, hi si.Seconds) int {
	a := s.estArrivals
	i := sort.Search(len(a), func(i int) bool { return a[i] > lo })
	j := sort.Search(len(a), func(i int) bool { return a[i] > hi })
	return j - i
}

// worstService bounds the duration of one service at load n: the method's
// worst disk latency plus the transfer of the size that would be allocated
// right now.
func (s *server) worstService(n int) si.Seconds {
	if n < 1 {
		n = 1
	}
	var size si.Bits
	switch s.sys.cfg.Scheme {
	case Static:
		size = s.sys.staticSize
	case Dynamic:
		// Plan with the Assumption-2 worst future prediction: no service
		// in the batch can allocate with k above min_i(k_i) + alpha
		// (that is what the estimator enforces), exactly the headroom the
		// recurrence's BS_{k+alpha} term models.
		k := s.book.MinK()
		if k > 2*s.sys.params.N {
			k = s.estimate(n) // empty book: fall back to the estimate
		}
		k += s.sys.params.Alpha
		size = s.sys.sizeFor(s, n, k)
	default:
		size = s.sys.naiveSizeFor(n, s.estimate(n))
	}
	return s.sys.cfg.Method.WorstDL(s.sys.cfg.Spec, n) + s.sys.cfg.Spec.TransferRate.TimeToTransfer(size)
}

// deadline reports when a stream's buffer runs dry (fresh streams are due
// immediately). It reads the cached value refreshed at each fill, saving
// a pool lookup on every scheduling decision.
func (s *server) deadline(st *stream) si.Seconds { return st.deadline }

// roomAt reports the earliest time a refill of st is worthwhile: when the
// buffer has drained to a quarter of its last allocation. Scheduling
// cushions must never outpace consumption — for tiny dynamic buffers the
// cushion can exceed a whole usage period, and without this floor the
// scheduler would spin refilling already-full buffers.
func (s *server) roomAt(st *stream) si.Seconds {
	if st.size <= 0 {
		return 0 // fresh stream: fillable immediately
	}
	return s.deadline(st) - si.Seconds(0.75*float64(s.sys.params.UsagePeriod(st.size)))
}

// lazyMarginServices is the safety cushion applied to lazy starts,
// measured in worst-case service times. Perfectly just-in-time refilling
// leaves no room to absorb a newly admitted stream's immediate first fill
// (the real Fixed-Stretch/BubbleUp schedule keeps that room as free
// slots); refilling two services early restores it at a memory cost of
// 2·w·CR per stream, a couple of percent of a buffer.
const lazyMarginServices = 2

// latestStart computes the safe lazy start for servicing a batch of
// streams sequentially when the service order may be adversarial with
// respect to deadlines: every deadline d_(i) (sorted ascending) must allow
// i services of duration w first, so start <= min_i(d_(i) − i·w), minus
// the safety cushion.
func (s *server) latestStart(deadlines []float64, w si.Seconds) si.Seconds {
	sort.Float64s(deadlines)
	best := si.Seconds(deadlines[0]) - w
	for i, d := range deadlines {
		if cand := si.Seconds(d) - si.Seconds(i+1)*w; cand < best {
			best = cand
		}
	}
	return best - lazyMarginServices*w
}

func maxBits(a, b si.Bits) si.Bits {
	if a > b {
		return a
	}
	return b
}

// sanity check helper used in tests.
func (s *server) invariants() error {
	if len(s.streams) > s.sys.params.N {
		return fmt.Errorf("sim: disk %d exceeds N with %d streams", s.id, len(s.streams))
	}
	return nil
}
