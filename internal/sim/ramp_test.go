package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// The Theorem 1 accounting gap RampAwarePlanning closes: PlanSize
// evaluated at the CURRENT load n sizes a buffer to survive n+k
// services of TODAY'S worst size — but the theorem's recurrence needs
// the worst size at the post-admission load n+k, and on a hard ramp the
// predicted k admissions really do land inside the buffer's usage
// period. The late fills then allocate above plan while the lazy-start
// scheduler has already slept on the under-planned estimate, leaving a
// round-tail deficit of about n·(BS(n+k)−BS(n))/TR with the disk 100%
// busy — an underrun with no one misbehaving.
//
// The regression is pinned from both sides on a knee-to-ceiling ramp:
// with the flag the sizing guarantee must hold for every seed, and
// without it at least one seed must still show the deficit (if the
// ramp stops reproducing the gap, the test has decayed and needs a
// harder ramp, not a green checkmark).
func TestRampAwarePlanningClosesTheoremGap(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity-ramp scenario in -short mode")
	}
	lib := testLibrary(t, 1)
	spec := diskmodel.Barracuda9LP()
	n := core.DeriveN(spec.TransferRate, si.Mbps(1.5))

	// A flat arrival rate whose M/G/∞ concurrency reaches the Eq. 1
	// ceiling N by the end of a half-hour ramp — twice the memory knee,
	// the regime where admissions land mid-round back to back.
	horizon := si.Minutes(30)
	T, V := float64(horizon), float64(workload.MaxViewing)
	rate := float64(n) / (T - T*T/(2*V))

	gapSeen := 0
	for seed := int64(1); seed <= 5; seed++ {
		tr := workload.Generate(workload.NewSchedule(horizon, []float64{rate}), lib, seed)
		cfg := testConfig(t, Dynamic, sched.RoundRobin, lib, tr)
		cfg.ChurnSafeAdmission = true
		cfg.DeadlineAwareBubbleUp = true

		off, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gapSeen += off.Underruns

		cfg.RampAwarePlanning = true
		on, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if on.Underruns != 0 {
			t.Errorf("seed %d: %d underruns with ramp-aware planning on (%v starved)",
				seed, on.Underruns, on.Starved)
		}
		if on.Served == 0 {
			t.Errorf("seed %d: nothing served", seed)
		}
	}
	if gapSeen == 0 {
		t.Error("no seed reproduced the planning gap with the flag off; the ramp no longer pins the regression")
	}
}
