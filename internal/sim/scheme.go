package sim

import (
	"fmt"

	"repro/internal/engine"
)

// Scheme selects the buffer allocation scheme a simulated server runs.
type Scheme int

const (
	// Static is the baseline of Section 2.3: every buffer gets the
	// full-load size BS(N), and admission checks capacity only.
	Static Scheme = iota

	// Dynamic is the paper's contribution (Section 3): buffers are sized
	// by Theorem 1 for the current load and prediction, and the inertia
	// assumptions are enforced by deferring violating admissions.
	Dynamic

	// Naive is the flawed strawman of Section 3.1 (Fig. 3): Eq. 5
	// evaluated at n+k, with no recurrence and no enforcement. It exists
	// to demonstrate the underruns the paper predicts.
	Naive

	// Knee is the memory-knee-aware fourth scheme (ROADMAP item 3): the
	// dynamic scheme with admission capped at half the disk's capacity —
	// the Theorem 1 memory knee — trading peak concurrency for an
	// order-of-magnitude smaller per-stream memory near the cap. It
	// pairs with downgrading admission, which converts the capped
	// capacity into lower ladder rungs instead of rejections.
	Knee
)

// Schemes lists the schemes in presentation order.
var Schemes = []Scheme{Static, Dynamic, Naive, Knee}

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Naive:
		return "naive"
	case Knee:
		return "knee"
	default:
		return fmt.Sprintf("sim.Scheme(%d)", int(s))
	}
}

// AllocatorFor returns the engine Allocator that implements the scheme:
// the static full-load size, the paper's predict-and-enforce dynamic
// allocation, or the naive strawman.
func AllocatorFor(s Scheme) engine.Allocator {
	switch s {
	case Static:
		return engine.StaticAllocator{}
	case Dynamic:
		return engine.DynamicAllocator{}
	case Knee:
		return engine.KneeAllocator{}
	default:
		return engine.NaiveAllocator{}
	}
}

// ParseScheme maps a name produced by String back to its Scheme.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "static":
		return Static, nil
	case "dynamic":
		return Dynamic, nil
	case "naive":
		return Naive, nil
	case "knee":
		return Knee, nil
	}
	return 0, fmt.Errorf("sim: unknown scheme %q", s)
}
