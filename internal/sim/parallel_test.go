package sim

import (
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// Concurrent Run calls sharing one immutable Library must be race-free
// (this test is the -race canary for the property the parallel experiment
// runner depends on) and, given equal configs, must produce identical
// measurements regardless of interleaving.
func TestRunConcurrentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	lib, err := catalog.New(catalog.Config{
		Titles: 4, Disks: 1, Spec: diskmodel.Barracuda9LP(), PopularityTheta: 0.271,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(workload.ZipfDay(300, 0.5, si.Hours(2), si.Hours(4)), lib, 11)
	cfg := Config{
		Scheme:  Dynamic,
		Method:  sched.NewMethod(sched.RoundRobin),
		Spec:    diskmodel.Barracuda9LP(),
		CR:      si.Mbps(1.5),
		Library: lib,
		Trace:   tr,
		Seed:    17,
	}
	const runs = 6
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	first := results[0]
	if first.Served == 0 {
		t.Fatal("nothing served")
	}
	for i, r := range results[1:] {
		if r.Served != first.Served || r.Rejected != first.Rejected ||
			r.Underruns != first.Underruns || r.Deferrals != first.Deferrals ||
			r.MaxConcurrent != first.MaxConcurrent || r.PeakMemory != first.PeakMemory {
			t.Errorf("concurrent run %d diverged from run 0: %+v vs %+v", i+1, r, first)
		}
		gm0, _ := first.LatencyByN.GrandMean()
		gmi, _ := r.LatencyByN.GrandMean()
		if gm0 != gmi {
			t.Errorf("concurrent run %d latency diverged: %v vs %v", i+1, gmi, gm0)
		}
	}
}
