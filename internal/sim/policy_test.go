package sim

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// harness builds a server wired into a tiny system without running the
// engine, so policy mechanics can be driven by hand.
func harness(t *testing.T, kind sched.Kind, scheme Scheme) *server {
	t.Helper()
	lib, err := catalog.New(catalog.Config{
		Titles: 6, Disks: 1, Spec: diskmodel.Barracuda9LP(), PopularityTheta: 0.271,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{
		Scheme:  scheme,
		Method:  sched.NewMethod(kind),
		Spec:    diskmodel.Barracuda9LP(),
		CR:      si.Mbps(1.5),
		Library: lib,
		Trace:   workload.Trace{Schedule: workload.NewSchedule(si.Minutes(30), []float64{0})},
	}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	sys := &system{cfg: cfg, eng: NewEngine()}
	sys.params = core.Params{TR: si.Mbps(120), CR: si.Mbps(1.5), N: 79, Alpha: 1}
	sys.table = core.NewTable(sys.params, cfg.Method.DLModel(cfg.Spec))
	sys.staticSize = sys.params.StaticSize(cfg.Method.WorstDL(cfg.Spec, sys.params.N), sys.params.N)
	sys.res = &Result{LatencyByN: metrics.NewByN(sys.params.N)}
	srv := newServer(sys, 0)
	sys.servers = []*server{srv}
	return srv
}

// addStream admits a synthetic stream directly.
func addStream(t *testing.T, s *server, id int, viewing si.Seconds) *stream {
	t.Helper()
	st := &stream{
		id:       id,
		place:    s.sys.cfg.Library.Placement(id % s.sys.cfg.Library.Len()),
		required: s.sys.cfg.CR.DataIn(viewing),
		deadline: s.now(),
		active:   true,
	}
	s.streams = append(s.streams, st)
	s.pool.Attach(st.id, s.sys.cfg.CR, s.now())
	s.policy.admit(st)
	s.sys.noteAdmit()
	return st
}

func TestRRPolicyPrefersFreshWhenIdle(t *testing.T) {
	s := harness(t, sched.RoundRobin, Dynamic)
	old := addStream(t, s, 1, si.Minutes(30))
	// Give the old stream a comfortable buffer.
	s.pool.BeginFill(old.id, si.Megabits(15), 0)
	s.pool.CompleteFill(old.id, 0)
	old.started = true
	old.deadline = s.pool.EmptyAt(old.id)
	fresh := addStream(t, s, 2, si.Minutes(30))
	st, start := s.policy.next(0)
	if st != fresh {
		t.Fatalf("next = stream %d, want the fresh stream", st.id)
	}
	if start != 0 {
		t.Errorf("fresh service should start now, got %v", start)
	}
}

func TestRRPolicyUrgentRefillBeatsFresh(t *testing.T) {
	s := harness(t, sched.RoundRobin, Dynamic)
	old := addStream(t, s, 1, si.Minutes(30))
	// A nearly empty buffer: due within the cushion window.
	s.pool.BeginFill(old.id, si.Megabits(0.075), 0) // 0.05 s of content
	s.pool.CompleteFill(old.id, 0)
	old.started = true
	old.deadline = s.pool.EmptyAt(old.id)
	addStream(t, s, 2, si.Minutes(30))
	st, _ := s.policy.next(0)
	if st != old {
		t.Fatalf("next = stream %d, want the starving started stream", st.id)
	}
}

func TestRRPolicyLazyWakeTime(t *testing.T) {
	s := harness(t, sched.RoundRobin, Static)
	st := addStream(t, s, 1, si.Minutes(60))
	s.pool.BeginFill(st.id, s.sys.staticSize, 0)
	s.pool.CompleteFill(st.id, 0)
	st.started = true
	st.deadline = s.pool.EmptyAt(st.id)
	next, start := s.policy.next(0)
	if next != st {
		t.Fatal("want the lone stream")
	}
	if start <= 0 {
		t.Fatalf("lone full buffer should be scheduled lazily, got start %v", start)
	}
	if start >= st.deadline {
		t.Fatalf("start %v must precede the deadline %v", start, st.deadline)
	}
}

func TestSweepPolicyFormsCylinderOrder(t *testing.T) {
	s := harness(t, sched.Sweep, Static)
	// Three streams at different disk positions: stream ids map to titles
	// placed contiguously, so higher id = higher cylinder.
	c := addStream(t, s, 2, si.Minutes(60))
	a := addStream(t, s, 0, si.Minutes(60))
	b := addStream(t, s, 1, si.Minutes(60))
	first, start := s.policy.next(0)
	if first != a {
		t.Fatalf("first serviced = stream %d, want lowest cylinder (0)", first.id)
	}
	if start != 0 {
		t.Errorf("fresh members should start the period now, got %v", start)
	}
	sp := s.policy.(*sweepPolicy)
	order := []int{sp.period[0].id, sp.period[1].id, sp.period[2].id}
	if order[0] != a.id || order[1] != b.id || order[2] != c.id {
		t.Errorf("period order = %v, want [0 1 2]", order)
	}
}

func TestSweepPolicyAdmissionOnlyBetweenPeriods(t *testing.T) {
	s := harness(t, sched.Sweep, Static)
	addStream(t, s, 1, si.Minutes(60))
	if !s.policy.canAdmit() {
		t.Fatal("no period formed yet: admission allowed")
	}
	st, _ := s.policy.next(0) // forms the period
	if st == nil {
		t.Fatal("expected work")
	}
	if s.policy.canAdmit() {
		t.Error("mid-period admission should be blocked")
	}
	s.policy.onServiced(st)
	if !s.policy.canAdmit() {
		t.Error("period exhausted: admission allowed again")
	}
}

func TestGSSPolicyGroupAssignment(t *testing.T) {
	s := harness(t, sched.GSS, Static)
	var members []*stream
	for i := 0; i < 10; i++ {
		members = append(members, addStream(t, s, i, si.Minutes(60)))
	}
	gp := s.policy.(*gssPolicy)
	if len(gp.groups) != 2 {
		t.Fatalf("10 streams with g=8: want 2 groups, got %d", len(gp.groups))
	}
	if len(gp.groups[0]) != 8 || len(gp.groups[1]) != 2 {
		t.Errorf("group sizes = %d, %d; want 8, 2", len(gp.groups[0]), len(gp.groups[1]))
	}
	// Departure shrinks a group; a singleton group vanishes with its
	// last member.
	s.removeStream(members[9])
	s.removeStream(members[8])
	if len(gp.groups) != 1 {
		t.Errorf("want 1 group after emptying the second, got %d", len(gp.groups))
	}
}

func TestGSSPolicySweepsWholeGroup(t *testing.T) {
	s := harness(t, sched.GSS, Static)
	for i := 0; i < 10; i++ {
		addStream(t, s, i, si.Minutes(60))
	}
	st, _ := s.policy.next(0)
	if st == nil {
		t.Fatal("expected work")
	}
	gp := s.policy.(*gssPolicy)
	if len(gp.sweep) != 8 {
		t.Fatalf("sweep covers %d members, want the full group of 8", len(gp.sweep))
	}
	// Service the whole sweep; the rotation then reaches group 2.
	for i := 0; i < 8; i++ {
		st, _ := s.policy.next(0)
		if st == nil {
			t.Fatal("sweep ended early")
		}
		st.delivered = st.required // mark done so next() moves on
		s.policy.onServiced(st)
	}
	st2, _ := s.policy.next(0)
	if st2 == nil {
		t.Fatal("second group never serviced")
	}
	if len(gp.sweep) != 2 {
		t.Errorf("second sweep covers %d, want 2", len(gp.sweep))
	}
}

func TestPolicySkipsFinishedStreams(t *testing.T) {
	for _, kind := range sched.Kinds {
		s := harness(t, kind, Static)
		st := addStream(t, s, 1, si.Minutes(60))
		st.delivered = st.required
		if got, _ := s.policy.next(0); got != nil {
			t.Errorf("%v: finished stream still scheduled", kind)
		}
	}
}

func TestRoomAtFloorsRefills(t *testing.T) {
	s := harness(t, sched.RoundRobin, Dynamic)
	st := addStream(t, s, 1, si.Minutes(60))
	// A full, freshly sized buffer must not be refilled immediately.
	st.size = si.Megabits(1.5) // 1 s of content
	s.pool.BeginFill(st.id, st.size, 0)
	s.pool.CompleteFill(st.id, 0)
	st.started = true
	st.deadline = s.pool.EmptyAt(st.id)
	if got := s.roomAt(st); got <= 0 {
		t.Errorf("roomAt = %v, want a positive wait for a full buffer", got)
	}
	if got := s.roomAt(st); got >= st.deadline {
		t.Errorf("roomAt %v must precede the deadline %v", got, st.deadline)
	}
	// Fresh streams have no floor.
	fresh := addStream(t, s, 2, si.Minutes(60))
	if got := s.roomAt(fresh); got != 0 {
		t.Errorf("fresh roomAt = %v, want 0", got)
	}
}
