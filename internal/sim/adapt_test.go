package sim

import (
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/share"
	"repro/internal/si"
	"repro/internal/workload"
)

// ladderLibrary builds a single-disk library whose titles carry a
// three-rung bitrate ladder (1.5 / 1.0 / 0.5 Mbps).
func ladderLibrary(t *testing.T) (*catalog.Library, []si.BitRate) {
	t.Helper()
	ladder := []si.BitRate{si.Mbps(1.5), si.Mbps(1.0), si.Mbps(0.5)}
	lib, err := catalog.New(catalog.Config{
		Titles:          6,
		Disks:           1,
		Spec:            diskmodel.Barracuda9LP(),
		PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			v := catalog.MPEG1Video(id)
			v.Ladder = ladder
			return v
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib, ladder
}

// ladderConfig is a multi-rate day-sim config with every request stamped
// at its title's top rung.
func ladderConfig(t *testing.T, lib *catalog.Library, ladder []si.BitRate, perDay float64) Config {
	t.Helper()
	tr := workload.Generate(workload.ZipfDay(perDay, 0, si.Hours(3), si.Hours(8)), lib, 11)
	for i, r := range tr.Requests {
		tr.Requests[i].Rate = lib.Video(r.Video).Rate
	}
	return Config{
		Scheme:    Dynamic,
		Method:    sched.NewMethod(sched.RoundRobin),
		Spec:      diskmodel.Barracuda9LP(),
		CR:        ladder[0],
		Rates:     ladder,
		Downgrade: true,
		Library:   lib,
		Trace:     tr,
		Seed:      7,
	}
}

func TestAdaptValidation(t *testing.T) {
	lib := testLibrary(t, 1)
	tr := lightTrace(t, lib, 100, 0.271, 1)
	cfg := testConfig(t, Dynamic, sched.RoundRobin, lib, tr)
	cfg.Adapt = &engine.AdaptConfig{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Adapt without Rates accepted")
	}

	llib, ladder := ladderLibrary(t)
	lcfg := ladderConfig(t, llib, ladder, 500)
	lcfg.Adapt = &engine.AdaptConfig{}
	lcfg.Share = &share.Options{}
	if _, err := Run(lcfg); err == nil {
		t.Fatal("Adapt with Share accepted")
	}

	lcfg.Share = nil
	lcfg.Adapt = &engine.AdaptConfig{Headroom: 1.5}
	if _, err := Run(lcfg); err == nil {
		t.Fatal("out-of-range adaptation headroom accepted")
	}
}

// TestAdaptationSwitchesAndAccounting drives the adaptive arm over an
// overloaded day: downgrading admission parks peak arrivals at low
// rungs, and as the peak recedes the rate map must step them back up —
// rebuffering no more than the reject-only baseline does — while the
// collector keeps a consistent delivered-rung time distribution.
func TestAdaptationSwitchesAndAccounting(t *testing.T) {
	lib, ladder := ladderLibrary(t)
	base := ladderConfig(t, lib, ladder, 2*2500)
	base.Downgrade = false
	reject, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ladderConfig(t, lib, ladder, 2*2500)
	cfg.Adapt = &engine.AdaptConfig{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 {
		t.Fatal("nothing served")
	}
	if res.Underruns > reject.Underruns {
		t.Fatalf("adaptation rebuffered %d times vs the reject-only baseline's %d", res.Underruns, reject.Underruns)
	}
	if res.SwitchesUp == 0 {
		t.Fatalf("no up-switches over an overloaded day (down %d): the rate map never recovered downgraded streams", res.SwitchesDown)
	}
	watch := res.WatchSeconds()
	if watch <= 0 {
		t.Fatal("no delivered-rung watch time recorded")
	}
	tw := res.TimeWeightedRate()
	if tw < ladder[len(ladder)-1] || tw > ladder[0] {
		t.Fatalf("time-weighted rate %v outside the ladder [%v, %v]", tw, ladder[len(ladder)-1], ladder[0])
	}
	if q := res.QoEScore(ladder[0]); q <= 0 || q > 1 {
		t.Fatalf("QoE score %v outside (0, 1]", q)
	}
	t.Logf("served=%d downgrades=%d up=%d down=%d tw=%.3f Mbps watch=%.0fh qoe=%.3f",
		res.Served, res.Downgrades, res.SwitchesUp, res.SwitchesDown,
		float64(tw)/1e6, float64(watch)/3600, res.QoEScore(ladder[0]))
}

// TestAdaptNoTriggerMatchesAdaptOff pins the identity contract from the
// policy side: an adaptation config whose thresholds never fire must
// reproduce the adaptation-off run's results exactly (the byte-identical
// golden contract covers the code-path side).
func TestAdaptNoTriggerMatchesAdaptOff(t *testing.T) {
	// Light enough that no stream ever nears the reservoir: at heavy
	// load streams with negative slack trip the down trigger no matter
	// how small the threshold.
	lib, ladder := ladderLibrary(t)
	base := ladderConfig(t, lib, ladder, 800)
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	// A reservoir this small never catches a schedule that plans fills
	// two service times early, and Sustain this large never matures.
	on.Adapt = &engine.AdaptConfig{Reservoir: 1e-12, Sustain: 1 << 30}
	got, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if got.RateSwitches() != 0 {
		t.Fatalf("no-trigger config switched %d times", got.RateSwitches())
	}
	if got.Served != off.Served || got.Rejected != off.Rejected ||
		got.Underruns != off.Underruns || got.Downgrades != off.Downgrades ||
		got.Deferrals != off.Deferrals || got.MaxConcurrent != off.MaxConcurrent ||
		got.PeakMemory != off.PeakMemory {
		t.Fatalf("no-trigger adaptation diverged from adaptation-off:\n on: served=%d rejected=%d underruns=%d downgrades=%d\noff: served=%d rejected=%d underruns=%d downgrades=%d",
			got.Served, got.Rejected, got.Underruns, got.Downgrades,
			off.Served, off.Rejected, off.Underruns, off.Downgrades)
	}
	if !reflect.DeepEqual(got.ServedByRate, off.ServedByRate) {
		t.Fatalf("no-trigger adaptation shifted the admitted-rung distribution: %v vs %v", got.ServedByRate, off.ServedByRate)
	}
}
