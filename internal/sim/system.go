package sim

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/memmodel"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	// Scheme selects the buffer allocation scheme under test.
	Scheme Scheme

	// Method selects the buffer scheduling method.
	Method sched.Method

	// Spec is the disk model; every disk in the system is identical.
	Spec diskmodel.Spec

	// CR is the streams' consumption rate.
	CR si.BitRate

	// Alpha is the dynamic scheme's inertia slack (default 1).
	Alpha int

	// TLog is the arrival-history window for k estimation (default 40
	// minutes, the paper's Round-Robin choice).
	TLog si.Seconds

	// Library provides titles, placement, and the disk count.
	Library *catalog.Library

	// Trace is the workload to replay.
	Trace workload.Trace

	// MemoryBudget caps the formula-reserved memory across all disks;
	// zero disables memory admission (the latency experiments).
	MemoryBudget si.Bits

	// SampleEvery is the spacing of concurrency/memory samples
	// (default one minute).
	SampleEvery si.Seconds

	// Grace extends the run past the last arrival so in-flight requests
	// finish (default 30 minutes).
	Grace si.Seconds

	// Until cuts the run off early (0 = the trace's full horizon); used
	// to simulate just the ramp-and-peak window of the capacity runs.
	Until si.Seconds

	// PageSize accounts buffer memory in whole pages of this size
	// (0 = exact variable-length accounting, the paper's simplification).
	PageSize si.Bits

	// DisableBubbleUp runs the Round-Robin method as plain Fixed-Stretch
	// (Section 2.2.1): a newcomer waits for the rotation to reach it —
	// every in-service buffer refilled once after its arrival — instead
	// of being serviced right after the in-flight service. Exists for the
	// BubbleUp ablation; ignored by Sweep* and GSS*.
	DisableBubbleUp bool

	// Seed feeds the disks' rotational-delay streams.
	Seed int64
}

func (c *Config) normalize() error {
	if c.Library == nil {
		return fmt.Errorf("sim: config needs a library")
	}
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if err := c.Method.Validate(); err != nil {
		return err
	}
	if c.CR <= 0 || c.CR >= c.Spec.TransferRate {
		return fmt.Errorf("sim: consumption rate %v outside (0, TR)", c.CR)
	}
	switch c.Scheme {
	case Static, Dynamic, Naive:
	default:
		return fmt.Errorf("sim: unknown scheme %d", int(c.Scheme))
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.Alpha < 1 {
		return fmt.Errorf("sim: alpha %d must be >= 1", c.Alpha)
	}
	if c.TLog == 0 {
		c.TLog = si.Minutes(40)
	}
	if c.TLog < 0 {
		return fmt.Errorf("sim: negative TLog %v", c.TLog)
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = si.Minutes(1)
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("sim: negative SampleEvery %v", c.SampleEvery)
	}
	if c.Grace == 0 {
		c.Grace = si.Minutes(30)
	}
	if c.Grace < 0 || c.Until < 0 || c.MemoryBudget < 0 || c.PageSize < 0 {
		return fmt.Errorf("sim: negative Grace, Until, MemoryBudget, or PageSize")
	}
	for _, r := range c.Trace.Requests {
		if r.Disk < 0 || r.Disk >= c.Library.Disks() {
			return fmt.Errorf("sim: trace request %d targets disk %d of %d", r.ID, r.Disk, c.Library.Disks())
		}
	}
	return nil
}

// Result aggregates everything a run measures.
type Result struct {
	// LatencyByN buckets initial latency (seconds) by the number of
	// requests in service at arrival — Fig. 11's quantity.
	LatencyByN *metrics.ByN

	// Served counts requests that received their first data; Rejected
	// counts capacity rejections, RejectedMemory memory-admission
	// rejections, Deferrals admission deferral decisions (one per
	// blocked attempt), and MemoryStalls hard pool-budget stalls.
	Served, Rejected, RejectedMemory int
	Deferrals, MemoryStalls          int

	// Underruns and Starved aggregate buffer starvation across disks —
	// zero under the enforced dynamic scheme, positive for the naive one.
	Underruns int
	Starved   si.Seconds

	// Estimates / EstimateHits give the successful-estimation probability
	// of Figs. 7b/8b; EstimatedK averages kc as in Figs. 7a/8a.
	Estimates, EstimateHits int64
	EstimatedK              metrics.Counter

	// ColdLatency and VCRLatency separate first-request startup from VCR
	// response time (Section 1 treats VCR actions as new requests; their
	// latency is the VCR responsiveness the paper wants improved).
	ColdLatency, VCRLatency metrics.Counter

	// Concurrency and Memory sample the running system (Figs. 6, 14);
	// Reserved samples the governor's formula reservation.
	Concurrency, Memory, Reserved metrics.Series

	// MaxConcurrent is the peak number of requests simultaneously in
	// service across all disks — Fig. 14's y-axis.
	MaxConcurrent int

	// PeakMemory is the largest actual pool usage observed (summed over
	// disks at fill times).
	PeakMemory si.Bits

	// DiskStats snapshots each disk's operation counters.
	DiskStats []diskmodel.ReadStats

	// Horizon is the simulated span the run covered (cutoff plus grace).
	Horizon si.Seconds
}

// DiskUtilization reports the fraction of the run a disk spent busy
// (seeking, rotating, or transferring).
func (r *Result) DiskUtilization(disk int) float64 {
	if disk < 0 || disk >= len(r.DiskStats) || r.Horizon <= 0 {
		return 0
	}
	st := r.DiskStats[disk]
	return float64(st.TotalSeek+st.TotalRotate+st.TotalXfer) / float64(r.Horizon)
}

// SuccessRate reports the successful-estimation probability, or 1 when no
// estimates were checked (nothing to fail).
func (r *Result) SuccessRate() float64 {
	if r.Estimates == 0 {
		return 1
	}
	return float64(r.EstimateHits) / float64(r.Estimates)
}

// system wires the servers, governor, and result collectors together.
type system struct {
	cfg        *Config
	eng        *Engine
	params     core.Params
	table      *core.Table
	staticSize si.Bits
	servers    []*server
	gov        *governor
	res        *Result
	concurrent int
}

// sizeFor returns the dynamic buffer size for a server at load (n, k).
// The receiver server is unused today (all disks share one table) but
// keeps the call sites ready for per-disk heterogeneity.
func (sys *system) sizeFor(_ *server, n, k int) si.Bits { return sys.table.Size(n, k) }

// naiveSizeFor evaluates the naive scheme's Eq. 5 at n+k with the
// method's current-load disk latency.
func (sys *system) naiveSizeFor(n, k int) si.Bits {
	dl := sys.cfg.Method.WorstDL(sys.cfg.Spec, n)
	return sys.params.NaiveSize(dl, n, k)
}

func (sys *system) noteAdmit() {
	sys.concurrent++
	if sys.concurrent > sys.res.MaxConcurrent {
		sys.res.MaxConcurrent = sys.concurrent
	}
}

func (sys *system) noteDepart() { sys.concurrent-- }

// governor implements the shared-memory admission of the capacity
// experiments (Figs. 13–14): each disk reserves the analytical minimum
// memory for its committed load, and an arrival is rejected when the
// total reservation would exceed the budget.
type governor struct {
	sys       *system
	budget    si.Bits
	resv      []si.Bits
	total     si.Bits
	memStatic []si.Bits   // [n] for the static (and naive) schemes
	memDyn    [][]si.Bits // [n][k] for the dynamic scheme
}

func newGovernor(sys *system, budget si.Bits) *governor {
	g := &governor{sys: sys, budget: budget, resv: make([]si.Bits, len(sys.servers))}
	p, m, spec := sys.params, sys.cfg.Method, sys.cfg.Spec
	if sys.cfg.Scheme == Dynamic {
		g.memDyn = make([][]si.Bits, p.N+1)
		for n := 1; n <= p.N; n++ {
			g.memDyn[n] = make([]si.Bits, p.N-n+1)
			for k := 0; k <= p.N-n; k++ {
				g.memDyn[n][k] = memmodel.MinDynamic(p, m, spec, n, k)
			}
		}
	} else {
		// The naive scheme has no memory theory of its own; reserve
		// like the static scheme (conservative).
		g.memStatic = make([]si.Bits, p.N+1)
		for n := 1; n <= p.N; n++ {
			g.memStatic[n] = memmodel.MinStatic(p, m, spec, n)
		}
	}
	return g
}

// memFor reports the reservation a disk needs for count committed
// requests.
func (g *governor) memFor(s *server, count int) si.Bits {
	if count <= 0 {
		return 0
	}
	if g.memDyn != nil {
		k := s.estimate(count)
		if k > g.sys.params.N-count {
			k = g.sys.params.N - count
		}
		return g.memDyn[count][k]
	}
	return g.memStatic[count]
}

// tryGrow attempts to reserve memory for one more request on s's disk.
func (g *governor) tryGrow(s *server) bool {
	newMem := g.memFor(s, s.committed()+1)
	if g.total-g.resv[s.id]+newMem > g.budget {
		return false
	}
	g.total += newMem - g.resv[s.id]
	g.resv[s.id] = newMem
	return true
}

// shrink refreshes a disk's reservation after a departure.
func (g *governor) shrink(s *server) {
	newMem := g.memFor(s, s.committed())
	g.total += newMem - g.resv[s.id]
	g.resv[s.id] = newMem
}

// DebugSample, when set, observes each periodic sample with a lazy
// per-stream (size, level) dump for disk 0. Debug-only.
var DebugSample func(dump func() [][2]si.Bits, now si.Seconds, usage si.Bits)

// levelDump returns per-stream (size, level) pairs for disk 0 at now.
func (sys *system) levelDump(now si.Seconds) [][2]si.Bits {
	var out [][2]si.Bits
	for _, st := range sys.servers[0].streams {
		out = append(out, [2]si.Bits{st.size, sys.servers[0].pool.Level(st.id, now)})
	}
	return out
}

// Run executes one simulation and returns its measurements.
//
// Run is safe to call concurrently from multiple goroutines: all mutable
// state (engine, disks, pools, RNG streams) is created per call, the
// Config is copied, and a *catalog.Library is immutable after
// construction, so independent runs may share one. Given equal configs —
// including Seed — concurrent runs produce identical Results; the
// experiment harness's parallel runner relies on both properties.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sys := &system{cfg: &cfg, eng: NewEngine()}
	sys.params = core.Params{
		TR:    cfg.Spec.TransferRate,
		CR:    cfg.CR,
		N:     core.DeriveN(cfg.Spec.TransferRate, cfg.CR),
		Alpha: cfg.Alpha,
	}
	if err := sys.params.Validate(); err != nil {
		return nil, err
	}
	sys.table = core.NewTable(sys.params, cfg.Method.DLModel(cfg.Spec))
	sys.staticSize = sys.params.StaticSize(cfg.Method.WorstDL(cfg.Spec, sys.params.N), sys.params.N)
	// A chunked library must be able to serve the largest buffer the
	// server will ever allocate from a single chunk.
	if maxRead := cfg.Library.MaxRead(); maxRead < sys.staticSize {
		return nil, fmt.Errorf("sim: library max read %v below the largest buffer %v — rebuild the library with a larger MaxRead",
			maxRead, sys.staticSize)
	}
	sys.res = &Result{LatencyByN: metrics.NewByN(sys.params.N)}

	for d := 0; d < cfg.Library.Disks(); d++ {
		sys.servers = append(sys.servers, newServer(sys, d))
	}
	if cfg.MemoryBudget > 0 {
		sys.gov = newGovernor(sys, cfg.MemoryBudget)
	}

	// Schedule arrivals.
	horizon := cfg.Trace.Schedule.Horizon()
	cutoff := horizon
	if cfg.Until > 0 && cfg.Until < cutoff {
		cutoff = cfg.Until
	}
	for _, req := range cfg.Trace.Requests {
		if req.Arrival > cutoff {
			break
		}
		req := req
		sys.eng.Schedule(req.Arrival, func() { sys.servers[req.Disk].onArrival(req) })
	}

	// Periodic sampler.
	end := cutoff + cfg.Grace
	var sample func()
	sample = func() {
		now := sys.eng.Now()
		var usage si.Bits
		for _, s := range sys.servers {
			usage += s.pool.Usage(now)
		}
		if DebugSample != nil {
			DebugSample(func() [][2]si.Bits { return sys.levelDump(now) }, now, usage)
		}
		sys.res.Concurrency.Add(now, float64(sys.concurrent))
		sys.res.Memory.Add(now, float64(usage))
		if sys.gov != nil {
			sys.res.Reserved.Add(now, float64(sys.gov.total))
		}
		if next := now + cfg.SampleEvery; next <= end {
			sys.eng.Schedule(next, sample)
		}
	}
	sys.eng.Schedule(0, sample)

	sys.eng.Run(end)

	sys.res.Horizon = end

	// Finalize: settle closed estimation windows and gather pool stats.
	for _, s := range sys.servers {
		s.resolveEstimates(sys.eng.Now())
		st := s.pool.Stats()
		sys.res.Underruns += st.Underruns
		sys.res.Starved += st.Starved
		sys.res.PeakMemory += st.HighWater
		sys.res.DiskStats = append(sys.res.DiskStats, s.disk.Stats())
	}
	return sys.res, nil
}
