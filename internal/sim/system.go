// Package sim is the discrete-event simulation driver over the streaming
// runtime in internal/engine: it replays a workload.Trace under a virtual
// clock and collects the paper's measurements (latency by load, memory
// and concurrency series, estimation success) through the engine's
// Observer interface. All admission, allocation, and scheduling mechanics
// live in the engine; the simulator owns only the clock, the workload,
// the optional memory governor, and the result bookkeeping.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/engine"
	"repro/internal/memmodel"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/share"
	"repro/internal/si"
	"repro/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	// Scheme selects the buffer allocation scheme under test.
	Scheme Scheme

	// Method selects the buffer scheduling method.
	Method sched.Method

	// Spec is the disk model; every disk in the system is identical.
	Spec diskmodel.Spec

	// CR is the streams' consumption rate — the default rate for every
	// request whose Rate field is zero, and the base rate the sizing
	// tables are built for.
	CR si.BitRate

	// Rates lists additional per-stream consumption rates the run may
	// carry (the catalog's ladder rungs, for multi-rate workloads).
	// Empty keeps the paper's single-rate regime; see engine.Config.Rates.
	Rates []si.BitRate

	// Downgrade enables downgrading admission: an arrival that does not
	// fit at its requested rate steps down its title's ladder instead of
	// being rejected (engine.Config.Downgrade). Requires Rates.
	Downgrade bool

	// Adapt, when non-nil, enables mid-stream bitrate adaptation
	// (engine.Config.Adapt): started streams step down their title's
	// ladder when buffer occupancy falls inside the reservoir and back
	// up toward the requested rung on sustained bandwidth headroom.
	// Requires Rates; cannot combine with Share (a shared stream serves
	// many viewers at one rate and must not be re-rated under one
	// viewer's buffer signal). Switch counts and the delivered-rung time
	// distribution land in Result.SwitchesUp/SwitchesDown/RungSeconds.
	Adapt *engine.AdaptConfig

	// Alpha is the dynamic scheme's inertia slack (default 1).
	Alpha int

	// TLog is the arrival-history window for k estimation (default 40
	// minutes, the paper's Round-Robin choice).
	TLog si.Seconds

	// ChurnSafeAdmission selects the dynamic scheme's per-buffer
	// admission-budget enforcement (engine.Config.ChurnSafeAdmission):
	// required for the sizing guarantee when sessions churn within a
	// buffer's usage period, as in the large-N scale scenario.
	ChurnSafeAdmission bool

	// DeadlineAwareBubbleUp gates BubbleUp's immediate newcomer service
	// on the refill backlog's schedule (engine.Config.DeadlineAwareBubbleUp):
	// required at loads where deadline clusters form, as in the large-N
	// scale scenario.
	DeadlineAwareBubbleUp bool

	// RampAwarePlanning plans worst-case services at the admission
	// window's full load (engine.Config.RampAwarePlanning): required
	// when hard ramps deliver the predicted k admissions inside a
	// usage period, as in the fleet scenario.
	RampAwarePlanning bool

	// Library provides titles, placement, and the disk count.
	Library *catalog.Library

	// Trace is the workload to replay.
	Trace workload.Trace

	// MemoryBudget caps the formula-reserved memory across all disks;
	// zero disables memory admission (the latency experiments).
	MemoryBudget si.Bits

	// SampleEvery is the spacing of concurrency/memory samples
	// (default one minute).
	SampleEvery si.Seconds

	// Grace extends the run past the last arrival so in-flight requests
	// finish (default 30 minutes).
	Grace si.Seconds

	// Until cuts the run off early (0 = the trace's full horizon); used
	// to simulate just the ramp-and-peak window of the capacity runs.
	Until si.Seconds

	// PageSize accounts buffer memory in whole pages of this size
	// (0 = exact variable-length accounting, the paper's simplification).
	PageSize si.Bits

	// DisableBubbleUp runs the Round-Robin method as plain Fixed-Stretch
	// (Section 2.2.1): a newcomer waits for the rotation to reach it —
	// every in-service buffer refilled once after its arrival — instead
	// of being serviced right after the in-flight service. Exists for the
	// BubbleUp ablation; ignored by Sweep* and GSS*.
	DisableBubbleUp bool

	// Seed feeds the disks' rotational-delay streams.
	Seed int64

	// SizeTable, when non-nil, is handed to the engine as the precomputed
	// dynamic sizing table instead of rebuilding the O(N²) table per run.
	// It must have been built with core.NewTable under this config's
	// (Spec, Method, CR, Alpha); the engine verifies and rejects a
	// mismatched table. The table is immutable, so concurrent runs — the
	// experiment harness's replications — may share one.
	SizeTable *core.Table

	// Share, when non-nil, routes arrivals through a stream-sharing
	// layer (internal/share) with these options: hot titles' prefixes
	// are pinned in pool memory and concurrent viewers of one title
	// merge onto one disk stream. Engine-level Result fields then count
	// engine streams, not viewers; the viewer-level accounting is in
	// Result.Sharing.
	Share *share.Options

	// Observer, when set, receives every engine instrumentation callback
	// alongside the simulator's own result collector. Simulation results
	// are independent of observers; use it for tracing and debugging.
	Observer engine.Observer
}

func (c *Config) normalize() error {
	if c.Library == nil {
		return fmt.Errorf("sim: config needs a library")
	}
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if err := c.Method.Validate(); err != nil {
		return err
	}
	if c.CR <= 0 || c.CR >= c.Spec.TransferRate {
		return fmt.Errorf("sim: consumption rate %v outside (0, TR)", c.CR)
	}
	switch c.Scheme {
	case Static, Dynamic, Naive, Knee:
	default:
		return fmt.Errorf("sim: unknown scheme %d", int(c.Scheme))
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.Alpha < 1 {
		return fmt.Errorf("sim: alpha %d must be >= 1", c.Alpha)
	}
	if c.TLog == 0 {
		c.TLog = si.Minutes(40)
	}
	if c.TLog < 0 {
		return fmt.Errorf("sim: negative TLog %v", c.TLog)
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = si.Minutes(1)
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("sim: negative SampleEvery %v", c.SampleEvery)
	}
	if c.Grace == 0 {
		c.Grace = si.Minutes(30)
	}
	if c.Grace < 0 || c.Until < 0 || c.MemoryBudget < 0 || c.PageSize < 0 {
		return fmt.Errorf("sim: negative Grace, Until, MemoryBudget, or PageSize")
	}
	if c.Adapt != nil {
		if len(c.Rates) == 0 {
			return fmt.Errorf("sim: Adapt requires a multi-rate ladder (Config.Rates)")
		}
		if c.Share != nil {
			return fmt.Errorf("sim: Adapt cannot combine with Share (a shared stream serves many viewers at one rate)")
		}
	}
	for _, r := range c.Trace.Requests {
		if r.Disk < 0 || r.Disk >= c.Library.Disks() {
			return fmt.Errorf("sim: trace request %d targets disk %d of %d", r.ID, r.Disk, c.Library.Disks())
		}
	}
	return nil
}

// Result aggregates everything a run measures.
type Result struct {
	// LatencyByN buckets initial latency (seconds) by the number of
	// requests in service at arrival — Fig. 11's quantity.
	LatencyByN *metrics.ByN

	// Served counts requests that received their first data; Rejected
	// counts capacity rejections, RejectedMemory memory-admission
	// rejections, Deferrals admission deferral decisions (one per
	// blocked attempt), and MemoryStalls hard pool-budget stalls.
	Served, Rejected, RejectedMemory int
	Deferrals, MemoryStalls          int

	// Underruns and Starved aggregate buffer starvation across disks —
	// zero under the enforced dynamic scheme, positive for the naive one.
	Underruns int
	Starved   si.Seconds

	// Downgrades counts admissions that stepped down the title's ladder
	// (zero unless Config.Downgrade); StarvedStreams counts distinct
	// streams that underran at least once — the numerator of the
	// starvation probability StarvedStreams/Served.
	Downgrades     int
	StarvedStreams int

	// ServedByRate counts served streams by the consumption rate they
	// were admitted at — the delivered-rung distribution for multi-rate
	// runs. Nil for single-rate runs. Mid-stream adaptation does not
	// update it: it stays the admission-time distribution, while
	// RungSeconds carries the delivered picture.
	ServedByRate map[si.BitRate]int

	// SwitchesUp and SwitchesDown count mid-stream adaptation switches
	// (the engine's OnRateSwitch); zero unless Config.Adapt is set.
	SwitchesUp, SwitchesDown int

	// RungSeconds integrates watch time by delivered rung: each started
	// stream contributes the seconds it spent consuming at each rate,
	// across any mid-stream switches. Nil for single-rate runs. Its sum
	// is the run's total watch time; TimeWeightedRate is its mean.
	RungSeconds map[si.BitRate]si.Seconds

	// Estimates / EstimateHits give the successful-estimation probability
	// of Figs. 7b/8b; EstimatedK averages kc as in Figs. 7a/8a.
	Estimates, EstimateHits int64
	EstimatedK              metrics.Counter

	// ColdLatency and VCRLatency separate first-request startup from VCR
	// response time (Section 1 treats VCR actions as new requests; their
	// latency is the VCR responsiveness the paper wants improved).
	ColdLatency, VCRLatency metrics.Counter

	// Concurrency and Memory sample the running system (Figs. 6, 14);
	// Reserved samples the governor's formula reservation.
	Concurrency, Memory, Reserved metrics.Series

	// MaxConcurrent is the peak number of requests simultaneously in
	// service across all disks — Fig. 14's y-axis.
	MaxConcurrent int

	// PeakMemory is the largest actual pool usage observed (summed over
	// disks at fill times).
	PeakMemory si.Bits

	// DiskStats snapshots each disk's operation counters.
	DiskStats []diskmodel.ReadStats

	// Horizon is the simulated span the run covered (cutoff plus grace).
	Horizon si.Seconds

	// Sharing holds the sharing layer's viewer-level statistics; nil
	// when the run did not share (Config.Share unset).
	Sharing *share.Stats
}

// DiskUtilization reports the fraction of the run a disk spent busy
// (seeking, rotating, or transferring).
func (r *Result) DiskUtilization(disk int) float64 {
	if disk < 0 || disk >= len(r.DiskStats) || r.Horizon <= 0 {
		return 0
	}
	st := r.DiskStats[disk]
	return float64(st.TotalSeek+st.TotalRotate+st.TotalXfer) / float64(r.Horizon)
}

// SuccessRate reports the successful-estimation probability, or 1 when no
// estimates were checked (nothing to fail).
func (r *Result) SuccessRate() float64 {
	if r.Estimates == 0 {
		return 1
	}
	return float64(r.EstimateHits) / float64(r.Estimates)
}

// StarvationProb reports the fraction of served streams that underran at
// least once — the per-viewer QoE complement of the Underruns total.
func (r *Result) StarvationProb() float64 {
	if r.Served == 0 {
		return 0
	}
	return float64(r.StarvedStreams) / float64(r.Served)
}

// RateSwitches totals mid-stream switches in both directions.
func (r *Result) RateSwitches() int { return r.SwitchesUp + r.SwitchesDown }

// rungsSorted lists RungSeconds' rungs in ascending rate order, so the
// float accumulations below sum in a deterministic order — map iteration
// order would make golden reports differ run to run.
func (r *Result) rungsSorted() []si.BitRate {
	rates := make([]si.BitRate, 0, len(r.RungSeconds))
	for rate := range r.RungSeconds {
		rates = append(rates, rate)
	}
	sort.Slice(rates, func(i, j int) bool { return rates[i] < rates[j] })
	return rates
}

// WatchSeconds totals delivered watch time across rungs (zero for
// single-rate runs, which do not keep the distribution).
func (r *Result) WatchSeconds() si.Seconds {
	var total si.Seconds
	for _, rate := range r.rungsSorted() {
		total += r.RungSeconds[rate]
	}
	return total
}

// TimeWeightedRate is the mean delivered rung weighted by watch time —
// Σ rate·seconds / Σ seconds over RungSeconds. This is the QoE layer's
// "what rate did viewers actually watch at", which admission-time
// distributions miss once mid-stream switching moves streams across
// rungs mid-viewing. Zero when no rung time was recorded.
func (r *Result) TimeWeightedRate() si.BitRate {
	var num float64
	var den si.Seconds
	for _, rate := range r.rungsSorted() {
		s := r.RungSeconds[rate]
		num += float64(rate) * float64(s)
		den += s
	}
	if den <= 0 {
		return 0
	}
	return si.BitRate(num / float64(den))
}

// QoEScore is the rebuffer-aware quality score the adaptation experiment
// ranks its arms by, normalized to the ladder's top rung: the
// time-weighted delivered rung as a fraction of top, minus the fraction
// of watch time spent rebuffering (arXiv:1108.0187's starvation cost
// dominates perceived quality, so it carries full weight), minus a 2%
// penalty per switch per served stream (the stability term of Huang et
// al.'s buffer-based adaptation). Zero when the run kept no rung
// distribution.
func (r *Result) QoEScore(top si.BitRate) float64 {
	watch := r.WatchSeconds()
	if watch <= 0 || top <= 0 {
		return 0
	}
	served := r.Served
	if served < 1 {
		served = 1
	}
	return float64(r.TimeWeightedRate())/float64(top) -
		float64(r.Starved)/float64(watch) -
		0.02*float64(r.RateSwitches())/float64(served)
}

// collector translates the engine's Observer callbacks into the Result the
// experiments consume. It is the simulator's entire measurement apparatus:
// the engine itself keeps no counters.
type collector struct {
	engine.NopObserver
	res        *Result
	concurrent int
	multi      bool // multi-rate run: keep the ServedByRate distribution
}

func (c *collector) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	c.concurrent++
	if c.concurrent > c.res.MaxConcurrent {
		c.res.MaxConcurrent = c.concurrent
	}
}

func (c *collector) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	c.concurrent--
	if st.Starved() {
		c.res.StarvedStreams++
	}
	if st.Started() {
		c.addRungTime(st.Rate(), now-st.RateSince())
	}
}

func (c *collector) OnRateSwitch(disk int, st *engine.Stream, from, to si.BitRate, now si.Seconds) {
	if to > from {
		c.res.SwitchesUp++
	} else {
		c.res.SwitchesDown++
	}
	// RateSince still reports the start of the epoch that ends here.
	c.addRungTime(from, now-st.RateSince())
}

// addRungTime accrues watch time at one delivered rung. Multi-rate runs
// only; single-rate runs keep Result.RungSeconds nil.
func (c *collector) addRungTime(rate si.BitRate, dur si.Seconds) {
	if !c.multi || dur <= 0 {
		return
	}
	if c.res.RungSeconds == nil {
		c.res.RungSeconds = make(map[si.BitRate]si.Seconds)
	}
	c.res.RungSeconds[rate] += dur
}

func (c *collector) OnDowngrade(disk int, req workload.Request, from, to si.BitRate, now si.Seconds) {
	c.res.Downgrades++
}

func (c *collector) OnReject(disk int, req workload.Request, reason engine.RejectReason, now si.Seconds) {
	if reason == engine.RejectMemory {
		c.res.RejectedMemory++
	} else {
		c.res.Rejected++
	}
}

func (c *collector) OnDefer(disk int, now si.Seconds) { c.res.Deferrals++ }

func (c *collector) OnStall(disk int, now si.Seconds) { c.res.MemoryStalls++ }

func (c *collector) OnStart(disk int, st *engine.Stream, now si.Seconds) {
	c.res.Served++
	if c.multi {
		if c.res.ServedByRate == nil {
			c.res.ServedByRate = make(map[si.BitRate]int)
		}
		c.res.ServedByRate[st.Rate()]++
	}
	lat := float64(now - st.Req().Arrival)
	c.res.LatencyByN.Add(st.NAtArrival(), lat)
	if st.Req().VCR {
		c.res.VCRLatency.Add(lat)
	} else {
		c.res.ColdLatency.Add(lat)
	}
}

func (c *collector) OnEstimate(disk int, kc int, size si.Bits, now si.Seconds) {
	c.res.EstimatedK.Add(float64(kc))
}

func (c *collector) OnEstimateResolved(disk int, hit bool, now si.Seconds) {
	c.res.Estimates++
	if hit {
		c.res.EstimateHits++
	}
}

// governor implements the shared-memory admission of the capacity
// experiments (Figs. 13–14) as an engine.Gate: each disk reserves the
// analytical minimum memory for its committed load, and an arrival is
// rejected when the total reservation would exceed the budget.
type governor struct {
	params    core.Params
	budget    si.Bits
	resv      []si.Bits
	total     si.Bits
	memStatic []si.Bits   // [n] for the static (and naive) schemes
	memDyn    [][]si.Bits // [n][k] for the dynamic scheme
}

func newGovernor(cfg *Config, p core.Params, disks int) *governor {
	g := &governor{params: p, budget: cfg.MemoryBudget, resv: make([]si.Bits, disks)}
	m, spec := cfg.Method, cfg.Spec
	if cfg.Scheme == Dynamic {
		g.memDyn = make([][]si.Bits, p.N+1)
		for n := 1; n <= p.N; n++ {
			g.memDyn[n] = make([]si.Bits, p.N-n+1)
			for k := 0; k <= p.N-n; k++ {
				g.memDyn[n][k] = memmodel.MinDynamic(p, m, spec, n, k)
			}
		}
	} else {
		// The naive scheme has no memory theory of its own; reserve
		// like the static scheme (conservative).
		g.memStatic = make([]si.Bits, p.N+1)
		for n := 1; n <= p.N; n++ {
			g.memStatic[n] = memmodel.MinStatic(p, m, spec, n)
		}
	}
	return g
}

// memFor reports the reservation a disk needs for count committed
// requests.
func (g *governor) memFor(d *engine.Disk, count int) si.Bits {
	if count <= 0 {
		return 0
	}
	if g.memDyn != nil {
		k := d.Estimate(count)
		if k > g.params.N-count {
			k = g.params.N - count
		}
		return g.memDyn[count][k]
	}
	return g.memStatic[count]
}

// TryAdmit attempts to reserve memory for one more request on d's disk.
func (g *governor) TryAdmit(d *engine.Disk) bool {
	newMem := g.memFor(d, d.Committed()+1)
	if g.total-g.resv[d.ID()]+newMem > g.budget {
		return false
	}
	g.total += newMem - g.resv[d.ID()]
	g.resv[d.ID()] = newMem
	return true
}

// Release refreshes a disk's reservation after a departure.
func (g *governor) Release(d *engine.Disk) {
	newMem := g.memFor(d, d.Committed())
	g.total += newMem - g.resv[d.ID()]
	g.resv[d.ID()] = newMem
}

// DebugSample, when set, observes each periodic sample with a lazy
// per-stream (size, level) dump for disk 0. Debug-only.
var DebugSample func(dump func() [][2]si.Bits, now si.Seconds, usage si.Bits)

// levelDump returns per-stream (size, level) pairs for disk 0 at now.
func levelDump(sys *engine.System, now si.Seconds) [][2]si.Bits {
	var out [][2]si.Bits
	d := sys.Disk(0)
	for _, st := range d.Streams() {
		out = append(out, [2]si.Bits{st.Size(), d.Pool().Level(st.ID(), now)})
	}
	return out
}

// Run executes one simulation and returns its measurements.
//
// Run is safe to call concurrently from multiple goroutines: all mutable
// state (clock, disks, pools, RNG streams) is created per call, the
// Config is copied, and a *catalog.Library is immutable after
// construction, so independent runs may share one. Given equal configs —
// including Seed — concurrent runs produce identical Results; the
// experiment harness's parallel runner relies on both properties.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	clock := engine.NewVirtualClock()
	col := &collector{multi: len(cfg.Rates) > 0}
	var obs engine.Observer = col
	if cfg.Observer != nil {
		obs = engine.Observers{col, cfg.Observer}
	}
	sys, err := engine.New(engine.Config{
		Clock:                 clock,
		Allocator:             AllocatorFor(cfg.Scheme),
		Method:                cfg.Method,
		Spec:                  cfg.Spec,
		CR:                    cfg.CR,
		Rates:                 cfg.Rates,
		Downgrade:             cfg.Downgrade,
		Alpha:                 cfg.Alpha,
		TLog:                  cfg.TLog,
		ChurnSafeAdmission:    cfg.ChurnSafeAdmission,
		DeadlineAwareBubbleUp: cfg.DeadlineAwareBubbleUp,
		RampAwarePlanning:     cfg.RampAwarePlanning,
		Adapt:                 cfg.Adapt,
		Library:               cfg.Library,
		PageSize:              cfg.PageSize,
		DisableBubbleUp:       cfg.DisableBubbleUp,
		Seed:                  cfg.Seed,
		SizeTable:             cfg.SizeTable,
		Observer:              obs,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{LatencyByN: metrics.NewByN(sys.Params().N)}
	col.res = res

	var gov *governor
	if cfg.MemoryBudget > 0 {
		gov = newGovernor(&cfg, sys.Params(), sys.Disks())
		sys.SetGate(gov)
	}

	// The sharing layer fronts arrivals when configured; it attaches
	// itself to the system's observer fan-out.
	arrive := sys.OnArrival
	var layer *share.Layer
	if cfg.Share != nil {
		layer, err = share.New(share.Config{
			System:  sys,
			Library: cfg.Library,
			CR:      cfg.CR,
			Options: *cfg.Share,
		})
		if err != nil {
			return nil, err
		}
		arrive = layer.Submit
	}

	// Schedule arrivals.
	horizon := cfg.Trace.Schedule.Horizon()
	cutoff := horizon
	if cfg.Until > 0 && cfg.Until < cutoff {
		cutoff = cfg.Until
	}
	for _, req := range cfg.Trace.Requests {
		if req.Arrival > cutoff {
			break
		}
		req := req
		clock.Schedule(req.Arrival, func() { arrive(req) })
	}

	// Periodic sampler.
	end := cutoff + cfg.Grace
	var sample func()
	sample = func() {
		now := clock.Now()
		var usage si.Bits
		for i := 0; i < sys.Disks(); i++ {
			usage += sys.Disk(i).Pool().Usage(now)
		}
		if DebugSample != nil {
			DebugSample(func() [][2]si.Bits { return levelDump(sys, now) }, now, usage)
		}
		res.Concurrency.Add(now, float64(col.concurrent))
		res.Memory.Add(now, float64(usage))
		if gov != nil {
			res.Reserved.Add(now, float64(gov.total))
		}
		if next := now + cfg.SampleEvery; next <= end {
			clock.Schedule(next, sample)
		}
	}
	clock.Schedule(0, sample)

	clock.Run(end)

	res.Horizon = end

	// Finalize: settle closed estimation windows and gather pool stats.
	// Streams still in service never fired OnDepart, so sweep them for
	// the starved-stream count too.
	for i := 0; i < sys.Disks(); i++ {
		d := sys.Disk(i)
		d.ResolveEstimates(clock.Now())
		st := d.Pool().Stats()
		res.Underruns += st.Underruns
		res.Starved += st.Starved
		res.PeakMemory += st.HighWater
		res.DiskStats = append(res.DiskStats, d.DiskStats())
		for _, s := range d.Streams() {
			if s.Starved() {
				res.StarvedStreams++
			}
			// Still in service at the horizon: close its rung epoch here,
			// mirroring the starved-stream sweep above.
			if s.Started() {
				col.addRungTime(s.Rate(), clock.Now()-s.RateSince())
			}
		}
	}
	if layer != nil {
		stats := layer.Stats()
		res.Sharing = &stats
	}
	return res, nil
}
