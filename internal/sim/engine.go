// Package sim contains the discrete-event simulation of the paper's
// evaluation (Section 5): a virtual-time event engine, per-disk server
// processes implementing the three buffer scheduling methods under the
// static, dynamic, and naive allocation schemes, and a multi-disk system
// with shared-memory admission for the capacity experiments.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/si"
)

// Engine is a virtual-clock discrete-event loop. Callbacks scheduled at a
// time run in time order; ties run in scheduling order, which keeps runs
// deterministic.
type Engine struct {
	now    si.Seconds
	events eventHeap
	seq    int64
}

// Event is a scheduled callback. Cancel it to make it a no-op.
type Event struct {
	at       si.Seconds
	seq      int64
	fn       func()
	canceled bool
	index    int // heap position, -1 once popped
}

// Cancel prevents the event's callback from running. Canceling an already
// fired or canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() si.Seconds { return e.now }

// Schedule registers fn to run at time at, which must not precede the
// current time. It returns a handle for cancellation.
func (e *Engine) Schedule(at si.Seconds, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", at, e.now))
	}
	if fn == nil {
		panic("sim: scheduling a nil callback")
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run delay from now.
func (e *Engine) After(delay si.Seconds, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.Schedule(e.now+delay, fn)
}

// Run processes events until the queue empties or the clock passes until.
// Events scheduled exactly at until still run.
func (e *Engine) Run(until si.Seconds) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		if next.canceled {
			continue
		}
		e.now = next.at
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending reports the number of events still queued (including canceled
// ones not yet drained).
func (e *Engine) Pending() int { return len(e.events) }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
