package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/si"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run(10)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want clock advanced to 10", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(1, func() { got = append(got, "a") })
	e.Schedule(1, func() { got = append(got, "b") })
	e.Run(2)
	if got[0] != "a" || got[1] != "b" {
		t.Errorf("tie order = %v", got)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(1, func() {
		got = append(got, 1)
		e.After(1, func() { got = append(got, 2) })
	})
	e.Run(5)
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("nested = %v", got)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestEngineRunBoundary(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(5, func() { ran++ })
	e.Schedule(5.0001, func() { ran++ })
	e.Run(5) // events exactly at the boundary run; later ones do not
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	e.Run(6)
	if ran != 2 {
		t.Errorf("ran = %d, want 2 after extending", ran)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(1, func() { ran = true })
	ev.Cancel()
	ev.Cancel() // double cancel is a no-op
	(*Event)(nil).Cancel()
	e.Run(2)
	if ran {
		t.Error("canceled event ran")
	}
}

func TestEnginePanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run(5)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("past", func() { e.Schedule(1, func() {}) })
	mustPanic("nil fn", func() { e.Schedule(10, nil) })
	mustPanic("negative delay", func() { e.After(-1, func() {}) })
}

// Property: any set of events runs in non-decreasing time order and the
// clock never goes backward inside callbacks.
func TestEngineMonotoneClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := si.Seconds(-1)
		ok := true
		for _, d := range delays {
			at := si.Seconds(d)
			e.Schedule(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run(1 << 17)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
