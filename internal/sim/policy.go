package sim

import (
	"repro/internal/sched"
	"repro/internal/si"
)

// policy is the method-specific part of a disk server: when new requests
// may be admitted, which stream is serviced next, and how late that
// service may start.
//
// All three implementations schedule lazily — a service starts as late as
// the batch's deadlines safely allow — which is what gives Sweep* and
// GSS* their memory-sharing behaviour and keeps the static scheme's
// servers idle between widely spaced refills.
type policy interface {
	// admit incorporates a newly admitted stream.
	admit(st *stream)
	// remove drops a departed stream.
	remove(st *stream)
	// canAdmit reports whether the method's timing rules allow admitting
	// new requests at this moment (BubbleUp: always; Sweep*: between
	// periods; GSS*: between groups).
	canAdmit() bool
	// next returns the stream to service next and the latest safe start
	// time, or nil when nothing needs service. It must be idempotent.
	next(now si.Seconds) (*stream, si.Seconds)
	// onServiced records that the stream returned by next was serviced.
	onServiced(st *stream)
}

// DebugForm, when set, observes every Sweep* period formation. Debug-only.
var DebugForm func(now si.Seconds, ids []int)

func newPolicy(s *server) policy {
	switch s.sys.cfg.Method.Kind {
	case sched.RoundRobin:
		return &rrPolicy{s: s, bubbleUp: !s.sys.cfg.DisableBubbleUp}
	case sched.Sweep:
		return &sweepPolicy{s: s}
	default:
		return &gssPolicy{s: s, cur: -1}
	}
}

// rrPolicy is Round-Robin with BubbleUp: earliest-deadline-first over the
// streams, which reduces to cyclic order in steady state (equal buffer
// sizes imply equally spaced deadlines) and services fresh streams —
// whose deadline is their admission instant — immediately.
type rrPolicy struct {
	s        *server
	bubbleUp bool
}

func (p *rrPolicy) admit(*stream)      {}
func (p *rrPolicy) remove(*stream)     {}
func (p *rrPolicy) canAdmit() bool     { return true }
func (p *rrPolicy) onServiced(*stream) {}

func (p *rrPolicy) next(now si.Seconds) (*stream, si.Seconds) {
	// Started streams have viewers draining their buffers: hard deadlines.
	// Fresh streams (first fill pending) are BubbleUp work: serviced
	// immediately, but never at the cost of starving a started buffer.
	var started, fresh *stream
	var startedD si.Seconds
	for _, st := range p.s.streams {
		if !st.needService() {
			continue
		}
		if !st.started {
			if fresh == nil || st.req.Arrival < fresh.req.Arrival {
				fresh = st
			}
			continue
		}
		if d := p.s.deadline(st); started == nil || d < startedD {
			started, startedD = st, d
		}
	}
	if started == nil && fresh == nil {
		return nil, 0
	}
	w := p.s.worstService(p.s.n())
	if started != nil && startedD-(lazyMarginServices+1)*w <= now {
		if room := p.s.roomAt(started); room > now {
			return started, room // full buffer: wait for it to drain
		}
		return started, now // a hard deadline is due (within the cushion)
	}
	if fresh != nil {
		if p.bubbleUp {
			return fresh, now // BubbleUp: no urgent refill, serve the newcomer
		}
		// Fixed-Stretch: the newcomer waits until the rotation reaches
		// it — every started stream refilled once after its arrival.
		reached := true
		for _, st := range p.s.streams {
			if st.started && st.active && st.lastFillAt < fresh.req.Arrival {
				reached = false
				break
			}
		}
		if reached {
			return fresh, now
		}
		// Otherwise fall through to refill rotation below (started may
		// be nil only if no started stream needs service, in which case
		// the rotation cannot progress and the newcomer is served).
		if started == nil {
			return fresh, now
		}
	}
	// Idle long enough that laziness matters: wake at the latest start
	// that still lets every due buffer be refilled in deadline order.
	scratch := p.s.deadlineScratch[:0]
	for _, st := range p.s.streams {
		if st.needService() {
			scratch = append(scratch, float64(p.s.deadline(st)))
		}
	}
	p.s.deadlineScratch = scratch
	start := p.s.latestStart(scratch, w)
	if room := p.s.roomAt(started); start < room {
		start = room
	}
	if start < now {
		start = now
	}
	return started, start
}

// sweepPolicy is Sweep*: service periods are formed from every stream
// needing service, ordered by disk position; new requests join only the
// next period; each service within the period starts as late as the
// remaining deadlines allow, which delays the period's tail the way
// Sweep* prescribes.
type sweepPolicy struct {
	s      *server
	period []*stream
	idx    int
}

func (p *sweepPolicy) admit(*stream)  {}
func (p *sweepPolicy) remove(*stream) {}
func (p *sweepPolicy) canAdmit() bool { return p.idx >= len(p.period) }
func (p *sweepPolicy) onServiced(st *stream) {
	if p.idx < len(p.period) && p.period[p.idx] == st {
		p.idx++
	}
}

func (p *sweepPolicy) next(now si.Seconds) (*stream, si.Seconds) {
	// Skip members that departed or finished since formation.
	for p.idx < len(p.period) && !p.period[p.idx].needService() {
		p.idx++
	}
	if p.idx >= len(p.period) {
		if !p.form() {
			return nil, 0
		}
	}
	st := p.period[p.idx]
	if p.idx > 0 {
		// Periods are compact: once started, services run back-to-back.
		// Compact fills align the members' deadlines for the next period
		// (each deadline = fill + T), which is what makes Sweep* periodic
		// — and is the schedule Theorem 3's memory peak describes.
		return st, now
	}
	// A waiting newcomer pulls the period forward: Eq. 3's worst wait is
	// two service batches (the current one and the next, which includes
	// the newcomer), not two full usage periods — top-up fills make the
	// early period cheap for the other members.
	start := batchLazyStart(p.s, p.period, now, 0, true)
	return st, start
}

// form assembles the next service period in sweep order. Every stream
// still fetching data joins — Sweep* refills all n buffers once per
// period, which is precisely why Theorem 3's memory peak holds n−1 full
// buffers. Period spacing emerges from the lazy start: the next period
// begins only when the earliest deadline forces it, about one usage
// period after the last.
func (p *sweepPolicy) form() bool {
	p.period = p.period[:0]
	for _, st := range p.s.streams {
		if st.needService() {
			p.period = append(p.period, st)
		}
	}
	p.idx = 0
	if len(p.period) == 0 {
		return false
	}
	sortByCylinder(p.s, p.period)
	if DebugForm != nil {
		ids := make([]int, len(p.period))
		for i, st := range p.period {
			ids[i] = st.id
		}
		DebugForm(p.s.now(), ids)
	}
	return true
}

// gssPolicy is GSS*: streams are partitioned into groups of at most g;
// groups are serviced round-robin (BubbleUp across groups), members of
// the group in service are swept. New requests join the first upcoming
// group with spare room so they are serviced with the next group.
type gssPolicy struct {
	s      *server
	groups [][]*stream
	cur    int // index of the group currently being swept; -1 when none
	sweep  []*stream
	idx    int
}

func (p *gssPolicy) canAdmit() bool { return p.idx >= len(p.sweep) }

func (p *gssPolicy) admit(st *stream) {
	g := p.s.sys.cfg.Method.Group
	for i := 1; i <= len(p.groups); i++ {
		gi := (p.cur + i) % len(p.groups)
		if gi == p.cur {
			continue // the group in service formed without st
		}
		if len(p.groups[gi]) < g {
			p.groups[gi] = append(p.groups[gi], st)
			return
		}
	}
	p.groups = append(p.groups, []*stream{st})
}

func (p *gssPolicy) remove(st *stream) {
	for gi, members := range p.groups {
		for i, o := range members {
			if o != st {
				continue
			}
			p.groups[gi] = append(members[:i], members[i+1:]...)
			if len(p.groups[gi]) == 0 {
				p.groups = append(p.groups[:gi], p.groups[gi+1:]...)
				// Keep cur pointing at the group that was last swept so
				// rotation resumes at its successor: slide it back when
				// the removed group was at or before it, or when the
				// slice shrank past it.
				if gi <= p.cur || p.cur >= len(p.groups) {
					p.cur--
				}
			}
			return
		}
	}
}

func (p *gssPolicy) onServiced(st *stream) {
	if p.idx < len(p.sweep) && p.sweep[p.idx] == st {
		p.idx++
	}
}

func (p *gssPolicy) next(now si.Seconds) (*stream, si.Seconds) {
	for p.idx < len(p.sweep) && !p.sweep[p.idx].needService() {
		p.idx++
	}
	if p.idx >= len(p.sweep) && !p.advance() {
		return nil, 0
	}
	st := p.sweep[p.idx]
	if p.idx > 0 {
		return st, now // compact group sweeps, as in the Sweep* period
	}
	// A group's sweep can be blocked by other groups' non-preemptive
	// sweeps when their due times cluster; earliest-deadline group
	// selection keeps the queue short, so two group-sweeps of headroom
	// absorb it without refilling far ahead of need (which would inflate
	// memory well past Theorem 4). A group holding a fresh member sweeps
	// immediately: BubbleUp across groups services a newcomer with the
	// very next group (Eq. 4).
	queued := len(p.groups) - 1
	if queued > 2 {
		queued = 2
	}
	if queued < 1 {
		queued = 1
	}
	blocking := si.Seconds(queued*p.s.sys.cfg.Method.Group) * p.s.worstService(p.s.n())
	start := batchLazyStart(p.s, p.sweep, now, blocking, true)
	return st, start
}

// advance picks the group to sweep next: the one whose neediest member
// has the earliest deadline, with rotation distance from the last swept
// group breaking ties. In steady state GSS* group deadlines follow the
// rotation, so this is the round-robin order; under churn (members joining
// mid-rotation, departures) it prevents an overdue group from waiting out
// a full rotation behind freshly refilled ones.
func (p *gssPolicy) advance() bool {
	if len(p.groups) == 0 {
		return false
	}
	bestGi := -1
	var bestD si.Seconds
	for i := 1; i <= len(p.groups); i++ {
		gi := ((p.cur+i)%len(p.groups) + len(p.groups)) % len(p.groups)
		for _, st := range p.groups[gi] {
			if !st.needService() {
				continue
			}
			if d := p.s.deadline(st); bestGi < 0 || d < bestD {
				bestGi, bestD = gi, d
			}
		}
	}
	p.sweep = p.sweep[:0]
	p.idx = 0
	if bestGi < 0 {
		return false
	}
	// The whole group is swept together; repeated joint fills align the
	// members' phases, which is what makes GSS*'s rotation periodic.
	for _, st := range p.groups[bestGi] {
		if st.needService() {
			p.sweep = append(p.sweep, st)
		}
	}
	sortByCylinder(p.s, p.sweep)
	p.cur = bestGi
	return true
}

// sortByCylinder orders streams by the disk position of their next read.
func sortByCylinder(s *server, batch []*stream) {
	ids := make([]int, len(batch))
	byID := make(map[int]*stream, len(batch))
	for i, st := range batch {
		ids[i] = st.id
		byID[st.id] = st
	}
	sched.SweepOrder(ids, func(id int) int {
		st := byID[id]
		return s.sys.cfg.Spec.CylinderOf(st.place.DiskOffset(st.delivered, 0))
	})
	for i, id := range ids {
		batch[i] = byID[id]
	}
}

// batchLazyStart computes the latest safe start for servicing the given
// batch sequentially in its (possibly deadline-adversarial) order: every
// deadline, sorted ascending, must leave room for the services before it.
func batchLazyStart(s *server, batch []*stream, now si.Seconds, blocking si.Seconds, freshNow bool) si.Seconds {
	// Only started members anchor the start time: a fresh request's first
	// fill rides along with the batch. With freshNow set, any fresh
	// member starts the batch immediately (GSS*'s BubbleUp across
	// groups); otherwise fresh members wait for the batch's natural
	// schedule but their service time still consumes batch room.
	w := s.worstService(s.n())
	fresh, startedCount := 0, 0
	for _, st := range batch {
		if !st.needService() {
			continue
		}
		if st.started {
			startedCount++
		} else {
			fresh++
		}
	}
	if startedCount == 0 || (freshNow && fresh > 0) {
		return now // only fresh members, or a newcomer demands the sweep
	}
	// The batch executes in the given (cylinder) order, so each member i
	// must be reachable within (i+1) worst services of the start. The
	// per-service worst DL for a sweep assumes equally spaced data; the
	// retrace to the batch's first cylinder and one adversarial jump are
	// outside that model, so batches also get that much headroom, plus
	// whatever non-preemptive blocking the caller anticipates, plus the
	// standard admission cushion.
	cushion := 2*s.sys.cfg.Spec.WorstSeek() + blocking + lazyMarginServices*w
	var start si.Seconds
	pos := 0
	set := false
	for _, st := range batch {
		if !st.needService() {
			continue
		}
		pos++
		if !st.started {
			continue
		}
		cand := s.deadline(st) - si.Seconds(pos)*w - cushion
		if room := s.roomAt(st); cand < room {
			cand = room // never refill a buffer that has not drained
		}
		if !set || cand < start {
			start, set = cand, true
		}
	}
	if start < now {
		start = now
	}
	return start
}
