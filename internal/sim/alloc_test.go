package sim

import (
	"runtime"
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// A simulated day under the dynamic scheme used to move ~315 MB across
// ~6,000 allocations, almost all of it per-fill bookkeeping churn: the
// estimate log's append/trim cycle and the buffer pool's per-stream
// state records. Both are interned now (engine ring buffers, pool
// freelist), and this test pins the improvement: the heap traffic of a
// full day must stay far below the churny baseline. Bounds are ~3x the
// post-interning measurements (≈1.4k allocs, ≈13 MB), so regressing
// toward the old behaviour trips them with a wide margin on any
// toolchain.
func TestDaySimulationAllocsInterned(t *testing.T) {
	if testing.Short() {
		t.Skip("full-day simulation")
	}
	spec := diskmodel.Barracuda9LP()
	cr := si.BitRate(1.5 * si.Mega)
	lib, err := catalog.New(catalog.Config{
		Titles: 6, Disks: 1, Spec: spec, PopularityTheta: 0.271,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(workload.ZipfDay(350, 1, si.Hours(9), si.Hours(24)), lib, 1)
	cfg := Config{
		Scheme: Dynamic, Method: sched.NewMethod(sched.RoundRobin),
		Spec: spec, CR: cr, Library: lib, Trace: tr, Seed: 1,
	}

	// Warm run: table builds, pools, and rings reach steady capacity.
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := Run(cfg)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 {
		t.Fatal("nothing served")
	}
	allocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	t.Logf("day simulation: %d allocs, %d bytes", allocs, bytes)
	if allocs > 5000 {
		t.Errorf("day simulation made %d allocations, want <= 5000 (interned bookkeeping)", allocs)
	}
	if bytes > 40<<20 {
		t.Errorf("day simulation allocated %d bytes, want <= 40 MiB (interned bookkeeping)", bytes)
	}
}
