// Package si provides the unit types shared by every subsystem of the
// reproduction: durations in seconds, data quantities in bits, and data
// rates in bits per second.
//
// All quantities are float64 under the hood. The named types exist to make
// dimensional mistakes visible in signatures (a Seconds cannot silently be
// passed where Bits is expected) while keeping arithmetic cheap and
// allocation-free. Conversions between dimensions go through the methods
// below so the few legitimate crossings (bits ÷ rate = seconds, and so on)
// are easy to audit.
//
// The paper quotes disk transfer rates in Mbps and memory in GBytes; this
// package follows its conventions: Mbps is 10^6 bits per second and GByte
// is 10^9 bytes.
package si

import (
	"fmt"
	"math"
	"time"
)

// Seconds is a duration in seconds.
type Seconds float64

// Bits is a data quantity in bits.
type Bits float64

// BitRate is a data rate in bits per second.
type BitRate float64

// Common scale factors. The paper uses decimal (SI) prefixes throughout:
// a 120 Mbps disk moves 120·10^6 bits per second, and the memory axis of
// Fig. 13 is in 10^9-byte "GBytes".
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9

	BitsPerByte = 8
)

// Millisecond is one thousandth of a second, for writing disk constants the
// way the paper's Table 3 quotes them.
const Millisecond Seconds = 1e-3

// Mbps returns a BitRate of v·10^6 bits per second.
func Mbps(v float64) BitRate { return BitRate(v * Mega) }

// Megabits returns a quantity of v·10^6 bits.
func Megabits(v float64) Bits { return Bits(v * Mega) }

// Gigabytes returns a quantity of v·10^9 bytes expressed in bits.
func Gigabytes(v float64) Bits { return Bits(v * Giga * BitsPerByte) }

// Megabytes returns a quantity of v·10^6 bytes expressed in bits.
func Megabytes(v float64) Bits { return Bits(v * Mega * BitsPerByte) }

// Minutes returns a duration of v minutes.
func Minutes(v float64) Seconds { return Seconds(v * 60) }

// Hours returns a duration of v hours.
func Hours(v float64) Seconds { return Seconds(v * 3600) }

// Duration converts to a time.Duration, saturating at the representable
// range. It is used only at the edges (real-time examples, logging).
func (s Seconds) Duration() time.Duration {
	d := float64(s) * float64(time.Second)
	if d > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	if d < math.MinInt64 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(d)
}

// Milliseconds reports the duration in milliseconds.
func (s Seconds) Milliseconds() float64 { return float64(s) * 1e3 }

// Minutes reports the duration in minutes.
func (s Seconds) Minutes() float64 { return float64(s) / 60 }

// Hours reports the duration in hours.
func (s Seconds) Hours() float64 { return float64(s) / 3600 }

// String formats the duration with a unit chosen by magnitude.
func (s Seconds) String() string {
	abs := math.Abs(float64(s))
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-3:
		return fmt.Sprintf("%.3gµs", float64(s)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.4gms", float64(s)*1e3)
	case abs < 120:
		return fmt.Sprintf("%.4gs", float64(s))
	case abs < 2*3600:
		return fmt.Sprintf("%.4gmin", float64(s)/60)
	default:
		return fmt.Sprintf("%.4gh", float64(s)/3600)
	}
}

// Bytes reports the quantity in bytes.
func (b Bits) Bytes() float64 { return float64(b) / BitsPerByte }

// MegabytesVal reports the quantity in 10^6-byte megabytes.
func (b Bits) MegabytesVal() float64 { return b.Bytes() / Mega }

// GigabytesVal reports the quantity in 10^9-byte gigabytes.
func (b Bits) GigabytesVal() float64 { return b.Bytes() / Giga }

// String formats the quantity in the most readable byte unit.
func (b Bits) String() string {
	bytes := math.Abs(b.Bytes())
	switch {
	case bytes == 0:
		return "0B"
	case bytes < Kilo:
		return fmt.Sprintf("%.4gB", b.Bytes())
	case bytes < Mega:
		return fmt.Sprintf("%.4gKB", b.Bytes()/Kilo)
	case bytes < Giga:
		return fmt.Sprintf("%.4gMB", b.Bytes()/Mega)
	default:
		return fmt.Sprintf("%.4gGB", b.Bytes()/Giga)
	}
}

// String formats the rate in Mbps, the paper's unit.
func (r BitRate) String() string { return fmt.Sprintf("%.4gMbps", float64(r)/Mega) }

// TimeToTransfer reports how long moving b bits takes at rate r.
// It panics on a non-positive rate: every call site has a physical rate.
func (r BitRate) TimeToTransfer(b Bits) Seconds {
	if r <= 0 {
		panic("si: TimeToTransfer on non-positive rate")
	}
	return Seconds(float64(b) / float64(r))
}

// DataIn reports how many bits flow in duration s at rate r.
func (r BitRate) DataIn(s Seconds) Bits { return Bits(float64(r) * float64(s)) }
