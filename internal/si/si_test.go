package si

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestConstructors(t *testing.T) {
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"Mbps", float64(Mbps(120)), 120e6},
		{"Megabits", float64(Megabits(1.5)), 1.5e6},
		{"Gigabytes", float64(Gigabytes(1)), 8e9},
		{"Megabytes", float64(Megabytes(2)), 16e6},
		{"Minutes", float64(Minutes(2)), 120},
		{"Hours", float64(Hours(0.5)), 1800},
		{"Millisecond", float64(Millisecond), 1e-3},
	}
	for _, tt := range tests {
		if !almostEqual(tt.got, tt.want, 1e-12) {
			t.Errorf("%s: got %v, want %v", tt.name, tt.got, tt.want)
		}
	}
}

func TestSecondsDuration(t *testing.T) {
	if got := Seconds(1.5).Duration(); got != 1500*time.Millisecond {
		t.Errorf("Duration(1.5s) = %v", got)
	}
	if got := Seconds(1e300).Duration(); got != time.Duration(math.MaxInt64) {
		t.Errorf("Duration should saturate high, got %v", got)
	}
	if got := Seconds(-1e300).Duration(); got != time.Duration(math.MinInt64) {
		t.Errorf("Duration should saturate low, got %v", got)
	}
}

func TestSecondsConversions(t *testing.T) {
	s := Minutes(90)
	if got := s.Hours(); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("Hours = %v, want 1.5", got)
	}
	if got := s.Minutes(); !almostEqual(got, 90, 1e-12) {
		t.Errorf("Minutes = %v, want 90", got)
	}
	if got := Seconds(0.25).Milliseconds(); !almostEqual(got, 250, 1e-12) {
		t.Errorf("Milliseconds = %v, want 250", got)
	}
}

func TestBitsConversions(t *testing.T) {
	b := Gigabytes(9.19)
	if got := b.GigabytesVal(); !almostEqual(got, 9.19, 1e-12) {
		t.Errorf("GigabytesVal = %v, want 9.19", got)
	}
	if got := Megabytes(25).MegabytesVal(); !almostEqual(got, 25, 1e-12) {
		t.Errorf("MegabytesVal = %v, want 25", got)
	}
	if got := Bits(16).Bytes(); got != 2 {
		t.Errorf("Bytes = %v, want 2", got)
	}
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		got  string
		want string
	}{
		{Seconds(0).String(), "0s"},
		{Seconds(5e-6).String(), "5µs"},
		{Seconds(0.0213).String(), "21.3ms"},
		{Seconds(42).String(), "42s"},
		{Minutes(30).String(), "30min"},
		{Hours(9).String(), "9h"},
		{Bits(0).String(), "0B"},
		{Bits(800).String(), "100B"},
		{Megabytes(25.7).String(), "25.7MB"},
		{Gigabytes(1.03).String(), "1.03GB"},
		{Mbps(120).String(), "120Mbps"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String: got %q, want %q", tt.got, tt.want)
		}
	}
	if !strings.Contains(Bits(8*2048).String(), "KB") {
		t.Errorf("2048 bytes should format as KB, got %s", Bits(8*2048))
	}
}

func TestTimeToTransfer(t *testing.T) {
	tr := Mbps(120)
	if got := tr.TimeToTransfer(Megabits(120)); !almostEqual(float64(got), 1, 1e-12) {
		t.Errorf("TimeToTransfer = %v, want 1s", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("TimeToTransfer on zero rate should panic")
		}
	}()
	BitRate(0).TimeToTransfer(1)
}

func TestDataIn(t *testing.T) {
	cr := Mbps(1.5)
	if got := cr.DataIn(Minutes(120)); !almostEqual(float64(got), 1.5e6*7200, 1e-12) {
		t.Errorf("DataIn = %v", got)
	}
}

// Property: transfer time and data-in are inverse operations for any
// positive rate and quantity.
func TestTransferRoundTrip(t *testing.T) {
	f := func(rate, data float64) bool {
		r := BitRate(math.Abs(rate)) + 1 // ensure positive
		b := Bits(math.Abs(data))
		back := r.DataIn(r.TimeToTransfer(b))
		return almostEqual(float64(back), float64(b), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DataIn is linear in duration.
func TestDataInLinearity(t *testing.T) {
	f := func(rate, s1, s2 float64) bool {
		r := BitRate(math.Abs(rate))
		a, b := Seconds(math.Abs(s1)), Seconds(math.Abs(s2))
		lhs := float64(r.DataIn(a + b))
		rhs := float64(r.DataIn(a) + r.DataIn(b))
		return almostEqual(lhs, rhs, 1e-9) || (math.IsInf(lhs, 0) && math.IsInf(rhs, 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
