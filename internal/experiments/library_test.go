package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sched"
	"repro/internal/sim"
)

// sharedLibrary must hand every grid cell the same instance for a
// default-parameterized config, and build fresh for configs whose
// override hooks put them outside the cache key.
func TestSharedLibraryMemoizes(t *testing.T) {
	cfg := catalog.Config{Titles: 6, Disks: 1, Spec: PaperEnv().Spec, PopularityTheta: 0.271}
	a, err := sharedLibrary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharedLibrary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equal configs built distinct libraries; the cache is not memoizing")
	}
	other := cfg
	other.PopularityTheta = 0.5
	c, err := sharedLibrary(other)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different thetas shared one library")
	}
	hooked := cfg
	hooked.Video = func(id int) catalog.Video { return catalog.MPEG1Video(id) }
	h1, err := sharedLibrary(hooked)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sharedLibrary(hooked)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("hooked configs must bypass the cache and build fresh")
	}
}

// The cache must be a pure memoization: a simulation fed the cached
// instance and one fed a fresh build of the same config land on
// identical results.
func TestSharedLibraryIsPureMemoization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	cfg := catalog.Config{Titles: 6, Disks: 1, Spec: PaperEnv().Spec, PopularityTheta: 0.271}
	cached, err := sharedLibrary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := catalog.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cached == fresh {
		t.Fatal("catalog.New returned the cached instance; the arms are not independent")
	}
	const seed = 99
	run := func(lib *catalog.Library) *sim.Result {
		t.Helper()
		tr := dayTrace(lib, 0.5, singleDiskArrivalsPerDay, seed, true)
		res, err := runSim(simConfig(sim.Dynamic, sched.NewMethod(sched.RoundRobin), lib, tr, seed+1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rc, rf := run(cached), run(fresh)
	if rc.Served != rf.Served || rc.Rejected != rf.Rejected ||
		rc.Underruns != rf.Underruns || rc.MaxConcurrent != rf.MaxConcurrent ||
		rc.PeakMemory != rf.PeakMemory {
		t.Errorf("cached and fresh libraries diverged:\n  cached: served %d rejected %d underruns %d peak %d mem %v\n  fresh:  served %d rejected %d underruns %d peak %d mem %v",
			rc.Served, rc.Rejected, rc.Underruns, rc.MaxConcurrent, rc.PeakMemory,
			rf.Served, rf.Rejected, rf.Underruns, rf.MaxConcurrent, rf.PeakMemory)
	}
}

func TestZipfSharingRuns(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := ZipfSharing(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "zipf-sharing" || len(rep.Tables) != 2 || len(rep.Series) != 1 {
		t.Fatalf("report shape wrong: id %q, %d tables, %d series", rep.ID, len(rep.Tables), len(rep.Series))
	}
	summary := rep.Tables[0]
	for _, row := range summary.Rows {
		ratio, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil || ratio < 3 {
			t.Errorf("replication %s admission ratio %q below the 3x gate", row[0], row[4])
		}
		if row[5] != "0" {
			t.Errorf("replication %s sharing arm rejected %s viewers", row[0], row[5])
		}
		if row[6] != "0" {
			t.Errorf("replication %s sharing arm underran %s times", row[0], row[6])
		}
	}
	for _, row := range rep.Tables[1].Rows {
		for col, name := range map[int]string{1: "leaders", 2: "merged", 4: "cache-only"} {
			if row[col] == "0" {
				t.Errorf("replication %s has zero %s; the mechanism is vacuous", row[0], name)
			}
		}
	}
}
