package experiments

import (
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/sim"
	"repro/internal/workload"
)

// capacityLibrary builds the Fig. 14 placement: one title per disk, so
// the per-disk request load follows the Zipf(theta) popularity exactly,
// the disk-load model Figs. 13–14 assume (after Wolf et al.).
func capacityLibrary(theta float64) (*catalog.Library, error) {
	return sharedLibrary(catalog.Config{
		Titles:          capacityDisks,
		Disks:           capacityDisks,
		Spec:            PaperEnv().Spec,
		PopularityTheta: theta,
	})
}

// capacityTrace offers a flat, heavy load: the steady offered concurrency
// matches capacityDemand so that memory, then disk capacity, binds.
func capacityTrace(lib *catalog.Library, seed int64, quick bool) workload.Trace {
	horizon := si.Hours(8)
	if quick {
		horizon = si.Hours(3)
	}
	// Offered concurrency = rate * mean viewing (60 min): demand/hour.
	perDay := float64(capacityDemand) * 24
	return workload.Generate(
		workload.ZipfDay(perDay*float64(horizon)/float64(si.Hours(24)), 1, horizon/2, horizon),
		lib, seed)
}

// fig14Cache memoizes Fig. 14 within a process so Table 5 (which is
// derived from the same sweep) does not repeat the most expensive
// simulation in an "-run all" invocation. The mutex makes concurrent
// RunExperiment calls safe; the key omits Workers because reports are
// byte-identical for every worker count.
var fig14Cache struct {
	mu  sync.Mutex
	key string
	rep *Report
}

// capacityArm is one (skew, memory budget, scheme) cell of the Fig. 14
// sweep. Arms with the same thetaIdx share per-replication workload
// seeds: the budget and the scheme only change admission, so every arm of
// one skew replays the same offered load (a paired comparison).
type capacityArm struct {
	thetaIdx int
	theta    float64
	gb       float64
	scheme   sim.Scheme
}

// Fig14 reproduces Fig. 14: the number of concurrent requests serviced by
// the 10-disk system versus available memory, by simulation, Round-Robin.
// The full theta × memory × scheme × replication grid fans out across the
// worker pool — the largest simulation surface in the harness.
func Fig14(opt Options) (*Report, error) {
	opt = opt.normalized()
	if opt.Quick && opt.Seeds > 2 {
		opt.Seeds = 2
	}
	key := fmt.Sprintf("%d/%v/%d", opt.Seeds, opt.Quick, opt.BaseSeed)
	fig14Cache.mu.Lock()
	defer fig14Cache.mu.Unlock()
	if fig14Cache.key == key {
		return fig14Cache.rep, nil
	}
	rep := &Report{
		ID:     "fig14",
		Title:  "Concurrent requests vs memory, 10 disks (simulation, Round-Robin)",
		XLabel: "memory (GB)",
		YLabel: "peak concurrent requests",
	}
	thetas := []float64{0, 0.5, 1}
	grid := memoryGrid(opt.Quick)
	var arms []capacityArm
	for ti, theta := range thetas {
		for _, gb := range grid {
			for _, scheme := range []sim.Scheme{sim.Static, sim.Dynamic} {
				arms = append(arms, capacityArm{thetaIdx: ti, theta: theta, gb: gb, scheme: scheme})
			}
		}
	}
	cells, err := runGrid(opt, len(arms), opt.Seeds, func(a, rep int) (float64, error) {
		arm := arms[a]
		lib, err := capacityLibrary(arm.theta)
		if err != nil {
			return 0, err
		}
		tr := capacityTrace(lib, opt.runSeed(arm.thetaIdx, rep, seedTrace), opt.Quick)
		cfg := simConfig(arm.scheme, sched.NewMethod(sched.RoundRobin), lib, tr, opt.runSeed(arm.thetaIdx, rep, seedSim))
		cfg.MemoryBudget = si.Gigabytes(arm.gb)
		cfg.Grace = si.Minutes(15)
		res, err := runSim(cfg)
		if err != nil {
			return 0, err
		}
		opt.progress("fig14 theta=%.1f mem=%.1fGB %v seed %d: peak %d",
			arm.theta, arm.gb, arm.scheme, rep, res.MaxConcurrent)
		return float64(res.MaxConcurrent), nil
	})
	if err != nil {
		return nil, err
	}
	a := 0
	for ti := range thetas {
		static := Series{Name: fmt.Sprintf("static/theta=%.1f", thetas[ti])}
		dynamic := Series{Name: fmt.Sprintf("dynamic/theta=%.1f", thetas[ti])}
		for _, gb := range grid {
			static.AddPoint(gb, Summarize(cells[a]))
			dynamic.AddPoint(gb, Summarize(cells[a+1]))
			a += 2
		}
		rep.Series = append(rep.Series, static, dynamic)
	}
	fig14Cache.key, fig14Cache.rep = key, rep
	return rep, nil
}

// Table5 reproduces Table 5: the average improvement ratio of concurrent
// requests for the dynamic scheme over the static one, averaged over the
// memory grid, per disk-load skew.
func Table5(opt Options) (*Report, error) {
	opt = opt.normalized()
	fig, err := Fig14(opt)
	if err != nil {
		return nil, err
	}
	t := Table{
		Name:    "Average improvement ratio of concurrent requests (dynamic/static)",
		Columns: []string{"theta (disk load)", "ratio"},
	}
	for _, theta := range []float64{0, 0.5, 1} {
		var static, dynamic Series
		for _, s := range fig.Series {
			if s.Name == fmt.Sprintf("static/theta=%.1f", theta) {
				static = s
			}
			if s.Name == fmt.Sprintf("dynamic/theta=%.1f", theta) {
				dynamic = s
			}
		}
		sum, n := 0.0, 0
		for i := range static.X {
			if static.Y[i] > 0 {
				sum += dynamic.Y[i] / static.Y[i]
				n++
			}
		}
		ratio := 0.0
		if n > 0 {
			ratio = sum / float64(n)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.1f", theta), fmt.Sprintf("%.2fx", ratio)})
	}
	return &Report{
		ID:     "table5",
		Title:  "Concurrency improvement ratios (paper: 2.36 at theta=0, 2.78 at 0.5, 3.25 at 1.0)",
		Tables: []Table{t},
		Notes:  []string{"ratio averaged over the memory grid, as the paper averages over memory sizes"},
	}, nil
}

// AblationNaive demonstrates Section 3.1's motivating flaw: under a
// rising arrival rate the naive scheme (Eq. 5 at n+k, no recurrence, no
// enforcement) starves buffers; the enforced dynamic scheme does not.
func AblationNaive(opt Options) (*Report, error) {
	opt = opt.normalized()
	lib, err := singleDisk()
	if err != nil {
		return nil, err
	}
	t := Table{
		Name:    "Starvation under a ramping load (Round-Robin)",
		Columns: []string{"scheme", "underruns", "starved (s)", "served"},
	}
	schemes := []sim.Scheme{sim.Static, sim.Dynamic, sim.Naive}
	type obs struct {
		underruns, served int
		starved           float64
	}
	cells, err := runGrid(opt, len(schemes), opt.Seeds, func(a, rep int) (obs, error) {
		// All three schemes replay the same per-replication ramp.
		tr := dayTrace(lib, 0, singleDiskArrivalsPerDay, opt.runSeed(0, rep, seedTrace), opt.Quick)
		res, err := runSim(simConfig(schemes[a], sched.NewMethod(sched.RoundRobin), lib, tr, opt.runSeed(0, rep, seedSim)))
		if err != nil {
			return obs{}, err
		}
		opt.progress("ablation-naive %v seed %d done", schemes[a], rep)
		return obs{underruns: res.Underruns, served: res.Served, starved: float64(res.Starved)}, nil
	})
	if err != nil {
		return nil, err
	}
	for a, scheme := range schemes {
		var sum obs
		for _, o := range cells[a] {
			sum.underruns += o.underruns
			sum.served += o.served
			sum.starved += o.starved
		}
		t.Rows = append(t.Rows, []string{
			scheme.String(),
			fmt.Sprintf("%d", sum.underruns),
			fmt.Sprintf("%.1f", sum.starved),
			fmt.Sprintf("%d", sum.served),
		})
	}
	return &Report{
		ID:     "ablation-naive",
		Title:  "Why predict-and-enforce: the naive scheme underruns (Fig. 3's flaw)",
		Tables: []Table{t},
	}, nil
}

// AblationGSSGroup sweeps the GSS* group size g, the design knob Section
// 5.1 fixes at 8: the analysis shows the memory-minimizing choice.
func AblationGSSGroup(opt Options) (*Report, error) {
	env := PaperEnv()
	rep := &Report{
		ID:     "ablation-gss-group",
		Title:  "GSS* group size vs full-load memory and worst latency (analysis)",
		XLabel: "g (buffers per group)",
	}
	mem := Series{Name: "memory at n=N (MB)"}
	lat := Series{Name: "worst initial latency at n=N (s)"}
	for _, g := range []int{1, 2, 4, 8, 16, 32, 79} {
		m := sched.Method{Kind: sched.GSS, Group: g}
		bs := env.Params.StaticSize(m.WorstDL(env.Spec, env.Params.N), env.Params.N)
		mm := memMinAtFullLoad(env, m)
		mem.X = append(mem.X, float64(g))
		mem.Y = append(mem.Y, mm.MegabytesVal())
		il := 2 * float64(g) * (float64(m.WorstDL(env.Spec, env.Params.N)) + float64(env.Spec.TransferRate.TimeToTransfer(bs)))
		lat.X = append(lat.X, float64(g))
		lat.Y = append(lat.Y, il)
	}
	rep.Series = append(rep.Series, mem, lat)
	rep.Notes = append(rep.Notes, "the paper picks g=8 as the memory-minimizing group size")
	return rep, nil
}

// memMinAtFullLoad evaluates the static minimum memory at n = N for a
// method (used by the group-size ablation).
func memMinAtFullLoad(env Env, m sched.Method) si.Bits {
	return memmodel.MinStatic(env.Params, m, env.Spec, env.Params.N)
}
