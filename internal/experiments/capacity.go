package experiments

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/sim"
	"repro/internal/workload"
)

// capacityLibrary builds the Fig. 14 placement: one title per disk, so
// the per-disk request load follows the Zipf(theta) popularity exactly,
// the disk-load model Figs. 13–14 assume (after Wolf et al.).
func capacityLibrary(theta float64) (*catalog.Library, error) {
	return catalog.New(catalog.Config{
		Titles:          capacityDisks,
		Disks:           capacityDisks,
		Spec:            PaperEnv().Spec,
		PopularityTheta: theta,
	})
}

// capacityTrace offers a flat, heavy load: the steady offered concurrency
// matches capacityDemand so that memory, then disk capacity, binds.
func capacityTrace(lib *catalog.Library, seed int64, quick bool) workload.Trace {
	horizon := si.Hours(8)
	if quick {
		horizon = si.Hours(3)
	}
	// Offered concurrency = rate * mean viewing (60 min): demand/hour.
	perDay := float64(capacityDemand) * 24
	return workload.Generate(
		workload.ZipfDay(perDay*float64(horizon)/float64(si.Hours(24)), 1, horizon/2, horizon),
		lib, seed)
}

// capacitySim measures the peak concurrent requests a memory budget
// sustains, averaged over seeds.
func capacitySim(opt Options, scheme sim.Scheme, theta float64, budget si.Bits) (float64, error) {
	total := 0.0
	for s := 0; s < opt.Seeds; s++ {
		lib, err := capacityLibrary(theta)
		if err != nil {
			return 0, err
		}
		tr := capacityTrace(lib, opt.seed(500+s), opt.Quick)
		cfg := simConfig(scheme, sched.NewMethod(sched.RoundRobin), lib, tr, opt.seed(600+s))
		cfg.MemoryBudget = budget
		cfg.Grace = si.Minutes(15)
		res, err := sim.Run(cfg)
		if err != nil {
			return 0, err
		}
		total += float64(res.MaxConcurrent)
	}
	return total / float64(opt.Seeds), nil
}

// fig14Cache memoizes Fig. 14 within a process so Table 5 (which is
// derived from the same sweep) does not repeat the most expensive
// simulation in an "-run all" invocation.
var fig14Cache = struct {
	key string
	rep *Report
}{}

// Fig14 reproduces Fig. 14: the number of concurrent requests serviced by
// the 10-disk system versus available memory, by simulation, Round-Robin.
func Fig14(opt Options) (*Report, error) {
	opt = opt.normalized()
	if opt.Quick && opt.Seeds > 2 {
		opt.Seeds = 2
	}
	key := fmt.Sprintf("%d/%v/%d", opt.Seeds, opt.Quick, opt.BaseSeed)
	if fig14Cache.key == key {
		return fig14Cache.rep, nil
	}
	rep := &Report{
		ID:     "fig14",
		Title:  "Concurrent requests vs memory, 10 disks (simulation, Round-Robin)",
		XLabel: "memory (GB)",
		YLabel: "peak concurrent requests",
	}
	for _, theta := range []float64{0, 0.5, 1} {
		static := Series{Name: fmt.Sprintf("static/theta=%.1f", theta)}
		dynamic := Series{Name: fmt.Sprintf("dynamic/theta=%.1f", theta)}
		for _, gb := range memoryGrid(opt.Quick) {
			budget := si.Gigabytes(gb)
			sv, err := capacitySim(opt, sim.Static, theta, budget)
			if err != nil {
				return nil, err
			}
			dv, err := capacitySim(opt, sim.Dynamic, theta, budget)
			if err != nil {
				return nil, err
			}
			static.X = append(static.X, gb)
			static.Y = append(static.Y, sv)
			dynamic.X = append(dynamic.X, gb)
			dynamic.Y = append(dynamic.Y, dv)
			opt.progress("fig14 theta=%.1f mem=%.1fGB static=%.0f dynamic=%.0f", theta, gb, sv, dv)
		}
		rep.Series = append(rep.Series, static, dynamic)
	}
	fig14Cache.key, fig14Cache.rep = key, rep
	return rep, nil
}

// Table5 reproduces Table 5: the average improvement ratio of concurrent
// requests for the dynamic scheme over the static one, averaged over the
// memory grid, per disk-load skew.
func Table5(opt Options) (*Report, error) {
	opt = opt.normalized()
	fig, err := Fig14(opt)
	if err != nil {
		return nil, err
	}
	t := Table{
		Name:    "Average improvement ratio of concurrent requests (dynamic/static)",
		Columns: []string{"theta (disk load)", "ratio"},
	}
	for _, theta := range []float64{0, 0.5, 1} {
		var static, dynamic Series
		for _, s := range fig.Series {
			if s.Name == fmt.Sprintf("static/theta=%.1f", theta) {
				static = s
			}
			if s.Name == fmt.Sprintf("dynamic/theta=%.1f", theta) {
				dynamic = s
			}
		}
		sum, n := 0.0, 0
		for i := range static.X {
			if static.Y[i] > 0 {
				sum += dynamic.Y[i] / static.Y[i]
				n++
			}
		}
		ratio := 0.0
		if n > 0 {
			ratio = sum / float64(n)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.1f", theta), fmt.Sprintf("%.2fx", ratio)})
	}
	return &Report{
		ID:     "table5",
		Title:  "Concurrency improvement ratios (paper: 2.36 at theta=0, 2.78 at 0.5, 3.25 at 1.0)",
		Tables: []Table{t},
		Notes:  []string{"ratio averaged over the memory grid, as the paper averages over memory sizes"},
	}, nil
}

// AblationNaive demonstrates Section 3.1's motivating flaw: under a
// rising arrival rate the naive scheme (Eq. 5 at n+k, no recurrence, no
// enforcement) starves buffers; the enforced dynamic scheme does not.
func AblationNaive(opt Options) (*Report, error) {
	opt = opt.normalized()
	lib, err := singleDisk()
	if err != nil {
		return nil, err
	}
	t := Table{
		Name:    "Starvation under a ramping load (Round-Robin)",
		Columns: []string{"scheme", "underruns", "starved (s)", "served"},
	}
	for _, scheme := range []sim.Scheme{sim.Static, sim.Dynamic, sim.Naive} {
		var underruns, served int
		var starved float64
		for s := 0; s < opt.Seeds; s++ {
			tr := dayTrace(lib, 0, singleDiskArrivalsPerDay, opt.seed(700+s), opt.Quick)
			res, err := sim.Run(simConfig(scheme, sched.NewMethod(sched.RoundRobin), lib, tr, opt.seed(800+s)))
			if err != nil {
				return nil, err
			}
			underruns += res.Underruns
			served += res.Served
			starved += float64(res.Starved)
		}
		t.Rows = append(t.Rows, []string{
			scheme.String(),
			fmt.Sprintf("%d", underruns),
			fmt.Sprintf("%.1f", starved),
			fmt.Sprintf("%d", served),
		})
		opt.progress("ablation-naive %v done", scheme)
	}
	return &Report{
		ID:     "ablation-naive",
		Title:  "Why predict-and-enforce: the naive scheme underruns (Fig. 3's flaw)",
		Tables: []Table{t},
	}, nil
}

// AblationGSSGroup sweeps the GSS* group size g, the design knob Section
// 5.1 fixes at 8: the analysis shows the memory-minimizing choice.
func AblationGSSGroup(opt Options) (*Report, error) {
	env := PaperEnv()
	rep := &Report{
		ID:     "ablation-gss-group",
		Title:  "GSS* group size vs full-load memory and worst latency (analysis)",
		XLabel: "g (buffers per group)",
	}
	mem := Series{Name: "memory at n=N (MB)"}
	lat := Series{Name: "worst initial latency at n=N (s)"}
	for _, g := range []int{1, 2, 4, 8, 16, 32, 79} {
		m := sched.Method{Kind: sched.GSS, Group: g}
		bs := env.Params.StaticSize(m.WorstDL(env.Spec, env.Params.N), env.Params.N)
		mm := memMinAtFullLoad(env, m)
		mem.X = append(mem.X, float64(g))
		mem.Y = append(mem.Y, mm.MegabytesVal())
		il := 2 * float64(g) * (float64(m.WorstDL(env.Spec, env.Params.N)) + float64(env.Spec.TransferRate.TimeToTransfer(bs)))
		lat.X = append(lat.X, float64(g))
		lat.Y = append(lat.Y, il)
	}
	rep.Series = append(rep.Series, mem, lat)
	rep.Notes = append(rep.Notes, "the paper picks g=8 as the memory-minimizing group size")
	return rep, nil
}

// memMinAtFullLoad evaluates the static minimum memory at n = N for a
// method (used by the group-size ablation).
func memMinAtFullLoad(env Env, m sched.Method) si.Bits {
	return memmodel.MinStatic(env.Params, m, env.Spec, env.Params.N)
}
