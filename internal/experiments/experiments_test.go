package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/si"
)

func quickOpt() Options {
	return Options{Quick: true, Seeds: 1}
}

// skipSlowUnderRace skips the simulation-backed value-regression tests
// when the race detector is on: their outputs are deterministic (race
// mode cannot change them), they dominate the package's runtime at the
// detector's 10x-plus slowdown, and the worker-pool concurrency they
// share is exercised directly — with many workers — by the dedicated
// tests in runner_test.go, which do run under race.
func skipSlowUnderRace(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	if raceEnabled {
		t.Skip("value regression; concurrency covered by runner_test.go under race")
	}
}

func TestRegistryAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry()) {
		t.Fatal("IDs and Registry disagree")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"table3", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "table4", "fig12", "fig13", "fig14", "table5"} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, err := Run("nonsense", quickOpt()); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestPaperEnv(t *testing.T) {
	env := PaperEnv()
	if env.Params.N != 79 {
		t.Errorf("N = %d", env.Params.N)
	}
	if err := env.Params.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTable3(t *testing.T) {
	rep, err := Table3(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	text := rep.String()
	for _, want := range []string{"N (max concurrent requests) | 79", "21.73ms", "25.75MB"} {
		if !strings.Contains(text, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}

// Fig. 9's shape: static curves are flat at BS(N); dynamic curves are
// increasing in n, far below static at low n, and meet static at n = N
// (up to Sweep's n-dependent DL).
func TestFig9Shape(t *testing.T) {
	rep, err := Fig9(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 6 {
		t.Fatalf("want 6 series, got %d", len(rep.Series))
	}
	for i := 0; i < len(rep.Series); i += 2 {
		static, dynamic := rep.Series[i], rep.Series[i+1]
		if len(static.Y) != 79 || len(dynamic.Y) != 79 {
			t.Fatalf("series length %d/%d", len(static.Y), len(dynamic.Y))
		}
		if static.Y[0] != static.Y[78] {
			t.Errorf("%s: static not flat", static.Name)
		}
		if dynamic.Y[0] > static.Y[0]/10 {
			t.Errorf("%s: dynamic at n=1 (%v) not far below static (%v)", dynamic.Name, dynamic.Y[0], static.Y[0])
		}
		// Monotone up to the Sweep*/GSS* artifact that the per-buffer DL
		// γ(Cyln/n) shrinks slightly as n grows (small local dips allowed).
		for j := 1; j < 79; j++ {
			if dynamic.Y[j] < dynamic.Y[j-1]*0.97 {
				t.Errorf("%s: dynamic dips at n=%d (%v after %v)", dynamic.Name, j+1, dynamic.Y[j], dynamic.Y[j-1])
				break
			}
		}
		if dynamic.Y[78] < 10*dynamic.Y[0] {
			t.Errorf("%s: dynamic should grow strongly over the load range", dynamic.Name)
		}
	}
}

// Fig. 10's shape: dynamic worst latency stays at or below static for
// every n and method, up to the Sweep*/GSS* artifact that the per-buffer
// worst DL γ(Cyln/n) is evaluated at the current n for the dynamic sizes
// but at N for the static one (a couple of percent near full load).
func TestFig10Shape(t *testing.T) {
	env := PaperEnv()
	rep, err := Fig10(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	kinds := []sched.Kind{sched.RoundRobin, sched.Sweep, sched.GSS}
	for i := 0; i < len(rep.Series); i += 2 {
		static, dynamic := rep.Series[i], rep.Series[i+1]
		m := sched.NewMethod(kinds[i/2])
		for j := range static.Y {
			slack := float64(m.WorstDL(env.Spec, j+1)) / float64(m.WorstDL(env.Spec, env.Params.N))
			if dynamic.Y[j] > static.Y[j]*slack*1.0001 {
				t.Errorf("%s above static at n=%d (%v vs %v)", dynamic.Name, j+1, dynamic.Y[j], static.Y[j])
				break
			}
		}
		// Away from full load the dynamic advantage is large.
		if dynamic.Y[4] > static.Y[4]/3 {
			t.Errorf("%s: no clear advantage at n=5", dynamic.Name)
		}
	}
}

// Fig. 12's shape: dynamic memory below static away from full load, both
// increasing overall.
func TestFig12Shape(t *testing.T) {
	rep, err := Fig12(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rep.Series); i += 2 {
		static, dynamic := rep.Series[i], rep.Series[i+1]
		for j := 0; j < 40; j++ {
			if dynamic.Y[j] > static.Y[j]*0.9 {
				t.Errorf("%s: no clear gap at n=%d (%v vs %v)", dynamic.Name, j+1, dynamic.Y[j], static.Y[j])
				break
			}
		}
		if static.Y[78] < static.Y[0] {
			t.Errorf("%s: static memory decreasing", static.Name)
		}
	}
}

// Fig. 13's shape: capacity is non-decreasing in memory, the dynamic
// scheme dominates the static one, and they converge at the top of the
// memory grid.
func TestFig13Shape(t *testing.T) {
	rep, err := Fig13(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 6 {
		t.Fatalf("want 6 series, got %d", len(rep.Series))
	}
	for i := 0; i < len(rep.Series); i += 2 {
		static, dynamic := rep.Series[i], rep.Series[i+1]
		last := len(static.Y) - 1
		for j := range static.Y {
			if j > 0 && (static.Y[j] < static.Y[j-1] || dynamic.Y[j] < dynamic.Y[j-1]) {
				t.Errorf("capacity decreasing in memory at %v GB", static.X[j])
			}
			if dynamic.Y[j] < static.Y[j] {
				t.Errorf("%s below static at %v GB", dynamic.Name, static.X[j])
			}
		}
		if dynamic.Y[0] < 3*static.Y[0] {
			t.Errorf("at 1 GB want a strong dynamic advantage, got %v vs %v", dynamic.Y[0], static.Y[0])
		}
		if dynamic.Y[last] != static.Y[last] {
			t.Errorf("curves should meet at %v GB: %v vs %v", static.X[last], dynamic.Y[last], static.Y[last])
		}
	}
}

// analyticCapacity sanity: with an enormous budget, capacity equals the
// demand caps; with zero budget, nothing runs.
func TestAnalyticCapacityLimits(t *testing.T) {
	env := PaperEnv()
	m := methodRR()
	huge := analyticCapacity(env, m, true, 0, si.Bits(1e18))
	if huge <= 0 || huge > capacityDisks*env.Params.N {
		t.Errorf("huge-budget capacity = %d", huge)
	}
	if got := analyticCapacity(env, m, true, 0, 0); got != 0 {
		t.Errorf("zero-budget capacity = %d", got)
	}
	// More memory never reduces capacity.
	prev := 0
	for _, gb := range []float64{0.5, 1, 2, 4, 8} {
		got := analyticCapacity(env, m, false, 0.5, gigabytes(gb))
		if got < prev {
			t.Errorf("capacity fell from %d to %d at %v GB", prev, got, gb)
		}
		prev = got
	}
}

func TestAblationGSSGroup(t *testing.T) {
	rep, err := AblationGSSGroup(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	mem := rep.Series[0]
	// g = 8 must be the arg-min of full-load memory, the paper's claim.
	best, bestG := mem.Y[0], mem.X[0]
	for i := range mem.Y {
		if mem.Y[i] < best {
			best, bestG = mem.Y[i], mem.X[i]
		}
	}
	if bestG != 8 {
		t.Errorf("memory-minimizing g = %v, want 8", bestG)
	}
	// Latency grows with g (Eq. 4).
	lat := rep.Series[1]
	for i := 1; i < len(lat.Y); i++ {
		if lat.Y[i] < lat.Y[i-1] {
			t.Errorf("latency not increasing at g=%v", lat.X[i])
		}
	}
}

// The simulation-backed experiments are exercised end-to-end with the
// smallest configuration; skipped under -short.

func TestFig6Runs(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := Fig6(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(rep.Series))
	}
	// The skewed pattern must reach a much higher peak than its mean.
	s := rep.Series[0]
	peak, sum := 0.0, 0.0
	for _, v := range s.Y {
		if v > peak {
			peak = v
		}
		sum += v
	}
	// Quick mode compresses the day, so the skew is milder; the peak
	// must still clearly exceed the mean and reach the disk's capacity.
	if mean := sum / float64(len(s.Y)); peak < 1.25*mean || peak < 70 {
		t.Errorf("theta=0 peak %v vs mean %v: want concentration near capacity", peak, mean)
	}
}

func TestFig7Runs(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := Fig7(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rep.Series); i += 2 {
		kSeries, pSeries := rep.Series[i], rep.Series[i+1]
		// Longer history never reduces the estimate, and success stays
		// high at the paper's operating points.
		if kSeries.Y[len(kSeries.Y)-1] < kSeries.Y[0] {
			t.Errorf("%s: avg k decreased with T_log", kSeries.Name)
		}
		for j, p := range pSeries.Y {
			if p < 0.9 || p > 1 {
				t.Errorf("%s: success %v at point %d outside [0.9, 1]", pSeriesName(pSeries), p, j)
			}
		}
	}
}

func pSeriesName(s Series) string { return s.Name }

func TestTable4Runs(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := Table4(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 3 {
		t.Fatalf("unexpected table shape: %+v", rep.Tables)
	}
	// Every ratio cell should report a multiple greater than 1.
	for _, row := range rep.Tables[0].Rows {
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "x") {
				t.Errorf("cell %q has no ratio", cell)
			}
			if strings.HasPrefix(cell, "0.") {
				t.Errorf("ratio below 1 in %q", cell)
			}
		}
	}
}

func TestFig14AndTable5Run(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := Table5(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rep.Tables[0].Rows))
	}
	for _, row := range rep.Tables[0].Rows {
		if strings.HasPrefix(row[1], "0.") {
			t.Errorf("improvement ratio below 1: %v", row)
		}
	}
}

func TestAblationNaiveRuns(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := AblationNaive(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	// naive row must show underruns; static and dynamic rows must show
	// far less starvation than naive.
	var naive, dynamic string
	for _, r := range rows {
		switch r[0] {
		case "naive":
			naive = r[1]
		case "dynamic":
			dynamic = r[1]
		}
	}
	if naive == "0" {
		t.Error("naive scheme showed no underruns under ramp")
	}
	if dynamic != "0" && naive == dynamic {
		t.Errorf("dynamic (%s) should starve far less than naive (%s)", dynamic, naive)
	}
}

func TestReportFormatting(t *testing.T) {
	rep := &Report{
		ID: "x", Title: "t", XLabel: "x",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{2, 3}, Y: []float64{5, 6}},
		},
		Tables: []Table{{Name: "tb", Columns: []string{"c1", "c2"}, Rows: [][]string{{"r1", "r2"}}}},
		Notes:  []string{"note1"},
	}
	out := rep.String()
	for _, want := range []string{"== x: t ==", "note: note1", "r1 | r2", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}
	if v, ok := rep.Series[0].At(1); !ok || v != 10 {
		t.Errorf("At(1) = %v, %v", v, ok)
	}
	if _, ok := rep.Series[0].At(9); ok {
		t.Error("At(9) should miss")
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.Seeds != 3 {
		t.Errorf("default seeds = %d", o.Seeds)
	}
	if (Options{Seeds: 5}).normalized().Seeds != 5 {
		t.Error("explicit seeds overridden")
	}
	a, b := Options{}.seed(1), Options{}.seed(2)
	if a == b {
		t.Error("seed indices collide")
	}
	if (Options{BaseSeed: 1}).seed(1) == a {
		t.Error("base seed has no effect")
	}
}

func methodRR() sched.Method { return sched.NewMethod(sched.RoundRobin) }

func gigabytes(gb float64) si.Bits { return si.Gigabytes(gb) }

func TestAblationDybase(t *testing.T) {
	rep, err := AblationDybase(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	naive, dybase, dynamic := rep.Series[0], rep.Series[1], rep.Series[2]
	for i := range naive.Y {
		if !(naive.Y[i] <= dybase.Y[i]+1e-9 && dybase.Y[i] <= dynamic.Y[i]+1e-9) {
			t.Fatalf("ordering violated at n=%d: %v / %v / %v", i+1, naive.Y[i], dybase.Y[i], dynamic.Y[i])
		}
	}
}

func TestAblationChunksRuns(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := AblationChunks(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Overhead starts at about 2x for the paper's minimum chunk and
	// trends down as chunks grow; chunk-count quantization makes the
	// curve locally bumpy, so check the trend, not strict monotonicity.
	ov := rep.Series[0]
	if ov.Y[0] < 1.9 || ov.Y[0] > 2.1 {
		t.Errorf("minimum-chunk overhead = %v, want about 2", ov.Y[0])
	}
	for i := 1; i < len(ov.Y); i++ {
		if ov.Y[i] >= ov.Y[0] {
			t.Errorf("overhead at %v MB (%v) not below the minimum-chunk 2x", ov.X[i], ov.Y[i])
		}
	}
	if last := ov.Y[len(ov.Y)-1]; last > 1.35 {
		t.Errorf("large-chunk overhead = %v, want approaching 1", last)
	}
	// Both streaming rows report zero underruns.
	for _, row := range rep.Tables[0].Rows {
		if row[2] != "0" {
			t.Errorf("%s layout underran: %v", row[0], row)
		}
	}
}

func TestAblationPagesRuns(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := AblationPages(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	// The relative differences must be small (the paper's negligibility
	// claim): under 5 percent even for 64 KB pages.
	for _, row := range rows[1:] {
		var pct float64
		if _, err := fmt.Sscanf(row[2], "+%f%%", &pct); err != nil {
			t.Fatalf("unparseable delta %q", row[2])
		}
		if pct > 5 {
			t.Errorf("page size %s costs %.2f%%, want negligible", row[0], pct)
		}
	}
}

func TestReportWriteCSV(t *testing.T) {
	rep := &Report{
		ID: "x", XLabel: "n",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{2}, Y: []float64{5}},
		},
		Tables: []Table{{Columns: []string{"c1", "c2"}, Rows: [][]string{{"v1", "v2"}}}},
	}
	var buf strings.Builder
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"n,a,b", "1,10,", "2,20,5", "c1,c2", "v1,v2"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestExtVCRRuns(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := ExtVCR(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	var staticResp, dynResp float64
	for _, row := range rows {
		var v float64
		if _, err := fmt.Sscanf(row[2], "%f", &v); err != nil {
			t.Fatalf("unparseable response %q", row[2])
		}
		if row[0] == "static" {
			staticResp = v
		} else {
			dynResp = v
		}
		if row[1] == "0" {
			t.Errorf("%s: no VCR actions generated", row[0])
		}
	}
	if dynResp >= staticResp/5 {
		t.Errorf("dynamic VCR response %v not far below static %v", dynResp, staticResp)
	}
}

func TestAblationBubbleUpRuns(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := AblationBubbleUp(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	lat := map[string]float64{}
	for _, row := range rep.Tables[0].Rows {
		var v float64
		if _, err := fmt.Sscanf(row[2], "%f", &v); err != nil {
			t.Fatalf("unparseable latency %q", row[2])
		}
		lat[row[0]+"/"+row[1]] = v
	}
	if lat["static/BubbleUp"] >= lat["static/Fixed-Stretch"]/3 {
		t.Errorf("BubbleUp should cut static latency sharply: %v vs %v",
			lat["static/BubbleUp"], lat["static/Fixed-Stretch"])
	}
	if lat["dynamic/BubbleUp"] >= lat["dynamic/Fixed-Stretch"] {
		t.Errorf("BubbleUp should cut dynamic latency: %v vs %v",
			lat["dynamic/BubbleUp"], lat["dynamic/Fixed-Stretch"])
	}
}

func TestExtModernDisk(t *testing.T) {
	rep, err := ExtModernDisk(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	if rows[0][1] != "79" || rows[1][1] != "319" {
		t.Errorf("N columns = %v / %v, want 79 / 319", rows[0][1], rows[1][1])
	}
}

func TestScaleLargeNRuns(t *testing.T) {
	skipSlowUnderRace(t)
	rep, err := ScaleLargeN(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 2 || len(rep.Series[0].X) != 8 {
		t.Fatalf("want 2 series over 8 disks, got %d series over %d points",
			len(rep.Series), len(rep.Series[0].X))
	}
	// Every disk must reach the large-n regime the scenario exists for.
	for d, peak := range rep.Series[0].Y {
		if peak < 600 {
			t.Errorf("disk %d mean peak %v below the large-n regime (>= 600)", d, peak)
		}
	}
	// The knee table must show super-linear growth somewhere past N/2: the
	// report's headline claim is that sizes explode while n only creeps.
	knee := rep.Tables[0]
	last := knee.Rows[len(knee.Rows)-1][3]
	if !strings.HasSuffix(last, "x") || strings.HasPrefix(last, "0.") || strings.HasPrefix(last, "1.") {
		t.Errorf("knee table's last growth cell %q should be a multiple well above 1", last)
	}
	// The simulation arm must certify the sizing guarantee.
	underruns := rep.Tables[1]
	for _, row := range underruns.Rows {
		if row[4] != "0" {
			t.Errorf("replication %s underran %s times", row[0], row[4])
		}
	}
}
