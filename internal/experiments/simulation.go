package experiments

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/sim"
	"repro/internal/workload"
)

// singleDiskArrivalsPerDay sizes the one-disk workloads: with uniform
// arrivals this keeps the disk at mid load, and with theta = 0 the peak
// saturates it, so the latency experiments observe the whole n range, as
// the paper's Fig. 6 shows.
const singleDiskArrivalsPerDay = 2500

// singleDisk builds the paper's one-disk environment: six MPEG-1 titles
// with Zipf(0.271) popularity on one Barracuda.
func singleDisk() (*catalog.Library, error) {
	return sharedLibrary(catalog.Config{
		Titles:          6,
		Disks:           1,
		Spec:            PaperEnv().Spec,
		PopularityTheta: 0.271,
	})
}

// singleDiskUniformLadder is singleDisk with every title decorated with a
// one-rung bitrate ladder at its own rate — the Options.UniformLadder
// catalog. Semantically identical to singleDisk; the ladder merely routes
// construction through the catalog's ladder validation.
func singleDiskUniformLadder() (*catalog.Library, error) {
	return sharedLibrary(catalog.Config{
		Titles:          6,
		Disks:           1,
		Spec:            PaperEnv().Spec,
		PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			v := catalog.MPEG1Video(id)
			v.Ladder = []si.BitRate{v.Rate}
			return v
		},
	})
}

// applyUniformLadder threads the UniformLadder regime through one run's
// config: the engine receives the (single-entry) rate set and every
// request carries its title's rate explicitly instead of the implicit
// CR. The engine normalizes Rates = [CR] back to the single-rate code
// paths, so results stay byte-identical — the oracle test's claim.
func (o Options) applyUniformLadder(cfg *sim.Config) {
	if !o.UniformLadder {
		return
	}
	cfg.Rates = []si.BitRate{cfg.CR}
	for i, r := range cfg.Trace.Requests {
		cfg.Trace.Requests[i].Rate = cfg.Library.Video(r.Video).Rate
	}
}

// dayTrace generates one day of arrivals whose rate follows the Zipf
// time-of-day profile with the given theta, peaking at nine hours.
func dayTrace(lib *catalog.Library, theta float64, total float64, seed int64, quick bool) workload.Trace {
	horizon := si.Hours(24)
	if quick {
		horizon = si.Hours(8)
		total *= 8.0 / 24
	}
	peak := si.Hours(9)
	if peak > horizon {
		peak = horizon * 3 / 8
	}
	return workload.Generate(workload.ZipfDay(total, theta, peak, horizon), lib, seed)
}

// simConfig assembles the standard simulation config.
func simConfig(scheme sim.Scheme, m sched.Method, lib *catalog.Library, tr workload.Trace, seed int64) sim.Config {
	env := PaperEnv()
	return sim.Config{
		Scheme:  scheme,
		Method:  m,
		Spec:    env.Spec,
		CR:      env.CR,
		Alpha:   env.Params.Alpha,
		TLog:    PaperTLog(m.Kind),
		Library: lib,
		Trace:   tr,
		Seed:    seed,
	}
}

// Fig6 reproduces Fig. 6: the number of concurrent requests over the day
// for the three arrival-pattern skews. The three skews are independent
// runs, fanned out across the worker pool.
func Fig6(opt Options) (*Report, error) {
	opt = opt.normalized()
	lib, err := singleDisk()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig6",
		Title:  "Concurrent requests over the day under Zipf arrival patterns",
		XLabel: "time (h)",
		YLabel: "requests in service",
	}
	thetas := []float64{0, 0.5, 1}
	cells, err := runGrid(opt, len(thetas), 1, func(p, _ int) (Series, error) {
		theta := thetas[p]
		tr := dayTrace(lib, theta, singleDiskArrivalsPerDay, opt.runSeed(p, 0, seedTrace), opt.Quick)
		cfg := simConfig(sim.Dynamic, sched.NewMethod(sched.RoundRobin), lib, tr, opt.runSeed(p, 0, seedSim))
		cfg.SampleEvery = si.Minutes(10)
		res, err := runSim(cfg)
		if err != nil {
			return Series{}, err
		}
		s := Series{Name: fmt.Sprintf("theta=%.1f", theta)}
		for _, pt := range res.Concurrency.Samples() {
			s.X = append(s.X, pt.At.Hours())
			s.Y = append(s.Y, pt.V)
		}
		opt.progress("fig6 theta=%.1f done (rejected %d)", theta, res.Rejected)
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range cells {
		rep.Series = append(rep.Series, row[0])
	}
	return rep, nil
}

// estObs is one run's estimation-quality observation.
type estObs struct{ k, p float64 }

// estimationSweep runs the dynamic scheme over one knob (T_log or alpha)
// and reports the mean estimated k and the successful-estimation
// probability per method — the machinery behind Figs. 7 and 8. Every
// (method, knob value, replication) triple is an independent run; all
// triples share per-replication workload seeds (the knob under test is a
// configuration change, so sharing the arrivals pairs the comparison),
// and the whole grid fans out across the worker pool.
func estimationSweep(opt Options, id, title, xlabel string,
	points []float64, configure func(*sim.Config, float64, sched.Kind)) (*Report, error) {
	opt = opt.normalized()
	lib, err := singleDisk()
	if opt.UniformLadder {
		lib, err = singleDiskUniformLadder()
	}
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: id, Title: title, XLabel: xlabel}
	arms := len(sched.Kinds) * len(points)
	cells, err := runGrid(opt, arms, opt.Seeds, func(arm, rep int) (estObs, error) {
		kind := sched.Kinds[arm/len(points)]
		x := points[arm%len(points)]
		m := sched.NewMethod(kind)
		tr := dayTrace(lib, 0.5, singleDiskArrivalsPerDay, opt.runSeed(0, rep, seedTrace), opt.Quick)
		cfg := simConfig(sim.Dynamic, m, lib, tr, opt.runSeed(0, rep, seedSim))
		opt.applyUniformLadder(&cfg)
		configure(&cfg, x, kind)
		res, err := runSim(cfg)
		if err != nil {
			return estObs{}, err
		}
		opt.progress("%s %v x=%v seed %d done", id, m, x, rep)
		return estObs{k: res.EstimatedK.Mean(), p: res.SuccessRate()}, nil
	})
	if err != nil {
		return nil, err
	}
	for ki, kind := range sched.Kinds {
		m := sched.NewMethod(kind)
		kSeries := Series{Name: fmt.Sprintf("avg-k/%v", m)}
		pSeries := Series{Name: fmt.Sprintf("success/%v", m)}
		for xi, x := range points {
			reps := cells[ki*len(points)+xi]
			ks := make([]float64, len(reps))
			ps := make([]float64, len(reps))
			for i, o := range reps {
				ks[i], ps[i] = o.k, o.p
			}
			kSeries.AddPoint(x, Summarize(ks))
			pSeries.AddPoint(x, Summarize(ps))
		}
		rep.Series = append(rep.Series, kSeries, pSeries)
	}
	return rep, nil
}

// Fig7 reproduces Fig. 7: average estimated additional requests (a) and
// successful-estimation probability (b) versus T_log, with alpha = 1.
func Fig7(opt Options) (*Report, error) {
	points := []float64{10, 20, 30, 40, 50, 60}
	if opt.Quick {
		points = []float64{10, 40}
	}
	return estimationSweep(opt, "fig7",
		"Estimated additional requests and success probability vs T_log (alpha=1)",
		"T_log (min)", points,
		func(cfg *sim.Config, x float64, _ sched.Kind) {
			cfg.TLog = si.Minutes(x)
			cfg.Alpha = 1
		})
}

// Fig8 reproduces Fig. 8: the same two quantities versus alpha, with the
// paper's per-method T_log (40 min Round-Robin, 20 min Sweep*/GSS*).
func Fig8(opt Options) (*Report, error) {
	points := []float64{1, 2, 3, 4}
	if opt.Quick {
		points = []float64{1, 3}
	}
	return estimationSweep(opt, "fig8",
		"Estimated additional requests and success probability vs alpha",
		"alpha", points,
		func(cfg *sim.Config, x float64, kind sched.Kind) {
			cfg.Alpha = int(x)
			cfg.TLog = PaperTLog(kind)
		})
}

// latencyArm is one (scheme, method, skew) combination of the latency
// experiments. Arms with equal thetaIdx share per-replication workload
// seeds: static and dynamic — and the three methods — replay the same
// arrivals, so the paper's reduction ratios are paired comparisons.
type latencyArm struct {
	scheme   sim.Scheme
	kind     sched.Kind
	thetaIdx int
	theta    float64
}

// latencyByNArms simulates every arm × replication on the worker pool and
// returns, per arm, the latency-by-n data merged over replications in
// replication order.
func latencyByNArms(opt Options, id string, arms []latencyArm) ([]*metrics.ByN, error) {
	lib, err := singleDisk()
	if err != nil {
		return nil, err
	}
	cells, err := runGrid(opt, len(arms), opt.Seeds, func(a, rep int) (*metrics.ByN, error) {
		arm := arms[a]
		m := sched.NewMethod(arm.kind)
		tr := dayTrace(lib, arm.theta, singleDiskArrivalsPerDay, opt.runSeed(arm.thetaIdx, rep, seedTrace), opt.Quick)
		res, err := runSim(simConfig(arm.scheme, m, lib, tr, opt.runSeed(arm.thetaIdx, rep, seedSim)))
		if err != nil {
			return nil, err
		}
		opt.progress("%s %v/%v theta=%.1f seed %d done", id, arm.scheme, m, arm.theta, rep)
		return res.LatencyByN, nil
	})
	if err != nil {
		return nil, err
	}
	env := PaperEnv()
	out := make([]*metrics.ByN, len(arms))
	for a := range arms {
		merged := metrics.NewByN(env.Params.N)
		for _, byn := range cells[a] {
			merged.Merge(byn)
		}
		out[a] = merged
	}
	return out, nil
}

// fig11Theta is the arrival skew the Fig. 11 curves use; Table 4 sweeps
// all three skews.
const fig11Theta = 0.5

// Fig11 reproduces Fig. 11: simulated average initial latency versus the
// number of requests in service at arrival, static versus dynamic.
func Fig11(opt Options) (*Report, error) {
	opt = opt.normalized()
	rep := &Report{
		ID:     "fig11",
		Title:  fmt.Sprintf("Average initial latency vs requests in service (simulation, theta=%.1f)", fig11Theta),
		XLabel: "n at arrival",
		YLabel: "avg initial latency (s)",
	}
	var arms []latencyArm
	for _, kind := range sched.Kinds {
		for _, scheme := range []sim.Scheme{sim.Static, sim.Dynamic} {
			arms = append(arms, latencyArm{scheme: scheme, kind: kind, thetaIdx: 0, theta: fig11Theta})
		}
	}
	merged, err := latencyByNArms(opt, "fig11", arms)
	if err != nil {
		return nil, err
	}
	for a, arm := range arms {
		byN := merged[a]
		s := Series{Name: fmt.Sprintf("%v/%v", arm.scheme, sched.NewMethod(arm.kind))}
		for n := 0; n < byN.Levels(); n++ {
			if mean, ok := byN.Mean(n); ok {
				s.X = append(s.X, float64(n))
				s.Y = append(s.Y, mean)
			}
		}
		rep.Series = append(rep.Series, s)
	}
	return rep, nil
}

// Table4 reproduces Table 4: the average reduction ratio of initial
// latency for the dynamic scheme over the static one, averaged over the
// numbers of requests in service, per arrival skew and method.
func Table4(opt Options) (*Report, error) {
	opt = opt.normalized()
	thetas := []float64{0, 0.5, 1}
	var arms []latencyArm
	for ti, theta := range thetas {
		for _, kind := range sched.Kinds {
			for _, scheme := range []sim.Scheme{sim.Static, sim.Dynamic} {
				arms = append(arms, latencyArm{scheme: scheme, kind: kind, thetaIdx: ti, theta: theta})
			}
		}
	}
	merged, err := latencyByNArms(opt, "table4", arms)
	if err != nil {
		return nil, err
	}
	t := Table{
		Name:    "Average reduction ratio of initial latency (static/dynamic)",
		Columns: []string{"theta", "Round-Robin", "Sweep*", "GSS*"},
	}
	i := 0
	for _, theta := range thetas {
		row := []string{fmt.Sprintf("%.1f", theta)}
		for range sched.Kinds {
			stat, dyn := merged[i], merged[i+1]
			i += 2
			ratio, n := avgRatio(stat, dyn)
			row = append(row, fmt.Sprintf("%.1fx (over %d levels)", ratio, n))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Report{
		ID:     "table4",
		Title:  "Latency reduction ratios (paper: 11.0-11.6 RR, 19.5-19.7 Sweep*, 28.0-29.4 GSS*)",
		Tables: []Table{t},
		Notes:  []string{"ratio averaged over load levels n observed by both schemes"},
	}, nil
}

// avgRatio averages static/dynamic per-level mean-latency ratios over the
// levels where both schemes observed arrivals, the paper's Table 4
// aggregation.
func avgRatio(stat, dyn *metrics.ByN, minCount ...int64) (float64, int) {
	min := int64(3)
	if len(minCount) > 0 {
		min = minCount[0]
	}
	sum, n := 0.0, 0
	for lvl := 0; lvl < stat.Levels() && lvl < dyn.Levels(); lvl++ {
		if stat.Count(lvl) < min || dyn.Count(lvl) < min {
			continue
		}
		sm, _ := stat.Mean(lvl)
		dm, _ := dyn.Mean(lvl)
		if dm <= 0 || sm <= 0 {
			continue
		}
		sum += sm / dm
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}
