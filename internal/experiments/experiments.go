// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each runner returns a Report containing the
// series or rows the paper plots, produced either from the closed-form
// analysis (Figs. 9, 10, 12, 13) or from the discrete-event simulation
// (Figs. 6–8, 11, 14 and Tables 4–5), under the Section 5.1 environment:
// a Seagate Barracuda 9LP disk, 1.5 Mbps MPEG-1 streams, Poisson arrivals
// whose rate follows a Zipf time-of-day profile peaking at nine hours,
// and uniform 0–120 minute viewing times.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
)

// Options tunes how much work the runners do.
type Options struct {
	// Seeds is the number of simulation seeds averaged (the paper uses
	// five). Default 3.
	Seeds int

	// Quick shrinks sweeps (fewer grid points, shorter horizons) for
	// tests and benchmarks. Shapes survive; precision drops.
	Quick bool

	// BaseSeed offsets all random seeds, for sensitivity checks.
	BaseSeed int64

	// UniformLadder threads the multi-rate plumbing through the
	// simulation-backed single-disk runners while staying semantically in
	// the single-rate regime: every title carries a one-rung bitrate
	// ladder at the paper's 1.5 Mbps, every generated request is stamped
	// with its title's rate, and the engine is handed Rates = [CR]. The
	// engine normalizes that to the exact single-rate code paths, so
	// reports must be byte-identical with and without the knob — the
	// ladder oracle test pins this against the committed goldens.
	UniformLadder bool

	// Workers bounds how many simulation runs execute concurrently; zero
	// or negative means GOMAXPROCS. Per-run seeds derive from the run's
	// grid position (see MixSeed), and aggregation is positional, so
	// reports are byte-identical for every worker count — only the wall
	// clock changes.
	Workers int

	// Progress, when non-nil, receives one line per completed step. With
	// Workers > 1 it is invoked from multiple goroutines, but calls are
	// serialized by the harness, so an ordinary writer is safe; the line
	// order reflects completion order and is not deterministic.
	Progress func(string)
}

func (o Options) normalized() Options {
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	return o
}

func (o Options) seed(i int) int64 { return o.BaseSeed + int64(i)*7919 }

// progressMu serializes Progress callbacks across the worker pool.
var progressMu sync.Mutex

func (o Options) progress(format string, args ...any) {
	if o.Progress == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	progressMu.Lock()
	defer progressMu.Unlock()
	o.Progress(line)
}

// Env is the fixed evaluation environment of Section 5.1.
type Env struct {
	Spec   diskmodel.Spec
	CR     si.BitRate
	Params core.Params
}

// PaperEnv returns the paper's environment: Barracuda 9LP, MPEG-1 at
// 1.5 Mbps, N = 79, alpha = 1.
func PaperEnv() Env {
	spec := diskmodel.Barracuda9LP()
	cr := si.Mbps(1.5)
	return Env{
		Spec: spec,
		CR:   cr,
		Params: core.Params{
			TR:    spec.TransferRate,
			CR:    cr,
			N:     core.DeriveN(spec.TransferRate, cr),
			Alpha: 1,
		},
	}
}

// RepresentativeK returns the k the paper plugs into the analysis figures
// (footnote 9): the worst-case average number of estimated additional
// requests measured in Fig. 7a — 4 for Round-Robin (T_log = 40 min) and
// 3 for Sweep* and GSS* (T_log = 20 min).
func RepresentativeK(kind sched.Kind) int {
	if kind == sched.RoundRobin {
		return 4
	}
	return 3
}

// PaperTLog returns the history window Section 5.1 settles on per method.
func PaperTLog(kind sched.Kind) si.Seconds {
	if kind == sched.RoundRobin {
		return si.Minutes(40)
	}
	return si.Minutes(20)
}

// Series is one plotted curve: y over x with labels. Simulation-backed
// series whose points average replications also carry per-point dispersion
// statistics; analysis series leave them nil.
type Series struct {
	Name string
	X    []float64
	Y    []float64

	// Std and CI95, when non-nil, run parallel to X: the sample standard
	// deviation across replications at each point, and the half-width of
	// the 95% confidence interval of the mean recorded in Y.
	Std  []float64
	CI95 []float64
}

// AddPoint appends a replication-averaged point with its dispersion
// statistics.
func (s *Series) AddPoint(x float64, st Stats) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, st.Mean)
	s.Std = append(s.Std, st.Std)
	s.CI95 = append(s.CI95, st.CI95)
}

// Table is a printable table of rows.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string
}

// Report is the output of one experiment runner.
type Report struct {
	ID     string // e.g. "fig9"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Tables []Table
	Notes  []string
}

// Fprint renders the report as readable text: tables verbatim, series as
// aligned columns sharing the x axis.
func (r *Report) Fprint(w *strings.Builder) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	if len(r.Series) > 0 {
		fmt.Fprintf(w, "%-12s", r.XLabel)
		for _, s := range r.Series {
			fmt.Fprintf(w, " %16s", s.Name)
			if s.HasStats() {
				fmt.Fprintf(w, " %12s %12s", "sd", "ci95")
			}
		}
		fmt.Fprintln(w)
		for _, x := range r.xGrid() {
			fmt.Fprintf(w, "%-12.4g", x)
			for _, s := range r.Series {
				i, ok := s.indexOf(x)
				if ok {
					fmt.Fprintf(w, " %16.6g", s.Y[i])
				} else {
					fmt.Fprintf(w, " %16s", "-")
				}
				if s.HasStats() {
					if ok {
						fmt.Fprintf(w, " %12.4g %12.4g", s.Std[i], s.CI95[i])
					} else {
						fmt.Fprintf(w, " %12s %12s", "-", "-")
					}
				}
			}
			fmt.Fprintln(w)
		}
	}
	for _, t := range r.Tables {
		fmt.Fprintf(w, "-- %s --\n", t.Name)
		fmt.Fprintf(w, "%s\n", strings.Join(t.Columns, " | "))
		for _, row := range t.Rows {
			fmt.Fprintf(w, "%s\n", strings.Join(row, " | "))
		}
	}
	fmt.Fprintln(w)
}

// String renders the report as text.
func (r *Report) String() string {
	var b strings.Builder
	r.Fprint(&b)
	return b.String()
}

// At returns the series value at x, if sampled there.
func (s Series) At(x float64) (float64, bool) {
	if i, ok := s.indexOf(x); ok {
		return s.Y[i], true
	}
	return 0, false
}

// indexOf returns the sample index at x, if sampled there.
func (s Series) indexOf(x float64) (int, bool) {
	for i, sx := range s.X {
		if sx == x {
			return i, true
		}
	}
	return 0, false
}

// HasStats reports whether the series carries per-point replication
// dispersion statistics.
func (s Series) HasStats() bool { return len(s.Std) > 0 && len(s.CI95) > 0 }

// xGrid returns the sorted union of the x grids of all series: series may
// sample different x values, so output renders over the union.
func (r *Report) xGrid() []float64 {
	xs := map[float64]bool{}
	for _, s := range r.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	grid := make([]float64, 0, len(xs))
	for x := range xs {
		grid = append(grid, x)
	}
	sort.Float64s(grid)
	return grid
}

// Runner produces one experiment's report.
type Runner func(Options) (*Report, error)

// Registry maps experiment ids to runners, in the paper's order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table3", Table3},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"table4", Table4},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"table5", Table5},
		{"ablation-naive", AblationNaive},
		{"ablation-gss-group", AblationGSSGroup},
		{"ablation-dybase", AblationDybase},
		{"ablation-chunks", AblationChunks},
		{"ablation-pages", AblationPages},
		{"ext-vcr", ExtVCR},
		{"ablation-bubbleup", AblationBubbleUp},
		{"ext-modern-disk", ExtModernDisk},
		{"scale-largen", ScaleLargeN},
		{"zipf-sharing", ZipfSharing},
		{"fleet-routing", FleetRouting},
		{"qoe-downgrade", QoEDowngrade},
		{"qoe-adaptation", QoEAdaptation},
	}
}

// Run executes the experiment with the given id.
func Run(id string, opt Options) (*Report, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(opt)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists the registered experiment ids.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// WriteCSV renders the report's series (one row per x value, one column
// per series) and tables as CSV blocks, for plotting with external tools.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(r.Series) > 0 {
		head := []string{r.XLabel}
		for _, s := range r.Series {
			head = append(head, s.Name)
			if s.HasStats() {
				head = append(head, s.Name+" stddev", s.Name+" ci95")
			}
		}
		if err := cw.Write(head); err != nil {
			return err
		}
		f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		for _, x := range r.xGrid() {
			row := []string{f(x)}
			for _, s := range r.Series {
				i, ok := s.indexOf(x)
				if ok {
					row = append(row, f(s.Y[i]))
				} else {
					row = append(row, "")
				}
				if s.HasStats() {
					if ok {
						row = append(row, f(s.Std[i]), f(s.CI95[i]))
					} else {
						row = append(row, "", "")
					}
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	for _, t := range r.Tables {
		if err := cw.Write(t.Columns); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
