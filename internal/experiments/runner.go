package experiments

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/sim"
)

// This file is the parallel execution layer of the experiment harness.
//
// The paper's evaluation is a grid of independent discrete-event
// simulations — schemes × scheduling methods × sweep points × seeds — and
// nothing in one run depends on another, so the harness fans the grid out
// across a bounded worker pool. Two invariants make the parallelism
// invisible in the output:
//
//  1. Deterministic seeding. Every run derives its random streams from
//     (base seed, workload point index, replication index) via MixSeed, a
//     splitmix64 finalizer chain, never from execution order or worker
//     identity. Comparison arms (static vs dynamic, the three methods) at
//     the same workload point deliberately share the same workload seeds:
//     the paper's ratios are paired comparisons, and pairing removes the
//     workload variance from the ratio.
//
//  2. Positional aggregation. Workers write each result into its (point,
//     replication) slot of a preallocated grid; aggregation walks the grid
//     in index order after all runs complete. Reports are therefore
//     byte-identical for any worker count, including Workers = 1.

// Seed stream identifiers: the third MixSeed coordinate, separating the
// independent random streams one run consumes.
const (
	seedTrace = iota // workload (arrival/title/viewing-time) generation
	seedSim          // simulation internals (rotational-delay sampling)
)

// MixSeed derives a deterministic 63-bit seed from a base seed and run
// coordinates, using the splitmix64 finalizer as a mixing function. Equal
// inputs give equal outputs on every platform, and any coordinate change
// decorrelates the whole stream — the property the parallel runner needs
// so that seed assignment is a pure function of a run's position in the
// experiment grid, not of when or where the run executes.
func MixSeed(base int64, coords ...int64) int64 {
	h := splitmix64(uint64(base) + 0x9e3779b97f4a7c15)
	for _, c := range coords {
		h = splitmix64(h ^ uint64(c))
	}
	return int64(h >> 1)
}

// splitmix64 is the finalizer of Steele, Lea & Flood's SplitMix generator:
// an invertible bijection on 64-bit words with strong avalanche behaviour.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// runSeed is the seed for stream `stream` of replication `rep` of workload
// point `point` under the options' base seed. Configuration arms that
// compare schemes or methods on the same workload pass the same point
// index, so the comparison is paired.
func (o Options) runSeed(point, rep, stream int) int64 {
	return MixSeed(o.BaseSeed, int64(point), int64(rep), int64(stream))
}

// workerCount resolves the Workers knob: non-positive means GOMAXPROCS,
// and the pool never exceeds the number of runs.
func (o Options) workerCount(runs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > runs {
		w = runs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachCell executes run(0..cells-1) across at most workers goroutines.
// All dispatched cells complete before it returns. The first error stops
// dispatch of the remaining cells and is returned.
func forEachCell(workers, cells int, run func(cell int) error) error {
	if cells <= 0 {
		return nil
	}
	if workers > cells {
		workers = cells
	}
	if workers <= 1 {
		for c := 0; c < cells; c++ {
			if err := run(c); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				if failed() {
					continue // drain without running once something failed
				}
				if err := run(c); err != nil {
					fail(err)
				}
			}
		}()
	}
	for c := 0; c < cells; c++ {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// runGrid executes fn for every cell of a points×reps grid across the
// configured worker pool and returns the results indexed [point][rep].
// fn must be a pure function of its coordinates plus read-only captured
// state (a shared *catalog.Library is fine; it is immutable after
// construction). Results land positionally, so anything aggregated from
// the returned grid in index order is independent of the worker count and
// of goroutine scheduling. The first error cancels the undispatched
// remainder of the grid.
func runGrid[T any](opt Options, points, reps int, fn func(point, rep int) (T, error)) ([][]T, error) {
	out := make([][]T, points)
	for p := range out {
		out[p] = make([]T, reps)
	}
	err := forEachCell(opt.workerCount(points*reps), points*reps, func(cell int) error {
		p, r := cell/reps, cell%reps
		v, err := fn(p, r)
		if err != nil {
			return err
		}
		out[p][r] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// tableKey identifies a dynamic sizing table by its derivation inputs:
// the disk model, the scheduling method (whose worst-case latency model
// the recurrence integrates), the consumption rate, and the inertia
// slack. Spec is a plain value type, so the key is comparable.
type tableKey struct {
	spec  diskmodel.Spec
	kind  sched.Kind
	cr    si.BitRate
	alpha int
}

var (
	tableCacheMu sync.Mutex
	tableCache   = map[tableKey]*core.Table{}
)

// sharedSizeTable returns the memoized dynamic sizing table for the
// given derivation inputs, building it on first use. Tables are immutable
// after construction, so one instance is safely shared by every cell of
// every grid in the process — the replicated (point, seed) runs of one
// experiment, and equally the repeated experiments of a full regeneration
// — instead of each sim.Run rebuilding the same O(N²·√N) table. Sharing
// is a pure memoization: the engine validates the table against the
// config it is handed and would reject a mismatched one, and results are
// bit-identical with and without the cache.
func sharedSizeTable(spec diskmodel.Spec, kind sched.Kind, cr si.BitRate, alpha int) *core.Table {
	key := tableKey{spec: spec, kind: kind, cr: cr, alpha: alpha}
	tableCacheMu.Lock()
	defer tableCacheMu.Unlock()
	if t, ok := tableCache[key]; ok {
		return t
	}
	p := core.Params{TR: spec.TransferRate, CR: cr, N: core.DeriveN(spec.TransferRate, cr), Alpha: alpha}
	t := core.NewTable(p, sched.NewMethod(kind).DLModel(spec))
	tableCache[key] = t
	return t
}

// libKey identifies a default-parameterized library by its derivation
// inputs. Spec is a plain value type, so the key is comparable.
type libKey struct {
	titles, disks int
	spec          diskmodel.Spec
	theta         float64
}

var (
	libCacheMu sync.Mutex
	libCache   = map[libKey]*catalog.Library{}
)

// sharedLibrary returns the memoized library for cfg, building it on
// first use. Libraries are immutable after construction, so one instance
// is safely shared by every cell of every grid in the process — Fig. 14
// alone rebuilds the identical catalog for every (memory, scheme, seed)
// cell of a skew otherwise. Configs carrying override hooks (Video,
// Place) or a chunked layout are built fresh each time: function fields
// are not comparable, so their identity cannot live in the cache key.
// Sharing is a pure memoization — catalog.New is deterministic in its
// config — so reports are bit-identical with and without the cache.
func sharedLibrary(cfg catalog.Config) (*catalog.Library, error) {
	if cfg.Video != nil || cfg.Place != nil || cfg.ChunkSize != 0 || cfg.MaxRead != 0 {
		return catalog.New(cfg)
	}
	key := libKey{titles: cfg.Titles, disks: cfg.Disks, spec: cfg.Spec, theta: cfg.PopularityTheta}
	libCacheMu.Lock()
	defer libCacheMu.Unlock()
	if l, ok := libCache[key]; ok {
		return l, nil
	}
	l, err := catalog.New(cfg)
	if err != nil {
		return nil, err
	}
	libCache[key] = l
	return l, nil
}

// runSim executes one simulation with the cached sizing table for the
// config's parameters installed. Every simulation-backed runner goes
// through it; configs that already carry a table keep it.
func runSim(cfg sim.Config) (*sim.Result, error) {
	if cfg.SizeTable == nil {
		cfg.SizeTable = sharedSizeTable(cfg.Spec, cfg.Method.Kind, cfg.CR, cfg.Alpha)
	}
	return sim.Run(cfg)
}

// SimulateReplications runs reps independent simulations across at most
// workers goroutines (workers <= 0 means GOMAXPROCS), building each run's
// configuration with build — typically a fresh trace and seeds per
// replication. Results are returned in replication order regardless of
// scheduling, so downstream aggregation is deterministic.
func SimulateReplications(build func(rep int) (sim.Config, error), reps, workers int) ([]*sim.Result, error) {
	out := make([]*sim.Result, reps)
	err := forEachCell(Options{Workers: workers}.workerCount(reps), reps, func(rep int) error {
		cfg, err := build(rep)
		if err != nil {
			return err
		}
		res, err := runSim(cfg)
		if err != nil {
			return err
		}
		out[rep] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats summarizes the replications of one measurement: the sample count,
// mean, sample standard deviation, and the half-width of the two-sided
// 95% confidence interval of the mean under the Student t distribution
// (the dispersion statistics the evaluation's averaged points carry).
type Stats struct {
	N    int
	Mean float64
	Std  float64
	CI95 float64
}

// Summarize computes replication statistics over samples. With fewer than
// two samples the dispersion terms are zero: one observation carries no
// spread information.
func Summarize(samples []float64) Stats {
	st := Stats{N: len(samples)}
	if st.N == 0 {
		return st
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	st.Mean = sum / float64(st.N)
	if st.N < 2 {
		return st
	}
	var ss float64
	for _, v := range samples {
		d := v - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(st.N-1))
	st.CI95 = tCrit95(st.N-1) * st.Std / math.Sqrt(float64(st.N))
	return st
}

// tCrit95 returns the two-sided 95% critical value of the Student t
// distribution with df degrees of freedom, tabulated for the small
// replication counts experiments actually use and converging to the
// normal 1.96 beyond the table.
func tCrit95(df int) float64 {
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		return 0
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.960
}
