package experiments

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func TestMixSeed(t *testing.T) {
	// Deterministic: equal inputs, equal outputs.
	if MixSeed(1, 2, 3) != MixSeed(1, 2, 3) {
		t.Error("MixSeed not deterministic")
	}
	// Non-negative (rand.NewSource accepts any int64, but readable seeds
	// help debugging).
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for p := 0; p < 8; p++ {
			for r := 0; r < 8; r++ {
				for s := 0; s < 2; s++ {
					v := MixSeed(base, int64(p), int64(r), int64(s))
					if v < 0 {
						t.Fatalf("MixSeed(%d,%d,%d,%d) = %d negative", base, p, r, s, v)
					}
					if seen[v] {
						t.Fatalf("seed collision at (%d,%d,%d,%d)", base, p, r, s)
					}
					seen[v] = true
				}
			}
		}
	}
	// Every coordinate matters.
	base := MixSeed(7, 1, 1, 1)
	for _, other := range []int64{MixSeed(8, 1, 1, 1), MixSeed(7, 2, 1, 1), MixSeed(7, 1, 2, 1), MixSeed(7, 1, 1, 2)} {
		if other == base {
			t.Error("coordinate change did not change the seed")
		}
	}
}

func TestSummarize(t *testing.T) {
	// Hand-computed: {1,2,3} has mean 2, sample stddev 1, and a 95% CI
	// half-width of t_{0.975,2} / sqrt(3) = 4.303/1.7320508 = 2.4843.
	st := Summarize([]float64{1, 2, 3})
	if st.N != 3 || st.Mean != 2 {
		t.Errorf("mean stats = %+v", st)
	}
	if math.Abs(st.Std-1) > 1e-12 {
		t.Errorf("std = %v, want 1", st.Std)
	}
	if want := 4.303 / math.Sqrt(3); math.Abs(st.CI95-want) > 1e-9 {
		t.Errorf("ci95 = %v, want %v", st.CI95, want)
	}
	// Hand-computed: {1,2,3,4,5} has stddev sqrt(2.5) and CI half-width
	// 2.776 * sqrt(2.5)/sqrt(5) = 1.96292...
	st = Summarize([]float64{1, 2, 3, 4, 5})
	if math.Abs(st.Mean-3) > 1e-12 || math.Abs(st.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stats = %+v", st)
	}
	if want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5); math.Abs(st.CI95-want) > 1e-9 {
		t.Errorf("ci95 = %v, want %v", st.CI95, want)
	}
	// Degenerate cases: empty and single samples carry no dispersion.
	if st := Summarize(nil); st.N != 0 || st.Mean != 0 || st.Std != 0 || st.CI95 != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	if st := Summarize([]float64{42}); st.N != 1 || st.Mean != 42 || st.Std != 0 || st.CI95 != 0 {
		t.Errorf("singleton stats = %+v", st)
	}
	// Constant samples have zero spread.
	if st := Summarize([]float64{2, 2, 2, 2}); st.Std != 0 || st.CI95 != 0 {
		t.Errorf("constant stats = %+v", st)
	}
	// Large n converges to the normal critical value.
	if got := tCrit95(200); got != 1.960 {
		t.Errorf("tCrit95(200) = %v", got)
	}
	if got := tCrit95(0); got != 0 {
		t.Errorf("tCrit95(0) = %v", got)
	}
}

func TestRunGridOrderAndErrors(t *testing.T) {
	// Results land positionally for any worker count.
	for _, workers := range []int{1, 3, 16} {
		opt := Options{Workers: workers}
		got, err := runGrid(opt, 4, 3, func(p, r int) (int, error) {
			return p*100 + r, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 4; p++ {
			for r := 0; r < 3; r++ {
				if got[p][r] != p*100+r {
					t.Fatalf("workers=%d: cell (%d,%d) = %d", workers, p, r, got[p][r])
				}
			}
		}
	}
	// An error surfaces and cancels the undispatched remainder.
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := runGrid(Options{Workers: 2}, 50, 1, func(p, r int) (int, error) {
		ran.Add(1)
		if p == 3 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n >= 50 {
		t.Errorf("error did not stop dispatch: %d cells ran", n)
	}
	// Zero-size grids are a no-op.
	if out, err := runGrid[int](Options{}, 0, 3, nil); err != nil || len(out) != 0 {
		t.Errorf("empty grid: %v %v", out, err)
	}
}

func TestWorkerCount(t *testing.T) {
	if got := (Options{}).workerCount(100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d", got)
	}
	if got := (Options{Workers: 8}).workerCount(3); got != 3 {
		t.Errorf("workers not capped at runs: %d", got)
	}
	if got := (Options{Workers: -1}).workerCount(0); got != 1 {
		t.Errorf("degenerate workers = %d", got)
	}
}

func TestProgressSerialized(t *testing.T) {
	var lines []string
	opt := Options{Workers: 8, Progress: func(s string) { lines = append(lines, s) }}
	_, err := runGrid(opt, 8, 4, func(p, r int) (int, error) {
		opt.progress("cell %d/%d", p, r)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The callback appends to a plain slice with no locking of its own;
	// under -race this fails if the harness did not serialize calls.
	if len(lines) != 32 {
		t.Errorf("got %d progress lines, want 32", len(lines))
	}
}

// TestParallelDeterminism is the tentpole's regression test: one
// experiment run sequentially and run with many workers at the same base
// seed must render byte-identical reports, and repeated parallel runs
// must be stable across goroutine schedules.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	render := func(workers int) (string, string) {
		opt := Options{Quick: true, Seeds: 2, BaseSeed: 42, Workers: workers}
		rep, err := Fig7(opt)
		if err != nil {
			t.Fatal(err)
		}
		var csv strings.Builder
		if err := rep.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return rep.String(), csv.String()
	}
	seqText, seqCSV := render(1)
	parText, parCSV := render(8)
	if seqText != parText {
		t.Errorf("Workers=8 text differs from Workers=1:\n--- seq ---\n%s\n--- par ---\n%s", seqText, parText)
	}
	if seqCSV != parCSV {
		t.Error("Workers=8 CSV differs from Workers=1")
	}
	par2Text, par2CSV := render(8)
	if parText != par2Text || parCSV != par2CSV {
		t.Error("two Workers=8 runs differ: output depends on goroutine schedule")
	}
	// The stats columns actually carry data: with 2 seeds at least one
	// simulated point should show nonzero spread.
	if !strings.Contains(seqCSV, "stddev") || !strings.Contains(seqCSV, "ci95") {
		t.Error("CSV missing replication-statistics columns")
	}
}

// The ablation and table experiments run under many workers must also be
// order-independent; exercise the cheapest simulation-backed ones.
func TestParallelDeterminismAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	for _, run := range []struct {
		id string
		fn Runner
	}{
		{"ablation-pages", AblationPages},
		{"ablation-chunks", AblationChunks},
	} {
		render := func(workers int) string {
			rep, err := run.fn(Options{Quick: true, Seeds: 1, BaseSeed: 7, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			return rep.String()
		}
		if seq, par := render(1), render(6); seq != par {
			t.Errorf("%s: parallel output differs from sequential:\n%s\nvs\n%s", run.id, seq, par)
		}
	}
}

func TestSimulateReplications(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	lib, err := singleDisk()
	if err != nil {
		t.Fatal(err)
	}
	build := func(rep int) (sim.Config, error) {
		tr := dayTrace(lib, 1, 200, MixSeed(9, int64(rep), seedTrace), true)
		return simConfig(sim.Dynamic, methodRR(), lib, tr, MixSeed(9, int64(rep), seedSim)), nil
	}
	par, err := SimulateReplications(build, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SimulateReplications(build, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par {
		if par[i].Served != seq[i].Served || par[i].Rejected != seq[i].Rejected {
			t.Errorf("replication %d differs between parallel and sequential", i)
		}
	}
	if par[0].Served == 0 {
		t.Error("no requests served")
	}
	wantErr := errors.New("nope")
	if _, err := SimulateReplications(func(int) (sim.Config, error) { return sim.Config{}, wantErr }, 2, 2); !errors.Is(err, wantErr) {
		t.Errorf("build error not surfaced: %v", err)
	}
}

// Concurrent RunExperiment calls must be safe (the fig14 cache is shared
// process state).
func TestConcurrentRunExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Run("ablation-pages", Options{Quick: true, Seeds: 1, Workers: 2})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// BenchmarkRunExperimentParallel compares the wall clock of one quick
// simulation-backed experiment at Workers=1 against Workers=NumCPU. On a
// multicore machine the parallel case should approach a NumCPU-fold
// speedup (the runs are independent and CPU-bound); on a single-core
// machine the two are equivalent.
func BenchmarkRunExperimentParallel(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Fig7(Options{Quick: true, Seeds: 2, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
