package experiments

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/scale"
	"repro/internal/sched"
)

// FleetRouting runs the fleet scenario (internal/scale): the same
// knee-capacity ramp offered twice to a routed 4×8-disk fleet over a
// narrow Zipf catalog — once with a single copy of every title, once
// with the hot half replicated across servers. The report pairs the
// measured arms with the exact admission bound of "Scalable Distributed
// Video-on-Demand" (arXiv:0804.0743): concurrently admissible streams
// are capped by the max-flow of the bipartite demand graph
//
//	source → title_i (expected concurrent demand, Zipf)
//	title_i → disk_g (∞, one edge per replica segment)
//	disk_g → sink   (the router's knee cap)
//
// so a hot title's audience is bounded by the aggregate cap of the
// disks holding its copies, no matter how idle the rest of the fleet
// is. The bound curve over the copy count is analytic; the simulated
// arms land on it at copies = 1 and copies = Servers.
func FleetRouting(opt Options) (*Report, error) {
	opt = opt.normalized()
	reps := opt.Seeds
	if opt.Quick && reps > 1 {
		reps = 1
	}
	method := sched.RoundRobin
	env := scale.FleetEnvironment()
	table := scale.NewFleetSizeTable(method)
	const (
		servers  = 4
		disksPer = 8
		titles   = 8
	)
	disks := servers * disksPer
	cap := env.N / 2 // the router's Theorem 1 memory-knee cap, floor(N/2)
	target := cap * disks

	// Expected concurrent demand per title under the classic 1/rank
	// Zipf law (theta = 0), at an offered load of the fleet's full knee
	// capacity.
	weights := catalog.ZipfWeights(titles, 0)
	demand := make([]int, titles)
	for i, w := range weights {
		demand[i] = int(w*float64(target) + 0.5)
	}

	// The analytic bound curve: admissible streams vs copies per hot
	// title. Each point lays the catalog out with the fleet's policy at
	// that copy count and takes the max-flow of the demand graph.
	bound := Series{Name: "max-flow admission bound"}
	bounds := make(map[int]int, servers)
	for c := 1; c <= servers; c++ {
		cold := 2
		if cold > c {
			cold = c
		}
		var policy catalog.PlacementPolicy = catalog.Replicated{
			Base:       catalog.LeastLoaded{},
			HotTitles:  titles / 2,
			Copies:     c,
			ColdCopies: cold,
			GroupSize:  disksPer,
		}
		if c == 1 {
			policy = catalog.LeastLoaded{} // the baseline arm's layout
		}
		lib, err := catalog.New(catalog.Config{
			Titles:          titles,
			Disks:           disks,
			Spec:            env.Spec,
			PopularityTheta: 0,
			Policy:          policy,
		})
		if err != nil {
			return nil, err
		}
		flow := admissionBound(lib, demand, disks, cap)
		bounds[c] = flow
		bound.X = append(bound.X, float64(c))
		bound.Y = append(bound.Y, float64(flow))
	}

	type pair struct {
		base, rep *scale.FleetResult
	}
	runs, err := runGrid(opt, 1, reps, func(_, rep int) (pair, error) {
		// Both arms replay the identical trace: the seed is drawn
		// before the arms diverge, so the comparison is paired.
		cfg := scale.FleetConfig{
			Servers:        servers,
			DisksPerServer: disksPer,
			Titles:         titles,
			Method:         method,
			Seed:           opt.runSeed(0, rep, seedTrace),
			SizeTable:      table,
			Quick:          opt.Quick,
		}
		base, err := scale.RunFleet(cfg)
		if err != nil {
			return pair{}, err
		}
		cfg.Replicate = true
		replicated, err := scale.RunFleet(cfg)
		if err != nil {
			return pair{}, err
		}
		opt.progress("fleet-routing: replication %d/%d done", rep+1, reps)
		return pair{base: base, rep: replicated}, nil
	})
	if err != nil {
		return nil, err
	}
	results := runs[0]

	summary := Table{
		Name: "paired arms per replication (identical trace, single copy vs replicated hot set)",
		Columns: []string{
			"rep", "requests", "admitted (single)", "admitted (replicated)", "ratio",
			"failovers", "rejected (replicated)", "peak (single)", "peak (replicated)", "underruns",
		},
	}
	ratios := make([]float64, reps)
	basePeaks := make([]float64, reps)
	repPeaks := make([]float64, reps)
	underruns := 0
	for r, p := range results {
		ratio := float64(p.rep.Routed) / float64(p.base.Routed)
		ratios[r] = ratio
		basePeaks[r] = float64(p.base.PeakTotal)
		repPeaks[r] = float64(p.rep.PeakTotal)
		underruns += p.base.Underruns + p.rep.Underruns
		summary.Rows = append(summary.Rows, []string{
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%d", p.base.Requests),
			fmt.Sprintf("%d", p.base.Routed),
			fmt.Sprintf("%d", p.rep.Routed),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%d", p.rep.Failovers),
			fmt.Sprintf("%d", p.rep.Rejected),
			fmt.Sprintf("%d", p.base.PeakTotal),
			fmt.Sprintf("%d", p.rep.PeakTotal),
			fmt.Sprintf("%d", p.base.Underruns+p.rep.Underruns),
		})
	}

	demandTable := Table{
		Name:    "expected concurrent demand per title (Zipf theta = 0) vs per-arm disk bandwidth",
		Columns: []string{"title (rank)", "demand (streams)", "single-copy ceiling", "replicated ceiling"},
	}
	for i, d := range demand {
		copies := servers
		if i >= titles/2 {
			copies = 2
		}
		demandTable.Rows = append(demandTable.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", min(d, cap)),
			fmt.Sprintf("%d", min(d, copies*cap)),
		})
	}

	peakBase := Series{Name: "measured peak streams (single copy)"}
	peakBase.AddPoint(1, Summarize(basePeaks))
	peakRep := Series{Name: "measured peak streams (replicated)"}
	peakRep.AddPoint(float64(servers), Summarize(repPeaks))
	ratio := Series{Name: "admitted ratio (replicated/single)"}
	ratio.AddPoint(float64(servers), Summarize(ratios))

	notes := []string{
		fmt.Sprintf("environment: %s, %d Mbps streams, N = %d/disk (Eq. 1), knee cap = %d/disk, %d servers x %d disks, %d titles",
			env.Spec.Name, int(float64(env.CR)/1e6), env.N, cap, servers, disksPer, titles),
		fmt.Sprintf("max-flow bound (arXiv:0804.0743): %d streams at one copy, %d with the hot set replicated fleet-wide — the single-copy fleet cannot commit more than the %d data-holding disks regardless of idle spindles",
			bounds[1], bounds[servers], titles),
		"acceptance gate: admitted ratio >= 2x with 0 underruns in both arms",
	}
	if underruns == 0 {
		notes = append(notes, fmt.Sprintf("sizing guarantee held fleet-wide: 0 underruns across %d paired replications (ramp-aware planning)", reps))
	} else {
		notes = append(notes, fmt.Sprintf("sizing guarantee VIOLATED: %d underruns across %d paired replications", underruns, reps))
	}

	return &Report{
		ID:     "fleet-routing",
		Title:  "Extension: placement policy and routed admission across a multi-server fleet",
		XLabel: "copies per hot title",
		YLabel: "streams",
		Series: []Series{bound, peakBase, peakRep, ratio},
		Tables: []Table{summary, demandTable},
		Notes:  notes,
	}, nil
}

// admissionBound computes the max-flow admission bound: expected title
// demand on one side, per-disk stream caps on the other, an infinite
// edge wherever the library holds a replica segment. The graph is tiny
// (titles + disks nodes), so plain Edmonds-Karp is exact and instant.
func admissionBound(lib *catalog.Library, demand []int, disks, cap int) int {
	titles := lib.Len()
	n := 2 + titles + disks
	src, sink := 0, n-1
	title := func(i int) int { return 1 + i }
	disk := func(g int) int { return 1 + titles + g }

	capacity := make([][]int, n)
	for i := range capacity {
		capacity[i] = make([]int, n)
	}
	inf := 0
	for _, d := range demand {
		inf += d
	}
	for i := 0; i < titles; i++ {
		capacity[src][title(i)] = demand[i]
		for _, rep := range lib.Replicas(i) {
			for _, seg := range rep.Segments {
				capacity[title(i)][disk(seg.Disk)] = inf
			}
		}
	}
	for g := 0; g < disks; g++ {
		capacity[disk(g)][sink] = cap
	}

	flow := 0
	for {
		// BFS for an augmenting path in the residual graph.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue := []int{src}
		for len(queue) > 0 && parent[sink] < 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if parent[v] < 0 && capacity[u][v] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[sink] < 0 {
			return flow
		}
		aug := inf
		for v := sink; v != src; v = parent[v] {
			if c := capacity[parent[v]][v]; c < aug {
				aug = c
			}
		}
		for v := sink; v != src; v = parent[v] {
			capacity[parent[v]][v] -= aug
			capacity[v][parent[v]] += aug
		}
		flow += aug
	}
}
