//go:build race

package experiments

const raceEnabled = true
