package experiments

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/sim"
)

// QoELadder is the bitrate ladder every title of the QoE experiment
// carries: the paper's MPEG-1 rate on top, with two lower rungs a
// downgrading admission can fall back to.
func QoELadder() []si.BitRate {
	return []si.BitRate{si.Mbps(1.5), si.Mbps(1.0), si.Mbps(0.5)}
}

// qoeArm is one admission policy under comparison.
type qoeArm struct {
	name      string
	scheme    sim.Scheme
	downgrade bool
}

// qoeObs is one (arm, load, replication) run's QoE measurements.
type qoeObs struct {
	served, rejected, downgrades int
	underruns, starved           int
	startup, starveProb, peakMB  float64
	rungs                        [3]int // served streams per ladder rung
}

// QoEDowngrade compares three admission policies over a single disk whose
// titles carry the QoELadder bitrate ladder, under a tight-peak (theta=0)
// day profile swept across offered loads:
//
//   - reject-only: the paper's dynamic scheme sized for the full rate
//     set; an arrival that does not fit at its title's rate is rejected.
//   - downgrade: the same scheme, but the arrival steps down its title's
//     ladder before giving up — capacity converts into lower rungs
//     instead of rejections.
//   - knee+downgrade: downgrading admission under the memory-knee cap
//     (admission stops at half the disk's bandwidth), trading peak
//     concurrency for an order-of-magnitude smaller per-stream memory.
//
// All arms of one replication replay the identical trace (the seed is
// drawn before the arms diverge), so the acceptance curves are paired.
// The report carries the per-arm viewers-served curves plus the QoE
// columns — mean startup delay and starvation probability — and the
// delivered-rung distribution table.
func QoEDowngrade(opt Options) (*Report, error) {
	opt = opt.normalized()
	env := PaperEnv()
	ladder := QoELadder()
	lib, err := sharedLibrary(catalog.Config{
		Titles:          6,
		Disks:           1,
		Spec:            env.Spec,
		PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			v := catalog.MPEG1Video(id)
			v.Ladder = ladder
			return v
		},
	})
	if err != nil {
		return nil, err
	}
	arms := []qoeArm{
		{name: "reject-only", scheme: sim.Dynamic},
		{name: "downgrade", scheme: sim.Dynamic, downgrade: true},
		{name: "knee+downgrade", scheme: sim.Knee, downgrade: true},
	}
	points := []float64{1, 1.5, 2}
	if opt.Quick {
		points = []float64{1, 2}
	}
	method := sched.NewMethod(sched.RoundRobin)

	cells, err := runGrid(opt, len(points), opt.Seeds, func(p, rep int) ([3]qoeObs, error) {
		var out [3]qoeObs
		total := points[p] * singleDiskArrivalsPerDay
		tr := dayTrace(lib, 0, total, opt.runSeed(p, rep, seedTrace), opt.Quick)
		// Requests arrive at their title's top rung; downgrading — where
		// enabled — is the only source of lower-rung admissions.
		for i, r := range tr.Requests {
			tr.Requests[i].Rate = lib.Video(r.Video).Rate
		}
		for a, arm := range arms {
			cfg := simConfig(arm.scheme, method, lib, tr, opt.runSeed(p, rep, seedSim))
			cfg.Rates = ladder
			cfg.Downgrade = arm.downgrade
			res, err := runSim(cfg)
			if err != nil {
				return out, err
			}
			o := qoeObs{
				served:     res.Served,
				rejected:   res.Rejected,
				downgrades: res.Downgrades,
				underruns:  res.Underruns,
				starved:    res.StarvedStreams,
				startup:    res.ColdLatency.Mean(),
				starveProb: res.StarvationProb(),
				peakMB:     res.PeakMemory.MegabytesVal(),
			}
			for ri, r := range ladder {
				o.rungs[ri] = res.ServedByRate[r]
			}
			out[a] = o
		}
		opt.progress("qoe-downgrade load x%.2g seed %d done", points[p], rep)
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Per-arm acceptance curves with the QoE columns alongside.
	served := make([]Series, len(arms))
	startup := make([]Series, len(arms))
	starvation := make([]Series, len(arms))
	for a, arm := range arms {
		served[a] = Series{Name: "served/" + arm.name}
		startup[a] = Series{Name: "startup delay (s)/" + arm.name}
		starvation[a] = Series{Name: "starvation prob/" + arm.name}
	}
	mean := func(p, a int, get func(qoeObs) float64) float64 {
		var sum float64
		for _, reps := range cells[p] {
			sum += get(reps[a])
		}
		return sum / float64(len(cells[p]))
	}
	for p, x := range points {
		for a := range arms {
			vs := make([][]float64, 3)
			for _, reps := range cells[p] {
				o := reps[a]
				vs[0] = append(vs[0], float64(o.served))
				vs[1] = append(vs[1], o.startup)
				vs[2] = append(vs[2], o.starveProb)
			}
			served[a].AddPoint(x, Summarize(vs[0]))
			startup[a].AddPoint(x, Summarize(vs[1]))
			starvation[a].AddPoint(x, Summarize(vs[2]))
		}
	}

	table := Table{
		Name: "per-arm means over replications (paired traces)",
		Columns: []string{
			"load", "arm", "served", "rejected", "downgrades", "underruns",
			"starved streams", "peak mem (MB)", "served@1.5", "served@1.0", "served@0.5",
		},
	}
	for p, x := range points {
		for a, arm := range arms {
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("x%.2g", x),
				arm.name,
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.served) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.rejected) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.downgrades) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.underruns) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.starved) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return o.peakMB })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.rungs[0]) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.rungs[1]) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.rungs[2]) })),
			})
		}
	}

	// The acceptance gate: at every load point the downgrading arm must
	// serve strictly more viewers than reject-only without paying in
	// underruns (no more than the reject-only arm's).
	gate := true
	worstLoad := points[len(points)-1]
	var gateServedRej, gateServedDown, gateURej, gateUDown float64
	for p, x := range points {
		rej := mean(p, 0, func(o qoeObs) float64 { return float64(o.served) })
		down := mean(p, 1, func(o qoeObs) float64 { return float64(o.served) })
		uRej := mean(p, 0, func(o qoeObs) float64 { return float64(o.underruns) })
		uDown := mean(p, 1, func(o qoeObs) float64 { return float64(o.underruns) })
		if down <= rej || uDown > uRej {
			gate = false
		}
		if x == worstLoad {
			gateServedRej, gateServedDown, gateURej, gateUDown = rej, down, uRej, uDown
		}
	}
	notes := []string{
		fmt.Sprintf("environment: %s, ladder 1.5/1.0/0.5 Mbps (N = %d at the top rung), theta=0 day profile, 6 titles, 1 disk",
			env.Spec.Name, env.Params.N),
		"acceptance gate: downgrading admits strictly more viewers than reject-only at no more underruns, at every load point",
	}
	if gate {
		notes = append(notes, fmt.Sprintf("gate held: at load x%.2g downgrading served %.1f viewers vs %.1f reject-only, underruns %.1f vs %.1f",
			worstLoad, gateServedDown, gateServedRej, gateUDown, gateURej))
	} else {
		notes = append(notes, "gate VIOLATED: downgrading did not strictly out-admit reject-only within its underrun budget")
	}

	series := append(append(served, startup...), starvation...)
	return &Report{
		ID:     "qoe-downgrade",
		Title:  "Extension: downgrading admission over a bitrate ladder, with QoE accounting",
		XLabel: "offered load (x base day)",
		YLabel: "viewers served",
		Series: series,
		Tables: []Table{table},
		Notes:  notes,
	}, nil
}
