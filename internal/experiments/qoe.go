package experiments

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/sim"
)

// QoELadder is the bitrate ladder every title of the QoE experiment
// carries: the paper's MPEG-1 rate on top, with two lower rungs a
// downgrading admission can fall back to.
func QoELadder() []si.BitRate {
	return []si.BitRate{si.Mbps(1.5), si.Mbps(1.0), si.Mbps(0.5)}
}

// qoeArm is one admission policy under comparison.
type qoeArm struct {
	name      string
	scheme    sim.Scheme
	downgrade bool
}

// qoeObs is one (arm, load, replication) run's QoE measurements.
type qoeObs struct {
	served, rejected, downgrades int
	underruns, starved           int
	startup, starveProb, peakMB  float64
	rungs                        [3]int // served streams per ladder rung
}

// QoEDowngrade compares three admission policies over a single disk whose
// titles carry the QoELadder bitrate ladder, under a tight-peak (theta=0)
// day profile swept across offered loads:
//
//   - reject-only: the paper's dynamic scheme sized for the full rate
//     set; an arrival that does not fit at its title's rate is rejected.
//   - downgrade: the same scheme, but the arrival steps down its title's
//     ladder before giving up — capacity converts into lower rungs
//     instead of rejections.
//   - knee+downgrade: downgrading admission under the memory-knee cap
//     (admission stops at half the disk's bandwidth), trading peak
//     concurrency for an order-of-magnitude smaller per-stream memory.
//
// All arms of one replication replay the identical trace (the seed is
// drawn before the arms diverge), so the acceptance curves are paired.
// The report carries the per-arm viewers-served curves plus the QoE
// columns — mean startup delay and starvation probability — and the
// delivered-rung distribution table.
func QoEDowngrade(opt Options) (*Report, error) {
	opt = opt.normalized()
	env := PaperEnv()
	ladder := QoELadder()
	lib, err := sharedLibrary(catalog.Config{
		Titles:          6,
		Disks:           1,
		Spec:            env.Spec,
		PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			v := catalog.MPEG1Video(id)
			v.Ladder = ladder
			return v
		},
	})
	if err != nil {
		return nil, err
	}
	arms := []qoeArm{
		{name: "reject-only", scheme: sim.Dynamic},
		{name: "downgrade", scheme: sim.Dynamic, downgrade: true},
		{name: "knee+downgrade", scheme: sim.Knee, downgrade: true},
	}
	points := []float64{1, 1.5, 2}
	if opt.Quick {
		points = []float64{1, 2}
	}
	method := sched.NewMethod(sched.RoundRobin)

	cells, err := runGrid(opt, len(points), opt.Seeds, func(p, rep int) ([3]qoeObs, error) {
		var out [3]qoeObs
		total := points[p] * singleDiskArrivalsPerDay
		tr := dayTrace(lib, 0, total, opt.runSeed(p, rep, seedTrace), opt.Quick)
		// Requests arrive at their title's top rung; downgrading — where
		// enabled — is the only source of lower-rung admissions.
		for i, r := range tr.Requests {
			tr.Requests[i].Rate = lib.Video(r.Video).Rate
		}
		for a, arm := range arms {
			cfg := simConfig(arm.scheme, method, lib, tr, opt.runSeed(p, rep, seedSim))
			cfg.Rates = ladder
			cfg.Downgrade = arm.downgrade
			res, err := runSim(cfg)
			if err != nil {
				return out, err
			}
			o := qoeObs{
				served:     res.Served,
				rejected:   res.Rejected,
				downgrades: res.Downgrades,
				underruns:  res.Underruns,
				starved:    res.StarvedStreams,
				startup:    res.ColdLatency.Mean(),
				starveProb: res.StarvationProb(),
				peakMB:     res.PeakMemory.MegabytesVal(),
			}
			for ri, r := range ladder {
				o.rungs[ri] = res.ServedByRate[r]
			}
			out[a] = o
		}
		opt.progress("qoe-downgrade load x%.2g seed %d done", points[p], rep)
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Per-arm acceptance curves with the QoE columns alongside.
	served := make([]Series, len(arms))
	startup := make([]Series, len(arms))
	starvation := make([]Series, len(arms))
	for a, arm := range arms {
		served[a] = Series{Name: "served/" + arm.name}
		startup[a] = Series{Name: "startup delay (s)/" + arm.name}
		starvation[a] = Series{Name: "starvation prob/" + arm.name}
	}
	mean := func(p, a int, get func(qoeObs) float64) float64 {
		var sum float64
		for _, reps := range cells[p] {
			sum += get(reps[a])
		}
		return sum / float64(len(cells[p]))
	}
	for p, x := range points {
		for a := range arms {
			vs := make([][]float64, 3)
			for _, reps := range cells[p] {
				o := reps[a]
				vs[0] = append(vs[0], float64(o.served))
				vs[1] = append(vs[1], o.startup)
				vs[2] = append(vs[2], o.starveProb)
			}
			served[a].AddPoint(x, Summarize(vs[0]))
			startup[a].AddPoint(x, Summarize(vs[1]))
			starvation[a].AddPoint(x, Summarize(vs[2]))
		}
	}

	table := Table{
		Name: "per-arm means over replications (paired traces)",
		Columns: []string{
			"load", "arm", "served", "rejected", "downgrades", "underruns",
			"starved streams", "peak mem (MB)", "served@1.5", "served@1.0", "served@0.5",
		},
	}
	for p, x := range points {
		for a, arm := range arms {
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("x%.2g", x),
				arm.name,
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.served) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.rejected) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.downgrades) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.underruns) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.starved) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return o.peakMB })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.rungs[0]) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.rungs[1]) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o qoeObs) float64 { return float64(o.rungs[2]) })),
			})
		}
	}

	// The acceptance gate: at every load point the downgrading arm must
	// serve strictly more viewers than reject-only without paying in
	// underruns (no more than the reject-only arm's).
	gate := true
	worstLoad := points[len(points)-1]
	var gateServedRej, gateServedDown, gateURej, gateUDown float64
	for p, x := range points {
		rej := mean(p, 0, func(o qoeObs) float64 { return float64(o.served) })
		down := mean(p, 1, func(o qoeObs) float64 { return float64(o.served) })
		uRej := mean(p, 0, func(o qoeObs) float64 { return float64(o.underruns) })
		uDown := mean(p, 1, func(o qoeObs) float64 { return float64(o.underruns) })
		if down <= rej || uDown > uRej {
			gate = false
		}
		if x == worstLoad {
			gateServedRej, gateServedDown, gateURej, gateUDown = rej, down, uRej, uDown
		}
	}
	notes := []string{
		fmt.Sprintf("environment: %s, ladder 1.5/1.0/0.5 Mbps (N = %d at the top rung), theta=0 day profile, 6 titles, 1 disk",
			env.Spec.Name, env.Params.N),
		"acceptance gate: downgrading admits strictly more viewers than reject-only at no more underruns, at every load point",
	}
	if gate {
		notes = append(notes, fmt.Sprintf("gate held: at load x%.2g downgrading served %.1f viewers vs %.1f reject-only, underruns %.1f vs %.1f",
			worstLoad, gateServedDown, gateServedRej, gateUDown, gateURej))
	} else {
		notes = append(notes, "gate VIOLATED: downgrading did not strictly out-admit reject-only within its underrun budget")
	}

	series := append(append(served, startup...), starvation...)
	return &Report{
		ID:     "qoe-downgrade",
		Title:  "Extension: downgrading admission over a bitrate ladder, with QoE accounting",
		XLabel: "offered load (x base day)",
		YLabel: "viewers served",
		Series: series,
		Tables: []Table{table},
		Notes:  notes,
	}, nil
}

// adaptArm is one policy under comparison in the adaptation experiment.
type adaptArm struct {
	name      string
	downgrade bool
	adapt     *engine.AdaptConfig
}

// adaptObs is one (arm, load, replication) run's measurements.
type adaptObs struct {
	served, rejected, downgrades int
	switchesUp, switchesDown     int
	underruns, starved           int
	rebufferSec                  float64
	twRate                       float64 // time-weighted delivered rung (bit/s)
	watchHours                   float64
	qoe                          float64
	peakMB                       float64
}

// QoEAdaptation compares mid-stream bitrate adaptation against PR 9's
// admission-time policies over a single disk whose titles carry the
// QoELadder, under the same tight-peak day profile as QoEDowngrade:
//
//   - reject-only: the dynamic scheme; arrivals that do not fit at their
//     title's top rung are rejected.
//   - downgrade: downgrading admission — arrivals step down the ladder
//     before giving up, then stay at the admitted rung for the whole
//     viewing.
//   - adapt: downgrading admission plus the buffer-occupancy rate map
//     (engine.AdaptConfig defaults): streams in distress shed one rung
//     mid-viewing, and streams below their requested rung climb back on
//     sustained headroom.
//
// All arms of one replication replay the identical trace, so every curve
// is paired. The report carries the viewers-served curves, the
// time-weighted delivered-rung curves, and the rebuffer-aware QoE score
// (arXiv:1108.0187's starvation cost plus Huang et al.'s switch-
// stability term); the table adds switch and rebuffer counts.
func QoEAdaptation(opt Options) (*Report, error) {
	opt = opt.normalized()
	env := PaperEnv()
	ladder := QoELadder()
	lib, err := sharedLibrary(catalog.Config{
		Titles:          6,
		Disks:           1,
		Spec:            env.Spec,
		PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			v := catalog.MPEG1Video(id)
			v.Ladder = ladder
			return v
		},
	})
	if err != nil {
		return nil, err
	}
	arms := []adaptArm{
		{name: "reject-only"},
		{name: "downgrade", downgrade: true},
		{name: "adapt", downgrade: true, adapt: &engine.AdaptConfig{}},
	}
	points := []float64{1, 1.5, 2}
	if opt.Quick {
		points = []float64{1, 2}
	}
	method := sched.NewMethod(sched.RoundRobin)

	cells, err := runGrid(opt, len(points), opt.Seeds, func(p, rep int) ([3]adaptObs, error) {
		var out [3]adaptObs
		total := points[p] * singleDiskArrivalsPerDay
		tr := dayTrace(lib, 0, total, opt.runSeed(p, rep, seedTrace), opt.Quick)
		// Requests arrive at their title's top rung; lower rungs enter
		// only through downgrading admission or mid-stream switching.
		for i, r := range tr.Requests {
			tr.Requests[i].Rate = lib.Video(r.Video).Rate
		}
		for a, arm := range arms {
			cfg := simConfig(sim.Dynamic, method, lib, tr, opt.runSeed(p, rep, seedSim))
			cfg.Rates = ladder
			cfg.Downgrade = arm.downgrade
			cfg.Adapt = arm.adapt
			res, err := runSim(cfg)
			if err != nil {
				return out, err
			}
			out[a] = adaptObs{
				served:       res.Served,
				rejected:     res.Rejected,
				downgrades:   res.Downgrades,
				switchesUp:   res.SwitchesUp,
				switchesDown: res.SwitchesDown,
				underruns:    res.Underruns,
				starved:      res.StarvedStreams,
				rebufferSec:  float64(res.Starved),
				twRate:       float64(res.TimeWeightedRate()),
				watchHours:   float64(res.WatchSeconds()) / 3600,
				qoe:          res.QoEScore(ladder[0]),
				peakMB:       res.PeakMemory.MegabytesVal(),
			}
		}
		opt.progress("qoe-adaptation load x%.2g seed %d done", points[p], rep)
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	served := make([]Series, len(arms))
	tw := make([]Series, len(arms))
	qoe := make([]Series, len(arms))
	for a, arm := range arms {
		served[a] = Series{Name: "served/" + arm.name}
		tw[a] = Series{Name: "tw rung (Mbps)/" + arm.name}
		qoe[a] = Series{Name: "QoE score/" + arm.name}
	}
	mean := func(p, a int, get func(adaptObs) float64) float64 {
		var sum float64
		for _, reps := range cells[p] {
			sum += get(reps[a])
		}
		return sum / float64(len(cells[p]))
	}
	for p, x := range points {
		for a := range arms {
			vs := make([][]float64, 3)
			for _, reps := range cells[p] {
				o := reps[a]
				vs[0] = append(vs[0], float64(o.served))
				vs[1] = append(vs[1], o.twRate/1e6)
				vs[2] = append(vs[2], o.qoe)
			}
			served[a].AddPoint(x, Summarize(vs[0]))
			tw[a].AddPoint(x, Summarize(vs[1]))
			qoe[a].AddPoint(x, Summarize(vs[2]))
		}
	}

	table := Table{
		Name: "per-arm means over replications (paired traces)",
		Columns: []string{
			"load", "arm", "served", "rejected", "downgrades", "up-switches",
			"down-switches", "underruns", "starved streams", "rebuffer (s)",
			"tw rung (Mbps)", "watch (h)", "QoE", "peak mem (MB)",
		},
	}
	for p, x := range points {
		for a, arm := range arms {
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("x%.2g", x),
				arm.name,
				fmt.Sprintf("%.1f", mean(p, a, func(o adaptObs) float64 { return float64(o.served) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o adaptObs) float64 { return float64(o.rejected) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o adaptObs) float64 { return float64(o.downgrades) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o adaptObs) float64 { return float64(o.switchesUp) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o adaptObs) float64 { return float64(o.switchesDown) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o adaptObs) float64 { return float64(o.underruns) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o adaptObs) float64 { return float64(o.starved) })),
				fmt.Sprintf("%.1f", mean(p, a, func(o adaptObs) float64 { return o.rebufferSec })),
				fmt.Sprintf("%.4f", mean(p, a, func(o adaptObs) float64 { return o.twRate / 1e6 })),
				fmt.Sprintf("%.1f", mean(p, a, func(o adaptObs) float64 { return o.watchHours })),
				fmt.Sprintf("%.4f", mean(p, a, func(o adaptObs) float64 { return o.qoe })),
				fmt.Sprintf("%.1f", mean(p, a, func(o adaptObs) float64 { return o.peakMB })),
			})
		}
	}

	// The acceptance gate: the adaptation arm rebuffers no more than
	// reject-only at every load point, and delivers a strictly higher
	// time-weighted rung than admission-downgrade wherever the offered
	// load reaches 2x.
	gate := true
	var notes []string
	for p, x := range points {
		uAdapt := mean(p, 2, func(o adaptObs) float64 { return float64(o.underruns) })
		uRej := mean(p, 0, func(o adaptObs) float64 { return float64(o.underruns) })
		if uAdapt > uRej {
			gate = false
			notes = append(notes, fmt.Sprintf("gate VIOLATED at x%.2g: adaptation rebuffered %.1f times vs reject-only's %.1f", x, uAdapt, uRej))
		}
		if x >= 2 {
			twAdapt := mean(p, 2, func(o adaptObs) float64 { return o.twRate })
			twDown := mean(p, 1, func(o adaptObs) float64 { return o.twRate })
			if twAdapt <= twDown {
				gate = false
				notes = append(notes, fmt.Sprintf("gate VIOLATED at x%.2g: adaptation's tw rung %.4f Mbps not above downgrade's %.4f", x, twAdapt/1e6, twDown/1e6))
			} else {
				notes = append(notes, fmt.Sprintf("at x%.2g adaptation delivered a %.4f Mbps tw rung vs downgrade's %.4f, rebuffering %.1f times vs reject-only's %.1f",
					x, twAdapt/1e6, twDown/1e6, uAdapt, uRej))
			}
		}
	}
	head := []string{
		fmt.Sprintf("environment: %s, ladder 1.5/1.0/0.5 Mbps (N = %d at the top rung), theta=0 day profile, 6 titles, 1 disk",
			env.Spec.Name, env.Params.N),
		"acceptance gate: adaptation rebuffers no more than reject-only at every load, and beats downgrade's time-weighted rung at loads >= 2x",
	}
	if gate {
		head = append(head, "gate held")
	}
	notes = append(head, notes...)

	series := append(append(served, tw...), qoe...)
	return &Report{
		ID:     "qoe-adaptation",
		Title:  "Extension: mid-stream bitrate adaptation under the buffer-occupancy rate map",
		XLabel: "offered load (x base day)",
		YLabel: "viewers served",
		Series: series,
		Tables: []Table{table},
		Notes:  notes,
	}, nil
}
