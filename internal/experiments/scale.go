package experiments

import (
	"fmt"

	"repro/internal/scale"
	"repro/internal/sched"
	"repro/internal/si"
)

// ScaleLargeN runs the large-N scenario (internal/scale): the paper's
// dynamic scheme on a server of modern nearline disks — N = 1599 streams
// per spindle versus the Barracuda's 79 — with eight disks driven to
// ~700 concurrent streams each at peak. The report carries two findings
// the 1997 environment could not surface:
//
//   - The memory knee (analysis table): Theorem 1's recurrence anchors
//     every buffer size to the full-load boundary BS(N) ≈ 8 GB, and the
//     anchoring product stops decaying once n passes roughly half of N,
//     so per-buffer sizes explode long before Eq. 1's bandwidth limit.
//     Memory economics, not bandwidth, cap a modern disk near 50% stream
//     utilization.
//
//   - Zero underruns at scale (simulation): with the engine's churn-safe
//     admission budgets and deadline-aware BubbleUp (see internal/scale's
//     package comment), the sizing guarantee holds through the peak-slot
//     ramp at ~5 500 concurrent streams server-wide.
//
// The simulation arm always runs the scenario's Quick shape — one peak
// half-hour instead of a 24-hour day — because the large-n regime is
// reached either way and a full day is hours of CPU per replication.
func ScaleLargeN(opt Options) (*Report, error) {
	opt = opt.normalized()
	env := scale.Environment()
	method := sched.RoundRobin

	// The sizing table is the dominant per-run setup cost at N = 1599;
	// build it once and share it across replications (scale.Run treats it
	// as immutable).
	table := scale.NewSizeTable(method)

	knee := Table{
		Name:    fmt.Sprintf("the memory knee: per-buffer size BS(n, k=16) toward N = %d", env.N),
		Columns: []string{"n (streams)", "n/N", "BS(n, 16) per buffer", "growth vs previous row"},
	}
	var prev si.Bits
	for _, n := range []int{200, 400, 640, 800, 1000, 1200} {
		size := table.Size(n, 16)
		growth := "-"
		if prev > 0 {
			growth = fmt.Sprintf("%.1fx", float64(size)/float64(prev))
		}
		knee.Rows = append(knee.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", float64(n)/float64(env.N)),
			size.String(),
			growth,
		})
		prev = size
	}

	reps := opt.Seeds
	runs, err := runGrid(opt, 1, reps, func(_, rep int) (*scale.Result, error) {
		res, err := scale.Run(scale.Config{
			Method:    method,
			Seed:      opt.runSeed(0, rep, seedTrace),
			SizeTable: table,
			Quick:     true,
		})
		if err != nil {
			return nil, err
		}
		opt.progress("scale-largen: replication %d/%d done", rep+1, reps)
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	results := runs[0]

	disks := len(results[0].PerDisk)
	peaks := Series{Name: "peak streams"}
	served := Series{Name: "streams served"}
	for d := 0; d < disks; d++ {
		peakSamples := make([]float64, reps)
		servedSamples := make([]float64, reps)
		for r, res := range results {
			peakSamples[r] = float64(res.PerDisk[d].Peak)
			servedSamples[r] = float64(res.PerDisk[d].Served)
		}
		peaks.AddPoint(float64(d), Summarize(peakSamples))
		served.AddPoint(float64(d), Summarize(servedSamples))
	}

	summary := Table{
		Name:    "peak-slot replications (Quick shape: one half-hour peak)",
		Columns: []string{"rep", "requests", "served", "rejected", "underruns", "peak streams (server)", "peak memory"},
	}
	underruns := 0
	for r, res := range results {
		underruns += res.Sim.Underruns
		summary.Rows = append(summary.Rows, []string{
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%d", res.Requests),
			fmt.Sprintf("%d", res.Sim.Served),
			fmt.Sprintf("%d", res.Sim.Rejected),
			fmt.Sprintf("%d", res.Sim.Underruns),
			fmt.Sprintf("%d", res.PeakTotal),
			res.Sim.PeakMemory.String(),
		})
	}

	notes := []string{
		fmt.Sprintf("environment: %s, N = %d streams/disk (Eq. 1), %d disks, alpha = 1",
			env.Spec.Name, env.N, disks),
		"memory knee: the recurrence anchors sizes to BS(N); past n ≈ N/2 the anchoring product stops decaying and per-buffer sizes explode — the scenario's 700-streams/disk peak sits just under the knee",
		"runs use churn-safe admission budgets and deadline-aware BubbleUp; without them, replacement churn and deadline clusters void the sizing guarantee at this scale (see internal/scale)",
	}
	if underruns == 0 {
		notes = append(notes, fmt.Sprintf("sizing guarantee held: 0 underruns across %d replications", reps))
	} else {
		notes = append(notes, fmt.Sprintf("sizing guarantee VIOLATED: %d underruns across %d replications", underruns, reps))
	}

	return &Report{
		ID:     "scale-largen",
		Title:  "Extension: the dynamic scheme at modern-disk scale (thousands of streams)",
		XLabel: "disk",
		YLabel: "streams",
		Series: []Series{peaks, served},
		Tables: []Table{knee, summary},
		Notes:  notes,
	}, nil
}

// ZipfSharing runs the stream-sharing scenario (internal/scale): the
// same Zipf-catalog trace offered twice to a server overloaded to four
// times its Eq. 1 aggregate stream capacity — once with every viewer as
// a private engine stream, once fronted by the sharing layer's prefix
// cache and viewer batching. The report's quantity is the paired
// admission ratio: sharing admits the whole overload (several times the
// baseline's capacity-bound count) while the engine's own stream load
// falls, with zero underruns.
//
// The scenario runs on two disks rather than the full eight: the
// measured ratio is per-disk overload against per-disk capacity, which
// is independent of the server width, and the baseline arm's cost grows
// with the disk count (every one of its N = 1599 slots per disk fills
// with a private stream).
func ZipfSharing(opt Options) (*Report, error) {
	opt = opt.normalized()
	reps := opt.Seeds
	if opt.Quick && reps > 1 {
		reps = 1
	}
	method := sched.RoundRobin
	env := scale.Environment()
	table := scale.NewSizeTable(method)
	const disks = 2

	type pair struct {
		base, shared *scale.SharingResult
	}
	runs, err := runGrid(opt, 1, reps, func(_, rep int) (pair, error) {
		// Both arms replay the identical trace: the seed is drawn before
		// the arms diverge, so the comparison is paired.
		cfg := scale.SharingConfig{
			Disks:     disks,
			Method:    method,
			Seed:      opt.runSeed(0, rep, seedTrace),
			SizeTable: table,
		}
		base, err := scale.RunSharing(cfg)
		if err != nil {
			return pair{}, err
		}
		cfg.Sharing = true
		shared, err := scale.RunSharing(cfg)
		if err != nil {
			return pair{}, err
		}
		opt.progress("zipf-sharing: replication %d/%d done", rep+1, reps)
		return pair{base: base, shared: shared}, nil
	})
	if err != nil {
		return nil, err
	}
	results := runs[0]

	summary := Table{
		Name: "paired arms per replication (identical trace, sharing off vs on)",
		Columns: []string{
			"rep", "viewers offered", "admitted (private)", "admitted (shared)", "ratio",
			"rejected (shared)", "underruns (shared)", "engine peak (private)", "engine peak (shared)",
		},
	}
	mech := Table{
		Name:    "sharing-layer mechanism counts per replication",
		Columns: []string{"rep", "leaders", "merged", "batched", "cache-only", "cache-hit data", "peak fanout", "pinned titles"},
	}
	underruns, rejected := 0, 0
	ratios := make([]float64, reps)
	for r, p := range results {
		ratio := float64(p.shared.Admitted) / float64(p.base.Admitted)
		ratios[r] = ratio
		underruns += p.shared.Sim.Underruns
		rejected += p.shared.Rejected
		summary.Rows = append(summary.Rows, []string{
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%d", p.base.Requests),
			fmt.Sprintf("%d", p.base.Admitted),
			fmt.Sprintf("%d", p.shared.Admitted),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%d", p.shared.Rejected),
			fmt.Sprintf("%d", p.shared.Sim.Underruns),
			fmt.Sprintf("%d", p.base.EngineStreamsPeak),
			fmt.Sprintf("%d", p.shared.EngineStreamsPeak),
		})
		tot := p.shared.Share.Totals
		mech.Rows = append(mech.Rows, []string{
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%d", tot.Leaders),
			fmt.Sprintf("%d", tot.Merged),
			fmt.Sprintf("%d", tot.Batched),
			fmt.Sprintf("%d", tot.CacheOnly),
			tot.CacheHitBits.String(),
			fmt.Sprintf("%d", tot.PeakFanout),
			fmt.Sprintf("%d", p.shared.Share.CachedTitles),
		})
	}

	ratio := Series{Name: "admitted(shared)/admitted(private)"}
	ratio.AddPoint(0, Summarize(ratios))

	notes := []string{
		fmt.Sprintf("environment: %s, N = %d streams/disk (Eq. 1), %d disks, offered load 4x aggregate capacity over a 30-minute ramp",
			env.Spec.Name, env.N, disks),
		"cache budget: 3/4 of the catalog's 5-minute prefix footprint, so the coldest titles go unpinned and pinning order is popularity-aware",
		"acceptance gate: ratio >= 3x with 0 rejections and 0 underruns in the sharing arm",
	}
	if underruns == 0 && rejected == 0 {
		notes = append(notes, fmt.Sprintf("sharing arm clean: 0 rejections, 0 underruns across %d replications", reps))
	} else {
		notes = append(notes, fmt.Sprintf("sharing arm DEGRADED: %d rejections, %d underruns across %d replications", rejected, underruns, reps))
	}

	return &Report{
		ID:     "zipf-sharing",
		Title:  "Extension: stream sharing under Zipf overload (prefix cache + viewer batching)",
		XLabel: "replication",
		YLabel: "admission ratio",
		Series: []Series{ratio},
		Tables: []Table{summary, mech},
		Notes:  notes,
	}, nil
}
