package experiments

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/latency"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/si"
)

// Table3 reproduces the derived constants of the environment (Table 3 and
// Section 5.1): the seek geometry, the per-method worst disk latencies,
// and the full-load buffer sizes. It is the calibration artifact every
// other experiment builds on.
func Table3(opt Options) (*Report, error) {
	env := PaperEnv()
	t := Table{
		Name:    "Derived constants (Seagate Barracuda 9LP, MPEG-1 1.5 Mbps)",
		Columns: []string{"quantity", "value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("cylinders (from gamma(Cyln)=13.4ms)", fmt.Sprintf("%d", env.Spec.Cylinders))
	add("worst seek gamma(Cyln)", env.Spec.WorstSeek().String())
	add("max rotational delay theta", env.Spec.MaxRotational.String())
	add("N (max concurrent requests)", fmt.Sprintf("%d", env.Params.N))
	for _, kind := range sched.Kinds {
		m := sched.NewMethod(kind)
		dl := m.WorstDL(env.Spec, env.Params.N)
		bs := env.Params.StaticSize(dl, env.Params.N)
		add(fmt.Sprintf("DL %v (n=N)", m), dl.String())
		add(fmt.Sprintf("static BS(N) %v", m), bs.String())
		add(fmt.Sprintf("static usage period %v", m), env.Params.UsagePeriod(bs).String())
	}
	return &Report{
		ID:     "table3",
		Title:  "Environment constants derived from the disk spec",
		Tables: []Table{t},
	}, nil
}

// Fig9 reproduces Fig. 9: buffer size versus the number of requests in
// service, static versus dynamic, for each scheduling method. The dynamic
// curves use the representative k of footnote 9.
func Fig9(opt Options) (*Report, error) {
	env := PaperEnv()
	rep := &Report{
		ID:     "fig9",
		Title:  "Buffer size vs requests in service (static vs dynamic)",
		XLabel: "n",
		YLabel: "buffer size (MB)",
	}
	for _, kind := range sched.Kinds {
		m := sched.NewMethod(kind)
		k := RepresentativeK(kind)
		static := Series{Name: fmt.Sprintf("static/%v", m)}
		dynamic := Series{Name: fmt.Sprintf("dynamic/%v", m)}
		for n := 1; n <= env.Params.N; n++ {
			static.X = append(static.X, float64(n))
			static.Y = append(static.Y, env.Params.StaticSize(m.WorstDL(env.Spec, env.Params.N), env.Params.N).MegabytesVal())
			kk := k
			if kk > env.Params.N-n {
				kk = env.Params.N - n
			}
			dynamic.X = append(dynamic.X, float64(n))
			dynamic.Y = append(dynamic.Y, env.Params.DynamicSize(m.WorstDL(env.Spec, n), n, kk).MegabytesVal())
		}
		rep.Series = append(rep.Series, static, dynamic)
	}
	rep.Notes = append(rep.Notes, "dynamic k: 4 (Round-Robin), 3 (Sweep*, GSS*) per footnote 9")
	return rep, nil
}

// Fig10 reproduces Fig. 10: worst-case initial latency versus requests in
// service (Eqs. 2–4 applied to each scheme's buffer size).
func Fig10(opt Options) (*Report, error) {
	env := PaperEnv()
	rep := &Report{
		ID:     "fig10",
		Title:  "Worst initial latency vs requests in service (analysis)",
		XLabel: "n",
		YLabel: "worst initial latency (s)",
	}
	for _, kind := range sched.Kinds {
		m := sched.NewMethod(kind)
		k := RepresentativeK(kind)
		static := Series{Name: fmt.Sprintf("static/%v", m)}
		dynamic := Series{Name: fmt.Sprintf("dynamic/%v", m)}
		staticBS := env.Params.StaticSize(m.WorstDL(env.Spec, env.Params.N), env.Params.N)
		for n := 1; n <= env.Params.N; n++ {
			dl := m.WorstDL(env.Spec, n)
			kk := k
			if kk > env.Params.N-n {
				kk = env.Params.N - n
			}
			dynBS := env.Params.DynamicSize(dl, n, kk)
			static.X = append(static.X, float64(n))
			static.Y = append(static.Y, float64(latency.Worst(m, env.Spec.TransferRate, dl, staticBS, n)))
			dynamic.X = append(dynamic.X, float64(n))
			dynamic.Y = append(dynamic.Y, float64(latency.Worst(m, env.Spec.TransferRate, dl, dynBS, n)))
		}
		rep.Series = append(rep.Series, static, dynamic)
	}
	return rep, nil
}

// Fig12 reproduces Fig. 12: the minimum memory requirement versus requests
// in service (Theorems 2–4 against the static counterparts).
func Fig12(opt Options) (*Report, error) {
	env := PaperEnv()
	rep := &Report{
		ID:     "fig12",
		Title:  "Minimum memory requirement vs requests in service (analysis)",
		XLabel: "n",
		YLabel: "memory (MB)",
	}
	for _, kind := range sched.Kinds {
		m := sched.NewMethod(kind)
		k := RepresentativeK(kind)
		static := Series{Name: fmt.Sprintf("static/%v", m)}
		dynamic := Series{Name: fmt.Sprintf("dynamic/%v", m)}
		for n := 1; n <= env.Params.N; n++ {
			kk := k
			if kk > env.Params.N-n {
				kk = env.Params.N - n
			}
			static.X = append(static.X, float64(n))
			static.Y = append(static.Y, memmodel.MinStatic(env.Params, m, env.Spec, n).MegabytesVal())
			dynamic.X = append(dynamic.X, float64(n))
			dynamic.Y = append(dynamic.Y, memmodel.MinDynamic(env.Params, m, env.Spec, n, kk).MegabytesVal())
		}
		rep.Series = append(rep.Series, static, dynamic)
	}
	return rep, nil
}

// capacityDemand is the peak offered concurrent demand the capacity
// experiments assume across the 10-disk system. It exceeds the system's
// aggregate disk capacity (790) so that the memory budget, not the
// workload, is the binding constraint until disks saturate.
const capacityDemand = 1000

// capacityDisks is the disk count of Figs. 13–14 (ten Barracudas).
const capacityDisks = 10

// analyticCapacity computes the maximum number of concurrent requests the
// 10-disk system serves with total memory budget: per-disk demand caps
// follow a Zipf(theta) split of the offered load, and memory is assigned
// greedily to the cheapest next request (the memory functions are convex
// in n, so even filling maximizes the count).
func analyticCapacity(env Env, m sched.Method, dynamic bool, theta float64, budget si.Bits) int {
	weights := catalog.ZipfWeights(capacityDisks, theta)
	caps := make([]int, capacityDisks)
	for d := range caps {
		c := int(weights[d] * capacityDemand)
		if c > env.Params.N {
			c = env.Params.N
		}
		caps[d] = c
	}
	memFor := func(n int) si.Bits {
		if n == 0 {
			return 0
		}
		if dynamic {
			k := RepresentativeK(m.Kind)
			if k > env.Params.N-n {
				k = env.Params.N - n
			}
			return memmodel.MinDynamic(env.Params, m, env.Spec, n, k)
		}
		return memmodel.MinStatic(env.Params, m, env.Spec, n)
	}
	n := make([]int, capacityDisks)
	var used si.Bits
	total := 0
	for {
		// Admit the next request on the disk where it costs the least
		// additional reserved memory.
		best, bestCost := -1, si.Bits(0)
		for d := range n {
			if n[d] >= caps[d] {
				continue
			}
			cost := memFor(n[d]+1) - memFor(n[d])
			if best < 0 || cost < bestCost {
				best, bestCost = d, cost
			}
		}
		if best < 0 || used+bestCost > budget {
			return total
		}
		used += bestCost
		n[best]++
		total++
	}
}

// memoryGrid returns the Fig. 13/14 x axis in GB.
func memoryGrid(quick bool) []float64 {
	if quick {
		return []float64{1, 3, 5, 7, 9, 11}
	}
	return []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
}

// Fig13 reproduces Fig. 13: the number of concurrent requests the 10-disk
// system can service versus available memory, by analysis, for the
// Round-Robin method under Zipf disk-load splits.
func Fig13(opt Options) (*Report, error) {
	opt = opt.normalized()
	env := PaperEnv()
	m := sched.NewMethod(sched.RoundRobin)
	rep := &Report{
		ID:     "fig13",
		Title:  "Concurrent requests vs memory, 10 disks (analysis, Round-Robin)",
		XLabel: "memory (GB)",
		YLabel: "concurrent requests",
	}
	for _, theta := range []float64{0, 0.5, 1} {
		static := Series{Name: fmt.Sprintf("static/theta=%.1f", theta)}
		dynamic := Series{Name: fmt.Sprintf("dynamic/theta=%.1f", theta)}
		for _, gb := range memoryGrid(opt.Quick) {
			budget := si.Gigabytes(gb)
			static.X = append(static.X, gb)
			static.Y = append(static.Y, float64(analyticCapacity(env, m, false, theta, budget)))
			dynamic.X = append(dynamic.X, gb)
			dynamic.Y = append(dynamic.Y, float64(analyticCapacity(env, m, true, theta, budget)))
		}
		rep.Series = append(rep.Series, static, dynamic)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("offered peak demand %d concurrent requests split Zipf(theta) across %d disks", capacityDemand, capacityDisks))
	return rep, nil
}
