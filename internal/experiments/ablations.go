package experiments

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AblationDybase compares the three future-aware sizing designs the
// paper's lineage contains: the naive Eq. 5 at n+k (Section 3.1's flawed
// strawman), DYBASE (reference [13]: the recurrence with a constant k and
// no inertia assumptions), and Theorem 1 (the recurrence with k growing
// by alpha per step). The sizes are totally ordered — each successive
// design reserves more headroom for a rising arrival rate.
func AblationDybase(opt Options) (*Report, error) {
	env := PaperEnv()
	m := sched.NewMethod(sched.RoundRobin)
	rep := &Report{
		ID:     "ablation-dybase",
		Title:  "Sizing lineage: naive Eq.5(n+k) vs DYBASE vs Theorem 1 (k=4, Round-Robin)",
		XLabel: "n",
		YLabel: "buffer size (MB)",
	}
	const k = 4
	naive := Series{Name: "naive"}
	dybase := Series{Name: "dybase"}
	dynamic := Series{Name: "dynamic"}
	for n := 1; n <= env.Params.N; n++ {
		kk := k
		if kk > env.Params.N-n {
			kk = env.Params.N - n
		}
		dl := m.WorstDL(env.Spec, n)
		naive.X = append(naive.X, float64(n))
		naive.Y = append(naive.Y, env.Params.NaiveSize(dl, n, kk).MegabytesVal())
		dybase.X = append(dybase.X, float64(n))
		dybase.Y = append(dybase.Y, env.Params.DybaseSize(dl, n, kk).MegabytesVal())
		dynamic.X = append(dynamic.X, float64(n))
		dynamic.Y = append(dynamic.Y, env.Params.DynamicSize(dl, n, kk).MegabytesVal())
	}
	rep.Series = append(rep.Series, naive, dybase, dynamic)
	rep.Notes = append(rep.Notes,
		"naive <= dybase <= dynamic at every n: each design reserves more future headroom")
	return rep, nil
}

// AblationChunks quantifies footnote 3's layout mechanism: the
// replication overhead of chunked storage versus chunk size, and an
// end-to-end check that a chunked library streams identically (no
// underruns, same latency scale) to a contiguous one.
func AblationChunks(opt Options) (*Report, error) {
	opt = opt.normalized()
	env := PaperEnv()
	rep := &Report{
		ID:     "ablation-chunks",
		Title:  "Chunked layout: replication overhead vs chunk size, plus streaming equivalence",
		XLabel: "chunk size (MB)",
		YLabel: "overhead factor",
	}

	// Overhead curve: maxRead is the largest buffer any method allocates
	// (the Round-Robin static size).
	maxRead := env.Params.StaticSize(sched.NewMethod(sched.RoundRobin).WorstDL(env.Spec, env.Params.N), env.Params.N)
	video := catalog.MPEG1Video(0).Size()
	overhead := Series{Name: "storage overhead"}
	for _, factor := range []float64{2, 3, 4, 6, 8, 12, 16} {
		size := si.Bits(factor * float64(maxRead))
		layout, err := chunk.NewLayout(video, size, maxRead)
		if err != nil {
			return nil, err
		}
		overhead.X = append(overhead.X, size.MegabytesVal())
		overhead.Y = append(overhead.Y, layout.Overhead())
	}
	rep.Series = append(rep.Series, overhead)

	// Streaming equivalence under the dynamic scheme with Sweep*, the
	// method most sensitive to data placement. Both layouts replay the
	// same workload seeds (paired) and run concurrently.
	t := Table{
		Name:    "Chunked vs contiguous streaming (dynamic, Sweep*)",
		Columns: []string{"layout", "served", "underruns", "avg latency (s)"},
	}
	rows, err := runGrid(opt, 2, 1, func(a, _ int) ([]string, error) {
		chunked := a == 1
		cfg := catalog.Config{
			Titles: 4, Disks: 1, Spec: env.Spec, PopularityTheta: 0.271,
		}
		name := "contiguous"
		if chunked {
			cfg.ChunkSize = 4 * maxRead
			cfg.MaxRead = maxRead
			name = "chunked (4x)"
		}
		lib, err := sharedLibrary(cfg)
		if err != nil {
			return nil, err
		}
		tr := workload.Generate(workload.ZipfDay(300, 1, si.Hours(2), si.Hours(4)), lib, opt.runSeed(0, 0, seedTrace))
		res, err := runSim(simConfig(sim.Dynamic, sched.NewMethod(sched.Sweep), lib, tr, opt.runSeed(0, 0, seedSim)))
		if err != nil {
			return nil, err
		}
		mean, _ := res.LatencyByN.GrandMean()
		return []string{
			name,
			fmt.Sprintf("%d", res.Served),
			fmt.Sprintf("%d", res.Underruns),
			fmt.Sprintf("%.3f", mean),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, row[0])
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// AblationPages measures the claim of Section 2.1 that page-granular
// allocation differs negligibly from the paper's variable-length
// assumption: the same run's peak memory under exact accounting and
// under 4 KB and 64 KB pages.
func AblationPages(opt Options) (*Report, error) {
	opt = opt.normalized()
	lib, err := singleDisk()
	if err != nil {
		return nil, err
	}
	t := Table{
		Name:    "Peak memory vs allocation granularity (dynamic, Round-Robin)",
		Columns: []string{"page size", "peak memory", "vs exact"},
	}
	// One shared trace and sim seed: the three rows differ only in the
	// accounting granularity, so the peaks are directly comparable.
	tr := dayTrace(lib, 1, singleDiskArrivalsPerDay/4, opt.runSeed(0, 0, seedTrace), true)
	pages := []si.Bits{0, si.Bits(8 * 4096), si.Bits(8 * 65536)}
	peaks, err := runGrid(opt, len(pages), 1, func(a, _ int) (si.Bits, error) {
		cfg := simConfig(sim.Dynamic, sched.NewMethod(sched.RoundRobin), lib, tr, opt.runSeed(0, 0, seedSim))
		cfg.PageSize = pages[a]
		res, err := runSim(cfg)
		if err != nil {
			return 0, err
		}
		return res.PeakMemory, nil
	})
	if err != nil {
		return nil, err
	}
	exact := peaks[0][0]
	for a, page := range pages {
		label := "exact"
		if page > 0 {
			label = page.String()
		}
		rel := "-"
		if page > 0 && exact > 0 {
			rel = fmt.Sprintf("+%.2f%%", 100*(float64(peaks[a][0])/float64(exact)-1))
		}
		t.Rows = append(t.Rows, []string{label, peaks[a][0].String(), rel})
	}
	return &Report{
		ID:     "ablation-pages",
		Title:  "Page-granular allocation vs the paper's variable-length assumption",
		Tables: []Table{t},
		Notes:  []string{"the paper argues the page effect is negligible because pages are far smaller than buffers"},
	}, nil
}

// ExtVCR measures VCR responsiveness, the quality-of-service motivation
// of Section 1: VCR actions are new requests, so their startup latency is
// the system's VCR response time. Sessions perform fast-forward/rewind
// actions several times per hour; the dynamic scheme's small buffers make
// each action resume far faster than the static scheme's.
func ExtVCR(opt Options) (*Report, error) {
	opt = opt.normalized()
	lib, err := singleDisk()
	if err != nil {
		return nil, err
	}
	t := Table{
		Name:    "VCR response time (6 actions per viewing hour, Round-Robin)",
		Columns: []string{"scheme", "vcr actions", "mean vcr response (s)", "mean cold startup (s)"},
	}
	schemes := []sim.Scheme{sim.Static, sim.Dynamic}
	type obs struct {
		actions                int64
		vcrSum, coldSum, coldN float64
	}
	cells, err := runGrid(opt, len(schemes), opt.Seeds, func(a, rep int) (obs, error) {
		// Partial load (about a third of capacity): the regime where
		// dynamic buffers shine and VCR actions should feel instant.
		// Both schemes replay the same per-replication VCR sessions.
		horizon := si.Hours(8)
		total := singleDiskArrivalsPerDay / 12.0
		tr := workload.GenerateVCR(
			workload.ZipfDay(total, 1, horizon/2, horizon),
			lib, opt.runSeed(0, rep, seedTrace), workload.VCROptions{ActionsPerHour: 6})
		res, err := runSim(simConfig(schemes[a], sched.NewMethod(sched.RoundRobin), lib, tr, opt.runSeed(0, rep, seedSim)))
		if err != nil {
			return obs{}, err
		}
		opt.progress("ext-vcr %v seed %d done", schemes[a], rep)
		return obs{
			actions: res.VCRLatency.N(),
			vcrSum:  res.VCRLatency.Sum(),
			coldSum: res.ColdLatency.Sum(),
			coldN:   float64(res.ColdLatency.N()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for a, scheme := range schemes {
		var sum obs
		for _, o := range cells[a] {
			sum.actions += o.actions
			sum.vcrSum += o.vcrSum
			sum.coldSum += o.coldSum
			sum.coldN += o.coldN
		}
		vcrMean, coldMean := 0.0, 0.0
		if sum.actions > 0 {
			vcrMean = sum.vcrSum / float64(sum.actions)
		}
		if sum.coldN > 0 {
			coldMean = sum.coldSum / sum.coldN
		}
		t.Rows = append(t.Rows, []string{
			scheme.String(),
			fmt.Sprintf("%d", sum.actions),
			fmt.Sprintf("%.4f", vcrMean),
			fmt.Sprintf("%.4f", coldMean),
		})
	}
	return &Report{
		ID:     "ext-vcr",
		Title:  "VCR response time: the Section 1 quality-of-service motivation",
		Tables: []Table{t},
	}, nil
}

// AblationBubbleUp quantifies what BubbleUp buys the Round-Robin method
// (Section 2.2.1): without it (plain Fixed-Stretch) a newcomer waits for
// the rotation to reach it — up to a full usage period — instead of being
// serviced right after the in-flight service completes.
func AblationBubbleUp(opt Options) (*Report, error) {
	opt = opt.normalized()
	lib, err := singleDisk()
	if err != nil {
		return nil, err
	}
	t := Table{
		Name:    "Round-Robin initial latency with and without BubbleUp",
		Columns: []string{"scheme", "scheduling", "mean initial latency (s)"},
	}
	type arm struct {
		scheme  sim.Scheme
		disable bool
	}
	var arms []arm
	for _, scheme := range []sim.Scheme{sim.Static, sim.Dynamic} {
		for _, disable := range []bool{false, true} {
			arms = append(arms, arm{scheme: scheme, disable: disable})
		}
	}
	type obs struct {
		mean float64
		ok   bool
	}
	cells, err := runGrid(opt, len(arms), opt.Seeds, func(a, rep int) (obs, error) {
		// All four arms replay the same per-replication arrivals.
		tr := dayTrace(lib, 1, singleDiskArrivalsPerDay/8, opt.runSeed(0, rep, seedTrace), true)
		cfg := simConfig(arms[a].scheme, sched.NewMethod(sched.RoundRobin), lib, tr, opt.runSeed(0, rep, seedSim))
		cfg.DisableBubbleUp = arms[a].disable
		res, err := runSim(cfg)
		if err != nil {
			return obs{}, err
		}
		m, ok := res.LatencyByN.GrandMean()
		return obs{mean: m, ok: ok}, nil
	})
	if err != nil {
		return nil, err
	}
	for a := range arms {
		var sum, count float64
		for _, o := range cells[a] {
			if o.ok {
				sum += o.mean
				count++
			}
		}
		name := "BubbleUp"
		if arms[a].disable {
			name = "Fixed-Stretch"
		}
		mean := 0.0
		if count > 0 {
			mean = sum / count
		}
		t.Rows = append(t.Rows, []string{arms[a].scheme.String(), name, fmt.Sprintf("%.4f", mean)})
		opt.progress("ablation-bubbleup %v/%s done (%.3fs)", arms[a].scheme, name, mean)
	}
	return &Report{
		ID:     "ablation-bubbleup",
		Title:  "What BubbleUp buys: newcomer service order in Round-Robin",
		Tables: []Table{t},
	}, nil
}

// ExtModernDisk re-derives the headline comparison on a faster,
// later-generation drive: the paper's machinery is parametric in the disk
// spec, and the dynamic scheme's relative advantage survives (indeed the
// absolute buffer sizes shrink with disk latency while capacity N grows).
func ExtModernDisk(opt Options) (*Report, error) {
	cr := si.Mbps(1.5)
	t := Table{
		Name:    "Barracuda 9LP vs a synthetic 15K drive (Round-Robin, analysis)",
		Columns: []string{"disk", "N", "static BS(N)", "dynamic BS at N/8 (k=4)", "memory ratio at N/8"},
	}
	for _, spec := range []diskmodel.Spec{diskmodel.Barracuda9LP(), diskmodel.Synthetic15K()} {
		p := core.Params{TR: spec.TransferRate, CR: cr, N: core.DeriveN(spec.TransferRate, cr), Alpha: 1}
		m := sched.NewMethod(sched.RoundRobin)
		dlN := m.WorstDL(spec, p.N)
		n := p.N / 8
		dl := m.WorstDL(spec, n)
		static := p.StaticSize(dlN, p.N)
		dynamic := p.DynamicSize(dl, n, 4)
		memRatio := float64(memmodel.MinStatic(p, m, spec, n)) / float64(memmodel.MinDynamic(p, m, spec, n, 4))
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprintf("%d", p.N),
			static.String(),
			dynamic.String(),
			fmt.Sprintf("%.1fx", memRatio),
		})
	}
	return &Report{
		ID:     "ext-modern-disk",
		Title:  "Generalization: the sizing model on a faster drive",
		Tables: []Table{t},
	}, nil
}
