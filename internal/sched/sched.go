// Package sched models the three buffer scheduling methods the paper
// validates the dynamic allocation scheme against (Section 2.2):
//
//   - Round-Robin, run with the BubbleUp refinement: buffers are serviced
//     in allocation order at equal spacing, and a newly arriving request
//     is serviced right after the service in execution completes.
//   - Sweep*, which services buffers in disk-position order to minimize
//     seek time and delays the period's last service as late as possible
//     to maximize memory sharing.
//   - GSS* (Grouped Sweeping Scheduling), the hybrid: groups of g buffers
//     are serviced BubbleUp-style round-robin, members of a group are
//     swept.
//
// The package provides the analysis-side constants of each method — the
// per-service worst disk latency DL that feeds the sizing equations — and
// the ordering primitives the simulator uses at runtime.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/si"
)

// Kind identifies a buffer scheduling method.
type Kind int

const (
	// RoundRobin is the Round-Robin method run with BubbleUp.
	RoundRobin Kind = iota
	// Sweep is the Sweep* method.
	Sweep
	// GSS is the GSS* method.
	GSS
)

// Kinds lists every method, in the paper's presentation order.
var Kinds = []Kind{RoundRobin, Sweep, GSS}

// String returns the paper's name for the method.
func (k Kind) String() string {
	switch k {
	case RoundRobin:
		return "Round-Robin"
	case Sweep:
		return "Sweep*"
	case GSS:
		return "GSS*"
	default:
		return fmt.Sprintf("sched.Kind(%d)", int(k))
	}
}

// ParseKind maps a name (as printed by String, or the lowercase aliases
// "rr", "roundrobin", "sweep", "gss") to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "Round-Robin", "rr", "roundrobin", "round-robin":
		return RoundRobin, nil
	case "Sweep*", "sweep":
		return Sweep, nil
	case "GSS*", "gss":
		return GSS, nil
	}
	return 0, fmt.Errorf("sched: unknown scheduling method %q", s)
}

// Method is a scheduling method instance: a Kind plus its parameters.
type Method struct {
	Kind Kind

	// Group is the number of buffers per group, g. Used only by GSS;
	// the paper uses 8 (the memory-minimizing choice for the Barracuda).
	Group int
}

// DefaultGSSGroup is the paper's group size for the GSS* experiments.
const DefaultGSSGroup = 8

// NewMethod returns a Method for the kind with the paper's parameters.
func NewMethod(k Kind) Method {
	m := Method{Kind: k}
	if k == GSS {
		m.Group = DefaultGSSGroup
	}
	return m
}

// Validate reports whether the method is usable.
func (m Method) Validate() error {
	switch m.Kind {
	case RoundRobin, Sweep:
		return nil
	case GSS:
		if m.Group < 1 {
			return fmt.Errorf("sched: GSS* needs a positive group size, got %d", m.Group)
		}
		return nil
	default:
		return fmt.Errorf("sched: unknown kind %d", int(m.Kind))
	}
}

// String names the method, including the group size for GSS.
func (m Method) String() string {
	if m.Kind == GSS {
		return fmt.Sprintf("GSS*(g=%d)", m.Group)
	}
	return m.Kind.String()
}

// WorstDL reports the worst-case disk latency budget for servicing one
// buffer when n requests are in service (Section 2.2):
//
//	Round-Robin:  γ(Cyln) + θ
//	Sweep*:       γ(Cyln/n) + θ
//	GSS*:         γ(Cyln/g) + θ
//
// n below 1 is treated as 1 (a lone request sweeps the whole disk in the
// worst case). For GSS the effective divisor is min(g, n): with fewer
// requests than a group holds, GSS* degenerates to Sweep*.
func (m Method) WorstDL(spec diskmodel.Spec, n int) si.Seconds {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if n < 1 {
		n = 1
	}
	div := 1
	switch m.Kind {
	case RoundRobin:
		div = 1
	case Sweep:
		div = n
	case GSS:
		div = m.Group
		if n < div {
			div = n
		}
	}
	return spec.SeekTime(spec.Cylinders/div) + spec.MaxRotational
}

// DLModel adapts WorstDL to the sizing table's latency-model interface.
func (m Method) DLModel(spec diskmodel.Spec) core.DLModel {
	return func(n int) si.Seconds { return m.WorstDL(spec, n) }
}

// Groups reports the number of groups the method forms over n requests:
// ⌈n/g⌉ for GSS, 1 for Sweep (one sweep covers everyone), and n for
// Round-Robin (every buffer is its own service unit).
func (m Method) Groups(n int) int {
	if n < 1 {
		return 0
	}
	switch m.Kind {
	case RoundRobin:
		return n
	case Sweep:
		return 1
	default:
		return (n + m.Group - 1) / m.Group
	}
}

// SweepOrder sorts ids by their cylinder positions, ascending, breaking
// ties by id for determinism. It is the service order of one sweep.
func SweepOrder(ids []int, cylinderOf func(id int) int) {
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := cylinderOf(ids[i]), cylinderOf(ids[j])
		if ci != cj {
			return ci < cj
		}
		return ids[i] < ids[j]
	})
}
