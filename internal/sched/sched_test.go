package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/diskmodel"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{RoundRobin, "Round-Robin"},
		{Sweep, "Sweep*"},
		{GSS, "GSS*"},
		{Kind(42), "sched.Kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	for s, want := range map[string]Kind{"rr": RoundRobin, "sweep": Sweep, "gss": GSS} {
		if got, err := ParseKind(s); err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("elevator"); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestNewMethodDefaults(t *testing.T) {
	if m := NewMethod(GSS); m.Group != DefaultGSSGroup {
		t.Errorf("GSS group = %d, want %d", m.Group, DefaultGSSGroup)
	}
	if m := NewMethod(RoundRobin); m.Group != 0 {
		t.Errorf("RR group = %d, want 0", m.Group)
	}
	if got := NewMethod(GSS).String(); got != "GSS*(g=8)" {
		t.Errorf("String = %q", got)
	}
}

func TestMethodValidate(t *testing.T) {
	if err := (Method{Kind: GSS}).Validate(); err == nil {
		t.Error("GSS with zero group should fail")
	}
	if err := (Method{Kind: Kind(9)}).Validate(); err == nil {
		t.Error("unknown kind should fail")
	}
	for _, k := range Kinds {
		if err := NewMethod(k).Validate(); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

func TestWorstDLValues(t *testing.T) {
	spec := diskmodel.Barracuda9LP()

	// Round-Robin: gamma(6000) + theta = 13.4 + 8.33 ms, any n.
	rr := NewMethod(RoundRobin)
	for _, n := range []int{1, 40, 79} {
		if got := rr.WorstDL(spec, n).Milliseconds(); math.Abs(got-21.73) > 1e-6 {
			t.Errorf("RR DL(n=%d) = %vms, want 21.73", n, got)
		}
	}

	// Sweep with n = 1 sweeps the whole disk: same as RR.
	sw := NewMethod(Sweep)
	if got, want := sw.WorstDL(spec, 1), rr.WorstDL(spec, 1); got != want {
		t.Errorf("Sweep DL(1) = %v, want %v", got, want)
	}
	// Sweep with n = 60: gamma(100) + theta = 0.54 + 0.26*10 + 8.33.
	want := 0.54 + 2.6 + 8.33
	if got := sw.WorstDL(spec, 60).Milliseconds(); math.Abs(got-want) > 1e-6 {
		t.Errorf("Sweep DL(60) = %vms, want %v", got, want)
	}

	// GSS with g=8: gamma(750) + theta = 5 + 0.0014*750 + 8.33, for n >= 8.
	gss := NewMethod(GSS)
	wantGSS := 5 + 0.0014*750 + 8.33
	if got := gss.WorstDL(spec, 40).Milliseconds(); math.Abs(got-wantGSS) > 1e-6 {
		t.Errorf("GSS DL(40) = %vms, want %v", got, wantGSS)
	}
	// GSS with fewer requests than a group degenerates to Sweep.
	if got, want := gss.WorstDL(spec, 3), sw.WorstDL(spec, 3); got != want {
		t.Errorf("GSS DL(3) = %v, want Sweep's %v", got, want)
	}
	// n < 1 clamps to 1.
	if got, want := sw.WorstDL(spec, 0), sw.WorstDL(spec, 1); got != want {
		t.Errorf("DL(0) = %v, want DL(1) = %v", got, want)
	}
}

// Property: latency ordering DL_RR >= DL_GSS >= DL_Sweep for any n >= g,
// and all DLs at least theta.
func TestWorstDLOrdering(t *testing.T) {
	spec := diskmodel.Barracuda9LP()
	rr, sw, gss := NewMethod(RoundRobin), NewMethod(Sweep), NewMethod(GSS)
	f := func(nRaw uint8) bool {
		n := 8 + int(nRaw)%72
		a, b, c := rr.WorstDL(spec, n), gss.WorstDL(spec, n), sw.WorstDL(spec, n)
		return a >= b && b >= c && c >= spec.MaxRotational
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDLModel(t *testing.T) {
	spec := diskmodel.Barracuda9LP()
	m := NewMethod(Sweep)
	dl := m.DLModel(spec)
	for _, n := range []int{1, 10, 79} {
		if got, want := dl(n), m.WorstDL(spec, n); got != want {
			t.Errorf("DLModel(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestGroups(t *testing.T) {
	tests := []struct {
		m    Method
		n    int
		want int
	}{
		{NewMethod(RoundRobin), 5, 5},
		{NewMethod(Sweep), 5, 1},
		{NewMethod(GSS), 16, 2},
		{NewMethod(GSS), 17, 3},
		{NewMethod(GSS), 7, 1},
		{NewMethod(GSS), 0, 0},
		{NewMethod(RoundRobin), -1, 0},
	}
	for _, tt := range tests {
		if got := tt.m.Groups(tt.n); got != tt.want {
			t.Errorf("%v.Groups(%d) = %d, want %d", tt.m, tt.n, got, tt.want)
		}
	}
}

func TestSweepOrder(t *testing.T) {
	cyl := map[int]int{1: 500, 2: 100, 3: 900, 4: 100}
	ids := []int{1, 2, 3, 4}
	SweepOrder(ids, func(id int) int { return cyl[id] })
	want := []int{2, 4, 1, 3} // ties (2,4 at 100) break by id
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v, want %v", ids, want)
		}
	}
}

// Property: SweepOrder output is a permutation sorted by cylinder.
func TestSweepOrderSorted(t *testing.T) {
	f := func(cyls []uint16) bool {
		ids := make([]int, len(cyls))
		for i := range ids {
			ids[i] = i
		}
		SweepOrder(ids, func(id int) int { return int(cyls[id]) })
		seen := make(map[int]bool)
		for i, id := range ids {
			if seen[id] {
				return false
			}
			seen[id] = true
			if i > 0 && cyls[ids[i-1]] > cyls[id] {
				return false
			}
		}
		return len(seen) == len(cyls)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
