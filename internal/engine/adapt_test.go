package engine

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// switchRecorder captures OnRateSwitch callbacks.
type switchRecorder struct {
	NopObserver
	events []struct {
		id       int
		from, to si.BitRate
		at       si.Seconds
	}
}

func (r *switchRecorder) OnRateSwitch(disk int, st *Stream, from, to si.BitRate, now si.Seconds) {
	r.events = append(r.events, struct {
		id       int
		from, to si.BitRate
		at       si.Seconds
	}{st.ID(), from, to, now})
}

// adaptDisk is multiRateDisk with adaptation enabled and an observer.
func adaptDisk(t *testing.T, obs Observer) *Disk {
	t.Helper()
	ladder := []si.BitRate{si.Mbps(1.5), si.Mbps(1.0), si.Mbps(0.5)}
	lib, err := catalog.New(catalog.Config{
		Titles: 6, Disks: 1, Spec: diskmodel.Barracuda9LP(), PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			v := catalog.MPEG1Video(id)
			v.Ladder = ladder
			return v
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{
		Clock:     NewVirtualClock(),
		Allocator: DynamicAllocator{},
		Method:    sched.NewMethod(sched.RoundRobin),
		Spec:      diskmodel.Barracuda9LP(),
		CR:        ladder[0],
		Rates:     ladder,
		Adapt:     &AdaptConfig{},
		Alpha:     1,
		TLog:      si.Minutes(40),
		Library:   lib,
		Observer:  obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	vc := sys.Clock().(*VirtualClock)
	for i := 0; i < 24; i++ {
		vc.Run(si.Seconds(i * 2))
		sys.OnArrival(workload.Request{
			ID: i, Arrival: si.Seconds(i * 2), Video: i % 6, Disk: 0,
			Viewing: si.Minutes(30), Rate: ladder[i%len(ladder)],
		})
	}
	vc.Run(si.Seconds(120))
	return sys.Disk(0)
}

// startedAt returns a started in-service stream currently at the given
// rate.
func startedAt(t *testing.T, d *Disk, rate si.BitRate) *Stream {
	t.Helper()
	for _, st := range d.streams {
		if st.started && st.rate == rate {
			return st
		}
	}
	t.Fatalf("no started stream at %v", rate)
	return nil
}

func TestAdaptConfigDefaultsAndValidation(t *testing.T) {
	a, err := AdaptConfig{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if a.Reservoir != 0.25 || a.Headroom != 0.95 || a.Sustain != 8 {
		t.Fatalf("defaults = %+v, want {0.25 0.95 8}", a)
	}
	for _, bad := range []AdaptConfig{
		{Reservoir: -1},
		{Headroom: 1.5},
		{Headroom: -0.1},
		{Sustain: -3},
	} {
		if _, err := bad.withDefaults(); err == nil {
			t.Errorf("%+v accepted", bad)
		}
	}
	// Explicit in-range values survive untouched.
	a, err = AdaptConfig{Reservoir: 0.5, Headroom: 1, Sustain: 2}.withDefaults()
	if err != nil || a.Reservoir != 0.5 || a.Headroom != 1 || a.Sustain != 2 {
		t.Fatalf("explicit config mangled: %+v, %v", a, err)
	}
}

func TestRungWalks(t *testing.T) {
	d := adaptDisk(t, nil)
	top := startedAt(t, d, si.Mbps(1.5))
	if c := d.rungAbove(top); c != nil {
		t.Fatalf("rungAbove at the requested top rung = %v, want nil", c.rate)
	}
	if c := d.rungBelow(top); c == nil || c.rate != si.Mbps(1.0) {
		t.Fatalf("rungBelow(1.5) = %v, want 1.0 Mbps", c)
	}
	mid := startedAt(t, d, si.Mbps(1.0))
	// The viewer asked for 1.0: the walk up is capped at the request.
	if c := d.rungAbove(mid); c != nil {
		t.Fatalf("rungAbove above the requested rung = %v, want nil", c.rate)
	}
	bottom := startedAt(t, d, si.Mbps(0.5))
	if c := d.rungBelow(bottom); c != nil {
		t.Fatalf("rungBelow at the ladder floor = %v, want nil", c.rate)
	}
	// After a down-switch the walk back up targets the next rung toward
	// the original request.
	now := si.Seconds(121)
	d.switchRate(top, d.sys.ctxFor(si.Mbps(0.5)), now)
	if c := d.rungAbove(top); c == nil || c.rate != si.Mbps(1.0) {
		t.Fatalf("rungAbove after a deep down-switch = %v, want the next rung 1.0 Mbps", c)
	}
}

func TestSwitchRateBookkeeping(t *testing.T) {
	rec := &switchRecorder{}
	d := adaptDisk(t, rec)
	st := startedAt(t, d, si.Mbps(1.5))
	sr0, cr0 := d.serviceRate, d.committedRate
	liveTop := d.rateLive[st.ctx.idx]
	down := d.sys.ctxFor(si.Mbps(1.0))
	now := si.Seconds(121)

	d.switchRate(st, down, now)
	if d.serviceRate != sr0-si.Mbps(0.5) {
		t.Fatalf("serviceRate = %v, want %v", d.serviceRate, sr0-si.Mbps(0.5))
	}
	if d.committedRate != cr0 {
		t.Fatalf("committedRate shrank on a down-switch: %v, want %v", d.committedRate, cr0)
	}
	if st.booked != si.Mbps(1.5) {
		t.Fatalf("booked = %v, want the standing 1.5 Mbps booking", st.booked)
	}
	if st.rate != si.Mbps(1.0) || st.ctx != down {
		t.Fatalf("stream not re-rated: rate=%v", st.rate)
	}
	if d.rateLive[st.ctx.idx] == 0 || d.rateLive[d.sys.ctxFor(si.Mbps(1.5)).idx] != liveTop-1 {
		t.Fatal("rateLive counters not rebooked")
	}
	if st.rateSince != now {
		t.Fatalf("rateSince = %v, want %v", st.rateSince, now)
	}
	if st.deadline != d.pool.EmptyAt(st.id) {
		t.Fatalf("deadline %v out of sync with the pool's %v", st.deadline, d.pool.EmptyAt(st.id))
	}
	// Climbing back within the booking restores serviceRate and still
	// charges the committed book nothing.
	d.switchRate(st, d.sys.ctxFor(si.Mbps(1.5)), now+1)
	if d.serviceRate != sr0 || d.committedRate != cr0 {
		t.Fatalf("recovery within the booking moved the books: service %v→%v committed %v→%v",
			sr0, d.serviceRate, cr0, d.committedRate)
	}
	// An expansion above the booking charges exactly the increment.
	ex := startedAt(t, d, si.Mbps(0.5))
	d.switchRate(ex, d.sys.ctxFor(si.Mbps(1.0)), now+2)
	if d.committedRate != cr0+si.Mbps(0.5) {
		t.Fatalf("expansion charged %v, want +0.5 Mbps over %v", d.committedRate-cr0, cr0)
	}
	if ex.booked != si.Mbps(1.0) {
		t.Fatalf("expansion booked = %v, want 1.0 Mbps", ex.booked)
	}

	want := []struct {
		from, to si.BitRate
	}{
		{si.Mbps(1.5), si.Mbps(1.0)},
		{si.Mbps(1.0), si.Mbps(1.5)},
		{si.Mbps(0.5), si.Mbps(1.0)},
	}
	if len(rec.events) != len(want) {
		t.Fatalf("observer saw %d switches, want %d", len(rec.events), len(want))
	}
	for i, w := range want {
		if rec.events[i].from != w.from || rec.events[i].to != w.to {
			t.Fatalf("switch %d: %v→%v, want %v→%v", i,
				rec.events[i].from, rec.events[i].to, w.from, w.to)
		}
	}
}

// TestSwitchRateReplansDemand pins the demand re-plan: consumed bits stay
// consumed, and the rest of the viewing is priced at the new rung.
func TestSwitchRateReplansDemand(t *testing.T) {
	d := adaptDisk(t, nil)
	st := startedAt(t, d, si.Mbps(1.5))
	now := si.Seconds(121)
	consumed := st.delivered - d.pool.Level(st.id, now)
	remaining := st.firstFill + st.req.Viewing - now
	to := d.sys.ctxFor(si.Mbps(0.5))
	d.switchRate(st, to, now)
	want := float64(consumed) + float64(si.Mbps(0.5).DataIn(remaining))
	if math.Abs(float64(st.required)-want) > 1 {
		t.Fatalf("required = %v after the switch, want consumed %v + remaining at 0.5 Mbps", st.required, want)
	}
}
