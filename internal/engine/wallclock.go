package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/si"
)

// WallClock is real time scaled by a constant factor: one wall second is
// scale engine seconds. It is the live server's Clock — the same service
// loop the simulator runs under virtual time paces actual deliveries when
// driven by a WallClock (scale 1 is real time; demos compress time with
// scale 60 and up).
//
// Serialization contract: every scheduled callback runs with the clock's
// internal lock held, and drivers must enter the engine the same way —
// wrap each call into System/Disk in Do. This gives the engine the
// single-threaded view its state machines assume while arrivals come from
// arbitrarily many goroutines.
type WallClock struct {
	mu    sync.Mutex
	epoch time.Time
	scale float64
}

// NewWallClock returns a wall clock whose time starts at zero now and
// advances scale engine seconds per wall second.
func NewWallClock(scale float64) *WallClock {
	if scale <= 0 {
		panic(fmt.Sprintf("engine: non-positive wall clock scale %v", scale))
	}
	return &WallClock{epoch: time.Now(), scale: scale}
}

// Scale reports the time-compression factor.
func (c *WallClock) Scale() float64 { return c.scale }

// Now reports the scaled time elapsed since the clock was created.
func (c *WallClock) Now() si.Seconds {
	return si.Seconds(time.Since(c.epoch).Seconds() * c.scale)
}

// WallDuration converts an engine duration to the wall time it spans.
func (c *WallClock) WallDuration(d si.Seconds) time.Duration {
	return (d / si.Seconds(c.scale)).Duration()
}

// Do runs fn with the engine lock held. Every driver call into an engine
// System or Disk running under this clock must go through Do; callbacks
// fired by Schedule/After already hold the lock.
func (c *WallClock) Do(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn()
}

// Schedule registers fn to run at engine time at. Instants that have
// already passed (the engine computed a start time that wall time
// overtook) run as soon as possible rather than panicking: under real
// time, "now" moves while the engine thinks.
func (c *WallClock) Schedule(at si.Seconds, fn func()) Timer {
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	delay := at - c.Now()
	if delay < 0 {
		delay = 0
	}
	return c.schedule(delay, fn, nil, nil)
}

// After schedules fn to run delay engine seconds from now.
func (c *WallClock) After(delay si.Seconds, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("engine: negative delay %v", delay))
	}
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	return c.schedule(delay, fn, nil, nil)
}

// ScheduleFunc registers the pre-bound callback fn(arg) to run at engine
// time at. The wall clock allocates a timer per call either way (the OS
// timer dominates); the payload form exists so engine hot paths use one
// Clock API under both clocks.
func (c *WallClock) ScheduleFunc(at si.Seconds, fn func(arg any), arg any) Timer {
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	delay := at - c.Now()
	if delay < 0 {
		delay = 0
	}
	return c.schedule(delay, nil, fn, arg)
}

// AfterFunc schedules fn(arg) to run delay engine seconds from now.
func (c *WallClock) AfterFunc(delay si.Seconds, fn func(arg any), arg any) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("engine: negative delay %v", delay))
	}
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	return c.schedule(delay, nil, fn, arg)
}

func (c *WallClock) schedule(delay si.Seconds, fn func(), afn func(any), arg any) Timer {
	wt := &wallTimer{}
	wt.t = time.AfterFunc(c.WallDuration(delay), func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if wt.canceled.Load() {
			return
		}
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
	})
	return Timer{wt: wt}
}

// wallTimer is a Timer over time.AfterFunc. The canceled flag is atomic so
// Cancel is safe both from inside engine callbacks (lock held) and from
// driver goroutines.
type wallTimer struct {
	t        *time.Timer
	canceled atomic.Bool
}

func (t *wallTimer) Cancel() {
	if t == nil {
		return
	}
	t.canceled.Store(true)
	t.t.Stop()
}
