package engine

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/si"
)

// WallClock is real time scaled by a constant factor: one wall second is
// scale engine seconds. It is the live server's ClockDomain — the same
// service loop the simulator runs under virtual time paces actual
// deliveries when driven by a WallClock (scale 1 is real time; demos
// compress time with scale 60 and up).
//
// The clock is sharded: DiskClock(i) returns an independent WallShard
// per disk, each with its own engine lock and hierarchical timer wheel,
// so timers and callbacks on one disk never contend with another disk's.
// Timers are pooled on a per-shard freelist with generation-checked
// handles — the live path allocates nothing per schedule in steady state.
//
// Serialization contract: every callback scheduled on a shard runs with
// that shard's lock held, and drivers must enter the engine the same way
// — wrap each call into a Disk in its shard's Do. Distinct shards run
// concurrently; state spanning disks must be safe for that.
//
// For callers that need a plain Clock (single-disk demos, tests), the
// WallClock itself implements Clock and Do by delegating to shard 0.
type WallClock struct {
	epoch time.Time
	scale float64
	tick  time.Duration

	// jcMax, when positive, enables jitter compensation: every shard
	// aims its timers early by its smoothed observed wakeup lag, clamped
	// to this bound (in wall nanoseconds). See SetJitterComp.
	jcMax atomic.Int64

	mu     sync.Mutex
	shards []*WallShard
}

// DefaultWallTick is the wall-time granularity of the shard timer
// wheels: callbacks fire on the first tick boundary at or after their
// scheduled instant.
const DefaultWallTick = time.Millisecond

// NewWallClock returns a wall clock whose time starts at zero now and
// advances scale engine seconds per wall second, with the default wheel
// tick.
func NewWallClock(scale float64) *WallClock {
	return NewWallClockTick(scale, DefaultWallTick)
}

// NewWallClockTick is NewWallClock with an explicit wheel tick, for
// callers that trade timer-wheel overhead against firing granularity.
func NewWallClockTick(scale float64, tick time.Duration) *WallClock {
	if scale <= 0 {
		panic(fmt.Sprintf("engine: non-positive wall clock scale %v", scale))
	}
	if tick <= 0 {
		panic(fmt.Sprintf("engine: non-positive wall clock tick %v", tick))
	}
	return &WallClock{epoch: time.Now(), scale: scale, tick: tick}
}

// Scale reports the time-compression factor.
func (c *WallClock) Scale() float64 { return c.scale }

// SetJitterComp enables (max > 0) or disables (max <= 0) the
// jitter-compensating deadline scheduler. With compensation on, each
// shard aims a timer at the last wheel tick at or before the requested
// instant minus twice the shard's smoothed observed lag — the wall time
// between a timer's aimed tick and the moment its callback actually
// began executing — the whole back-off clamped to max. That inverts
// the uncompensated rounding: instead of firing up to one tick late
// plus the OS's lag, a timer fires up to one tick plus the clamp early
// and, when the lag estimate tracks, at or before its requested
// instant. The lag estimate is an asymmetric EWMA: it jumps to a new
// spike immediately (a late fire charged to the model is the failure
// being prevented) and decays by 1/64 per observation otherwise, so it
// shadows the recent worst case rather than the mean; the aim doubles
// it because lag under load is bursty — the estimate is what the worst
// recent fire needed, the doubling is the guard band that keeps the
// next, slightly worse burst from landing late anyway.
//
// Firing early is always safe for the streaming model — a fill landing
// ahead of its deadline only deepens the buffer — whereas firing late by
// OS scheduling latency shows up as model underruns at high time
// compression, where a millisecond of wall lag is seconds of engine
// time. Compensation trades a bounded early-delivery skew for not
// charging OS latency to the paper's admission model.
//
// Safe to call at any time, including while shards are running; timers
// already on the wheel keep their uncompensated expiry.
func (c *WallClock) SetJitterComp(max time.Duration) { c.jcMax.Store(int64(max)) }

// JitterComp reports the configured compensation clamp (0 = disabled).
func (c *WallClock) JitterComp() time.Duration { return time.Duration(c.jcMax.Load()) }

// Now reports the scaled time elapsed since the clock was created. All
// shards share this one timeline; only scheduling is sharded.
func (c *WallClock) Now() si.Seconds {
	return si.Seconds(time.Since(c.epoch).Seconds() * c.scale)
}

// WallDuration converts an engine duration to the wall time it spans.
func (c *WallClock) WallDuration(d si.Seconds) time.Duration {
	return (d / si.Seconds(c.scale)).Duration()
}

// DiskClock returns the shard that drives disk i, creating it (and its
// driver goroutine) on first use.
func (c *WallClock) DiskClock(i int) Clock { return c.Shard(i) }

// Shard returns shard i, creating shards up to it on first use.
func (c *WallClock) Shard(i int) *WallShard {
	if i < 0 {
		panic(fmt.Sprintf("engine: negative shard index %d", i))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.shards) <= i {
		s := &WallShard{
			clock:    c,
			id:       len(c.shards),
			nextWake: ^uint64(0),
			kick:     make(chan struct{}, 1),
			done:     make(chan struct{}),
		}
		s.cur = c.tickNow()
		c.shards = append(c.shards, s)
		go s.drive()
	}
	return c.shards[i]
}

// Shards reports how many shards have been created so far.
func (c *WallClock) Shards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.shards)
}

// Stop terminates every shard's driver goroutine. Queued timers never
// fire; in-flight callbacks finish. The clock must not be used after.
func (c *WallClock) Stop() {
	c.mu.Lock()
	shards := append([]*WallShard(nil), c.shards...)
	c.mu.Unlock()
	for _, s := range shards {
		s.stop.Do(func() { close(s.done) })
	}
}

// Schedule and friends let a WallClock double as a plain Clock for
// single-disk callers: they delegate to shard 0, as does Do.

// Schedule registers fn to run at engine time at on shard 0.
func (c *WallClock) Schedule(at si.Seconds, fn func()) Timer {
	return c.Shard(0).Schedule(at, fn)
}

// After schedules fn on shard 0 to run delay engine seconds from now.
func (c *WallClock) After(delay si.Seconds, fn func()) Timer {
	return c.Shard(0).After(delay, fn)
}

// ScheduleFunc registers the pre-bound callback fn(arg) on shard 0.
func (c *WallClock) ScheduleFunc(at si.Seconds, fn func(arg any), arg any) Timer {
	return c.Shard(0).ScheduleFunc(at, fn, arg)
}

// AfterFunc schedules fn(arg) on shard 0 delay engine seconds from now.
func (c *WallClock) AfterFunc(delay si.Seconds, fn func(arg any), arg any) Timer {
	return c.Shard(0).AfterFunc(delay, fn, arg)
}

// Do runs fn with shard 0's engine lock held.
func (c *WallClock) Do(fn func()) { c.Shard(0).Do(fn) }

// tickNow reports the current absolute wheel tick.
func (c *WallClock) tickNow() uint64 {
	return uint64(time.Since(c.epoch) / c.tick)
}

// tickAt reports the first tick at or after engine time at.
func (c *WallClock) tickAt(at si.Seconds) uint64 {
	if at <= 0 {
		return 0
	}
	wall := c.WallDuration(at)
	return uint64((wall + c.tick - 1) / c.tick)
}

// tickCompensated reports the last tick at or before engine time at
// minus comp wall time — the jitter-compensated aim point. Where
// tickAt rounds a timer up to one tick late, this rounds it up to one
// tick early and then backs off by the lag estimate, so the residual
// scheduling error is early (harmless to the streaming model) rather
// than late (charged to it).
func (c *WallClock) tickCompensated(at si.Seconds, comp time.Duration) uint64 {
	if at <= 0 {
		return 0
	}
	wall := c.WallDuration(at) - comp
	if wall <= 0 {
		return 0
	}
	return uint64(wall / c.tick)
}

// untilTick reports the wall time from now until tick tk (negative if
// tk has passed).
func (c *WallClock) untilTick(tk uint64) time.Duration {
	return time.Duration(tk)*c.tick - time.Since(c.epoch)
}

// The wheel has 4 levels of 64 slots. At the default 1ms tick, level 0
// spans 64ms at tick resolution and the wheel covers ~4.7h; farther
// expiries park in the top level and re-cascade.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
)

// WallShard is one disk's clock: a hierarchical timer wheel plus the
// lock that serializes the disk's callbacks. It implements Clock.
//
// Two locks, ordered mu → wmu:
//
//   - mu is the engine lock, held across every fired callback and Do.
//     It serializes the disk's state machine exactly as the old global
//     WallClock mutex did — per shard instead of per process.
//   - wmu is the wheel lock, guarding the timer structure. Schedule and
//     Cancel take only wmu, so they never wait on a running callback —
//     a callback (holding mu) can schedule without self-deadlock, and
//     other goroutines can schedule while a callback runs.
type WallShard struct {
	clock *WallClock
	id    int

	mu sync.Mutex // engine lock: held across callbacks and Do

	wmu      sync.Mutex // wheel lock: guards all fields below
	cur      uint64     // last processed tick
	nextWake uint64     // tick the driver will wake at (^0 when idle)
	slots    [wheelLevels][wheelSlots]wallSlot
	occupied [wheelLevels]uint64 // bitmap of non-empty slots per level
	free     []*wallTimer
	pending  int // queued (not yet fired or canceled) timers

	kick chan struct{} // wakes the driver when an earlier timer lands
	done chan struct{}
	stop sync.Once

	// lagEWMA is the shard's smoothed observed wakeup lag in wall
	// nanoseconds (see WallClock.SetJitterComp). The driver goroutine is
	// the only writer; schedulers and stats readers load it atomically.
	lagEWMA atomic.Int64
}

// wallSlot is one wheel slot: a FIFO list of timers, so same-tick
// callbacks fire in scheduling order.
type wallSlot struct {
	head, tail *wallTimer
}

// wallTimer is a pooled timer on a shard's wheel. All fields are guarded
// by the shard's wmu; the generation bump on release makes stale Timer
// handles harmless, exactly like VirtualClock events.
type wallTimer struct {
	shard      *WallShard
	gen        uint64
	expiry     uint64 // absolute tick
	lvl, idx   uint8  // wheel position while queued
	queued     bool
	canceled   bool
	fn         func()
	afn        func(arg any)
	arg        any
	prev, next *wallTimer
}

// cancel marks the timer canceled if gen still identifies the scheduling
// that issued the handle. A queued timer is unlinked and recycled; one
// already popped by the driver fires into the canceled check instead.
func (wt *wallTimer) cancel(gen uint64) {
	if wt == nil {
		return
	}
	s := wt.shard
	s.wmu.Lock()
	if wt.gen == gen && !wt.canceled {
		wt.canceled = true
		if wt.queued {
			s.unlinkLocked(wt)
			s.releaseLocked(wt)
		}
	}
	s.wmu.Unlock()
}

// ID reports the shard's index within its WallClock.
func (s *WallShard) ID() int { return s.id }

// Now reports the scaled time elapsed since the clock was created.
func (s *WallShard) Now() si.Seconds { return s.clock.Now() }

// Do runs fn with the shard's engine lock held. Every driver call into
// an engine Disk running under this shard must go through Do; callbacks
// fired by Schedule/After already hold the lock.
func (s *WallShard) Do(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// Schedule registers fn to run at engine time at. Instants that have
// already passed (the engine computed a start time that wall time
// overtook) run on the next tick rather than panicking: under real
// time, "now" moves while the engine thinks.
func (s *WallShard) Schedule(at si.Seconds, fn func()) Timer {
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	return s.schedule(at, fn, nil, nil)
}

// After schedules fn to run delay engine seconds from now.
func (s *WallShard) After(delay si.Seconds, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("engine: negative delay %v", delay))
	}
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	return s.schedule(s.clock.Now()+delay, fn, nil, nil)
}

// ScheduleFunc registers the pre-bound callback fn(arg) to run at engine
// time at. As with the virtual clock, a recurring call site allocates
// nothing in steady state: the timer comes off the shard's freelist and
// arg rides in its payload slot.
func (s *WallShard) ScheduleFunc(at si.Seconds, fn func(arg any), arg any) Timer {
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	return s.schedule(at, nil, fn, arg)
}

// AfterFunc schedules fn(arg) to run delay engine seconds from now.
func (s *WallShard) AfterFunc(delay si.Seconds, fn func(arg any), arg any) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("engine: negative delay %v", delay))
	}
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	return s.schedule(s.clock.Now()+delay, nil, fn, arg)
}

// WakeupLag reports the shard's smoothed observed lag: how late, in
// wall time, the shard's timer callbacks have recently begun executing
// relative to their aimed wheel ticks (with compensation off, how late
// the driver has been to its planned wake-ups).
func (s *WallShard) WakeupLag() time.Duration {
	return time.Duration(s.lagEWMA.Load())
}

// Compensation reports how much wall time the shard currently backs
// its timers off by: twice its lag estimate clamped to the clock's
// jitter-comp bound, or 0 with compensation disabled. (On top of this,
// an armed shard also floors the aim point to the wheel tick — see
// SetJitterComp.) This is the value the serving path exports as a live
// gauge.
func (s *WallShard) Compensation() time.Duration { return s.compensation() }

// noteLag folds one observed lag into the shard's estimate: instant
// attack (a spike raises the estimate at once), slow decay (1/64 per
// observation), so the compensation shadows the recent worst case.
// Driver goroutine only.
func (s *WallShard) noteLag(lag time.Duration) {
	if lag < 0 {
		lag = 0
	}
	old := s.lagEWMA.Load()
	if int64(lag) >= old {
		s.lagEWMA.Store(int64(lag))
		return
	}
	s.lagEWMA.Store(old - (old-int64(lag))>>6)
}

// compensation reports the wall time by which the shard currently aims
// its timers early: twice the lag estimate (the guard band — see
// SetJitterComp), clamped to the configured bound, or 0 with
// compensation off.
func (s *WallShard) compensation() time.Duration {
	max := s.clock.jcMax.Load()
	if max <= 0 {
		return 0
	}
	lag := 2 * s.lagEWMA.Load()
	if lag > max {
		lag = max
	}
	return time.Duration(lag)
}

// PendingTimers reports the number of queued timers (for tests).
func (s *WallShard) PendingTimers() int {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.pending
}

// FreeListLen reports the number of recycled timers available for reuse
// (exposed for pooling tests).
func (s *WallShard) FreeListLen() int {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return len(s.free)
}

func (s *WallShard) schedule(at si.Seconds, fn func(), afn func(any), arg any) Timer {
	// Jitter compensation: aim at the floor tick of (requested − clamped
	// lag estimate) so the OS's wakeup latency lands the callback near —
	// or just before — its requested instant instead of behind it. The
	// exp <= cur clamp below still floors everything to the next tick,
	// so compensation can never push a timer into the past.
	var exp uint64
	if s.clock.jcMax.Load() > 0 {
		exp = s.clock.tickCompensated(at, s.compensation())
	} else {
		exp = s.clock.tickAt(at)
	}
	s.wmu.Lock()
	if exp <= s.cur {
		exp = s.cur + 1 // past or current tick: fire on the next advance
	}
	wt := s.allocLocked()
	wt.expiry = exp
	wt.fn, wt.afn, wt.arg = fn, afn, arg
	s.insertLocked(wt)
	gen := wt.gen
	// Wake the driver only when this timer lands before its planned
	// wake-up; claiming nextWake here keeps schedule bursts to one kick.
	needKick := exp < s.nextWake
	if needKick {
		s.nextWake = exp
	}
	s.wmu.Unlock()
	if needKick {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	return Timer{wt: wt, gen: gen}
}

// allocLocked takes a timer from the freelist, or makes a new one.
func (s *WallShard) allocLocked() *wallTimer {
	if n := len(s.free); n > 0 {
		wt := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return wt
	}
	return &wallTimer{shard: s}
}

// releaseLocked returns a fired or canceled timer to the freelist. The
// generation bump invalidates every Timer handle issued for it.
func (s *WallShard) releaseLocked(wt *wallTimer) {
	wt.gen++
	wt.fn, wt.afn, wt.arg = nil, nil, nil
	wt.canceled = false
	wt.queued = false
	wt.prev, wt.next = nil, nil
	s.free = append(s.free, wt)
}

// insertLocked files wt into the wheel by its expiry's distance from the
// current tick. Expiries beyond the wheel's span park in the top level
// and re-cascade until they come into range.
func (s *WallShard) insertLocked(wt *wallTimer) {
	delta := wt.expiry - s.cur // caller guarantees expiry > cur
	exp := wt.expiry
	var lvl int
	switch {
	case delta < 1<<wheelBits:
		lvl = 0
	case delta < 1<<(2*wheelBits):
		lvl = 1
	case delta < 1<<(3*wheelBits):
		lvl = 2
	default:
		lvl = 3
		if delta >= 1<<(4*wheelBits) {
			exp = s.cur + 1<<(4*wheelBits) - 1
		}
	}
	idx := (exp >> (wheelBits * lvl)) & wheelMask
	wt.lvl, wt.idx = uint8(lvl), uint8(idx)
	wt.queued = true
	slot := &s.slots[lvl][idx]
	wt.prev, wt.next = slot.tail, nil
	if slot.tail != nil {
		slot.tail.next = wt
	} else {
		slot.head = wt
	}
	slot.tail = wt
	s.occupied[lvl] |= 1 << idx
	s.pending++
}

// unlinkLocked removes a queued timer from its slot.
func (s *WallShard) unlinkLocked(wt *wallTimer) {
	slot := &s.slots[wt.lvl][wt.idx]
	if wt.prev != nil {
		wt.prev.next = wt.next
	} else {
		slot.head = wt.next
	}
	if wt.next != nil {
		wt.next.prev = wt.prev
	} else {
		slot.tail = wt.prev
	}
	if slot.head == nil {
		s.occupied[wt.lvl] &^= 1 << wt.idx
	}
	wt.prev, wt.next = nil, nil
	wt.queued = false
	s.pending--
}

// popSlotLocked detaches a slot's whole FIFO list and returns its head.
func (s *WallShard) popSlotLocked(lvl, idx uint64) *wallTimer {
	slot := &s.slots[lvl][idx]
	head := slot.head
	for wt := head; wt != nil; wt = wt.next {
		wt.queued = false
		s.pending--
	}
	slot.head, slot.tail = nil, nil
	s.occupied[lvl] &^= 1 << idx
	return head
}

// nextPendingTickLocked reports the earliest tick at which the driver
// must act: a level-0 slot expiring, or a higher-level slot reaching its
// cascade boundary.
func (s *WallShard) nextPendingTickLocked() (uint64, bool) {
	best := ^uint64(0)
	found := false
	for lvl := 0; lvl < wheelLevels; lvl++ {
		bm := s.occupied[lvl]
		for bm != 0 {
			idx := uint64(bits.TrailingZeros64(bm))
			bm &= bm - 1
			// Slot idx at level L acts when cur next hits a tick that is
			// idx in that level's digit and zero in all lower digits.
			span := uint64(1) << (wheelBits * (lvl + 1))
			t := (s.cur &^ (span - 1)) | (idx << (wheelBits * lvl))
			if t <= s.cur {
				t += span
			}
			if t < best {
				best, found = t, true
			}
		}
	}
	return best, found
}

// advanceLocked processes wheel time up to now: cascades higher-level
// slots whose block begins and collects expired level-0 slots, in tick
// order with FIFO order within a tick. Returns the batch to fire, linked
// by next.
func (s *WallShard) advanceLocked(now uint64) *wallTimer {
	var head, tail *wallTimer
	appendRun := func(h *wallTimer) {
		if h == nil {
			return
		}
		if tail != nil {
			tail.next = h
			h.prev = tail
		} else {
			head = h
		}
		tail = h
		for tail.next != nil {
			tail = tail.next
		}
	}
	for s.cur < now {
		next, ok := s.nextPendingTickLocked()
		if !ok || next > now {
			s.cur = now
			break
		}
		s.cur = next
		// Cascade every level whose block starts at this tick: re-file
		// its due slot's timers one level down — or straight into the
		// batch when the block start is the expiry itself.
		for lvl := uint64(1); lvl < wheelLevels; lvl++ {
			if s.cur&(1<<(wheelBits*lvl)-1) != 0 {
				break
			}
			idx := (s.cur >> (wheelBits * lvl)) & wheelMask
			if s.occupied[lvl]&(1<<idx) == 0 {
				continue
			}
			run := s.popSlotLocked(lvl, idx)
			for wt := run; wt != nil; {
				nx := wt.next
				wt.prev, wt.next = nil, nil
				if wt.expiry <= s.cur {
					appendRun(wt)
				} else {
					s.insertLocked(wt)
				}
				wt = nx
			}
		}
		idx := s.cur & wheelMask
		if s.occupied[0]&(1<<idx) != 0 {
			appendRun(s.popSlotLocked(0, idx))
		}
	}
	return head
}

// fire runs a batch of expired timers under the engine lock, releasing
// each timer back to the freelist first so callbacks can reschedule into
// the very slot they fired from.
//
// With compensation armed, each timer's lag is sampled here — at
// callback execution, against the timer's own aimed tick — not just at
// driver wake-up. Execution is where the engine reads "now", so this is
// the lateness the model actually sees: wake-up lag plus engine-lock
// wait plus the batch's earlier callbacks. And because the aimed tick
// already sits one compensation early, lateness measured against it is
// exactly the compensation that would have landed this callback on its
// requested instant — the estimate self-corrects toward zero residual.
func (s *WallShard) fire(batch *wallTimer) {
	if batch == nil {
		return
	}
	comp := s.clock.jcMax.Load() > 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for wt := batch; wt != nil; {
		nx := wt.next
		s.wmu.Lock()
		canceled := wt.canceled
		exp := wt.expiry
		fn, afn, arg := wt.fn, wt.afn, wt.arg
		s.releaseLocked(wt)
		s.wmu.Unlock()
		if !canceled {
			if comp {
				s.noteLag(-s.clock.untilTick(exp))
			}
			if afn != nil {
				afn(arg)
			} else {
				fn()
			}
		}
		wt = nx
	}
}

// drive is the shard's driver goroutine: advance the wheel to wall time,
// fire what expired, sleep until the next pending tick (or a kick, when
// a schedule lands earlier than the planned wake-up).
func (s *WallShard) drive() {
	t := time.NewTimer(time.Hour)
	defer t.Stop()
	for {
		s.wmu.Lock()
		batch := s.advanceLocked(s.clock.tickNow())
		next, ok := s.nextPendingTickLocked()
		if ok {
			s.nextWake = next
		} else {
			s.nextWake = ^uint64(0)
		}
		s.wmu.Unlock()

		s.fire(batch)

		select {
		case <-s.done:
			return
		default:
		}
		wait := time.Hour // idle: only a kick or Stop wakes us
		if ok {
			wait = s.clock.untilTick(next)
			if wait <= 0 {
				// Already due: the previous batch's callbacks (or the OS)
				// held us past the next pending tick. That overshoot is
				// wakeup lag just like a late timer fire.
				s.noteLag(-wait)
				continue // advance again without sleeping
			}
		}
		t.Reset(wait)
		select {
		case <-t.C:
			if ok {
				// Lag: how far past the planned tick the OS woke us.
				s.noteLag(-s.clock.untilTick(next))
			}
		case <-s.kick:
			if !t.Stop() {
				<-t.C
			}
		case <-s.done:
			return
		}
	}
}
