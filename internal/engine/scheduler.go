package engine

import (
	"sort"

	"repro/internal/sched"
	"repro/internal/si"
)

// Scheduler is the method-specific part of a disk: when new requests may
// be admitted, which stream is serviced next, and how late that service
// may start. It realises the paper's buffer scheduling methods
// (Section 2.2): Round-Robin with BubbleUp, Sweep*, and GSS*.
//
// All three implementations schedule lazily — a service starts as late as
// the batch's deadlines safely allow — which is what gives Sweep* and
// GSS* their memory-sharing behaviour and keeps the static scheme's
// disks idle between widely spaced refills.
//
// Scheduler methods are called by the engine with the clock's
// serialization guarantee; implementations need no locking of their own.
type Scheduler interface {
	// Admit incorporates a newly admitted stream.
	Admit(st *Stream)
	// Remove drops a departed stream.
	Remove(st *Stream)
	// CanAdmit reports whether the method's timing rules allow admitting
	// new requests at this moment (BubbleUp: always; Sweep*: between
	// periods; GSS*: between groups).
	CanAdmit() bool
	// Next returns the stream to service next and the latest safe start
	// time, or nil when nothing needs service. It must be idempotent.
	Next(now si.Seconds) (*Stream, si.Seconds)
	// OnServiced records that the stream returned by Next was serviced.
	OnServiced(st *Stream)
}

// DebugForm, when set, observes every Sweep* period formation. Debug-only.
var DebugForm func(now si.Seconds, ids []int)

// NewScheduler builds the standard Scheduler for the disk's configured
// method: Round-Robin (with BubbleUp unless disabled), Sweep*, or GSS*.
func NewScheduler(d *Disk) Scheduler {
	switch d.sys.cfg.Method.Kind {
	case sched.RoundRobin:
		return &rrScheduler{d: d, bubbleUp: !d.sys.cfg.DisableBubbleUp}
	case sched.Sweep:
		return &sweepScheduler{d: d}
	default:
		return &gssScheduler{d: d, cur: -1}
	}
}

// rrScheduler is Round-Robin with BubbleUp: earliest-deadline-first over
// the streams, which reduces to cyclic order in steady state (equal buffer
// sizes imply equally spaced deadlines) and services fresh streams —
// whose deadline is their admission instant — immediately.
type rrScheduler struct {
	d        *Disk
	bubbleUp bool
}

func (p *rrScheduler) Admit(*Stream)      {}
func (p *rrScheduler) Remove(*Stream)     {}
func (p *rrScheduler) CanAdmit() bool     { return true }
func (p *rrScheduler) OnServiced(*Stream) {}

func (p *rrScheduler) Next(now si.Seconds) (*Stream, si.Seconds) {
	// Started streams have viewers draining their buffers: hard deadlines.
	// Fresh streams (first fill pending) are BubbleUp work: serviced
	// immediately, but never at the cost of starving a started buffer.
	// Both are O(1) reads off the disk's maintained indexes: the deadline
	// heap's min is the started stream with the earliest (deadline,
	// admission) — the scan winner with its tie-breaks — and the fresh
	// FIFO's head is the earliest-arrived newcomer.
	started := p.d.minDeadlineStream()
	fresh := p.d.firstFresh()
	if started == nil && fresh == nil {
		return nil, 0
	}
	var startedD si.Seconds
	if started != nil {
		startedD = p.d.deadlineOf(started)
	}
	w := p.d.worstService(p.d.n())
	if started != nil && startedD-(lazyMarginServices+1)*w <= now {
		if room := p.d.roomAt(started); room > now {
			return started, room // full buffer: wait for it to drain
		}
		return started, now // a hard deadline is due (within the cushion)
	}
	dlAware := p.bubbleUp && p.d.sys.cfg.DeadlineAwareBubbleUp
	if fresh != nil {
		if p.bubbleUp {
			if started == nil || !dlAware {
				return fresh, now // BubbleUp: no urgent refill, serve the newcomer
			}
			// Deadline-aware BubbleUp: the newcomer's service inserts one
			// worst service ahead of every pending refill, so it is served
			// now only if the backlog's latest safe start (computed below)
			// leaves that much room. The earliest-deadline check above is
			// not enough once a refill generation's deadline spacing drops
			// below the current service time: the backlog is then a cluster
			// whose tail has far less slack than its head.
		} else {
			// Fixed-Stretch: the newcomer waits until the rotation reaches
			// it — every started stream refilled once after its arrival.
			reached := true
			for _, st := range p.d.streams {
				if st.started && st.active && st.lastFillAt < fresh.req.Arrival {
					reached = false
					break
				}
			}
			if reached {
				return fresh, now
			}
			// Otherwise fall through to refill rotation below (started may
			// be nil only if no started stream needs service, in which case
			// the rotation cannot progress and the newcomer is served).
			if started == nil {
				return fresh, now
			}
		}
	}
	// Idle long enough that laziness matters: wake at the latest start
	// that still lets every due buffer be refilled in deadline order.
	// The deadline index yields the ascending deadline sequence; only
	// the Fixed-Stretch ablation, whose waiting newcomers count as
	// due-at-admission, needs their (also ascending) deadlines merged in
	// (a gated BubbleUp newcomer does not: it waits for slack, it is not
	// due).
	scratch := p.d.deadlineScratch[:0]
	if fresh == nil || p.bubbleUp {
		scratch = p.d.deadlines.appendAscending(scratch)
	} else {
		scratch = mergeFreshDeadlines(p.d, scratch)
	}
	p.d.deadlineScratch = scratch
	start := latestStartSorted(scratch, w)
	if fresh != nil && dlAware && start >= now {
		// The backlog affords the inserted service: pushed back by one
		// worst service it still makes every deadline with a service-time
		// to spare (latestStartSorted embeds the 2w cushion). In a cluster
		// catch-up the deep-tail minimum drives start below now and blocks
		// the insert — the case the earliest-deadline check cannot see.
		return fresh, now
	}
	if room := p.d.roomAt(started); start < room {
		start = room
	}
	if start < now {
		start = now
	}
	return started, start
}

// mergeFreshDeadlines merges the started streams' deadlines with the
// waiting fresh streams' admission-time deadlines, both ascending, into
// one sorted sequence (the Fixed-Stretch lazy-start input).
func mergeFreshDeadlines(d *Disk, scratch []si.Seconds) []si.Seconds {
	started := d.deadlines.appendAscending(d.dlMerge[:0])
	d.dlMerge = started
	i, fr := 0, d.fresh[d.freshHead:]
	for _, dl := range started {
		for ; i < len(fr); i++ {
			f := fr[i]
			if f.started || !f.needService() {
				continue
			}
			if f.deadline > dl {
				break
			}
			scratch = append(scratch, f.deadline)
		}
		scratch = append(scratch, dl)
	}
	for ; i < len(fr); i++ {
		if f := fr[i]; !f.started && f.needService() {
			scratch = append(scratch, f.deadline)
		}
	}
	return scratch
}

// sweepScheduler is Sweep*: service periods are formed from every stream
// needing service, ordered by disk position; new requests join only the
// next period; each service within the period starts as late as the
// remaining deadlines allow, which delays the period's tail the way
// Sweep* prescribes.
type sweepScheduler struct {
	d      *Disk
	period []*Stream
	idx    int
}

func (p *sweepScheduler) Admit(*Stream)  {}
func (p *sweepScheduler) Remove(*Stream) {}
func (p *sweepScheduler) CanAdmit() bool { return p.idx >= len(p.period) }
func (p *sweepScheduler) OnServiced(st *Stream) {
	if p.idx < len(p.period) && p.period[p.idx] == st {
		p.idx++
	}
}

func (p *sweepScheduler) Next(now si.Seconds) (*Stream, si.Seconds) {
	// Skip members that departed or finished since formation.
	for p.idx < len(p.period) && !p.period[p.idx].needService() {
		p.idx++
	}
	if p.idx >= len(p.period) {
		if !p.form() {
			return nil, 0
		}
	}
	st := p.period[p.idx]
	if p.idx > 0 {
		// Periods are compact: once started, services run back-to-back.
		// Compact fills align the members' deadlines for the next period
		// (each deadline = fill + T), which is what makes Sweep* periodic
		// — and is the schedule Theorem 3's memory peak describes.
		return st, now
	}
	// A waiting newcomer pulls the period forward: Eq. 3's worst wait is
	// two service batches (the current one and the next, which includes
	// the newcomer), not two full usage periods — top-up fills make the
	// early period cheap for the other members.
	start := batchLazyStart(p.d, p.period, now, 0, true)
	return st, start
}

// form assembles the next service period in sweep order. Every stream
// still fetching data joins — Sweep* refills all n buffers once per
// period, which is precisely why Theorem 3's memory peak holds n−1 full
// buffers. Period spacing emerges from the lazy start: the next period
// begins only when the earliest deadline forces it, about one usage
// period after the last.
func (p *sweepScheduler) form() bool {
	p.period = p.period[:0]
	for _, st := range p.d.streams {
		if st.needService() {
			p.period = append(p.period, st)
		}
	}
	p.idx = 0
	if len(p.period) == 0 {
		return false
	}
	sortByCylinder(p.d, p.period)
	if DebugForm != nil {
		ids := make([]int, len(p.period))
		for i, st := range p.period {
			ids[i] = st.id
		}
		DebugForm(p.d.now(), ids)
	}
	return true
}

// gssScheduler is GSS*: streams are partitioned into groups of at most g;
// groups are serviced round-robin (BubbleUp across groups), members of
// the group in service are swept. New requests join the first upcoming
// group with spare room so they are serviced with the next group.
type gssScheduler struct {
	d      *Disk
	groups [][]*Stream
	cur    int // index of the group currently being swept; -1 when none
	sweep  []*Stream
	idx    int
}

func (p *gssScheduler) CanAdmit() bool { return p.idx >= len(p.sweep) }

func (p *gssScheduler) Admit(st *Stream) {
	g := p.d.sys.cfg.Method.Group
	for i := 1; i <= len(p.groups); i++ {
		gi := (p.cur + i) % len(p.groups)
		if gi == p.cur {
			continue // the group in service formed without st
		}
		if len(p.groups[gi]) < g {
			p.groups[gi] = append(p.groups[gi], st)
			return
		}
	}
	p.groups = append(p.groups, []*Stream{st})
}

func (p *gssScheduler) Remove(st *Stream) {
	for gi, members := range p.groups {
		for i, o := range members {
			if o != st {
				continue
			}
			p.groups[gi] = append(members[:i], members[i+1:]...)
			if len(p.groups[gi]) == 0 {
				p.groups = append(p.groups[:gi], p.groups[gi+1:]...)
				// Keep cur pointing at the group that was last swept so
				// rotation resumes at its successor: slide it back when
				// the removed group was at or before it, or when the
				// slice shrank past it.
				if gi <= p.cur || p.cur >= len(p.groups) {
					p.cur--
				}
			}
			return
		}
	}
}

func (p *gssScheduler) OnServiced(st *Stream) {
	if p.idx < len(p.sweep) && p.sweep[p.idx] == st {
		p.idx++
	}
}

func (p *gssScheduler) Next(now si.Seconds) (*Stream, si.Seconds) {
	for p.idx < len(p.sweep) && !p.sweep[p.idx].needService() {
		p.idx++
	}
	if p.idx >= len(p.sweep) && !p.advance() {
		return nil, 0
	}
	st := p.sweep[p.idx]
	if p.idx > 0 {
		return st, now // compact group sweeps, as in the Sweep* period
	}
	// A group's sweep can be blocked by other groups' non-preemptive
	// sweeps when their due times cluster; earliest-deadline group
	// selection keeps the queue short, so two group-sweeps of headroom
	// absorb it without refilling far ahead of need (which would inflate
	// memory well past Theorem 4). A group holding a fresh member sweeps
	// immediately: BubbleUp across groups services a newcomer with the
	// very next group (Eq. 4).
	queued := len(p.groups) - 1
	if queued > 2 {
		queued = 2
	}
	if queued < 1 {
		queued = 1
	}
	blocking := si.Seconds(queued*p.d.sys.cfg.Method.Group) * p.d.worstService(p.d.n())
	start := batchLazyStart(p.d, p.sweep, now, blocking, true)
	return st, start
}

// advance picks the group to sweep next: the one whose neediest member
// has the earliest deadline, with rotation distance from the last swept
// group breaking ties. In steady state GSS* group deadlines follow the
// rotation, so this is the round-robin order; under churn (members joining
// mid-rotation, departures) it prevents an overdue group from waiting out
// a full rotation behind freshly refilled ones.
func (p *gssScheduler) advance() bool {
	if len(p.groups) == 0 {
		return false
	}
	bestGi := -1
	var bestD si.Seconds
	for i := 1; i <= len(p.groups); i++ {
		gi := ((p.cur+i)%len(p.groups) + len(p.groups)) % len(p.groups)
		for _, st := range p.groups[gi] {
			if !st.needService() {
				continue
			}
			if d := p.d.deadlineOf(st); bestGi < 0 || d < bestD {
				bestGi, bestD = gi, d
			}
		}
	}
	p.sweep = p.sweep[:0]
	p.idx = 0
	if bestGi < 0 {
		return false
	}
	// The whole group is swept together; repeated joint fills align the
	// members' phases, which is what makes GSS*'s rotation periodic.
	for _, st := range p.groups[bestGi] {
		if st.needService() {
			p.sweep = append(p.sweep, st)
		}
	}
	sortByCylinder(p.d, p.sweep)
	p.cur = bestGi
	return true
}

// cylSorter sorts a batch of streams by (cylinder of next read, id) —
// sched.SweepOrder's exact total order — with the key slice kept on the
// disk so period formation allocates nothing in steady state.
type cylSorter struct {
	batch []*Stream
	keys  []int
}

func (s *cylSorter) Len() int { return len(s.batch) }
func (s *cylSorter) Less(i, j int) bool {
	if s.keys[i] != s.keys[j] {
		return s.keys[i] < s.keys[j]
	}
	return s.batch[i].id < s.batch[j].id
}
func (s *cylSorter) Swap(i, j int) {
	s.batch[i], s.batch[j] = s.batch[j], s.batch[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// sortByCylinder orders streams by the disk position of their next read,
// ties by id. The (cylinder, id) order is total, so any sort yields the
// same deterministic permutation sched.SweepOrder produced.
func sortByCylinder(d *Disk, batch []*Stream) {
	s := &d.cylSort
	s.batch = batch
	s.keys = s.keys[:0]
	for _, st := range batch {
		s.keys = append(s.keys, d.sys.cfg.Spec.CylinderOf(st.place.DiskOffset(st.delivered, 0)))
	}
	sort.Sort(s)
	s.batch = nil
}

// batchLazyStart computes the latest safe start for servicing the given
// batch sequentially in its (possibly deadline-adversarial) order: every
// deadline, sorted ascending, must leave room for the services before it.
func batchLazyStart(d *Disk, batch []*Stream, now si.Seconds, blocking si.Seconds, freshNow bool) si.Seconds {
	// Only started members anchor the start time: a fresh request's first
	// fill rides along with the batch. With freshNow set, any fresh
	// member starts the batch immediately (GSS*'s BubbleUp across
	// groups); otherwise fresh members wait for the batch's natural
	// schedule but their service time still consumes batch room.
	w := d.worstService(d.n())
	fresh, startedCount := 0, 0
	for _, st := range batch {
		if !st.needService() {
			continue
		}
		if st.started {
			startedCount++
		} else {
			fresh++
		}
	}
	if startedCount == 0 || (freshNow && fresh > 0) {
		return now // only fresh members, or a newcomer demands the sweep
	}
	// The batch executes in the given (cylinder) order, so each member i
	// must be reachable within (i+1) worst services of the start. The
	// per-service worst DL for a sweep assumes equally spaced data; the
	// retrace to the batch's first cylinder and one adversarial jump are
	// outside that model, so batches also get that much headroom, plus
	// whatever non-preemptive blocking the caller anticipates, plus the
	// standard admission cushion.
	cushion := 2*d.sys.cfg.Spec.WorstSeek() + blocking + lazyMarginServices*w
	var start si.Seconds
	pos := 0
	set := false
	for _, st := range batch {
		if !st.needService() {
			continue
		}
		pos++
		if !st.started {
			continue
		}
		cand := d.deadlineOf(st) - si.Seconds(pos)*w - cushion
		if room := d.roomAt(st); cand < room {
			cand = room // never refill a buffer that has not drained
		}
		if !set || cand < start {
			start, set = cand, true
		}
	}
	if start < now {
		start = now
	}
	return start
}
