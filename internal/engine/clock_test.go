package engine

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/si"
)

func TestVirtualClockOrdering(t *testing.T) {
	e := NewVirtualClock()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run(10)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want clock advanced to 10", e.Now())
	}
}

func TestVirtualClockTieBreakBySchedulingOrder(t *testing.T) {
	e := NewVirtualClock()
	var got []string
	e.Schedule(1, func() { got = append(got, "a") })
	e.Schedule(1, func() { got = append(got, "b") })
	e.Run(2)
	if got[0] != "a" || got[1] != "b" {
		t.Errorf("tie order = %v", got)
	}
}

func TestVirtualClockNestedScheduling(t *testing.T) {
	e := NewVirtualClock()
	var got []int
	e.Schedule(1, func() {
		got = append(got, 1)
		e.After(1, func() { got = append(got, 2) })
	})
	e.Run(5)
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("nested = %v", got)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestVirtualClockRunBoundary(t *testing.T) {
	e := NewVirtualClock()
	ran := 0
	e.Schedule(5, func() { ran++ })
	e.Schedule(5.0001, func() { ran++ })
	e.Run(5) // events exactly at the boundary run; later ones do not
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	e.Run(6)
	if ran != 2 {
		t.Errorf("ran = %d, want 2 after extending", ran)
	}
}

func TestVirtualClockCancel(t *testing.T) {
	e := NewVirtualClock()
	ran := false
	ev := e.Schedule(1, func() { ran = true })
	ev.Cancel()
	ev.Cancel()        // double cancel is a no-op
	(Timer{}).Cancel() // zero Timer is inert
	e.Run(2)
	if ran {
		t.Error("canceled event ran")
	}
}

// A Timer whose event already fired must stay inert: the event slot is
// recycled, and a late Cancel must not cancel the slot's next occupant.
func TestVirtualClockCancelAfterFire(t *testing.T) {
	e := NewVirtualClock()
	firstRan, secondRan := false, false
	tm := e.Schedule(1, func() { firstRan = true })
	e.Run(1)
	if !firstRan {
		t.Fatal("first event never ran")
	}
	if e.FreeListLen() != 1 {
		t.Fatalf("freelist = %d after fire, want the event recycled", e.FreeListLen())
	}
	// The next scheduling reuses the fired event's slot.
	tm2 := e.Schedule(2, func() { secondRan = true })
	if e.FreeListLen() != 0 {
		t.Fatal("second schedule did not draw from the freelist")
	}
	tm.Cancel() // stale handle onto a reused slot: must be a no-op
	e.Run(3)
	if !secondRan {
		t.Error("stale Cancel killed the slot's next occupant")
	}
	tm2.Cancel() // cancel after fire on the live handle: also a no-op
}

// A canceled-then-recycled slot behaves the same: double Cancel on the
// stale handle never reaches the new occupant.
func TestVirtualClockStaleCancelOnRecycledSlot(t *testing.T) {
	e := NewVirtualClock()
	tm := e.Schedule(1, func() { t.Error("canceled event ran") })
	tm.Cancel()
	e.Run(1) // drains the canceled event onto the freelist
	ran := false
	e.Schedule(2, func() { ran = true })
	tm.Cancel() // stale: generation advanced at recycling
	tm.Cancel() // and double-cancel stays a no-op
	e.Run(3)
	if !ran {
		t.Error("stale double-Cancel killed the recycled slot's occupant")
	}
}

// Steady-state recurrence reuses one pooled event: after warmup the
// freelist neither grows nor drains.
func TestVirtualClockEventPooling(t *testing.T) {
	e := NewVirtualClock()
	count := 0
	var tick func(arg any)
	tick = func(arg any) {
		count++
		if count < 1000 {
			e.AfterFunc(1, tick, nil)
		}
	}
	e.AfterFunc(1, tick, nil)
	e.Run(2000)
	if count != 1000 {
		t.Fatalf("ticks = %d, want 1000", count)
	}
	if got := e.FreeListLen(); got != 1 {
		t.Errorf("freelist = %d after steady-state recurrence, want exactly 1 pooled event", got)
	}
}

func TestVirtualClockActive(t *testing.T) {
	e := NewVirtualClock()
	if (Timer{}).Active() {
		t.Error("zero Timer reports active")
	}
	if tm := e.Schedule(1, func() {}); !tm.Active() {
		t.Error("live timer reports inactive")
	}
}

func TestVirtualClockPanics(t *testing.T) {
	e := NewVirtualClock()
	e.Schedule(5, func() {})
	e.Run(5)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("past", func() { e.Schedule(1, func() {}) })
	mustPanic("nil fn", func() { e.Schedule(10, nil) })
	mustPanic("negative delay", func() { e.After(-1, func() {}) })
}

// Property: any set of events runs in non-decreasing time order and the
// clock never goes backward inside callbacks.
func TestVirtualClockMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewVirtualClock()
		last := si.Seconds(-1)
		ok := true
		for _, d := range delays {
			at := si.Seconds(d)
			e.Schedule(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run(1 << 17)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWallClockScaledNow(t *testing.T) {
	c := NewWallClock(1000) // 1 wall ms = 1 engine second
	time.Sleep(5 * time.Millisecond)
	if now := c.Now(); now < 4 {
		t.Errorf("Now = %v, want >= 4 engine seconds after 5 wall ms at scale 1000", now)
	}
	if c.Scale() != 1000 {
		t.Errorf("Scale = %v", c.Scale())
	}
	if d := c.WallDuration(1000); d != time.Second {
		t.Errorf("WallDuration(1000) = %v, want 1s", d)
	}
}

func TestWallClockAfterFiresUnderLock(t *testing.T) {
	c := NewWallClock(1000)
	done := make(chan si.Seconds, 1)
	c.Do(func() {
		c.After(10, func() { done <- c.Now() })
	})
	select {
	case at := <-done:
		if at < 10 {
			t.Errorf("callback at %v, want >= 10", at)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("callback never fired")
	}
}

func TestWallClockCancel(t *testing.T) {
	c := NewWallClock(1000)
	fired := make(chan struct{}, 1)
	var tm Timer
	c.Do(func() { tm = c.After(50, func() { fired <- struct{}{} }) })
	tm.Cancel()
	(*wallTimer)(nil).cancel(0)
	select {
	case <-fired:
		t.Error("canceled timer fired")
	case <-time.After(200 * time.Millisecond):
	}
}

func TestWallClockSchedulePastClampsToNow(t *testing.T) {
	c := NewWallClock(1000)
	time.Sleep(2 * time.Millisecond) // Now() is past 0 already
	done := make(chan struct{}, 1)
	c.Do(func() { c.Schedule(0, func() { done <- struct{}{} }) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("past-scheduled callback never ran")
	}
}

// Callbacks and Do calls are mutually serialized: a counter incremented
// non-atomically from both never tears under the race detector.
func TestWallClockSerialization(t *testing.T) {
	c := NewWallClock(10000)
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Do(func() { count++ })
			}
		}()
	}
	fired := make(chan struct{})
	c.Do(func() {
		c.After(1, func() { count++; close(fired) })
	})
	wg.Wait()
	<-fired
	c.Do(func() {
		if count != 8*50+1 {
			t.Errorf("count = %d, want %d", count, 8*50+1)
		}
	})
}
