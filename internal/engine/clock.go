package engine

import (
	"container/heap"
	"fmt"

	"repro/internal/si"
)

// Clock abstracts time for the streaming runtime. The engine never reads
// time.Now or sleeps; it asks its Clock for the current instant and
// schedules callbacks at future instants. Two implementations exist:
//
//   - VirtualClock, a discrete-event loop whose time jumps from event to
//     event. The simulator (internal/sim) uses it to replay a day of
//     arrivals in milliseconds with perfectly reproducible results.
//   - WallClock, real time scaled by a constant factor. The live server
//     (cmd/vodserver) uses it so the same service loop paces actual
//     deliveries.
//
// A Clock implementation must run callbacks one at a time: the engine's
// per-disk state is synchronized only by this serialization (the
// VirtualClock is single-threaded; the WallClock holds a mutex across
// every callback).
type Clock interface {
	// Now reports the current time.
	Now() si.Seconds
	// Schedule registers fn to run at time at and returns a handle for
	// cancellation. Scheduling into the past is a programming error for
	// the virtual clock; the wall clock clamps it to "immediately".
	Schedule(at si.Seconds, fn func()) Timer
	// After schedules fn to run delay from now.
	After(delay si.Seconds, fn func()) Timer
}

// Timer is a scheduled callback handle. Cancel it to make it a no-op.
type Timer interface {
	// Cancel prevents the callback from running. Canceling an already
	// fired or canceled timer is a no-op.
	Cancel()
}

// VirtualClock is a virtual-time discrete-event loop. Callbacks scheduled
// at a time run in time order; ties run in scheduling order, which keeps
// runs deterministic.
type VirtualClock struct {
	now    si.Seconds
	events eventHeap
	seq    int64
}

// Event is a callback scheduled on a VirtualClock. Cancel it to make it a
// no-op.
type Event struct {
	at       si.Seconds
	seq      int64
	fn       func()
	canceled bool
	index    int // heap position, -1 once popped
}

// Cancel prevents the event's callback from running. Canceling an already
// fired or canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// NewVirtualClock returns a virtual clock with the time at zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now reports the current virtual time.
func (e *VirtualClock) Now() si.Seconds { return e.now }

// Schedule registers fn to run at time at, which must not precede the
// current time. It returns a handle for cancellation.
func (e *VirtualClock) Schedule(at si.Seconds, fn func()) Timer {
	if at < e.now {
		panic(fmt.Sprintf("engine: scheduling into the past (%v < %v)", at, e.now))
	}
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run delay from now.
func (e *VirtualClock) After(delay si.Seconds, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("engine: negative delay %v", delay))
	}
	return e.Schedule(e.now+delay, fn)
}

// Run processes events until the queue empties or the clock passes until.
// Events scheduled exactly at until still run.
func (e *VirtualClock) Run(until si.Seconds) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		if next.canceled {
			continue
		}
		e.now = next.at
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending reports the number of events still queued (including canceled
// ones not yet drained).
func (e *VirtualClock) Pending() int { return len(e.events) }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
