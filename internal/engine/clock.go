package engine

import (
	"container/heap"
	"fmt"

	"repro/internal/si"
)

// Clock abstracts time for the streaming runtime. The engine never reads
// time.Now or sleeps; it asks its Clock for the current instant and
// schedules callbacks at future instants. Two implementations exist:
//
//   - VirtualClock, a discrete-event loop whose time jumps from event to
//     event. The simulator (internal/sim) uses it to replay a day of
//     arrivals in milliseconds with perfectly reproducible results.
//   - WallClock, real time scaled by a constant factor. The live server
//     (cmd/vodserver) uses it so the same service loop paces actual
//     deliveries.
//
// A Clock implementation must run callbacks one at a time: the engine's
// per-disk state is synchronized only by this serialization (the
// VirtualClock is single-threaded; the WallClock holds a mutex across
// every callback).
type Clock interface {
	// Now reports the current time.
	Now() si.Seconds
	// Schedule registers fn to run at time at and returns a handle for
	// cancellation. Scheduling into the past is a programming error for
	// the virtual clock; the wall clock clamps it to "immediately".
	Schedule(at si.Seconds, fn func()) Timer
	// After schedules fn to run delay from now.
	After(delay si.Seconds, fn func()) Timer
	// ScheduleFunc registers the pre-bound callback fn(arg) to run at
	// time at. Unlike Schedule, recurring call sites pay no per-call
	// closure: fn is typically a package-level function and arg the
	// object it operates on, so a steady-state caller allocates nothing.
	ScheduleFunc(at si.Seconds, fn func(arg any), arg any) Timer
	// AfterFunc schedules fn(arg) to run delay from now.
	AfterFunc(delay si.Seconds, fn func(arg any), arg any) Timer
}

// ClockDomain hands out the clock that drives each disk. The paper's
// service model is per-disk — every disk runs its own period-by-period
// fill schedule — so nothing in the engine requires two disks to share a
// timer queue, only that each disk's own callbacks are serialized.
//
//   - VirtualClock is a single-shard domain: DiskClock returns the same
//     deterministic event loop for every disk, which is what keeps
//     simulation output byte-identical (one global (time, seq) order).
//   - WallClock is a sharded domain: DiskClock returns an independent
//     WallShard per disk, each with its own lock and timer wheel, so live
//     traffic on one disk never contends on another disk's lock.
//
// The serialization contract is per shard: two disks mapped to different
// shards run their callbacks concurrently, so cross-disk mutable state
// (an engine Gate, an Observer) must either be sharded itself or be safe
// under concurrent calls when driven by a multi-shard domain.
type ClockDomain interface {
	// DiskClock returns the clock that drives disk i.
	DiskClock(i int) Clock
}

// Timer is a scheduled-callback handle, returned by value so issuing one
// never allocates. The zero Timer is inert: Cancel on it is a no-op, as
// is Cancel on an already fired or canceled timer. Virtual-clock events
// and wall-shard timers are both pooled on freelists; the generation
// captured here keeps a stale handle from canceling the slot's next
// occupant.
type Timer struct {
	ev  *Event
	gen uint64
	wt  *wallTimer
}

// Cancel prevents the callback from running. Canceling an already fired
// or canceled timer — or the zero Timer — is a no-op.
func (t Timer) Cancel() {
	if t.ev != nil {
		t.ev.cancel(t.gen)
	}
	if t.wt != nil {
		t.wt.cancel(t.gen)
	}
}

// Active reports whether the timer holds a live handle (it may still
// have fired already; Active only distinguishes the zero Timer).
func (t Timer) Active() bool { return t.ev != nil || t.wt != nil }

// VirtualClock is a virtual-time discrete-event loop. Callbacks scheduled
// at a time run in time order; ties run in scheduling order, which keeps
// runs deterministic.
//
// Fired and canceled events are recycled on a freelist, so a steady-state
// workload (every callback scheduling a successor) runs without heap
// allocation.
type VirtualClock struct {
	now    si.Seconds
	events eventHeap
	seq    int64
	free   []*Event
}

// Event is a callback scheduled on a VirtualClock. Events are owned and
// recycled by the clock; external code holds them only inside a Timer,
// whose generation check makes stale handles harmless.
type Event struct {
	at       si.Seconds
	seq      int64
	fn       func()
	afn      func(arg any)
	arg      any
	gen      uint64
	canceled bool
	index    int // heap position, -1 once popped
}

// cancel marks the event canceled if gen still identifies the scheduling
// that issued the handle; a recycled event (gen advanced) is untouched.
func (e *Event) cancel(gen uint64) {
	if e != nil && e.gen == gen {
		e.canceled = true
	}
}

// NewVirtualClock returns a virtual clock with the time at zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// DiskClock returns the clock itself for every disk: the virtual clock is
// a single-shard ClockDomain, so all disks share one deterministic
// (time, scheduling-order) event sequence.
func (e *VirtualClock) DiskClock(int) Clock { return e }

// Now reports the current virtual time.
func (e *VirtualClock) Now() si.Seconds { return e.now }

// alloc takes an event from the freelist, or makes a new one.
func (e *VirtualClock) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// release returns a fired or canceled event to the freelist. The
// generation bump invalidates every Timer handle issued for it.
func (e *VirtualClock) release(ev *Event) {
	ev.gen++
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	ev.canceled = false
	ev.index = -1
	e.free = append(e.free, ev)
}

func (e *VirtualClock) push(at si.Seconds, fn func(), afn func(any), arg any) Timer {
	if at < e.now {
		panic(fmt.Sprintf("engine: scheduling into the past (%v < %v)", at, e.now))
	}
	ev := e.alloc()
	e.seq++
	ev.at, ev.seq = at, e.seq
	ev.fn, ev.afn, ev.arg = fn, afn, arg
	heap.Push(&e.events, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// Schedule registers fn to run at time at, which must not precede the
// current time. It returns a handle for cancellation.
func (e *VirtualClock) Schedule(at si.Seconds, fn func()) Timer {
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	return e.push(at, fn, nil, nil)
}

// After schedules fn to run delay from now.
func (e *VirtualClock) After(delay si.Seconds, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("engine: negative delay %v", delay))
	}
	return e.Schedule(e.now+delay, fn)
}

// ScheduleFunc registers the pre-bound callback fn(arg) to run at time
// at. With fn a package-level function, a recurring call site allocates
// nothing in steady state: the event comes off the freelist and arg rides
// in the event's payload slot.
func (e *VirtualClock) ScheduleFunc(at si.Seconds, fn func(arg any), arg any) Timer {
	if fn == nil {
		panic("engine: scheduling a nil callback")
	}
	return e.push(at, nil, fn, arg)
}

// AfterFunc schedules fn(arg) to run delay from now.
func (e *VirtualClock) AfterFunc(delay si.Seconds, fn func(arg any), arg any) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("engine: negative delay %v", delay))
	}
	return e.ScheduleFunc(e.now+delay, fn, arg)
}

// Run processes events until the queue empties or the clock passes until.
// Events scheduled exactly at until still run.
func (e *VirtualClock) Run(until si.Seconds) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		if next.canceled {
			e.release(next)
			continue
		}
		e.now = next.at
		// Copy the callback out and recycle the event before running it:
		// the callback may schedule again and reuse this very slot.
		fn, afn, arg := next.fn, next.afn, next.arg
		e.release(next)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
	}
	if e.now < until {
		e.now = until
	}
}

// Pending reports the number of events still queued (including canceled
// ones not yet drained).
func (e *VirtualClock) Pending() int { return len(e.events) }

// FreeListLen reports the number of recycled events available for reuse
// (exposed for pooling tests).
func (e *VirtualClock) FreeListLen() int { return len(e.free) }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
