package engine

import (
	"fmt"

	"repro/internal/si"
)

// AdaptConfig parameterizes mid-stream bitrate adaptation: the
// buffer-occupancy-driven rate map of Netflix's buffer-based algorithm
// (Huang et al., SIGCOMM 2014) transplanted into the server's scheduler.
// At the start of each service of a started stream the disk looks at how
// much playback time the stream's buffer has left. Below the reservoir
// the stream steps one rung down its title's ladder — its next fill is
// immediately sized against the lower rung's rate context, the paper's
// mid-flight buffer resize. Steps back up are decided at fill
// completions, when the buffer is full and the re-rated drain is at its
// safest: after Sustain consecutive completions with committed-bandwidth
// headroom for the higher rung the stream steps up, never above the rung
// the viewer originally requested — the hysteresis band that keeps the
// policy from flapping at a capacity edge.
//
// Adaptation requires a multi-rate system (Config.Rates): a uniform-rate
// system has no rungs to switch across. With Adapt nil the engine runs
// exactly the PR 9 code paths, byte-identically — the goldens pin this.
type AdaptConfig struct {
	// Reservoir is the down-switch threshold, measured in worst-case
	// service times at the disk's current load (the same unit the
	// scheduler's own lazy-start cushion uses): when a started stream
	// enters service with less than Reservoir×w of playback left in its
	// buffer, it steps down one rung. The scheduler plans refills to land
	// lazyMarginServices (2) service times early, and admission bursts
	// routinely erode a service or so of that cushion, so the reservoir
	// must sit well below it: 0 selects the default of 0.25 — a stream
	// a quarter-service from starvation is past what scheduling slack can
	// recover, while anything looser sheds rate on ordinary peak-time
	// jitter and parks the whole disk at the ladder floor.
	// Must not be negative.
	Reservoir float64

	// Headroom bounds how far up-switching may grow the disk's committed
	// bandwidth: a step above the stream's standing booking is considered
	// only while it would leave the committed bandwidth at or below
	// Headroom×cap (and strictly below the cap itself, the admission
	// invariant). The gap between Headroom and 1 is reserved for
	// arrivals, so upgrades never race admissions to the last slot.
	// Recovery steps within the booking (climbing back from a distress
	// down-switch, which never releases its booking) skip this gate —
	// the bandwidth is already reserved. 0 selects the default of 0.95;
	// must be in (0, 1].
	Headroom float64

	// Sustain is how many consecutive fill completions of one stream must
	// see up-switch bandwidth headroom before the switch is taken. Any
	// completion without headroom — and any switch — resets the count.
	// Completions are usage-period-spaced (minutes apart at load), so
	// the count spans a meaningful quiet stretch: 0 selects the default
	// of 8, roughly an hour of sustained headroom at peak spacing —
	// shorter runs step streams up at a receding peak's ragged edge,
	// where the extra drain lands on buffers sized for the crush and
	// converts straight into rebuffers. Must not be negative.
	Sustain int
}

// upAdmitSlack is the admission-boundary room, in services, an
// expansion up-switch must leave behind (see adaptUp).
const upAdmitSlack = 8

// withDefaults returns the config with zero fields replaced by defaults,
// or an error for out-of-range settings.
func (a AdaptConfig) withDefaults() (AdaptConfig, error) {
	if a.Reservoir == 0 {
		a.Reservoir = 0.25
	}
	if a.Headroom == 0 {
		a.Headroom = 0.95
	}
	if a.Sustain == 0 {
		a.Sustain = 8
	}
	if a.Reservoir < 0 {
		return a, fmt.Errorf("engine: negative adaptation reservoir %v", a.Reservoir)
	}
	if a.Headroom < 0 || a.Headroom > 1 {
		return a, fmt.Errorf("engine: adaptation headroom %v outside (0, 1]", a.Headroom)
	}
	if a.Sustain < 0 {
		return a, fmt.Errorf("engine: negative adaptation sustain %d", a.Sustain)
	}
	return a, nil
}

// adaptDown runs the rate map's distress side at the start of one
// started stream's service, before the allocator sizes the fill — a
// switch here re-sizes this very fill against the lower rung's context.
// n is the in-service count. Down-switching below the reservoir is
// deliberately rare: the threshold marks a schedule that has already
// burned its lazy-start cushion, not ordinary peak-time jitter (shedding
// rate on jitter converts the disk to a low-rung mix whose longer rounds
// erode everyone's slack — the opposite of relief).
func (d *Disk) adaptDown(st *Stream, now si.Seconds, n int) {
	a := d.sys.adapt
	w := d.worstService(n)
	// The distress judgment lives in the same time frame as the underrun
	// judgment: live drivers compress engine time onto a wall clock and
	// widen the pools' underrun grace so OS timer wobble is not charged
	// to the model (Config.UnderrunTolerance) — a deadline slip inside
	// that grace is scheduling noise there too, not viewer-visible
	// distress, so it must not shed rate either. In the simulator the
	// override is zero and the reservoir stands as configured.
	if d.deadlineOf(st)-now >= si.Seconds(a.Reservoir*float64(w))-d.sys.cfg.UnderrunTolerance {
		return
	}
	// Inside the reservoir: the buffer runs dry within a fraction of one
	// service. Shed rate now; headroom credit does not survive a distress
	// episode.
	st.headroomRun = 0
	d.lastDistress = now
	if to := d.rungBelow(st); to != nil {
		d.switchRate(st, to, now)
	}
}

// adaptUp runs the rate map's recovery side right after one of st's
// fills lands: the buffer is full, so the slack sacrificed to a faster
// drain is at its largest — the one moment a step up cannot squeeze the
// imminent fill (there is none). Three gates, mirroring what a fresh
// admission at the extra bandwidth would face:
//
//   - the committed-bandwidth book must stay at or below Headroom×cap
//     (and strictly below the cap, the admission invariant) — upgrades
//     never race arrivals to the last slot; Sustain consecutive
//     completions must pass this gate before the switch matures;
//   - the scheme's runtime enforcement must have room for one more
//     admission (Fig. 5's inertia rule): every live buffer was sized to
//     absorb at least one unplanned load unit, which is exactly what the
//     re-rated stream becomes for the rest of the current round;
//   - the full buffer, drained at the faster rate, must still outlive
//     the scheduler's whole due window (lazyMarginServices+1 worst
//     services) plus the reservoir — the re-rated stream rejoins the
//     rotation as an ordinary healthy member, not as urgent work.
func (d *Disk) adaptUp(st *Stream, now si.Seconds) {
	a := d.sys.adapt
	to := d.rungAbove(st)
	if to == nil {
		st.headroomRun = 0 // already at the requested rung
		return
	}
	recovery := to.rate <= st.booked
	if extra := to.rate - st.booked; extra > 0 {
		// The step climbs above the stream's standing booking, so it
		// competes with arrivals for uncommitted bandwidth; a recovery
		// within the booking (climbing back from a distress down-switch)
		// spends only what the session already reserved and answers to
		// the Sustain hysteresis and the disk-wide pacing below instead.
		after := d.committedRate + extra
		if after > si.BitRate(a.Headroom*float64(d.sys.bwCap)) || after >= d.sys.bwCap {
			st.headroomRun = 0
			return
		}
	}
	st.headroomRun++
	if st.headroomRun < a.Sustain {
		return
	}
	// The switch is an unplanned extra load unit the live buffers must
	// absorb, exactly like an arrival — but unlike an arrival it does not
	// raise the in-service count, so enforcement would never see it.
	// Check the Fig. 5 rule with the switch counted in: a recovery within
	// the booking (re-climbing after a distress shed) needs room for
	// itself and the next promised admission, while an expansion above
	// the booking is an admission in disguise and must clear
	// upAdmitSlack services of boundary room — at a count-bound disk
	// arrivals will pack whatever sliver the expansion leaves, so it may
	// only proceed when the boundary has a whole burst of slack.
	margin := upAdmitSlack
	if recovery {
		margin = 1
	}
	n := d.n()
	if !d.sys.cfg.Allocator.Admit(d, n+margin) {
		st.headroomRun = 0
		return
	}
	w := d.worstService(n)
	slack := float64(d.deadlineOf(st)-now) * (float64(st.rate) / float64(to.rate))
	if slack < (lazyMarginServices+1+a.Reservoir)*float64(w) {
		st.headroomRun = 0
		return
	}
	// Disk-wide recovery pacing. Distress arrives in storms — one round
	// overload underruns a dozen streams at once, and all of them shed a
	// rung together. Their Sustain counters then mature together too, and
	// without a brake the whole cohort climbs back within a couple of
	// minutes: a synchronized drain jump as unplanned as the storm that
	// caused it, which seeds the next storm. Pace the climb instead: at
	// most one up-switch per usage period disk-wide (each step is then
	// repriced into every later fill before the next step is considered),
	// and none until the disk has been distress-free for two periods.
	// A paced-out candidate keeps its matured count and simply retries at
	// its next completion.
	if now-d.lastDistress < 2*d.lastPeriod || now-d.lastUp < d.lastPeriod {
		return
	}
	d.lastUp = now
	d.switchRate(st, to, now)
}

// rungBelow returns the sizing context of the first rung below st's
// current rate on its title's ladder, or nil at the bottom. Only rungs
// the system has contexts for are considered.
func (d *Disk) rungBelow(st *Stream) *rateCtx {
	for _, rung := range d.sys.cfg.Library.Video(st.req.Video).Rungs() {
		if rung >= st.rate {
			continue
		}
		if c := d.sys.ctxFor(rung); c != nil {
			return c
		}
	}
	return nil
}

// rungAbove returns the sizing context one rung above st's current rate,
// capped at the rung the viewer originally requested, or nil when st
// already serves it. Rungs() walks best-first, so the last qualifying
// rung is the nearest one up.
func (d *Disk) rungAbove(st *Stream) *rateCtx {
	var best *rateCtx
	for _, rung := range d.sys.cfg.Library.Video(st.req.Video).Rungs() {
		if rung <= st.rate || rung > st.want {
			continue
		}
		if c := d.sys.ctxFor(rung); c != nil {
			best = c
		}
	}
	return best
}

// switchRate moves an in-service stream to the rate context to: the
// in-service-bandwidth book and the live-rate counters are re-booked (so
// planOverLive immediately plans against the new mix), the buffer pool
// drains the old rate's history and starts
// draining the level at the new rate, and the stream's remaining demand
// is re-planned — what the viewer has consumed stays consumed, the rest
// of the viewing time costs the new rate.
//
// The committed-bandwidth book deliberately never shrinks: a down-switch
// keeps the session's standing booking, and an up-switch charges only
// the increment above it. Releasing a distressed stream's bandwidth at a
// congested peak converts straight into extra low-rung admissions, and
// the churn those admissions bring destabilizes the very schedule the
// down-switch tried to relieve — shedding rate protects the viewers
// already in service, it does not grow the audience. After a deep down-switch the
// buffered level may already cover the remaining demand; the stream then
// simply coasts on its buffer until departure (an up-switch can equally
// revive a stream that had fetched its last bit — dlFix re-indexes it
// either way). The stream's next fill is sized against the new context
// (the mid-flight buffer resize).
func (d *Disk) switchRate(st *Stream, to *rateCtx, now si.Seconds) {
	from := st.rate
	d.serviceRate += to.rate - from
	if to.rate > st.booked {
		d.committedRate += to.rate - st.booked
		st.booked = to.rate
	}
	d.rateLive[st.ctx.idx]--
	d.rateLive[to.idx]++
	st.ctx = to
	st.rate = to.rate
	st.headroomRun = 0
	d.pool.SetRate(st.id, to.rate, now)
	st.deadline = d.pool.EmptyAt(st.id)
	consumed := st.delivered - d.pool.Level(st.id, now)
	remaining := st.firstFill + st.req.Viewing - now
	if remaining < 0 {
		remaining = 0
	}
	st.required = maxBits(consumed+to.rate.DataIn(remaining), 1)
	d.dlFix(st)
	d.sys.obs.OnRateSwitch(d.id, st, from, to.rate, now)
	st.rateSince = now
}
