package engine

import (
	"testing"

	"repro/internal/si"
)

func BenchmarkVirtualClockScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewVirtualClock()
		for j := 0; j < 1000; j++ {
			at := si.Seconds((j * 7919) % 1000)
			e.Schedule(at, func() {})
		}
		e.Run(1000)
	}
}

func BenchmarkVirtualClockNestedEvents(b *testing.B) {
	e := NewVirtualClock()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.After(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(1, tick)
	e.Run(si.Seconds(b.N + 2))
}
