package engine

import (
	"repro/internal/core"
	"repro/internal/si"
)

// Allocator is a buffer allocation scheme: how large the next buffer is,
// what size worst-case service planning should assume, and whether the
// scheme's admission rules allow one more request. The paper's three
// schemes — static (Section 2.3), dynamic (Section 3, the contribution),
// and the naive strawman (Section 3.1) — plus the DYBASE precursor are
// provided; an Allocator is chosen per engine System via Config.
//
// Size may record per-allocation bookkeeping on the disk (the dynamic
// scheme's inertia snapshot and prediction-success entry); Admit and
// PlanSize must not mutate anything other than the disk's k_log cache.
type Allocator interface {
	// Size computes the buffer size for the next service of st when n
	// requests are in service, recording whatever bookkeeping the scheme
	// needs (inertia snapshots, prediction estimates).
	Size(d *Disk, st *Stream, n int) si.Bits
	// PlanSize is the buffer size worst-case service planning assumes at
	// load n — the term feeding the lazy-start and admission cushions.
	PlanSize(d *Disk, n int) si.Bits
	// Admit reports whether the scheme's runtime enforcement allows
	// admitting one more request when n are in service. Capacity (n < N)
	// is checked by the engine; this is the scheme-specific rule
	// (Assumption 1 for the dynamic scheme, always true otherwise).
	Admit(d *Disk, n int) bool
}

// StaticAllocator always allocates the full-load buffer size BS(N)
// (Section 2.3): correct at any load, maximally wasteful below full load.
type StaticAllocator struct{}

// Size returns BS(N) regardless of load.
func (StaticAllocator) Size(d *Disk, st *Stream, n int) si.Bits { return d.sys.staticSize }

// PlanSize returns BS(N): static planning assumes the worst everywhere.
func (StaticAllocator) PlanSize(d *Disk, n int) si.Bits { return d.sys.staticSize }

// Admit always accepts; the capacity bound N is enforced upstream.
func (StaticAllocator) Admit(d *Disk, n int) bool { return true }

// DynamicAllocator is the paper's predict-and-enforce scheme (Section 3):
// buffers sized by Theorem 1 for the current load n and the estimate kc of
// near-future additional requests, with the inertia snapshot recorded for
// runtime enforcement and violating admissions deferred (Fig. 5).
type DynamicAllocator struct{}

// Size evaluates Theorem 1 at (n, kc) with kc from the disk's estimator,
// records the stream's inertia snapshot for enforcement, and logs the
// estimate for prediction-success scoring.
func (DynamicAllocator) Size(d *Disk, st *Stream, n int) si.Bits {
	kc := d.Estimate(n)
	size := d.sys.sizeFor(d, n, kc)
	d.book.Set(st.id, core.Allocation{N: n, K: kc})
	if d.budget != nil {
		// Churn-safe enforcement: this fill opens a fresh k_i admission
		// budget, charged from the disk's current admission count.
		d.budget.Set(st.id, core.Allocation{N: d.admits, K: kc})
	}
	d.recordEstimate(size, kc)
	return size
}

// PlanSize returns the worst-case buffer size sweep planning must
// assume for a disk at load n under the dynamic scheme's rules.
func (DynamicAllocator) PlanSize(d *Disk, n int) si.Bits {
	// Plan with the Assumption-2 worst future prediction: no service in
	// the batch can allocate with k above min_i(k_i) + alpha (that is what
	// the estimator enforces), exactly the headroom the recurrence's
	// BS_{k+alpha} term models.
	k := d.book.MinK()
	if k > 2*d.sys.params.N {
		k = d.Estimate(n) // empty book: fall back to the estimate
	}
	k += d.sys.params.Alpha
	if d.sys.cfg.RampAwarePlanning {
		// Plan at the admission window's full load, not today's: the
		// enforcement admits up to min_i(n_i+k_i) concurrent streams,
		// and a fill late in the coming round allocates at whatever
		// load the window has reached by then (see
		// Config.RampAwarePlanning).
		if m := d.book.MinNK(); m > n {
			n = m
			if n > d.sys.params.N {
				n = d.sys.params.N
			}
		}
	}
	return d.sys.sizeFor(d, n, k)
}

// Admit applies the Fig. 5 enforcement rule: an arrival may enter only
// if it keeps every in-service stream's inertia snapshot honest (and,
// under churn-safe budgets, every open fill's admission budget).
func (DynamicAllocator) Admit(d *Disk, n int) bool {
	if !core.Admit(d.book, n, d.sys.params.N) {
		return false
	}
	return d.budget == nil || core.AdmitBudget(d.budget, d.admits)
}

// NaiveAllocator is the flawed strawman of Section 3.1: Eq. 5 evaluated at
// n+k with no recurrence and no enforcement. It underruns under rising
// load — the failure (Fig. 3) that motivates the dynamic scheme.
type NaiveAllocator struct{}

// Size evaluates Eq. 5 directly at n+kc — the flaw: no recurrence, so a
// stream sized now is not protected against arrivals sized later.
func (NaiveAllocator) Size(d *Disk, st *Stream, n int) si.Bits {
	kc := d.Estimate(n)
	size := d.sys.naiveSizeFor(n, kc)
	d.recordEstimate(size, kc)
	return size
}

// PlanSize mirrors Size for sweep planning.
func (NaiveAllocator) PlanSize(d *Disk, n int) si.Bits {
	return d.sys.naiveSizeFor(n, d.Estimate(n))
}

// Admit always accepts — the absent enforcement is the point.
func (NaiveAllocator) Admit(d *Disk, n int) bool { return true }

// DybaseAllocator sizes by the DYBASE recurrence (the paper's cited
// precursor, Information Sciences 137, 2001): Theorem 1's chain with k
// held constant instead of growing by alpha per step, and no runtime
// enforcement. It sits between the naive and dynamic schemes and exists
// for comparison runs.
type DybaseAllocator struct{}

// Size evaluates the DYBASE recurrence at (n, kc).
func (DybaseAllocator) Size(d *Disk, st *Stream, n int) si.Bits {
	kc := d.Estimate(n)
	size := d.sys.dybaseSizeFor(n, kc)
	d.recordEstimate(size, kc)
	return size
}

// PlanSize mirrors Size for sweep planning.
func (DybaseAllocator) PlanSize(d *Disk, n int) si.Bits {
	return d.sys.dybaseSizeFor(n, d.Estimate(n))
}

// Admit always accepts: DYBASE has no runtime enforcement.
func (DybaseAllocator) Admit(d *Disk, n int) bool { return true }
